(* Property tests for the charged byte cursors (every serializer's
   substrate). *)

let make_view n =
  let space = Mem.Addr_space.create () in
  Mem.View.make
    ~addr:(Mem.Addr_space.reserve space ~bytes:n)
    ~data:(Bytes.create n) ~off:0 ~len:n

let qcheck_scalar_roundtrip =
  QCheck.Test.make ~name:"cursor scalars roundtrip" ~count:300
    QCheck.(triple (int_bound 0xffff) (int_bound 0x7fffffff) int64)
    (fun (a, b, c) ->
      let view = make_view 64 in
      let w = Wire.Cursor.Writer.create view in
      Wire.Cursor.Writer.u16 w a;
      Wire.Cursor.Writer.u32 w b;
      Wire.Cursor.Writer.u64 w c;
      Wire.Cursor.Writer.u8 w (a land 0xff);
      let r = Wire.Cursor.Reader.create view in
      Wire.Cursor.Reader.u16 r = a
      && Wire.Cursor.Reader.u32 r = b
      && Int64.equal (Wire.Cursor.Reader.u64 r) c
      && Wire.Cursor.Reader.u8 r = a land 0xff)

let qcheck_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip and length" ~count:500 QCheck.int64
    (fun v ->
      let view = make_view 16 in
      let w = Wire.Cursor.Writer.create view in
      Wire.Cursor.Writer.varint w v;
      let written = Wire.Cursor.Writer.pos w in
      let r = Wire.Cursor.Reader.create view in
      let back = Wire.Cursor.Reader.varint r in
      Int64.equal back v
      && written = Wire.Cursor.varint_len v
      && Wire.Cursor.Reader.pos r = written)

let qcheck_string_roundtrip =
  QCheck.Test.make ~name:"cursor strings roundtrip" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun s ->
      let view = make_view (String.length s + 8) in
      let w = Wire.Cursor.Writer.create view in
      Wire.Cursor.Writer.u32 w (String.length s);
      Wire.Cursor.Writer.string w s;
      let r = Wire.Cursor.Reader.create view in
      let n = Wire.Cursor.Reader.u32 r in
      String.equal (Wire.Cursor.Reader.string r ~len:n) s)

let test_writer_bounds () =
  let view = make_view 4 in
  let w = Wire.Cursor.Writer.create view in
  Wire.Cursor.Writer.u32 w 42;
  (match Wire.Cursor.Writer.u8 w 1 with
  | () -> Alcotest.fail "expected overflow"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "remaining" 0 (Wire.Cursor.Writer.remaining w)

let test_reader_bounds () =
  let view = make_view 2 in
  let r = Wire.Cursor.Reader.create view in
  match Wire.Cursor.Reader.u32 r with
  | _ -> Alcotest.fail "expected underflow"
  | exception Invalid_argument _ -> ()

let test_varint_max_length_rejected () =
  (* 11 continuation bytes cannot encode a 64-bit varint. *)
  let space = Mem.Addr_space.create () in
  let data = Bytes.make 12 '\xff' in
  let view =
    Mem.View.make ~addr:(Mem.Addr_space.reserve space ~bytes:12) ~data ~off:0
      ~len:12
  in
  let r = Wire.Cursor.Reader.create view in
  match Wire.Cursor.Reader.varint r with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_seek_and_backpatch () =
  let view = make_view 16 in
  let w = Wire.Cursor.Writer.create view in
  Wire.Cursor.Writer.u32 w 0;
  (* placeholder *)
  Wire.Cursor.Writer.u32 w 7;
  Wire.Cursor.Writer.seek w 0;
  Wire.Cursor.Writer.u32 w 99;
  let r = Wire.Cursor.Reader.create view in
  Alcotest.(check int) "patched" 99 (Wire.Cursor.Reader.u32 r);
  Alcotest.(check int) "second intact" 7 (Wire.Cursor.Reader.u32 r)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_scalar_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_varint_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_string_roundtrip;
    Alcotest.test_case "writer bounds" `Quick test_writer_bounds;
    Alcotest.test_case "reader bounds" `Quick test_reader_bounds;
    Alcotest.test_case "varint too long" `Quick test_varint_max_length_rejected;
    Alcotest.test_case "seek and backpatch" `Quick test_seek_and_backpatch;
  ]
