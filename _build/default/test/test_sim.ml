(* Tests for the discrete-event engine, PRNG, and samplers. *)

let test_heap_ordering () =
  let h = Sim.Heap.create () in
  let rng = Sim.Rng.create ~seed:42 in
  let n = 1000 in
  for i = 0 to n - 1 do
    Sim.Heap.push h ~time:(Sim.Rng.int rng 500) ~seq:i i
  done;
  Alcotest.(check int) "length" n (Sim.Heap.length h);
  let prev = ref (-1, -1) in
  for _ = 1 to n do
    match Sim.Heap.pop_min h with
    | None -> Alcotest.fail "heap empty too early"
    | Some (time, seq, _) ->
        let t, s = !prev in
        if time < t || (time = t && seq < s) then
          Alcotest.fail "heap order violated";
        prev := (time, seq)
  done;
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h)

let test_heap_fifo_same_time () =
  let h = Sim.Heap.create () in
  for i = 0 to 9 do
    Sim.Heap.push h ~time:7 ~seq:i i
  done;
  for i = 0 to 9 do
    match Sim.Heap.pop_min h with
    | Some (_, _, v) -> Alcotest.(check int) "fifo" i v
    | None -> Alcotest.fail "missing element"
  done

let test_engine_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~after:30 (fun () -> log := 3 :: !log);
  Sim.Engine.schedule e ~after:10 (fun () -> log := 1 :: !log);
  Sim.Engine.schedule e ~after:20 (fun () ->
      log := 2 :: !log;
      (* Events scheduled from within events still run in order. *)
      Sim.Engine.schedule e ~after:5 (fun () -> log := 25 :: !log));
  Sim.Engine.run_all e;
  Alcotest.(check (list int)) "order" [ 1; 2; 25; 3 ] (List.rev !log);
  Alcotest.(check int) "clock" 30 (Sim.Engine.now e)

let test_engine_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule e ~after:100 (fun () -> incr fired);
  Sim.Engine.schedule e ~after:200 (fun () -> incr fired);
  Sim.Engine.run e ~until:150;
  Alcotest.(check int) "only first" 1 !fired;
  Alcotest.(check int) "clock at until" 150 (Sim.Engine.now e);
  Sim.Engine.run e ~until:300;
  Alcotest.(check int) "second fired" 2 !fired

let test_engine_rejects_past () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~after:10 (fun () -> ());
  Sim.Engine.run_all e;
  Alcotest.check_raises "past" (Invalid_argument
    "Engine.schedule_at: time 5 is before now 10")
    (fun () -> Sim.Engine.schedule_at e ~time:5 (fun () -> ()))

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next_int64 a)
      (Sim.Rng.next_int64 b)
  done

let test_rng_float_range () =
  let r = Sim.Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let f = Sim.Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of range"
  done

let test_rng_split_independent () =
  let a = Sim.Rng.create ~seed:7 in
  let b = Sim.Rng.split a in
  let xa = Sim.Rng.next_int64 a and xb = Sim.Rng.next_int64 b in
  Alcotest.(check bool) "different streams" true (not (Int64.equal xa xb))

let test_exponential_mean () =
  let r = Sim.Rng.create ~seed:11 in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Dist.exponential r ~mean:500.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 500.0) > 10.0 then
    Alcotest.failf "exponential mean %f too far from 500" mean

let test_zipf_bounds_and_skew () =
  let z = Sim.Dist.Zipf.create ~n:1000 ~s:0.99 in
  let r = Sim.Rng.create ~seed:5 in
  let counts = Array.make 1001 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Sim.Dist.Zipf.sample z r in
    if k < 1 || k > 1000 then Alcotest.fail "zipf out of range";
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 1 should be far more popular than rank 100. *)
  Alcotest.(check bool) "rank1 > 10x rank100" true
    (counts.(1) > 10 * max 1 counts.(100));
  (* Rank 1 frequency for s=0.99, n=1000 is ~13%. *)
  let f1 = float_of_int counts.(1) /. float_of_int n in
  if f1 < 0.08 || f1 > 0.20 then Alcotest.failf "rank-1 frequency %f off" f1

let test_zipf_single () =
  let z = Sim.Dist.Zipf.create ~n:1 ~s:0.99 in
  let r = Sim.Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "n=1" 1 (Sim.Dist.Zipf.sample z r)
  done

let test_discrete_sampler () =
  let d = Sim.Dist.Discrete.create [| ("a", 1.0); ("b", 3.0) |] in
  let r = Sim.Rng.create ~seed:9 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 40_000 do
    match Sim.Dist.Discrete.sample d r with
    | "a" -> incr a
    | "b" -> incr b
    | _ -> Alcotest.fail "unexpected value"
  done;
  let ratio = float_of_int !b /. float_of_int !a in
  if ratio < 2.6 || ratio > 3.4 then Alcotest.failf "ratio %f off 3.0" ratio

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      let h = Sim.Heap.create () in
      List.iteri (fun i (t, _) -> Sim.Heap.push h ~time:t ~seq:i ()) pairs;
      let rec drain last =
        match Sim.Heap.pop_min h with
        | None -> true
        | Some (t, _, ()) -> t >= last && drain t
      in
      drain min_int)

let suite =
  [
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap fifo at equal time" `Quick test_heap_fifo_same_time;
    Alcotest.test_case "engine event order" `Quick test_engine_order;
    Alcotest.test_case "engine run until" `Quick test_engine_until;
    Alcotest.test_case "engine rejects past" `Quick test_engine_rejects_past;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "zipf bounds and skew" `Quick test_zipf_bounds_and_skew;
    Alcotest.test_case "zipf n=1" `Quick test_zipf_single;
    Alcotest.test_case "discrete sampler" `Quick test_discrete_sampler;
    QCheck_alcotest.to_alcotest qcheck_heap_sorted;
  ]
