(* Fuzzing the deserializers: arbitrary bytes must either decode or raise
   the decoder's own error — never crash, loop, or recurse unboundedly.
   (Nested offsets in the zero-copy formats could otherwise form cycles;
   the depth limits bound them.) *)

let schema = Test_format.schema

let everything = Test_format.everything

let make_buf bytes =
  let space = Mem.Addr_space.create () in
  let pool =
    Mem.Pinned.Pool.create space ~name:"fuzz"
      ~classes:[ (Workload.Spec.class_of (max 1 (String.length bytes)), 4) ]
  in
  let buf = Mem.Pinned.Buf.alloc pool ~len:(max 1 (String.length bytes)) in
  Mem.Pinned.Buf.fill buf bytes;
  if String.length bytes > 0 && String.length bytes < Mem.Pinned.Buf.len buf
  then Mem.Pinned.Buf.sub buf ~off:0 ~len:(String.length bytes)
  else buf

let gen_bytes rng =
  let len = Sim.Rng.int rng 600 in
  String.init len (fun _ -> Char.chr (Sim.Rng.int rng 256))

(* Mutate a valid serialized object: flip a few bytes. *)
let gen_mutated rng =
  let env = Test_format.make_env () in
  let msg = Test_format.gen_message env rng in
  let _plan, buf = Test_format.serialize env msg in
  let v = Mem.Pinned.Buf.view buf in
  let s = Bytes.of_string (Mem.View.to_string v) in
  for _ = 0 to 4 do
    if Bytes.length s > 0 then
      Bytes.set s
        (Sim.Rng.int rng (Bytes.length s))
        (Char.chr (Sim.Rng.int rng 256))
  done;
  Bytes.to_string s

let fuzz_one name decode =
  QCheck.Test.make ~name ~count:300 QCheck.small_nat (fun seed ->
      let rng = Sim.Rng.create ~seed:(seed * 31 + 5) in
      let bytes =
        if Sim.Rng.bool rng 0.5 then gen_bytes rng else gen_mutated rng
      in
      let buf = make_buf bytes in
      match decode buf with
      | _ -> true
      | exception Cornflakes.Format_.Malformed _ -> true
      | exception Baselines.Flatbuf.Decode_error _ -> true
      | exception Baselines.Capnp.Decode_error _ -> true
      | exception Baselines.Protobuf.Decode_error _ -> true
      | exception Mini_redis.Resp.Protocol_error _ -> true
      | exception Invalid_argument _ ->
          (* Cursor bound violations surface as Invalid_argument. *)
          true)

let with_ep f =
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let ep = Net.Endpoint.create fabric registry ~id:1 in
  let r = f ep in
  Mem.Arena.reset (Net.Endpoint.arena ep);
  r

let suite =
  [
    QCheck_alcotest.to_alcotest
      (fuzz_one "fuzz cornflakes deserialize" (fun buf ->
           ignore (Cornflakes.Format_.deserialize schema everything buf)));
    QCheck_alcotest.to_alcotest
      (fuzz_one "fuzz flatbuffers deserialize" (fun buf ->
           ignore (Baselines.Flatbuf.deserialize schema everything buf)));
    QCheck_alcotest.to_alcotest
      (fuzz_one "fuzz capnp deserialize" (fun buf ->
           ignore (Baselines.Capnp.deserialize schema everything buf)));
    QCheck_alcotest.to_alcotest
      (fuzz_one "fuzz protobuf deserialize" (fun buf ->
           with_ep (fun ep ->
               ignore (Baselines.Protobuf.deserialize ep schema everything buf))));
    QCheck_alcotest.to_alcotest
      (fuzz_one "fuzz resp decode" (fun buf ->
           ignore (Mini_redis.Resp.decode (Mem.Pinned.Buf.view buf))));
  ]
