(* Direct tests of the load drivers and the server harness's send-hold
   semantics. *)

(* A trivial echo fixture with a controllable artificial service cost. *)
let make_fixture ~service_cycles =
  let rig = Apps.Rig.create ~n_clients:2 () in
  Loadgen.Server.set_handler rig.Apps.Rig.server (fun ~src buf ->
      Memmodel.Cpu.charge rig.Apps.Rig.cpu Memmodel.Cpu.App service_cycles;
      let v = Mem.Pinned.Buf.view buf in
      let s = Mem.View.to_string v in
      let staging =
        Net.Endpoint.alloc_tx ~cpu:rig.Apps.Rig.cpu rig.Apps.Rig.server_ep
          ~len:(Net.Packet.header_len + String.length s)
      in
      let sv = Mem.Pinned.Buf.view staging in
      Bytes.blit_string s 0 sv.Mem.View.data
        (sv.Mem.View.off + Net.Packet.header_len)
        (String.length s);
      Net.Endpoint.send_inline_header ~cpu:rig.Apps.Rig.cpu
        rig.Apps.Rig.server_ep ~dst:src ~segments:[ staging ];
      Mem.Pinned.Buf.decr_ref buf);
  rig

let send_fn ep ~dst ~id =
  Net.Endpoint.send_string ep ~dst (Printf.sprintf "%08d-request" id)

let parse_fn buf =
  let s = Mem.View.to_string (Mem.Pinned.Buf.view buf) in
  int_of_string (String.sub s 0 8)

let test_closed_loop_tracks_service_time () =
  (* Artificial service of 30k cycles = 10 us dominates the stack's fixed
     per-request costs (~0.35 us) -> capacity just under 100 krps. *)
  let rig = make_fixture ~service_cycles:30_000.0 in
  let r =
    Loadgen.Driver.closed_loop rig.Apps.Rig.engine ~clients:rig.Apps.Rig.clients
      ~server:Apps.Rig.server_id ~outstanding:4 ~duration_ns:8_000_000
      ~warmup_ns:1_000_000 ~rng:rig.Apps.Rig.rng ~send:send_fn
      ~parse_id:(Some parse_fn)
  in
  let rps = r.Loadgen.Driver.achieved_rps in
  if rps < 85_000.0 || rps > 101_000.0 then
    Alcotest.failf "capacity %.0f should be just under 100k for 10 us service"
      rps

let test_open_loop_matches_offered_below_capacity () =
  let rig = make_fixture ~service_cycles:3000.0 in
  let r =
    Loadgen.Driver.open_loop rig.Apps.Rig.engine ~clients:rig.Apps.Rig.clients
      ~server:Apps.Rig.server_id ~rate_rps:300_000.0 ~duration_ns:5_000_000
      ~warmup_ns:1_000_000 ~rng:rig.Apps.Rig.rng ~send:send_fn
      ~parse_id:(Some parse_fn)
  in
  let a = r.Loadgen.Driver.achieved_rps in
  if a < 270_000.0 || a > 330_000.0 then
    Alcotest.failf "achieved %.0f should track offered 300k" a

let test_latency_includes_service_time () =
  (* At very low load, RTT ~ 2x one-way delay + NIC + service. Doubling the
     service cost must raise the p50 by about the difference — proving the
     response is held until the service time elapses. *)
  let measure service_cycles =
    let rig = make_fixture ~service_cycles in
    let r =
      Loadgen.Driver.open_loop rig.Apps.Rig.engine ~clients:rig.Apps.Rig.clients
        ~server:Apps.Rig.server_id ~rate_rps:10_000.0 ~duration_ns:5_000_000
        ~warmup_ns:500_000 ~rng:rig.Apps.Rig.rng ~send:send_fn
        ~parse_id:(Some parse_fn)
    in
    Stats.Histogram.mean r.Loadgen.Driver.hist
  in
  let fast = measure 3_000.0 (* 1 us *) in
  let slow = measure 18_000.0 (* 6 us *) in
  let delta = slow -. fast in
  if delta < 4_000.0 || delta > 7_000.0 then
    Alcotest.failf "mean rtt delta %.0f ns should be ~5000 (service held)" delta

let test_fifo_matching_mode () =
  let rig = make_fixture ~service_cycles:3000.0 in
  let r =
    Loadgen.Driver.closed_loop rig.Apps.Rig.engine ~clients:rig.Apps.Rig.clients
      ~server:Apps.Rig.server_id ~outstanding:2 ~duration_ns:2_000_000
      ~warmup_ns:0 ~rng:rig.Apps.Rig.rng ~send:send_fn ~parse_id:None
  in
  Alcotest.(check bool) "fifo mode completes" true
    (r.Loadgen.Driver.completed > 500);
  Alcotest.(check bool) "latencies recorded" true
    (Stats.Histogram.count r.Loadgen.Driver.hist > 500)

let test_hold_rejects_nesting () =
  let rig = Apps.Rig.create ~n_clients:1 () in
  Net.Endpoint.begin_hold rig.Apps.Rig.server_ep;
  Alcotest.check_raises "double hold"
    (Invalid_argument "Endpoint.begin_hold: already holding") (fun () ->
      Net.Endpoint.begin_hold rig.Apps.Rig.server_ep);
  Net.Endpoint.release_hold rig.Apps.Rig.server_ep ~after:0;
  Alcotest.check_raises "release without hold"
    (Invalid_argument "Endpoint.release_hold: not holding") (fun () ->
      Net.Endpoint.release_hold rig.Apps.Rig.server_ep ~after:0)

let test_held_sends_are_delayed () =
  let rig = Apps.Rig.create ~n_clients:1 () in
  let engine = rig.Apps.Rig.engine in
  let client = List.hd rig.Apps.Rig.clients in
  let arrival = ref (-1) in
  Net.Endpoint.set_rx client (fun ~src:_ buf ->
      arrival := Sim.Engine.now engine;
      Mem.Pinned.Buf.decr_ref buf);
  Net.Endpoint.begin_hold rig.Apps.Rig.server_ep;
  let staging =
    Net.Endpoint.alloc_tx rig.Apps.Rig.server_ep ~len:(Net.Packet.header_len + 4)
  in
  Net.Endpoint.send_inline_header rig.Apps.Rig.server_ep ~dst:100
    ~segments:[ staging ];
  Net.Endpoint.release_hold rig.Apps.Rig.server_ep ~after:5_000;
  Sim.Engine.run_all engine;
  (* One-way fabric delay is 850 ns; with the 5 us hold the packet cannot
     arrive before 5850. *)
  Alcotest.(check bool)
    (Printf.sprintf "arrival %d after hold" !arrival)
    true (!arrival >= 5_850)

let suite =
  [
    Alcotest.test_case "closed loop tracks service time" `Quick
      test_closed_loop_tracks_service_time;
    Alcotest.test_case "open loop below capacity" `Quick
      test_open_loop_matches_offered_below_capacity;
    Alcotest.test_case "latency includes service" `Quick
      test_latency_includes_service_time;
    Alcotest.test_case "fifo matching" `Quick test_fifo_matching_mode;
    Alcotest.test_case "hold rejects nesting" `Quick test_hold_rejects_nesting;
    Alcotest.test_case "held sends delayed" `Quick test_held_sends_are_delayed;
  ]
