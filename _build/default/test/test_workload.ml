(* Tests for workload generators: the summary statistics the paper states
   must hold on our synthetic traces. *)

let rng () = Sim.Rng.create ~seed:0xfeed

let test_ycsb_shape () =
  let wl = Workload.Ycsb.make ~n_keys:1024 ~entries:2 ~entry_size:2048 () in
  let r = rng () in
  for _ = 1 to 100 do
    match wl.Workload.Spec.next r with
    | Workload.Spec.Get { keys = [ key ] } ->
        Alcotest.(check int) "30-byte key" 30 (String.length key)
    | _ -> Alcotest.fail "ycsb must generate single-key gets"
  done;
  Alcotest.(check (float 1.0)) "mean response" 4096.0
    wl.Workload.Spec.mean_response_bytes

let test_ycsb_multiget () =
  let wl =
    Workload.Ycsb.make ~n_keys:1024 ~multiget:2 ~entries:1 ~entry_size:2048 ()
  in
  match wl.Workload.Spec.next (rng ()) with
  | Workload.Spec.Get { keys } -> Alcotest.(check int) "two keys" 2 (List.length keys)
  | _ -> Alcotest.fail "expected get"

let test_ycsb_populate_and_serve () =
  let space = Mem.Addr_space.create () in
  let wl = Workload.Ycsb.make ~n_keys:256 ~entries:2 ~entry_size:128 () in
  let pool =
    Mem.Pinned.Pool.create space ~name:"wl"
      ~classes:wl.Workload.Spec.pool_classes
  in
  let store = Kvstore.Store.create space ~name:"wl" ~capacity:256 in
  wl.Workload.Spec.populate store ~pool;
  Alcotest.(check int) "populated" 256 (Kvstore.Store.size store);
  (* Every generated key resolves. *)
  let r = rng () in
  for _ = 1 to 200 do
    match wl.Workload.Spec.next r with
    | Workload.Spec.Get { keys } ->
        List.iter
          (fun key ->
            match Kvstore.Store.get store ~key with
            | Some v -> Alcotest.(check int) "value shape" 256 (Kvstore.Store.value_len v)
            | None -> Alcotest.failf "missing key %s" key)
          keys
    | _ -> Alcotest.fail "expected get"
  done

let test_google_size_distribution () =
  let dist = Sim.Dist.Discrete.create Workload.Google.size_points in
  let r = rng () in
  let n = 100_000 in
  let le8 = ref 0 and le512 = ref 0 in
  for _ = 1 to n do
    let s = Sim.Dist.Discrete.sample dist r in
    if s <= 8 then incr le8;
    if s <= 512 then incr le512
  done;
  let f8 = float_of_int !le8 /. float_of_int n in
  let f512 = float_of_int !le512 /. float_of_int n in
  (* Paper: 34% of field sizes <= 8 B, 94.9% <= 512 B. *)
  if f8 < 0.30 || f8 > 0.38 then Alcotest.failf "P(<=8) = %.3f" f8;
  if f512 < 0.92 || f512 > 0.97 then Alcotest.failf "P(<=512) = %.3f" f512

let test_google_respects_mtu () =
  let space = Mem.Addr_space.create () in
  let wl = Workload.Google.make ~n_keys:512 ~max_vals:16 () in
  let pool =
    Mem.Pinned.Pool.create space ~name:"g" ~classes:wl.Workload.Spec.pool_classes
  in
  let store = Kvstore.Store.create space ~name:"g" ~capacity:512 in
  wl.Workload.Spec.populate store ~pool;
  let r = rng () in
  for _ = 1 to 300 do
    match wl.Workload.Spec.next r with
    | Workload.Spec.Get { keys = [ key ] } -> (
        match Kvstore.Store.get store ~key with
        | Some v ->
            let len = Kvstore.Store.value_len v in
            let n = List.length (Kvstore.Store.buffers v) in
            if len > 8192 then Alcotest.failf "object %d bytes > MTU" len;
            if n < 1 || n > 16 then Alcotest.failf "list length %d" n
        | None -> Alcotest.fail "missing key")
    | _ -> Alcotest.fail "expected get"
  done

let test_twitter_statistics () =
  let r = rng () in
  let n = 200_000 in
  let ge512 = ref 0 in
  for _ = 1 to n do
    if Workload.Twitter.sample_size r >= 512 then incr ge512
  done;
  let f = float_of_int !ge512 /. float_of_int n in
  (* Paper: about 32% of requests touch objects >= 512 B. *)
  if f < 0.28 || f > 0.36 then Alcotest.failf "P(>=512) = %.3f" f;
  (* Put fraction. *)
  let wl = Workload.Twitter.make ~n_keys:1024 () in
  let puts = ref 0 in
  let m = 50_000 in
  for _ = 1 to m do
    match wl.Workload.Spec.next r with
    | Workload.Spec.Put _ -> incr puts
    | _ -> ()
  done;
  let fp = float_of_int !puts /. float_of_int m in
  if fp < 0.07 || fp > 0.09 then Alcotest.failf "put fraction %.3f" fp

let test_cdn_object_shapes () =
  (* Mean object size ~ 20 KB, min >= 1000, segments consistent. *)
  let r = rng () in
  let n = 50_000 in
  let total = ref 0 in
  for _ = 1 to n do
    let s = Workload.Cdn.sample_object_size r in
    if s < 1000 then Alcotest.failf "object %d < 1000" s;
    if s > Workload.Cdn.max_object_bytes then Alcotest.fail "object too large";
    total := !total + s
  done;
  let mean = float_of_int !total /. float_of_int n in
  if mean < 12_000.0 || mean > 30_000.0 then Alcotest.failf "mean size %.0f" mean;
  for rank = 1 to 100 do
    let segs = Workload.Cdn.segments_of ~rank in
    Alcotest.(check bool) "at least one segment" true (segs >= 1)
  done

let test_cdn_sequential_walk () =
  let wl = Workload.Cdn.make ~n_objects:64 () in
  let r = rng () in
  (* Draw ops; whenever we see an object with k segments, the following
     k-1 ops must continue it in order. *)
  let rec check remaining last =
    if remaining > 0 then begin
      match wl.Workload.Spec.next r with
      | Workload.Spec.Get_index { key; index } ->
          (match last with
          | Some (lkey, lidx) when lidx >= 0 ->
              Alcotest.(check string) "same object" lkey key;
              Alcotest.(check int) "next segment" (lidx + 1) index
          | _ -> Alcotest.(check int) "walk starts at zero" 0 index);
          let rank =
            (* recover rank from deterministic key format *)
            int_of_string (String.sub key (String.length "cdn-image-object-") 43)
          in
          let n = Workload.Cdn.segments_of ~rank in
          if index + 1 < n then check (remaining - 1) (Some (key, index))
          else check (remaining - 1) None
      | _ -> Alcotest.fail "expected get_index"
    end
  in
  check 300 None

let suite =
  [
    Alcotest.test_case "ycsb shape" `Quick test_ycsb_shape;
    Alcotest.test_case "ycsb multiget" `Quick test_ycsb_multiget;
    Alcotest.test_case "ycsb populate/serve" `Quick test_ycsb_populate_and_serve;
    Alcotest.test_case "google size distribution" `Slow test_google_size_distribution;
    Alcotest.test_case "google respects mtu" `Quick test_google_respects_mtu;
    Alcotest.test_case "twitter statistics" `Slow test_twitter_statistics;
    Alcotest.test_case "cdn object shapes" `Slow test_cdn_object_shapes;
    Alcotest.test_case "cdn sequential walk" `Quick test_cdn_sequential_walk;
  ]

let test_trace_record_replay () =
  let wl = Workload.Twitter.make ~n_keys:512 () in
  let path = Filename.temp_file "cornflakes" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Trace.record wl ~seed:7 ~n:200 path;
      let ops = Workload.Trace.load path in
      Alcotest.(check int) "200 ops" 200 (List.length ops);
      (* The recorded stream equals a fresh draw with the same seed. *)
      let rng = Sim.Rng.create ~seed:7 in
      List.iter
        (fun op ->
          let want = Workload.Trace.op_to_line (wl.Workload.Spec.next rng) in
          Alcotest.(check string) "deterministic" want
            (Workload.Trace.op_to_line op))
        ops;
      (* Replay loops and is rng-independent. *)
      let replayed = Workload.Trace.replayed ~base:wl path in
      let r1 = Sim.Rng.create ~seed:1 in
      let first = replayed.Workload.Spec.next r1 in
      Alcotest.(check string) "replay order" 
        (Workload.Trace.op_to_line (List.hd ops))
        (Workload.Trace.op_to_line first);
      for _ = 1 to 199 do
        ignore (replayed.Workload.Spec.next r1)
      done;
      let wrapped = replayed.Workload.Spec.next r1 in
      Alcotest.(check string) "loops at end"
        (Workload.Trace.op_to_line (List.hd ops))
        (Workload.Trace.op_to_line wrapped))

let test_trace_line_roundtrip () =
  List.iter
    (fun op ->
      let line = Workload.Trace.op_to_line op in
      Alcotest.(check string) line line
        (Workload.Trace.op_to_line (Workload.Trace.op_of_line line)))
    [
      Workload.Spec.Get { keys = [ "a" ] };
      Workload.Spec.Get { keys = [ "a"; "b"; "c" ] };
      Workload.Spec.Get_index { key = "vec"; index = 3 };
      Workload.Spec.Put { key = "k"; sizes = [ 64 ] };
      Workload.Spec.Put { key = "k"; sizes = [ 64; 128; 4096 ] };
    ]

let suite = suite @ [
  Alcotest.test_case "trace record/replay" `Quick test_trace_record_replay;
  Alcotest.test_case "trace line roundtrip" `Quick test_trace_line_roundtrip;
]
