(* Tests for the key-value store: value lifecycle, pointer-swap puts,
   ownership. *)

let make () =
  let space = Mem.Addr_space.create () in
  let pool =
    Mem.Pinned.Pool.create space ~name:"kv"
      ~classes:[ (64, 64); (256, 64); (1024, 32) ]
  in
  let store = Kvstore.Store.create space ~name:"test" ~capacity:64 in
  (space, pool, store)

let value_of pool s =
  let buf = Mem.Pinned.Buf.alloc pool ~len:(String.length s) in
  Mem.Pinned.Buf.fill buf s;
  Kvstore.Store.Single buf

let test_put_get () =
  let _space, pool, store = make () in
  Kvstore.Store.put store ~key:"a" (value_of pool "alpha");
  (match Kvstore.Store.get store ~key:"a" with
  | Some (Kvstore.Store.Single buf) ->
      Alcotest.(check string) "value" "alpha"
        (Mem.View.to_string (Mem.Pinned.Buf.view buf))
  | _ -> Alcotest.fail "expected single value");
  Alcotest.(check bool) "missing" true (Kvstore.Store.get store ~key:"b" = None);
  Alcotest.(check int) "size" 1 (Kvstore.Store.size store)

let test_put_swaps_and_releases () =
  let _space, pool, store = make () in
  let old_buf = Mem.Pinned.Buf.alloc pool ~len:64 in
  Kvstore.Store.put store ~key:"k" (Kvstore.Store.Single old_buf);
  Alcotest.(check int) "store owns old" 1 (Mem.Pinned.Buf.refcount old_buf);
  Kvstore.Store.put store ~key:"k" (value_of pool "new");
  (* The old value was released — stale handle. *)
  Alcotest.(check bool) "old released" false (Mem.Pinned.Buf.is_live old_buf);
  match Kvstore.Store.get store ~key:"k" with
  | Some (Kvstore.Store.Single buf) ->
      Alcotest.(check string) "new value" "new"
        (Mem.View.to_string (Mem.Pinned.Buf.view buf))
  | _ -> Alcotest.fail "expected value"

let test_put_does_not_free_referenced () =
  (* A reader (e.g. an in-flight zero-copy send) holds a reference; the put
     must not recycle the buffer under it — the use-after-free guarantee. *)
  let _space, pool, store = make () in
  let buf = Mem.Pinned.Buf.alloc pool ~len:64 in
  Mem.Pinned.Buf.fill buf "pinned-in-flight";
  Kvstore.Store.put store ~key:"k" (Kvstore.Store.Single buf);
  Mem.Pinned.Buf.incr_ref buf;
  (* reader's reference *)
  Kvstore.Store.put store ~key:"k" (value_of pool "replacement");
  Alcotest.(check bool) "still live for reader" true (Mem.Pinned.Buf.is_live buf);
  Alcotest.(check string) "reader sees old bytes" "pinned-in-flight"
    (String.sub (Mem.View.to_string (Mem.Pinned.Buf.view buf)) 0 16);
  Mem.Pinned.Buf.decr_ref buf;
  Alcotest.(check bool) "released after reader" false (Mem.Pinned.Buf.is_live buf)

let test_linked_and_vector_values () =
  let _space, pool, store = make () in
  let bufs =
    List.map
      (fun s ->
        let b = Mem.Pinned.Buf.alloc pool ~len:(String.length s) in
        Mem.Pinned.Buf.fill b s;
        b)
      [ "one"; "two"; "three" ]
  in
  Kvstore.Store.put store ~key:"list" (Kvstore.Store.Linked bufs);
  (match Kvstore.Store.get store ~key:"list" with
  | Some v ->
      Alcotest.(check int) "three buffers" 3
        (List.length (Kvstore.Store.buffers v));
      Alcotest.(check int) "total len" 11 (Kvstore.Store.value_len v)
  | None -> Alcotest.fail "missing");
  let arr =
    Array.init 4 (fun i ->
        let b = Mem.Pinned.Buf.alloc pool ~len:8 in
        Mem.Pinned.Buf.fill b (Printf.sprintf "seg%05d" i);
        b)
  in
  Kvstore.Store.put store ~key:"vec" (Kvstore.Store.Vector arr);
  match Kvstore.Store.get store ~key:"vec" with
  | Some (Kvstore.Store.Vector a) ->
      Alcotest.(check string) "index 2" "seg00002"
        (Mem.View.to_string (Mem.Pinned.Buf.view a.(2)))
  | _ -> Alcotest.fail "expected vector"

let test_remove () =
  let _space, pool, store = make () in
  let buf = Mem.Pinned.Buf.alloc pool ~len:64 in
  Kvstore.Store.put store ~key:"k" (Kvstore.Store.Single buf);
  Kvstore.Store.remove store ~key:"k";
  Alcotest.(check bool) "gone" true (Kvstore.Store.get store ~key:"k" = None);
  Alcotest.(check bool) "buffer released" false (Mem.Pinned.Buf.is_live buf);
  Alcotest.(check int) "empty" 0 (Kvstore.Store.size store)

let test_get_charges_more_when_cold () =
  (* The store's metadata lives in simulated memory: a key miss after a
     large sweep costs more than a hot re-read. *)
  let space = Mem.Addr_space.create () in
  let pool =
    Mem.Pinned.Pool.create space ~name:"kv" ~classes:[ (64, 4096) ]
  in
  let store = Kvstore.Store.create space ~name:"cold" ~capacity:4096 in
  for i = 0 to 4095 do
    Kvstore.Store.put store ~key:(Printf.sprintf "key%05d" i)
      (value_of pool "v")
  done;
  let cpu = Memmodel.Cpu.create Memmodel.Params.default in
  let cost key =
    let c0 = Memmodel.Cpu.cycles cpu in
    ignore (Kvstore.Store.get ~cpu store ~key);
    Memmodel.Cpu.cycles cpu -. c0
  in
  let cold = cost "key00000" in
  let warm = cost "key00000" in
  Alcotest.(check bool)
    (Printf.sprintf "cold %.0f > warm %.0f" cold warm)
    true (cold > warm)

let qcheck_store_model =
  (* The store behaves like a map: random put/get/remove sequences agree
     with a reference association list. *)
  QCheck.Test.make ~name:"store matches model map" ~count:100
    QCheck.(list (pair (int_bound 7) (int_bound 2)))
    (fun ops ->
      let _space, pool, store = make () in
      let model = Hashtbl.create 8 in
      List.for_all
        (fun (k, op) ->
          let key = Printf.sprintf "k%d" k in
          match op with
          | 0 ->
              let v = Printf.sprintf "v%d-%d" k (Hashtbl.hash ops) in
              Kvstore.Store.put store ~key (value_of pool v);
              Hashtbl.replace model key v;
              true
          | 1 ->
              Kvstore.Store.remove store ~key;
              Hashtbl.remove model key;
              true
          | _ -> (
              match (Kvstore.Store.get store ~key, Hashtbl.find_opt model key) with
              | Some (Kvstore.Store.Single buf), Some v ->
                  String.equal (Mem.View.to_string (Mem.Pinned.Buf.view buf)) v
              | None, None -> true
              | _ -> false))
        ops)

let suite =
  [
    Alcotest.test_case "put get" `Quick test_put_get;
    Alcotest.test_case "put swaps and releases" `Quick test_put_swaps_and_releases;
    Alcotest.test_case "put honours readers" `Quick test_put_does_not_free_referenced;
    Alcotest.test_case "linked and vector values" `Quick test_linked_and_vector_values;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "cold get costs more" `Quick test_get_charges_more_when_cold;
    QCheck_alcotest.to_alcotest qcheck_store_model;
  ]
