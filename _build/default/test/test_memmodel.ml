(* Tests for the cache simulator and cost meter. *)

let params = Memmodel.Params.default

let small_geometry =
  { Memmodel.Params.size_bytes = 1024; ways = 2; line_bytes = 64 }

let test_hit_after_access () =
  let c = Memmodel.Cache.create small_geometry in
  Alcotest.(check bool) "cold miss" false (Memmodel.Cache.access c ~line:5);
  Alcotest.(check bool) "warm hit" true (Memmodel.Cache.access c ~line:5)

let test_lru_eviction () =
  (* 1024 B / 64 B = 16 lines, 2 ways -> 8 sets. Lines 0, 8, 16 map to set 0. *)
  let c = Memmodel.Cache.create small_geometry in
  ignore (Memmodel.Cache.access c ~line:0);
  ignore (Memmodel.Cache.access c ~line:8);
  (* Re-touch 0 so 8 becomes LRU. *)
  ignore (Memmodel.Cache.access c ~line:0);
  ignore (Memmodel.Cache.access c ~line:16);
  Alcotest.(check bool) "0 survives" true (Memmodel.Cache.probe c ~line:0);
  Alcotest.(check bool) "8 evicted" false (Memmodel.Cache.probe c ~line:8);
  Alcotest.(check bool) "16 resident" true (Memmodel.Cache.probe c ~line:16)

let test_probe_no_side_effect () =
  let c = Memmodel.Cache.create small_geometry in
  Alcotest.(check bool) "probe misses" false (Memmodel.Cache.probe c ~line:3);
  Alcotest.(check bool) "still cold" false (Memmodel.Cache.access c ~line:3)

let test_hierarchy_levels () =
  let cpu = Memmodel.Cpu.create params in
  (* First latency access: DRAM cost. Second: L1 cost. *)
  let before = Memmodel.Cpu.cycles cpu in
  Memmodel.Cpu.latency_access cpu Memmodel.Cpu.Other ~addr:4096;
  let cold = Memmodel.Cpu.cycles cpu -. before in
  Alcotest.(check (float 0.001)) "cold = dram" params.Memmodel.Params.lat_dram cold;
  let before = Memmodel.Cpu.cycles cpu in
  Memmodel.Cpu.latency_access cpu Memmodel.Cpu.Other ~addr:4096;
  let warm = Memmodel.Cpu.cycles cpu -. before in
  Alcotest.(check (float 0.001)) "warm = l1" params.Memmodel.Params.lat_l1 warm

let test_stream_cost_per_line () =
  let cpu = Memmodel.Cpu.create params in
  let before = Memmodel.Cpu.cycles cpu in
  (* 256 bytes = 4 lines, all cold. *)
  Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:(1 lsl 22) ~len:256;
  let cost = Memmodel.Cpu.cycles cpu -. before in
  Alcotest.(check (float 0.001)) "4 dram lines"
    (4.0 *. params.Memmodel.Params.stream_dram)
    cost;
  let before = Memmodel.Cpu.cycles cpu in
  Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:(1 lsl 22) ~len:256;
  let warm = Memmodel.Cpu.cycles cpu -. before in
  Alcotest.(check (float 0.001)) "4 l1 lines"
    (4.0 *. params.Memmodel.Params.stream_l1)
    warm

let test_stream_straddles_lines () =
  let cpu = Memmodel.Cpu.create params in
  let before = Memmodel.Cpu.cycles cpu in
  (* 2 bytes starting at the last byte of a line touch two lines. *)
  Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:((1 lsl 23) + 63) ~len:2;
  let cost = Memmodel.Cpu.cycles cpu -. before in
  Alcotest.(check (float 0.001)) "2 dram lines"
    (2.0 *. params.Memmodel.Params.stream_dram)
    cost

let test_install_dma_lands_in_l3 () =
  let cpu = Memmodel.Cpu.create params in
  Memmodel.Cpu.install_dma cpu ~addr:(1 lsl 24) ~len:64;
  let before = Memmodel.Cpu.cycles cpu in
  Memmodel.Cpu.latency_access cpu Memmodel.Cpu.Other ~addr:(1 lsl 24);
  let cost = Memmodel.Cpu.cycles cpu -. before in
  Alcotest.(check (float 0.001)) "ddio -> l3 hit"
    params.Memmodel.Params.lat_l3 cost

let test_breakdown_categories () =
  let cpu = Memmodel.Cpu.create params in
  Memmodel.Cpu.charge cpu Memmodel.Cpu.Deser 10.0;
  Memmodel.Cpu.charge cpu Memmodel.Cpu.Copy 20.0;
  Memmodel.Cpu.charge cpu Memmodel.Cpu.Copy 5.0;
  let get cat = List.assoc cat (Memmodel.Cpu.breakdown cpu) in
  Alcotest.(check (float 0.001)) "deser" 10.0 (get Memmodel.Cpu.Deser);
  Alcotest.(check (float 0.001)) "copy" 25.0 (get Memmodel.Cpu.Copy);
  Alcotest.(check (float 0.001)) "total" 35.0 (Memmodel.Cpu.cycles cpu);
  Memmodel.Cpu.reset_breakdown cpu;
  Alcotest.(check (float 0.001)) "reset" 0.0 (get Memmodel.Cpu.Copy);
  (* Total cycle counter is monotonic across breakdown resets. *)
  Alcotest.(check (float 0.001)) "cycles kept" 35.0 (Memmodel.Cpu.cycles cpu)

let test_shared_l3 () =
  let l3 = Memmodel.Cache.create params.Memmodel.Params.l3 in
  let a = Memmodel.Cpu.create ~shared_l3:l3 params in
  let b = Memmodel.Cpu.create ~shared_l3:l3 params in
  (* Core A faults a line in; core B should then hit in the shared L3. *)
  Memmodel.Cpu.latency_access a Memmodel.Cpu.Other ~addr:(1 lsl 25);
  let before = Memmodel.Cpu.cycles b in
  Memmodel.Cpu.latency_access b Memmodel.Cpu.Other ~addr:(1 lsl 25);
  let cost = Memmodel.Cpu.cycles b -. before in
  Alcotest.(check (float 0.001)) "b hits shared l3"
    params.Memmodel.Params.lat_l3 cost

let test_cycles_to_ns () =
  Alcotest.(check (float 0.001)) "3GHz" 100.0
    (Memmodel.Params.cycles_to_ns params 300.0);
  Alcotest.(check (float 0.001)) "roundtrip" 300.0
    (Memmodel.Params.ns_to_cycles params 100.0)

let qcheck_cache_never_grows =
  (* Property: after any access sequence, a set holds at most [ways]
     distinct resident lines that map to it. *)
  QCheck.Test.make ~name:"cache set occupancy bounded" ~count:100
    QCheck.(list (int_bound 1000))
    (fun lines ->
      let c = Memmodel.Cache.create small_geometry in
      List.iter (fun l -> ignore (Memmodel.Cache.access c ~line:l)) lines;
      (* 8 sets, 2 ways: of lines 0..1000 mapping to set 0, at most 2 are
         resident. *)
      let resident =
        List.length
          (List.filter
             (fun l -> Memmodel.Cache.probe c ~line:l)
             (List.init 126 (fun i -> i * 8)))
      in
      resident <= 2)

let suite =
  [
    Alcotest.test_case "hit after access" `Quick test_hit_after_access;
    Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
    Alcotest.test_case "probe has no side effect" `Quick test_probe_no_side_effect;
    Alcotest.test_case "hierarchy level costs" `Quick test_hierarchy_levels;
    Alcotest.test_case "stream cost per line" `Quick test_stream_cost_per_line;
    Alcotest.test_case "stream straddles lines" `Quick test_stream_straddles_lines;
    Alcotest.test_case "ddio install" `Quick test_install_dma_lands_in_l3;
    Alcotest.test_case "breakdown categories" `Quick test_breakdown_categories;
    Alcotest.test_case "shared l3" `Quick test_shared_l3;
    Alcotest.test_case "cycles to ns" `Quick test_cycles_to_ns;
    QCheck_alcotest.to_alcotest qcheck_cache_never_grows;
  ]
