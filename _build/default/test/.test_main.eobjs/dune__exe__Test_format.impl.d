test/test_format.ml: Alcotest Bytes Char Cornflakes Int64 List Mem QCheck QCheck_alcotest Schema Sim String Wire
