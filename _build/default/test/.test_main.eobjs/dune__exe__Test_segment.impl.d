test/test_segment.ml: Alcotest Bytes Char Cornflakes List Mem Net Sim String Test_format Wire
