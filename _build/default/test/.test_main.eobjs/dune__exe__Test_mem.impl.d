test/test_mem.ml: Alcotest Bytes Char List Mem QCheck QCheck_alcotest String
