test/test_kvstore.ml: Alcotest Array Hashtbl Kvstore List Mem Memmodel Printf QCheck QCheck_alcotest String
