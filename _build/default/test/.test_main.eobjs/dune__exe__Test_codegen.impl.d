test/test_codegen.ml: Alcotest Codegen Cornflakes Filename List Mem Printf Schema String Sys Wire
