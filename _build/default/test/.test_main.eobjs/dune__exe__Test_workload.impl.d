test/test_workload.ml: Alcotest Filename Fun Kvstore List Mem Sim String Sys Workload
