test/test_replication.ml: Alcotest Apps Cornflakes Kvstore List Loadgen Mem Net Printf Replication Schema Sim String Wire Workload
