test/test_fuzz.ml: Baselines Bytes Char Cornflakes Mem Mini_redis Net QCheck QCheck_alcotest Sim String Test_format Workload
