test/test_apps.ml: Alcotest Apps Kvstore List Loadgen Mem Net Printf Sim Wire Workload
