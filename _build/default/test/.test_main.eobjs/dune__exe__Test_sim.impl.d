test/test_sim.ml: Alcotest Array Float Int64 List QCheck QCheck_alcotest Sim
