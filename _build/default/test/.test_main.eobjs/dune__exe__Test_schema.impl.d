test/test_schema.ml: Alcotest Array List Schema
