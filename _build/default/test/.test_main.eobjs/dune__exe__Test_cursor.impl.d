test/test_cursor.ml: Alcotest Bytes Gen Int64 Mem QCheck QCheck_alcotest String Wire
