test/test_redis.ml: Alcotest Apps Cornflakes Kvstore List Loadgen Mem Mini_redis Net Printf QCheck QCheck_alcotest Sim String Wire Workload
