test/test_loadgen.ml: Alcotest Apps Bytes List Loadgen Mem Memmodel Net Printf Sim Stats String
