test/test_tcp.ml: Alcotest Char List Mem Net Printf QCheck QCheck_alcotest Queue Sim String Tcp
