test/test_extensions.ml: Alcotest Array Cornflakes Mem Memmodel Net Sim String Wire Workload
