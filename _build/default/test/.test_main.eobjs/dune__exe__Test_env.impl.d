test/test_env.ml: Alcotest Mem Net Queue Sim String
