test/test_cornflakes.ml: Alcotest Cornflakes List Mem Memmodel Net Nic Sim String Test_env Test_format Wire
