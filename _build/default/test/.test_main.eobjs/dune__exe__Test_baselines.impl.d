test/test_baselines.ml: Alcotest Baselines Int64 List Mem Net QCheck QCheck_alcotest Schema Sim String Test_env Test_format Wire
