test/test_net.ml: Alcotest Baselines List Mem Net Nic Sim String Test_env
