test/test_memmodel.ml: Alcotest List Memmodel QCheck QCheck_alcotest
