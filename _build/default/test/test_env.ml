(* Shared scaffolding for network-level tests: an engine, a fabric, a
   registry, and two endpoints, with a catcher that collects packets
   delivered to an endpoint. *)

type t = {
  engine : Sim.Engine.t;
  fabric : Net.Fabric.t;
  registry : Mem.Registry.t;
  space : Mem.Addr_space.t;
  a : Net.Endpoint.t; (* "client" side *)
  b : Net.Endpoint.t; (* "server" side *)
  received_at_b : (int * Mem.Pinned.Buf.t) Queue.t;
}

let make ?cpu_b ?config () =
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let a = Net.Endpoint.create ?config fabric registry ~id:1 in
  let b = Net.Endpoint.create ?cpu:cpu_b ?config fabric registry ~id:2 in
  let received_at_b = Queue.create () in
  Net.Endpoint.set_rx b (fun ~src buf -> Queue.add (src, buf) received_at_b);
  { engine; fabric; registry; space; a; b; received_at_b }

(* Run the engine until all in-flight work drains, then pop the first packet
   received at [b]. *)
let catch env =
  Sim.Engine.run_all env.engine;
  match Queue.take_opt env.received_at_b with
  | Some (src, buf) -> (src, buf)
  | None -> Alcotest.fail "no packet delivered"

(* A pinned pool registered with the env's registry, for app data. *)
let data_pool ?(classes = [ (64, 256); (256, 256); (1024, 128); (4096, 64) ])
    env =
  let pool = Mem.Pinned.Pool.create env.space ~name:"data" ~classes in
  Mem.Registry.register env.registry pool;
  pool

let pinned_of_string pool s =
  let buf = Mem.Pinned.Buf.alloc pool ~len:(String.length s) in
  Mem.Pinned.Buf.fill buf s;
  buf
