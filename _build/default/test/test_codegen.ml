(* Tests for the schema compiler (code generation). *)

let test_ocaml_name_sanitization () =
  List.iter
    (fun (input, want) ->
      Alcotest.(check string) input want (Codegen.Emit.ocaml_name input))
    [
      ("vals", "vals");
      ("MyField", "myfield");
      ("type", "type_");
      ("end", "end_");
      ("9lives", "f9lives");
      ("weird-name", "weird_name");
      ("", "field");
    ]

let test_generated_source_mentions_all_fields () =
  let schema_text =
    "message Pair { uint64 first = 1; bytes second = 2; double ratio = 3; }"
  in
  let schema = Schema.Parser.parse schema_text in
  let src = Codegen.Emit.module_source ~schema_text schema in
  let contains needle =
    let n = String.length needle and h = String.length src in
    let rec go i = i + n <= h && (String.sub src i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains needle))
    [
      "module Pair";
      "let set_first";
      "let first";
      "let set_second";
      "let set_ratio";
      "Wire.Dyn.Float";
      "let deserialize";
      "let send";
      "DO NOT EDIT";
    ]

(* Golden test: the checked-in generated module in examples/ must match
   what the compiler emits today (it is compiled by the examples build, so
   together these prove generated code builds and stays in sync). *)
let test_generated_example_in_sync () =
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* dune runs tests in _build/default/test; sources are two levels up. *)
  let root = Filename.concat (Filename.concat (Sys.getcwd ()) "..") ".." in
  let proto = Filename.concat root "examples/kv.proto" in
  let generated = Filename.concat root "examples/kv_msgs.ml" in
  if Sys.file_exists proto && Sys.file_exists generated then begin
    let schema_text = read proto in
    let schema = Schema.Parser.parse schema_text in
    let want = Codegen.Emit.module_source ~schema_text schema in
    let got = read generated in
    if not (String.equal want got) then
      Alcotest.fail
        "examples/kv_msgs.ml is stale; regenerate with:\n\
         dune exec bin/cornflakes_cli.exe -- compile examples/kv.proto -o \
         examples/kv_msgs.ml"
  end
  else Printf.printf "(examples not found from %s; skipping golden check)\n"
         (Sys.getcwd ())

let test_generated_roundtrips_against_runtime () =
  (* Emit code for a schema, then exercise the same accessors through the
     dynamic API the generated code wraps, proving the calling conventions
     the generator relies on exist and behave. *)
  let schema_text = "message M { uint64 id = 1; repeated bytes blobs = 2; }" in
  let schema = Schema.Parser.parse schema_text in
  let src = Codegen.Emit.module_source ~schema_text schema in
  Alcotest.(check bool) "generated something" true (String.length src > 200);
  let space = Mem.Addr_space.create () in
  let desc = Schema.Desc.message schema "M" in
  let msg = Wire.Dyn.create desc in
  Wire.Dyn.set_int msg "id" 5L;
  Wire.Dyn.append msg "blobs"
    (Wire.Dyn.Payload (Wire.Payload.of_string space "payload"));
  Alcotest.(check bool) "object_len positive" true
    (Cornflakes.Format_.object_len msg > 0)

let suite =
  [
    Alcotest.test_case "name sanitization" `Quick test_ocaml_name_sanitization;
    Alcotest.test_case "source covers fields" `Quick
      test_generated_source_mentions_all_fields;
    Alcotest.test_case "example in sync (golden)" `Quick
      test_generated_example_in_sync;
    Alcotest.test_case "runtime conventions" `Quick
      test_generated_roundtrips_against_runtime;
  ]
