(* Tests for the CornflakesObj iterator API (Listing 1) and multi-frame
   segmentation (the §3.2.3 extension). *)

let schema = Test_format.schema

let everything = Test_format.everything

type env = {
  engine : Sim.Engine.t;
  fabric : Net.Fabric.t;
  space : Mem.Addr_space.t;
  registry : Mem.Registry.t;
  a : Net.Endpoint.t;
  b : Net.Endpoint.t;
  pool : Mem.Pinned.Pool.t;
}

let make () =
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let a = Net.Endpoint.create fabric registry ~id:1 in
  let b = Net.Endpoint.create fabric registry ~id:2 in
  let pool =
    Mem.Pinned.Pool.create space ~name:"seg"
      ~classes:[ (1024, 64); (16384, 64); (65536, 32); (131072, 8) ]
  in
  Mem.Registry.register registry pool;
  { engine; fabric; space; registry; a; b; pool }

let big_message env ~zc_sizes ~copied =
  let msg = Wire.Dyn.create everything in
  Wire.Dyn.set_int msg "id" 9L;
  Wire.Dyn.set_payload msg "name"
    (Wire.Payload.Literal (Mem.View.of_string env.space copied));
  List.iteri
    (fun i n ->
      let buf = Mem.Pinned.Buf.alloc env.pool ~len:n in
      Mem.Pinned.Buf.fill buf
        (String.init n (fun j -> Char.chr ((i + j) land 0x7f)));
      (* The send consumes the message's reference; the test keeps one so
         it can compare contents afterwards. *)
      Mem.Pinned.Buf.incr_ref buf;
      Wire.Dyn.append msg "tags" (Wire.Dyn.Payload (Wire.Payload.Zero_copy buf)))
    zc_sizes;
  msg

(* --- Obj_api ----------------------------------------------------------- *)

let test_obj_api_lengths () =
  let env = make () in
  let msg = big_message env ~zc_sizes:[ 1000; 2000 ] ~copied:"abc" in
  let plan = Cornflakes.Format_.measure msg in
  Alcotest.(check int) "object_len" plan.Cornflakes.Format_.total_len
    (Cornflakes.Obj_api.object_len msg);
  Alcotest.(check int) "copy bytes"
    (plan.Cornflakes.Format_.header_len + plan.Cornflakes.Format_.stream_len)
    (Cornflakes.Obj_api.num_copy_bytes msg);
  Alcotest.(check int) "zc entries" 2
    (Cornflakes.Obj_api.num_zero_copy_entries msg)

let test_obj_api_ranged_zero_copy_iteration () =
  let env = make () in
  let msg = big_message env ~zc_sizes:[ 1000; 2000 ] ~copied:"abc" in
  let copy_len = Cornflakes.Obj_api.num_copy_bytes msg in
  (* A range straddling the middle of the first zc entry and the start of
     the second. *)
  let start = copy_len + 500 and stop = copy_len + 1300 in
  let slices = ref [] in
  Cornflakes.Obj_api.iterate_over_zero_copy_entries msg ~start ~stop
    (fun slice -> slices := Mem.Pinned.Buf.len slice :: !slices);
  Alcotest.(check (list int)) "slice lengths" [ 500; 300 ] (List.rev !slices);
  (* Full range covers everything exactly once. *)
  let total = ref 0 in
  Cornflakes.Obj_api.iterate_over_zero_copy_entries msg ~start:0 ~stop:max_int
    (fun slice -> total := !total + Mem.Pinned.Buf.len slice);
  Alcotest.(check int) "full coverage" 3000 !total

let test_obj_api_copy_range () =
  let env = make () in
  let msg = big_message env ~zc_sizes:[ 600 ] ~copied:"0123456789" in
  let copy_len = Cornflakes.Obj_api.num_copy_bytes msg in
  let scratch_bytes = Bytes.create copy_len in
  let scratch =
    Mem.View.make
      ~addr:(Mem.Addr_space.reserve env.space ~bytes:copy_len)
      ~data:scratch_bytes ~off:0 ~len:copy_len
  in
  let got = ref None in
  Cornflakes.Obj_api.iterate_over_copy_entries msg ~scratch ~start:0
    ~stop:copy_len (fun v -> got := Some (Mem.View.to_string v));
  (match !got with
  | Some s ->
      Alcotest.(check int) "whole copied region" copy_len (String.length s)
  | None -> Alcotest.fail "no copy entry");
  (* A range entirely inside the zc region yields no copy entries. *)
  let none = ref true in
  Cornflakes.Obj_api.iterate_over_copy_entries msg ~scratch ~start:copy_len
    ~stop:(copy_len + 100) (fun _ -> none := false);
  Alcotest.(check bool) "no copy entries in zc range" true !none

(* --- Segmentation ------------------------------------------------------ *)

let segmented_roundtrip ?(loss_check = false) env msg =
  ignore loss_check;
  let segmenter = Cornflakes.Segment.Segmenter.create env.a in
  let reassembler = Cornflakes.Segment.Reassembler.create env.registry in
  let delivered = ref [] in
  Net.Endpoint.set_rx env.b (fun ~src buf ->
      Cornflakes.Segment.Reassembler.on_packet reassembler ~src buf
        ~deliver:(fun ~src:_ obj -> delivered := obj :: !delivered));
  Cornflakes.Segment.Segmenter.send segmenter ~dst:2 msg;
  Sim.Engine.run_all env.engine;
  !delivered

let test_single_frame_object () =
  let env = make () in
  let msg = big_message env ~zc_sizes:[ 700 ] ~copied:"small" in
  match segmented_roundtrip env msg with
  | [ obj ] ->
      let back = Cornflakes.Format_.deserialize schema everything obj in
      if not (Wire.Dyn.equal msg back) then Alcotest.fail "roundtrip mismatch";
      Wire.Dyn.release back;
      Mem.Pinned.Buf.decr_ref obj
  | other -> Alcotest.failf "expected 1 object, got %d" (List.length other)

let test_multi_frame_object () =
  let env = make () in
  (* ~120 KB of zero-copy payload: ~14 frames. *)
  let msg =
    big_message env
      ~zc_sizes:[ 60_000; 40_000; 20_000 ]
      ~copied:(String.make 500 'c')
  in
  Alcotest.(check bool) "too large for send_object" true
    (Cornflakes.Format_.object_len msg > Net.Packet.max_payload);
  match segmented_roundtrip env msg with
  | [ obj ] ->
      let back = Cornflakes.Format_.deserialize schema everything obj in
      if not (Wire.Dyn.equal msg back) then Alcotest.fail "roundtrip mismatch";
      Wire.Dyn.release back;
      Mem.Pinned.Buf.decr_ref obj
  | other -> Alcotest.failf "expected 1 object, got %d" (List.length other)

let test_interleaved_messages_same_sender () =
  let env = make () in
  let segmenter = Cornflakes.Segment.Segmenter.create env.a in
  let reassembler = Cornflakes.Segment.Reassembler.create env.registry in
  let delivered = ref 0 in
  Net.Endpoint.set_rx env.b (fun ~src buf ->
      Cornflakes.Segment.Reassembler.on_packet reassembler ~src buf
        ~deliver:(fun ~src:_ obj ->
          incr delivered;
          Mem.Pinned.Buf.decr_ref obj));
  for _ = 1 to 3 do
    let msg = big_message env ~zc_sizes:[ 30_000 ] ~copied:"x" in
    Cornflakes.Segment.Segmenter.send segmenter ~dst:2 msg
  done;
  Sim.Engine.run_all env.engine;
  Alcotest.(check int) "three objects" 3 !delivered;
  Alcotest.(check int) "nothing pending" 0
    (Cornflakes.Segment.Reassembler.pending reassembler)

let test_zc_refs_released_after_all_frames () =
  let env = make () in
  let buf = Mem.Pinned.Buf.alloc env.pool ~len:50_000 in
  Mem.Pinned.Buf.fill buf (String.make 50_000 'z');
  Mem.Pinned.Buf.incr_ref buf;
  (* our handle survives the send *)
  let msg = Wire.Dyn.create everything in
  Wire.Dyn.set_payload msg "name" (Wire.Payload.Zero_copy buf);
  let segmenter = Cornflakes.Segment.Segmenter.create env.a in
  Cornflakes.Segment.Segmenter.send segmenter ~dst:2 msg;
  Alcotest.(check bool) "slices hold refs in flight" true
    (Mem.Pinned.Buf.refcount buf >= 2);
  Sim.Engine.run_all env.engine;
  Alcotest.(check int) "only our handle remains" 1 (Mem.Pinned.Buf.refcount buf)

let test_oversized_rejected () =
  let env = make () in
  let pool_big =
    Mem.Pinned.Pool.create env.space ~name:"huge"
      ~classes:[ (1 lsl 22, 2) ]
  in
  Mem.Registry.register env.registry pool_big;
  let buf = Mem.Pinned.Buf.alloc pool_big ~len:(Cornflakes.Segment.max_object + 1) in
  let msg = Wire.Dyn.create everything in
  Wire.Dyn.set_payload msg "name" (Wire.Payload.Zero_copy buf);
  let segmenter = Cornflakes.Segment.Segmenter.create env.a in
  match Cornflakes.Segment.Segmenter.send segmenter ~dst:2 msg with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_reassembler_drops_garbage () =
  let env = make () in
  let reassembler = Cornflakes.Segment.Reassembler.create env.registry in
  let delivered = ref 0 in
  Net.Endpoint.set_rx env.b (fun ~src buf ->
      Cornflakes.Segment.Reassembler.on_packet reassembler ~src buf
        ~deliver:(fun ~src:_ obj ->
          incr delivered;
          Mem.Pinned.Buf.decr_ref obj));
  Net.Endpoint.send_string env.a ~dst:2 "short";
  Net.Endpoint.send_string env.a ~dst:2
    "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff-junk";
  Sim.Engine.run_all env.engine;
  Alcotest.(check int) "nothing delivered" 0 !delivered

let suite =
  [
    Alcotest.test_case "obj_api lengths" `Quick test_obj_api_lengths;
    Alcotest.test_case "obj_api ranged zc iteration" `Quick
      test_obj_api_ranged_zero_copy_iteration;
    Alcotest.test_case "obj_api copy range" `Quick test_obj_api_copy_range;
    Alcotest.test_case "single-frame object" `Quick test_single_frame_object;
    Alcotest.test_case "multi-frame object" `Quick test_multi_frame_object;
    Alcotest.test_case "interleaved messages" `Quick
      test_interleaved_messages_same_sender;
    Alcotest.test_case "zc refs across frames" `Quick
      test_zc_refs_released_after_all_frames;
    Alcotest.test_case "oversized rejected" `Quick test_oversized_rejected;
    Alcotest.test_case "reassembler drops garbage" `Quick
      test_reassembler_drops_garbage;
  ]

let test_reassembler_expires_stalled_objects () =
  let env = make () in
  let segmenter = Cornflakes.Segment.Segmenter.create env.a in
  let reassembler = Cornflakes.Segment.Reassembler.create env.registry in
  let delivered = ref 0 in
  Net.Endpoint.set_rx env.b (fun ~src buf ->
      (* Stamp the reassembler with the engine clock, like a real event
         loop would. *)
      let _ =
        Cornflakes.Segment.Reassembler.expire reassembler
          ~now:(Sim.Engine.now env.engine) ~timeout_ns:max_int
      in
      Cornflakes.Segment.Reassembler.on_packet reassembler ~src buf
        ~deliver:(fun ~src:_ obj ->
          incr delivered;
          Mem.Pinned.Buf.decr_ref obj));
  (* Lose ~half the fragments of a large object: it can never complete. *)
  Net.Fabric.set_loss_rate env.fabric 0.5;
  let msg = big_message env ~zc_sizes:[ 80_000 ] ~copied:"x" in
  Cornflakes.Segment.Segmenter.send segmenter ~dst:2 msg;
  Sim.Engine.run_all env.engine;
  Net.Fabric.set_loss_rate env.fabric 0.0;
  Alcotest.(check int) "never delivered" 0 !delivered;
  Alcotest.(check int) "one stalled object" 1
    (Cornflakes.Segment.Reassembler.pending reassembler);
  (* An expiry pass with a finite timeout reclaims the buffer. *)
  let evicted =
    Cornflakes.Segment.Reassembler.expire reassembler
      ~now:(Sim.Engine.now env.engine + 10_000_000)
      ~timeout_ns:1_000_000
  in
  Alcotest.(check int) "evicted" 1 evicted;
  Alcotest.(check int) "nothing pending" 0
    (Cornflakes.Segment.Reassembler.pending reassembler)

let suite = suite @ [
  Alcotest.test_case "reassembler expires stalls" `Quick
    test_reassembler_expires_stalled_objects;
]
