(* Tests for histograms, curves, and tables. *)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create ~resolution_ns:1000 ~max_ns:1_000_000 () in
  for i = 1 to 100 do
    Stats.Histogram.record h (i * 1000)
  done;
  Alcotest.(check int) "count" 100 (Stats.Histogram.count h);
  Alcotest.(check int) "p50" 50_000 (Stats.Histogram.percentile h 0.50);
  Alcotest.(check int) "p99" 99_000 (Stats.Histogram.percentile h 0.99);
  Alcotest.(check int) "p100" 100_000 (Stats.Histogram.percentile h 1.0);
  Alcotest.(check int) "min" 1000 (Stats.Histogram.min_ns h);
  Alcotest.(check int) "max" 100_000 (Stats.Histogram.max_ns h);
  Alcotest.(check (float 1.0)) "mean" 50_500.0 (Stats.Histogram.mean h)

let test_histogram_overflow_bucket () =
  let h = Stats.Histogram.create ~resolution_ns:1000 ~max_ns:10_000 () in
  Stats.Histogram.record h 500_000;
  Alcotest.(check bool) "overflow recorded" true (Stats.Histogram.count h = 1);
  Alcotest.(check bool) "p99 at cap" true (Stats.Histogram.percentile h 0.99 >= 10_000)

let test_histogram_empty () =
  let h = Stats.Histogram.create () in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Stats.Histogram.percentile h 0.5))

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.record a 1_000;
  Stats.Histogram.record b 9_000;
  Stats.Histogram.merge_into ~dst:a ~src:b;
  Alcotest.(check int) "merged count" 2 (Stats.Histogram.count a);
  Alcotest.(check int) "merged max" 9_000 (Stats.Histogram.max_ns a)

let point ~offered ~achieved ~p99_us =
  {
    Stats.Curve.offered;
    achieved;
    p50_ns = p99_us * 300;
    p99_ns = p99_us * 1000;
    mean_ns = 0.0;
  }

let test_curve_slo_selection () =
  let c = Stats.Curve.create ~name:"sys" in
  Stats.Curve.add c (point ~offered:100.0 ~achieved:100.0 ~p99_us:10);
  Stats.Curve.add c (point ~offered:200.0 ~achieved:198.0 ~p99_us:30);
  Stats.Curve.add c (point ~offered:300.0 ~achieved:260.0 ~p99_us:900);
  (* The 300-offered point violates the 95% validity rule (260 < 285). *)
  Alcotest.(check int) "valid points" 2 (List.length (Stats.Curve.valid_points c));
  Alcotest.(check (float 0.01)) "max achieved includes invalid" 260.0
    (Stats.Curve.max_achieved c);
  (match Stats.Curve.throughput_at_slo c ~p99_slo_ns:50_000 with
  | Some t -> Alcotest.(check (float 0.01)) "slo pick" 198.0 t
  | None -> Alcotest.fail "expected an SLO point");
  Alcotest.(check bool) "tight slo excludes all" true
    (Stats.Curve.throughput_at_slo c ~p99_slo_ns:5_000 = None)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_renders () =
  let t = Stats.Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Stats.Table.add_row t [ "xxx"; "y" ];
  let s = Stats.Table.to_string t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 6 = "== T =");
  Alcotest.(check bool) "has row" true (contains s "xxx");
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Stats.Table.add_row t [ "only-one" ])

let qcheck_percentile_monotonic =
  QCheck.Test.make ~name:"percentiles are monotonic" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 100_000))
    (fun samples ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.record h) samples;
      let p25 = Stats.Histogram.percentile h 0.25 in
      let p50 = Stats.Histogram.percentile h 0.50 in
      let p99 = Stats.Histogram.percentile h 0.99 in
      p25 <= p50 && p50 <= p99)

let suite =
  [
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow_bucket;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "curve slo selection" `Quick test_curve_slo_selection;
    Alcotest.test_case "table renders" `Quick test_table_renders;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotonic;
  ]
