(* Segmentation demo (§3.2.3 extension): ship a 150 KB object — far beyond
   one jumbo frame — using the ranged CornflakesObj iterators. Large pinned
   fields are sliced zero-copy across frames; the receiver reassembles and
   deserializes as usual.

   Run with:  dune exec examples/large_object.exe *)

let schema_text =
  {|
  message Blob {
    uint64 id = 1;
    string label = 2;
    repeated bytes parts = 3;
  }
  |}

let () =
  let schema = Schema.Parser.parse schema_text in
  let blob = Schema.Desc.message schema "Blob" in
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let alice = Net.Endpoint.create fabric registry ~id:1 in
  let bob = Net.Endpoint.create fabric registry ~id:2 in
  let pool =
    Mem.Pinned.Pool.create space ~name:"blobs" ~classes:[ (65536, 8) ]
  in
  Mem.Registry.register registry pool;

  (* A 150 KB object: three pinned 50 KB parts. *)
  let msg = Wire.Dyn.create blob in
  Wire.Dyn.set_int msg "id" 150L;
  Wire.Dyn.set_string msg space "label" "three 50 KB parts";
  for i = 1 to 3 do
    let part = Mem.Pinned.Buf.alloc pool ~len:50_000 in
    Mem.Pinned.Buf.fill part (String.make 50_000 (Char.chr (Char.code '0' + i)));
    Wire.Dyn.append msg "parts" (Wire.Dyn.Payload (Wire.Payload.Zero_copy part))
  done;
  Printf.printf "object is %d bytes; a jumbo frame carries %d\n"
    (Cornflakes.Obj_api.object_len msg)
    Net.Packet.max_payload;

  let segmenter = Cornflakes.Segment.Segmenter.create alice in
  let reassembler = Cornflakes.Segment.Reassembler.create registry in
  Net.Endpoint.set_rx bob (fun ~src buf ->
      Cornflakes.Segment.Reassembler.on_packet reassembler ~src buf
        ~deliver:(fun ~src:_ obj ->
          let back = Cornflakes.Send.deserialize schema blob obj in
          Printf.printf "bob reassembled id=%Ld %S with parts [%s]\n"
            (Option.value ~default:0L (Wire.Dyn.get_int back "id"))
            (Option.fold ~none:"" ~some:Wire.Payload.to_string
               (Wire.Dyn.get_payload back "label"))
            (String.concat "; "
               (List.map
                  (fun v ->
                    match v with
                    | Wire.Dyn.Payload p ->
                        Printf.sprintf "%d x '%c'" (Wire.Payload.len p)
                          (Wire.Payload.to_string p).[0]
                    | _ -> "?")
                  (Wire.Dyn.get_list back "parts")));
          Wire.Dyn.release back;
          Mem.Pinned.Buf.decr_ref obj));
  Cornflakes.Segment.Segmenter.send segmenter ~dst:2 msg;
  Sim.Engine.run_all engine;
  Printf.printf "frames on the wire: %d\n" (Net.Endpoint.tx_packets alice)
