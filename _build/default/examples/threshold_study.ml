(* The paper's Section 5 methodology in miniature: derive the zero-copy
   threshold for a platform by sweeping field sizes and comparing an
   all-scatter-gather Cornflakes against an all-copy one. Practitioners
   re-run exactly this on new hardware (Section 4.1, "Configuring
   Cornflakes").

   Run with:  dune exec examples/threshold_study.exe *)

let sizes = [ 64; 128; 256; 512; 1024; 2048 ]

let measure config ~entry_size =
  let rig = Apps.Rig.create () in
  let l3 =
    Memmodel.Params.default.Memmodel.Params.l3.Memmodel.Params.size_bytes
  in
  let n_keys = min 262_144 (max 8_192 (5 * l3 / entry_size)) in
  let workload = Workload.Ycsb.make ~n_keys ~entries:1 ~entry_size () in
  let app =
    Apps.Kv_app.install rig
      ~backend:(Apps.Backend.cornflakes ~config ())
      ~workload
  in
  let send ep ~dst ~id = Apps.Kv_app.send_next app ep ~dst ~id in
  let parse_id = Some (fun buf -> Apps.Kv_app.parse_id app buf) in
  let r =
    Loadgen.Driver.closed_loop rig.Apps.Rig.engine ~clients:rig.Apps.Rig.clients
      ~server:Apps.Rig.server_id ~outstanding:4 ~duration_ns:8_000_000
      ~warmup_ns:2_500_000 ~rng:rig.Apps.Rig.rng ~send ~parse_id
  in
  r.Loadgen.Driver.achieved_rps

let () =
  print_endline "field size | all-zero-copy | all-copy | winner";
  let threshold = ref None in
  List.iter
    (fun entry_size ->
      let zc = measure Cornflakes.Config.all_zero_copy ~entry_size in
      let copy = measure Cornflakes.Config.all_copy ~entry_size in
      if zc >= copy && !threshold = None then threshold := Some entry_size;
      Printf.printf "%9dB | %10.0f krps | %7.0f krps | %s\n%!" entry_size
        (zc /. 1e3) (copy /. 1e3)
        (if zc >= copy then "zero-copy" else "copy"))
    sizes;
  match !threshold with
  | Some t ->
      Printf.printf
        "\nconfigure Cornflakes with: Config.with_threshold %d\n\
         (the paper derives 512 for its Mellanox and Intel platforms)\n"
        t
  | None -> print_endline "\ncopy won everywhere; keep Config.all_copy"
