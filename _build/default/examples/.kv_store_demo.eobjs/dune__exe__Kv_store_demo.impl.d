examples/kv_store_demo.ml: Apps Cornflakes Kv_msgs Kvstore List Loadgen Mem Net Option Printf Sim String Wire Workload
