examples/kv_msgs.ml: Cornflakes List Schema Wire
