(* Calibration probe (not part of the bench harness). *)

let kv_max backend ~entries ~entry_size =
  let rig = Apps.Rig.create () in
  let n_keys = min 262144 (max 8192 (5 * 32 * 1024 * 1024 / (entries * entry_size))) in
  let wl = Workload.Ycsb.make ~n_keys ~entries ~entry_size () in
  let app = Apps.Kv_app.install rig ~backend ~workload:wl in
  let send ep ~dst ~id = Apps.Kv_app.send_next app ep ~dst ~id in
  let parse_id = Some (fun buf -> Apps.Kv_app.parse_id app buf) in
  let r =
    Loadgen.Driver.closed_loop rig.Apps.Rig.engine ~clients:rig.Apps.Rig.clients
      ~server:Apps.Rig.server_id ~outstanding:4 ~duration_ns:8_000_000
      ~warmup_ns:2_500_000 ~rng:rig.Apps.Rig.rng ~send ~parse_id
  in
  r.Loadgen.Driver.achieved_rps

let () =
  print_endline "== single-field crossover ==";
  List.iter
    (fun size ->
      let zc = kv_max (Apps.Backend.cornflakes ~config:Cornflakes.Config.all_zero_copy ()) ~entries:1 ~entry_size:size in
      let cp = kv_max (Apps.Backend.cornflakes ~config:Cornflakes.Config.all_copy ()) ~entries:1 ~entry_size:size in
      Printf.printf "size %5d: zc %8.0f krps  copy %8.0f krps  zc/copy %.3f\n%!"
        size (zc /. 1e3) (cp /. 1e3) (zc /. cp))
    [ 128; 256; 384; 512; 768; 1024; 2048 ]
