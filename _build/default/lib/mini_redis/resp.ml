type value =
  | Simple of string
  | Error of string
  | Int of int
  | Bulk of Mem.View.t
  | Null
  | Array of value list

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let digits n = String.length (string_of_int n)

let rec encoded_len = function
  | Simple s -> 1 + String.length s + 2
  | Error s -> 1 + String.length s + 2
  | Int n -> 1 + digits n + 2
  | Bulk v -> 1 + digits v.Mem.View.len + 2 + v.Mem.View.len + 2
  | Null -> 5 (* $-1\r\n *)
  | Array elems ->
      1 + digits (List.length elems) + 2
      + List.fold_left (fun acc e -> acc + encoded_len e) 0 elems

let crlf ?cpu:_ w = Wire.Cursor.Writer.string w "\r\n"

let rec encode ?cpu w v =
  let module W = Wire.Cursor.Writer in
  match v with
  | Simple s ->
      W.string w "+";
      W.string w s;
      crlf w
  | Error s ->
      W.string w "-";
      W.string w s;
      crlf w
  | Int n ->
      W.string w ":";
      W.string w (string_of_int n);
      crlf w
  | Bulk view ->
      W.string w "$";
      W.string w (string_of_int view.Mem.View.len);
      crlf w;
      W.view_bytes w view;
      crlf w
  | Null -> W.string w "$-1\r\n"
  | Array elems ->
      W.string w "*";
      W.string w (string_of_int (List.length elems));
      crlf w;
      List.iter (fun e -> encode ?cpu w e) elems

type parser_state = {
  view : Mem.View.t;
  r : Wire.Cursor.Reader.t;
}

let read_line st =
  let module R = Wire.Cursor.Reader in
  let buf = Buffer.create 16 in
  let rec go () =
    if R.remaining st.r < 2 then fail "unterminated line";
    let c = Char.chr (R.u8 st.r) in
    if c = '\r' then begin
      let lf = Char.chr (R.u8 st.r) in
      if lf <> '\n' then fail "bad line terminator"
    end
    else begin
      Buffer.add_char buf c;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let read_int_line st =
  let s = read_line st in
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail "bad integer %S" s

let rec read_value st =
  let module R = Wire.Cursor.Reader in
  if R.remaining st.r < 1 then fail "empty input";
  match Char.chr (R.u8 st.r) with
  | '+' -> Simple (read_line st)
  | '-' -> Error (read_line st)
  | ':' -> Int (read_int_line st)
  | '$' ->
      let len = read_int_line st in
      if len = -1 then Null
      else if len < 0 || len > R.remaining st.r - 2 then fail "bad bulk length %d" len
      else begin
        let v = R.sub st.r ~len in
        let cr = R.u8 st.r and lf = R.u8 st.r in
        if cr <> Char.code '\r' || lf <> Char.code '\n' then
          fail "bulk not terminated";
        Bulk v
      end
  | '*' ->
      let n = read_int_line st in
      if n < 0 || n > 1_000_000 then fail "bad array length %d" n;
      Array (List.init n (fun _ -> read_value st))
  | c -> fail "unexpected type byte %C" c

let decode ?cpu view =
  let st = { view; r = Wire.Cursor.Reader.create ?cpu view } in
  let v = read_value st in
  if Wire.Cursor.Reader.remaining st.r <> 0 then fail "trailing bytes";
  v

let to_string space v =
  let data = Bytes.create (encoded_len v) in
  let view =
    Mem.View.make
      ~addr:(Mem.Addr_space.reserve space ~bytes:(Bytes.length data))
      ~data ~off:0 ~len:(Bytes.length data)
  in
  let w = Wire.Cursor.Writer.create view in
  encode w v;
  Bytes.to_string data

let rec equal a b =
  match (a, b) with
  | Simple x, Simple y | Error x, Error y -> String.equal x y
  | Int x, Int y -> x = y
  | Bulk x, Bulk y -> String.equal (Mem.View.to_string x) (Mem.View.to_string y)
  | Null, Null -> true
  | Array xs, Array ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | _, _ -> false

let rec pp ppf = function
  | Simple s -> Format.fprintf ppf "+%s" s
  | Error s -> Format.fprintf ppf "-%s" s
  | Int n -> Format.fprintf ppf ":%d" n
  | Bulk v ->
      if v.Mem.View.len <= 32 then Format.fprintf ppf "%S" (Mem.View.to_string v)
      else Format.fprintf ppf "<bulk %d>" v.Mem.View.len
  | Null -> Format.fprintf ppf "(nil)"
  | Array elems ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        elems

let command space parts =
  Array (List.map (fun s -> Bulk (Mem.View.of_string space s)) parts)
