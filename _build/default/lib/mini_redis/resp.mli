(** RESP2 — the Redis serialization protocol.

    A faithful implementation of the wire format Redis uses for both
    requests and its handwritten replies: simple strings, errors, integers,
    bulk strings, arrays, and null bulks. Bulk payloads decode as zero-copy
    windows; encoding copies payload bytes into the output (that copy is
    Redis's serialization cost, the thing Cornflakes removes). *)

type value =
  | Simple of string
  | Error of string
  | Int of int
  | Bulk of Mem.View.t
  | Null
  | Array of value list

exception Protocol_error of string

(** Encoded size in bytes. *)
val encoded_len : value -> int

(** [encode ?cpu w v] writes the RESP encoding into [w]. *)
val encode : ?cpu:Memmodel.Cpu.t -> Wire.Cursor.Writer.t -> value -> unit

(** [decode ?cpu view] parses one RESP value (must consume the window
    exactly). Bulk contents are windows into [view]. *)
val decode : ?cpu:Memmodel.Cpu.t -> Mem.View.t -> value

(** Convenience for tests: encode to a string. *)
val to_string : Mem.Addr_space.t -> value -> string

(** Structural equality, comparing bulks by content. *)
val equal : value -> value -> bool

val pp : Format.formatter -> value -> unit

(** Build a command (array of bulk strings) — the request format. *)
val command : Mem.Addr_space.t -> string list -> value
