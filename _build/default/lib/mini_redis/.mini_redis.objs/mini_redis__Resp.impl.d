lib/mini_redis/resp.ml: Buffer Bytes Char Format List Mem Printf String Wire
