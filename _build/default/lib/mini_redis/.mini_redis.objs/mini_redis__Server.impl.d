lib/mini_redis/server.ml: Apps Cornflakes Kvstore List Loadgen Mem Memmodel Net Resp Sim String Wire Workload
