lib/mini_redis/resp.mli: Format Mem Memmodel Wire
