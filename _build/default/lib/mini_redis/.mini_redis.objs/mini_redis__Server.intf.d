lib/mini_redis/server.mli: Apps Cornflakes Kvstore Net Workload
