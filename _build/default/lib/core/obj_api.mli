(** The [CornflakesObj] interface (paper Listing 1).

    The networking stack finishes serialization through these functions
    rather than an explicit [serialize] call: it asks the object for its
    length, has it write the object header (and copied fields) into the
    frame under construction, and walks the zero-copy entries to post them
    directly on the ring. {!Send.send_object} is the co-designed fast path
    built on exactly these operations; this module exposes them individually
    for stacks that are not co-designed (and for the segmentation support of
    §3.2.3: both iterators take a byte range so a stack can emit an object
    one frame at a time — see {!Frag}).

    Ranges address the {e object layout}: [0 .. object_len) covers the
    header+copied region followed by the zero-copy region, in wire order. *)

(** [object_len msg] — total serialized size in bytes. *)
val object_len : Wire.Dyn.t -> int

(** [num_copy_bytes msg] — size of the header+copied region. *)
val num_copy_bytes : Wire.Dyn.t -> int

(** [num_zero_copy_entries msg] — how many gather entries the zero-copy
    region contributes. *)
val num_zero_copy_entries : Wire.Dyn.t -> int

(** [write_object_header ?cpu msg w] emits the header+copied region into
    [w] (which must offer [num_copy_bytes] of space). *)
val write_object_header :
  ?cpu:Memmodel.Cpu.t -> Wire.Dyn.t -> Wire.Cursor.Writer.t -> unit

(** [iterate_over_copy_entries ?cpu msg ~start ~stop f] — calls [f] with
    views of the header+copied region restricted to object-layout range
    [start, stop); requires a scratch buffer because the region is
    materialised on demand. *)
val iterate_over_copy_entries :
  ?cpu:Memmodel.Cpu.t ->
  Wire.Dyn.t ->
  scratch:Mem.View.t ->
  start:int ->
  stop:int ->
  (Mem.View.t -> unit) ->
  unit

(** [iterate_over_zero_copy_entries msg ~start ~stop f] — calls [f] with
    each zero-copy buffer slice that overlaps object-layout range
    [start, stop), in wire order. Slices share the underlying refcounts
    (no extra references are taken). *)
val iterate_over_zero_copy_entries :
  Wire.Dyn.t -> start:int -> stop:int -> (Mem.Pinned.Buf.t -> unit) -> unit
