(* Count the distinct refcount-metadata cache lines behind a buffer list:
   the unit of completion-side metadata misses. *)
let distinct_meta_lines bufs =
  let lines =
    List.sort_uniq compare
      (List.map (fun b -> Mem.Pinned.Buf.metadata_addr b lsr 6) bufs)
  in
  List.length lines
