(** The Cornflakes wire format (§3.3, Figure 4).

    An object is laid out as three regions:

    {v
    +-----------------------------+ 0
    | u32 bitmap word count       |
    | bitmap (present fields)     |
    | 8-byte info slot per        |
    |   present field, in schema  |
    |   order                     |
    +-----------------------------+ header_len
    | copied region ("stream"):   |
    |   list tables, nested       |
    |   headers, copied payloads  |
    +-----------------------------+ header_len + stream_len
    | zero-copy region: payloads  |
    |   appended by the NIC as    |
    |   extra gather entries      |
    +-----------------------------+ total
    v}

    Info slots: scalars hold the value inline (ints are never zero-copied —
    footnote 5); strings/bytes hold [(u32 offset, u32 length)]; nested
    messages hold [(u32 offset, u32 header_length)]; repeated fields hold
    [(u32 table_offset, u32 count)], the table being 8-byte entries of the
    element's slot form. All offsets are relative to the object start, so a
    receiver deserializes from the gathered (contiguous) packet without
    copies. *)

exception Malformed of string

(** The serialization plan: region sizes and the ordered zero-copy entries.
    Produced by one traversal; [write] replays the identical traversal. *)
type plan = {
  header_len : int;
  stream_len : int;
  zc_bufs : Mem.Pinned.Buf.t list; (* in traversal order *)
  zc_len : int;
  total_len : int;
}

val measure : Wire.Dyn.t -> plan

(** [object_len msg] without building the entry list. *)
val object_len : Wire.Dyn.t -> int

(** Number of scatter-gather data entries the object needs:
    1 (header + copied region) + number of zero-copy payloads. *)
val num_entries : plan -> int

(** [write ?cpu plan w msg] emits header + copied region
    ([plan.header_len + plan.stream_len] bytes) into [w]; zero-copy bytes
    are not touched. Raises [Invalid_argument] if [w] is too small. *)
val write : ?cpu:Memmodel.Cpu.t -> plan -> Wire.Cursor.Writer.t -> Wire.Dyn.t -> unit

(** [deserialize ?cpu schema desc buf] rebuilds a message from a received
    object. Bytes/string fields become [Zero_copy] windows into [buf] (one
    new reference each); nothing larger than the header/tables is read.
    Raises [Malformed] on out-of-bounds offsets or bad bitmaps. *)
val deserialize :
  ?cpu:Memmodel.Cpu.t ->
  Schema.Desc.t ->
  Schema.Desc.message ->
  Mem.Pinned.Buf.t ->
  Wire.Dyn.t
