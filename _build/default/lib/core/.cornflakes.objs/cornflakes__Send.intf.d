lib/core/send.mli: Config Mem Memmodel Net Schema Wire
