lib/core/obj_api.ml: Format_ List Mem Wire
