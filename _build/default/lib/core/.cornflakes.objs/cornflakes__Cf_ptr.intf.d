lib/core/cf_ptr.mli: Config Mem Memmodel Net Wire
