lib/core/segment.mli: Mem Memmodel Net Wire
