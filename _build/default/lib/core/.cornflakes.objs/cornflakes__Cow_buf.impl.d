lib/core/cow_buf.ml: Bytes Mem Memmodel String
