lib/core/format_.mli: Mem Memmodel Schema Wire
