lib/core/memutil.ml: List Mem
