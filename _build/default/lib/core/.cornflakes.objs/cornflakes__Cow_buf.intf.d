lib/core/cow_buf.mli: Mem Memmodel
