lib/core/send.ml: Config Format_ List Mem Memmodel Memutil Net Nic Wire
