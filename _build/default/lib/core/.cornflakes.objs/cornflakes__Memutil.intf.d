lib/core/memutil.mli: Mem
