lib/core/adaptive.ml: Cf_ptr Config Mem Memmodel Wire
