lib/core/network_api.mli: Config Mem Memmodel Net Wire
