lib/core/network_api.ml: Cf_ptr Config Mem Net Queue Send
