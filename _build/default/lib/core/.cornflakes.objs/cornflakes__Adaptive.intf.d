lib/core/adaptive.mli: Mem Memmodel Net Wire
