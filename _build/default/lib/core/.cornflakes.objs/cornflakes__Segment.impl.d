lib/core/segment.ml: Bytes Char Format_ Hashtbl List Mem Memmodel Memutil Net Obj_api Printf Wire
