lib/core/obj_api.mli: Mem Memmodel Wire
