lib/core/format_.ml: Array Int64 List Mem Memmodel Printf Schema Wire
