lib/core/cf_ptr.ml: Config Mem Net Wire
