(** Multi-frame objects — the segmentation support sketched in §3.2.3.

    The paper's prototype sends only single-frame messages, but the design
    section describes the extension: "the copy and zero-copy iterators could
    take in start and end offsets so they only operate on entries within the
    specified range; the networking stack could call the iterators for each
    message frame until the entire object has been written." That is exactly
    what [Segmenter.send] does, using {!Obj_api}'s ranged iterators: each
    frame carries a 16-byte fragment header, the slice of the header+copied
    region that falls in its range, and zero-copy slices (sub-buffers with
    their own references) of the payloads in its range.

    Frames of one object may interleave with other traffic; the receiving
    {!Reassembler} collects chunks by (source, message id) and delivers the
    complete object as a single pinned buffer that deserializes with the
    ordinary {!Send.deserialize}.

    Fragment header: [u32 msg_id][u32 offset][u32 total_len][u32 chunk_len]. *)

val frag_header_len : int

(** Object bytes carried per frame. *)
val max_chunk : int

(** Largest supported reassembled object (the reassembly pool's top class). *)
val max_object : int

module Segmenter : sig
  type t

  val create : Net.Endpoint.t -> t

  (** [send ?cpu t ~dst msg] transmits an object of any size up to
      [max_object], in as many frames as needed (single-frame objects also
      get a fragment header, so one receive path handles everything). The
      hybrid copy/zero-copy decisions were already taken per field at CFPtr
      construction time. Ownership of the message's zero-copy references
      transfers to the stack, as with {!Send.send_object}. Raises
      [Invalid_argument] if the object exceeds [max_object] or its
      header+copied region exceeds [max_chunk]. *)
  val send : ?cpu:Memmodel.Cpu.t -> t -> dst:int -> Wire.Dyn.t -> unit
end

module Reassembler : sig
  type t

  (** [create registry] allocates the reassembly pool (registered as pinned,
      so deserialized fields of reassembled objects are zero-copy-eligible
      when echoed). *)
  val create : Mem.Registry.t -> t

  (** [on_packet ?cpu t ~src buf ~deliver] consumes one received frame
      (taking ownership of [buf]); when the frame completes an object,
      [deliver ~src obj] is called with a buffer the callee must release.
      Malformed fragments are dropped. *)
  val on_packet :
    ?cpu:Memmodel.Cpu.t ->
    t ->
    src:int ->
    Mem.Pinned.Buf.t ->
    deliver:(src:int -> Mem.Pinned.Buf.t -> unit) ->
    unit

  (** Objects currently mid-reassembly. *)
  val pending : t -> int

  (** [expire t ~now ~timeout_ns] drops (and frees) half-built objects
      idle longer than [timeout_ns], returning how many were evicted. Call
      periodically with the engine clock; [on_packet] stamps activity with
      the most recent [now] it has seen. *)
  val expire : t -> now:int -> timeout_ns:int -> int
end
