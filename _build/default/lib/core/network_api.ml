type t = {
  ep : Net.Endpoint.t;
  config : Config.t;
  data_pool : Mem.Pinned.Pool.t;
  inbox : Mem.Pinned.Buf.t Queue.t;
}

let attach ?(config = Config.default) ep ~data_pool =
  let t = { ep; config; data_pool; inbox = Queue.create () } in
  Net.Endpoint.set_rx ep (fun ~src:_ buf -> Queue.add buf t.inbox);
  t

let alloc ?cpu t ~size = Mem.Pinned.Buf.alloc ?cpu t.data_pool ~len:size

let recv_packet t = Queue.take_opt t.inbox

let recover_ptr ?cpu t (view : Mem.View.t) =
  Mem.Registry.recover_ptr ?cpu
    (Net.Endpoint.registry t.ep)
    ~addr:view.Mem.View.addr ~len:view.Mem.View.len

let send_object ?cpu t ~dst msg = Send.send_object ?cpu t.config t.ep ~dst msg

let cf_ptr ?cpu t view = Cf_ptr.make ?cpu t.config t.ep view
