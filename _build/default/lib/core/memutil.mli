(** [distinct_meta_lines bufs] — how many distinct refcount cache lines the
    buffers' metadata occupies (completion releases pay one miss per line,
    not per buffer). *)
val distinct_meta_lines : Mem.Pinned.Buf.t list -> int
