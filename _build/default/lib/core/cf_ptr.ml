let copy ?cpu ep view =
  Wire.Payload.Copied (Mem.Arena.copy_in ?cpu (Net.Endpoint.arena ep) view)

let make ?cpu (config : Config.t) ep (view : Mem.View.t) =
  if view.Mem.View.len >= config.zero_copy_threshold then
    match
      Mem.Registry.recover_ptr ?cpu
        (Net.Endpoint.registry ep)
        ~addr:view.Mem.View.addr ~len:view.Mem.View.len
    with
    | Some buf -> Wire.Payload.Zero_copy buf
    | None -> copy ?cpu ep view
  else copy ?cpu ep view

let of_buf ?cpu (config : Config.t) ep buf =
  if Mem.Pinned.Buf.len buf >= config.zero_copy_threshold then
    Wire.Payload.Zero_copy buf
  else begin
    let p = copy ?cpu ep (Mem.Pinned.Buf.view buf) in
    Mem.Pinned.Buf.decr_ref ?cpu buf;
    p
  end
