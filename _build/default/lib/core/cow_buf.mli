(** Copy-on-write smart pointer over pinned buffers.

    Implements the write-protection design sketched in the paper's §7
    ("Cornflakes could provide a library of smart pointers for developers
    where writes to the smart pointer automatically trigger new allocations
    and raw pointer swaps"): the application routes every mutation through
    [write]; if the underlying buffer is shared — e.g. referenced by an
    in-flight zero-copy send — the write first moves the value to a fresh
    allocation, so the bytes the NIC is reading are never modified. This
    reduces write protection to the use-after-free protection the refcounts
    already give, with no mprotect-style system calls. *)

type t

(** [create ?cpu pool ~len] — a fresh exclusive buffer. *)
val create : ?cpu:Memmodel.Cpu.t -> Mem.Pinned.Pool.t -> len:int -> t

(** [of_buf pool buf] wraps an existing buffer, taking over the caller's
    reference. The pool is where copy-on-write clones come from. *)
val of_buf : Mem.Pinned.Pool.t -> Mem.Pinned.Buf.t -> t

(** The current underlying buffer. Hand its view to {!Cf_ptr.make} (which
    takes its own reference) to send the value zero-copy. *)
val buf : t -> Mem.Pinned.Buf.t

val len : t -> int

(** [shared t] — true while anyone besides this smart pointer holds a
    reference (e.g. a pending transmission). *)
val shared : t -> bool

(** Number of copy-on-write clones performed so far. *)
val cow_count : t -> int

(** [write ?cpu t ~off s] mutates the value. If the buffer is shared, the
    value is first cloned into a fresh allocation (charged as alloc +
    copy) and the smart pointer swings to the clone; concurrent readers
    keep the old, intact bytes. *)
val write : ?cpu:Memmodel.Cpu.t -> t -> off:int -> string -> unit

(** Release the smart pointer's reference. *)
val release : ?cpu:Memmodel.Cpu.t -> t -> unit
