(** The networking-stack API exactly as the paper presents it (Listing 2):

    {v
    impl Network {
        fn alloc(&self, size: usize) -> RcBuf;
        fn recv_packet(&self) -> RcBuf;
        fn recover_ptr(&self, ptr: &[u8]) -> Option<RcBuf>;
        fn send_object(&self, obj: impl CornflakesObj);
    }
    v}

    A thin veneer over {!Net.Endpoint}, {!Mem.Registry} and {!Send}, so code
    written against the paper's API reads one-to-one. [recv_packet] is a
    pull-style inbox (the underlying stack is upcall-based; received buffers
    queue here until asked for). *)

type t

(** [attach ?config ep ~data_pool] — [data_pool] serves [alloc] (the paper's
    application-facing pinned allocator). Takes over [ep]'s receive path. *)
val attach :
  ?config:Config.t -> Net.Endpoint.t -> data_pool:Mem.Pinned.Pool.t -> t

(** [alloc t ~size] — a fresh reference-counted DMA-safe buffer. *)
val alloc : ?cpu:Memmodel.Cpu.t -> t -> size:int -> Mem.Pinned.Buf.t

(** [recv_packet t] — the next received payload, if any (one reference
    owned by the caller). *)
val recv_packet : t -> Mem.Pinned.Buf.t option

(** [recover_ptr t view] — a referenced handle if the window lies in live
    pinned memory. *)
val recover_ptr :
  ?cpu:Memmodel.Cpu.t -> t -> Mem.View.t -> Mem.Pinned.Buf.t option

(** [send_object t ~dst msg] — the combined serialize-and-send. *)
val send_object : ?cpu:Memmodel.Cpu.t -> t -> dst:int -> Wire.Dyn.t -> unit

(** [cf_ptr t view] — the hybrid smart-pointer constructor bound to this
    network (Listing 3's [CFPtr::new(val, conn)]). *)
val cf_ptr : ?cpu:Memmodel.Cpu.t -> t -> Mem.View.t -> Wire.Payload.t
