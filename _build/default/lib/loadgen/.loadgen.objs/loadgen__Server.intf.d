lib/loadgen/server.mli: Mem Memmodel Net
