lib/loadgen/server.ml: Mem Memmodel Net Queue Sim
