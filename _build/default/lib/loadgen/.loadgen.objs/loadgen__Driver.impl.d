lib/loadgen/driver.ml: Float Hashtbl List Mem Net Queue Sim Stats
