lib/loadgen/driver.mli: Mem Net Sim Stats
