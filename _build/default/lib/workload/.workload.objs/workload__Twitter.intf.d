lib/workload/twitter.mli: Sim Spec
