lib/workload/twitter.ml: Float Kvstore List Printf Sim Spec
