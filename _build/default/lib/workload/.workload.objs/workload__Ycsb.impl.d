lib/workload/ycsb.ml: Kvstore List Printf Sim Spec
