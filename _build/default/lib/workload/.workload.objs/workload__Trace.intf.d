lib/workload/trace.mli: Spec
