lib/workload/cdn.mli: Sim Spec
