lib/workload/cdn.ml: Hashtbl Kvstore List Printf Sim Spec
