lib/workload/spec.ml: Array Buffer Bytes Char Kvstore List Mem Sim String
