lib/workload/trace.ml: Array Fun List Printf Sim Spec String
