lib/workload/google.mli: Spec
