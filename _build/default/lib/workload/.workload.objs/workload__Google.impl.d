lib/workload/google.ml: Array Hashtbl Kvstore List Printf Sim Spec
