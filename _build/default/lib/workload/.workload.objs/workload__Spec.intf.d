lib/workload/spec.mli: Kvstore Mem Sim
