(** Workload abstraction: how to populate the store and what requests look
    like.

    Working-set sizes are scaled to the simulated 32 MB L3 the same way the
    paper sizes them against its 128 MB L3 (e.g. "about 5x larger than L3"),
    so the cache behaviour that drives the copy/zero-copy tradeoff is
    preserved at reduced memory cost. *)

type op =
  | Get of { keys : string list } (* multiget; single get = one key *)
  | Get_index of { key : string; index : int } (* one slot of a vector value *)
  | Put of { key : string; sizes : int list } (* replace value, new shape *)

type t = {
  name : string;
  store_capacity : int;
  pool_classes : (int * int) list; (* value pool layout: (size, capacity) *)
  populate : Kvstore.Store.t -> pool:Mem.Pinned.Pool.t -> unit;
  next : Sim.Rng.t -> op;
  (* Mean response payload bytes (used to size experiment windows). *)
  mean_response_bytes : float;
}

(** [alloc_value pool ~repr sizes] builds a store value of the given shape
    with deterministic filler contents. *)
val alloc_value :
  Mem.Pinned.Pool.t ->
  repr:[ `Single | `Linked | `Vector ] ->
  int list ->
  Kvstore.Store.value

(** [filler n] is a deterministic printable string of length [n]. *)
val filler : int -> string

(** Round a byte size up to the pool's power-of-two class (min 64). *)
val class_of : int -> int
