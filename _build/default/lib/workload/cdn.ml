let segment_bytes = 8192

let max_object_bytes = 2 * 1024 * 1024

let min_object_bytes = 1000

let n_objects_default = 8192

(* Lognormal with mean ~ 20 KB: sigma = 1.5, mu = ln 20000 - sigma^2/2. *)
let sigma = 1.5

let mu = log 20000.0 -. (sigma *. sigma /. 2.0)

let sample_object_size rng =
  let s = int_of_float (Sim.Dist.lognormal rng ~mu ~sigma) in
  if s < min_object_bytes then min_object_bytes
  else if s > max_object_bytes then max_object_bytes
  else s

let key_of ~rank = Printf.sprintf "cdn-image-object-%043d" rank

(* Object sizes are a deterministic function of the rank so that the
   populate pass, the request generator, and the experiment harness agree
   without sharing state. *)
let size_of ~rank =
  let rng = Sim.Rng.create ~seed:(0xcd11 + (rank * 7919)) in
  sample_object_size rng

let segments_of ~rank =
  (size_of ~rank + segment_bytes - 1) / segment_bytes

let segment_sizes ~rank =
  let size = size_of ~rank in
  let n = segments_of ~rank in
  List.init n (fun i ->
      if i = n - 1 then size - (segment_bytes * (n - 1)) else segment_bytes)

let make ?(n_objects = n_objects_default) ?(zipf_s = 0.99) () =
  let zipf = Sim.Dist.Zipf.create ~n:n_objects ~s:zipf_s in
  (* Budget pool classes from the deterministic population itself. *)
  let counts = Hashtbl.create 16 in
  for rank = 1 to n_objects do
    List.iter
      (fun s ->
        let c = Spec.class_of s in
        Hashtbl.replace counts c
          (1 + try Hashtbl.find counts c with Not_found -> 0))
      (segment_sizes ~rank)
  done;
  let classes =
    Hashtbl.fold (fun c n acc -> (c, n + 256) :: acc) counts []
    |> List.sort compare
  in
  (* Sequential sub-object walk: one shared cursor, refilled by Zipf. *)
  let current = ref None in
  let total_bytes = ref 0 and total_segments = ref 0 in
  for rank = 1 to n_objects do
    total_bytes := !total_bytes + size_of ~rank;
    total_segments := !total_segments + segments_of ~rank
  done;
  {
    Spec.name = "cdn-image";
    store_capacity = n_objects;
    pool_classes = classes;
    populate =
      (fun store ~pool ->
        for rank = 1 to n_objects do
          Kvstore.Store.put store ~key:(key_of ~rank)
            (Spec.alloc_value pool ~repr:`Vector (segment_sizes ~rank))
        done);
    next =
      (fun rng ->
        let rank, idx =
          match !current with
          | Some (rank, idx) when idx < segments_of ~rank -> (rank, idx)
          | _ -> (Sim.Dist.Zipf.sample zipf rng, 0)
        in
        current :=
          if idx + 1 < segments_of ~rank then Some (rank, idx + 1) else None;
        Spec.Get_index { key = key_of ~rank; index = idx });
    mean_response_bytes =
      float_of_int !total_bytes /. float_of_int !total_segments;
  }
