(* Lognormal calibrated so that P(size >= 512) ~ 0.32: with sigma = 1.25,
   ln 512 = 6.238, mu = 5.655 gives z = 0.466, P ~ 0.32. *)
let mu = 5.655

let sigma = 1.25

let max_size = 8192

let sample_size rng =
  let s = Sim.Dist.lognormal rng ~mu ~sigma in
  let n = int_of_float s in
  if n < 8 then 8 else if n > max_size then max_size else n

let key_of rank = Printf.sprintf "tw:%016d" rank

let mean_size = exp (mu +. (sigma *. sigma /. 2.0)) (* ~ 625 B, pre-clip *)

let make ?(n_keys = 131072) ?(zipf_s = 0.99) ?(put_fraction = 0.08) () =
  let zipf = Sim.Dist.Zipf.create ~n:n_keys ~s:zipf_s in
  (* Power-of-two classes with budget proportional to the lognormal mass
     that lands in each (plus put-churn headroom). *)
  let classes =
    List.map
      (fun c ->
        let lo = float_of_int (c / 2) and hi = float_of_int c in
        let cdf x =
          if x <= 0.0 then 0.0
          else begin
            let z = (log x -. mu) /. sigma in
            0.5 *. (1.0 +. Float.erf (z /. sqrt 2.0))
          end
        in
        let share = if c = 64 then cdf hi else cdf hi -. cdf lo in
        let share = if c = max_size then share +. (1.0 -. cdf hi) else share in
        (c, int_of_float (float_of_int n_keys *. share *. 1.5) + 2048))
      [ 64; 128; 256; 512; 1024; 2048; 4096; 8192 ]
  in
  {
    Spec.name = "twitter";
    store_capacity = n_keys;
    pool_classes = classes;
    populate =
      (fun store ~pool ->
        let rng = Sim.Rng.create ~seed:0x7517 in
        for rank = 1 to n_keys do
          Kvstore.Store.put store ~key:(key_of rank)
            (Spec.alloc_value pool ~repr:`Single [ sample_size rng ])
        done);
    next =
      (fun rng ->
        let key = key_of (Sim.Dist.Zipf.sample zipf rng) in
        if Sim.Rng.bool rng put_fraction then
          Spec.Put { key; sizes = [ sample_size rng ] }
        else Spec.Get { keys = [ key ] });
    mean_response_bytes = Float.min mean_size (float_of_int max_size);
  }
