(** Trace files: record a workload's operation stream to a text file and
    replay it later.

    The paper's methodology is trace-driven (Twitter cache trace #4, the
    Tragen-generated CDN trace); this module gives our synthetic generators
    the same property — a run can be captured once and replayed bit-for-bit
    across systems, machines, or code versions.

    Line format (one op per line):
    {v
    G <key> [<key> ...]        multiget
    I <key> <index>            vector sub-object get
    P <key> <size>[+<size>..]  put with the given buffer sizes
    v} *)

val op_to_line : Spec.op -> string

(** Raises [Failure] on a malformed line. *)
val op_of_line : string -> Spec.op

(** [record workload ~seed ~n path] draws [n] ops and writes them. *)
val record : Spec.t -> seed:int -> n:int -> string -> unit

(** [load path] reads all ops. *)
val load : string -> Spec.op list

(** [replayed ~base path] — a workload with [base]'s store population and
    pool layout whose [next] replays the file's ops in order, looping at the
    end (like the paper's CDN methodology, which loops its 1M-request
    trace). *)
val replayed : base:Spec.t -> string -> Spec.t
