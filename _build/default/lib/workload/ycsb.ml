let key_of rank = Printf.sprintf "user%026d" rank

let make ?(n_keys = 65536) ?(zipf_s = 0.99) ?(multiget = 1) ~entries
    ~entry_size () =
  assert (entries >= 1 && entry_size >= 1 && multiget >= 1);
  let zipf = Sim.Dist.Zipf.create ~n:n_keys ~s:zipf_s in
  let cls = Spec.class_of entry_size in
  let sizes = List.init entries (fun _ -> entry_size) in
  {
    Spec.name =
      Printf.sprintf "ycsb-%dx%d%s" entries entry_size
        (if multiget > 1 then Printf.sprintf "-mget%d" multiget else "");
    store_capacity = n_keys;
    pool_classes = [ (cls, (n_keys * entries) + 64) ];
    populate =
      (fun store ~pool ->
        for rank = 1 to n_keys do
          Kvstore.Store.put store ~key:(key_of rank)
            (Spec.alloc_value pool ~repr:`Linked sizes)
        done);
    next =
      (fun rng ->
        let keys =
          List.init multiget (fun _ -> key_of (Sim.Dist.Zipf.sample zipf rng))
        in
        Spec.Get { keys });
    mean_response_bytes = float_of_int (entries * entry_size * multiget);
  }
