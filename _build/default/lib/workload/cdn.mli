(** Synthetic CDN object-size workload modelled on the Tragen "image" trace
    class (§6.1.4): object sizes from 1 KB up, lognormal with mean ≈ 20 KB,
    64-byte keys. Large objects are stored as vectors of jumbo-frame-sized
    sub-objects; a request fetches one sub-object, and clients walk the
    sub-objects of an object sequentially, so reported throughput is in full
    objects (handled by the experiment harness via [segments_of]).

    Objects are clipped at [max_object_bytes] (the paper goes to 116 MB; a
    multi-megabyte tail adds nothing once every segment request misses L3 —
    noted in EXPERIMENTS.md). *)

val make : ?n_objects:int -> ?zipf_s:float -> unit -> Spec.t

val segment_bytes : int

val max_object_bytes : int

(** Number of segments of the object behind a key, per the generated
    population (deterministic in the object rank). *)
val segments_of : rank:int -> int

val key_of : rank:int -> string

val n_objects_default : int

val sample_object_size : Sim.Rng.t -> int
