(** YCSB-C-style workload (§5.1, §6.1.4): read-only, Zipf-0.99 popularity,
    constant-size values shaped as linked lists of [entries] buffers of
    [entry_size] bytes each. Used for the measurement study (the
    size × entry-count grid of Figure 5) and the Redis command tests. *)

(** [make ?n_keys ?zipf_s ?multiget ~entries ~entry_size ()] — [multiget]
    (default 1) keys per request (for Redis mget). Keys are 30 bytes, as in
    the paper's generated trace. *)
val make :
  ?n_keys:int ->
  ?zipf_s:float ->
  ?multiget:int ->
  entries:int ->
  entry_size:int ->
  unit ->
  Spec.t
