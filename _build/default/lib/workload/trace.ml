let op_to_line = function
  | Spec.Get { keys } -> "G " ^ String.concat " " keys
  | Spec.Get_index { key; index } -> Printf.sprintf "I %s %d" key index
  | Spec.Put { key; sizes } ->
      Printf.sprintf "P %s %s" key
        (String.concat "+" (List.map string_of_int sizes))

let op_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | "G" :: (_ :: _ as keys) -> Spec.Get { keys }
  | [ "I"; key; index ] -> (
      match int_of_string_opt index with
      | Some index when index >= 0 -> Spec.Get_index { key; index }
      | _ -> failwith ("Trace: bad index in " ^ line))
  | [ "P"; key; sizes ] ->
      let sizes =
        List.map
          (fun s ->
            match int_of_string_opt s with
            | Some n when n > 0 -> n
            | _ -> failwith ("Trace: bad size in " ^ line))
          (String.split_on_char '+' sizes)
      in
      Spec.Put { key; sizes }
  | _ -> failwith ("Trace: unparseable line " ^ line)

let record (workload : Spec.t) ~seed ~n path =
  let rng = Sim.Rng.create ~seed in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      for _ = 1 to n do
        output_string oc (op_to_line (workload.Spec.next rng));
        output_char oc '\n'
      done)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line when String.trim line = "" -> go acc
        | line -> go (op_of_line line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let replayed ~(base : Spec.t) path =
  let ops = Array.of_list (load path) in
  if Array.length ops = 0 then invalid_arg "Trace.replayed: empty trace";
  let cursor = ref 0 in
  {
    base with
    Spec.name = base.Spec.name ^ "-replay";
    next =
      (fun _rng ->
        let op = ops.(!cursor) in
        cursor := (!cursor + 1) mod Array.length ops;
        op);
  }
