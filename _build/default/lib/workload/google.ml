(* Digitised from the shape of Fig. 4c of "A Hardware Accelerator for
   Protocol Buffers" as quoted in the Cornflakes paper: 34% of field sizes
   are <= 8 B, 94.9% <= 512 B, with a thin tail up to ~4 KB. *)
let size_points =
  [|
    (2, 0.10);
    (4, 0.10);
    (8, 0.14);
    (16, 0.12);
    (24, 0.08);
    (32, 0.07);
    (64, 0.10);
    (128, 0.094);
    (256, 0.085);
    (512, 0.06);
    (1024, 0.028);
    (2048, 0.015);
    (4096, 0.008);
  |]

let key_of rank = Printf.sprintf "google-object-key-%045d" rank

let mtu_budget = 8192

let sample_sizes dist rng ~count =
  let rec attempt tries =
    let sizes = List.init count (fun _ -> Sim.Dist.Discrete.sample dist rng) in
    let total = List.fold_left ( + ) 0 sizes in
    if total <= mtu_budget || tries > 20 then sizes else attempt (tries + 1)
  in
  attempt 0

let mean_field_size =
  let total = Array.fold_left (fun a (_, w) -> a +. w) 0.0 size_points in
  Array.fold_left (fun a (s, w) -> a +. (float_of_int s *. w /. total)) 0.0
    size_points

(* Per-class buffer budget: expected draws per class from [size_points],
   with 40% headroom plus slack. *)
let classes_for ~n_keys ~mean_vals =
  let total_w = Array.fold_left (fun a (_, w) -> a +. w) 0.0 size_points in
  let shares = Hashtbl.create 8 in
  Array.iter
    (fun (s, w) ->
      let c = Spec.class_of s in
      Hashtbl.replace shares c
        ((try Hashtbl.find shares c with Not_found -> 0.0) +. (w /. total_w)))
    size_points;
  let draws = float_of_int n_keys *. mean_vals in
  Hashtbl.fold
    (fun c share acc -> (c, int_of_float (draws *. share *. 1.4) + 2048) :: acc)
    shares []
  |> List.sort compare

let make ?(n_keys = 65536) ?(zipf_s = 0.99) ~max_vals () =
  assert (max_vals >= 1);
  let dist = Sim.Dist.Discrete.create size_points in
  let zipf = Sim.Dist.Zipf.create ~n:n_keys ~s:zipf_s in
  let mean_vals = float_of_int (1 + max_vals) /. 2.0 in
  {
    Spec.name = Printf.sprintf "google-1..%d" max_vals;
    store_capacity = n_keys;
    pool_classes = classes_for ~n_keys ~mean_vals;
    populate =
      (fun store ~pool ->
        let rng = Sim.Rng.create ~seed:0x900913 in
        for rank = 1 to n_keys do
          let count = 1 + Sim.Rng.int rng max_vals in
          let sizes = sample_sizes dist rng ~count in
          Kvstore.Store.put store ~key:(key_of rank)
            (Spec.alloc_value pool ~repr:`Linked sizes)
        done);
    next =
      (fun rng ->
        Spec.Get { keys = [ key_of (Sim.Dist.Zipf.sample zipf rng) ] });
    mean_response_bytes = mean_field_size *. mean_vals;
  }
