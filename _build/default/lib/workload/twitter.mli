(** Synthetic stand-in for Twitter cache trace #4 (§6.1.4).

    The paper reports the two properties the experiments depend on: about
    32% of get requests touch objects of 512 bytes or more, and about 8% of
    requests are puts. We reproduce them with a lognormal value-size
    distribution clipped to one jumbo frame and Zipf-0.99 key popularity;
    tests assert both summary statistics. Values are single buffers. *)

val make : ?n_keys:int -> ?zipf_s:float -> ?put_fraction:float -> unit -> Spec.t

(** Sample one value size (exposed for tests). *)
val sample_size : Sim.Rng.t -> int
