(** Google fleetwide Protobuf bytes-field size distribution (§6.1.4).

    Field sizes are sampled from a discretisation of Figure 4c of the
    Protobuf fleet study as the paper summarises it: 34% of sampled sizes
    are ≤ 8 bytes and 94.9% are ≤ 512 bytes. Objects are linked lists of
    1..[max_vals] fields (length uniform), resampled if the total exceeds an
    MTU; keys are 64 bytes. Read-only. *)

val make : ?n_keys:int -> ?zipf_s:float -> max_vals:int -> unit -> Spec.t

(** The (size, probability) points used by the sampler — exposed for tests
    and for the trace-dump tool. *)
val size_points : (int * float) array
