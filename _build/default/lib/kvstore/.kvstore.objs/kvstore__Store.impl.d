lib/kvstore/store.ml: Array Hashtbl List Mem Memmodel String
