lib/kvstore/store.mli: Mem Memmodel
