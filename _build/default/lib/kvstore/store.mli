(** The custom key-value store from the paper's evaluation (§6.1.2).

    Keys are strings; values are single pinned buffers, linked lists of
    pinned buffers, or vectors of pinned buffers. The store owns one
    reference on every buffer it holds; [put] swaps pointers and releases
    the old value (never updates in place), which is what makes the store
    compatible with Cornflakes' zero-copy safety model (§4.1).

    Cost model: the hash table's buckets and entry records live in the
    simulated address space, so a [get] pays a hash, a bucket-line access, an
    entry-line access and a key compare — misses included, which is how the
    "working set larger than L3" experiments get their cache pressure. *)

type value =
  | Single of Mem.Pinned.Buf.t
  | Linked of Mem.Pinned.Buf.t list
  | Vector of Mem.Pinned.Buf.t array

type t

(** [create space ~name ~capacity] sizes the bucket array and entry-metadata
    region for about [capacity] keys. *)
val create : Mem.Addr_space.t -> name:string -> capacity:int -> t

val size : t -> int

(** [put ?cpu t ~key value] installs [value] (taking ownership of the
    caller's references) and releases any previous value. *)
val put : ?cpu:Memmodel.Cpu.t -> t -> key:string -> value -> unit

(** [get ?cpu t ~key] returns the live value; the store retains ownership
    (callers wanting to keep buffers across a later [put] must take their
    own reference, e.g. via CFPtr construction). *)
val get : ?cpu:Memmodel.Cpu.t -> t -> key:string -> value option

(** [remove ?cpu t ~key] deletes the entry and releases its buffers. *)
val remove : ?cpu:Memmodel.Cpu.t -> t -> key:string -> unit

(** Buffers of a value, in order (list/vector flattened). *)
val buffers : value -> Mem.Pinned.Buf.t list

(** Total payload bytes of a value. *)
val value_len : value -> int
