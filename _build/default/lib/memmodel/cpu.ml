type category = Rx | Deser | App | Alloc | Copy | Safety | Tx | Other

let category_index = function
  | Rx -> 0
  | Deser -> 1
  | App -> 2
  | Alloc -> 3
  | Copy -> 4
  | Safety -> 5
  | Tx -> 6
  | Other -> 7

let all_categories = [ Rx; Deser; App; Alloc; Copy; Safety; Tx; Other ]

let category_label = function
  | Rx -> "rx"
  | Deser -> "deserialize"
  | App -> "app/get"
  | Alloc -> "alloc"
  | Copy -> "copy"
  | Safety -> "safety"
  | Tx -> "tx/post"
  | Other -> "other"

type t = {
  params : Params.t;
  hier : Cache.Hierarchy.h;
  mutable cycles : float;
  per_category : float array;
}

let create ?shared_l3 (params : Params.t) =
  let hier =
    match shared_l3 with
    | Some l3 -> Cache.Hierarchy.create_shared params ~l3
    | None -> Cache.Hierarchy.create params
  in
  { params; hier; cycles = 0.0; per_category = Array.make 8 0.0 }

let params t = t.params

let charge t cat cycles =
  t.cycles <- t.cycles +. cycles;
  let i = category_index cat in
  t.per_category.(i) <- t.per_category.(i) +. cycles

let stream t cat ~addr ~len =
  if len > 0 then begin
    let l1, l2, l3, dram = Cache.Hierarchy.access t.hier ~addr ~len in
    let p = t.params in
    let cost =
      (float_of_int l1 *. p.stream_l1)
      +. (float_of_int l2 *. p.stream_l2)
      +. (float_of_int l3 *. p.stream_l3)
      +. (float_of_int dram *. p.stream_dram)
    in
    charge t cat cost
  end

let latency_access t cat ~addr =
  let p = t.params in
  let cost =
    match Cache.Hierarchy.access_line t.hier ~addr with
    | Cache.L1 -> p.lat_l1
    | Cache.L2 -> p.lat_l2
    | Cache.L3 -> p.lat_l3
    | Cache.Dram -> p.lat_dram
  in
  charge t cat cost

let cycles t = t.cycles

let ns t = Params.cycles_to_ns t.params t.cycles

let breakdown t =
  List.map (fun c -> (c, t.per_category.(category_index c))) all_categories

let reset_breakdown t = Array.fill t.per_category 0 8 0.0

let install_dma t ~addr ~len = Cache.Hierarchy.install_l3 t.hier ~addr ~len

let clear_caches t = Cache.Hierarchy.clear t.hier
