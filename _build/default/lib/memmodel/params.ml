type cache_geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
}

type t = {
  clock_ghz : float;
  l1 : cache_geometry;
  l2 : cache_geometry;
  l3 : cache_geometry;
  lat_l1 : float;
  lat_l2 : float;
  lat_l3 : float;
  lat_dram : float;
  stream_l1 : float;
  stream_l2 : float;
  stream_l3 : float;
  stream_dram : float;
  cost_per_call : float;
  cost_arena_alloc : float;
  cost_slab_alloc : float;
  cost_hash_op : float;
  cost_sg_post : float;
  cost_doorbell : float;
  cost_refcount_op : float;
  cost_range_lookup : float;
  cost_rx_packet : float;
  cost_tx_packet : float;
  cost_completion_per_sge : float;
  cost_vec_alloc : float;
}

(* AMD EPYC 7402P-like. The L3 is scaled to 32 MB per-core-complex share to
   keep the simulated tag arrays small; working-set sizes in experiments are
   expressed as multiples of this L3 so the caching behaviour matches the
   paper's "5x / 10x larger than L3" setups. *)
let default =
  {
    clock_ghz = 3.0;
    l1 = { size_bytes = 32 * 1024; ways = 8; line_bytes = 64 };
    l2 = { size_bytes = 512 * 1024; ways = 8; line_bytes = 64 };
    l3 = { size_bytes = 32 * 1024 * 1024; ways = 16; line_bytes = 64 };
    (* Dependent-access latencies: 100 ns DRAM (paper §2.3), 15 ns L3. *)
    lat_l1 = 4.0;
    lat_l2 = 14.0;
    lat_l3 = 45.0;
    lat_dram = 300.0;
    (* Streaming per-line costs: DRAM-sourced copies of scattered buffers
       run at ~3.5 GB/s per core (64 B / 54 cyc at 3 GHz, limited TLB/MLP
       overlap on non-contiguous values, matching the paper's copy-path
       throughput), cache-sourced copies much faster. *)
    stream_l1 = 2.0;
    stream_l2 = 4.0;
    stream_l3 = 10.0;
    stream_dram = 54.0;
    cost_per_call = 6.0;
    cost_arena_alloc = 10.0;
    cost_slab_alloc = 30.0;
    cost_hash_op = 35.0;
    cost_sg_post = 6.0;
    cost_doorbell = 90.0;
    cost_refcount_op = 8.0;
    cost_range_lookup = 12.0;
    (* Fixed per-packet software costs (descriptor reaping, steering,
       completion processing): together ~305 ns, calibrated against the
       echo experiment's 426 ns/packet no-serialization baseline. *)
    cost_rx_packet = 600.0;
    cost_tx_packet = 315.0;
    (* Completion-ring reap plus the reference-count decrement per extra
       gather entry: the paper's "for each I/O and completion, the stack
       needs to access and update a reference count" — by completion time
       the metadata line has usually been evicted again, so this is
       effectively a second metadata miss. *)
    cost_completion_per_sge = 155.0;
    (* Heap allocation of an intermediate vector (the scatter-gather array
       materialised when serialize-and-send is off). *)
    cost_vec_alloc = 60.0;
  }

let cycles_to_ns t cycles = cycles /. t.clock_ghz

let ns_to_cycles t ns = ns *. t.clock_ghz
