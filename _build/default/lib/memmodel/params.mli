(** Calibrated machine parameters for the simulated server.

    Models the paper's CloudLab c6525-100g hosts: 24-core AMD EPYC 7402P at
    2.8–3.0 GHz with ≈128 MB of combined cache, 100 Gbps NICs, and a 100 ns
    main-memory access (§2.3, §6.1.1). Two distinct access-cost regimes
    matter for the copy/zero-copy tradeoff:

    - {b latency} costs: a dependent access (refcount, hash bucket, pinned
      range metadata) pays the full load-to-use latency of the level it hits;
      an L3 miss costs ~100 ns.
    - {b streaming} costs: bulk copies overlap many outstanding misses
      (hardware prefetch + memory-level parallelism), so the per-cache-line
      cost is a bandwidth figure far below the raw latency.

    The crossover measured in the paper (scatter-gather wins for fields
    ≥512 B) emerges from these constants; see [bench fig5]. *)

type cache_geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
}

type t = {
  clock_ghz : float;
  l1 : cache_geometry;
  l2 : cache_geometry;
  l3 : cache_geometry;
  (* Latency-bound (dependent) access cost, in cycles, by hit level. *)
  lat_l1 : float;
  lat_l2 : float;
  lat_l3 : float;
  lat_dram : float;
  (* Streaming (bulk-copy) cost per 64 B line, in cycles, by hit level. *)
  stream_l1 : float;
  stream_l2 : float;
  stream_l3 : float;
  stream_dram : float;
  (* Fixed instruction overheads, in cycles. *)
  cost_per_call : float; (* function call / loop iteration bookkeeping *)
  cost_arena_alloc : float; (* bump-pointer allocation *)
  cost_slab_alloc : float; (* pinned slab allocator fast path *)
  cost_hash_op : float; (* hashing a key, excluding bucket memory access *)
  cost_sg_post : float; (* writing one scatter-gather ring entry *)
  cost_doorbell : float; (* MMIO doorbell, amortized over a burst *)
  cost_refcount_op : float; (* arithmetic part of a refcount update *)
  cost_range_lookup : float; (* arithmetic part of recover_ptr range check *)
  cost_rx_packet : float; (* per-packet receive-path software cost *)
  cost_tx_packet : float; (* per-packet transmit-path software cost *)
  cost_completion_per_sge : float; (* completion reap per extra gather entry *)
  cost_vec_alloc : float; (* heap allocation of an intermediate vector *)
}

(** Parameters modelling the c6525-100g servers (Mellanox CX-6 side). *)
val default : t

(** Convert an accumulated cycle count to nanoseconds. *)
val cycles_to_ns : t -> float -> float

val ns_to_cycles : t -> float -> float
