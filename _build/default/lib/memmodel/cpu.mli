(** Per-core cost meter.

    All substrate operations (copies, allocator metadata, refcounts, ring
    posts) charge cycles here, classified both by cache behaviour (through
    the hierarchy simulator) and by accounting category (for the Figure 11
    CPU breakdown). The request harness reads the accumulated cycle count
    before and after a handler runs to obtain the simulated service time. *)

type category =
  | Rx (* packet receive processing *)
  | Deser (* deserialization *)
  | App (* application logic: hash lookups, store access *)
  | Alloc (* allocation (arena, slab, message objects) *)
  | Copy (* data copies on the serialization path *)
  | Safety (* memory-safety metadata: refcounts, recover_ptr *)
  | Tx (* header writes, scatter-gather posts, doorbells *)
  | Other

val category_label : category -> string

val all_categories : category list

type t

(** [create ?shared_l3 params] builds a core with private L1/L2 and either a
    private L3 or the given shared one. *)
val create : ?shared_l3:Cache.t -> Params.t -> t

val params : t -> Params.t

(** [charge t cat cycles] adds fixed instruction cycles. *)
val charge : t -> category -> float -> unit

(** [stream t cat ~addr ~len] models a bulk (prefetchable) sweep over
    [addr, addr+len): per-line streaming cost by hit level. Used for both
    reads and write-allocate stores. *)
val stream : t -> category -> addr:int -> len:int -> unit

(** [latency_access t cat ~addr] models one dependent access to the line at
    [addr] (pointer chase / metadata): full load-to-use latency of the level
    hit. *)
val latency_access : t -> category -> addr:int -> unit

(** Total cycles accumulated since creation (monotonic). *)
val cycles : t -> float

(** [ns t] is [cycles t] converted to nanoseconds. *)
val ns : t -> float

(** Per-category cycle totals, for the Figure 11 breakdown. *)
val breakdown : t -> (category * float) list

val reset_breakdown : t -> unit

(** [install_dma t ~addr ~len] models device DMA with DDIO: the written
    lines land in the shared L3, free of CPU cycles. *)
val install_dma : t -> addr:int -> len:int -> unit

(** Drop all cache state (used between experiment repetitions). *)
val clear_caches : t -> unit
