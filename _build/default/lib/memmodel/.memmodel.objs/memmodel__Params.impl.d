lib/memmodel/params.ml:
