lib/memmodel/cpu.ml: Array Cache List Params
