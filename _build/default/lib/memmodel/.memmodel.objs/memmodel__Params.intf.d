lib/memmodel/params.mli:
