lib/memmodel/cpu.mli: Cache Params
