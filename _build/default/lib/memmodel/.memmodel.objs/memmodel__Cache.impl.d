lib/memmodel/cache.ml: Array Format Params
