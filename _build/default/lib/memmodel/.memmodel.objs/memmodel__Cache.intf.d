lib/memmodel/cache.mli: Format Params
