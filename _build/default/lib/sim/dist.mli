(** Random samplers used by workload generators and arrival processes. *)

(** [exponential rng ~mean] samples an exponential with the given mean.
    Interarrival times of a Poisson process with rate [1 /. mean]. *)
val exponential : Rng.t -> mean:float -> float

(** [lognormal rng ~mu ~sigma] samples exp(N(mu, sigma^2)). *)
val lognormal : Rng.t -> mu:float -> sigma:float -> float

(** [normal rng ~mean ~std] samples a Gaussian (Box–Muller). *)
val normal : Rng.t -> mean:float -> std:float -> float

(** Zipf sampler over [{1, …, n}] with exponent [s], using Hörmann's
    rejection-inversion method so construction is O(1) even for millions of
    keys. Probability of rank [k] is proportional to [1 / k^s]. *)
module Zipf : sig
  type t

  val create : n:int -> s:float -> t

  (** [sample t rng] draws a rank in [{1, …, n}]. *)
  val sample : t -> Rng.t -> int

  val n : t -> int
end

(** Discrete distribution given by explicit (value, weight) points; sampling
    is by binary search over the cumulative weights. Used for the Google
    field-size histogram and trace size mixtures. *)
module Discrete : sig
  type 'a t

  val create : ('a * float) array -> 'a t

  val sample : 'a t -> Rng.t -> 'a
end
