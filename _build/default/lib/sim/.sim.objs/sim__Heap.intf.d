lib/sim/heap.mli:
