lib/sim/engine.mli:
