lib/sim/rng.mli:
