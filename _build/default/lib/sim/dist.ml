let exponential rng ~mean =
  let u = Rng.float rng in
  -.mean *. log1p (-.u)

let normal rng ~mean ~std =
  (* Box–Muller; one value per call keeps the generator stateless. *)
  let u1 = 1.0 -. Rng.float rng in
  let u2 = Rng.float rng in
  mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~std:sigma)

module Zipf = struct
  (* Rejection-inversion sampling for Zipf distributions (Hörmann &
     Derflinger 1996), following the Apache Commons formulation. O(1) setup
     and expected O(1) sampling for any n, unlike CDF-table inversion. *)
  type t = {
    n : int;
    exponent : float;
    h_x1 : float; (* hIntegral(1.5) - 1 *)
    h_n : float; (* hIntegral(n + 0.5) *)
    threshold : float; (* acceptance shortcut: 2 - hInv(hIntegral(2.5) - h(2)) *)
  }

  let h_integral exponent x =
    if exponent = 1.0 then log x
    else (x ** (1.0 -. exponent) -. 1.0) /. (1.0 -. exponent)

  let h exponent x = x ** -.exponent

  let h_integral_inverse exponent x =
    if exponent = 1.0 then exp x
    else begin
      let t = x *. (1.0 -. exponent) in
      (* Guard against t slightly below -1 from floating point error. *)
      let t = if t < -1.0 then -1.0 else t in
      (1.0 +. t) ** (1.0 /. (1.0 -. exponent))
    end

  let create ~n ~s =
    assert (n >= 1);
    assert (s > 0.0);
    {
      n;
      exponent = s;
      h_x1 = h_integral s 1.5 -. 1.0;
      h_n = h_integral s (float_of_int n +. 0.5);
      threshold =
        2.0 -. h_integral_inverse s (h_integral s 2.5 -. h s 2.0);
    }

  let n t = t.n

  let sample t rng =
    if t.n = 1 then 1
    else begin
      let rec loop () =
        let u = t.h_n +. (Rng.float rng *. (t.h_x1 -. t.h_n)) in
        let x = h_integral_inverse t.exponent u in
        let k = int_of_float (x +. 0.5) in
        let k = if k < 1 then 1 else if k > t.n then t.n else k in
        if float_of_int k -. x <= t.threshold then k
        else if
          u >= h_integral t.exponent (float_of_int k +. 0.5) -. h t.exponent (float_of_int k)
        then k
        else loop ()
      in
      loop ()
    end
end

module Discrete = struct
  type 'a t = { values : 'a array; cumulative : float array }

  let create points =
    assert (Array.length points > 0);
    let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 points in
    assert (total > 0.0);
    let values = Array.map fst points in
    let cumulative = Array.make (Array.length points) 0.0 in
    let running = ref 0.0 in
    Array.iteri
      (fun i (_, w) ->
        running := !running +. (w /. total);
        cumulative.(i) <- !running)
      points;
    cumulative.(Array.length points - 1) <- 1.0;
    { values; cumulative }

  let sample t rng =
    let u = Rng.float rng in
    (* Binary search for the first cumulative weight >= u. *)
    let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cumulative.(mid) < u then lo := mid + 1 else hi := mid
    done;
    t.values.(!lo)
end
