type t = {
  name : string;
  send :
    ?cpu:Memmodel.Cpu.t -> Net.Endpoint.t -> dst:int -> Wire.Dyn.t -> unit;
  recv :
    ?cpu:Memmodel.Cpu.t ->
    Net.Endpoint.t ->
    Schema.Desc.message ->
    Mem.Pinned.Buf.t ->
    Wire.Dyn.t;
  wrap :
    ?cpu:Memmodel.Cpu.t -> Net.Endpoint.t -> Mem.View.t -> Wire.Payload.t;
}

let cornflakes ?(config = Cornflakes.Config.default) () =
  {
    name =
      (if config = Cornflakes.Config.default then "cornflakes"
       else if config = Cornflakes.Config.all_copy then "cornflakes-copy"
       else if config = Cornflakes.Config.all_zero_copy then "cornflakes-zc"
       else
         Printf.sprintf "cornflakes-t%d%s" config.Cornflakes.Config.zero_copy_threshold
           (if config.Cornflakes.Config.serialize_and_send then "" else "-nosas"));
    send = (fun ?cpu ep ~dst msg -> Cornflakes.Send.send_object ?cpu config ep ~dst msg);
    recv =
      (fun ?cpu _ep desc buf ->
        Cornflakes.Send.deserialize ?cpu Proto.schema desc buf);
    wrap = (fun ?cpu ep view -> Cornflakes.Cf_ptr.make ?cpu config ep view);
  }

let literal_wrap ?cpu _ep view =
  ignore cpu;
  Wire.Payload.Literal view

(* Setting a bytes field on a Protobuf struct copies the data into the
   message object (paper section 8: "applications still move data from
   in-memory data structures to Protobuf objects"); SerializeTo* then moves
   it again into the output buffer. The first copy is the cold one. *)
let protobuf_wrap ?cpu ep view =
  Wire.Payload.Copied (Mem.Arena.copy_in ?cpu (Net.Endpoint.arena ep) view)

let protobuf =
  {
    name = "protobuf";
    send = (fun ?cpu ep ~dst msg -> Baselines.Protobuf.serialize_and_send ?cpu ep ~dst msg);
    recv =
      (fun ?cpu ep desc buf ->
        Baselines.Protobuf.deserialize ?cpu ep Proto.schema desc buf);
    wrap = protobuf_wrap;
  }

let flatbuffers =
  {
    name = "flatbuffers";
    send = (fun ?cpu ep ~dst msg -> Baselines.Flatbuf.serialize_and_send ?cpu ep ~dst msg);
    recv =
      (fun ?cpu _ep desc buf ->
        Baselines.Flatbuf.deserialize ?cpu Proto.schema desc buf);
    wrap = literal_wrap;
  }

let capnproto =
  {
    name = "capnproto";
    send = (fun ?cpu ep ~dst msg -> Baselines.Capnp.serialize_and_send ?cpu ep ~dst msg);
    recv =
      (fun ?cpu _ep desc buf ->
        Baselines.Capnp.deserialize ?cpu Proto.schema desc buf);
    wrap = literal_wrap;
  }

let all = [ cornflakes (); protobuf; flatbuffers; capnproto ]

let by_name name =
  match List.find_opt (fun b -> b.name = name) all with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Backend.by_name: %s" name)
