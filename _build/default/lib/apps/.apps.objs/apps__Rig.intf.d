lib/apps/rig.mli: Loadgen Mem Memmodel Net Nic Sim
