lib/apps/echo_app.ml: Backend Baselines Buffer Char Int64 List Loadgen Mem Net Proto Rig Wire Workload
