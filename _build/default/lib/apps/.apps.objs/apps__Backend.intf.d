lib/apps/backend.mli: Cornflakes Mem Memmodel Net Schema Wire
