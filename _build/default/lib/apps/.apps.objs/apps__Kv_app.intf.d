lib/apps/kv_app.mli: Backend Kvstore Mem Net Rig Workload
