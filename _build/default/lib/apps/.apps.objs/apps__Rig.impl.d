lib/apps/rig.ml: List Loadgen Mem Memmodel Net Sim
