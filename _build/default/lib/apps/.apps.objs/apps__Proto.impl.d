lib/apps/proto.ml: Schema
