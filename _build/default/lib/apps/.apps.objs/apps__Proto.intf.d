lib/apps/proto.mli: Schema
