lib/apps/kv_app.ml: Array Backend Int64 Kvstore List Loadgen Mem Memmodel Net Proto Rig Sim Wire Workload
