lib/apps/echo_app.mli: Backend Mem Net Rig
