lib/apps/backend.ml: Baselines Cornflakes List Mem Memmodel Net Printf Proto Schema Wire
