let schema_text =
  {|
  syntax = "proto3";
  // Request sent by clients of the custom key-value store.
  message Req {
    uint64 id = 1;
    uint32 op = 2;
    repeated bytes keys = 3;
    uint32 index = 4;
    repeated bytes vals = 5;
  }
  // Response carrying the queried values (paper Listing 1's GetM).
  message Resp {
    uint64 id = 1;
    repeated bytes vals = 2;
  }
  |}

let schema = Schema.Parser.parse schema_text

let req = Schema.Desc.message schema "Req"

let resp = Schema.Desc.message schema "Resp"

let op_get = 0L

let op_put = 1L

let op_get_index = 2L
