lib/net/endpoint.mli: Fabric Mem Memmodel Nic Sim
