lib/net/fabric.mli: Sim
