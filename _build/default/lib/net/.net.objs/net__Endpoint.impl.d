lib/net/endpoint.ml: Bytes Fabric List Mem Memmodel Nic Packet Printf Sim String
