lib/net/fabric.ml: Hashtbl Packet Printf Sim
