type t = {
  engine : Sim.Engine.t;
  one_way_delay_ns : int;
  mutable loss_rate : float;
  rng : Sim.Rng.t;
  endpoints : (int, string -> unit) Hashtbl.t;
  mutable delivered : int;
  mutable dropped : int;
}

let create ?(one_way_delay_ns = 850) ?(loss_rate = 0.0) engine =
  {
    engine;
    one_way_delay_ns;
    loss_rate;
    rng = Sim.Rng.create ~seed:0x5eed_fab;
    endpoints = Hashtbl.create 64;
    delivered = 0;
    dropped = 0;
  }

let engine t = t.engine

let one_way_delay_ns t = t.one_way_delay_ns

let attach t ~id ~rx =
  if Hashtbl.mem t.endpoints id then
    invalid_arg (Printf.sprintf "Fabric.attach: duplicate endpoint %d" id);
  Hashtbl.replace t.endpoints id rx

let set_loss_rate t r = t.loss_rate <- r

let inject t packet =
  let _src, dst = Packet.parse_header packet in
  let lost = t.loss_rate > 0.0 && Sim.Rng.bool t.rng t.loss_rate in
  if lost then t.dropped <- t.dropped + 1
  else
    match Hashtbl.find_opt t.endpoints dst with
    | None -> t.dropped <- t.dropped + 1
    | Some rx ->
        Sim.Engine.schedule t.engine ~after:t.one_way_delay_ns (fun () ->
            t.delivered <- t.delivered + 1;
            rx packet)

let delivered t = t.delivered

let dropped t = t.dropped
