(** Network fabric connecting endpoints.

    Models the 100 Gbps switch (or back-to-back cable) between the load
    generators and the server: a constant one-way delay, in-order delivery,
    optional random loss for TCP tests. *)

type t

val create : ?one_way_delay_ns:int -> ?loss_rate:float -> Sim.Engine.t -> t

val engine : t -> Sim.Engine.t

val one_way_delay_ns : t -> int

(** [attach t ~id ~rx] registers endpoint [id]; [rx packet] is called when a
    wire packet addressed to [id] arrives. *)
val attach : t -> id:int -> rx:(string -> unit) -> unit

(** [inject t packet] routes a wire packet to its destination endpoint after
    the one-way delay (subject to loss). Unknown destinations are dropped. *)
val inject : t -> string -> unit

(** [set_loss_rate t r] changes the drop probability (failure injection). *)
val set_loss_rate : t -> float -> unit

val delivered : t -> int

val dropped : t -> int
