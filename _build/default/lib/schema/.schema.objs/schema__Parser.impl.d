lib/schema/parser.ml: Array Desc Lexer List Printf
