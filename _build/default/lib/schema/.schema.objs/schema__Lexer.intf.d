lib/schema/lexer.mli:
