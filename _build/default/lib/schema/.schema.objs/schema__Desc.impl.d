lib/schema/desc.ml: Array Int List Printf Set String
