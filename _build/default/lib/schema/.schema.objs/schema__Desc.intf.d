lib/schema/desc.mli:
