lib/schema/lexer.ml: List Printf String
