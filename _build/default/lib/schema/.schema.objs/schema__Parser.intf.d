lib/schema/parser.mli: Desc
