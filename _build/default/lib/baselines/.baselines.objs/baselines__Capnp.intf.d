lib/baselines/capnp.mli: Mem Memmodel Net Schema Wire
