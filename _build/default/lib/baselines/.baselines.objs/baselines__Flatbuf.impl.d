lib/baselines/flatbuf.ml: Array Int64 List Mem Net Printf Schema Wire
