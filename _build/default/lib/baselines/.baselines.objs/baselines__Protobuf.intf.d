lib/baselines/protobuf.mli: Mem Memmodel Net Schema Wire
