lib/baselines/manual.ml: List Mem Memmodel Net Wire
