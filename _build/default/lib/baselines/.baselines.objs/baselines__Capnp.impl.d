lib/baselines/capnp.ml: Array Int64 List Mem Memmodel Net Printf Schema Wire
