lib/baselines/manual.mli: Mem Memmodel Net
