lib/baselines/flatbuf.mli: Mem Memmodel Net Schema Wire
