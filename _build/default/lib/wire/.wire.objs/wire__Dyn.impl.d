lib/wire/dyn.ml: Array Float Format Int64 List Payload Printf Schema String
