lib/wire/dyn.mli: Format Mem Memmodel Payload Schema
