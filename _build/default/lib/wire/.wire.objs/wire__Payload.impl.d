lib/wire/payload.ml: Mem
