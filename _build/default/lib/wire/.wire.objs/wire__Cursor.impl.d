lib/wire/cursor.ml: Bytes Char Int64 Mem Memmodel String
