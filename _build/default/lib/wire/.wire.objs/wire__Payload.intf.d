lib/wire/payload.mli: Mem Memmodel
