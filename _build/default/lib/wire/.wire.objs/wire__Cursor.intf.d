lib/wire/cursor.mli: Mem Memmodel
