(** The data a bytes/string field carries — the representation behind the
    paper's [CFPtr] smart pointer (Listing 3).

    - [Copied]: bytes already copied into a per-request arena; the stack
      will copy them once more into the DMA staging buffer (cheap: cached).
    - [Zero_copy]: a referenced pinned buffer; sent as an extra
      scatter-gather entry with no CPU copy.
    - [Literal]: an unowned window onto application memory. This is how
      baseline libraries hold field data before their serializers copy it;
      the Cornflakes constructor ({!Cornflakes.Cf_ptr}) never produces it. *)

type t =
  | Copied of Mem.View.t
  | Zero_copy of Mem.Pinned.Buf.t
  | Literal of Mem.View.t

val len : t -> int

(** A read window on the payload bytes (raises [Use_after_free] for a dead
    zero-copy buffer). *)
val view : t -> Mem.View.t

val to_string : t -> string

val of_string : Mem.Addr_space.t -> string -> t

(** [release ?cpu t] drops the reference held by a [Zero_copy] payload;
    no-op for the other variants. *)
val release : ?cpu:Memmodel.Cpu.t -> t -> unit

(** [is_zero_copy t] — true only for the [Zero_copy] variant. *)
val is_zero_copy : t -> bool
