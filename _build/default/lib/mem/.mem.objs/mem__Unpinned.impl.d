lib/mem/unpinned.ml: Addr_space Bytes String View
