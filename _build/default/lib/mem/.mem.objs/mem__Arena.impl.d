lib/mem/arena.ml: Addr_space Bytes Memmodel Pinned View
