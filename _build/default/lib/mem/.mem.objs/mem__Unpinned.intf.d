lib/mem/unpinned.mli: Addr_space View
