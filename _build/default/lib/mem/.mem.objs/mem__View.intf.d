lib/mem/view.mli: Addr_space Bytes
