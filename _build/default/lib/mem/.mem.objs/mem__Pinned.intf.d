lib/mem/pinned.mli: Addr_space Memmodel View
