lib/mem/registry.mli: Addr_space Memmodel Pinned
