lib/mem/view.ml: Addr_space Bytes
