lib/mem/registry.ml: Addr_space List Memmodel Option Pinned
