lib/mem/arena.mli: Addr_space Memmodel View
