lib/mem/addr_space.ml:
