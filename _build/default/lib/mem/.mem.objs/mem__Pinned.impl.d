lib/mem/pinned.ml: Addr_space Array Bytes List Memmodel Printf String View
