lib/mem/addr_space.mli:
