(** Bump-pointer arena for copied serialization data.

    The paper's Copy variant of [CFPtr] stores field bytes in arena-backed
    vectors: "Cornflakes uses efficient arena allocation … that offers fast
    allocation and mass deallocation" (§3.2.2). The arena is reset after each
    request, so its lines stay hot in cache — which is exactly why the second
    copy into the DMA buffer is cheap. *)

type t

val create : Addr_space.t -> capacity:int -> t

(** Bytes currently allocated. *)
val used : t -> int

val capacity : t -> int

(** [copy_in ?cpu t src] copies [src]'s bytes into the arena (charging a
    streaming read of the source and write of the arena) and returns a view
    of the copy. Raises [Out_of_memory] if the arena is full. *)
val copy_in : ?cpu:Memmodel.Cpu.t -> t -> View.t -> View.t

(** [alloc ?cpu t ~len] reserves uninitialised arena space (for headers
    built in place). *)
val alloc : ?cpu:Memmodel.Cpu.t -> t -> len:int -> View.t

(** Mass-deallocate; O(1). *)
val reset : t -> unit
