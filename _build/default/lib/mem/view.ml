type t = { addr : int; data : Bytes.t; off : int; len : int }

let make ~addr ~data ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "View.make: window out of bounds";
  { addr; data; off; len }

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "View.sub: window out of bounds";
  { addr = t.addr + off; data = t.data; off = t.off + off; len }

let to_string t = Bytes.sub_string t.data t.off t.len

let of_string space s =
  let data = Bytes.of_string s in
  let addr = Addr_space.reserve space ~bytes:(Bytes.length data) in
  { addr; data; off = 0; len = Bytes.length data }

let blit t ~dst ~dst_off = Bytes.blit t.data t.off dst dst_off t.len

let equal_contents a b = a.len = b.len && to_string a = to_string b
