type t = { mutable next : int }

(* Start away from 0 so address 0 never aliases a valid buffer. *)
let create () = { next = 1 lsl 20 }

let align_up v a = (v + a - 1) / a * a

let reserve t ~bytes =
  assert (bytes >= 0);
  let base = align_up t.next 64 in
  t.next <- base + bytes;
  base

let used t = t.next
