(** Ordinary (non-DMA-safe) heap memory.

    Buffers allocated here have simulated addresses that no pinned pool
    covers, so [recover_ptr] fails on them and the hybrid serializer must
    fall back to copying — the memory-transparency path (§2.3). *)

type t

val alloc : Addr_space.t -> len:int -> t

val of_string : Addr_space.t -> string -> t

val addr : t -> int

val len : t -> int

val view : t -> View.t

val fill : t -> string -> unit
