type t = { addr : int; data : Bytes.t }

let alloc space ~len =
  { addr = Addr_space.reserve space ~bytes:len; data = Bytes.create len }

let of_string space s =
  let t = alloc space ~len:(String.length s) in
  Bytes.blit_string s 0 t.data 0 (String.length s);
  t

let addr t = t.addr

let len t = Bytes.length t.data

let view t = View.make ~addr:t.addr ~data:t.data ~off:0 ~len:(Bytes.length t.data)

let fill t s =
  if String.length s > Bytes.length t.data then
    invalid_arg "Unpinned.fill: string too long";
  Bytes.blit_string s 0 t.data 0 (String.length s)
