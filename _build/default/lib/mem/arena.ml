exception Out_of_memory = Pinned.Out_of_memory

type t = {
  base_addr : int;
  backing : Bytes.t;
  mutable used : int;
}

let create space ~capacity =
  {
    base_addr = Addr_space.reserve space ~bytes:capacity;
    backing = Bytes.create capacity;
    used = 0;
  }

let used t = t.used

let capacity t = Bytes.length t.backing

let charge_alloc cpu =
  match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.charge cpu Memmodel.Cpu.Alloc
        (Memmodel.Cpu.params cpu).Memmodel.Params.cost_arena_alloc

let alloc ?cpu t ~len =
  if t.used + len > Bytes.length t.backing then
    raise (Out_of_memory "arena exhausted");
  charge_alloc cpu;
  let off = t.used in
  t.used <- t.used + len;
  View.make ~addr:(t.base_addr + off) ~data:t.backing ~off ~len

let copy_in ?cpu t src =
  let dst = alloc ?cpu t ~len:src.View.len in
  View.blit src ~dst:t.backing ~dst_off:dst.View.off;
  (match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:src.View.addr
        ~len:src.View.len;
      Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:dst.View.addr
        ~len:src.View.len);
  dst

let reset t = t.used <- 0
