(** A readable byte window with a simulated address.

    Serializers consume [View.t] values regardless of where the bytes live
    (pinned slab, unpinned heap, receive buffer, arena), copy real bytes for
    correctness, and charge simulated cache costs at [addr]. *)

type t = {
  addr : int; (* simulated address of the first visible byte *)
  data : Bytes.t; (* backing storage *)
  off : int; (* offset of the first visible byte within [data] *)
  len : int;
}

val make : addr:int -> data:Bytes.t -> off:int -> len:int -> t

(** [sub t ~off ~len] narrows the window. *)
val sub : t -> off:int -> len:int -> t

(** [to_string t] copies the visible bytes (test/debug use; not charged). *)
val to_string : t -> string

val of_string : Addr_space.t -> string -> t

(** [blit t ~dst ~dst_off] copies the visible bytes into [dst]. *)
val blit : t -> dst:Bytes.t -> dst_off:int -> unit

val equal_contents : t -> t -> bool
