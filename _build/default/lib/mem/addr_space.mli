(** Simulated physical address space.

    Every buffer the system can touch (pinned slabs, unpinned heap data,
    arenas, metadata arrays) reserves a range here, so the cache simulator
    sees a realistic, non-overlapping address stream. Addresses are plain
    ints; ranges are cache-line aligned. *)

type t

val create : unit -> t

(** [reserve t ~bytes] returns the base address of a fresh 64-byte-aligned
    range of [bytes] bytes. *)
val reserve : t -> bytes:int -> int

(** Total bytes reserved so far. *)
val used : t -> int
