(** Registry of pinned memory ranges — the stack's view of what is DMA-safe.

    [recover_ptr] is the memory-transparency primitive (§3.2.2): given an
    arbitrary address, find whether it falls inside a live pinned allocation
    and, if so, take a reference on it. The range table itself is small and
    hot; the expensive part is the refcount metadata touch, charged inside
    [Pinned.Buf.recover]. *)

type t

val create : Addr_space.t -> t

val space : t -> Addr_space.t

val register : t -> Pinned.Pool.t -> unit

val pools : t -> Pinned.Pool.t list

(** [is_pinned t ~addr] checks range membership only (no refcount side
    effects, no charges). *)
val is_pinned : t -> addr:int -> bool

(** [recover_ptr ?cpu t ~addr ~len] returns a referenced handle if
    [addr, addr+len) lies in a live pinned allocation. *)
val recover_ptr :
  ?cpu:Memmodel.Cpu.t -> t -> addr:int -> len:int -> Pinned.Buf.t option
