(** Simplified Demikernel-style TCP over the kernel-bypass endpoint (§6.2.3).

    What matters for the paper's Figure 9 and for zero-copy safety:

    - {b Byte stream with record framing}: [Conn.send_message] writes a
      [u32 length]-prefixed record; the receiver delivers complete messages.
      A message that arrives in order within one frame is delivered as a
      zero-copy window into the receive buffer; otherwise it is reassembled.
    - {b Zero-copy transmission holds references until ACK}: unlike UDP,
      where buffers are released at DMA completion, TCP must be able to
      retransmit, so every in-flight frame keeps its own reference on each
      gather segment until the cumulative ACK covers it.
    - {b Retransmission}: adaptive RTO from a smoothed RTT estimate
      (RFC 6298 style, Karn's rule, exponential backoff), fast retransmit
      on three duplicate ACKs, cumulative ACKs, out-of-order reassembly.
      A three-way handshake establishes sequence numbers.

    One [Stack.t] owns an endpoint's receive path and demultiplexes
    connections by peer id. ACK processing and reassembly are protocol
    work outside any request's service window and are not CPU-charged;
    serialization costs on the send path are charged as usual. *)

type source =
  | Copy of Mem.View.t (* copied into the frame's staging buffer *)
  | Zc of Mem.Pinned.Buf.t (* rides as its own gather entry; ref consumed *)

module Conn : sig
  type t

  val peer : t -> int

  val is_established : t -> bool

  (** [send_message ?cpu t sources] frames the concatenated sources as one
      record and transmits it (segmenting at the MSS if needed). Takes
      ownership of one reference on each [Zc] source. *)
  val send_message : ?cpu:Memmodel.Cpu.t -> t -> source list -> unit

  (** Bytes sent but not yet acknowledged. *)
  val unacked_bytes : t -> int

  val retransmissions : t -> int

  (** Current retransmission timeout (adapts to measured RTT, RFC 6298
      style, with exponential backoff on loss). *)
  val rto_ns : t -> int

  (** Smoothed RTT estimate in ns (0 until the first sample). *)
  val srtt_ns : t -> float
end

module Stack : sig
  type t

  (** [attach ep] takes over [ep]'s receive path. *)
  val attach : Net.Endpoint.t -> t

  (** [connect t ~peer] initiates a handshake; the connection becomes
      established once the SYN-ACK returns. Idempotent per peer. *)
  val connect : t -> peer:int -> Conn.t

  (** Handler for complete received messages. The buffer carries one
      reference owned by the handler. *)
  val set_on_message : t -> (Conn.t -> Mem.Pinned.Buf.t -> unit) -> unit

  val conn : t -> peer:int -> Conn.t option

  val endpoint : t -> Net.Endpoint.t
end

(** Protocol constants, exposed for tests. *)
val header_len : int

val mss : int

val initial_rto_ns : int
