(** NIC hardware models.

    Captures the device characteristics that matter to the serialization
    tradeoff: the scatter-gather entry limit, the PCIe cost the DMA engine
    pays per descriptor and per extra gather entry, and the line rate.
    Constants for the three NICs in the paper (§6.1.1, §6.3). *)

type t = {
  name : string;
  max_sge : int; (* gather entries per send, incl. the header entry *)
  line_rate_gbps : float;
  pcie_per_descriptor_ns : float; (* descriptor fetch over PCIe *)
  pcie_per_sge_ns : float; (* extra PCIe read per gather entry *)
  per_packet_wire_overhead_bytes : int; (* preamble + IFG + FCS *)
  tx_ring_entries : int;
}

(** Mellanox ConnectX-5 Ex, 100 Gbps (measurement-study platform); WQEs
    take up to 64 gather pointers. *)
val mellanox_cx5 : t

(** Mellanox ConnectX-6, 100 Gbps (end-to-end platform). *)
val mellanox_cx6 : t

(** Intel e810-CQDA2, 100 Gbps; only 8 gather entries per send (§6.3). *)
val intel_e810 : t

(** Nanoseconds to move [bytes] payload bytes across the wire. *)
val wire_time_ns : t -> bytes:int -> float
