lib/nic/model.mli:
