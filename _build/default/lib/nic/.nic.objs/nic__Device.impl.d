lib/nic/device.ml: Bytes Float List Mem Model Sim String
