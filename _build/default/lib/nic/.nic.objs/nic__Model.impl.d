lib/nic/model.ml:
