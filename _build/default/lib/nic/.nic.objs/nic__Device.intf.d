lib/nic/device.mli: Mem Model Sim
