type t = {
  name : string;
  max_sge : int;
  line_rate_gbps : float;
  pcie_per_descriptor_ns : float;
  pcie_per_sge_ns : float;
  per_packet_wire_overhead_bytes : int;
  tx_ring_entries : int;
}

let mellanox_cx5 =
  {
    name = "mlx5-cx5ex";
    max_sge = 64;
    line_rate_gbps = 100.0;
    pcie_per_descriptor_ns = 40.0;
    pcie_per_sge_ns = 10.0;
    per_packet_wire_overhead_bytes = 24 (* preamble+IFG+FCS *) + 14 (* eth *);
    tx_ring_entries = 1024;
  }

let mellanox_cx6 = { mellanox_cx5 with name = "mlx5-cx6"; pcie_per_sge_ns = 9.0 }

let intel_e810 =
  {
    mellanox_cx5 with
    name = "intel-e810";
    max_sge = 8;
    pcie_per_descriptor_ns = 45.0;
    pcie_per_sge_ns = 12.0;
  }

let wire_time_ns t ~bytes =
  let total = bytes + t.per_packet_wire_overhead_bytes in
  float_of_int (total * 8) /. t.line_rate_gbps
