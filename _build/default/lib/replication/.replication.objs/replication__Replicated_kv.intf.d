lib/replication/replicated_kv.mli: Apps Kvstore Mem Net Schema Workload
