lib/replication/replicated_kv.ml: Apps Cornflakes Hashtbl Int64 Kvstore List Loadgen Mem Memmodel Net Option Printf Schema Sim Wire Workload
