(** Throughput–latency curve recorder.

    One point per offered load: the achieved load and a latency quantile.
    Provides the paper's comparison rules (§6.1): points count only when
    achieved load is within 95% of offered load; systems are compared at a
    latency SLO by taking the best achieved load whose p99 is under the SLO. *)

type point = {
  offered : float; (* requests/sec *)
  achieved : float; (* requests/sec *)
  p50_ns : int;
  p99_ns : int;
  mean_ns : float;
}

type t

val create : name:string -> t

val name : t -> string

val add : t -> point -> unit

val points : t -> point list

(** Points where achieved >= 95% of offered (the paper's plotting rule). *)
val valid_points : t -> point list

(** Highest achieved load across all offered loads (valid or not). *)
val max_achieved : t -> float

(** [throughput_at_slo t ~p99_slo_ns] is the best achieved load among valid
    points whose p99 is within the SLO, if any. *)
val throughput_at_slo : t -> p99_slo_ns:int -> float option

val pp : Format.formatter -> t -> unit
