type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let widths t =
  let all = t.columns :: List.rev t.rows in
  List.fold_left
    (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
    (List.map (fun _ -> 0) t.columns)
    all

let to_string t =
  let ws = widths t in
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let emit_row row =
    Buffer.add_string buf "  ";
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (pad cell (List.nth ws i));
        if i < List.length row - 1 then Buffer.add_string buf "  ")
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  emit_row t.columns;
  emit_row (List.map (fun w -> String.make w '-') ws);
  List.iter emit_row (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (to_string t)
