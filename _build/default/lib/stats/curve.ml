type point = {
  offered : float;
  achieved : float;
  p50_ns : int;
  p99_ns : int;
  mean_ns : float;
}

type t = { name : string; mutable points : point list }

let create ~name = { name; points = [] }

let name t = t.name

let add t p = t.points <- p :: t.points

let points t = List.rev t.points

let valid_points t =
  List.filter (fun p -> p.achieved >= 0.95 *. p.offered) (points t)

let max_achieved t =
  List.fold_left (fun acc p -> Float.max acc p.achieved) 0.0 t.points

let throughput_at_slo t ~p99_slo_ns =
  let ok = List.filter (fun p -> p.p99_ns <= p99_slo_ns) (valid_points t) in
  match ok with
  | [] -> None
  | ps -> Some (List.fold_left (fun acc p -> Float.max acc p.achieved) 0.0 ps)

let pp ppf t =
  Format.fprintf ppf "@[<v>%s:@," t.name;
  List.iter
    (fun p ->
      Format.fprintf ppf "  offered=%10.0f achieved=%10.0f p50=%6.1fus p99=%6.1fus@,"
        p.offered p.achieved
        (float_of_int p.p50_ns /. 1e3)
        (float_of_int p.p99_ns /. 1e3))
    (points t);
  Format.fprintf ppf "@]"
