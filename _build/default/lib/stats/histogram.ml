type t = {
  resolution_ns : int;
  buckets : int array; (* last bucket catches overflow *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : int;
  mutable max_v : int;
}

let create ?(resolution_ns = 1_000) ?(max_ns = 100_000_000) () =
  assert (resolution_ns > 0);
  let n = (max_ns / resolution_ns) + 2 in
  {
    resolution_ns;
    buckets = Array.make n 0;
    count = 0;
    sum = 0.0;
    min_v = max_int;
    max_v = 0;
  }

let record t v =
  let v = if v < 0 then 0 else v in
  (* Ceil-binning: a sample equal to a bucket edge reports that edge, so
     percentile always returns an upper bound on the sample. *)
  let idx = (v + t.resolution_ns - 1) / t.resolution_ns in
  let idx = if idx >= Array.length t.buckets then Array.length t.buckets - 1 else idx in
  t.buckets.(idx) <- t.buckets.(idx) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. float_of_int v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count

let percentile t p =
  if t.count = 0 then invalid_arg "Histogram.percentile: empty";
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  let target = int_of_float (ceil (p *. float_of_int t.count)) in
  let target = if target < 1 then 1 else target in
  let acc = ref 0 and idx = ref 0 in
  let n = Array.length t.buckets in
  while !acc < target && !idx < n do
    acc := !acc + t.buckets.(!idx);
    incr idx
  done;
  (* Upper bound of the bucket the target sample fell in: bucket k holds
     values in ((k-1) * res, k * res]. *)
  max 0 (!idx - 1) * t.resolution_ns

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let min_ns t = if t.count = 0 then 0 else t.min_v

let max_ns t = t.max_v

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- max_int;
  t.max_v <- 0

let merge_into ~dst ~src =
  if dst.resolution_ns <> src.resolution_ns then
    invalid_arg "Histogram.merge_into: resolution mismatch";
  Array.iteri (fun i v -> dst.buckets.(i) <- dst.buckets.(i) + v) src.buckets;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v

let pp_summary ppf t =
  if t.count = 0 then Format.fprintf ppf "<empty>"
  else
    Format.fprintf ppf "n=%d mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus"
      t.count (mean t /. 1e3)
      (float_of_int (percentile t 0.50) /. 1e3)
      (float_of_int (percentile t 0.99) /. 1e3)
      (float_of_int t.max_v /. 1e3)
