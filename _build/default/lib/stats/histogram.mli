(** Fixed-resolution latency histogram.

    Mirrors the paper's load generator, which records round-trip times "at
    1000-nanosecond precision" (§6.1): samples are bucketed at a configurable
    nanosecond resolution with an overflow bucket at the top. *)

type t

(** [create ?resolution_ns ?max_ns ()] makes an empty histogram. Defaults:
    1 µs buckets up to 100 ms. *)
val create : ?resolution_ns:int -> ?max_ns:int -> unit -> t

val record : t -> int -> unit

val count : t -> int

(** [percentile t p] is the latency (ns, bucket upper bound) below which a
    [p] fraction of samples fall. [p] in [0, 1]. Raises [Invalid_argument]
    on an empty histogram. *)
val percentile : t -> float -> int

val mean : t -> float

val min_ns : t -> int

val max_ns : t -> int

val clear : t -> unit

(** Merge [src] into [dst]; resolutions must match. *)
val merge_into : dst:t -> src:t -> unit

val pp_summary : Format.formatter -> t -> unit
