(** Minimal fixed-width table printer for bench output.

    Every experiment in [bench/main.ml] prints its paper table/figure series
    through this module so the output is uniform and easy to diff against
    EXPERIMENTS.md. *)

type t

(** [create ~title ~columns] starts a table with the given column headers. *)
val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit

(** Render with columns padded to their widest cell. *)
val print : t -> unit

val to_string : t -> string
