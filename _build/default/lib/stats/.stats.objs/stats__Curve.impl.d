lib/stats/curve.ml: Float Format List
