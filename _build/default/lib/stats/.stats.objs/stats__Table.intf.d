lib/stats/table.mli:
