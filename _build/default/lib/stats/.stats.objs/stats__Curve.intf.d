lib/stats/curve.mli: Format
