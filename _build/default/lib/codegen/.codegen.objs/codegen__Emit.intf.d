lib/codegen/emit.mli: Schema
