lib/codegen/emit.ml: Array Buffer Char List Printf Schema String
