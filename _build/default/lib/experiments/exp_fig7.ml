(* Figure 7: throughput-tail-latency on the Twitter cache trace (32% of
   gets >= 512 B, 8% puts). Cornflakes should beat all software baselines;
   the paper reports +15.4% over Protobuf at a ~53 us tail SLO. *)

let run () =
  let workload = Workload.Twitter.make () in
  let curves = Kv_bench.curves ~workload Apps.Backend.all in
  let slo_ns = 53_000 in
  Util.print_curves ~title:"Figure 7: Twitter cache trace" ~slo_ns curves;
  let find name =
    List.find (fun c -> Stats.Curve.name c = name) curves
  in
  let cf = Util.tput_at_slo (find "cornflakes") ~slo_ns in
  let pb = Util.tput_at_slo (find "protobuf") ~slo_ns in
  Printf.printf
    "  headline: cornflakes %s krps vs protobuf %s krps at p99<%d us -> %s \
     (paper: +15.4%%)\n"
    (Util.krps cf) (Util.krps pb) (slo_ns / 1000) (Util.pct_delta pb cf)
