(** The experiment registry: every table and figure of the paper's
    evaluation, addressable by id from the bench harness and the CLI. *)

type entry = {
  id : string;
  title : string;
  run : unit -> unit;
}

val all : entry list

val find : string -> entry option

val ids : unit -> string list
