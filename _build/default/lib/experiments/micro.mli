(** The scatter-gather microbenchmark server (§2.4, Figures 3 and 13).

    Requests name a key whose value is a linked list of pinned buffers; the
    server responds with the buffers concatenated, through one of three
    hand-rolled transmit paths:

    - [Raw_sg]: scatter-gather with no memory-safety bookkeeping (the
      hardware upper bound);
    - [Safe_sg]: scatter-gather paying recover_ptr + refcount per entry
      (the "with software overheads" line);
    - [Copy_once]: copy every buffer into the staging frame. *)

type path = Raw_sg | Safe_sg | Copy_once

val path_name : path -> string

type t

(** [install rig path ~entries ~entry_size ~n_keys] populates a store of
    [n_keys] linked lists ([entries] x [entry_size] bytes) and installs the
    handler. *)
val install :
  Apps.Rig.t -> path -> entries:int -> entry_size:int -> n_keys:int -> t

(** Reuse the store/pool of an existing instance with a different path. *)
val switch : t -> path -> t

val driver : t -> Util.driver
