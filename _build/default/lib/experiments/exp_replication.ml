(* Replication-factor study (the §4 nested-object application as a
   benchmark): throughput of the replicated store on the Twitter trace as
   the number of backups grows. Every put costs the primary one fan-out
   send per backup — zero-copy out of its own store — plus ack processing;
   gets are unaffected, so the slowdown is bounded by the put fraction. *)

let run () =
  let t =
    Stats.Table.create
      ~title:
        "Replication: Twitter trace (8% puts), primary throughput by backup \
         count"
      ~columns:[ "backups"; "krps"; "vs unreplicated"; "committed puts" ]
  in
  let base = ref 0.0 in
  List.iter
    (fun backups ->
      let rig = Apps.Rig.create () in
      let workload = Workload.Twitter.make ~n_keys:32768 () in
      let cluster = Replication.Replicated_kv.create rig ~backups ~workload in
      let d =
        {
          Util.send =
            (fun ep ~dst ~id ->
              Replication.Replicated_kv.send_next cluster ep ~dst ~id);
          parse_id =
            Some (fun buf -> Replication.Replicated_kv.parse_id cluster buf);
        }
      in
      let r = Util.capacity rig d in
      if backups = 0 then base := r.Loadgen.Driver.achieved_rps;
      Stats.Table.add_row t
        [
          string_of_int backups;
          Util.krps r.Loadgen.Driver.achieved_rps;
          Util.pct_delta !base r.Loadgen.Driver.achieved_rps;
          string_of_int (Replication.Replicated_kv.committed cluster);
        ])
    [ 0; 1; 2; 3 ];
  Stats.Table.print t;
  print_endline
    "  (puts replicate as nested Cornflakes objects, values zero-copy out of\n\
    \   the primary's store; paper section 4 validates nested-object support\n\
    \   with exactly this application)"
