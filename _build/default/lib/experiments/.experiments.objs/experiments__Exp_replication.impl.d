lib/experiments/exp_replication.ml: Apps List Loadgen Replication Stats Util Workload
