lib/experiments/exp_fig12.ml: Apps Cornflakes Kv_bench List Loadgen Printf Stats Util Workload
