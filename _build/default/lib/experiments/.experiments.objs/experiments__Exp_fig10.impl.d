lib/experiments/exp_fig10.ml: Apps Cornflakes Kv_bench List Loadgen Memmodel Nic Stats Util Workload
