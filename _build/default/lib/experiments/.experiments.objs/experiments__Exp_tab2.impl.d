lib/experiments/exp_tab2.ml: Apps Kv_bench List Loadgen Stats Util Workload
