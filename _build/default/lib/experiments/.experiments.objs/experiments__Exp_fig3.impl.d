lib/experiments/exp_fig3.ml: Apps List Loadgen Memmodel Micro Stats Util
