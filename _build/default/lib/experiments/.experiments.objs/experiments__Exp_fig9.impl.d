lib/experiments/exp_fig9.ml: Apps Baselines Cornflakes Int64 List Mem Memmodel Net Printf Queue Sim Stats Tcp Util Wire Workload
