lib/experiments/exp_fig13.ml: Apps List Loadgen Mem Memmodel Micro Net Nic Printf Sim Stats Util
