lib/experiments/exp_fig7.ml: Apps Kv_bench List Printf Stats Util Workload
