lib/experiments/exp_fig8.ml: Apps Cornflakes List Loadgen Mini_redis Printf Stats Util Workload
