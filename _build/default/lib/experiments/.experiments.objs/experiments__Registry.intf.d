lib/experiments/registry.mli:
