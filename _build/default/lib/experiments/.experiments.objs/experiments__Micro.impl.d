lib/experiments/micro.ml: Apps Baselines Buffer Char Kvstore List Loadgen Mem Net Sim String Util Workload
