lib/experiments/exp_fig5.ml: Apps Cornflakes List Loadgen Memmodel Printf Stats Util Workload
