lib/experiments/exp_fig2.ml: Apps List Loadgen Printf Stats Util
