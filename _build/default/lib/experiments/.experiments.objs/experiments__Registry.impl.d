lib/experiments/registry.ml: Exp_ablations Exp_fig10 Exp_fig11 Exp_fig12 Exp_fig13 Exp_fig2 Exp_fig3 Exp_fig5 Exp_fig7 Exp_fig8 Exp_fig9 Exp_replication Exp_tab1 Exp_tab2 Exp_tab3 Exp_tab5 List
