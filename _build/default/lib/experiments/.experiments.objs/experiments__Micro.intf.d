lib/experiments/micro.mli: Apps Util
