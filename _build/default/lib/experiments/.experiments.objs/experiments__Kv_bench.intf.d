lib/experiments/kv_bench.mli: Apps Loadgen Stats Util Workload
