lib/experiments/kv_bench.ml: Apps List Loadgen Util
