lib/experiments/util.mli: Apps Loadgen Mem Net Stats
