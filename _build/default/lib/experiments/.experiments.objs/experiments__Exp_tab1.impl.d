lib/experiments/exp_tab1.ml: Apps Kv_bench List Loadgen Printf Stats Util Workload
