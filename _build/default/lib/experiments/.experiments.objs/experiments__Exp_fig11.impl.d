lib/experiments/exp_fig11.ml: Apps Kv_bench List Loadgen Memmodel Printf Stats Util Workload
