lib/experiments/util.ml: Apps List Loadgen Mem Net Printf Stats
