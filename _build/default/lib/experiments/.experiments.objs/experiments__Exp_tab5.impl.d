lib/experiments/exp_tab5.ml: Apps Cornflakes Kv_bench List Loadgen Stats Util Workload
