lib/experiments/exp_ablations.ml: Apps Cornflakes Float Kv_bench List Loadgen Nic Printf Stats Util Workload
