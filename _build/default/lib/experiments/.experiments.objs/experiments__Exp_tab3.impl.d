lib/experiments/exp_tab3.ml: Apps Cornflakes List Loadgen Mini_redis Stats Util Workload
