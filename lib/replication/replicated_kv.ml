let schema =
  Schema.Parser.parse
    {|
    message RepOp {
      uint64 seq = 1;
      uint32 kind = 2;
      bytes key = 3;
      repeated bytes vals = 4;
    }
    message RepMsg {
      uint64 id = 1;
      uint32 role = 2;
      RepOp op = 3;
      repeated bytes vals = 4;
    }
    |}

let rep_msg = Schema.Desc.message schema "RepMsg"

let rep_op = Schema.Desc.message schema "RepOp"

(* Roles. *)
let role_request = 0L

let role_replicate = 1L

let role_ack = 2L

let role_reply = 3L

(* Op kinds. *)
let kind_get = 0L

let kind_put = 1L

let config = Cornflakes.Config.default

(* Field indices (schema order) for the in-place readers. *)
let msg_id = Schema.Desc.field_index rep_msg "id"

let msg_role = Schema.Desc.field_index rep_msg "role"

let msg_op = Schema.Desc.field_index rep_msg "op"

let op_seq = Schema.Desc.field_index rep_op "seq"

let op_kind = Schema.Desc.field_index rep_op "kind"

let op_key = Schema.Desc.field_index rep_op "key"

let op_vals = Schema.Desc.field_index rep_op "vals"

(* An out-of-order replicate op parked until its sequence turn: the key and
   value bytes stay in the receive buffer as [Rc_view] slices (one
   reference each) plus the delivery reference on the buffer itself — no
   [Dyn] materialization survives the handler. *)
type parked = {
  pk_key : Wire.Rc_view.t option;
  pk_vals : Wire.Rc_view.t list;
  pk_buf : Mem.Pinned.Buf.t;
}

type replica = {
  ep : Net.Endpoint.t;
  cpu : Memmodel.Cpu.t;
  server : Loadgen.Server.t;
  store : Kvstore.Store.t;
  pool : Mem.Pinned.Pool.t;
  mutable expected_seq : int64; (* next sequence a backup will apply *)
  ooo : (int64, parked) Hashtbl.t;
  (* Pooled readers, revalidated per delivery. *)
  msg_reader : Wire.Reader.t;
  op_reader : Wire.Reader.t;
}

type pending_put = {
  client_src : int;
  client_id : int64;
  mutable awaiting : int;
}

type cluster = {
  rig : Apps.Rig.t;
  primary : replica;
  backups : replica list;
  pending : (int64, pending_put) Hashtbl.t;
  mutable next_seq : int64;
  mutable committed : int;
  workload : Workload.Spec.t;
  client_rng : Sim.Rng.t;
  client_reader : Wire.Reader.t; (* client-side id extraction, in place *)
}

let primary_store t = t.primary.store

let backup_stores t = List.map (fun b -> b.store) t.backups

let committed t = t.committed

(* --- Shared helpers ----------------------------------------------------- *)

(* Copy op value windows into a replica's own pinned pool and install
   (allocate-and-swap put). The sources are in-place views of the receive
   buffer (or parked [Rc_view]s) — one copy into the store, no
   intermediate. *)
let apply_put_views ~cpu replica ~key views =
  let bufs =
    List.filter_map
      (fun (src : Mem.View.t) ->
        match Mem.Pinned.Buf.alloc ~cpu replica.pool ~len:src.Mem.View.len with
        | buf ->
            Mem.Pinned.Buf.blit_from ~cpu buf ~src ~dst_off:0;
            Some buf
        | exception Mem.Pinned.Out_of_memory _ -> None)
      views
  in
  match bufs with
  | [] -> ()
  | [ one ] -> Kvstore.Store.put ~cpu replica.store ~key (Kvstore.Store.Single one)
  | many -> Kvstore.Store.put ~cpu replica.store ~key (Kvstore.Store.Linked many)

(* Collect an op's value windows in place (reader must hold a validated
   [RepOp] level). *)
let op_val_views r =
  if Wire.Reader.present r op_vals then
    List.init (Wire.Reader.count r op_vals) (fun j ->
        Wire.Reader.elem_view r op_vals ~j)
  else []

let reply ~cpu replica ~dst ~id ~vals =
  let msg = Wire.Dyn.create rep_msg in
  Wire.Dyn.set_int msg "id" id;
  Wire.Dyn.set_int msg "role" role_reply;
  List.iter (fun p -> Wire.Dyn.append msg "vals" (Wire.Dyn.Payload p)) vals;
  Cornflakes.Send.send_object ~cpu config replica.ep ~dst msg

(* --- Backup side --------------------------------------------------------- *)

let send_ack ~cpu replica ~dst ~seq =
  let ack = Wire.Dyn.create rep_msg in
  Wire.Dyn.set_int ack "id" seq;
  Wire.Dyn.set_int ack "role" role_ack;
  Cornflakes.Send.send_object ~cpu config replica.ep ~dst ack

let rec backup_apply_in_order replica ~src =
  match Hashtbl.find_opt replica.ooo replica.expected_seq with
  | None -> ()
  | Some parked ->
      Hashtbl.remove replica.ooo replica.expected_seq;
      let cpu = replica.cpu in
      let key =
        match parked.pk_key with
        | Some rc -> Wire.Rc_view.to_string ~cpu rc
        | None -> ""
      in
      apply_put_views ~cpu replica ~key
        (List.map Wire.Rc_view.view parked.pk_vals);
      let seq = replica.expected_seq in
      replica.expected_seq <- Int64.add replica.expected_seq 1L;
      (* The store owns its copies now: release the parked slices, then
         the delivery reference — at zero the RX ring slot recycles. *)
      (match parked.pk_key with
      | Some rc -> Wire.Rc_view.release ~cpu ~site:"Replication.apply" rc
      | None -> ());
      List.iter
        (fun rc -> Wire.Rc_view.release ~cpu ~site:"Replication.apply" rc)
        parked.pk_vals;
      Mem.Pinned.Buf.decr_ref ~cpu parked.pk_buf;
      (* Cumulative-style ack for this sequence number. *)
      send_ack ~cpu replica ~dst:src ~seq;
      backup_apply_in_order replica ~src

let backup_handler replica ~src buf =
  let cpu = replica.cpu in
  let r = replica.msg_reader in
  match Wire.Reader.validate ~cpu r buf with
  | exception Wire.Reader.Invalid _ -> Mem.Pinned.Buf.decr_ref ~cpu buf
  | () ->
      let role =
        if Wire.Reader.present r msg_role then Wire.Reader.get_u64 r msg_role
        else -1L
      in
      if role = role_replicate && Wire.Reader.present r msg_op then begin
        match
          Wire.Reader.nested r msg_op ~into:replica.op_reader
        with
        | exception Wire.Reader.Invalid _ -> Mem.Pinned.Buf.decr_ref ~cpu buf
        | () ->
            let op = replica.op_reader in
            let seq =
              if Wire.Reader.present op op_seq then
                Wire.Reader.get_u64 op op_seq
              else -1L
            in
            if seq >= replica.expected_seq && not (Hashtbl.mem replica.ooo seq)
            then begin
              (* Park the op until its turn: key and values stay in the
                 receive buffer as refcounted slices; the delivery
                 reference on [buf] transfers to the parked record. *)
              let pk_key =
                if Wire.Reader.present op op_key then
                  Some
                    (Wire.Reader.payload_rc ~site:"Replication.park" op op_key)
                else None
              in
              let pk_vals =
                if Wire.Reader.present op op_vals then
                  List.init (Wire.Reader.count op op_vals) (fun j ->
                      Wire.Reader.elem_rc ~site:"Replication.park" op op_vals
                        ~j)
                else []
              in
              Hashtbl.replace replica.ooo seq { pk_key; pk_vals; pk_buf = buf };
              backup_apply_in_order replica ~src
            end
            else begin
              (* Duplicate or already applied: re-ack idempotently. *)
              send_ack ~cpu replica ~dst:src ~seq;
              Mem.Pinned.Buf.decr_ref ~cpu buf
            end
      end
      else Mem.Pinned.Buf.decr_ref ~cpu buf

(* --- Primary side --------------------------------------------------------- *)

let replicate t ~cpu ~seq ~key vals =
  List.iter
    (fun backup ->
      let env = Wire.Dyn.create rep_msg in
      Wire.Dyn.set_int env "id" seq;
      Wire.Dyn.set_int env "role" role_replicate;
      let op = Wire.Dyn.create rep_op in
      Wire.Dyn.set_int op "seq" seq;
      Wire.Dyn.set_int op "kind" kind_put;
      Wire.Dyn.set_payload op "key"
        (Cornflakes.Cf_ptr.make ~cpu config t.primary.ep
           (Mem.View.of_string t.rig.Apps.Rig.space key));
      (* Values go out of the primary's freshly installed store value —
         zero-copy for fields past the threshold. *)
      List.iter
        (fun buf ->
          Wire.Dyn.append op "vals"
            (Wire.Dyn.Payload
               (Cornflakes.Cf_ptr.make ~cpu config t.primary.ep
                  (Mem.Pinned.Buf.view buf))))
        vals;
      Wire.Dyn.set env "op" (Wire.Dyn.Nested op);
      Cornflakes.Send.send_object ~cpu config t.primary.ep
        ~dst:(Net.Endpoint.id backup.ep)
        env)
    t.backups

(* Client request over the validated reader: the op level opens in place,
   the key is hashed straight out of the receive buffer, and put values
   blit from their in-place windows into the store — the apply path never
   materializes a [Dyn]. *)
let handle_client_request t ~cpu ~src r =
  let id = if Wire.Reader.present r msg_id then Wire.Reader.get_u64 r msg_id else 0L in
  if
    Wire.Reader.present r msg_op
    && match Wire.Reader.nested r msg_op ~into:t.primary.op_reader with
       | () -> true
       | exception Wire.Reader.Invalid _ -> false
  then begin
    let op = t.primary.op_reader in
    let key =
      if Wire.Reader.present op op_key then
        Wire.Reader.payload_string op op_key
      else ""
    in
    let kind =
      if Wire.Reader.present op op_kind then Wire.Reader.get_u64 op op_kind
      else -1L
    in
    if kind = kind_get then begin
      let vals =
        match Kvstore.Store.get ~cpu t.primary.store ~key with
        | Some value ->
            List.map
              (fun buf ->
                Cornflakes.Cf_ptr.make ~cpu config t.primary.ep
                  (Mem.Pinned.Buf.view buf))
              (Kvstore.Store.buffers value)
        | None -> []
      in
      reply ~cpu t.primary ~dst:src ~id ~vals
    end
    else if kind = kind_put then begin
      apply_put_views ~cpu t.primary ~key (op_val_views op);
      let seq = t.next_seq in
      t.next_seq <- Int64.add t.next_seq 1L;
      if t.backups = [] then begin
        t.committed <- t.committed + 1;
        reply ~cpu t.primary ~dst:src ~id ~vals:[]
      end
      else begin
        Hashtbl.replace t.pending seq
          { client_src = src; client_id = id; awaiting = List.length t.backups };
        let vals =
          match Kvstore.Store.get ~cpu t.primary.store ~key with
          | Some value -> Kvstore.Store.buffers value
          | None -> []
        in
        replicate t ~cpu ~seq ~key vals
      end
    end
    else reply ~cpu t.primary ~dst:src ~id ~vals:[]
  end
  else reply ~cpu t.primary ~dst:src ~id ~vals:[]

let handle_ack t ~cpu r =
  if Wire.Reader.present r msg_id then
    let seq = Wire.Reader.get_u64 r msg_id in
    match Hashtbl.find_opt t.pending seq with
    | None -> () (* duplicate ack *)
    | Some p ->
        p.awaiting <- p.awaiting - 1;
        if p.awaiting = 0 then begin
          Hashtbl.remove t.pending seq;
          t.committed <- t.committed + 1;
          reply ~cpu t.primary ~dst:p.client_src ~id:p.client_id ~vals:[]
        end

let primary_handler t ~src buf =
  let cpu = t.primary.cpu in
  let r = t.primary.msg_reader in
  match Wire.Reader.validate ~cpu r buf with
  | exception Wire.Reader.Invalid _ -> Mem.Pinned.Buf.decr_ref ~cpu buf
  | () ->
      let role =
        if Wire.Reader.present r msg_role then Wire.Reader.get_u64 r msg_role
        else -1L
      in
      (if role = role_request then handle_client_request t ~cpu ~src r
       else if role = role_ack then handle_ack t ~cpu r);
      Mem.Pinned.Buf.decr_ref ~cpu buf

(* --- Construction --------------------------------------------------------- *)

let backup_id i = 11 + i

let make_replica rig ~ep ~cpu ~server ~workload ~name =
  let pool =
    Apps.Rig.data_pool rig ~name ~classes:workload.Workload.Spec.pool_classes
  in
  let store =
    Kvstore.Store.create rig.Apps.Rig.space ~name
      ~capacity:workload.Workload.Spec.store_capacity
  in
  workload.Workload.Spec.populate store ~pool;
  {
    ep;
    cpu;
    server;
    store;
    pool;
    expected_seq = 1L;
    ooo = Hashtbl.create 32;
    msg_reader = Wire.Reader.create rep_msg;
    op_reader = Wire.Reader.create rep_op;
  }

let create rig ~backups ~workload =
  let primary =
    make_replica rig ~ep:rig.Apps.Rig.server_ep ~cpu:rig.Apps.Rig.cpu
      ~server:rig.Apps.Rig.server ~workload ~name:"primary"
  in
  let backup_replicas =
    List.init backups (fun i ->
        let cpu = Memmodel.Cpu.create (Memmodel.Cpu.params rig.Apps.Rig.cpu) in
        let ep =
          Net.Endpoint.create ~cpu rig.Apps.Rig.fabric rig.Apps.Rig.registry
            ~id:(backup_id i)
        in
        let server = Loadgen.Server.create (Net.Endpoint.transport ep) cpu in
        make_replica rig ~ep ~cpu ~server ~workload
          ~name:(Printf.sprintf "backup%d" i))
  in
  let t =
    {
      rig;
      primary;
      backups = backup_replicas;
      pending = Hashtbl.create 64;
      next_seq = 1L;
      committed = 0;
      workload;
      client_rng = Sim.Rng.split rig.Apps.Rig.rng;
      client_reader = Wire.Reader.create rep_msg;
    }
  in
  Loadgen.Server.set_handler rig.Apps.Rig.server (fun ~src buf ->
      primary_handler t ~src buf);
  List.iter
    (fun replica ->
      Loadgen.Server.set_handler replica.server (fun ~src buf ->
          backup_handler replica ~src buf))
    backup_replicas;
  t

(* --- Client side ---------------------------------------------------------- *)

let send_op t op client ~dst ~id =
  let space = t.rig.Apps.Rig.space in
  let msg = Wire.Dyn.create rep_msg in
  Wire.Dyn.set_int msg "id" (Int64.of_int id);
  Wire.Dyn.set_int msg "role" role_request;
  let o = Wire.Dyn.create rep_op in
  (match op with
  | Workload.Spec.Get { keys } ->
      Wire.Dyn.set_int o "kind" kind_get;
      (match keys with
      | key :: _ ->
          Wire.Dyn.set_payload o "key" (Wire.Payload.of_string space key)
      | [] -> ())
  | Workload.Spec.Get_index { key; _ } ->
      Wire.Dyn.set_int o "kind" kind_get;
      Wire.Dyn.set_payload o "key" (Wire.Payload.of_string space key)
  | Workload.Spec.Put { key; sizes } ->
      Wire.Dyn.set_int o "kind" kind_put;
      Wire.Dyn.set_payload o "key" (Wire.Payload.of_string space key);
      List.iter
        (fun n ->
          Wire.Dyn.append o "vals"
            (Wire.Dyn.Payload
               (Wire.Payload.of_string space (Workload.Spec.filler (max 1 n)))))
        sizes);
  Wire.Dyn.set msg "op" (Wire.Dyn.Nested o);
  Cornflakes.Send.send_via config client ~dst msg;
  Mem.Arena.reset (Net.Transport.arena client)

let send_next t client ~dst ~id =
  send_op t (t.workload.Workload.Spec.next t.client_rng) client ~dst ~id

let parse_id t buf =
  let r = t.client_reader in
  match Wire.Reader.validate r buf with
  | exception Wire.Reader.Invalid _ -> -1
  | () ->
      if Wire.Reader.present r msg_id then
        Int64.to_int (Wire.Reader.get_u64 r msg_id)
      else -1
