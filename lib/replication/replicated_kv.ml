let schema =
  Schema.Parser.parse
    {|
    message RepOp {
      uint64 seq = 1;
      uint32 kind = 2;
      bytes key = 3;
      repeated bytes vals = 4;
    }
    message RepMsg {
      uint64 id = 1;
      uint32 role = 2;
      RepOp op = 3;
      repeated bytes vals = 4;
    }
    |}

let rep_msg = Schema.Desc.message schema "RepMsg"

let rep_op = Schema.Desc.message schema "RepOp"

(* Roles. *)
let role_request = 0L

let role_replicate = 1L

let role_ack = 2L

let role_reply = 3L

(* Op kinds. *)
let kind_get = 0L

let kind_put = 1L

let config = Cornflakes.Config.default

type replica = {
  ep : Net.Endpoint.t;
  cpu : Memmodel.Cpu.t;
  server : Loadgen.Server.t;
  store : Kvstore.Store.t;
  pool : Mem.Pinned.Pool.t;
  mutable expected_seq : int64; (* next sequence a backup will apply *)
  ooo : (int64, Wire.Dyn.t * Mem.Pinned.Buf.t) Hashtbl.t;
}

type pending_put = {
  client_src : int;
  client_id : int64;
  mutable awaiting : int;
}

type cluster = {
  rig : Apps.Rig.t;
  primary : replica;
  backups : replica list;
  pending : (int64, pending_put) Hashtbl.t;
  mutable next_seq : int64;
  mutable committed : int;
  workload : Workload.Spec.t;
  client_rng : Sim.Rng.t;
}

let primary_store t = t.primary.store

let backup_stores t = List.map (fun b -> b.store) t.backups

let committed t = t.committed

(* --- Shared helpers ----------------------------------------------------- *)

let payload_string ?cpu (p : Wire.Payload.t) =
  let v = Wire.Payload.view p in
  (match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:v.Mem.View.addr
        ~len:v.Mem.View.len);
  Mem.View.to_string v

(* Copy request/op payloads into a replica's own pinned pool and install
   (allocate-and-swap put). *)
let apply_put ~cpu replica ~key vals =
  let bufs =
    List.filter_map
      (fun v ->
        match v with
        | Wire.Dyn.Payload p -> (
            let src = Wire.Payload.view p in
            match Mem.Pinned.Buf.alloc ~cpu replica.pool ~len:src.Mem.View.len with
            | buf ->
                Mem.Pinned.Buf.blit_from ~cpu buf ~src ~dst_off:0;
                Some buf
            | exception Mem.Pinned.Out_of_memory _ -> None)
        | _ -> None)
      vals
  in
  match bufs with
  | [] -> ()
  | [ one ] -> Kvstore.Store.put ~cpu replica.store ~key (Kvstore.Store.Single one)
  | many -> Kvstore.Store.put ~cpu replica.store ~key (Kvstore.Store.Linked many)

let reply ~cpu replica ~dst ~id ~vals =
  let msg = Wire.Dyn.create rep_msg in
  Wire.Dyn.set_int msg "id" id;
  Wire.Dyn.set_int msg "role" role_reply;
  List.iter (fun p -> Wire.Dyn.append msg "vals" (Wire.Dyn.Payload p)) vals;
  Cornflakes.Send.send_object ~cpu config replica.ep ~dst msg

(* --- Backup side --------------------------------------------------------- *)

let rec backup_apply_in_order replica ~src =
  match Hashtbl.find_opt replica.ooo replica.expected_seq with
  | None -> ()
  | Some (op, buf) ->
      Hashtbl.remove replica.ooo replica.expected_seq;
      let cpu = replica.cpu in
      let key =
        match Wire.Dyn.get_payload op "key" with
        | Some p -> payload_string ~cpu p
        | None -> ""
      in
      apply_put ~cpu replica ~key (Wire.Dyn.get_list op "vals");
      let seq = replica.expected_seq in
      replica.expected_seq <- Int64.add replica.expected_seq 1L;
      Wire.Dyn.release ~cpu op;
      Mem.Pinned.Buf.decr_ref ~cpu buf;
      (* Cumulative-style ack for this sequence number. *)
      let ack = Wire.Dyn.create rep_msg in
      Wire.Dyn.set_int ack "id" seq;
      Wire.Dyn.set_int ack "role" role_ack;
      Cornflakes.Send.send_object ~cpu config replica.ep ~dst:src ack;
      backup_apply_in_order replica ~src

let backup_handler replica ~src buf =
  let cpu = replica.cpu in
  match Cornflakes.Send.deserialize ~cpu schema rep_msg buf with
  | exception Cornflakes.Format_.Malformed _ -> Mem.Pinned.Buf.decr_ref ~cpu buf
  | msg -> (
      match (Wire.Dyn.get_int msg "role", Wire.Dyn.get msg "op") with
      | Some role, Some (Wire.Dyn.Nested op) when role = role_replicate ->
          let seq =
            Option.value ~default:(-1L) (Wire.Dyn.get_int op "seq")
          in
          if seq >= replica.expected_seq && not (Hashtbl.mem replica.ooo seq)
          then begin
            (* Park the op (it references the rx buffer) until its turn. *)
            Hashtbl.replace replica.ooo seq (op, buf);
            backup_apply_in_order replica ~src
          end
          else begin
            (* Duplicate or already applied: re-ack idempotently. *)
            let ack = Wire.Dyn.create rep_msg in
            Wire.Dyn.set_int ack "id" seq;
            Wire.Dyn.set_int ack "role" role_ack;
            Cornflakes.Send.send_object ~cpu config replica.ep ~dst:src ack;
            Wire.Dyn.release ~cpu msg;
            Mem.Pinned.Buf.decr_ref ~cpu buf
          end
      | _ ->
          Wire.Dyn.release ~cpu msg;
          Mem.Pinned.Buf.decr_ref ~cpu buf)

(* --- Primary side --------------------------------------------------------- *)

let replicate t ~cpu ~seq ~key vals =
  List.iter
    (fun backup ->
      let env = Wire.Dyn.create rep_msg in
      Wire.Dyn.set_int env "id" seq;
      Wire.Dyn.set_int env "role" role_replicate;
      let op = Wire.Dyn.create rep_op in
      Wire.Dyn.set_int op "seq" seq;
      Wire.Dyn.set_int op "kind" kind_put;
      Wire.Dyn.set_payload op "key"
        (Cornflakes.Cf_ptr.make ~cpu config t.primary.ep
           (Mem.View.of_string t.rig.Apps.Rig.space key));
      (* Values go out of the primary's freshly installed store value —
         zero-copy for fields past the threshold. *)
      List.iter
        (fun buf ->
          Wire.Dyn.append op "vals"
            (Wire.Dyn.Payload
               (Cornflakes.Cf_ptr.make ~cpu config t.primary.ep
                  (Mem.Pinned.Buf.view buf))))
        vals;
      Wire.Dyn.set env "op" (Wire.Dyn.Nested op);
      Cornflakes.Send.send_object ~cpu config t.primary.ep
        ~dst:(Net.Endpoint.id backup.ep)
        env)
    t.backups

let handle_client_request t ~cpu ~src msg =
  let id = Option.value ~default:0L (Wire.Dyn.get_int msg "id") in
  match Wire.Dyn.get msg "op" with
  | Some (Wire.Dyn.Nested op) -> (
      let key =
        match Wire.Dyn.get_payload op "key" with
        | Some p -> payload_string ~cpu p
        | None -> ""
      in
      match Wire.Dyn.get_int op "kind" with
      | Some k when k = kind_get ->
          let vals =
            match Kvstore.Store.get ~cpu t.primary.store ~key with
            | Some value ->
                List.map
                  (fun buf ->
                    Cornflakes.Cf_ptr.make ~cpu config t.primary.ep
                      (Mem.Pinned.Buf.view buf))
                  (Kvstore.Store.buffers value)
            | None -> []
          in
          reply ~cpu t.primary ~dst:src ~id ~vals
      | Some k when k = kind_put ->
          apply_put ~cpu t.primary ~key (Wire.Dyn.get_list op "vals");
          let seq = t.next_seq in
          t.next_seq <- Int64.add t.next_seq 1L;
          if t.backups = [] then begin
            t.committed <- t.committed + 1;
            reply ~cpu t.primary ~dst:src ~id ~vals:[]
          end
          else begin
            Hashtbl.replace t.pending seq
              { client_src = src; client_id = id; awaiting = List.length t.backups };
            let vals =
              match Kvstore.Store.get ~cpu t.primary.store ~key with
              | Some value -> Kvstore.Store.buffers value
              | None -> []
            in
            replicate t ~cpu ~seq ~key vals
          end
      | _ -> reply ~cpu t.primary ~dst:src ~id ~vals:[])
  | _ -> reply ~cpu t.primary ~dst:src ~id ~vals:[]

let handle_ack t ~cpu msg =
  match Wire.Dyn.get_int msg "id" with
  | None -> ()
  | Some seq -> (
      match Hashtbl.find_opt t.pending seq with
      | None -> () (* duplicate ack *)
      | Some p ->
          p.awaiting <- p.awaiting - 1;
          if p.awaiting = 0 then begin
            Hashtbl.remove t.pending seq;
            t.committed <- t.committed + 1;
            reply ~cpu t.primary ~dst:p.client_src ~id:p.client_id ~vals:[]
          end)

let primary_handler t ~src buf =
  let cpu = t.primary.cpu in
  match Cornflakes.Send.deserialize ~cpu schema rep_msg buf with
  | exception Cornflakes.Format_.Malformed _ -> Mem.Pinned.Buf.decr_ref ~cpu buf
  | msg ->
      (match Wire.Dyn.get_int msg "role" with
      | Some role when role = role_request -> handle_client_request t ~cpu ~src msg
      | Some role when role = role_ack -> handle_ack t ~cpu msg
      | _ -> ());
      Wire.Dyn.release ~cpu msg;
      Mem.Pinned.Buf.decr_ref ~cpu buf

(* --- Construction --------------------------------------------------------- *)

let backup_id i = 11 + i

let make_replica rig ~ep ~cpu ~server ~workload ~name =
  let pool =
    Apps.Rig.data_pool rig ~name ~classes:workload.Workload.Spec.pool_classes
  in
  let store =
    Kvstore.Store.create rig.Apps.Rig.space ~name
      ~capacity:workload.Workload.Spec.store_capacity
  in
  workload.Workload.Spec.populate store ~pool;
  { ep; cpu; server; store; pool; expected_seq = 1L; ooo = Hashtbl.create 32 }

let create rig ~backups ~workload =
  let primary =
    make_replica rig ~ep:rig.Apps.Rig.server_ep ~cpu:rig.Apps.Rig.cpu
      ~server:rig.Apps.Rig.server ~workload ~name:"primary"
  in
  let backup_replicas =
    List.init backups (fun i ->
        let cpu = Memmodel.Cpu.create (Memmodel.Cpu.params rig.Apps.Rig.cpu) in
        let ep =
          Net.Endpoint.create ~cpu rig.Apps.Rig.fabric rig.Apps.Rig.registry
            ~id:(backup_id i)
        in
        let server = Loadgen.Server.create (Net.Endpoint.transport ep) cpu in
        make_replica rig ~ep ~cpu ~server ~workload
          ~name:(Printf.sprintf "backup%d" i))
  in
  let t =
    {
      rig;
      primary;
      backups = backup_replicas;
      pending = Hashtbl.create 64;
      next_seq = 1L;
      committed = 0;
      workload;
      client_rng = Sim.Rng.split rig.Apps.Rig.rng;
    }
  in
  Loadgen.Server.set_handler rig.Apps.Rig.server (fun ~src buf ->
      primary_handler t ~src buf);
  List.iter
    (fun replica ->
      Loadgen.Server.set_handler replica.server (fun ~src buf ->
          backup_handler replica ~src buf))
    backup_replicas;
  t

(* --- Client side ---------------------------------------------------------- *)

let send_op t op client ~dst ~id =
  let space = t.rig.Apps.Rig.space in
  let msg = Wire.Dyn.create rep_msg in
  Wire.Dyn.set_int msg "id" (Int64.of_int id);
  Wire.Dyn.set_int msg "role" role_request;
  let o = Wire.Dyn.create rep_op in
  (match op with
  | Workload.Spec.Get { keys } ->
      Wire.Dyn.set_int o "kind" kind_get;
      (match keys with
      | key :: _ ->
          Wire.Dyn.set_payload o "key" (Wire.Payload.of_string space key)
      | [] -> ())
  | Workload.Spec.Get_index { key; _ } ->
      Wire.Dyn.set_int o "kind" kind_get;
      Wire.Dyn.set_payload o "key" (Wire.Payload.of_string space key)
  | Workload.Spec.Put { key; sizes } ->
      Wire.Dyn.set_int o "kind" kind_put;
      Wire.Dyn.set_payload o "key" (Wire.Payload.of_string space key);
      List.iter
        (fun n ->
          Wire.Dyn.append o "vals"
            (Wire.Dyn.Payload
               (Wire.Payload.of_string space (Workload.Spec.filler (max 1 n)))))
        sizes);
  Wire.Dyn.set msg "op" (Wire.Dyn.Nested o);
  Cornflakes.Send.send_via config client ~dst msg;
  Mem.Arena.reset (Net.Transport.arena client)

let send_next t client ~dst ~id =
  send_op t (t.workload.Workload.Spec.next t.client_rng) client ~dst ~id

let parse_id t buf =
  ignore t;
  match Cornflakes.Send.deserialize schema rep_msg buf with
  | exception Cornflakes.Format_.Malformed _ -> -1
  | msg ->
      let id =
        match Wire.Dyn.get_int msg "id" with Some v -> Int64.to_int v | None -> -1
      in
      Wire.Dyn.release msg;
      id
