(** Primary-backup replicated key-value store.

    The paper validates nested-object support "with a replicated key value
    store application that serializes nested Protobuf objects" (§4). This is
    that application: clients talk to a primary; puts are applied locally,
    forwarded to every backup as a {e nested} Cornflakes object (the
    operation message is embedded in a replication envelope), acknowledged,
    and only then acked to the client. Values of 512 B and up travel to the
    backups zero-copy out of the primary's own store — replication traffic
    exercises exactly the same hybrid path as client responses.

    Ordering: envelopes carry a sequence number; backups apply in order and
    buffer out-of-order arrivals, so duplicates and reordering are safe.
    (Loss recovery is out of scope — the fabric is reliable in-order here,
    as the paper's UDP prototype assumes for its own experiments.)

    Schema:
    {v
    message RepOp  { uint64 seq = 1; uint32 kind = 2; bytes key = 3;
                     repeated bytes vals = 4; }
    message RepMsg { uint64 id = 1; uint32 role = 2; RepOp op = 3;
                     repeated bytes vals = 4; }
    v} *)

val schema : Schema.Desc.t

type cluster

(** [create rig ~backups ~workload] builds one primary (the rig's server)
    plus [backups] backup servers, each single-core with its own store,
    populated identically from the workload. *)
val create : Apps.Rig.t -> backups:int -> workload:Workload.Spec.t -> cluster

val primary_store : cluster -> Kvstore.Store.t

val backup_stores : cluster -> Kvstore.Store.t list

(** Puts acknowledged to clients so far (i.e. fully replicated). *)
val committed : cluster -> int

(** Client-side: issue an op to the primary ([id] echoes back in the
    response). *)
val send_op :
  cluster -> Workload.Spec.op -> Net.Transport.t -> dst:int -> id:int -> unit

val send_next : cluster -> Net.Transport.t -> dst:int -> id:int -> unit

(** Client-side response-id parser. *)
val parse_id : cluster -> Mem.Pinned.Buf.t -> int
