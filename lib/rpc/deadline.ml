(* Deadline clock: schema-declared [deadline_ms=N] method options become
   absolute expiry points on the engine clock. The arithmetic lives here
   so the client stub, the retry layer, and tests agree on the
   conversion. *)

let ns_per_ms = 1_000_000

let ns_of_ms ms =
  if ms <= 0 then invalid_arg "Rpc.Deadline.ns_of_ms: deadline must be positive";
  ms * ns_per_ms

(* Absolute expiry for a deadline declared now. *)
let expiry engine ~deadline_ms = Sim.Engine.now engine + ns_of_ms deadline_ms

let remaining_ns engine ~expiry = max 0 (expiry - Sim.Engine.now engine)

let expired engine ~expiry = Sim.Engine.now engine >= expiry
