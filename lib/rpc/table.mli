(** Branchless method dispatch table.

    Handlers are stored densely, indexed by the schema-declared method-id
    word; {!dispatch} is a single bounds clamp plus an array load, so its
    cost does not grow with the number of methods. Unknown ids fall
    through to the fallback handler — dispatch is total over arbitrary
    (possibly corrupt) method words. *)

type 'h t

(** [create ~n ~fallback] — a table covering method ids [0 .. n-1]; every
    slot starts as [fallback]. Raises [Invalid_argument] on negative [n]. *)
val create : n:int -> fallback:'h -> 'h t

(** Register a handler (setup time). Raises [Invalid_argument] when [id]
    is outside the table. *)
val set : 'h t -> id:int -> 'h -> unit

val size : 'h t -> int

(** [dispatch t m] — the handler for method word [m]; the fallback when
    [m] is outside the table. *)
val dispatch : 'h t -> int -> 'h
