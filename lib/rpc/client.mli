(** Call state shared by every generated client stub.

    Owns the request-id counter, the pending-call table, the pooled
    response {!Wire.Reader.t}, and the optional retry ({!Net.Reliab.t})
    and engine-clock hooks. Generated [call_<m>] stubs drive {!call} /
    {!call_stream}; the generated [deliver] validates each response frame
    once and routes it through {!complete}. *)

type t

(** [create ?config ?engine ?reliab ~resp tr] — [resp] is the service's
    response envelope descriptor (backs the pooled reader); [tr] the
    transport the stubs send on. Attach [reliab] for retry/backoff with
    deadline clamping; without it, [engine] alone still resolves
    deadlines deterministically. *)
val create :
  ?config:Cornflakes.Config.t ->
  ?engine:Sim.Engine.t ->
  ?reliab:Net.Reliab.t ->
  resp:Schema.Desc.message ->
  Net.Transport.t ->
  t

val transport : t -> Net.Transport.t
val config : t -> Cornflakes.Config.t

(** Pooled reader the generated [deliver] validates responses into. *)
val reader : t -> Wire.Reader.t

(** [call t ?deadline_ms ~prepare ~send ~on_reply ()] — assigns an id,
    runs [prepare id] (stub stamps id + method word into the request),
    then sends — via the retry layer when attached. Returns the id.
    [on_reply] runs at most once, with the validated in-place reader. *)
val call :
  t ->
  ?deadline_ms:int ->
  prepare:(int -> unit) ->
  send:(unit -> unit) ->
  on_reply:(Wire.Reader.t -> unit) ->
  unit ->
  int

(** Streamed variant: [on_chunk] per in-order chunk (including the last),
    then [on_done ~ok:true]; a deadline or retry exhaustion runs
    [on_done ~ok:false]. *)
val call_stream :
  t ->
  ?deadline_ms:int ->
  prepare:(int -> unit) ->
  send:(unit -> unit) ->
  on_chunk:(Wire.Reader.t -> unit) ->
  on_done:(ok:bool -> unit) ->
  unit ->
  int

(** Route a validated response. [seq_word] must be given for streamed
    calls (the response envelope's [seq] field). Unknown ids count as
    {!orphans}; sequence violations as {!misordered}. *)
val complete : ?seq_word:int64 -> t -> id:int -> Wire.Reader.t -> unit

val outstanding : t -> int
val calls : t -> int
val replies : t -> int
val chunks : t -> int

(** Calls resolved by deadline or retry exhaustion. *)
val abandoned : t -> int

(** Replies whose id matched no pending call. *)
val orphans : t -> int

(** Streamed chunks rejected for sequence violations. *)
val misordered : t -> int
