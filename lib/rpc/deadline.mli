(** Deadline clock for schema-declared [deadline_ms=N] method options. *)

val ns_per_ms : int

(** Raises [Invalid_argument] on a non-positive deadline. *)
val ns_of_ms : int -> int

(** Absolute engine time at which a deadline declared now expires. *)
val expiry : Sim.Engine.t -> deadline_ms:int -> int

val remaining_ns : Sim.Engine.t -> expiry:int -> int

val expired : Sim.Engine.t -> expiry:int -> bool
