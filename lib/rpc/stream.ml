(* Streamed responses ride the ordinary response envelope: each chunk is
   a full response frame whose [seq] field carries the word
   [(seq lsl 1) lor last]. The final data chunk sets the last bit — there
   is no empty terminator frame, so a single-chunk stream costs exactly
   one frame, the same as a unary reply. The cursor (server side) and
   collector (client side) are pure sequence-number machines; frame
   bytes, retries and ownership stay with the surrounding layers. *)

let word ~seq ~last =
  if seq < 0 then invalid_arg "Rpc.Stream.word: negative seq";
  Int64.of_int ((seq lsl 1) lor if last then 1 else 0)

let seq_of w = Int64.to_int (Int64.shift_right_logical w 1)
let is_last w = Int64.to_int w land 1 = 1

(* Server-side emission cursor. *)

type cursor = { mutable next_seq : int; mutable closed : bool }

let cursor () = { next_seq = 0; closed = false }
let closed cur = cur.closed
let emitted cur = cur.next_seq

let next cur ~last =
  if cur.closed then invalid_arg "Rpc.Stream.next: stream already closed";
  let w = word ~seq:cur.next_seq ~last in
  cur.next_seq <- cur.next_seq + 1;
  if last then cur.closed <- true;
  w

(* Client-side reassembly: chunks must arrive in declaration order (the
   simulated fabric never reorders a single flow; a gap means a dropped
   retransmit slipped through, which the caller surfaces as a protocol
   error rather than silently reordering). *)

type collector = { mutable expect : int; mutable finished : bool }

let collector () = { expect = 0; finished = false }
let finished coll = coll.finished
let received coll = coll.expect

let observe coll w =
  if coll.finished then `After_end
  else if seq_of w <> coll.expect then `Out_of_order
  else begin
    coll.expect <- coll.expect + 1;
    if is_last w then begin
      coll.finished <- true;
      `Last
    end
    else `Chunk
  end

let reset coll =
  coll.expect <- 0;
  coll.finished <- false
