(* Branchless method dispatch: handlers live in a dense array indexed by
   the method-id word the request envelope carries. Dispatch is one
   bounds clamp plus an unsafe load — no per-method compare chain, so the
   cost is independent of how many methods the service declares (the
   Bebop observation: a compiled protocol keeps the hot path straight-
   line). Out-of-range ids — corrupt frames, schema skew — land on the
   fallback handler instead of raising, keeping the dispatch total. *)

type 'h t = { handlers : 'h array; fallback : 'h }

let create ~n ~fallback =
  if n < 0 then invalid_arg "Rpc.Table.create: negative size";
  { handlers = Array.make (max 1 n) fallback; fallback }

let size t = Array.length t.handlers

(* Setup-time registration; the normal bounds check is the error report. *)
let set t ~id h =
  if id < 0 || id >= Array.length t.handlers then
    invalid_arg
      (Printf.sprintf "Rpc.Table.set: method id %d outside [0, %d)" id
         (Array.length t.handlers));
  t.handlers.(id) <- h

let dispatch t m =
  if m >= 0 && m < Array.length t.handlers then Array.unsafe_get t.handlers m
  else t.fallback
