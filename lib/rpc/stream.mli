(** Streamed-response sequencing.

    A streamed method's chunks are ordinary response frames whose [seq]
    envelope field carries [(seq lsl 1) lor last]. The last data chunk
    sets the last bit; there is no empty terminator frame. *)

(** Raises [Invalid_argument] on negative [seq]. *)
val word : seq:int -> last:bool -> int64

val seq_of : int64 -> int
val is_last : int64 -> bool

(** {2 Server-side emission} *)

type cursor

val cursor : unit -> cursor

(** Next seq word; closes the cursor when [last]. Raises
    [Invalid_argument] once closed. *)
val next : cursor -> last:bool -> int64

val closed : cursor -> bool

(** Chunks emitted so far. *)
val emitted : cursor -> int

(** {2 Client-side reassembly} *)

type collector

val collector : unit -> collector

(** Feed one seq word, in arrival order. *)
val observe :
  collector -> int64 -> [ `Chunk | `Last | `Out_of_order | `After_end ]

val finished : collector -> bool

(** In-order chunks accepted so far. *)
val received : collector -> int

val reset : collector -> unit
