(* Client-side call state shared by every generated stub.

   A generated [call_<m>] closes over this record: it assigns a request
   id, registers the reply continuation, stamps the id + method word into
   the request envelope via [prepare], then hands the folded send closure
   either to [Net.Reliab] (retry/backoff, deadline-clamped) or straight
   to the transport. Responses come back through the generated [deliver],
   which validates the frame into the pooled [reader] exactly once and
   routes on the echoed id here — {!complete} acks the retry layer and
   runs the continuation with the in-place reader, so a unary round trip
   allocates nothing on the reply path beyond the validation itself.

   Streamed methods register a {!Stream.collector}; each chunk's seq word
   (from the response envelope's [seq] field) is checked for order, the
   last bit resolves the call. *)

type reply_handler =
  | Unary of (Wire.Reader.t -> unit)
  | Streamed of {
      on_chunk : Wire.Reader.t -> unit;
      on_done : ok:bool -> unit;
      coll : Stream.collector;
    }

type t = {
  tr : Net.Transport.t;
  config : Cornflakes.Config.t;
  engine : Sim.Engine.t option;
  reliab : Net.Reliab.t option;
  reader : Wire.Reader.t;
  pending : (int, reply_handler) Hashtbl.t;
  mutable next_id : int;
  mutable calls : int;
  mutable replies : int;
  mutable chunks : int;
  mutable abandoned : int;
  mutable orphans : int;
  mutable misordered : int;
}

let create ?(config = Cornflakes.Config.default) ?engine ?reliab ~resp tr =
  {
    tr;
    config;
    engine;
    reliab;
    reader = Wire.Reader.create resp;
    pending = Hashtbl.create 64;
    next_id = 1;
    calls = 0;
    replies = 0;
    chunks = 0;
    abandoned = 0;
    orphans = 0;
    misordered = 0;
  }

let transport t = t.tr
let config t = t.config
let reader t = t.reader

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let abandon t ~id =
  match Hashtbl.find_opt t.pending id with
  | None -> ()
  | Some h ->
      Hashtbl.remove t.pending id;
      t.abandoned <- t.abandoned + 1;
      (match h with Unary _ -> () | Streamed s -> s.on_done ~ok:false)

let start t ?deadline_ms ~handler ~prepare ~send () =
  let id = fresh_id t in
  Hashtbl.replace t.pending id handler;
  t.calls <- t.calls + 1;
  prepare id;
  let deadline_ns = Option.map Deadline.ns_of_ms deadline_ms in
  (match t.reliab with
  | Some rl -> Net.Reliab.track ?deadline_ns rl ~id ~send ~give_up:(fun () -> abandon t ~id)
  | None -> (
      send ();
      (* No retry layer: the deadline still resolves the call
         deterministically, provided an engine clock is attached. *)
      match (deadline_ns, t.engine) with
      | Some d, Some engine ->
          Sim.Engine.schedule engine ~after:d (fun () -> abandon t ~id)
      | _ -> ()));
  id

let call t ?deadline_ms ~prepare ~send ~on_reply () =
  start t ?deadline_ms ~handler:(Unary on_reply) ~prepare ~send ()

let call_stream t ?deadline_ms ~prepare ~send ~on_chunk ~on_done () =
  start t ?deadline_ms
    ~handler:(Streamed { on_chunk; on_done; coll = Stream.collector () })
    ~prepare ~send ()

let ack_reliab t ~id =
  match t.reliab with
  | Some rl -> ignore (Net.Reliab.ack rl ~id)
  | None -> ()

let complete ?seq_word t ~id r =
  match Hashtbl.find_opt t.pending id with
  | None -> t.orphans <- t.orphans + 1
  | Some (Unary f) ->
      Hashtbl.remove t.pending id;
      ack_reliab t ~id;
      t.replies <- t.replies + 1;
      f r
  | Some (Streamed s) -> (
      match seq_word with
      | None ->
          (* A streamed reply without a seq word is a framing error. *)
          t.misordered <- t.misordered + 1
      | Some w -> (
          match Stream.observe s.coll w with
          | `Chunk ->
              t.chunks <- t.chunks + 1;
              s.on_chunk r
          | `Last ->
              Hashtbl.remove t.pending id;
              ack_reliab t ~id;
              t.chunks <- t.chunks + 1;
              t.replies <- t.replies + 1;
              s.on_chunk r;
              s.on_done ~ok:true
          | `Out_of_order | `After_end -> t.misordered <- t.misordered + 1))

let outstanding t = Hashtbl.length t.pending
let calls t = t.calls
let replies t = t.replies
let chunks t = t.chunks
let abandoned t = t.abandoned
let orphans t = t.orphans
let misordered t = t.misordered
