let keywords =
  [
    "and"; "as"; "assert"; "begin"; "class"; "constraint"; "do"; "done";
    "downto"; "else"; "end"; "exception"; "external"; "false"; "for"; "fun";
    "function"; "functor"; "if"; "in"; "include"; "inherit"; "initializer";
    "lazy"; "let"; "match"; "method"; "module"; "mutable"; "new"; "object";
    "of"; "or"; "private"; "rec"; "sig"; "struct"; "then"; "to";
    "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with";
  ]

let ocaml_name s =
  let b = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | 'a' .. 'z' | '0' .. '9' | '_' ->
          if i = 0 && c >= '0' && c <= '9' then Buffer.add_char b 'f';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  let name = Buffer.contents b in
  let name = if name = "" then "field" else name in
  if List.mem name keywords then name ^ "_" else name

let module_name s = String.capitalize_ascii (ocaml_name s)

(* The copy/zc crossover used to fold payload dispatch; matches the runtime
   default ([Config.default.zero_copy_threshold]) and the committed probe
   table ([Sanitizer.Crossover]). The CLI can override it with the
   probe-calibrated value (--crossover-from-probe). *)
let default_crossover = 512

(* Which CFPtr entry does a payload field's setter compile to? A declared
   size bound that lands the whole field on one side of the crossover folds
   the per-field size test away entirely. *)
type dispatch = Copy_folded | Zc_folded | Table

let payload_dispatch ~crossover (f : Schema.Desc.field) =
  match (f.Schema.Desc.max_size, f.Schema.Desc.min_size) with
  | Some mx, _ when mx < crossover -> Copy_folded
  | _, Some mn when mn >= crossover -> Zc_folded
  | _ -> Table

let dispatch_ctor = function
  | Copy_folded -> "Cornflakes.Cf_ptr.copy_folded"
  | Zc_folded -> "Cornflakes.Cf_ptr.zc_folded"
  | Table -> "Cornflakes.Cf_ptr.make"

let dispatch_reason ~crossover (f : Schema.Desc.field) = function
  | Copy_folded ->
      Printf.sprintf "max_size %d < crossover %d: always copied"
        (Option.get f.Schema.Desc.max_size)
        crossover
  | Zc_folded ->
      Printf.sprintf "min_size %d >= crossover %d: always zero-copy"
        (Option.get f.Schema.Desc.min_size)
        crossover
  | Table -> "CFPtr's size-class table decides copy vs zero-copy"

let emit_scalar_field buf (f : Schema.Desc.field) scalar =
  let n = ocaml_name f.Schema.Desc.field_name in
  let fname = f.Schema.Desc.field_name in
  match (f.Schema.Desc.label, scalar) with
  | Schema.Desc.Repeated, _ ->
      Printf.bprintf buf
        "  let add_%s t v = Wire.Dyn.append t.msg %S (Wire.Dyn.Int v)\n\n" n
        fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    List.filter_map\n\
        \      (function Wire.Dyn.Int v -> Some v | _ -> None)\n\
        \      (Wire.Dyn.get_list t.msg %S)\n\n"
        n fname
  | Schema.Desc.Singular, Schema.Desc.Float64 ->
      Printf.bprintf buf
        "  let set_%s t v = Wire.Dyn.set t.msg %S (Wire.Dyn.Float v)\n\n" n
        fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    match Wire.Dyn.get t.msg %S with\n\
        \    | Some (Wire.Dyn.Float v) -> Some v\n\
        \    | _ -> None\n\n"
        n fname
  | Schema.Desc.Singular, _ ->
      Printf.bprintf buf "  let set_%s t v = Wire.Dyn.set_int t.msg %S v\n\n" n
        fname;
      Printf.bprintf buf "  let %s t = Wire.Dyn.get_int t.msg %S\n\n" n fname

let emit_payload_field ~crossover buf (f : Schema.Desc.field) =
  let n = ocaml_name f.Schema.Desc.field_name in
  let fname = f.Schema.Desc.field_name in
  let d = payload_dispatch ~crossover f in
  let ctor = dispatch_ctor d in
  let reason = dispatch_reason ~crossover f d in
  match f.Schema.Desc.label with
  | Schema.Desc.Repeated ->
      Printf.bprintf buf
        "  (* [add_%s] accepts any bytes; %s. *)\n\
        \  let add_%s ?cpu config ep t view =\n\
        \    Wire.Dyn.append t.msg %S\n\
        \      (Wire.Dyn.Payload (%s ?cpu config ep view))\n\n"
        n reason n fname ctor;
      Printf.bprintf buf
        "  let add_%s_payload t p =\n\
        \    Wire.Dyn.append t.msg %S (Wire.Dyn.Payload p)\n\n"
        n fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    List.filter_map\n\
        \      (function Wire.Dyn.Payload p -> Some p | _ -> None)\n\
        \      (Wire.Dyn.get_list t.msg %S)\n\n"
        n fname
  | Schema.Desc.Singular ->
      Printf.bprintf buf
        "  (* [set_%s] accepts any bytes; %s. *)\n\
        \  let set_%s ?cpu config ep t view =\n\
        \    Wire.Dyn.set t.msg %S\n\
        \      (Wire.Dyn.Payload (%s ?cpu config ep view))\n\n"
        n reason n fname ctor;
      Printf.bprintf buf
        "  let set_%s_payload t p = Wire.Dyn.set t.msg %S (Wire.Dyn.Payload p)\n\n"
        n fname;
      Printf.bprintf buf "  let %s t = Wire.Dyn.get_payload t.msg %S\n\n" n fname

let emit_message_field buf (f : Schema.Desc.field) =
  let n = ocaml_name f.Schema.Desc.field_name in
  let fname = f.Schema.Desc.field_name in
  match f.Schema.Desc.label with
  | Schema.Desc.Repeated ->
      Printf.bprintf buf
        "  let add_%s t nested = Wire.Dyn.append t.msg %S (Wire.Dyn.Nested nested)\n\n"
        n fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    List.filter_map\n\
        \      (function Wire.Dyn.Nested m -> Some m | _ -> None)\n\
        \      (Wire.Dyn.get_list t.msg %S)\n\n"
        n fname
  | Schema.Desc.Singular ->
      Printf.bprintf buf
        "  let set_%s t nested = Wire.Dyn.set t.msg %S (Wire.Dyn.Nested nested)\n\n"
        n fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    match Wire.Dyn.get t.msg %S with\n\
        \    | Some (Wire.Dyn.Nested m) -> Some m\n\
        \    | _ -> None\n\n"
        n fname

(* The specialized serializer body handed to [Send.send_planned] /
   [Format_.run]: when every field is present, the layout is fully folded —
   one hoisted [span] bounds check, a literal bitmap-word store, and
   unrolled constant-offset slot stores (scalars write their u64 directly;
   variable-size values go through [Format_.write_value_at] with a literal
   slot). Any other presence pattern — and any message the layout cannot
   fold — falls back to the generic writer, which produces byte-identical
   wire output. *)
let emit_write_folded buf (m : Schema.Desc.message) =
  let fields = m.Schema.Desc.fields in
  let n = Array.length fields in
  if not (Layout.foldable n) then
    Printf.bprintf buf
      "  (* Specialized serializer: %s, so writes always take the generic\n\
      \     path. *)\n\
      \  let write_folded ~cpu plan w msg =\n\
      \    Cornflakes.Format_.write_msg_generic ?cpu w plan msg\n\
      \  [@@alloc_free]\n\n"
      (if n = 0 then "the message has no fields"
       else "the bitmap spans several words")
  else begin
    Printf.bprintf buf
      "  (* Specialized serializer (constant-folded layout): with all %d\n\
      \     field%s present the header block is bytes [0, %d) — bitmap word\n\
      \     count 1, bitmap 0x%x, info slots from byte %d — so one [span]\n\
      \     bounds check covers every unrolled store below. Any other\n\
      \     presence falls back to the generic writer (identical bytes). *)\n\
      \  let write_folded ~cpu plan w msg =\n\
      \    if Wire.Dyn.present_count msg = %d then begin\n\
      \      Wire.Cursor.Writer.span w ~pos:0 ~len:%d;\n\
      \      Wire.Cursor.Writer.u32_at w ~pos:0 1;\n\
      \      Wire.Cursor.Writer.u32_at w ~pos:4 0x%x;\n"
      n
      (if n = 1 then "" else "s")
      (Layout.all_present_header_len n)
      (Layout.all_present_bitmap n)
      (Layout.slot_base n) n
      (Layout.all_present_header_len n)
      (Layout.all_present_bitmap n);
    Array.iteri
      (fun i (f : Schema.Desc.field) ->
        let slot = Layout.slot n i in
        let sep = if i = n - 1 then "" else ";" in
        match (f.Schema.Desc.label, f.Schema.Desc.ty) with
        | Schema.Desc.Singular, Schema.Desc.Scalar Schema.Desc.Float64 ->
            Printf.bprintf buf
              "      (match Wire.Dyn.raw_field msg %d with\n\
              \      | Some (Wire.Dyn.Float v) ->\n\
              \          Wire.Cursor.Writer.u64_at w ~pos:%d (Int64.bits_of_float v)\n\
              \      | Some v -> Cornflakes.Format_.write_value_at ?cpu w plan v ~slot:%d\n\
              \      | None -> assert false)%s\n"
              i slot slot sep
        | Schema.Desc.Singular, Schema.Desc.Scalar _ ->
            Printf.bprintf buf
              "      (match Wire.Dyn.raw_field msg %d with\n\
              \      | Some (Wire.Dyn.Int v) -> Wire.Cursor.Writer.u64_at w ~pos:%d v\n\
              \      | Some v -> Cornflakes.Format_.write_value_at ?cpu w plan v ~slot:%d\n\
              \      | None -> assert false)%s\n"
              i slot slot sep
        | _ ->
            Printf.bprintf buf
              "      (match Wire.Dyn.raw_field msg %d with\n\
              \      | Some v -> Cornflakes.Format_.write_value_at ?cpu w plan v ~slot:%d\n\
              \      | None -> assert false)%s\n"
              i slot sep)
      fields;
    Buffer.add_string buf
      "    end\n\
      \    else Cornflakes.Format_.write_msg_generic ?cpu w plan msg\n\
      \  [@@alloc_free]\n\n"
  end

(* The specialized validator paired with [Wire.Reader]: when the frame
   carries the constant-folded all-present layout (same shape
   [write_folded] emits — bitmap word count 1, the literal bitmap, slots
   at literal offsets), [Wire.Reader.validate_folded] validates it with
   one hoisted bounds check and arithmetic slot fill. Any other presence
   pattern falls back to the generic validate pass, which accepts exactly
   the same frames and yields the same typed view. *)
let emit_read_folded buf (m : Schema.Desc.message) =
  let fields = m.Schema.Desc.fields in
  let n = Array.length fields in
  Buffer.add_string buf
    "  (* A reusable in-place reader for this message type; validate with\n\
    \     [read_folded] then access fields in the receive buffer. *)\n\
    \  let reader () = Wire.Reader.create desc\n\n";
  if not (Layout.foldable n) then
    Printf.bprintf buf
      "  (* Specialized validator: %s, so validation always takes the\n\
      \     generic pass. *)\n\
      \  let read_folded ?cpu r buf = Wire.Reader.validate ?cpu r buf\n\
      \  [@@alloc_free]\n\n"
      (if n = 0 then "the message has no fields"
       else "the bitmap spans several words")
  else
    Printf.bprintf buf
      "  (* Specialized validator (constant-folded layout): with all %d\n\
      \     field%s present the header block is bytes [0, %d) — bitmap\n\
      \     0x%x, info slots from byte %d — so one bounds check plus\n\
      \     arithmetic slot fill validates the frame. Any other presence\n\
      \     falls back to the generic pass (same frames accepted). *)\n\
      \  let read_folded ?cpu r buf =\n\
      \    if not (Wire.Reader.validate_folded ?cpu r buf ~bitmap:0x%x ~header_len:%d)\n\
      \    then Wire.Reader.validate ?cpu r buf\n\
      \  [@@alloc_free]\n\n"
      n
      (if n = 1 then "" else "s")
      (Layout.all_present_header_len n)
      (Layout.all_present_bitmap n)
      (Layout.slot_base n)
      (Layout.all_present_bitmap n)
      (Layout.all_present_header_len n)

let emit_message ~crossover buf (m : Schema.Desc.message) =
  Printf.bprintf buf "module %s = struct\n" (module_name m.Schema.Desc.msg_name);
  Printf.bprintf buf "  let desc = Schema.Desc.message schema %S\n\n"
    m.Schema.Desc.msg_name;
  Buffer.add_string buf "  type t = { msg : Wire.Dyn.t }\n\n";
  Buffer.add_string buf "  let create () = { msg = Wire.Dyn.create desc }\n\n";
  Buffer.add_string buf "  let to_dyn t = t.msg\n\n";
  Buffer.add_string buf
    "  let of_dyn msg =\n\
    \    if (Wire.Dyn.desc msg).Schema.Desc.msg_name <> desc.Schema.Desc.msg_name\n\
    \    then invalid_arg \"of_dyn: wrong message type\";\n\
    \    { msg }\n\n";
  Array.iter
    (fun (f : Schema.Desc.field) ->
      match f.Schema.Desc.ty with
      | Schema.Desc.Scalar s -> emit_scalar_field buf f s
      | Schema.Desc.Str | Schema.Desc.Bytes ->
          emit_payload_field ~crossover buf f
      | Schema.Desc.Message _ -> emit_message_field buf f)
    m.Schema.Desc.fields;
  Buffer.add_string buf
    "  let object_len t = Cornflakes.Format_.object_len t.msg\n\n";
  Buffer.add_string buf
    "  let deserialize buf =\n\
    \    { msg = Cornflakes.Send.deserialize schema desc buf }\n\n";
  emit_read_folded buf m;
  emit_write_folded buf m;
  Buffer.add_string buf
    "  (* Combined serialize-and-send: no separate serialize step. The\n\
    \     transport decides framing and headroom, so the same accessor\n\
    \     sends over UDP datagrams or TCP records; the serializer body is\n\
    \     this module's folded writer. *)\n\
    \  let send ?cpu config tr ~dst t =\n\
    \    Cornflakes.Send.send_planned ?cpu config tr ~dst t.msg\n\
    \      ~write:write_folded\n\
    \  [@@alloc_free]\n\n";
  Buffer.add_string buf
    "  let release ?cpu t = Wire.Dyn.release ?cpu t.msg\nend\n\n"

let module_source ?(crossover = default_crossover) ~schema_text schema =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "(* Generated by the Cornflakes compiler (Codegen.Emit). DO NOT EDIT. *)\n\n";
  Printf.bprintf buf "let schema = Schema.Parser.parse {schema|%s|schema}\n\n"
    schema_text;
  List.iter (fun m -> emit_message ~crossover buf m) schema.Schema.Desc.messages;
  Buffer.contents buf

(* Ownership-IR summary of the generated module: one line per binding,
   declaring the role it plays and the runtime entry point it must call.
   StatCheck's IR pass re-parses the generated .ml against this, so the
   generated code is verified mechanically instead of hand-spec'd — and a
   hand-edited generated file (or a stale sidecar) fails `check`. *)
let ir_message ~crossover buf (m : Schema.Desc.message) =
  let mn = module_name m.Schema.Desc.msg_name in
  let fn name role callee =
    Printf.bprintf buf "fn %s.%s role=%s callee=%s\n" mn name role callee
  in
  fn "desc" "desc" "Schema.Desc.message";
  fn "create" "alloc" "Wire.Dyn.create";
  fn "to_dyn" "accessor" "-";
  fn "of_dyn" "accessor" "Wire.Dyn.desc";
  Array.iter
    (fun (f : Schema.Desc.field) ->
      let n = ocaml_name f.Schema.Desc.field_name in
      match (f.Schema.Desc.ty, f.Schema.Desc.label) with
      | Schema.Desc.Scalar _, Schema.Desc.Repeated ->
          fn ("add_" ^ n) "setter" "Wire.Dyn.append";
          fn n "getter" "Wire.Dyn.get_list"
      | Schema.Desc.Scalar Schema.Desc.Float64, Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Wire.Dyn.set";
          fn n "getter" "Wire.Dyn.get"
      | Schema.Desc.Scalar _, Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Wire.Dyn.set_int";
          fn n "getter" "Wire.Dyn.get_int"
      | (Schema.Desc.Str | Schema.Desc.Bytes), Schema.Desc.Repeated ->
          fn ("add_" ^ n) "setter"
            (dispatch_ctor (payload_dispatch ~crossover f));
          fn ("add_" ^ n ^ "_payload") "setter" "Wire.Dyn.append";
          fn n "getter" "Wire.Dyn.get_list"
      | (Schema.Desc.Str | Schema.Desc.Bytes), Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter"
            (dispatch_ctor (payload_dispatch ~crossover f));
          fn ("set_" ^ n ^ "_payload") "setter" "Wire.Dyn.set";
          fn n "getter" "Wire.Dyn.get_payload"
      | Schema.Desc.Message _, Schema.Desc.Repeated ->
          fn ("add_" ^ n) "setter" "Wire.Dyn.append";
          fn n "getter" "Wire.Dyn.get_list"
      | Schema.Desc.Message _, Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Wire.Dyn.set";
          fn n "getter" "Wire.Dyn.get")
    m.Schema.Desc.fields;
  fn "object_len" "len" "Cornflakes.Format_.object_len";
  fn "deserialize" "deserialize" "Cornflakes.Send.deserialize";
  fn "reader" "alloc" "Wire.Reader.create";
  fn "read_folded" "reader"
    (if Layout.foldable (Array.length m.Schema.Desc.fields) then
       "Wire.Reader.validate_folded"
     else "Wire.Reader.validate");
  fn "write_folded" "writer" "Cornflakes.Format_.write_msg_generic";
  fn "send" "send" "Cornflakes.Send.send_planned";
  fn "release" "release" "Wire.Dyn.release"

let ir_source ?(crossover = default_crossover) schema =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "# Ownership IR generated by the Cornflakes compiler (Codegen.Emit). DO NOT EDIT.\n";
  List.iter
    (fun m ->
      Buffer.add_char buf '\n';
      ir_message ~crossover buf m)
    schema.Schema.Desc.messages;
  Buffer.contents buf
