let keywords =
  [
    "and"; "as"; "assert"; "begin"; "class"; "constraint"; "do"; "done";
    "downto"; "else"; "end"; "exception"; "external"; "false"; "for"; "fun";
    "function"; "functor"; "if"; "in"; "include"; "inherit"; "initializer";
    "lazy"; "let"; "match"; "method"; "module"; "mutable"; "new"; "object";
    "of"; "or"; "private"; "rec"; "sig"; "struct"; "then"; "to";
    "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with";
  ]

let ocaml_name s =
  let b = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | 'a' .. 'z' | '0' .. '9' | '_' ->
          if i = 0 && c >= '0' && c <= '9' then Buffer.add_char b 'f';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  let name = Buffer.contents b in
  let name = if name = "" then "field" else name in
  if List.mem name keywords then name ^ "_" else name

let module_name s = String.capitalize_ascii (ocaml_name s)

(* The copy/zc crossover used to fold payload dispatch; matches the runtime
   default ([Config.default.zero_copy_threshold]) and the committed probe
   table ([Sanitizer.Crossover]). The CLI can override it with the
   probe-calibrated value (--crossover-from-probe). *)
let default_crossover = 512

(* Which CFPtr entry does a payload field's setter compile to? A declared
   size bound that lands the whole field on one side of the crossover folds
   the per-field size test away entirely. *)
type dispatch = Copy_folded | Zc_folded | Table

let payload_dispatch ~crossover (f : Schema.Desc.field) =
  match (f.Schema.Desc.max_size, f.Schema.Desc.min_size) with
  | Some mx, _ when mx < crossover -> Copy_folded
  | _, Some mn when mn >= crossover -> Zc_folded
  | _ -> Table

let dispatch_ctor = function
  | Copy_folded -> "Cornflakes.Cf_ptr.copy_folded"
  | Zc_folded -> "Cornflakes.Cf_ptr.zc_folded"
  | Table -> "Cornflakes.Cf_ptr.make"

let dispatch_reason ~crossover (f : Schema.Desc.field) = function
  | Copy_folded ->
      Printf.sprintf "max_size %d < crossover %d: always copied"
        (Option.get f.Schema.Desc.max_size)
        crossover
  | Zc_folded ->
      Printf.sprintf "min_size %d >= crossover %d: always zero-copy"
        (Option.get f.Schema.Desc.min_size)
        crossover
  | Table -> "CFPtr's size-class table decides copy vs zero-copy"

let emit_scalar_field buf (f : Schema.Desc.field) scalar =
  let n = ocaml_name f.Schema.Desc.field_name in
  let fname = f.Schema.Desc.field_name in
  match (f.Schema.Desc.label, scalar) with
  | Schema.Desc.Repeated, _ ->
      Printf.bprintf buf
        "  let add_%s t v = Wire.Dyn.append t.msg %S (Wire.Dyn.Int v)\n\n" n
        fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    List.filter_map\n\
        \      (function Wire.Dyn.Int v -> Some v | _ -> None)\n\
        \      (Wire.Dyn.get_list t.msg %S)\n\n"
        n fname
  | Schema.Desc.Singular, Schema.Desc.Float64 ->
      Printf.bprintf buf
        "  let set_%s t v = Wire.Dyn.set t.msg %S (Wire.Dyn.Float v)\n\n" n
        fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    match Wire.Dyn.get t.msg %S with\n\
        \    | Some (Wire.Dyn.Float v) -> Some v\n\
        \    | _ -> None\n\n"
        n fname
  | Schema.Desc.Singular, _ ->
      Printf.bprintf buf "  let set_%s t v = Wire.Dyn.set_int t.msg %S v\n\n" n
        fname;
      Printf.bprintf buf "  let %s t = Wire.Dyn.get_int t.msg %S\n\n" n fname

let emit_payload_field ~crossover buf (f : Schema.Desc.field) =
  let n = ocaml_name f.Schema.Desc.field_name in
  let fname = f.Schema.Desc.field_name in
  let d = payload_dispatch ~crossover f in
  let ctor = dispatch_ctor d in
  let reason = dispatch_reason ~crossover f d in
  match f.Schema.Desc.label with
  | Schema.Desc.Repeated ->
      Printf.bprintf buf
        "  (* [add_%s] accepts any bytes; %s. *)\n\
        \  let add_%s ?cpu config ep t view =\n\
        \    Wire.Dyn.append t.msg %S\n\
        \      (Wire.Dyn.Payload (%s ?cpu config ep view))\n\n"
        n reason n fname ctor;
      Printf.bprintf buf
        "  let add_%s_payload t p =\n\
        \    Wire.Dyn.append t.msg %S (Wire.Dyn.Payload p)\n\n"
        n fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    List.filter_map\n\
        \      (function Wire.Dyn.Payload p -> Some p | _ -> None)\n\
        \      (Wire.Dyn.get_list t.msg %S)\n\n"
        n fname
  | Schema.Desc.Singular ->
      Printf.bprintf buf
        "  (* [set_%s] accepts any bytes; %s. *)\n\
        \  let set_%s ?cpu config ep t view =\n\
        \    Wire.Dyn.set t.msg %S\n\
        \      (Wire.Dyn.Payload (%s ?cpu config ep view))\n\n"
        n reason n fname ctor;
      Printf.bprintf buf
        "  let set_%s_payload t p = Wire.Dyn.set t.msg %S (Wire.Dyn.Payload p)\n\n"
        n fname;
      Printf.bprintf buf "  let %s t = Wire.Dyn.get_payload t.msg %S\n\n" n fname

let emit_message_field buf (f : Schema.Desc.field) =
  let n = ocaml_name f.Schema.Desc.field_name in
  let fname = f.Schema.Desc.field_name in
  match f.Schema.Desc.label with
  | Schema.Desc.Repeated ->
      Printf.bprintf buf
        "  let add_%s t nested = Wire.Dyn.append t.msg %S (Wire.Dyn.Nested nested)\n\n"
        n fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    List.filter_map\n\
        \      (function Wire.Dyn.Nested m -> Some m | _ -> None)\n\
        \      (Wire.Dyn.get_list t.msg %S)\n\n"
        n fname
  | Schema.Desc.Singular ->
      Printf.bprintf buf
        "  let set_%s t nested = Wire.Dyn.set t.msg %S (Wire.Dyn.Nested nested)\n\n"
        n fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    match Wire.Dyn.get t.msg %S with\n\
        \    | Some (Wire.Dyn.Nested m) -> Some m\n\
        \    | _ -> None\n\n"
        n fname

(* The specialized serializer body handed to [Send.send_planned] /
   [Format_.run]: when every field is present, the layout is fully folded —
   one hoisted [span] bounds check, a literal bitmap-word store, and
   unrolled constant-offset slot stores (scalars write their u64 directly;
   variable-size values go through [Format_.write_value_at] with a literal
   slot). Any other presence pattern — and any message the layout cannot
   fold — falls back to the generic writer, which produces byte-identical
   wire output. *)
let emit_write_folded buf (m : Schema.Desc.message) =
  let fields = m.Schema.Desc.fields in
  let n = Array.length fields in
  if not (Layout.foldable n) then
    Printf.bprintf buf
      "  (* Specialized serializer: %s, so writes always take the generic\n\
      \     path. *)\n\
      \  let write_folded ~cpu plan w msg =\n\
      \    Cornflakes.Format_.write_msg_generic ?cpu w plan msg\n\
      \  [@@alloc_free]\n\n"
      (if n = 0 then "the message has no fields"
       else "the bitmap spans several words")
  else begin
    Printf.bprintf buf
      "  (* Specialized serializer (constant-folded layout): with all %d\n\
      \     field%s present the header block is bytes [0, %d) — bitmap word\n\
      \     count 1, bitmap 0x%x, info slots from byte %d — so one [span]\n\
      \     bounds check covers every unrolled store below. Any other\n\
      \     presence falls back to the generic writer (identical bytes). *)\n\
      \  let write_folded ~cpu plan w msg =\n\
      \    if Wire.Dyn.present_count msg = %d then begin\n\
      \      Wire.Cursor.Writer.span w ~pos:0 ~len:%d;\n\
      \      Wire.Cursor.Writer.u32_at w ~pos:0 1;\n\
      \      Wire.Cursor.Writer.u32_at w ~pos:4 0x%x;\n"
      n
      (if n = 1 then "" else "s")
      (Layout.all_present_header_len n)
      (Layout.all_present_bitmap n)
      (Layout.slot_base n) n
      (Layout.all_present_header_len n)
      (Layout.all_present_bitmap n);
    Array.iteri
      (fun i (f : Schema.Desc.field) ->
        let slot = Layout.slot n i in
        let sep = if i = n - 1 then "" else ";" in
        match (f.Schema.Desc.label, f.Schema.Desc.ty) with
        | Schema.Desc.Singular, Schema.Desc.Scalar Schema.Desc.Float64 ->
            Printf.bprintf buf
              "      (match Wire.Dyn.raw_field msg %d with\n\
              \      | Some (Wire.Dyn.Float v) ->\n\
              \          Wire.Cursor.Writer.u64_at w ~pos:%d (Int64.bits_of_float v)\n\
              \      | Some v -> Cornflakes.Format_.write_value_at ?cpu w plan v ~slot:%d\n\
              \      | None -> assert false)%s\n"
              i slot slot sep
        | Schema.Desc.Singular, Schema.Desc.Scalar _ ->
            Printf.bprintf buf
              "      (match Wire.Dyn.raw_field msg %d with\n\
              \      | Some (Wire.Dyn.Int v) -> Wire.Cursor.Writer.u64_at w ~pos:%d v\n\
              \      | Some v -> Cornflakes.Format_.write_value_at ?cpu w plan v ~slot:%d\n\
              \      | None -> assert false)%s\n"
              i slot slot sep
        | _ ->
            Printf.bprintf buf
              "      (match Wire.Dyn.raw_field msg %d with\n\
              \      | Some v -> Cornflakes.Format_.write_value_at ?cpu w plan v ~slot:%d\n\
              \      | None -> assert false)%s\n"
              i slot sep)
      fields;
    Buffer.add_string buf
      "    end\n\
      \    else Cornflakes.Format_.write_msg_generic ?cpu w plan msg\n\
      \  [@@alloc_free]\n\n"
  end

(* The specialized validator paired with [Wire.Reader]: when the frame
   carries the constant-folded all-present layout (same shape
   [write_folded] emits — bitmap word count 1, the literal bitmap, slots
   at literal offsets), [Wire.Reader.validate_folded] validates it with
   one hoisted bounds check and arithmetic slot fill. Any other presence
   pattern falls back to the generic validate pass, which accepts exactly
   the same frames and yields the same typed view. *)
let emit_read_folded buf (m : Schema.Desc.message) =
  let fields = m.Schema.Desc.fields in
  let n = Array.length fields in
  Buffer.add_string buf
    "  (* A reusable in-place reader for this message type; validate with\n\
    \     [read_folded] then access fields in the receive buffer. *)\n\
    \  let reader () = Wire.Reader.create desc\n\n";
  if not (Layout.foldable n) then
    Printf.bprintf buf
      "  (* Specialized validator: %s, so validation always takes the\n\
      \     generic pass. *)\n\
      \  let read_folded ?cpu r buf = Wire.Reader.validate ?cpu r buf\n\
      \  [@@alloc_free]\n\n"
      (if n = 0 then "the message has no fields"
       else "the bitmap spans several words")
  else
    Printf.bprintf buf
      "  (* Specialized validator (constant-folded layout): with all %d\n\
      \     field%s present the header block is bytes [0, %d) — bitmap\n\
      \     0x%x, info slots from byte %d — so one bounds check plus\n\
      \     arithmetic slot fill validates the frame. Any other presence\n\
      \     falls back to the generic pass (same frames accepted). *)\n\
      \  let read_folded ?cpu r buf =\n\
      \    if not (Wire.Reader.validate_folded ?cpu r buf ~bitmap:0x%x ~header_len:%d)\n\
      \    then Wire.Reader.validate ?cpu r buf\n\
      \  [@@alloc_free]\n\n"
      n
      (if n = 1 then "" else "s")
      (Layout.all_present_header_len n)
      (Layout.all_present_bitmap n)
      (Layout.slot_base n)
      (Layout.all_present_bitmap n)
      (Layout.all_present_header_len n)

let emit_message ~crossover buf (m : Schema.Desc.message) =
  Printf.bprintf buf "module %s = struct\n" (module_name m.Schema.Desc.msg_name);
  Printf.bprintf buf "  let desc = Schema.Desc.message schema %S\n\n"
    m.Schema.Desc.msg_name;
  Buffer.add_string buf "  type t = { msg : Wire.Dyn.t }\n\n";
  Buffer.add_string buf "  let create () = { msg = Wire.Dyn.create desc }\n\n";
  Buffer.add_string buf "  let to_dyn t = t.msg\n\n";
  Buffer.add_string buf
    "  let of_dyn msg =\n\
    \    if (Wire.Dyn.desc msg).Schema.Desc.msg_name <> desc.Schema.Desc.msg_name\n\
    \    then invalid_arg \"of_dyn: wrong message type\";\n\
    \    { msg }\n\n";
  Array.iter
    (fun (f : Schema.Desc.field) ->
      match f.Schema.Desc.ty with
      | Schema.Desc.Scalar s -> emit_scalar_field buf f s
      | Schema.Desc.Str | Schema.Desc.Bytes ->
          emit_payload_field ~crossover buf f
      | Schema.Desc.Message _ -> emit_message_field buf f)
    m.Schema.Desc.fields;
  Buffer.add_string buf
    "  let object_len t = Cornflakes.Format_.object_len t.msg\n\n";
  Buffer.add_string buf
    "  let deserialize buf =\n\
    \    { msg = Cornflakes.Send.deserialize schema desc buf }\n\n";
  emit_read_folded buf m;
  emit_write_folded buf m;
  Buffer.add_string buf
    "  (* Combined serialize-and-send: no separate serialize step. The\n\
    \     transport decides framing and headroom, so the same accessor\n\
    \     sends over UDP datagrams or TCP records; the serializer body is\n\
    \     this module's folded writer. *)\n\
    \  let send ?cpu config tr ~dst t =\n\
    \    Cornflakes.Send.send_planned ?cpu config tr ~dst t.msg\n\
    \      ~write:write_folded\n\
    \  [@@alloc_free]\n\n";
  Buffer.add_string buf
    "  let release ?cpu t = Wire.Dyn.release ?cpu t.msg\nend\n\n"

(* --- service compilation ---------------------------------------------- *)

let service_module_name (s : Schema.Desc.service) =
  module_name s.Schema.Desc.svc_name ^ "_service"

let has_streamed (s : Schema.Desc.service) =
  Array.exists (fun (m : Schema.Desc.method_) -> m.Schema.Desc.stream)
    s.Schema.Desc.methods

(* Envelope geometry folded at compile time: the v1 service contract
   (checked by [Desc.validate]) pins every method of a service to one
   request and one response envelope, with integer scalar [op]/[id] in the
   request, [id] (plus [seq] for streams) in the response — so the field
   indices the skeleton dispatches on are literals here. *)
type envelope = {
  env_req : Schema.Desc.message;
  env_resp : Schema.Desc.message;
  e_req_op : int;
  e_req_id : int;
  e_resp_id : int;
  e_resp_seq : int option;
}

let envelope schema (s : Schema.Desc.service) =
  let m0 = s.Schema.Desc.methods.(0) in
  let req = Schema.Desc.message schema m0.Schema.Desc.req_type in
  let resp = Schema.Desc.message schema m0.Schema.Desc.resp_type in
  {
    env_req = req;
    env_resp = resp;
    e_req_op = Schema.Desc.field_index req "op";
    e_req_id = Schema.Desc.field_index req "id";
    e_resp_id = Schema.Desc.field_index resp "id";
    e_resp_seq =
      (if has_streamed s then Some (Schema.Desc.field_index resp "seq")
       else None);
  }

(* The compiled service: a typed client stub and a server skeleton, both
   bound onto the specialized send/receive paths of the envelope message
   modules emitted above. The skeleton validates each request exactly once
   and dispatches the [op] method word through a branchless [Rpc.Table];
   the stub stamps id + method word and sends through the folded writer,
   with declared deadlines defaulted in. *)
let emit_service schema buf (s : Schema.Desc.service) =
  let env = envelope schema s in
  let req_mod = module_name env.env_req.Schema.Desc.msg_name in
  let resp_mod = module_name env.env_resp.Schema.Desc.msg_name in
  let table_size = Schema.Desc.max_method_id s + 1 in
  let methods = s.Schema.Desc.methods in
  Printf.bprintf buf "module %s = struct\n" (service_module_name s);
  Printf.bprintf buf "  let svc = Schema.Desc.service schema %S\n\n"
    s.Schema.Desc.svc_name;
  Buffer.add_string buf
    "  (* Method-id words: the request envelope's [op] field. *)\n";
  Array.iter
    (fun (m : Schema.Desc.method_) ->
      Printf.bprintf buf "  let id_%s = %dL\n"
        (ocaml_name m.Schema.Desc.meth_name)
        m.Schema.Desc.meth_id)
    methods;
  Printf.bprintf buf "\n  let method_count = %d\n\n" (Array.length methods);
  Buffer.add_string buf "  (* Declared per-method deadlines (ms). *)\n";
  Array.iter
    (fun (m : Schema.Desc.method_) ->
      Printf.bprintf buf "  let deadline_ms_%s : int option = %s\n"
        (ocaml_name m.Schema.Desc.meth_name)
        (match m.Schema.Desc.deadline_ms with
        | Some d -> Printf.sprintf "Some %d" d
        | None -> "None"))
    methods;
  Buffer.add_string buf "\n  (* Streamed responses. *)\n";
  Array.iter
    (fun (m : Schema.Desc.method_) ->
      Printf.bprintf buf "  let stream_%s = %b\n"
        (ocaml_name m.Schema.Desc.meth_name)
        m.Schema.Desc.stream)
    methods;
  Buffer.add_string buf
    "\n  (* Envelope field indices (literal — folded from the schema). *)\n";
  Printf.bprintf buf "  let req_op = %d\n" env.e_req_op;
  Printf.bprintf buf "  let req_id = %d\n" env.e_req_id;
  Printf.bprintf buf "  let resp_id = %d\n" env.e_resp_id;
  (match env.e_resp_seq with
  | Some i -> Printf.bprintf buf "  let resp_seq = %d\n" i
  | None -> ());
  Buffer.add_string buf
    "\n\
    \  (* A method handler. [h_reader] serves the zero-copy path: fields\n\
    \     are read in place from the once-validated request frame. [h_dyn]\n\
    \     serves backends that parse into a [Wire.Dyn.t] first. Both fill\n\
    \     the pooled response; unary methods tail-send it, streamed methods\n\
    \     emit chunks through their [emit_*] helper instead. *)\n\
    \  type handler = {\n\
    \    h_stream : bool;\n\
    \    h_reader : src:int -> Wire.Reader.t -> Wire.Dyn.t -> unit;\n\
    \    h_dyn : src:int -> Wire.Dyn.t -> Wire.Dyn.t -> unit;\n\
    \  }\n\n\
    \  (* Unknown or unregistered method words land here: the request is\n\
    \     answered with the bare id-echo response, never dropped. *)\n\
    \  let unhandled =\n\
    \    {\n\
    \      h_stream = false;\n\
    \      h_reader = (fun ~src:_ _ _ -> ());\n\
    \      h_dyn = (fun ~src:_ _ _ -> ());\n\
    \    }\n\n\
    \  type server = {\n\
    \    s_table : handler Rpc.Table.t;\n\
    \    s_reader : Wire.Reader.t;\n\
    \    s_resp : Wire.Dyn.t;\n\
    \    s_send : dst:int -> Wire.Dyn.t -> unit;\n\
    \  }\n\n";
  Printf.bprintf buf
    "  let server ~send () =\n\
    \    {\n\
    \      s_table = Rpc.Table.create ~n:%d ~fallback:unhandled;\n\
    \      s_reader = %s.reader ();\n\
    \      s_resp = Wire.Dyn.create %s.desc;\n\
    \      s_send = send;\n\
    \    }\n\n"
    table_size req_mod resp_mod;
  Array.iter
    (fun (m : Schema.Desc.method_) ->
      let n = ocaml_name m.Schema.Desc.meth_name in
      Printf.bprintf buf
        "  let on_%s ?reader ?dyn s =\n\
        \    Rpc.Table.set s.s_table ~id:%d\n\
        \      {\n\
        \        h_stream = stream_%s;\n\
        \        h_reader =\n\
        \          (match reader with Some f -> f | None -> unhandled.h_reader);\n\
        \        h_dyn = (match dyn with Some f -> f | None -> unhandled.h_dyn);\n\
        \      }\n\n"
        n m.Schema.Desc.meth_id n)
    methods;
  Buffer.add_string buf
    "  (* Method word of a request; [-1] (the fallback row) when absent. *)\n\
    \  let method_of_reader r =\n\
    \    Int64.to_int (Wire.Reader.get_u64_or r req_op ~default:(-1L))\n\n\
    \  let method_of_dyn req =\n\
    \    match Wire.Dyn.get_int req \"op\" with\n\
    \    | Some v -> Int64.to_int v\n\
    \    | None -> -1\n\n";
  Buffer.add_string buf
    "  (* Server skeleton, zero-copy path: validate the frame exactly once\n\
    \     into the pooled in-place reader, echo the caller's id into the\n\
    \     pooled response, dispatch the method word through the branchless\n\
    \     table; unary methods tail-send the response the handler filled. *)\n\
    \  let serve ?cpu s ~src buf =\n\
    \    Wire.Reader.validate ?cpu s.s_reader buf;\n\
    \    Wire.Dyn.clear s.s_resp;\n\
    \    if Wire.Reader.present s.s_reader req_id then\n\
    \      Wire.Dyn.set_int s.s_resp \"id\" (Wire.Reader.get_u64 s.s_reader req_id);\n\
    \    let h = Rpc.Table.dispatch s.s_table (method_of_reader s.s_reader) in\n\
    \    h.h_reader ~src s.s_reader s.s_resp;\n\
    \    if not h.h_stream then s.s_send ~dst:src s.s_resp\n\n\
    \  (* Copy-path twin: identical operation order over a request a\n\
    \     backend already parsed into a [Wire.Dyn.t] (caller keeps\n\
    \     ownership of [req]). *)\n\
    \  let serve_dyn s ~src req =\n\
    \    Wire.Dyn.clear s.s_resp;\n\
    \    (match Wire.Dyn.get_int req \"id\" with\n\
    \    | Some id -> Wire.Dyn.set_int s.s_resp \"id\" id\n\
    \    | None -> ());\n\
    \    let h = Rpc.Table.dispatch s.s_table (method_of_dyn req) in\n\
    \    h.h_dyn ~src req s.s_resp;\n\
    \    if not h.h_stream then s.s_send ~dst:src s.s_resp\n\n";
  Array.iter
    (fun (m : Schema.Desc.method_) ->
      if m.Schema.Desc.stream then
        let n = ocaml_name m.Schema.Desc.meth_name in
        Printf.bprintf buf
          "  (* Stream emission for %s: stamp the chunk's seq word (last\n\
          \     data chunk carries the last bit — no terminator frame) and\n\
          \     send one response frame per chunk; the response is cleared\n\
          \     for the handler to fill the next chunk. *)\n\
          \  let emit_%s s ~dst ~id cur ~last =\n\
          \    Wire.Dyn.set_int s.s_resp \"id\" id;\n\
          \    Wire.Dyn.set_int s.s_resp \"seq\" (Rpc.Stream.next cur ~last);\n\
          \    s.s_send ~dst s.s_resp;\n\
          \    Wire.Dyn.clear s.s_resp\n\n"
          m.Schema.Desc.meth_name n)
    methods;
  Printf.bprintf buf
    "  (* Client call state over this service's response envelope. *)\n\
    \  let client ?config ?engine ?reliab tr =\n\
    \    Rpc.Client.create ?config ?engine ?reliab ~resp:%s.desc tr\n\n"
    resp_mod;
  Array.iter
    (fun (m : Schema.Desc.method_) ->
      let n = ocaml_name m.Schema.Desc.meth_name in
      if m.Schema.Desc.stream then
        Printf.bprintf buf
          "  (* Typed stub for %s (streamed): stamps the call id and method\n\
          \     word into a caller-built request, then sends through the\n\
          \     folded writer — via the retry layer when the client carries\n\
          \     one. Declared deadline defaults in. *)\n\
          \  let call_%s ?cpu ?deadline_ms c ~dst req ~on_chunk ~on_done =\n\
          \    let deadline_ms =\n\
          \      match deadline_ms with Some _ as d -> d | None -> deadline_ms_%s\n\
          \    in\n\
          \    Rpc.Client.call_stream c ?deadline_ms\n\
          \      ~prepare:(fun id ->\n\
          \        %s.set_id req (Int64.of_int id);\n\
          \        %s.set_op req id_%s)\n\
          \      ~send:(fun () ->\n\
          \        %s.send ?cpu (Rpc.Client.config c) (Rpc.Client.transport c)\n\
          \          ~dst req)\n\
          \      ~on_chunk ~on_done ()\n\n"
          m.Schema.Desc.meth_name n n req_mod req_mod n req_mod
      else
        Printf.bprintf buf
          "  (* Typed stub for %s: stamps the call id and method word into a\n\
          \     caller-built request, then sends through the folded writer —\n\
          \     via the retry layer when the client carries one. Declared\n\
          \     deadline defaults in. *)\n\
          \  let call_%s ?cpu ?deadline_ms c ~dst req ~on_reply =\n\
          \    let deadline_ms =\n\
          \      match deadline_ms with Some _ as d -> d | None -> deadline_ms_%s\n\
          \    in\n\
          \    Rpc.Client.call c ?deadline_ms\n\
          \      ~prepare:(fun id ->\n\
          \        %s.set_id req (Int64.of_int id);\n\
          \        %s.set_op req id_%s)\n\
          \      ~send:(fun () ->\n\
          \        %s.send ?cpu (Rpc.Client.config c) (Rpc.Client.transport c)\n\
          \          ~dst req)\n\
          \      ~on_reply ()\n\n"
          m.Schema.Desc.meth_name n n req_mod req_mod n req_mod)
    methods;
  (match env.e_resp_seq with
  | Some _ ->
      Printf.bprintf buf
        "  (* Response delivery: validate the frame once into the client's\n\
        \     pooled reader, then route on the echoed id and seq word. *)\n\
        \  let deliver ?cpu c buf =\n\
        \    let r = Rpc.Client.reader c in\n\
        \    %s.read_folded ?cpu r buf;\n\
        \    let id = Int64.to_int (Wire.Reader.get_u64_or r resp_id ~default:0L) in\n\
        \    let seq_word =\n\
        \      if Wire.Reader.present r resp_seq then\n\
        \        Some (Wire.Reader.get_u64 r resp_seq)\n\
        \      else None\n\
        \    in\n\
        \    Rpc.Client.complete ?seq_word c ~id r\n"
        resp_mod
  | None ->
      Printf.bprintf buf
        "  (* Response delivery: validate the frame once into the client's\n\
        \     pooled reader, then route on the echoed id. *)\n\
        \  let deliver ?cpu c buf =\n\
        \    let r = Rpc.Client.reader c in\n\
        \    %s.read_folded ?cpu r buf;\n\
        \    let id = Int64.to_int (Wire.Reader.get_u64_or r resp_id ~default:0L) in\n\
        \    Rpc.Client.complete c ~id r\n"
        resp_mod);
  Buffer.add_string buf "end\n\n"

let module_source ?(crossover = default_crossover) ~schema_text schema =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "(* Generated by the Cornflakes compiler (Codegen.Emit). DO NOT EDIT. *)\n\n";
  Printf.bprintf buf "let schema = Schema.Parser.parse {schema|%s|schema}\n\n"
    schema_text;
  List.iter (fun m -> emit_message ~crossover buf m) schema.Schema.Desc.messages;
  List.iter (fun s -> emit_service schema buf s) schema.Schema.Desc.services;
  Buffer.contents buf

(* Ownership-IR summary of the generated module: one line per binding,
   declaring the role it plays and the runtime entry point it must call.
   StatCheck's IR pass re-parses the generated .ml against this, so the
   generated code is verified mechanically instead of hand-spec'd — and a
   hand-edited generated file (or a stale sidecar) fails `check`. *)
let ir_message ~crossover buf (m : Schema.Desc.message) =
  let mn = module_name m.Schema.Desc.msg_name in
  let fn name role callee =
    Printf.bprintf buf "fn %s.%s role=%s callee=%s\n" mn name role callee
  in
  fn "desc" "desc" "Schema.Desc.message";
  fn "create" "alloc" "Wire.Dyn.create";
  fn "to_dyn" "accessor" "-";
  fn "of_dyn" "accessor" "Wire.Dyn.desc";
  Array.iter
    (fun (f : Schema.Desc.field) ->
      let n = ocaml_name f.Schema.Desc.field_name in
      match (f.Schema.Desc.ty, f.Schema.Desc.label) with
      | Schema.Desc.Scalar _, Schema.Desc.Repeated ->
          fn ("add_" ^ n) "setter" "Wire.Dyn.append";
          fn n "getter" "Wire.Dyn.get_list"
      | Schema.Desc.Scalar Schema.Desc.Float64, Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Wire.Dyn.set";
          fn n "getter" "Wire.Dyn.get"
      | Schema.Desc.Scalar _, Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Wire.Dyn.set_int";
          fn n "getter" "Wire.Dyn.get_int"
      | (Schema.Desc.Str | Schema.Desc.Bytes), Schema.Desc.Repeated ->
          fn ("add_" ^ n) "setter"
            (dispatch_ctor (payload_dispatch ~crossover f));
          fn ("add_" ^ n ^ "_payload") "setter" "Wire.Dyn.append";
          fn n "getter" "Wire.Dyn.get_list"
      | (Schema.Desc.Str | Schema.Desc.Bytes), Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter"
            (dispatch_ctor (payload_dispatch ~crossover f));
          fn ("set_" ^ n ^ "_payload") "setter" "Wire.Dyn.set";
          fn n "getter" "Wire.Dyn.get_payload"
      | Schema.Desc.Message _, Schema.Desc.Repeated ->
          fn ("add_" ^ n) "setter" "Wire.Dyn.append";
          fn n "getter" "Wire.Dyn.get_list"
      | Schema.Desc.Message _, Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Wire.Dyn.set";
          fn n "getter" "Wire.Dyn.get")
    m.Schema.Desc.fields;
  fn "object_len" "len" "Cornflakes.Format_.object_len";
  fn "deserialize" "deserialize" "Cornflakes.Send.deserialize";
  fn "reader" "alloc" "Wire.Reader.create";
  fn "read_folded" "reader"
    (if Layout.foldable (Array.length m.Schema.Desc.fields) then
       "Wire.Reader.validate_folded"
     else "Wire.Reader.validate");
  fn "write_folded" "writer" "Cornflakes.Format_.write_msg_generic";
  fn "send" "send" "Cornflakes.Send.send_planned";
  fn "release" "release" "Wire.Dyn.release"

let ir_service buf (s : Schema.Desc.service) =
  let mn = service_module_name s in
  let fn name role callee =
    Printf.bprintf buf "fn %s.%s role=%s callee=%s\n" mn name role callee
  in
  fn "svc" "desc" "Schema.Desc.service";
  fn "server" "alloc" "Rpc.Table.create";
  Array.iter
    (fun (m : Schema.Desc.method_) ->
      fn ("on_" ^ ocaml_name m.Schema.Desc.meth_name) "setter" "Rpc.Table.set")
    s.Schema.Desc.methods;
  fn "method_of_reader" "getter" "Wire.Reader.get_u64_or";
  fn "method_of_dyn" "getter" "Wire.Dyn.get_int";
  fn "serve" "reader" "Wire.Reader.validate";
  fn "serve_dyn" "accessor" "Rpc.Table.dispatch";
  Array.iter
    (fun (m : Schema.Desc.method_) ->
      if m.Schema.Desc.stream then
        fn ("emit_" ^ ocaml_name m.Schema.Desc.meth_name) "send"
          "Rpc.Stream.next")
    s.Schema.Desc.methods;
  fn "client" "alloc" "Rpc.Client.create";
  Array.iter
    (fun (m : Schema.Desc.method_) ->
      fn
        ("call_" ^ ocaml_name m.Schema.Desc.meth_name)
        "send"
        (if m.Schema.Desc.stream then "Rpc.Client.call_stream"
         else "Rpc.Client.call"))
    s.Schema.Desc.methods;
  fn "deliver" "reader" "Rpc.Client.complete"

let ir_source ?(crossover = default_crossover) schema =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "# Ownership IR generated by the Cornflakes compiler (Codegen.Emit). DO NOT EDIT.\n";
  List.iter
    (fun m ->
      Buffer.add_char buf '\n';
      ir_message ~crossover buf m)
    schema.Schema.Desc.messages;
  List.iter
    (fun s ->
      Buffer.add_char buf '\n';
      ir_service buf s)
    schema.Schema.Desc.services;
  Buffer.contents buf
