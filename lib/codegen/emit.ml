let keywords =
  [
    "and"; "as"; "assert"; "begin"; "class"; "constraint"; "do"; "done";
    "downto"; "else"; "end"; "exception"; "external"; "false"; "for"; "fun";
    "function"; "functor"; "if"; "in"; "include"; "inherit"; "initializer";
    "lazy"; "let"; "match"; "method"; "module"; "mutable"; "new"; "object";
    "of"; "open"; "or"; "private"; "rec"; "sig"; "struct"; "then"; "to";
    "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with";
  ]

let ocaml_name s =
  let b = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | 'a' .. 'z' | '0' .. '9' | '_' ->
          if i = 0 && c >= '0' && c <= '9' then Buffer.add_char b 'f';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  let name = Buffer.contents b in
  let name = if name = "" then "field" else name in
  if List.mem name keywords then name ^ "_" else name

let module_name s = String.capitalize_ascii (ocaml_name s)

let emit_scalar_field buf (f : Schema.Desc.field) scalar =
  let n = ocaml_name f.Schema.Desc.field_name in
  let fname = f.Schema.Desc.field_name in
  match (f.Schema.Desc.label, scalar) with
  | Schema.Desc.Repeated, _ ->
      Printf.bprintf buf
        "  let add_%s t v = Wire.Dyn.append t.msg %S (Wire.Dyn.Int v)\n\n" n
        fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    List.filter_map\n\
        \      (function Wire.Dyn.Int v -> Some v | _ -> None)\n\
        \      (Wire.Dyn.get_list t.msg %S)\n\n"
        n fname
  | Schema.Desc.Singular, Schema.Desc.Float64 ->
      Printf.bprintf buf
        "  let set_%s t v = Wire.Dyn.set t.msg %S (Wire.Dyn.Float v)\n\n" n
        fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    match Wire.Dyn.get t.msg %S with\n\
        \    | Some (Wire.Dyn.Float v) -> Some v\n\
        \    | _ -> None\n\n"
        n fname
  | Schema.Desc.Singular, _ ->
      Printf.bprintf buf "  let set_%s t v = Wire.Dyn.set_int t.msg %S v\n\n" n
        fname;
      Printf.bprintf buf "  let %s t = Wire.Dyn.get_int t.msg %S\n\n" n fname

let emit_payload_field buf (f : Schema.Desc.field) =
  let n = ocaml_name f.Schema.Desc.field_name in
  let fname = f.Schema.Desc.field_name in
  match f.Schema.Desc.label with
  | Schema.Desc.Repeated ->
      Printf.bprintf buf
        "  (* [add_%s] accepts any bytes; CFPtr decides copy vs zero-copy. *)\n\
        \  let add_%s ?cpu config ep t view =\n\
        \    Wire.Dyn.append t.msg %S\n\
        \      (Wire.Dyn.Payload (Cornflakes.Cf_ptr.make ?cpu config ep view))\n\n"
        n n fname;
      Printf.bprintf buf
        "  let add_%s_payload t p =\n\
        \    Wire.Dyn.append t.msg %S (Wire.Dyn.Payload p)\n\n"
        n fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    List.filter_map\n\
        \      (function Wire.Dyn.Payload p -> Some p | _ -> None)\n\
        \      (Wire.Dyn.get_list t.msg %S)\n\n"
        n fname
  | Schema.Desc.Singular ->
      Printf.bprintf buf
        "  let set_%s ?cpu config ep t view =\n\
        \    Wire.Dyn.set t.msg %S\n\
        \      (Wire.Dyn.Payload (Cornflakes.Cf_ptr.make ?cpu config ep view))\n\n"
        n fname;
      Printf.bprintf buf
        "  let set_%s_payload t p = Wire.Dyn.set t.msg %S (Wire.Dyn.Payload p)\n\n"
        n fname;
      Printf.bprintf buf "  let %s t = Wire.Dyn.get_payload t.msg %S\n\n" n fname

let emit_message_field buf (f : Schema.Desc.field) =
  let n = ocaml_name f.Schema.Desc.field_name in
  let fname = f.Schema.Desc.field_name in
  match f.Schema.Desc.label with
  | Schema.Desc.Repeated ->
      Printf.bprintf buf
        "  let add_%s t nested = Wire.Dyn.append t.msg %S (Wire.Dyn.Nested nested)\n\n"
        n fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    List.filter_map\n\
        \      (function Wire.Dyn.Nested m -> Some m | _ -> None)\n\
        \      (Wire.Dyn.get_list t.msg %S)\n\n"
        n fname
  | Schema.Desc.Singular ->
      Printf.bprintf buf
        "  let set_%s t nested = Wire.Dyn.set t.msg %S (Wire.Dyn.Nested nested)\n\n"
        n fname;
      Printf.bprintf buf
        "  let %s t =\n\
        \    match Wire.Dyn.get t.msg %S with\n\
        \    | Some (Wire.Dyn.Nested m) -> Some m\n\
        \    | _ -> None\n\n"
        n fname

let emit_message buf (m : Schema.Desc.message) =
  Printf.bprintf buf "module %s = struct\n" (module_name m.Schema.Desc.msg_name);
  Printf.bprintf buf "  let desc = Schema.Desc.message schema %S\n\n"
    m.Schema.Desc.msg_name;
  Buffer.add_string buf "  type t = { msg : Wire.Dyn.t }\n\n";
  Buffer.add_string buf "  let create () = { msg = Wire.Dyn.create desc }\n\n";
  Buffer.add_string buf "  let to_dyn t = t.msg\n\n";
  Buffer.add_string buf
    "  let of_dyn msg =\n\
    \    if (Wire.Dyn.desc msg).Schema.Desc.msg_name <> desc.Schema.Desc.msg_name\n\
    \    then invalid_arg \"of_dyn: wrong message type\";\n\
    \    { msg }\n\n";
  Array.iter
    (fun (f : Schema.Desc.field) ->
      match f.Schema.Desc.ty with
      | Schema.Desc.Scalar s -> emit_scalar_field buf f s
      | Schema.Desc.Str | Schema.Desc.Bytes -> emit_payload_field buf f
      | Schema.Desc.Message _ -> emit_message_field buf f)
    m.Schema.Desc.fields;
  Buffer.add_string buf
    "  let object_len t = Cornflakes.Format_.object_len t.msg\n\n";
  Buffer.add_string buf
    "  let deserialize buf =\n\
    \    { msg = Cornflakes.Send.deserialize schema desc buf }\n\n";
  Buffer.add_string buf
    "  (* Combined serialize-and-send: no separate serialize step. The\n\
    \     transport decides framing and headroom, so the same accessor\n\
    \     sends over UDP datagrams or TCP records. *)\n\
    \  let send ?cpu config tr ~dst t =\n\
    \    Cornflakes.Send.send_via ?cpu config tr ~dst t.msg\n\n";
  Buffer.add_string buf
    "  let release ?cpu t = Wire.Dyn.release ?cpu t.msg\nend\n\n"

let module_source ~schema_text schema =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "(* Generated by the Cornflakes compiler (Codegen.Emit). DO NOT EDIT. *)\n\n";
  Printf.bprintf buf "let schema = Schema.Parser.parse {schema|%s|schema}\n\n"
    schema_text;
  List.iter (fun m -> emit_message buf m) schema.Schema.Desc.messages;
  Buffer.contents buf

(* Ownership-IR summary of the generated module: one line per binding,
   declaring the role it plays and the runtime entry point it must call.
   StatCheck's IR pass re-parses the generated .ml against this, so the
   generated code is verified mechanically instead of hand-spec'd — and a
   hand-edited generated file (or a stale sidecar) fails `check`. *)
let ir_message buf (m : Schema.Desc.message) =
  let mn = module_name m.Schema.Desc.msg_name in
  let fn name role callee =
    Printf.bprintf buf "fn %s.%s role=%s callee=%s\n" mn name role callee
  in
  fn "desc" "desc" "Schema.Desc.message";
  fn "create" "alloc" "Wire.Dyn.create";
  fn "to_dyn" "accessor" "-";
  fn "of_dyn" "accessor" "Wire.Dyn.desc";
  Array.iter
    (fun (f : Schema.Desc.field) ->
      let n = ocaml_name f.Schema.Desc.field_name in
      match (f.Schema.Desc.ty, f.Schema.Desc.label) with
      | Schema.Desc.Scalar _, Schema.Desc.Repeated ->
          fn ("add_" ^ n) "setter" "Wire.Dyn.append";
          fn n "getter" "Wire.Dyn.get_list"
      | Schema.Desc.Scalar Schema.Desc.Float64, Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Wire.Dyn.set";
          fn n "getter" "Wire.Dyn.get"
      | Schema.Desc.Scalar _, Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Wire.Dyn.set_int";
          fn n "getter" "Wire.Dyn.get_int"
      | (Schema.Desc.Str | Schema.Desc.Bytes), Schema.Desc.Repeated ->
          fn ("add_" ^ n) "setter" "Cornflakes.Cf_ptr.make";
          fn ("add_" ^ n ^ "_payload") "setter" "Wire.Dyn.append";
          fn n "getter" "Wire.Dyn.get_list"
      | (Schema.Desc.Str | Schema.Desc.Bytes), Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Cornflakes.Cf_ptr.make";
          fn ("set_" ^ n ^ "_payload") "setter" "Wire.Dyn.set";
          fn n "getter" "Wire.Dyn.get_payload"
      | Schema.Desc.Message _, Schema.Desc.Repeated ->
          fn ("add_" ^ n) "setter" "Wire.Dyn.append";
          fn n "getter" "Wire.Dyn.get_list"
      | Schema.Desc.Message _, Schema.Desc.Singular ->
          fn ("set_" ^ n) "setter" "Wire.Dyn.set";
          fn n "getter" "Wire.Dyn.get")
    m.Schema.Desc.fields;
  fn "object_len" "len" "Cornflakes.Format_.object_len";
  fn "deserialize" "deserialize" "Cornflakes.Send.deserialize";
  fn "send" "send" "Cornflakes.Send.send_via";
  fn "release" "release" "Wire.Dyn.release"

let ir_source schema =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "# Ownership IR generated by the Cornflakes compiler (Codegen.Emit). DO NOT EDIT.\n";
  List.iter
    (fun m ->
      Buffer.add_char buf '\n';
      ir_message buf m)
    schema.Schema.Desc.messages;
  Buffer.contents buf
