(** Constant-folded wire-layout arithmetic for the specializing emitter.

    Mirrors the runtime layout in [Cornflakes.Format_] (bitmap word count,
    slot base, per-field slot offsets); the emitter evaluates these at
    codegen time so generated writers store at literal offsets. Kept in
    lockstep with the runtime by the golden and QCheck equivalence tests. *)

val bitmap_words : int -> int

(** Byte offset of the first info slot ([4 + 4 * bitmap_words n]). *)
val slot_base : int -> int

(** [slot nfields i] — byte offset of field [i]'s info slot with all fields
    present. *)
val slot : int -> int -> int

(** The bitmap value with every field present (foldable messages only). *)
val all_present_bitmap : int -> int

(** Header block length with every field present. *)
val all_present_header_len : int -> int

(** Can this field count be compiled to a folded writer? (1–32 fields:
    single-word bitmap.) *)
val foldable : int -> bool
