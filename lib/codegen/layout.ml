(* Constant-folded wire-layout arithmetic, shared by the emitter's folded
   writers. These mirror the runtime's Format_ layout (header = u32 bitmap
   word count + bitmap words + one 8-byte info slot per present field, in
   schema order) — the emitter folds them into literal offsets at codegen
   time, and the golden/QCheck equivalence tests hold the two in lockstep. *)

let bitmap_words nfields = (nfields + 31) / 32

(* Byte offset of the first info slot (after the count word + bitmap). *)
let slot_base nfields = 4 + (4 * bitmap_words nfields)

(* Byte offset of field [i]'s info slot when every field is present. *)
let slot nfields i = slot_base nfields + (8 * i)

(* The all-present bitmap; only meaningful for [foldable] messages. *)
let all_present_bitmap nfields = (1 lsl nfields) - 1

let all_present_header_len nfields = slot_base nfields + (8 * nfields)

(* A message layout is folded only when the bitmap fits one word (and there
   is at least one field): a single literal bitmap store, literal slot
   offsets, one hoisted bounds check. Wider or empty messages keep the
   generic writer. *)
let foldable nfields = nfields >= 1 && nfields <= 32
