(** The Cornflakes compiler: emits OCaml accessor modules from a schema.

    This is the analogue of the paper's code-generation step (§3, Listing 1):
    from a message schema it produces, per message, a typed wrapper over the
    dynamic-message runtime with a constructor, setters, getters, repeated-
    field appenders, [deserialize], and a combined [send] (serialize-and-
    send). The generated source depends only on the public [schema], [wire],
    [mem] and [cornflakes] libraries; [examples/] contains a checked-in
    instance kept in sync by a golden test. *)

(** [module_source ~schema_text schema] is the complete [.ml] source. *)
val module_source : schema_text:string -> Schema.Desc.t -> string

(** [ir_source schema] is the ownership-IR sidecar for the generated module:
    one [fn <Rel.Path> role=<role> callee=<Path|->] line per emitted
    binding. StatCheck's IR pass re-parses the generated [.ml] against this
    summary, so generated accessors are verified mechanically instead of
    hand-spec'd. *)
val ir_source : Schema.Desc.t -> string

(** [ocaml_name s] — a valid lower-case OCaml identifier for a field name. *)
val ocaml_name : string -> string
