(** The Cornflakes compiler: emits OCaml accessor modules from a schema.

    This is the analogue of the paper's code-generation step (§3, Listing 1):
    from a message schema it produces, per message, a typed wrapper over the
    dynamic-message runtime with a constructor, setters, getters, repeated-
    field appenders, [deserialize], a specialized [write_folded] serializer
    (constant-folded layout: literal bitmap + slot offsets behind one hoisted
    bounds check, falling back to the generic writer off the all-present
    path), and a combined [send] (serialize-and-send through the folded
    writer). Payload setters whose [max_size]/[min_size] bounds prove the
    copy/zero-copy verdict against [crossover] compile to the corresponding
    [Cf_ptr] arm directly; unbounded fields keep the size-class-table
    dispatch. The generated source depends only on the public [schema],
    [wire], [mem] and [cornflakes] libraries; [examples/] contains a
    checked-in instance kept in sync by a golden test. *)

(** [module_source ?crossover ~schema_text schema] is the complete [.ml]
    source. [crossover] (default 512 B, the runtime default threshold)
    drives the folded copy/zc dispatch of bounded payload fields. *)
val module_source :
  ?crossover:int -> schema_text:string -> Schema.Desc.t -> string

(** [ir_source ?crossover schema] is the ownership-IR sidecar for the
    generated module: one [fn <Rel.Path> role=<role> callee=<Path|->] line
    per emitted binding. StatCheck's IR pass re-parses the generated [.ml]
    against this summary, so generated accessors are verified mechanically
    instead of hand-spec'd. Must use the same [crossover] as
    {!module_source}: the folded setter callees depend on it. *)
val ir_source : ?crossover:int -> Schema.Desc.t -> string

(** [ocaml_name s] — a valid lower-case OCaml identifier for a field name. *)
val ocaml_name : string -> string
