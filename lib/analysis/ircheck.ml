(* IR verification: codegen emits (alongside each generated module) an
   ownership-IR summary — one line per generated binding:

     fn <Rel.Path> role=<role> callee=<Dotted.Path|->

   e.g.

     fn Get_req.send role=send callee=Cornflakes.Send.send_via
     fn Get_req.release role=release callee=Wire.Dyn.release

   The checker re-parses the generated .ml and verifies every IR entry
   mechanically: the binding exists (SC-IR-MISSING otherwise) and its body
   really calls the declared callee (SC-IR-CALLEE otherwise). This is how
   kv_msgs.ml — too large and too regular to hand-spec — stays verified:
   the generator declares its own ownership contract and StatCheck holds it
   to it. A stale sidecar (edited generated code, unedited IR) fails the
   same way. *)

type entry = { e_path : string; e_role : string; e_callee : string list option }

exception Parse_error of string

let parse_line lineno line =
  match
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | [ "fn"; path; role; callee ] ->
      let strip ~prefix s =
        let lp = String.length prefix in
        if String.length s > lp && String.sub s 0 lp = prefix then
          Some (String.sub s lp (String.length s - lp))
        else None
      in
      let role =
        match strip ~prefix:"role=" role with
        | Some r -> r
        | None ->
            raise
              (Parse_error (Printf.sprintf "line %d: expected role=..." lineno))
      in
      let callee =
        match strip ~prefix:"callee=" callee with
        | Some "-" -> None
        | Some c -> Some (String.split_on_char '.' c)
        | None ->
            raise
              (Parse_error
                 (Printf.sprintf "line %d: expected callee=..." lineno))
      in
      Some { e_path = path; e_role = role; e_callee = callee }
  | tok :: _ ->
      raise
        (Parse_error (Printf.sprintf "line %d: unknown IR directive %S" lineno tok))

let parse text =
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match parse_line (i + 1) line with
      | Some e -> entries := e :: !entries
      | None -> ())
    (String.split_on_char '\n' text);
  List.rev !entries

let load_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  try parse text
  with Parse_error e -> raise (Parse_error (Printf.sprintf "%s: %s" path e))

(* Does [body] (or any nested expression) call or mention [callee]? Matched
   with the full component count of the shorter path so [Send.send_via]
   matches [Cornflakes.Send.send_via] and vice versa. *)
let body_mentions (body : Parsetree.expression) callee =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match Loader.head_path e with
          | Some path when Spec.path_matches ~min_match:2 callee path ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body;
  !found

let check_source ~ir_path (entries : entry list) (src : Loader.source) =
  let out = ref [] in
  List.iter
    (fun e ->
      match
        List.find_opt
          (fun (fn : Loader.func) -> fn.Loader.fn_local = e.e_path)
          src.Loader.src_funcs
      with
      | None ->
          out :=
            Finding.make ~id:"SC-IR-MISSING" ~severity:Finding.Error ~pass:"ir"
              ~site:(src.Loader.src_module ^ "." ^ e.e_path)
              ~file:src.Loader.src_path ~line:1
              "IR (%s) declares %s (role %s) but the generated module does \
               not define it — stale sidecar or hand-edited generated code"
              ir_path e.e_path e.e_role
            :: !out
      | Some fn -> (
          match e.e_callee with
          | None -> ()
          | Some callee ->
              if not (body_mentions fn.Loader.fn_expr callee) then
                out :=
                  Finding.make ~id:"SC-IR-CALLEE" ~severity:Finding.Error
                    ~pass:"ir"
                    ~site:(src.Loader.src_module ^ "." ^ e.e_path)
                    ~file:src.Loader.src_path ~line:fn.Loader.fn_line
                    "IR declares %s (role %s) calls %s, but its body does \
                     not — the ownership contract the generator promised no \
                     longer holds"
                    e.e_path e.e_role (String.concat "." callee)
                  :: !out))
    entries;
  List.rev !out
