(* StatCheck driver: discover sources, load specs, run the three passes
   (plus IR verification where a generated module ships a sidecar), and
   reconcile against the committed baseline.

   Baseline discipline (mirrors the RefSan CI gate): a finding whose
   fingerprint is in [analysis/baseline.json] is tolerated but listed; a
   fresh finding fails; a baseline entry that no longer fires is *also* an
   error — fixed findings must be removed from the baseline so it only ever
   shrinks. *)

let default_spec_dir = "analysis/specs"

let default_baseline = "analysis/baseline.json"

let default_roots = [ "lib"; "bin"; "examples"; "bench" ]

(* --- discovery --------------------------------------------------------- *)

let rec discover_dir acc dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.fold_left
       (fun acc entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then
           if entry = "_build" || entry.[0] = '.' then acc
           else discover_dir acc path
         else if Filename.check_suffix entry ".ml" then path :: acc
         else acc)
       acc

let discover_files ~roots =
  List.fold_left
    (fun acc root ->
      if Sys.file_exists root && Sys.is_directory root then
        discover_dir acc root
      else if Sys.file_exists root then root :: acc
      else acc)
    [] roots
  |> List.sort compare

(* --- spec loading ------------------------------------------------------ *)

let load_specs dir =
  if Sys.file_exists dir && Sys.is_directory dir then Spec.load_dir dir
  else Spec.empty ()

(* --- running the passes ------------------------------------------------ *)

let ir_sidecar path = Filename.remove_extension path ^ ".ir"

let run_file ~spec path =
  match Loader.load path with
  | Error f -> [ f ]
  | Ok src ->
      let ir_findings =
        let ir = ir_sidecar path in
        if Sys.file_exists ir then
          try Ircheck.check_source ~ir_path:ir (Ircheck.load_file ir) src
          with Ircheck.Parse_error e ->
            [
              Finding.make ~id:"SC-PARSE" ~severity:Finding.Error ~pass:"ir"
                ~site:src.Loader.src_module ~file:ir ~line:1
                "cannot parse IR sidecar: %s" e;
            ]
        else []
      in
      Lifecycle.check_source ~spec src
      @ Races.check_source ~spec src
      @ Allocfree.check_source ~spec src
      @ ir_findings

let run_files ~spec paths =
  List.concat_map (run_file ~spec) paths |> List.sort Finding.compare_for_report

(* --- baseline ---------------------------------------------------------- *)

(* The baseline is machine-written JSON of shape
   [{ "fingerprints": [ "ID|site|file", ... ] }]. Fingerprints contain no
   quotes or backslashes, so extracting the string literals inside the
   array is a faithful parse. *)
let baseline_load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match String.index_opt text '[' with
    | None -> []
    | Some start ->
        let stop =
          match String.index_from_opt text start ']' with
          | Some i -> i
          | None -> String.length text
        in
        let acc = ref [] in
        let i = ref start in
        while !i < stop do
          (match String.index_from_opt text !i '"' with
          | Some q1 when q1 < stop -> (
              match String.index_from_opt text (q1 + 1) '"' with
              | Some q2 when q2 <= stop ->
                  acc := String.sub text (q1 + 1) (q2 - q1 - 1) :: !acc;
                  i := q2 + 1
              | _ -> i := stop)
          | _ -> i := stop)
        done;
        List.rev !acc
  end

let baseline_save path findings =
  let fps =
    List.map Finding.fingerprint findings
    |> List.sort_uniq compare
  in
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"fingerprints\": [";
  List.iteri
    (fun i fp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    \"";
      Buffer.add_string b fp;
      Buffer.add_char b '"')
    fps;
  if fps <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  let oc = open_out_bin path in
  output_string oc (Buffer.contents b);
  close_out oc

type reconciled = {
  all : Finding.t list;  (** every finding, report order *)
  fresh : Finding.t list;  (** findings not covered by the baseline *)
  tolerated : Finding.t list;  (** findings the baseline covers *)
  stale : string list;  (** baseline fingerprints that no longer fire *)
}

let reconcile ~baseline findings =
  let fired = List.map Finding.fingerprint findings in
  let fresh, tolerated =
    List.partition
      (fun f -> not (List.mem (Finding.fingerprint f) baseline))
      findings
  in
  let stale =
    List.filter (fun fp -> not (List.mem fp fired)) baseline
    |> List.sort_uniq compare
  in
  { all = findings; fresh; tolerated; stale }

(* --- reporting --------------------------------------------------------- *)

let print_report ?(out = stdout) r =
  let pr fmt = Printf.fprintf out fmt in
  List.iter (fun f -> pr "%s\n" (Finding.to_string f)) r.fresh;
  List.iter
    (fun f -> pr "baselined %s\n" (Finding.to_string f))
    r.tolerated;
  List.iter
    (fun fp ->
      pr
        "stale   BASELINE         %s  no longer fires — remove it from the \
         baseline\n"
        fp)
    r.stale;
  let fresh_errors = List.length (Finding.errors r.fresh) in
  let fresh_warnings = List.length r.fresh - fresh_errors in
  pr "statcheck: %d finding%s (%d error%s, %d warning%s), %d baselined, %d \
      stale baseline entr%s\n"
    (List.length r.fresh)
    (if List.length r.fresh = 1 then "" else "s")
    fresh_errors
    (if fresh_errors = 1 then "" else "s")
    fresh_warnings
    (if fresh_warnings = 1 then "" else "s")
    (List.length r.tolerated)
    (List.length r.stale)
    (if List.length r.stale = 1 then "y" else "ies");
  ()

let passed r = Finding.errors r.fresh = [] && r.stale = []
