(* Source loading for StatCheck: parse one .ml file with the compiler's own
   parser (compiler-libs — no new dependencies, and exactly the grammar the
   build accepts) and flatten its structure into a list of named functions,
   one per value binding, with nested-module paths spelled the way RefSan
   site labels are ("Pinned.Buf.alloc"). *)

type func = {
  fn_path : string;  (** e.g. [Endpoint.send_inline_zc] (file module included) *)
  fn_local : string;  (** path without the file-module prefix, e.g. [Buf.alloc] *)
  fn_expr : Parsetree.expression;  (** the binding's right-hand side *)
  fn_attrs : Parsetree.attributes;
  fn_line : int;
}

type source = {
  src_path : string;  (** path as given (used in findings) *)
  src_module : string;  (** capitalized basename *)
  src_structure : Parsetree.structure;
  src_funcs : func list;
}

let module_of_path path =
  String.capitalize_ascii Filename.(remove_extension (basename path))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let line_of_loc (loc : Location.t) = loc.loc_start.pos_lnum

(* Name of a binding pattern: a simple variable, a variable under a type
   constraint, or "_" for unit/wildcard bindings (still analyzed — races in
   top-level initialization code matter too). *)
let rec pattern_name (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | Ppat_constraint (p, _) -> pattern_name p
  | _ -> "_"

let functions_of_structure ~file_module (str : Parsetree.structure) =
  let acc = ref [] in
  let rec walk_structure prefix items =
    List.iter (fun item -> walk_item prefix item) items
  and walk_item prefix (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let name = pattern_name vb.pvb_pat in
            let local =
              match prefix with
              | [] -> name
              | p -> String.concat "." p ^ "." ^ name
            in
            acc :=
              {
                fn_path = file_module ^ "." ^ local;
                fn_local = local;
                fn_expr = vb.pvb_expr;
                fn_attrs = vb.pvb_attributes;
                fn_line = line_of_loc vb.pvb_loc;
              }
              :: !acc)
          vbs
    | Pstr_module mb -> walk_module prefix mb
    | Pstr_recmodule mbs -> List.iter (walk_module prefix) mbs
    | _ -> ()
  and walk_module prefix (mb : Parsetree.module_binding) =
    let name = match mb.pmb_name.txt with Some n -> n | None -> "_" in
    walk_module_expr (prefix @ [ name ]) mb.pmb_expr
  and walk_module_expr prefix (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure str -> walk_structure prefix str
    | Pmod_constraint (me, _) -> walk_module_expr prefix me
    | Pmod_functor (_, me) -> walk_module_expr prefix me
    | _ -> ()
  in
  walk_structure [] str;
  List.rev !acc

let load path =
  let text = read_file path in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | str ->
      let file_module = module_of_path path in
      Ok
        {
          src_path = path;
          src_module = file_module;
          src_structure = str;
          src_funcs = functions_of_structure ~file_module str;
        }
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error e -> line_of_loc (Syntaxerr.location_of_error e)
        | _ -> lexbuf.lex_curr_p.pos_lnum
      in
      Error
        (Finding.make ~id:"SC-PARSE" ~severity:Finding.Error ~pass:"parse"
           ~site:(module_of_path path) ~file:path ~line "cannot parse: %s"
           (Printexc.to_string exn))

(* --- shared parsetree helpers used by the passes ----------------------- *)

(* Dotted components of an applied identifier ([Lapply] never names a value
   in this codebase; fold it to its head so matching just fails). *)
let rec longident_components (li : Longident.t) =
  match li with
  | Lident s -> [ s ]
  | Ldot (l, s) -> longident_components l @ [ s ]
  | Lapply (l, _) -> longident_components l

(* Head path of an expression in call position: [Mem.Pinned.Buf.alloc] or a
   record-field transport hook like [tr.Net.Transport.tr_send_inline_zc]
   (the field's qualified name is what the spec matches). *)
let rec head_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (longident_components txt)
  | Pexp_field (_, { txt; _ }) -> Some (longident_components txt)
  | Pexp_constraint (e, _) -> head_path e
  | _ -> None

(* The positional-or-labelled subject argument of an application, per the
   spec entry. Positions count only unlabelled arguments. *)
let subject_arg (subject : Spec.subject)
    (args : (Asttypes.arg_label * Parsetree.expression) list) =
  match subject with
  | Spec.Pos n ->
      let rec go i = function
        | [] -> None
        | (Asttypes.Nolabel, e) :: rest ->
            if i = n then Some e else go (i + 1) rest
        | _ :: rest -> go i rest
      in
      go 0 args
  | Spec.Label l ->
      List.find_map
        (function
          | (Asttypes.Labelled l' | Asttypes.Optional l'), e when l' = l ->
              Some e
          | _ -> None)
        args

(* A bare variable name, looking through type constraints. *)
let rec ident_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident s; _ } -> Some s
  | Pexp_constraint (e, _) -> ident_name e
  | _ -> None

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs
