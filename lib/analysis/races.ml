(* Domain-race pass: scan every closure handed to a spec'd parallel entry
   point (Par.Pool.map / map_list, Experiments.Util.par_map) for shared
   mutable state. A parallel job must own everything it mutates: PR 4's
   exp_tab2 bug — one CDN workload value, with an internal sequential
   cursor, captured by every backend's job — is exactly the shape this
   pass rejects.

   Findings:
   - SC-PAR-CAPTURE  closure captures a binding known to be (or to contain)
                     mutable state: a [ref], an array/bytes/hashtable, or
                     the result of a spec'd [stateful] constructor, or reads
                     module-level mutable state
   - SC-PAR-MUT      closure assigns through a captured name
                     ([:=], [<-], [incr]/[decr]) regardless of how it was
                     bound

   Escapes: [safe <Path>] (e.g. Atomic) and
   [allow_capture <Module.func> <var>] spec directives. *)

type mut_kind =
  | Mut_ref
  | Mut_array
  | Mut_bytes
  | Mut_hashtbl
  | Mut_buffer
  | Mut_stateful of string  (** constructor path, e.g. [Workload.Cdn.make] *)

let mut_kind_to_string = function
  | Mut_ref -> "a ref cell"
  | Mut_array -> "a mutable array"
  | Mut_bytes -> "mutable bytes"
  | Mut_hashtbl -> "a hash table"
  | Mut_buffer -> "a Buffer.t"
  | Mut_stateful p ->
      Printf.sprintf "internally-mutable state (built by %s)" p

(* Classify a binding's right-hand side as known-mutable. *)
let rec classify spec (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match Loader.head_path fn with
      | None -> None
      | Some path -> (
          if Spec.is_safe spec path then None
          else if Spec.is_stateful spec path then
            Some (Mut_stateful (String.concat "." path))
          else
            match path with
            | [ "ref" ] -> Some Mut_ref
            | [ "Array"; ("make" | "init" | "create_float" | "copy" | "of_list" | "append" | "concat") ]
              ->
                Some Mut_array
            | [ "Bytes"; ("create" | "make" | "init" | "copy" | "of_string") ]
              ->
                Some Mut_bytes
            | [ "Hashtbl"; "create" ] -> Some Mut_hashtbl
            | [ "Buffer"; "create" ] -> Some Mut_buffer
            | _ -> None))
  | Pexp_array _ -> Some Mut_array
  | Pexp_constraint (e, _) -> classify spec e
  | _ -> None

(* All simple let-bound names in scope on the way down to a parallel call,
   with classification and binding line. *)
type binding = { b_kind : mut_kind; b_line : int }

type ctx = {
  spec : Spec.t;
  file : string;
  globals : (string * binding) list;  (** module-level mutable bindings *)
  out : Finding.t list ref;
}

let report ctx ~id ~site ~line fmt =
  Printf.ksprintf
    (fun message ->
      let f =
        Finding.make ~id ~severity:Finding.Error ~pass:"races" ~site
          ~file:ctx.file ~line "%s" message
      in
      if
        not
          (List.exists
             (fun (g : Finding.t) ->
               g.Finding.id = id && g.Finding.line = line
               && g.Finding.message = message)
             !(ctx.out))
      then ctx.out := f :: !(ctx.out))
    fmt

(* Names bound by a pattern (closure params, lets inside the closure). *)
let pattern_names (p : Parsetree.pattern) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it p;
  !acc

(* Scan a parallel-job closure body. [bound] are names defined inside the
   closure (params and local lets, accumulated on the way down); anything
   else is captured. *)
let scan_closure ctx ~site ~scope (body : Parsetree.expression) =
  let reported_capture = Hashtbl.create 8 in
  let allowed var =
    Spec.is_capture_allowed ctx.spec ~func:site ~var
    ||
    (* site is file-qualified; the spec may use the local name *)
    match String.index_opt site '.' with
    | Some i ->
        Spec.is_capture_allowed ctx.spec
          ~func:(String.sub site (i + 1) (String.length site - i - 1))
          ~var
    | None -> false
  in
  let capture ~line var kind =
    if (not (Hashtbl.mem reported_capture var)) && not (allowed var) then begin
      Hashtbl.add reported_capture var ();
      report ctx ~id:"SC-PAR-CAPTURE" ~site ~line
        "parallel job closure captures '%s' — %s shared by every job; give \
         each job its own instance (or add `allow_capture %s %s` to the \
         spec after review)"
        var
        (mut_kind_to_string kind)
        site var
    end
  in
  let mutate ~line var what =
    if not (allowed var) then
      report ctx ~id:"SC-PAR-MUT" ~site ~line
        "parallel job closure mutates captured '%s' via %s — concurrent \
         jobs race on it"
        var what
  in
  let rec walk bound (e : Parsetree.expression) =
    let is_captured n = not (List.mem n bound) in
    let line = e.pexp_loc.loc_start.pos_lnum in
    match e.pexp_desc with
    | Pexp_ident { txt = Lident n; _ } when is_captured n -> (
        match List.assoc_opt n scope with
        | Some b -> capture ~line n b.b_kind
        | None -> (
            match List.assoc_opt n ctx.globals with
            | Some b ->
                capture ~line n b.b_kind
            | None -> ()))
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        let path = Loader.longident_components txt in
        (match (path, args) with
        | [ ":=" ], (_, lhs) :: _ -> (
            match Loader.ident_name lhs with
            | Some n when is_captured n -> mutate ~line n ":="
            | _ -> ())
        | [ ("incr" | "decr") ], [ (_, arg) ] -> (
            match Loader.ident_name arg with
            | Some n when is_captured n ->
                mutate ~line n (List.hd path)
            | _ -> ())
        | ( [ ("Array" | "Bytes" | "Hashtbl" | "Buffer");
              ( "set" | "unsafe_set" | "fill" | "blit" | "replace" | "add"
              | "remove" | "reset" | "clear" | "add_string" | "add_char" ) ],
            (_, target) :: _ ) -> (
            match Loader.ident_name target with
            | Some n when is_captured n ->
                mutate ~line n (String.concat "." path)
            | _ -> ())
        | _ -> ());
        List.iter (fun (_, a) -> walk bound a) args)
    | Pexp_setfield (lhs, { txt; _ }, rhs) ->
        (match Loader.ident_name lhs with
        | Some n when is_captured n ->
            mutate ~line n
              (Printf.sprintf "field assignment %s.%s <- ..." n
                 (String.concat "." (Loader.longident_components txt)))
        | _ -> walk bound lhs);
        walk bound rhs
    | Pexp_let (_, vbs, body) ->
        List.iter (fun (vb : Parsetree.value_binding) -> walk bound vb.pvb_expr) vbs;
        let bound =
          List.concat_map
            (fun (vb : Parsetree.value_binding) -> pattern_names vb.pvb_pat)
            vbs
          @ bound
        in
        walk bound body
    | Pexp_fun (_, default, pat, body) ->
        (match default with Some d -> walk bound d | None -> ());
        walk (pattern_names pat @ bound) body
    | Pexp_function cases | Pexp_match (_, cases) | Pexp_try (_, cases) ->
        (match e.pexp_desc with
        | Pexp_match (scrut, _) | Pexp_try (scrut, _) -> walk bound scrut
        | _ -> ());
        List.iter
          (fun (c : Parsetree.case) ->
            let bound = pattern_names c.pc_lhs @ bound in
            (match c.pc_guard with Some g -> walk bound g | None -> ());
            walk bound c.pc_rhs)
          cases
    | Pexp_for (pat, lo, hi, _, body) ->
        walk bound lo;
        walk bound hi;
        walk (pattern_names pat @ bound) body
    | _ ->
        (* Generic: recurse into immediate children with the same scope. *)
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ sub -> walk bound sub);
            structure_item = (fun _ _ -> ());
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  walk [] body

(* Walk a function body looking for parallel entry points, tracking simple
   let bindings so captures can be classified. *)
let scan_function ctx (fn : Loader.func) =
  let site = fn.Loader.fn_path in
  let rec walk scope (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
        List.iter (fun (vb : Parsetree.value_binding) -> walk scope vb.pvb_expr) vbs;
        let scope =
          List.fold_left
            (fun scope (vb : Parsetree.value_binding) ->
              match
                (Loader.pattern_name vb.pvb_pat, classify ctx.spec vb.pvb_expr)
              with
              | "_", _ | _, None -> scope
              | name, Some kind ->
                  (name, { b_kind = kind; b_line = vb.pvb_loc.loc_start.pos_lnum })
                  :: scope)
            scope vbs
        in
        walk scope body
    | Pexp_apply (f, args) -> (
        (match Loader.head_path f with
        | Some path -> (
            match Spec.find_par ctx.spec path with
            | Some entry -> (
                match Loader.subject_arg entry.Spec.par_subject args with
                | Some { pexp_desc = Pexp_fun (_, _, pat, body); _ } ->
                    (* Closure parameters are job-local. *)
                    ignore pat;
                    scan_closure ctx ~site ~scope body
                | Some { pexp_desc = Pexp_function cases; _ } ->
                    List.iter
                      (fun (c : Parsetree.case) ->
                        scan_closure ctx ~site ~scope c.pc_rhs)
                      cases
                | Some _ | None -> ())
            | None -> ())
        | None -> ());
        walk scope f;
        List.iter (fun (_, a) -> walk scope a) args)
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ sub -> walk scope sub);
            structure_item = (fun _ _ -> ());
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  walk [] fn.Loader.fn_expr

(* Module-level mutable bindings of a file (shared by every domain that
   touches this module). *)
let module_globals spec (src : Loader.source) =
  List.filter_map
    (fun (fn : Loader.func) ->
      if String.contains fn.Loader.fn_local '.' then None
      else
        match classify spec fn.Loader.fn_expr with
        | Some kind ->
            Some (fn.Loader.fn_local, { b_kind = kind; b_line = fn.Loader.fn_line })
        | None -> None)
    src.Loader.src_funcs

let check_source ~spec (src : Loader.source) =
  let ctx =
    {
      spec;
      file = src.Loader.src_path;
      globals = module_globals spec src;
      out = ref [];
    }
  in
  List.iter (fun fn -> scan_function ctx fn) src.Loader.src_funcs;
  List.rev !(ctx.out)
