(* StatCheck findings: one record per static hazard, carrying the same
   [site Module.func] label format RefSan prints at quiesce, so a dynamic
   hazard can be grepped straight to its static counterpart (and vice
   versa). Finding ids are stable — the CI baseline and the docs key off
   them. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  id : string;  (** stable finding id, e.g. [SC-LC-LEAK] *)
  severity : severity;
  pass : string;  (** lifecycle | races | alloc | ir | parse *)
  site : string;  (** [Module.func] — RefSan's site-label vocabulary *)
  file : string;
  line : int;
  message : string;
}

let make ~id ~severity ~pass ~site ~file ~line fmt =
  Printf.ksprintf
    (fun message -> { id; severity; pass; site; file; line; message })
    fmt

(* Baseline identity. Deliberately excludes the line number: moving code
   around a file must not churn the committed baseline, only introducing or
   fixing a finding does. *)
let fingerprint f = Printf.sprintf "%s|%s|%s" f.id f.site f.file

let to_string f =
  Printf.sprintf "%-7s %-16s %s %s:%d  %s"
    (severity_to_string f.severity)
    f.id
    (Sanitizer.Report.site_label f.site)
    f.file f.line f.message

let compare_for_report a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.id b.id in
      if c <> 0 then c else compare a.site b.site

let errors fs = List.filter (fun f -> f.severity = Error) fs

(* --- JSON (emitted and parsed without external deps) ------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"id\": %S, \"severity\": %S, \"pass\": %S, \"site\": \"%s\", \"file\": \
     \"%s\", \"line\": %d, \"message\": \"%s\"}"
    f.id
    (severity_to_string f.severity)
    f.pass (json_escape f.site) (json_escape f.file) f.line
    (json_escape f.message)

let list_to_json fs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      Buffer.add_string b (to_json f))
    fs;
  if fs <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b
