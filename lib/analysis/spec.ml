(* Ownership spec files: the vocabulary StatCheck's passes interpret the
   parsetree against. One directive per line, '#' comments:

     op <Path> <alloc|ref|release|post|complete|write> [subject=N|subject=<label>]
     assume <Module.func>          # skip lifecycle checking of this function
     ackctx <Module.func>          # ACK/completion context: release-after-post OK
     par <Path> [subject=N]        # parallel fan-out entry point; subject = job closure
     stateful <Path>               # constructor returning internally-mutable state
     safe <Path>                   # constructor safe to share across domains
     allow_capture <Module.func> <var>  # reviewed capture in a par closure
     coldguard <Path>              # `if <coldguard> then ...` branches are off the hot path
     allocates <Path>              # calling this allocates (for [@@alloc_free] bodies)

   Paths are dotted and matched by component suffix (min 2 components), so
   `Mem.Pinned.Buf.incr_ref` also matches a `Buf.incr_ref` call inside
   lib/mem where the library prefix is implicit. *)

type op = Alloc | Ref | Release | Post | Complete | Write

let op_to_string = function
  | Alloc -> "alloc"
  | Ref -> "ref"
  | Release -> "release"
  | Post -> "post"
  | Complete -> "complete"
  | Write -> "write"

type subject = Pos of int | Label of string

type op_entry = { op_path : string list; op : op; subject : subject }

type par_entry = { par_path : string list; par_subject : subject }

type t = {
  mutable ops : op_entry list;
  mutable assumes : string list;
  mutable ackctx : string list;
  mutable pars : par_entry list;
  mutable stateful : string list list;
  mutable safe : string list list;
  mutable allow_capture : (string * string) list;
  mutable coldguards : string list list;
  mutable allocates : string list list;
}

let empty () =
  {
    ops = [];
    assumes = [];
    ackctx = [];
    pars = [];
    stateful = [];
    safe = [];
    allow_capture = [];
    coldguards = [];
    allocates = [];
  }

let split_path s = String.split_on_char '.' s

(* [path_matches spec applied]: the shorter dotted path must be a suffix of
   the longer one, and at least [min_match] components must line up — enough
   that `incr_ref` alone never matches, but both fully-qualified and
   library-internal spellings of the same function do. *)
let path_matches ?(min_match = 2) spec applied =
  let suffix_of short long =
    let ls = List.length short and ll = List.length long in
    ls <= ll
    &&
    let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l) in
    drop (ll - ls) long = short
  in
  let ls = List.length spec and la = List.length applied in
  min ls la >= min_match
  && (if ls <= la then suffix_of spec applied else suffix_of applied spec)

exception Parse_error of string

let parse_subject ~what s =
  match String.index_opt s '=' with
  | Some i when String.sub s 0 i = "subject" -> (
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt v with
      | Some n -> Pos n
      | None -> Label v)
  | _ -> raise (Parse_error (Printf.sprintf "bad %s attribute %S" what s))

let add_line t line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  with
  | [] -> ()
  | [ "op"; path; op ] | [ "op"; path; op; _ ] as toks -> (
      let subject =
        match toks with
        | [ _; _; _; attr ] -> parse_subject ~what:"op" attr
        | _ -> Pos 0
      in
      let op =
        match op with
        | "alloc" -> Alloc
        | "ref" -> Ref
        | "release" -> Release
        | "post" -> Post
        | "complete" -> Complete
        | "write" -> Write
        | other -> raise (Parse_error (Printf.sprintf "unknown op %S" other))
      in
      t.ops <- { op_path = split_path path; op; subject } :: t.ops)
  | [ "assume"; f ] -> t.assumes <- f :: t.assumes
  | [ "ackctx"; f ] -> t.ackctx <- f :: t.ackctx
  | [ "par"; path ] ->
      t.pars <- { par_path = split_path path; par_subject = Pos 0 } :: t.pars
  | [ "par"; path; attr ] ->
      t.pars <-
        { par_path = split_path path; par_subject = parse_subject ~what:"par" attr }
        :: t.pars
  | [ "stateful"; path ] -> t.stateful <- split_path path :: t.stateful
  | [ "safe"; path ] -> t.safe <- split_path path :: t.safe
  | [ "allow_capture"; f; v ] -> t.allow_capture <- (f, v) :: t.allow_capture
  | [ "coldguard"; path ] -> t.coldguards <- split_path path :: t.coldguards
  | [ "allocates"; path ] -> t.allocates <- split_path path :: t.allocates
  | tok :: _ -> raise (Parse_error (Printf.sprintf "unknown directive %S" tok))

let parse text =
  let t = empty () in
  List.iteri
    (fun i line ->
      try add_line t line
      with Parse_error e ->
        raise (Parse_error (Printf.sprintf "line %d: %s" (i + 1) e)))
    (String.split_on_char '\n' text);
  t

let load_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  try parse text
  with Parse_error e -> raise (Parse_error (Printf.sprintf "%s: %s" path e))

let merge ts =
  let t = empty () in
  List.iter
    (fun s ->
      t.ops <- t.ops @ s.ops;
      t.assumes <- t.assumes @ s.assumes;
      t.ackctx <- t.ackctx @ s.ackctx;
      t.pars <- t.pars @ s.pars;
      t.stateful <- t.stateful @ s.stateful;
      t.safe <- t.safe @ s.safe;
      t.allow_capture <- t.allow_capture @ s.allow_capture;
      t.coldguards <- t.coldguards @ s.coldguards;
      t.allocates <- t.allocates @ s.allocates)
    ts;
  t

(* Load every *.spec file of a directory, sorted, merged. *)
let load_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".spec")
  |> List.sort compare
  |> List.map (fun f -> load_file (Filename.concat dir f))
  |> merge

(* --- lookups ----------------------------------------------------------- *)

let find_op t applied =
  List.find_opt (fun e -> path_matches e.op_path applied) t.ops

let find_par t applied =
  List.find_opt (fun e -> path_matches e.par_path applied) t.pars

let is_assumed t func = List.mem func t.assumes

let is_ackctx t func = List.mem func t.ackctx

let is_stateful t applied =
  List.exists (fun p -> path_matches p applied) t.stateful

let is_safe t applied = List.exists (fun p -> path_matches p applied) t.safe

let is_capture_allowed t ~func ~var = List.mem (func, var) t.allow_capture

let is_coldguard t applied =
  List.exists (fun p -> path_matches p applied) t.coldguards

let is_allocating t applied =
  List.exists (fun p -> path_matches p applied) t.allocates
