(* Hot-path allocation lint: a function marked [@@alloc_free] promises the
   steady-state fast path performs no OCaml heap allocation — the property
   the Send fast paths, the Arena recycle hit, and the transport zc hooks
   are built around. This pass rejects syntactic allocation sites in the
   annotated body:

   - tuple / record / non-constant constructor / polymorphic-variant builds
   - array and list literals, list cons
   - closures ([fun]/[function] inside the body — a closure is a heap block)
   - [lazy] blocks
   - calls to known allocators ([ref], [Bytes.create], [^], [@], [Printf.*],
     [List.map]-family) or any spec'd [allocates <Path>]

   Exempt, because they are off the steady-state path:
   - arguments of [raise] / [failwith] / [invalid_arg] / [assert] — error
     paths may allocate the exception they die with
   - the then-branch of [if <coldguard> () then ...] where <coldguard> is
     spec'd (e.g. [Sanitizer.Refsan.is_enabled]: diagnostics are not the
     hot path) *)

let attr_name = "alloc_free"

(* Built-in allocator heads; spec [allocates] extends this. *)
let builtin_allocators =
  [
    [ "ref" ];
    [ "^" ];
    [ "@" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Bytes"; "of_string" ];
    [ "Bytes"; "to_string" ];
    [ "Bytes"; "sub" ];
    [ "Bytes"; "sub_string" ];
    [ "String"; "concat" ];
    [ "String"; "make" ];
    [ "String"; "sub" ];
    [ "String"; "init" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "copy" ];
    [ "Array"; "append" ];
    [ "Array"; "of_list" ];
    [ "Array"; "to_list" ];
    [ "List"; "map" ];
    [ "List"; "mapi" ];
    [ "List"; "rev" ];
    [ "List"; "append" ];
    [ "List"; "concat" ];
    [ "List"; "filter" ];
    [ "List"; "init" ];
    [ "Printf"; "sprintf" ];
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Printf"; "ksprintf" ];
    [ "Format"; "sprintf" ];
    [ "Format"; "asprintf" ];
    [ "Buffer"; "create" ];
    [ "Buffer"; "contents" ];
    [ "Hashtbl"; "create" ];
  ]

let raising_heads = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

type ctx = { spec : Spec.t; file : string; site : string }

let is_allocator ctx path =
  List.exists (fun p -> Spec.path_matches ~min_match:1 p path) builtin_allocators
  || Spec.is_allocating ctx.spec path

(* Is this expression a call to a spec'd cold guard, e.g.
   [Sanitizer.Refsan.is_enabled ()]? *)
let is_coldguard_call ctx (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match Loader.head_path f with
      | Some path -> Spec.is_coldguard ctx.spec path
      | None -> false)
  | _ -> false

let check_body ctx (body : Parsetree.expression) =
  let out = ref [] in
  let report ~line fmt =
    Printf.ksprintf
      (fun message ->
        out :=
          Finding.make ~id:"SC-ALLOC" ~severity:Finding.Error ~pass:"alloc"
            ~site:ctx.site ~file:ctx.file ~line "%s" message
          :: !out)
      fmt
  in
  let rec walk (e : Parsetree.expression) =
    let line = e.pexp_loc.loc_start.pos_lnum in
    match e.pexp_desc with
    | Pexp_tuple _ ->
        report ~line "allocates a tuple on the hot path";
        walk_children e
    | Pexp_record _ ->
        report ~line "allocates a record on the hot path";
        walk_children e
    | Pexp_array _ ->
        report ~line "allocates an array literal on the hot path";
        walk_children e
    | Pexp_lazy _ ->
        report ~line "allocates a lazy block on the hot path";
        walk_children e
    | Pexp_construct ({ txt; _ }, Some arg) ->
        let name = String.concat "." (Loader.longident_components txt) in
        report ~line "allocates constructor %s on the hot path" name;
        walk arg
    | Pexp_variant (tag, Some arg) ->
        report ~line "allocates polymorphic variant `%s on the hot path" tag;
        walk arg
    | Pexp_fun _ | Pexp_function _ ->
        report ~line "builds a closure on the hot path (heap block)"
        (* don't descend: the closure body runs elsewhere; the allocation
           is the closure itself *)
    | Pexp_apply (f, args) -> (
        match Loader.head_path f with
        | Some [ name ] when List.mem name raising_heads ->
            (* error path: the exception (and its message) may allocate *)
            ()
        | Some path when is_allocator ctx path ->
            report ~line "calls allocator %s on the hot path"
              (String.concat "." path);
            List.iter (fun (_, a) -> walk a) args
        | _ ->
            walk f;
            List.iter (fun (_, a) -> walk a) args)
    | Pexp_ifthenelse (cond, then_, else_) ->
        walk cond;
        if not (is_coldguard_call ctx cond) then walk then_;
        Option.iter walk else_
    | Pexp_assert _ -> (* assertion failure path may allocate *) ()
    | _ -> walk_children e
  and walk_children e =
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ sub -> walk sub);
        structure_item = (fun _ _ -> ());
      }
    in
    Ast_iterator.default_iterator.expr it e
  in
  (* Skip the parameter spine: [fun a b -> body] — the outer closures are
     built once at definition time, not per call. *)
  let rec skip_params (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) -> skip_params body
    | Pexp_newtype (_, body) -> skip_params body
    | Pexp_constraint (body, _) -> skip_params body
    | _ -> e
  in
  walk (skip_params body);
  List.rev !out

let check_source ~spec (src : Loader.source) =
  List.concat_map
    (fun (fn : Loader.func) ->
      if Loader.has_attr attr_name fn.Loader.fn_attrs then
        check_body
          { spec; file = src.Loader.src_path; site = fn.Loader.fn_path }
          fn.Loader.fn_expr
      else [])
    src.Loader.src_funcs
