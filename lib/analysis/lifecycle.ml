(* Lifecycle/typestate pass: a small ownership automaton
   (alloc -> ref* -> post -> complete/ACK -> release) checked
   intraprocedurally against every function that touches a spec'd
   Mem.Buf / Nic.Device / Tcp entry point.

   Per branch-path, each tracked subject (a let-bound buffer or a function
   argument an op is applied to) carries: a net reference delta, whether it
   is currently posted (in flight), whether it was locally allocated, and
   whether it escaped (passed to an un-spec'd call, captured, stored,
   returned) — escape transfers ownership and ends leak tracking, which is
   what keeps the pass quiet on correct hand-written code while still
   catching the classic shapes:

   - SC-LC-LEAK    locally allocated buffer dropped on some branch path
   - SC-LC-WAP     write to a subject while posted (before completion)
   - SC-LC-RBA     release of a posted subject outside an ACK/completion
                   context (the TCP hold-until-cumulative-ACK contract)
   - SC-LC-DOUBLE  second release of an already fully-released local
   - SC-LC-UAF     write through a local whose references already reached
                   zero — at refcount 0 an RX ring slot recycles, so the
                   handle may alias a buffer serving a newer delivery *)

type subj = {
  s_refs : int;
  s_posted : bool;
  s_local : bool;
  s_escaped : bool;
  s_released : bool;
  s_alloc_line : int;
}

(* One path state: tracked subjects by name. Assoc list — functions track a
   handful of buffers at most. *)
type state = (string * subj) list

let max_paths = 48

let update name f (st : state) : state =
  List.map (fun (n, s) -> if n = name then (n, f s) else (n, s)) st

let tracked name (st : state) = List.assoc_opt name st

type ctx = {
  spec : Spec.t;
  file : string;
  site : string;  (** enclosing function path, StatCheck/RefSan label *)
  ackctx : bool;
  out : (string, Finding.t) Hashtbl.t;  (** keyed by dedup fingerprint *)
}

let report ctx ~id ~line fmt =
  Printf.ksprintf
    (fun message ->
      let f =
        Finding.make ~id ~severity:Finding.Error ~pass:"lifecycle"
          ~site:ctx.site ~file:ctx.file ~line "%s" message
      in
      let key = Printf.sprintf "%s|%d|%s" id line message in
      if not (Hashtbl.mem ctx.out key) then Hashtbl.add ctx.out key f)
    fmt

let dedup_states (sts : state list) =
  let seen = Hashtbl.create 16 in
  let kept =
    List.filter
      (fun st ->
        let key = Marshal.to_string st [] in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      sts
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take max_paths kept

let line_of (e : Parsetree.expression) = e.pexp_loc.loc_start.pos_lnum

(* Transition [op] on subject [name] in every path state. Unknown names
   become implicit non-local subjects so posted-state checks apply to
   function arguments too. *)
let apply_op ctx op name line (sts : state list) : state list =
  List.map
    (fun st ->
      let st =
        if tracked name st <> None then st
        else
          ( name,
            {
              s_refs = 0;
              s_posted = false;
              s_local = false;
              s_escaped = false;
              s_released = false;
              s_alloc_line = line;
            } )
          :: st
      in
      update name
        (fun s ->
          match (op : Spec.op) with
          | Spec.Alloc -> { s with s_refs = s.s_refs + 1; s_released = false }
          | Spec.Ref -> { s with s_refs = s.s_refs + 1 }
          | Spec.Release ->
              if s.s_released && s.s_local then begin
                report ctx ~id:"SC-LC-DOUBLE" ~line
                  "'%s' released again after its references already reached \
                   zero on this path"
                  name;
                s
              end
              else begin
                if s.s_posted && not ctx.ackctx then
                  report ctx ~id:"SC-LC-RBA" ~line
                    "'%s' released while posted (in flight) with no \
                     completion/ACK in between — zero-copy buffers must stay \
                     pinned until NIC completion (UDP) or cumulative ACK (TCP)"
                    name;
                let refs = s.s_refs - 1 in
                {
                  s with
                  s_refs = refs;
                  s_released = (s.s_local && refs <= 0) || s.s_released;
                }
              end
          | Spec.Post ->
              (* Posting transfers one reference to the device/rtx queue;
                 the completion path owns its release. *)
              { s with s_posted = true; s_refs = s.s_refs - 1 }
          | Spec.Complete -> { s with s_posted = false }
          | Spec.Write ->
              if s.s_posted then
                report ctx ~id:"SC-LC-WAP" ~line
                  "write to '%s' while posted (in flight) — mutating bytes \
                   covered by an active DMA/retransmission hold is the \
                   write-after-post race"
                  name;
              if s.s_released && s.s_local then
                report ctx ~id:"SC-LC-UAF" ~line
                  "write to '%s' after its references reached zero on this \
                   path — at refcount 0 the slot recycles back to its pool, \
                   so this handle may alias a buffer already serving a newer \
                   delivery"
                  name;
              s)
        st)
    sts

let escape name (sts : state list) =
  List.map (update name (fun s -> { s with s_escaped = true })) sts

(* --- the evaluator ----------------------------------------------------- *)

let rec eval ctx (sts : state list) (e : Parsetree.expression) : state list =
  let open Parsetree in
  match e.pexp_desc with
  | Pexp_ident { txt = Lident n; _ } ->
      (* A bare use we do not interpret: the value is read, stored or
         returned — ownership is no longer exclusively ours. *)
      escape n sts
  | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable | Pexp_extension _
  | Pexp_new _ | Pexp_pack _ | Pexp_object _ ->
      sts
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> eval ctx sts e
  | Pexp_let (_, vbs, body) ->
      let sts =
        List.fold_left
          (fun sts (vb : value_binding) ->
            let name = Loader.pattern_name vb.pvb_pat in
            match op_of_apply ctx vb.pvb_expr with
            | Some (Spec.Alloc, _, line) when name <> "_" ->
                (* Evaluate the arguments first, then bind the new local
                   subject (the alloc's subject is its result). *)
                let sts = eval_apply_args ctx sts vb.pvb_expr ~skip_subject:false in
                List.map
                  (fun st ->
                    ( name,
                      {
                        s_refs = 1;
                        s_posted = false;
                        s_local = true;
                        s_escaped = false;
                        s_released = false;
                        s_alloc_line = line;
                      } )
                    :: List.remove_assoc name st)
                  sts
            | _ -> eval ctx sts vb.pvb_expr)
          sts vbs
      in
      eval ctx sts body
  | Pexp_sequence (a, b) ->
      let sts = eval ctx sts a in
      eval ctx sts b
  | Pexp_ifthenelse (c, t, e_opt) ->
      let sts = eval ctx sts c in
      let sts_t = eval ctx sts t in
      let sts_e = match e_opt with Some e -> eval ctx sts e | None -> sts in
      dedup_states (sts_t @ sts_e)
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let sts = eval ctx sts scrut in
      let branches =
        List.concat_map
          (fun (c : case) ->
            let sts =
              match c.pc_guard with Some g -> eval ctx sts g | None -> sts
            in
            eval ctx sts c.pc_rhs)
          cases
      in
      dedup_states (if branches = [] then sts else branches)
  | Pexp_apply (fn, args) -> (
      match op_of_apply ctx e with
      | Some (op, Some subject_name, line) ->
          let sts = eval_apply_args ctx sts e ~skip_subject:true in
          apply_op ctx op subject_name line sts
      | Some (_, None, _) ->
          (* Op with a non-variable subject (e.g. a fresh sub-expression):
             nothing nameable to track. *)
          eval_apply_args ctx sts e ~skip_subject:false
      | None ->
          (* Unspec'd call: arguments escape. *)
          let sts = ref sts in
          (match Loader.head_path fn with
          | Some _ -> ()
          | None -> sts := eval ctx !sts fn);
          List.iter (fun (_, a) -> sts := eval ctx !sts a) args;
          !sts)
  | Pexp_fun (_, default, _, body) ->
      (* A closure: captured subjects escape (it may run later, on another
         path, or never); its body is checked as its own fresh context so
         bugs inside closures still surface. *)
      let sts = match default with Some d -> eval ctx sts d | None -> sts in
      let sts = escape_free_idents ctx sts body in
      check_sub ctx body;
      sts
  | Pexp_function cases ->
      let sts =
        List.fold_left
          (fun sts (c : case) -> escape_free_idents ctx sts c.pc_rhs)
          sts cases
      in
      List.iter (fun (c : case) -> check_sub ctx c.pc_rhs) cases;
      sts
  | Pexp_tuple es | Pexp_array es ->
      List.fold_left (fun sts e -> eval ctx sts e) sts es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      match arg with Some a -> eval ctx sts a | None -> sts)
  | Pexp_record (fields, base) ->
      let sts =
        match base with Some b -> eval ctx sts b | None -> sts
      in
      List.fold_left (fun sts (_, e) -> eval ctx sts e) sts fields
  | Pexp_field (e, _) -> eval ctx sts e
  | Pexp_setfield (lhs, _, rhs) ->
      let sts = eval ctx sts lhs in
      eval ctx sts rhs
  | Pexp_while (c, body) ->
      let sts = eval ctx sts c in
      (* One unrolling unioned with zero: loop-carried automaton effects
         are approximated, which is enough for straight-line hot paths. *)
      dedup_states (sts @ eval ctx sts body)
  | Pexp_for (_, lo, hi, _, body) ->
      let sts = eval ctx sts lo in
      let sts = eval ctx sts hi in
      dedup_states (sts @ eval ctx sts body)
  | Pexp_assert e | Pexp_lazy e ->
      eval ctx sts e
  | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) ->
      eval ctx sts e
  | Pexp_letop { let_; ands; body; _ } ->
      let sts = eval ctx sts let_.pbop_exp in
      let sts =
        List.fold_left (fun sts a -> eval ctx sts a.pbop_exp) sts ands
      in
      eval ctx sts body
  | Pexp_send (e, _) -> eval ctx sts e
  | Pexp_setinstvar (_, e) -> eval ctx sts e
  | Pexp_override fields ->
      List.fold_left (fun sts (_, e) -> eval ctx sts e) sts fields
  | Pexp_poly (e, _) -> eval ctx sts e
  | Pexp_newtype (_, e) -> eval ctx sts e

(* Classify an expression as a spec'd op application: returns the op, the
   subject's variable name when the subject argument is a bare variable,
   and the application's line. *)
and op_of_apply ctx (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (fn, args) -> (
      match Loader.head_path fn with
      | None -> None
      | Some path -> (
          match Spec.find_op ctx.spec path with
          | None -> None
          | Some entry ->
              (* An alloc's subject is its *result* (the let binding), not
                 an argument. *)
              let subject =
                if entry.Spec.op = Spec.Alloc then None
                else
                  match Loader.subject_arg entry.Spec.subject args with
                  | Some arg -> Loader.ident_name arg
                  | None -> None
              in
              Some (entry.Spec.op, subject, line_of e)))
  | _ -> None

(* Evaluate an op application's arguments. The subject argument is consumed
   by the op (skip), every other argument is a plain value use. *)
and eval_apply_args ctx sts (e : Parsetree.expression) ~skip_subject =
  match e.pexp_desc with
  | Pexp_apply (fn, args) ->
      let subject_expr =
        if not skip_subject then None
        else
          match Loader.head_path fn with
          | None -> None
          | Some path -> (
              match Spec.find_op ctx.spec path with
              | None -> None
              | Some entry -> Loader.subject_arg entry.Spec.subject args)
      in
      List.fold_left
        (fun sts (_, a) ->
          match subject_expr with
          | Some s when s == a -> sts
          | _ -> eval ctx sts a)
        sts args
  | _ -> eval ctx sts e

(* Escape every tracked subject that occurs free in [e] (closure capture). *)
and escape_free_idents ctx sts (e : Parsetree.expression) =
  let names = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Lident n; _ } -> names := n :: !names
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  ignore ctx;
  List.fold_left (fun sts n -> escape n sts) sts !names

(* Check a closure body as an independent context (fresh path states),
   including the leak check over its own local allocations. *)
and check_sub ctx body = leak_check ctx (eval ctx [ [] ] body)

(* --- per-function entry point ------------------------------------------ *)

and leak_check ctx (sts : state list) =
  List.iter
    (fun st ->
      List.iter
        (fun (name, s) ->
          if
            s.s_local && (not s.s_escaped) && (not s.s_released)
            && (not s.s_posted) && s.s_refs > 0
          then
            report ctx ~id:"SC-LC-LEAK" ~line:s.s_alloc_line
              "'%s' allocated here still holds %d reference%s on some path \
               and never escapes — unbalanced alloc/ref vs release"
              name s.s_refs
              (if s.s_refs = 1 then "" else "s"))
        st)
    sts

let check_function ~spec ~file (fn : Loader.func) =
  if Spec.is_assumed spec fn.Loader.fn_path || Spec.is_assumed spec fn.Loader.fn_local
  then []
  else begin
    let ctx =
      {
        spec;
        file;
        site = fn.Loader.fn_path;
        ackctx =
          Spec.is_ackctx spec fn.Loader.fn_path
          || Spec.is_ackctx spec fn.Loader.fn_local;
        out = Hashtbl.create 8;
      }
    in
    (* Skip the parameter spine: the automaton runs over the body, with the
       parameters as implicit (non-local) subjects. Without this the whole
       body would be treated as one big closure and only escape-scanned. *)
    let rec skip_params (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_fun (_, _, _, body) -> skip_params body
      | Pexp_newtype (_, body) -> skip_params body
      | Pexp_constraint (body, _) -> skip_params body
      | _ -> e
    in
    let final = eval ctx [ [] ] (skip_params fn.Loader.fn_expr) in
    leak_check ctx final;
    Hashtbl.fold (fun _ f acc -> f :: acc) ctx.out []
  end

let check_source ~spec (src : Loader.source) =
  List.concat_map
    (fun fn -> check_function ~spec ~file:src.Loader.src_path fn)
    src.Loader.src_funcs
