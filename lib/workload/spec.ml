type op =
  | Get of { keys : string list }
  | Get_index of { key : string; index : int }
  | Put of { key : string; sizes : int list }

type t = {
  name : string;
  store_capacity : int;
  pool_classes : (int * int) list;
  populate : Kvstore.Store.t -> pool:Mem.Pinned.Pool.t -> unit;
  next : Sim.Rng.t -> op;
  mean_response_bytes : float;
}

let pattern =
  let b = Buffer.create 256 in
  for i = 0 to 255 do
    Buffer.add_char b (Char.chr (32 + (i mod 95)))
  done;
  Buffer.contents b

let filler n =
  if n <= 0 then ""
  else begin
    let b = Bytes.create n in
    let plen = String.length pattern in
    let rec fill off =
      if off < n then begin
        let chunk = min plen (n - off) in
        Bytes.blit_string pattern 0 b off chunk;
        fill (off + chunk)
      end
    in
    fill 0;
    Bytes.unsafe_to_string b
  end

let class_of n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 64

let alloc_buf pool n =
  let buf = Mem.Pinned.Buf.alloc ~site:"Workload.populate" pool ~len:(max 1 n) in
  Mem.Pinned.Buf.fill ~site:"Workload.populate" buf (filler (max 1 n));
  buf

let alloc_value pool ~repr sizes =
  match (repr, sizes) with
  | `Single, [ n ] -> Kvstore.Store.Single (alloc_buf pool n)
  | `Single, _ -> invalid_arg "Spec.alloc_value: Single needs one size"
  | `Linked, sizes -> Kvstore.Store.Linked (List.map (alloc_buf pool) sizes)
  | `Vector, sizes ->
      Kvstore.Store.Vector (Array.of_list (List.map (alloc_buf pool) sizes))
