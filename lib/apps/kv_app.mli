(** The custom key-value store application (§6.1.2), parameterised by a
    serialization backend.

    The server deserializes a [Req], looks keys up in the store, wraps each
    value buffer through the backend (Cornflakes: hybrid CFPtr; baselines:
    literal views copied at serialization time), and sends a [Resp] with
    the combined serialize-and-send path of the backend. Puts allocate new
    pinned buffers and swap pointers — never updating values in place — per
    the Cornflakes memory-safety model (§4.1). *)

type t

(** [install rig ~backend ~workload] populates a store per the workload and
    installs the request handler on the rig's server. *)
val install : Rig.t -> backend:Backend.t -> workload:Workload.Spec.t -> t

(** [switch_backend t backend] reuses the populated store and pool under a
    different serializer (avoids re-populating between systems). *)
val switch_backend : t -> Backend.t -> t

(** Turn on resilience mode: duplicate requests (retransmissions,
    fabric-duplicated frames) are witnessed against [dedup]; duplicate
    puts are suppressed (answered with an id-only ack) while gets — being
    idempotent — are re-executed to regenerate a lost response. Client
    side, [send_next] replays the cached op for a retried id instead of
    drawing a fresh one. *)
val enable_resilience : t -> dedup:Net.Dedup.t -> unit

val dedup : t -> Net.Dedup.t option

(** Duplicate puts suppressed by the dedup window. *)
val puts_suppressed : t -> int

(** Per-request-id put application counts (resilience mode only), sorted
    by id — every count must be 1 for exactly-once semantics. *)
val put_apply_counts : t -> (int * int) list

val store : t -> Kvstore.Store.t

(** Client-side request sender for a workload op. *)
val send_op :
  t -> Workload.Spec.op -> Net.Transport.t -> dst:int -> id:int -> unit

(** Client-side generator: draws the next op from the workload. *)
val send_next : t -> Net.Transport.t -> dst:int -> id:int -> unit

(** Client-side response-id parser (uncharged; resets the client arena). *)
val parse_id : t -> Mem.Pinned.Buf.t -> int

(** Values served but not yet reclaimed by puts remain owned by the store;
    exposed for leak assertions in tests. *)
val pool : t -> Mem.Pinned.Pool.t
