(** The schema shared by the evaluation applications (the analogue of the
    paper's Listing 1 [GetM] messages) — the stable alias surface over the
    generated [Kv_rpc] module compiled from [kv.proto]. The op tags are
    the [Kv] service's schema-declared method ids. *)

val schema : Schema.Desc.t

(** Request: [id], [op] (0 = get, 1 = put, 2 = get_index), [keys], optional
    [index], and [vals] for puts. *)
val req : Schema.Desc.message

(** Response: [id] and the value buffers. *)
val resp : Schema.Desc.message

val op_get : int64

val op_put : int64

val op_get_index : int64

(** Field indices (schema order) for the in-place [Wire.Reader] accessors. *)
val req_id : int

val req_op : int

val req_keys : int

val req_index : int

val req_vals : int

val resp_id : int

val resp_vals : int
