type mode =
  | Lib of Backend.t
  | No_serialization
  | Zero_copy_raw
  | Zero_copy_safe
  | One_copy
  | Two_copy

let mode_name = function
  | Lib b -> b.Backend.name
  | No_serialization -> "no-serialization"
  | Zero_copy_raw -> "zero-copy"
  | Zero_copy_safe -> "zero-copy-safe"
  | One_copy -> "one-copy"
  | Two_copy -> "two-copy"

type t = {
  rig : Rig.t;
  mode : mode;
  (* Pooled per-app message objects; the stack owns any zero-copy refs
     after send, so [Dyn.clear] between uses, never [reset]. *)
  resp_scratch : Wire.Dyn.t;
  req_scratch : Wire.Dyn.t;
}

let lib_handler t backend ~src buf =
  let rig = t.rig in
  let cpu = rig.Rig.cpu in
  let tr = rig.Rig.server_tr in
  let req = backend.Backend.recv ~cpu tr Proto.resp buf in
  let resp = t.resp_scratch in
  Wire.Dyn.clear resp;
  (match Wire.Dyn.get_int req "id" with
  | Some id -> Wire.Dyn.set_int resp "id" id
  | None -> ());
  List.iter
    (fun v ->
      match v with
      | Wire.Dyn.Payload p ->
          let payload = backend.Backend.wrap ~cpu tr (Wire.Payload.view p) in
          Wire.Dyn.append resp "vals" (Wire.Dyn.Payload payload)
      | _ -> ())
    (Wire.Dyn.get_list req "vals");
  backend.Backend.send ~cpu tr ~dst:src resp;
  Wire.Dyn.release ~cpu req;
  Mem.Pinned.Buf.decr_ref ~cpu buf

let manual_handler rig mode ~src buf =
  let cpu = rig.Rig.cpu in
  let tr = rig.Rig.server_tr in
  match mode with
  | No_serialization ->
      (* Pure L3 forward: the receive buffer itself is retransmitted. *)
      Baselines.Manual.forward ~cpu tr ~dst:src buf
  | _ ->
      let fields = Baselines.Manual.parse ~cpu (Mem.Pinned.Buf.view buf) in
      (match mode with
      | Zero_copy_raw ->
          Baselines.Manual.send_zero_copy ~cpu ~safety:`Raw tr ~dst:src fields
      | Zero_copy_safe ->
          Baselines.Manual.send_zero_copy ~cpu ~safety:`Safe tr ~dst:src fields
      | One_copy -> Baselines.Manual.send_one_copy ~cpu tr ~dst:src fields
      | Two_copy -> Baselines.Manual.send_two_copy ~cpu tr ~dst:src fields
      | Lib _ | No_serialization -> assert false);
      Mem.Pinned.Buf.decr_ref ~cpu buf

let install rig mode =
  let t =
    {
      rig;
      mode;
      resp_scratch = Wire.Dyn.create Proto.resp;
      req_scratch = Wire.Dyn.create Proto.resp;
    }
  in
  (match mode with
  | Lib backend ->
      Loadgen.Server.set_handler rig.Rig.server (fun ~src buf ->
          lib_handler t backend ~src buf)
  | _ ->
      Loadgen.Server.set_handler rig.Rig.server (fun ~src buf ->
          manual_handler rig mode ~src buf));
  t

let send_request t ~sizes client ~dst ~id =
  match t.mode with
  | Lib backend ->
      let space = t.rig.Rig.space in
      let msg = t.req_scratch in
      Wire.Dyn.clear msg;
      Wire.Dyn.set_int msg "id" (Int64.of_int id);
      List.iter
        (fun n ->
          Wire.Dyn.append msg "vals"
            (Wire.Dyn.Payload
               (Wire.Payload.of_string space (Workload.Spec.filler (max 1 n)))))
        sizes;
      backend.Backend.send client ~dst msg;
      Mem.Arena.reset (Net.Transport.arena client)
  | _ ->
      (* Manual framing; FIFO matching, so the id is not encoded. *)
      let body =
        let buf = Buffer.create 256 in
        let u32 v =
          Buffer.add_char buf (Char.chr (v land 0xff));
          Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
          Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
          Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))
        in
        u32 (List.length sizes);
        List.iter u32 sizes;
        List.iter (fun n -> Buffer.add_string buf (Workload.Spec.filler n)) sizes;
        Buffer.contents buf
      in
      Net.Transport.send_string client ~dst body

let parse_id t =
  match t.mode with
  | Lib backend ->
      Some
        (fun buf ->
          let msg =
            backend.Backend.recv
              (List.hd t.rig.Rig.clients)
              Proto.resp buf
          in
          let id =
            match Wire.Dyn.get_int msg "id" with
            | Some id -> Int64.to_int id
            | None -> -1
          in
          Wire.Dyn.release msg;
          List.iter
            (fun c -> Mem.Arena.reset (Net.Transport.arena c))
            t.rig.Rig.clients;
          id)
  | _ -> None
