(** The echo server (§2.2, §6.1.2): almost no application logic — the
    server deserializes the request and reserializes it back. Because the
    receive buffer is pinned, Cornflakes' reserialize recovers the request's
    own fields zero-copy; copying libraries re-copy them.

    Besides the library-backed echo, this module provides the manual
    handlers of Figure 1/2: raw forward (no serialization), zero-copy
    scatter-gather (raw or with safety costs), one-copy and two-copy. *)

type mode =
  | Lib of Backend.t
  | No_serialization
  | Zero_copy_raw
  | Zero_copy_safe
  | One_copy
  | Two_copy

val mode_name : mode -> string

type t

(** [install rig mode] sets up the echo handler. *)
val install : Rig.t -> mode -> t

(** [send_request t ~sizes client ~dst ~id] sends an echo request whose
    payload is a list of fields with the given sizes. *)
val send_request :
  t -> sizes:int list -> Net.Transport.t -> dst:int -> id:int -> unit

(** Response-id parser; [None] for the manual modes (FIFO matching). *)
val parse_id : t -> (Mem.Pinned.Buf.t -> int) option
