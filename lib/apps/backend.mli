(** Serialization backends: one record per evaluated system (§6.1.3).

    Each backend knows how to send a dynamic message over a transport
    (UDP or TCP — the backend is datapath-agnostic), how to deserialize a
    received buffer, and how to wrap raw application bytes into a payload
    for an outgoing message:

    - Cornflakes wraps through {!Cornflakes.Cf_ptr.make} — the hybrid
      threshold plus [recover_ptr], paying copy or refcount per field;
    - the copying libraries hold a [Literal] window and pay their copies at
      serialization time. *)

type t = {
  name : string;
  (* RX discipline: [true] routes servers through the in-place
     [Wire.Reader] path (validate once, access fields in the receive
     buffer); [false] materializes a [Wire.Dyn] via [recv]. Only the
     Cornflakes wire format supports in-place access; baselines always
     parse-into-heap. *)
  zc_rx : bool;
  send :
    ?cpu:Memmodel.Cpu.t -> Net.Transport.t -> dst:int -> Wire.Dyn.t -> unit;
  recv :
    ?cpu:Memmodel.Cpu.t ->
    Net.Transport.t ->
    Schema.Desc.message ->
    Mem.Pinned.Buf.t ->
    Wire.Dyn.t;
  wrap :
    ?cpu:Memmodel.Cpu.t -> Net.Transport.t -> Mem.View.t -> Wire.Payload.t;
}

(** [cornflakes ~config] — hybrid by default; pass
    {!Cornflakes.Config.all_copy} / [all_zero_copy] for the ablations.
    [~zc_rx:false] keeps the TX config but parses received messages into a
    [Wire.Dyn] (the pre-reader receive path, kept for the [rx] ablation);
    its name gains a ["-copyrx"] suffix. *)
val cornflakes : ?config:Cornflakes.Config.t -> ?zc_rx:bool -> unit -> t

val protobuf : t

val flatbuffers : t

val capnproto : t

(** The four systems of the end-to-end comparisons, Cornflakes first. *)
val all : t list

val by_name : string -> t
