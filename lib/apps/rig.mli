(** Experiment rig: one single-core server plus a fleet of client endpoints
    on a fabric, matching the paper's testbed topology (16-thread load
    generator against a one-core server, §6.1.1). *)

(** Which datapath the rig's transports ride: kernel-bypass UDP (buffers
    released at NIC completion) or the Demikernel-style TCP stack (buffers
    held until cumulative ACK). *)
type transport_kind = [ `Udp | `Tcp ]

type t = {
  engine : Sim.Engine.t;
  fabric : Net.Fabric.t;
  space : Mem.Addr_space.t;
  registry : Mem.Registry.t;
  cpu : Memmodel.Cpu.t;
  server_ep : Net.Endpoint.t;
  server_tr : Net.Transport.t;  (** the server endpoint as a transport *)
  server : Loadgen.Server.t;
  clients : Net.Transport.t list;
  transport_kind : transport_kind;
  rng : Sim.Rng.t;
}

val server_id : int

(** Seed used by [create] when [?seed] is absent (default [0xc0ffee]); the
    bench harness's [--seed] flag sets it for reproducible runs. *)
val set_default_seed : int -> unit

val default_seed : unit -> int

(** Datapath used by [create] when [?transport] is absent (default
    [`Udp]); the CLI's [--transport] flag sets it process-wide. *)
val set_default_transport : transport_kind -> unit

val default_transport : unit -> transport_kind

val transport_kind_name : transport_kind -> string

(** [transport_for ~kind ep] is the datapath view over an endpoint: UDP
    uses the endpoint's cached transport, TCP attaches a stack over its
    receive path. Multi-endpoint topologies (lib/cluster) build their
    shard/dispatcher/client transports through this, so both datapaths
    stay interchangeable everywhere. *)
val transport_for : kind:transport_kind -> Net.Endpoint.t -> Net.Transport.t

(** [create ()] builds the rig. [n_clients] defaults to 16; [seed] defaults
    to the [set_default_seed] value; [transport] to the
    [set_default_transport] value. With [`Tcp], every endpoint gets a
    [Tcp.Stack] attached and the rig's transports are its connections —
    handshakes run lazily on first send or eagerly via
    [Net.Transport.connect] (the load drivers connect during warmup). *)
val create :
  ?params:Memmodel.Params.t ->
  ?shared_l3:Memmodel.Cache.t ->
  ?nic_model:Nic.Model.t ->
  ?n_clients:int ->
  ?seed:int ->
  ?server_config:Net.Endpoint.config ->
  ?transport:transport_kind ->
  unit ->
  t

(** Server endpoint followed by every client endpoint. *)
val endpoints : t -> Net.Endpoint.t list

(** Wire a Faultline injector into every layer: fabric packets, NIC
    completions (scoped by endpoint id), server service slots, and
    arena-exhaustion windows. *)
val inject_faults : t -> Faults.Injector.t -> unit

(** Detach the injector and restore arenas/NICs/server to fault-free
    behaviour (does not reap already-lost completions). *)
val clear_faults : t -> unit

(** Recover lost completions on every NIC ([Nic.Device.reap_lost]);
    returns descriptors recovered. Call before quiescing a faulted run. *)
val reap_lost : t -> int

(** [data_pool t ~name ~classes] makes a registered pinned pool for
    application data. *)
val data_pool :
  t -> name:string -> classes:(int * int) list -> Mem.Pinned.Pool.t

(** [warm t ~requests ~send ~parse_id] drives a short closed-loop burst to
    warm caches and pools before measurement. *)
val warm :
  t ->
  requests:int ->
  send:(Net.Transport.t -> dst:int -> id:int -> unit) ->
  parse_id:(Mem.Pinned.Buf.t -> int) option ->
  unit
