type t = {
  rig : Rig.t;
  backend : Backend.t;
  workload : Workload.Spec.t;
  store : Kvstore.Store.t;
  pool : Mem.Pinned.Pool.t;
  client_rng : Sim.Rng.t;
  (* Pooled request object, rebuilt in place per message. The stack takes
     over any zero-copy references at send, so a [Dyn.clear] (not
     [reset]) between uses is the correct ownership move. The pooled
     response now lives inside the generated [Kv_rpc.Kv_service] server
     skeleton built per [activate]. *)
  req_scratch : Wire.Dyn.t;
  (* Resilience mode (set by [enable_resilience]; shared across
     [switch_backend] copies via the ref/tables). With a dedup window
     installed, duplicate puts are suppressed (gets are idempotent and
     re-executed), retried ids replay the same cached op, and per-id put
     applications are recorded for exactly-once assertions. *)
  mutable dedup : Net.Dedup.t option;
  (* Verdict of the pre-dispatch duplicate witness, read by the put row of
     the generated dispatch table (a ref: shared across [switch_backend]
     copies like the other resilience state). *)
  current_duplicate : bool ref;
  puts_suppressed : int ref;
  put_applies : (int, int) Hashtbl.t; (* request id -> put applications *)
  retry_cache : (int, Workload.Spec.op) Hashtbl.t; (* in-flight id -> op *)
}

let store t = t.store

let pool t = t.pool

(* Read a key payload out of a request: the handler streams over the key
   bytes (it must hash them), charged to App. *)
let key_string ?cpu (p : Wire.Payload.t) =
  let v = Wire.Payload.view p in
  (match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:v.Mem.View.addr
        ~len:v.Mem.View.len);
  Mem.View.to_string v

let handle_get t ~cpu req resp =
  List.iter
    (fun v ->
      match v with
      | Wire.Dyn.Payload p -> (
          let key = key_string ~cpu p in
          match Kvstore.Store.get ~cpu t.store ~key with
          | Some value ->
              List.iter
                (fun buf ->
                  let payload =
                    t.backend.Backend.wrap ~cpu t.rig.Rig.server_tr
                      (Mem.Pinned.Buf.view buf)
                  in
                  Wire.Dyn.append resp "vals" (Wire.Dyn.Payload payload))
                (Kvstore.Store.buffers value)
          | None -> ())
      | _ -> ())
    (Wire.Dyn.get_list req "keys")

let handle_get_index t ~cpu req resp =
  match (Wire.Dyn.get_list req "keys", Wire.Dyn.get_int req "index") with
  | [ Wire.Dyn.Payload p ], Some index -> (
      let key = key_string ~cpu p in
      match Kvstore.Store.get ~cpu t.store ~key with
      | Some (Kvstore.Store.Vector arr) when Int64.to_int index < Array.length arr
        ->
          let buf = arr.(Int64.to_int index) in
          let payload =
            t.backend.Backend.wrap ~cpu t.rig.Rig.server_tr
              (Mem.Pinned.Buf.view buf)
          in
          Wire.Dyn.append resp "vals" (Wire.Dyn.Payload payload)
      | Some _ | None -> ())
  | _ -> ()

let handle_put t ~cpu req resp =
  ignore resp;
  match Wire.Dyn.get_list req "keys" with
  | [ Wire.Dyn.Payload kp ] ->
      let key = key_string ~cpu kp in
      (* Allocate-and-swap: copy the incoming bytes into fresh pinned
         buffers; never touch the old value in place. *)
      let bufs =
        List.filter_map
          (fun v ->
            match v with
            | Wire.Dyn.Payload p -> (
                let src = Wire.Payload.view p in
                match
                  Mem.Pinned.Buf.alloc ~cpu ~site:"Kv_app.put_value" t.pool
                    ~len:src.Mem.View.len
                with
                | buf ->
                    Mem.Pinned.Buf.blit_from ~cpu ~site:"Kv_app.put_value" buf
                      ~src ~dst_off:0;
                    Some buf
                | exception Mem.Pinned.Out_of_memory _ ->
                    (* Pool churn exhausted the class: drop the put, as a
                       cache would under eviction pressure. *)
                    None)
            | _ -> None)
          (Wire.Dyn.get_list req "vals")
      in
      (match bufs with
      | [] -> ()
      | [ one ] -> Kvstore.Store.put ~cpu t.store ~key (Kvstore.Store.Single one)
      | many -> Kvstore.Store.put ~cpu t.store ~key (Kvstore.Store.Linked many))
  | _ -> ()

(* The server side is the generated [Kv_rpc.Kv_service] skeleton: the
   request parses once (via the backend), the duplicate witness runs
   before dispatch for every id-carrying request (gets are idempotent and
   re-executed; the put row reads the stashed verdict), then the method
   word dispatches through the branchless table — the skeleton echoes the
   id into the pooled response and tail-sends it, unknown ops included. *)
let handler t srv ~src buf =
  let cpu = t.rig.Rig.cpu in
  let tr = t.rig.Rig.server_tr in
  let req = t.backend.Backend.recv ~cpu tr Proto.req buf in
  t.current_duplicate :=
    (match (t.dedup, Wire.Dyn.get_int req "id") with
    | Some d, Some id ->
        Net.Dedup.witness d ~src ~id:(Int64.to_int id) = `Duplicate
    | _ -> false);
  Kv_rpc.Kv_service.serve_dyn srv ~src req;
  Wire.Dyn.release ~cpu req;
  Mem.Pinned.Buf.decr_ref ~cpu ~site:"Kv_app.handler_done" buf

let activate t =
  let cpu = t.rig.Rig.cpu in
  let tr = t.rig.Rig.server_tr in
  let srv =
    Kv_rpc.Kv_service.server
      ~send:(fun ~dst resp -> t.backend.Backend.send ~cpu tr ~dst resp)
      ()
  in
  Kv_rpc.Kv_service.on_get srv
    ~dyn:(fun ~src:_ req resp -> handle_get t ~cpu req resp);
  Kv_rpc.Kv_service.on_get_index srv
    ~dyn:(fun ~src:_ req resp -> handle_get_index t ~cpu req resp);
  (* A duplicate put is suppressed and answered with the id-only ack the
     retry layer needs; first applications are recorded for the
     exactly-once audit. *)
  Kv_rpc.Kv_service.on_put srv
    ~dyn:(fun ~src:_ req resp ->
      if !(t.current_duplicate) then incr t.puts_suppressed
      else begin
        (match (t.dedup, Wire.Dyn.get_int req "id") with
        | Some _, Some id ->
            let id = Int64.to_int id in
            Hashtbl.replace t.put_applies id
              (1 + Option.value (Hashtbl.find_opt t.put_applies id) ~default:0)
        | _ -> ());
        handle_put t ~cpu req resp
      end);
  Loadgen.Server.set_handler t.rig.Rig.server (fun ~src buf ->
      handler t srv ~src buf);
  t

let install rig ~backend ~workload =
  let pool =
    Rig.data_pool rig ~name:("kv-" ^ workload.Workload.Spec.name)
      ~classes:workload.Workload.Spec.pool_classes
  in
  let store =
    Kvstore.Store.create rig.Rig.space ~name:workload.Workload.Spec.name
      ~capacity:workload.Workload.Spec.store_capacity
  in
  workload.Workload.Spec.populate store ~pool;
  activate
    {
      rig;
      backend;
      workload;
      store;
      pool;
      client_rng = Sim.Rng.split rig.Rig.rng;
      req_scratch = Wire.Dyn.create Proto.req;
      dedup = None;
      current_duplicate = ref false;
      puts_suppressed = ref 0;
      put_applies = Hashtbl.create 256;
      retry_cache = Hashtbl.create 256;
    }

let switch_backend t backend = activate { t with backend }

let enable_resilience t ~dedup = t.dedup <- Some dedup

let dedup t = t.dedup

let puts_suppressed t = !(t.puts_suppressed)

let put_apply_counts t =
  Hashtbl.fold (fun id n acc -> (id, n) :: acc) t.put_applies []
  |> List.sort compare

(* --- Client side (uncharged) ------------------------------------------ *)

let send_op t op client ~dst ~id =
  let space = t.rig.Rig.space in
  let msg = t.req_scratch in
  Wire.Dyn.clear msg;
  Wire.Dyn.set_int msg "id" (Int64.of_int id);
  (match op with
  | Workload.Spec.Get { keys } ->
      Wire.Dyn.set_int msg "op" Proto.op_get;
      List.iter
        (fun key ->
          Wire.Dyn.append msg "keys"
            (Wire.Dyn.Payload (Wire.Payload.of_string space key)))
        keys
  | Workload.Spec.Get_index { key; index } ->
      Wire.Dyn.set_int msg "op" Proto.op_get_index;
      Wire.Dyn.append msg "keys"
        (Wire.Dyn.Payload (Wire.Payload.of_string space key));
      Wire.Dyn.set_int msg "index" (Int64.of_int index)
  | Workload.Spec.Put { key; sizes } ->
      Wire.Dyn.set_int msg "op" Proto.op_put;
      Wire.Dyn.append msg "keys"
        (Wire.Dyn.Payload (Wire.Payload.of_string space key));
      List.iter
        (fun n ->
          Wire.Dyn.append msg "vals"
            (Wire.Dyn.Payload
               (Wire.Payload.of_string space (Workload.Spec.filler (max 1 n)))))
        sizes);
  t.backend.Backend.send client ~dst msg;
  (* Client-side arenas hold per-request copies; recycle them. *)
  Mem.Arena.reset (Net.Transport.arena client)

let send_next t client ~dst ~id =
  match t.dedup with
  | None -> send_op t (t.workload.Workload.Spec.next t.client_rng) client ~dst ~id
  | Some _ ->
      (* Resilience mode: a retransmission must replay the same op the id
         was first sent with, not draw a fresh one from the workload. *)
      let op =
        match Hashtbl.find_opt t.retry_cache id with
        | Some op -> op
        | None ->
            let op = t.workload.Workload.Spec.next t.client_rng in
            Hashtbl.replace t.retry_cache id op;
            op
      in
      send_op t op client ~dst ~id

let parse_id t buf =
  let msg = t.backend.Backend.recv (List.hd t.rig.Rig.clients) Proto.resp buf in
  let id =
    match Wire.Dyn.get_int msg "id" with
    | Some id -> Int64.to_int id
    | None -> -1
  in
  Wire.Dyn.release msg;
  List.iter
    (fun c -> Mem.Arena.reset (Net.Transport.arena c))
    t.rig.Rig.clients;
  Hashtbl.remove t.retry_cache id;
  id
