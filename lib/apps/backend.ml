type t = {
  name : string;
  (* RX discipline: [true] routes servers through the in-place
     [Wire.Reader] path (validate once, access fields in the receive
     buffer); [false] materializes a [Wire.Dyn] via [recv]. Only the
     Cornflakes wire format supports in-place access; baselines always
     parse-into-heap. *)
  zc_rx : bool;
  send :
    ?cpu:Memmodel.Cpu.t -> Net.Transport.t -> dst:int -> Wire.Dyn.t -> unit;
  recv :
    ?cpu:Memmodel.Cpu.t ->
    Net.Transport.t ->
    Schema.Desc.message ->
    Mem.Pinned.Buf.t ->
    Wire.Dyn.t;
  wrap :
    ?cpu:Memmodel.Cpu.t -> Net.Transport.t -> Mem.View.t -> Wire.Payload.t;
}

let cornflakes ?(config = Cornflakes.Config.default) ?(zc_rx = true) () =
  {
    name =
      (if config = Cornflakes.Config.default then "cornflakes"
       else if config = Cornflakes.Config.all_copy then "cornflakes-copy"
       else if config = Cornflakes.Config.all_zero_copy then "cornflakes-zc"
       else
         Printf.sprintf "cornflakes-t%d%s" config.Cornflakes.Config.zero_copy_threshold
           (if config.Cornflakes.Config.serialize_and_send then "" else "-nosas"))
      ^ (if zc_rx then "" else "-copyrx");
    zc_rx;
    send = (fun ?cpu tr ~dst msg -> Cornflakes.Send.send_via ?cpu config tr ~dst msg);
    recv =
      (fun ?cpu _tr desc buf ->
        Cornflakes.Send.deserialize ?cpu Proto.schema desc buf);
    wrap =
      (fun ?cpu tr view ->
        Cornflakes.Cf_ptr.make ?cpu config (Net.Transport.endpoint tr) view);
  }

let literal_wrap ?cpu _tr view =
  ignore cpu;
  Wire.Payload.Literal view

(* Setting a bytes field on a Protobuf struct copies the data into the
   message object (paper section 8: "applications still move data from
   in-memory data structures to Protobuf objects"); SerializeTo* then moves
   it again into the output buffer. The first copy is the cold one. *)
let protobuf_wrap ?cpu tr view =
  Wire.Payload.Copied (Mem.Arena.copy_in ?cpu (Net.Transport.arena tr) view)

let protobuf =
  {
    name = "protobuf";
    zc_rx = false;
    send = (fun ?cpu tr ~dst msg -> Baselines.Protobuf.serialize_and_send ?cpu tr ~dst msg);
    recv =
      (fun ?cpu tr desc buf ->
        Baselines.Protobuf.deserialize ?cpu (Net.Transport.endpoint tr)
          Proto.schema desc buf);
    wrap = protobuf_wrap;
  }

let flatbuffers =
  {
    name = "flatbuffers";
    zc_rx = false;
    send = (fun ?cpu tr ~dst msg -> Baselines.Flatbuf.serialize_and_send ?cpu tr ~dst msg);
    recv =
      (fun ?cpu _tr desc buf ->
        Baselines.Flatbuf.deserialize ?cpu Proto.schema desc buf);
    wrap = literal_wrap;
  }

let capnproto =
  {
    name = "capnproto";
    zc_rx = false;
    send = (fun ?cpu tr ~dst msg -> Baselines.Capnp.serialize_and_send ?cpu tr ~dst msg);
    recv =
      (fun ?cpu _tr desc buf ->
        Baselines.Capnp.deserialize ?cpu Proto.schema desc buf);
    wrap = literal_wrap;
  }

let all = [ cornflakes (); protobuf; flatbuffers; capnproto ]

let by_name name =
  match List.find_opt (fun b -> b.name = name) all with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Backend.by_name: %s" name)
