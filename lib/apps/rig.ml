type t = {
  engine : Sim.Engine.t;
  fabric : Net.Fabric.t;
  space : Mem.Addr_space.t;
  registry : Mem.Registry.t;
  cpu : Memmodel.Cpu.t;
  server_ep : Net.Endpoint.t;
  server : Loadgen.Server.t;
  clients : Net.Endpoint.t list;
  rng : Sim.Rng.t;
}

let server_id = 1

(* Process-wide seed used when [create] is not given ?seed explicitly; the
   bench harness's --seed flag sets it so whole experiment runs replay. *)
let default_seed = ref 0xc0ffee

let set_default_seed s = default_seed := s

let create ?(params = Memmodel.Params.default) ?shared_l3 ?nic_model
    ?(n_clients = 16) ?seed ?server_config () =
  let seed = match seed with Some s -> s | None -> !default_seed in
  let engine = Sim.Engine.create () in
  (* Under RefSan, every rig reports leaks when its event queue drains. *)
  if Sanitizer.Refsan.is_enabled () then
    Sim.Engine.add_quiesce_hook engine (fun () ->
        Sanitizer.Report.print_quiesce ());
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let cpu = Memmodel.Cpu.create ?shared_l3 params in
  let server_config =
    match (server_config, nic_model) with
    | Some c, _ -> c
    | None, Some nic_model -> { Net.Endpoint.default_config with nic_model }
    | None, None -> Net.Endpoint.default_config
  in
  let server_ep =
    Net.Endpoint.create ~cpu ~config:server_config fabric registry
      ~id:server_id
  in
  let server = Loadgen.Server.create server_ep cpu in
  let clients =
    List.init n_clients (fun i ->
        Net.Endpoint.create fabric registry ~id:(100 + i))
  in
  {
    engine;
    fabric;
    space;
    registry;
    cpu;
    server_ep;
    server;
    clients;
    rng = Sim.Rng.create ~seed;
  }

let data_pool t ~name ~classes =
  let pool = Mem.Pinned.Pool.create t.space ~name ~classes in
  Mem.Registry.register t.registry pool;
  pool

let warm t ~requests ~send ~parse_id =
  if requests > 0 then begin
    let duration = max 1_000_000 (requests * 3_000) in
    let (_ : Loadgen.Driver.result) =
      Loadgen.Driver.closed_loop t.engine ~clients:[ List.hd t.clients ]
        ~server:server_id ~outstanding:4 ~duration_ns:duration ~warmup_ns:0
        ~rng:t.rng ~send ~parse_id
    in
    ()
  end
