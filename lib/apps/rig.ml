type transport_kind = [ `Udp | `Tcp ]

type t = {
  engine : Sim.Engine.t;
  fabric : Net.Fabric.t;
  space : Mem.Addr_space.t;
  registry : Mem.Registry.t;
  cpu : Memmodel.Cpu.t;
  server_ep : Net.Endpoint.t;
  server_tr : Net.Transport.t;
  server : Loadgen.Server.t;
  clients : Net.Transport.t list;
  transport_kind : transport_kind;
  rng : Sim.Rng.t;
}

let server_id = 1

(* Process-wide default datapath ([`Udp] unless the CLI's --transport flag
   raises it); [create ?transport] overrides per rig. *)
let transport_ref : transport_kind Atomic.t = Atomic.make `Udp

let set_default_transport k = Atomic.set transport_ref k

let default_transport () = Atomic.get transport_ref

let transport_kind_name = function `Udp -> "udp" | `Tcp -> "tcp"

(* The datapath choice is a per-endpoint view: UDP uses the endpoint's
   cached transport; TCP attaches a stack over the endpoint's receive
   path (connections open lazily, or explicitly during warmup via
   [Transport.connect]). Shared with multi-endpoint topologies (lib/cluster)
   that build their own endpoint sets. *)
let transport_for ~kind ep =
  match kind with
  | `Udp -> Net.Endpoint.transport ep
  | `Tcp -> Tcp.transport (Tcp.Stack.attach ep)

(* Process-wide seed used when [create] is not given ?seed explicitly; the
   bench harness's --seed flag sets it so whole experiment runs replay. *)
(* Atomic: the harness sets it once at startup; worker domains read it. *)
let seed_ref = Atomic.make 0xc0ffee

let set_default_seed s = Atomic.set seed_ref s

let default_seed () = Atomic.get seed_ref

let create ?(params = Memmodel.Params.default) ?shared_l3 ?nic_model
    ?(n_clients = 16) ?seed ?server_config ?transport () =
  let seed = match seed with Some s -> s | None -> Atomic.get seed_ref in
  let transport_kind =
    match transport with Some k -> k | None -> Atomic.get transport_ref
  in
  let engine = Sim.Engine.create () in
  (* Under RefSan, every rig reports leaks when its event queue drains. *)
  if Sanitizer.Refsan.is_enabled () then
    Sim.Engine.add_quiesce_hook engine (fun () ->
        Sanitizer.Report.print_quiesce ());
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let cpu = Memmodel.Cpu.create ?shared_l3 params in
  let server_config =
    match (server_config, nic_model) with
    | Some c, _ -> c
    | None, Some nic_model -> { Net.Endpoint.default_config with nic_model }
    | None, None -> Net.Endpoint.default_config
  in
  let server_ep =
    Net.Endpoint.create ~cpu ~config:server_config fabric registry
      ~id:server_id
  in
  let as_transport ep = transport_for ~kind:transport_kind ep in
  let server_tr = as_transport server_ep in
  let server = Loadgen.Server.create server_tr cpu in
  let clients =
    List.init n_clients (fun i ->
        as_transport (Net.Endpoint.create fabric registry ~id:(100 + i)))
  in
  {
    engine;
    fabric;
    space;
    registry;
    cpu;
    server_ep;
    server_tr;
    server;
    clients;
    transport_kind;
    rng = Sim.Rng.create ~seed;
  }

let endpoints t = t.server_ep :: List.map Net.Transport.endpoint t.clients

(* Recover every NIC's lost completions (releasing stuck ring slots,
   segment references, and RefSan holds); returns descriptors recovered.
   The reliability layer calls this periodically while requests are
   outstanding; harnesses call it once more before quiescing — the
   "driver shutdown reaps the TX ring" step. *)
let reap_lost t =
  List.fold_left
    (fun acc ep -> acc + Nic.Device.reap_lost (Net.Endpoint.nic ep))
    0 (endpoints t)

(* Wire a Faultline injector into every layer of the rig: the fabric
   consults it per packet, each NIC per CQE (scoped by endpoint id), the
   server per request slot, and arena-exhaustion windows are scheduled
   against the matching endpoints' arenas. *)
let inject_faults t inj =
  Net.Fabric.set_injector t.fabric (Some inj);
  List.iter
    (fun ep ->
      Nic.Device.set_completion_fault (Net.Endpoint.nic ep)
        (Some
           (fun ~now ->
             Faults.Injector.completion_decision inj ~now ~ep:(Net.Endpoint.id ep))))
    (endpoints t);
  Loadgen.Server.set_service_fault t.server
    (Some (fun ~now -> Faults.Injector.service_stall inj ~now ~ep:server_id));
  let now = Sim.Engine.now t.engine in
  List.iter
    (fun (scope, soft, from_ns, until_ns) ->
      let targets =
        List.filter
          (fun ep ->
            match scope with
            | Faults.Plan.Anywhere -> true
            | Faults.Plan.Endpoint e -> Net.Endpoint.id ep = e)
          (endpoints t)
      in
      List.iter
        (fun ep ->
          let arena = Net.Endpoint.arena ep in
          Sim.Engine.schedule t.engine ~after:(max 0 (from_ns - now)) (fun () ->
              Mem.Arena.set_soft_capacity arena (Some soft));
          if until_ns < max_int then
            Sim.Engine.schedule t.engine ~after:(max 0 (until_ns - now)) (fun () ->
                Mem.Arena.set_soft_capacity arena None))
        targets)
    (Faults.Injector.arena_windows inj)

let clear_faults t =
  Net.Fabric.set_injector t.fabric None;
  List.iter
    (fun ep ->
      Nic.Device.set_completion_fault (Net.Endpoint.nic ep) None;
      Mem.Arena.set_soft_capacity (Net.Endpoint.arena ep) None)
    (endpoints t);
  Loadgen.Server.set_service_fault t.server None

let data_pool t ~name ~classes =
  let pool = Mem.Pinned.Pool.create t.space ~name ~classes in
  Mem.Registry.register t.registry pool;
  pool

let warm t ~requests ~send ~parse_id =
  if requests > 0 then begin
    let duration = max 1_000_000 (requests * 3_000) in
    let (_ : Loadgen.Driver.result) =
      Loadgen.Driver.closed_loop t.engine ~clients:[ List.hd t.clients ]
        ~server:server_id ~outstanding:4 ~duration_ns:duration ~warmup_ns:0
        ~rng:t.rng ~send ~parse_id
    in
    ()
  end
