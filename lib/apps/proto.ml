let schema_text =
  {|
  syntax = "proto3";
  // Request sent by clients of the custom key-value store.
  message Req {
    uint64 id = 1;
    uint32 op = 2;
    repeated bytes keys = 3;
    uint32 index = 4;
    repeated bytes vals = 5;
  }
  // Response carrying the queried values (paper Listing 1's GetM).
  message Resp {
    uint64 id = 1;
    repeated bytes vals = 2;
  }
  |}

let schema = Schema.Parser.parse schema_text

let req = Schema.Desc.message schema "Req"

let resp = Schema.Desc.message schema "Resp"

let op_get = 0L

let op_put = 1L

let op_get_index = 2L

(* Field indices for the in-place [Wire.Reader] accessors (schema order). *)
let req_id = Schema.Desc.field_index req "id"

let req_op = Schema.Desc.field_index req "op"

let req_keys = Schema.Desc.field_index req "keys"

let req_index = Schema.Desc.field_index req "index"

let req_vals = Schema.Desc.field_index req "vals"

let resp_id = Schema.Desc.field_index resp "id"

let resp_vals = Schema.Desc.field_index resp "vals"
