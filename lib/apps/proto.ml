(* The kv protocol's stable alias surface. The schema itself lives in
   [kv.proto], compiled (and committed) as the generated [Kv_rpc] module;
   this module re-exports the descriptors, the op-tag words and the
   in-place field indices so existing call sites keep one name for each.

   The op tags are the schema-declared method ids of the [Kv] service —
   one source of truth for the store, the sharded cluster and the load
   drivers, enforced by the golden/CI regeneration of [kv_rpc.ml]. *)

let schema = Kv_rpc.schema

let req = Kv_rpc.Req.desc

let resp = Kv_rpc.Resp.desc

(* Method-id words (the request envelope's [op] field). *)
let op_get = Kv_rpc.Kv_service.id_get

let op_put = Kv_rpc.Kv_service.id_put

let op_get_index = Kv_rpc.Kv_service.id_get_index

(* Field indices for the in-place [Wire.Reader] accessors (schema order). *)
let req_id = Kv_rpc.Kv_service.req_id

let req_op = Kv_rpc.Kv_service.req_op

let req_keys = Schema.Desc.field_index req "keys"

let req_index = Schema.Desc.field_index req "index"

let req_vals = Schema.Desc.field_index req "vals"

let resp_id = Kv_rpc.Kv_service.resp_id

let resp_vals = Schema.Desc.field_index resp "vals"
