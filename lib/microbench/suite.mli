(** Bechamel microbenchmarks of the serializer hot paths, shared by
    `bench/main.exe` and the `cornflakes bench` subcommand.

    [run] prints the table and returns the results; ns/op comes from
    Bechamel (always measured serially), minor words/op from a counted
    [Gc.minor_words] loop (parallelized across pool jobs when the
    process-wide [Par.Pool.default_jobs] width is > 1 — each job measures
    one benchmark on a fresh suite instance, so results are identical at
    any width). *)

type result = {
  r_name : string;
  r_tracked : bool;
  mutable ns_per_op : float;
  words_per_op : float;
}

(** [rounds] (default 1) repeats the wall-clock passes and keeps each
    benchmark's minimum ns/op estimate — timing noise is strictly
    additive, so the min is the stable statistic to gate against a
    relative tolerance. Words/op is deterministic and measured once. *)
val run : ?rounds:int -> quick:bool -> seed:int -> unit -> result list

val json_file : string

(** Write [json_file] in the committed-baseline schema. *)
val write_json : result list -> unit

(** [(name, ns_per_op, minor_words_per_op)] triples from a baseline file
    (dependency-free scanner). *)
val parse_baseline : string -> (string * float * float) list

(** Report ns/op deltas vs the baseline and exit 1 if any tracked
    benchmark's minor words/op regressed more than 20%, or its ns/op
    regressed more than 20% after dividing out the median now/base ratio
    across tracked benches (machine-speed normalization). *)
val gate_against_baseline : result list -> baseline_path:string -> unit
