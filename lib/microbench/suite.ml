(* Bechamel microbenchmarks of the real serializer hot paths: wall-clock
   ns/op of this OCaml implementation plus minor-heap words/op from a
   counted loop around [Gc.minor_words]. Shared by `bench/main.exe` and
   the `cornflakes bench` subcommand.

   Parallelism: words/op is deterministic per benchmark (minor words are
   per-domain in OCaml 5), so with --jobs > 1 each benchmark's words loop
   runs as its own pool job over a *fresh* suite instance — the suite's
   shared scratch (one Addr_space, reused plan/writer) is not safe to
   share across domains. Bechamel's wall-clock section always runs
   serially: concurrent timing loops would contend for cores and corrupt
   the ns/op estimates. *)

(* One benchmark = a thunk measured two ways. [tracked] marks benchmarks
   whose words/op are gated against the committed baseline (words/op is
   deterministic; ns/op varies by machine and is reported, not gated). *)
type mb = { name : string; tracked : bool; fn : unit -> unit }

type result = {
  r_name : string;
  r_tracked : bool;
  mutable ns_per_op : float;
  words_per_op : float;
}

let words_per_op ~iters fn =
  for _ = 1 to max 100 (iters / 10) do
    fn ()
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    fn ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int iters

(* Hand-transcription of the writer [Codegen.Emit] folds for
   [Apps.Proto.resp] (uint64 id = 1; repeated bytes vals = 2) — the exact
   shape of the generated [Getresp.write_folded]. Top-level so passing it
   to [Format_.run]/[Send.send_planned] allocates nothing. *)
let resp_write_folded ~cpu plan w msg =
  if Wire.Dyn.present_count msg = 2 then begin
    Wire.Cursor.Writer.span w ~pos:0 ~len:24;
    Wire.Cursor.Writer.u32_at w ~pos:0 1;
    Wire.Cursor.Writer.u32_at w ~pos:4 0x3;
    (match Wire.Dyn.raw_field msg 0 with
    | Some (Wire.Dyn.Int v) -> Wire.Cursor.Writer.u64_at w ~pos:8 v
    | Some v -> Cornflakes.Format_.write_value_at ?cpu w plan v ~slot:8
    | None -> assert false);
    (match Wire.Dyn.raw_field msg 1 with
    | Some v -> Cornflakes.Format_.write_value_at ?cpu w plan v ~slot:16
    | None -> assert false)
  end
  else Cornflakes.Format_.write_msg_generic ?cpu w plan msg

(* The serialize-and-send loop: the paper's steady-state hot path. One
   pooled response object is cleared and rebuilt per op (one copied 64 B
   field, two zero-copy fields), sent through [Send.send_object] (or a
   folded writer via [Send.send_planned] when [write] is given), and the
   engine drained so NIC completions release the stack's references. *)
let make_send_loop ~pooled ?write () =
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let ep = Net.Endpoint.create fabric registry ~id:1 in
  let _peer = Net.Endpoint.create fabric registry ~id:2 in
  let pool =
    Mem.Pinned.Pool.create space ~name:"bench-send"
      ~classes:[ (64, 64); (512, 64); (2048, 64) ]
  in
  let value len =
    let b = Mem.Pinned.Buf.alloc ~site:"bench.value" pool ~len in
    Mem.Pinned.Buf.fill ~site:"bench.value" b (String.make len 'v');
    b
  in
  let b64 = value 64 and b512 = value 512 and b2048 = value 2048 in
  (* Views are stable for the life of the buffers; take them once. *)
  let v64 = Mem.Pinned.Buf.view b64
  and v512 = Mem.Pinned.Buf.view b512
  and v2048 = Mem.Pinned.Buf.view b2048 in
  let config = Cornflakes.Config.default in
  let scratch = Wire.Dyn.create Apps.Proto.resp in
  let build msg =
    Wire.Dyn.set_int msg "id" 7L;
    Wire.Dyn.set msg "vals"
      (Wire.Dyn.List
         [
           Wire.Dyn.Payload (Cornflakes.Cf_ptr.make config ep v64);
           Wire.Dyn.Payload (Cornflakes.Cf_ptr.make config ep v512);
           Wire.Dyn.Payload (Cornflakes.Cf_ptr.make config ep v2048);
         ])
  in
  fun () ->
    let msg =
      if pooled then begin
        Wire.Dyn.clear scratch;
        scratch
      end
      else Wire.Dyn.create Apps.Proto.resp
    in
    build msg;
    (match write with
    | None -> Cornflakes.Send.send_object config ep ~dst:2 msg
    | Some write ->
        Cornflakes.Send.send_planned config
          (Net.Endpoint.transport ep)
          ~dst:2 msg ~write);
    Sim.Engine.run_all engine;
    Mem.Arena.reset (Net.Endpoint.arena ep)

(* One generated-RPC round trip per op: the [call_get] stub stamps the
   call id and method word, sends through the folded writer, the
   generated [serve] skeleton dispatches on the server endpoint, and
   [deliver] routes the reply back to the pending call. The engine is
   drained and both egress arenas mass-reset per op — the same
   steady-state discipline as the serialize+send loops above. *)
let make_rpc_call_loop () =
  let module S = Apps.Kv_rpc.Kv_service in
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let cli = Net.Endpoint.create fabric registry ~id:1 in
  let srv_ep = Net.Endpoint.create fabric registry ~id:2 in
  let sink = ref 0 in
  let srv =
    S.server
      ~send:(fun ~dst resp ->
        Cornflakes.Send.send_object Cornflakes.Config.default srv_ep ~dst resp)
      ()
  in
  S.on_get srv ~reader:(fun ~src:_ r _resp ->
      let n = Wire.Reader.count r Apps.Proto.req_keys in
      for j = 0 to n - 1 do
        let off, len = Wire.Reader.elem_off_len r Apps.Proto.req_keys ~j in
        sink := !sink + off + len
      done);
  Net.Endpoint.set_rx srv_ep (fun ~src buf ->
      S.serve srv ~src buf;
      Mem.Pinned.Buf.decr_ref ~site:"bench.rpc" buf);
  let c = S.client (Net.Endpoint.transport cli) in
  Net.Endpoint.set_rx cli (fun ~src:_ buf ->
      S.deliver c buf;
      Mem.Pinned.Buf.decr_ref ~site:"bench.rpc" buf);
  let req = Apps.Kv_rpc.Req.create () in
  List.iter
    (fun j ->
      Apps.Kv_rpc.Req.add_keys_payload req
        (Wire.Payload.of_string space
           (Printf.sprintf "twitter:user:%013d:profile-%02d" j j)))
    [ 0; 1; 2; 3 ];
  fun () ->
    ignore (S.call_get c ~dst:2 req ~on_reply:(fun _ -> ()));
    Sim.Engine.run_all engine;
    Mem.Arena.reset (Net.Endpoint.arena cli);
    Mem.Arena.reset (Net.Endpoint.arena srv_ep)

let make_benchmarks ~seed () =
  let space = Mem.Addr_space.create () in
  (* Shared scratch: one Addr_space, payload strings and sample messages
     built once — so per-op numbers measure the serializer, not setup. *)
  let scratch = Bytes.create 16384 in
  let scratch_view =
    Mem.View.make
      ~addr:(Mem.Addr_space.reserve space ~bytes:16384)
      ~data:scratch ~off:0 ~len:16384
  in
  let payload_64 = String.make 64 'v'
  and payload_512 = String.make 512 'v'
  and payload_2048 = String.make 2048 'v' in
  let pool =
    Mem.Pinned.Pool.create space ~name:"bench"
      ~classes:[ (64, 64); (512, 64); (2048, 64); (16384, 64) ]
  in
  let pinned s =
    let b = Mem.Pinned.Buf.alloc ~site:"bench.micro" pool ~len:(String.length s) in
    Mem.Pinned.Buf.fill ~site:"bench.micro" b s;
    b
  in
  (* Hybrid message: one copied-size field, two zero-copy fields. *)
  let msg = Wire.Dyn.create Apps.Proto.resp in
  Wire.Dyn.set_int msg "id" 7L;
  Wire.Dyn.append msg "vals"
    (Wire.Dyn.Payload (Wire.Payload.of_string space payload_64));
  List.iter
    (fun s ->
      Wire.Dyn.append msg "vals"
        (Wire.Dyn.Payload (Wire.Payload.Zero_copy (pinned s))))
    [ payload_512; payload_2048 ];
  let lit_64 = Wire.Payload.of_string space payload_64
  and lit_512 = Wire.Payload.of_string space payload_512
  and lit_2048 = Wire.Payload.of_string space payload_2048 in
  (* protobuf round trip needs an endpoint arena; build a tiny rig. *)
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let registry = Mem.Registry.create space in
  let ep = Net.Endpoint.create fabric registry ~id:1 in
  let proto_len = Baselines.Protobuf.encoded_len msg in
  let proto_buf =
    let w = Wire.Cursor.Writer.create scratch_view in
    Baselines.Protobuf.encode w msg;
    pinned (Bytes.sub_string scratch 0 proto_len)
  in
  (* Reused-plan / reused-writer scratch for the "after" pairs. *)
  let plan = Cornflakes.Format_.create_plan () in
  let writer = Wire.Cursor.Writer.create scratch_view in
  let dyn_scratch = Wire.Dyn.create Apps.Proto.resp in
  let build_dyn m =
    Wire.Dyn.set_int m "id" 7L;
    Wire.Dyn.append m "vals" (Wire.Dyn.Payload lit_64);
    Wire.Dyn.append m "vals" (Wire.Dyn.Payload lit_512);
    Wire.Dyn.append m "vals" (Wire.Dyn.Payload lit_2048)
  in
  (* RX pair scratch: one response frame produced by a real send through
     the loopback fabric, then parsed per op — into a heap [Dyn] (the
     pre-reader receive path) vs validated once and read in place. The
     frame is a delivered RX-ring buffer held for the life of the suite. *)
  let rx_frame =
    let peer = Net.Endpoint.create fabric registry ~id:3 in
    let got = ref None in
    Net.Endpoint.set_rx peer (fun ~src:_ buf -> got := Some buf);
    (* A dedicated message: the send consumes one reference per zero-copy
       payload at NIC completion, so it must not share [msg]'s buffers. *)
    let m = Wire.Dyn.create Apps.Proto.resp in
    Wire.Dyn.set_int m "id" 7L;
    Wire.Dyn.append m "vals"
      (Wire.Dyn.Payload (Wire.Payload.of_string space payload_64));
    List.iter
      (fun s ->
        Wire.Dyn.append m "vals"
          (Wire.Dyn.Payload (Wire.Payload.Zero_copy (pinned s))))
      [ payload_512; payload_2048 ];
    Cornflakes.Send.send_object Cornflakes.Config.default ep ~dst:3 m;
    Sim.Engine.run_all engine;
    match !got with
    | Some b -> b
    | None -> failwith "microbench: loopback send delivered no frame"
  in
  let rx_reader = Wire.Reader.create Apps.Proto.resp in
  (* RPC dispatch scratch: one delivered GET request frame and a generated
     server skeleton with a reader handler registered for Get — per op the
     skeleton validates the frame once, echoes the id, dispatches the
     method word through the branchless table and tail-sends into a sink. *)
  let rpc_frame =
    let peer = Net.Endpoint.create fabric registry ~id:4 in
    let got = ref None in
    Net.Endpoint.set_rx peer (fun ~src:_ buf -> got := Some buf);
    let m = Wire.Dyn.create Apps.Proto.req in
    Wire.Dyn.set_int m "id" 7L;
    Wire.Dyn.set_int m "op" Apps.Proto.op_get;
    List.iter
      (fun j ->
        Wire.Dyn.append m "keys"
          (Wire.Dyn.Payload
             (Wire.Payload.of_string space
                (Printf.sprintf "twitter:user:%013d:profile-%02d" j j))))
      [ 0; 1; 2; 3 ];
    Cornflakes.Send.send_object Cornflakes.Config.default ep ~dst:4 m;
    Sim.Engine.run_all engine;
    match !got with
    | Some b -> b
    | None -> failwith "microbench: loopback send delivered no rpc frame"
  in
  let rpc_sink = ref 0 in
  let rpc_srv =
    Apps.Kv_rpc.Kv_service.server ~send:(fun ~dst:_ _ -> incr rpc_sink) ()
  in
  Apps.Kv_rpc.Kv_service.on_get rpc_srv ~reader:(fun ~src:_ r _resp ->
      let n = Wire.Reader.count r Apps.Proto.req_keys in
      for j = 0 to n - 1 do
        let off, len = Wire.Reader.elem_off_len r Apps.Proto.req_keys ~j in
        rpc_sink := !rpc_sink + off + len
      done);
  (* RX delivery: a dedicated device + receive ring; each op posts one
     1024 B frame into the ring and releases it straight back (refcount
     0 -> recycle), the steady-state delivery cost. *)
  let rx_nic = Nic.Device.create (Sim.Engine.create ()) ~model:Nic.Model.mellanox_cx6 in
  let rx_ring =
    Mem.Pinned.Pool.create space ~name:"bench-rx-ring" ~classes:[ (2048, 64) ]
  in
  let rxq = Nic.Device.attach_rx rx_nic rx_ring in
  let rx_wire = Bytes.make 1024 'r' in
  (* Arena pair: classic bump-and-mass-reset vs free-list recycling. *)
  let arena_space = Mem.Addr_space.create () in
  let arena = Mem.Arena.create arena_space ~capacity:(1 lsl 16) in
  let arena_src = Mem.View.of_string arena_space payload_512 in
  (* NIC doorbell pair: 8 single-SGE descriptors, one doorbell each vs one
     batched doorbell. No fabric: the default on_wire hook releases each
     egress frame straight back to the device's pool. *)
  let nic_engine = Sim.Engine.create () in
  let nic = Nic.Device.create nic_engine ~model:Nic.Model.mellanox_cx6 in
  let nic_descs =
    List.init 8 (fun _ ->
        { Nic.Device.segments = [ pinned payload_512 ]; on_complete = ignore })
  in
  (* The same batch through the reusable-descriptor path: refill a
     preallocated txd array in place, no per-send list. *)
  let nic_bufs = Array.init 8 (fun _ -> pinned payload_512) in
  let nic_txds = Array.make 8 None in
  let zipf = Sim.Dist.Zipf.create ~n:1_000_000 ~s:0.99 in
  let zipf_rng = Sim.Rng.create ~seed in
  let cache_cpu = Memmodel.Cpu.create Memmodel.Params.default in
  [
    {
      name = "protobuf-encode";
      tracked = true;
      fn =
        (fun () ->
          let w = Wire.Cursor.Writer.create scratch_view in
          Baselines.Protobuf.encode w msg);
    };
    {
      name = "protobuf-decode";
      tracked = true;
      fn =
        (fun () ->
          let m =
            Baselines.Protobuf.deserialize ep Apps.Proto.schema Apps.Proto.resp
              proto_buf
          in
          Mem.Arena.reset (Net.Endpoint.arena ep);
          ignore m);
    };
    (* Paired: plan built fresh per message vs refilled in place. *)
    {
      name = "cf-measure-fresh-plan";
      tracked = true;
      fn = (fun () -> ignore (Cornflakes.Format_.measure msg));
    };
    {
      name = "cf-measure-reused-plan";
      tracked = true;
      fn = (fun () -> Cornflakes.Format_.measure_into plan msg);
    };
    (* Paired: full header+copied emit, fresh vs reused plan/writer. *)
    {
      name = "cf-write-fresh";
      tracked = true;
      fn =
        (fun () ->
          let p = Cornflakes.Format_.measure msg in
          let w = Wire.Cursor.Writer.create scratch_view in
          Cornflakes.Format_.write p w msg);
    };
    {
      name = "cf-write-reused";
      tracked = true;
      fn =
        (fun () ->
          Cornflakes.Format_.measure_into plan msg;
          Wire.Cursor.Writer.reset writer scratch_view;
          Cornflakes.Format_.write plan writer msg);
    };
    (* The codegen-specialized writer body (literal layout, one hoisted
       span) over the same message and reused plan/writer. *)
    {
      name = "cf-write-folded";
      tracked = true;
      fn =
        (fun () ->
          Cornflakes.Format_.measure_into plan msg;
          Wire.Cursor.Writer.reset writer scratch_view;
          Cornflakes.Format_.run plan writer msg ~write:resp_write_folded);
    };
    (* Paired: message object allocated per request vs pooled + cleared. *)
    {
      name = "dyn-build-fresh";
      tracked = true;
      fn = (fun () -> build_dyn (Wire.Dyn.create Apps.Proto.resp));
    };
    {
      name = "dyn-build-pooled";
      tracked = true;
      fn =
        (fun () ->
          Wire.Dyn.clear dyn_scratch;
          build_dyn dyn_scratch);
    };
    (* Paired: the same delivered frame deserialized into a heap Dyn (the
       copy-RX path: object graph + payload references per message) vs
       validated once and accessed in place (scalars are literal-offset
       loads, values stay in the receive buffer). *)
    {
      name = "cf-read-dyn";
      tracked = true;
      fn =
        (fun () ->
          let m =
            Cornflakes.Send.deserialize Apps.Proto.schema Apps.Proto.resp
              rx_frame
          in
          ignore (Wire.Dyn.get_int m "id");
          ignore (Wire.Dyn.get_list m "vals");
          Wire.Dyn.release m);
    };
    {
      name = "cf-read-inplace";
      tracked = true;
      fn =
        (fun () ->
          Wire.Reader.validate rx_reader rx_frame;
          ignore (Wire.Reader.get_u64 rx_reader Apps.Proto.resp_id);
          let n = Wire.Reader.count rx_reader Apps.Proto.resp_vals in
          for j = 0 to n - 1 do
            ignore (Wire.Reader.elem_off_len rx_reader Apps.Proto.resp_vals ~j)
          done);
    };
    (* One frame through the receive ring and straight back: DMA-visible
       buffer claimed from the ring pool, released at refcount 0. *)
    {
      name = "cf-rx-deliver";
      tracked = true;
      fn =
        (fun () ->
          match Nic.Device.rx_deliver rxq rx_wire ~off:0 ~len:1024 with
          | Some buf -> Mem.Pinned.Buf.decr_ref buf
          | None -> ());
    };
    (* Paired: arena chunk from the bump pointer (mass reset) vs recycled
       through the size-class free list. *)
    {
      name = "arena-copy-bump";
      tracked = true;
      fn =
        (fun () ->
          ignore (Mem.Arena.copy_in arena arena_src);
          Mem.Arena.reset arena);
    };
    {
      name = "arena-copy-recycled";
      tracked = true;
      fn =
        (fun () ->
          let c = Mem.Arena.copy_in arena arena_src in
          Mem.Arena.recycle arena c);
    };
    (* Tripled: one doorbell per descriptor, one batched doorbell over the
       list API, and the batched reusable-descriptor (txd) fast path. *)
    {
      name = "nic-post-per-send";
      tracked = false;
      fn =
        (fun () ->
          List.iter (fun d -> Nic.Device.post nic d) nic_descs;
          Sim.Engine.run_all nic_engine);
    };
    {
      name = "nic-post-batched-x8";
      tracked = false;
      fn =
        (fun () ->
          Nic.Device.post_batch nic nic_descs;
          Sim.Engine.run_all nic_engine);
    };
    {
      name = "nic-post-txd-batched-x8";
      tracked = true;
      fn =
        (fun () ->
          for i = 0 to 7 do
            let txd = Nic.Device.txd_acquire nic in
            Nic.Device.txd_push txd nic_bufs.(i);
            nic_txds.(i) <- Some txd
          done;
          let txds =
            Array.map
              (function Some t -> t | None -> assert false)
              nic_txds
          in
          Nic.Device.post_txd_batch nic txds ~n:8;
          Sim.Engine.run_all nic_engine);
    };
    (* Paired end-to-end: the acceptance benchmark. *)
    {
      name = "cf-serialize+send-unpooled";
      tracked = true;
      fn = make_send_loop ~pooled:false ();
    };
    {
      name = "cf-serialize+send";
      tracked = true;
      fn = make_send_loop ~pooled:true ();
    };
    (* The same steady-state loop through a generated-style [send]: the
       folded writer body via [Send.send_planned]. *)
    {
      name = "cf-serialize+send-folded";
      tracked = true;
      fn = make_send_loop ~pooled:true ~write:resp_write_folded ();
    };
    (* Generated service skeleton: validate-once + branchless method-table
       dispatch over the delivered GET request frame. *)
    {
      name = "cf-rpc-dispatch";
      tracked = true;
      fn =
        (fun () -> Apps.Kv_rpc.Kv_service.serve rpc_srv ~src:4 rpc_frame);
    };
    (* Generated client stub end to end: call_get stamps id + method word,
       folded-writer send, generated serve on the peer, deliver routes the
       reply to the pending call. *)
    {
      name = "cf-rpc-call-folded";
      tracked = true;
      fn = make_rpc_call_loop ();
    };
    {
      name = "zipf-sample";
      tracked = false;
      fn = (fun () -> ignore (Sim.Dist.Zipf.sample zipf zipf_rng));
    };
    {
      name = "cache-hierarchy-touch-2KB";
      tracked = false;
      fn =
        (fun () ->
          Memmodel.Cpu.stream cache_cpu Memmodel.Cpu.Copy ~addr:(1 lsl 22)
            ~len:2048);
    };
  ]

(* One bechamel pass over a fresh benchmark suite: returns the OLS ns/op
   estimates keyed by bechamel's "group/name" ids. *)
let ns_pass ~quick ~seed () =
  let open Bechamel in
  let benchmarks = make_benchmarks ~seed () in
  let tests =
    Test.make_grouped ~name:"micro"
      (List.map
         (fun b -> Test.make ~name:b.name (Staged.stage b.fn))
         benchmarks)
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let quota = if quick then 0.25 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols Toolkit.Instance.monotonic_clock raw

(* [rounds] repeats the wall-clock passes and keeps each benchmark's
   minimum estimate: timing noise is strictly additive (preemption, cache
   pollution from neighbors), so the min is the stable statistic — gating
   a single noisy sample against a ±20 % tolerance flags phantom
   regressions on small benches. Words/op is deterministic and measured
   once. *)
let run ?(rounds = 1) ~quick ~seed () =
  let open Bechamel in
  let benchmarks = make_benchmarks ~seed () in
  let iters = if quick then 5_000 else 20_000 in
  (* Words/op jobs: index into a fresh suite per job (the shared scratch
     above is single-domain); results merge back in suite order. *)
  let words =
    Par.Pool.map
      (fun i ->
        let fresh = make_benchmarks ~seed () in
        words_per_op ~iters (List.nth fresh i).fn)
      (Array.init (List.length benchmarks) Fun.id)
  in
  let results =
    List.mapi
      (fun i b ->
        {
          r_name = b.name;
          r_tracked = b.tracked;
          ns_per_op = Float.nan;
          words_per_op = words.(i);
        })
      benchmarks
  in
  for _ = 1 to max 1 rounds do
    let analyzed = ns_pass ~quick ~seed () in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] ->
            List.iter
              (fun r ->
                (* Bechamel keys are "group/name"; match on the suffix. *)
                let suffix = "/" ^ r.r_name in
                let nl = String.length name and sl = String.length suffix in
                if
                  name = r.r_name
                  || (nl >= sl && String.sub name (nl - sl) sl = suffix)
                then
                  r.ns_per_op <-
                    (if Float.is_nan r.ns_per_op then est
                     else Float.min r.ns_per_op est))
              results
        | _ -> ())
      analyzed
  done;
  print_endline
    "== Bechamel microbenchmarks (real wall-clock + minor words of this impl) ==";
  Printf.printf "  %-32s %12s %16s\n" "benchmark" "ns/op" "minor words/op";
  List.iter
    (fun r ->
      Printf.printf "  %-32s %12.1f %16.1f\n" r.r_name r.ns_per_op
        r.words_per_op)
    results;
  results

(* --- BENCH_micro.json + baseline gate ---------------------------------- *)

let json_file = "BENCH_micro.json"

let write_json results =
  let oc = open_out json_file in
  Printf.fprintf oc "{\n  \"schema\": \"cornflakes-bench-micro/1\",\n";
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length results in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": %S, \"tracked\": %b, \"ns_per_op\": %.1f, \
         \"minor_words_per_op\": %.1f}%s\n"
        r.r_name r.r_tracked r.ns_per_op r.words_per_op
        (if i = n - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" json_file

(* Minimal scanner for the baseline file: pull (name, ns_per_op,
   minor_words_per_op) triples out of the benchmark objects without a JSON
   dependency. *)
let parse_baseline path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let entries = ref [] in
  let find_from sub pos =
    let sl = String.length sub in
    let rec go i =
      if i + sl > String.length text then None
      else if String.sub text i sl = sub then Some (i + sl)
      else go (i + 1)
    in
    go pos
  in
  let number_at vstart =
    let vend = ref vstart in
    while
      !vend < String.length text
      && (match text.[!vend] with
         | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
         | _ -> false)
    do
      incr vend
    done;
    (float_of_string (String.sub text vstart (!vend - vstart)), !vend)
  in
  let rec scan pos =
    match find_from "\"name\": \"" pos with
    | None -> ()
    | Some nstart -> (
        let nend = String.index_from text nstart '"' in
        let name = String.sub text nstart (nend - nstart) in
        let ns =
          match find_from "\"ns_per_op\": " nend with
          | None -> Float.nan
          | Some vstart -> fst (number_at vstart)
        in
        match find_from "\"minor_words_per_op\": " nend with
        | None -> ()
        | Some vstart ->
            let words, vend = number_at vstart in
            entries := (name, ns, words) :: !entries;
            scan vend)
  in
  scan 0;
  List.rev !entries

let gate_against_baseline results ~baseline_path =
  match parse_baseline baseline_path with
  | exception Sys_error msg ->
      Printf.eprintf "baseline %s unreadable: %s\n" baseline_path msg;
      exit 1
  | baseline ->
      let tolerance = 1.20 in
      let words_of name =
        List.find_map
          (fun (n, _, w) -> if n = name then Some w else None)
          baseline
      in
      let ns_of name =
        List.find_map
          (fun (n, ns, _) ->
            if n = name && not (Float.is_nan ns) then Some ns else None)
          baseline
      in
      (* ns/op deltas vs the baseline machine. Raw wall-clock depends on
         the host, so each tracked bench's now/base ratio is normalized by
         the median ratio across tracked benches before the +20% tolerance
         applies: a uniform machine-speed shift cancels out, one bench
         regressing against its peers does not. *)
      print_endline "\nns/op vs baseline (tracked benches gated, median-normalized):";
      List.iter
        (fun r ->
          match ns_of r.r_name with
          | Some base when base > 0.0 && not (Float.is_nan r.ns_per_op) ->
              Printf.printf "  %-32s %10.1f -> %10.1f (%+.0f%%)\n" r.r_name
                base r.ns_per_op
                (100.0 *. ((r.ns_per_op /. base) -. 1.0))
          | _ -> ())
        results;
      let ns_ratios =
        List.filter_map
          (fun r ->
            if not r.r_tracked then None
            else
              match ns_of r.r_name with
              | Some base when base > 0.0 && not (Float.is_nan r.ns_per_op) ->
                  Some (r.r_name, base, r.ns_per_op, r.ns_per_op /. base)
              | _ -> None)
          results
      in
      let ns_regressions =
        match ns_ratios with
        | [] -> []
        | _ ->
            let sorted =
              List.sort compare (List.map (fun (_, _, _, q) -> q) ns_ratios)
            in
            let median = List.nth sorted (List.length sorted / 2) in
            let median = if median > 0.0 then median else 1.0 in
            List.filter_map
              (fun (name, base, now, q) ->
                if q /. median > tolerance then Some (name, base, now)
                else None)
              ns_ratios
      in
      let regressions =
        List.filter_map
          (fun r ->
            if not r.r_tracked then None
            else
              match words_of r.r_name with
              | None -> None (* new benchmark: nothing to gate against *)
              | Some base ->
                  if r.words_per_op > (base *. tolerance) +. 1.0 then
                    Some (r.r_name, base, r.words_per_op)
                  else None)
          results
      in
      Printf.printf
        "\nbaseline gate (%s, words/op + normalized ns/op, +20%% tolerance): "
        baseline_path;
      if regressions = [] && ns_regressions = [] then print_endline "OK"
      else begin
        print_endline "FAIL";
        if regressions <> [] then begin
          print_endline "  minor words/op:";
          List.iter
            (fun (name, base, now) ->
              Printf.printf "  %-32s %10.1f -> %10.1f (%+.0f%%)\n" name base
                now
                (100.0 *. ((now /. base) -. 1.0)))
            regressions
        end;
        if ns_regressions <> [] then begin
          print_endline "  ns/op (median-normalized):";
          List.iter
            (fun (name, base, now) ->
              Printf.printf "  %-32s %10.1f -> %10.1f (%+.0f%%)\n" name base
                now
                (100.0 *. ((now /. base) -. 1.0)))
            ns_regressions
        end;
        exit 1
      end
