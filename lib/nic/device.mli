(** Simulated NIC device: TX descriptor ring + DMA/wire engine.

    The CPU-side cost of *posting* a send (writing ring entries, ringing the
    doorbell) is charged by the networking stack; this module models the
    device side: per-descriptor and per-gather-entry PCIe time, line-rate
    serialization, and completion delivery. Completions run the descriptor's
    callback, which is where the stack releases buffer references — i.e. the
    point until which zero-copy memory must stay alive. *)

type descriptor = {
  (* Gather list in wire order (length <= model.max_sge); each buffer holds
     a reference until completion. A bare buffer list — not a wrapper record
     per entry — so the stack's per-send descriptor build is allocation-free
     beyond the list itself. *)
  segments : Mem.Pinned.Buf.t list;
  on_complete : unit -> unit;
}

exception Too_many_segments of { requested : int; limit : int }

exception Ring_full

type t

(** Reusable transmit descriptor: a preallocated gather array refilled in
    place per send. Acquired from the device's free stack, filled with
    {!txd_push}, posted with {!post_txd} / {!post_txd_batch}, and recycled
    automatically when its completion delivers — so the steady-state send
    path builds no per-send segment lists. The poster may set a per-segment
    release function (one long-lived closure) via {!txd_set_release}; it
    runs for each segment when the completion fires, before the callback
    set by {!txd_set_done} (if any). *)
type txd

val create : Sim.Engine.t -> model:Model.t -> t

val model : t -> Model.t

(** [txd_acquire t] takes a descriptor from the free stack (or allocates a
    fresh one the first few times). The caller must eventually pass it to
    {!post_txd} / {!post_txd_batch}; descriptors return to the stack at
    completion. *)
val txd_acquire : t -> txd

(** [txd_push txd buf] appends a gather entry. The descriptor owns the
    caller's reference on [buf] until its release function runs. *)
val txd_push : txd -> Mem.Pinned.Buf.t -> unit

val txd_set_release : txd -> (Mem.Pinned.Buf.t -> unit) -> unit

val txd_set_done : txd -> (unit -> unit) -> unit

(** Number of gather entries pushed so far. *)
val txd_len : txd -> int

(** [post_txd t txd] — {!post} for a reusable descriptor. *)
val post_txd : t -> txd -> unit

(** [post_txd_batch t txds ~n] — {!post_batch} for reusable descriptors:
    posts the first [n] slots of [txds] under one doorbell. The slots are
    snapshotted before returning, so the caller may reuse the array for
    the next batch immediately. *)
val post_txd_batch : t -> txd array -> n:int -> unit

(** Egress frame handed to the {!set_on_wire} hook: the device's pooled
    payload snapshot. The consumer owns one reference and must call
    {!wire_release} exactly once per reference when it is done with the
    frame (after the last delivery for a fabric); {!wire_retain} takes an
    extra reference before duplicating delivery. The bytes window
    [{!wire_bytes} w][0 .. {!wire_len} w) is read-only and must not be
    stashed past release — the device recycles the buffer for a later
    packet. *)
type wire

(** Backing bytes of the frame; only the first {!wire_len} bytes are the
    packet (the buffer's capacity is rounded up for pooling). *)
val wire_bytes : wire -> Bytes.t

val wire_len : wire -> int

val wire_retain : wire -> unit

val wire_release : wire -> unit

(** [set_on_wire t f] registers the fabric hook: [f frame] is called when a
    packet's last bit leaves the NIC, with the gathered wire bytes. The
    default hook releases the frame immediately (dropped on the floor). *)
val set_on_wire : t -> (wire -> unit) -> unit

(** [post t desc] enqueues a send. Raises [Too_many_segments] if the gather
    list exceeds the model's SGE limit, [Ring_full] if the device backlog
    exceeds the ring size. Gathers the segment bytes (device DMA — not CPU
    time), transmits at line rate, then schedules [on_complete]. *)
val post : t -> descriptor -> unit

(** [post_batch t descs] enqueues the descriptors under a single doorbell:
    the first pays the full per-descriptor PCIe fetch, the rest only their
    per-SGE fetches, and completion callbacks are coalesced into one CQE
    event at the last packet's finish time. Packets still egress (and reach
    the fabric) at their individual finish times. Raises [Ring_full] if the
    whole batch does not fit. *)
val post_batch : t -> descriptor list -> unit

(** Number of descriptors queued but not yet completed. *)
val in_flight : t -> int

(** Receive queue: one per attached endpoint (a device shared across cores
    carries one rxq per core, like a multi-queue NIC under RSS). The ring
    is backed by a pinned pool: posting a receive buffer IS allocating from
    the pool, and a delivered buffer's slot returns to the ring only when
    its refcount reaches zero — outstanding [Wire.Rc_view]s each hold a
    reference, so held views keep ring slots pinned. *)
type rxq

(** [attach_rx ?cpu t pool] registers a receive ring backed by [pool].
    [cpu] receives the DDIO cache installs for delivered frames. *)
val attach_rx : ?cpu:Memmodel.Cpu.t -> t -> Mem.Pinned.Pool.t -> rxq

(** [rx_deliver q bytes ~off ~len] DMAs [bytes[off, off+len)] into a posted
    receive buffer and returns it with the delivery reference (refcount 1);
    the consumer must [decr_ref] when done (directly or by handing the last
    [Rc_view] back). [None] means RX ring overrun — no free buffer was
    posted — and the frame is dropped and counted. No CPU cycles are
    charged: the device does the write. *)
val rx_deliver : rxq -> Bytes.t -> off:int -> len:int -> Mem.Pinned.Buf.t option

val rxq_packets : rxq -> int

val rxq_bytes : rxq -> int

val rxq_dropped : rxq -> int

(** Deliveries (and views over them) the application still pins: ring
    slots that cannot serve new frames until their refcount hits zero. *)
val rx_outstanding : rxq -> int

(** Aggregates over every attached receive queue. *)
val rx_packets : t -> int

val rx_bytes : t -> int

val rx_dropped : t -> int

(** Fault injection: consulted once per CQE that is due ([post] CQEs
    cover one descriptor, [post_batch] CQEs the whole batch). [`Lose]
    stashes the completion — ring slots stay occupied and segment
    references (and RefSan holds) stay pinned until {!reap_lost};
    [`Delay d] delivers it [d] ns late. Egress is unaffected: the packet
    still reaches the fabric. *)
type completion_fault = now:int -> [ `Lose | `Delay of int ] option

val set_completion_fault : t -> completion_fault option -> unit

(** Deliver every stashed lost completion now (releasing ring slots,
    holds, and callbacks); returns how many descriptors were recovered.
    Models a driver's periodic TX-ring reap. *)
val reap_lost : t -> int

(** Descriptors whose CQE was injected as lost / delayed / later
    recovered by {!reap_lost}. *)
val lost_completions : t -> int

val delayed_completions : t -> int

val reaped_completions : t -> int

(** Total packets and payload bytes transmitted. *)
val tx_packets : t -> int

val tx_bytes : t -> int

(** Doorbell rings so far ([post] counts one each; [post_batch] one per
    batch). *)
val doorbells : t -> int
