type descriptor = {
  segments : Mem.Pinned.Buf.t list;
  on_complete : unit -> unit;
}

exception Too_many_segments of { requested : int; limit : int }

exception Ring_full

type completion_fault = now:int -> [ `Lose | `Delay of int ] option

(* Reusable transmit descriptor: a preallocated gather array refilled in
   place per send and recycled through the device's free stack once its
   completion delivers. The steady-state post path builds no per-send
   lists — segment refs land in [d_segs], RefSan hold tokens in the
   parallel [d_holds], and [d_release] (one long-lived closure, typically
   the endpoint's decr_ref) runs per segment at completion. *)
type txd = {
  mutable d_segs : Mem.Pinned.Buf.t array; (* first [d_n] slots live *)
  mutable d_n : int;
  mutable d_holds : int option array; (* RefSan holds, parallel to d_segs *)
  mutable d_release : Mem.Pinned.Buf.t -> unit;
  mutable d_done : unit -> unit;
}

let noop () = ()

let noop_release (_ : Mem.Pinned.Buf.t) = ()

let new_txd () =
  { d_segs = [||]; d_n = 0; d_holds = [||]; d_release = noop_release; d_done = noop }

(* Egress frame: the device's payload snapshot, pooled and recycled. The
   gather copy lands in [w_buf] (capacity rounded up so steady-state sends
   reuse one buffer instead of carving a fresh multi-KB block out of the
   major heap per packet — the allocation alone costs more than the copy).
   Ownership transfers to the [on_wire] consumer, who must call
   {!wire_release} exactly once per reference when the frame is finished
   (and {!wire_retain} before duplicating delivery). Consumers may read
   [w_buf.[0 .. w_len)] but never mutate or stash it past release. *)
type wire = {
  mutable w_buf : Bytes.t;
  mutable w_len : int;
  mutable w_refs : int;
  w_dev : t;
}

(* Receive queue: one per attached endpoint (a shared device carries one
   rxq per core, like a real multi-queue NIC under RSS). The ring is backed
   by a pinned pool — posting a receive buffer IS allocating from the pool,
   and the slot returns to the ring only when the delivered buffer's
   refcount reaches zero. Outstanding [Wire.Rc_view]s hold references, so
   [rx_outstanding] (live pool buffers) is exactly the number of deliveries
   the application still pins. *)
and rxq = {
  q_dev : t;
  q_pool : Mem.Pinned.Pool.t;
  q_cpu : Memmodel.Cpu.t option;
  mutable q_packets : int;
  mutable q_bytes : int;
  mutable q_dropped : int;
}

and t = {
  engine : Sim.Engine.t;
  model : Model.t;
  mutable rxqs : rxq list; (* newest first; aggregate stats sum these *)
  mutable on_wire : wire -> unit;
  mutable wire_free : wire list; (* recycled egress frames *)
  mutable wire_pooled : int;
  mutable busy_until : int; (* when the DMA/wire pipeline frees up *)
  mutable in_flight : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable doorbells : int;
  (* Descriptor free stack (grows by doubling, like the ring a driver
     preallocates): completed descriptors return here for reuse. *)
  mutable txd_free : txd array;
  mutable txd_top : int;
  (* Fault injection: a lost CQE leaves its descriptors' ring slots
     occupied and their segment references (and RefSan holds) pinned until
     [reap_lost] recovers them — exactly the hazard the paper's refcount
     discussion worries about. *)
  mutable completion_fault : completion_fault option;
  mutable lost : txd list;
  mutable lost_completions : int;
  mutable delayed_completions : int;
  mutable reaped_completions : int;
}

(* Ceiling on recycled frames: enough for every packet that can be in
   flight across fabric delays in practice, while bounding retained bytes
   if a consumer holds frames unusually long. *)
let wire_pool_cap = 64

let wire_bytes w = w.w_buf

let wire_len w = w.w_len

let wire_retain w = w.w_refs <- w.w_refs + 1

let wire_release w =
  w.w_refs <- w.w_refs - 1;
  if w.w_refs = 0 then begin
    let t = w.w_dev in
    if t.wire_pooled < wire_pool_cap then begin
      t.wire_free <- w :: t.wire_free;
      t.wire_pooled <- t.wire_pooled + 1
    end
  end

let wire_capacity_for len =
  let c = ref 256 in
  while !c < len do c := !c * 2 done;
  !c

let wire_acquire t len =
  match t.wire_free with
  | w :: rest when Bytes.length w.w_buf >= len ->
      (* Steady state: packets are near-constant size, so the head of the
         free list fits and the acquire is allocation-free. *)
      t.wire_free <- rest;
      t.wire_pooled <- t.wire_pooled - 1;
      w.w_len <- len;
      w.w_refs <- 1;
      w
  | free -> (
      (* Head too small: scan for any fitting frame before allocating. *)
      let rec take acc = function
        | [] -> None
        | w :: rest when Bytes.length w.w_buf >= len ->
            Some (w, List.rev_append acc rest)
        | w :: rest -> take (w :: acc) rest
      in
      match take [] free with
      | Some (w, rest) ->
          t.wire_free <- rest;
          t.wire_pooled <- t.wire_pooled - 1;
          w.w_len <- len;
          w.w_refs <- 1;
          w
      | None ->
          {
            w_buf = Bytes.create (wire_capacity_for len);
            w_len = len;
            w_refs = 1;
            w_dev = t;
          })

let create engine ~model =
  {
    engine;
    model;
    rxqs = [];
    on_wire = wire_release;
    wire_free = [];
    wire_pooled = 0;
    busy_until = 0;
    in_flight = 0;
    tx_packets = 0;
    tx_bytes = 0;
    doorbells = 0;
    txd_free = [||];
    txd_top = 0;
    completion_fault = None;
    lost = [];
    lost_completions = 0;
    delayed_completions = 0;
    reaped_completions = 0;
  }

let model t = t.model

let set_on_wire t f = t.on_wire <- f

let set_completion_fault t f = t.completion_fault <- f

(* --- Receive ring ------------------------------------------------------ *)

let attach_rx ?cpu t pool =
  let q =
    {
      q_dev = t;
      q_pool = pool;
      q_cpu = cpu;
      q_packets = 0;
      q_bytes = 0;
      q_dropped = 0;
    }
  in
  t.rxqs <- q :: t.rxqs;
  q

(* DMA one arriving frame's payload into a posted receive buffer. Real
   bytes move but no CPU cycles are charged: the NIC does the write, the
   host only sees the DDIO-installed lines. The returned buffer carries the
   delivery reference (refcount 1) — whoever consumes the delivery releases
   it, and the ring slot recycles at refcount zero. [None] is an RX ring
   overrun: the ring has no free buffer posted (every slot is pinned by an
   outstanding delivery or view), so the frame drops, exactly as a real NIC
   drops when the host can't keep up. *)
let rx_deliver q bytes ~off ~len =
  match Mem.Pinned.Buf.alloc ~site:"Nic.rx_dma" q.q_pool ~len with
  | buf ->
      Mem.Pinned.Buf.fill_subbytes ~site:"Nic.rx_dma" buf bytes ~src_off:off
        ~len;
      (* DDIO: the DMA write leaves the frame in the LLC. *)
      (match q.q_cpu with
      | Some cpu ->
          Memmodel.Cpu.install_dma cpu ~addr:(Mem.Pinned.Buf.addr buf) ~len
      | None -> ());
      q.q_packets <- q.q_packets + 1;
      q.q_bytes <- q.q_bytes + len;
      Some buf
  | exception Mem.Pinned.Out_of_memory _ ->
      q.q_dropped <- q.q_dropped + 1;
      None

let rxq_packets q = q.q_packets

let rxq_bytes q = q.q_bytes

let rxq_dropped q = q.q_dropped

(* Deliveries (and views over them) the application still pins: ring slots
   that cannot serve new frames until their refcount hits zero. *)
let rx_outstanding q = Mem.Pinned.Pool.live q.q_pool

let rx_packets t = List.fold_left (fun n q -> n + q.q_packets) 0 t.rxqs

let rx_bytes t = List.fold_left (fun n q -> n + q.q_bytes) 0 t.rxqs

let rx_dropped t = List.fold_left (fun n q -> n + q.q_dropped) 0 t.rxqs

(* --- Reusable descriptors --------------------------------------------- *)

let txd_acquire t =
  if t.txd_top > 0 then begin
    t.txd_top <- t.txd_top - 1;
    t.txd_free.(t.txd_top)
  end
  else new_txd ()

let txd_recycle t txd =
  let cap = Array.length t.txd_free in
  if t.txd_top >= cap then begin
    let arr = Array.make (max 8 (2 * cap)) txd in
    Array.blit t.txd_free 0 arr 0 t.txd_top;
    t.txd_free <- arr
  end;
  t.txd_free.(t.txd_top) <- txd;
  t.txd_top <- t.txd_top + 1

(* Buf.t has no dummy value, so the gather array is seeded with the pushed
   element; stale entries beyond [d_n] are never read. *)
let txd_push txd buf =
  let cap = Array.length txd.d_segs in
  if txd.d_n >= cap then begin
    let arr = Array.make (max 8 (2 * cap)) buf in
    Array.blit txd.d_segs 0 arr 0 txd.d_n;
    txd.d_segs <- arr;
    let holds = Array.make (Array.length arr) None in
    Array.blit txd.d_holds 0 holds 0 txd.d_n;
    txd.d_holds <- holds
  end;
  txd.d_segs.(txd.d_n) <- buf;
  txd.d_n <- txd.d_n + 1

let txd_set_release txd f = txd.d_release <- f

let txd_set_done txd f = txd.d_done <- f

let txd_len txd = txd.d_n

let txd_payload_bytes txd =
  let total = ref 0 in
  for i = 0 to txd.d_n - 1 do
    total := !total + Mem.Pinned.Buf.len txd.d_segs.(i)
  done;
  !total

let gather t txd ~len =
  let w = wire_acquire t len in
  let off = ref 0 in
  for i = 0 to txd.d_n - 1 do
    let buf = txd.d_segs.(i) in
    Mem.Pinned.Buf.blit_to buf ~dst:w.w_buf ~dst_off:!off;
    off := !off + Mem.Pinned.Buf.len buf
  done;
  w

(* Deliver one descriptor's completion: free the ring slot, release the
   write-protect holds, release the stack's segment references, run the
   callback, and return the descriptor to the free stack. *)
let finish_txd t txd =
  t.in_flight <- t.in_flight - 1;
  for i = 0 to txd.d_n - 1 do
    (match txd.d_holds.(i) with
    | None -> ()
    | some ->
        Mem.Pinned.Buf.release_hold some;
        txd.d_holds.(i) <- None);
    txd.d_release txd.d_segs.(i)
  done;
  let cb = txd.d_done in
  txd.d_n <- 0;
  txd.d_release <- noop_release;
  txd.d_done <- noop;
  txd_recycle t txd;
  cb ()

(* Decide the fate of a CQE that is due now. [`Lose] stashes the
   completions on the lost list (ring slots stay occupied); [`Delay d]
   re-schedules delivery [d] ns later. *)
let cqe_fate t =
  match t.completion_fault with
  | None -> None
  | Some f -> f ~now:(Sim.Engine.now t.engine)

let deliver_txd t txd =
  match cqe_fate t with
  | Some `Lose ->
      t.lost_completions <- t.lost_completions + 1;
      t.lost <- txd :: t.lost
  | Some (`Delay extra) ->
      t.delayed_completions <- t.delayed_completions + 1;
      Sim.Engine.schedule t.engine ~after:extra (fun () -> finish_txd t txd)
  | None -> finish_txd t txd

(* Coalesced CQE for a batch: one fate decision covers every descriptor. *)
let deliver_txd_batch t txds =
  let n = Array.length txds in
  match cqe_fate t with
  | Some `Lose ->
      t.lost_completions <- t.lost_completions + n;
      Array.iter (fun txd -> t.lost <- txd :: t.lost) txds
  | Some (`Delay extra) ->
      t.delayed_completions <- t.delayed_completions + n;
      Sim.Engine.schedule t.engine ~after:extra (fun () ->
          Array.iter (finish_txd t) txds)
  | None -> Array.iter (finish_txd t) txds

let reap_lost t =
  let lost = t.lost in
  t.lost <- [];
  let n = List.length lost in
  t.reaped_completions <- t.reaped_completions + n;
  List.iter (finish_txd t) lost;
  n

let lost_completions t = t.lost_completions

let delayed_completions t = t.delayed_completions

let reaped_completions t = t.reaped_completions

(* --- Posting ----------------------------------------------------------- *)

let take_holds txd ~site =
  if Sanitizer.Refsan.is_enabled () then
    for i = 0 to txd.d_n - 1 do
      txd.d_holds.(i) <- Mem.Pinned.Buf.hold ~site txd.d_segs.(i)
    done

let post_txd t txd =
  let nsge = txd.d_n in
  if nsge = 0 then invalid_arg "Device.post: empty gather list";
  if nsge > t.model.Model.max_sge then
    raise (Too_many_segments { requested = nsge; limit = t.model.Model.max_sge });
  if t.in_flight >= t.model.Model.tx_ring_entries then raise Ring_full;
  t.doorbells <- t.doorbells + 1;
  t.in_flight <- t.in_flight + 1;
  let now = Sim.Engine.now t.engine in
  let start = max now t.busy_until in
  let payload_bytes = txd_payload_bytes txd in
  (* PCIe descriptor + gather fetches overlap wire serialization; the
     pipeline occupancy per packet is whichever is longer. *)
  let dma_ns =
    t.model.Model.pcie_per_descriptor_ns
    +. (float_of_int nsge *. t.model.Model.pcie_per_sge_ns)
  in
  let wire_ns = Model.wire_time_ns t.model ~bytes:payload_bytes in
  let occupancy = int_of_float (ceil (Float.max dma_ns wire_ns)) in
  let finish = start + occupancy in
  t.busy_until <- finish;
  (* Snapshot bytes at post time: the zero-copy contract says the app must
     not mutate in place during sends, and refcounts keep buffers alive, so
     gathering now is equivalent to gathering at DMA time. RefSan holds
     write-protect each segment until the completion fires, turning any
     in-place mutation of posted bytes into a write-after-post diagnostic. *)
  take_holds txd ~site:"Nic.post";
  let payload = gather t txd ~len:payload_bytes in
  Sim.Engine.schedule_at t.engine ~time:finish (fun () ->
      t.tx_packets <- t.tx_packets + 1;
      t.tx_bytes <- t.tx_bytes + payload.w_len;
      (* Egress happens regardless of the CQE's fate: losing a completion
         does not claw the packet back off the wire. *)
      t.on_wire payload;
      deliver_txd t txd)

(* Batched post: one doorbell covers every descriptor. The first descriptor
   pays the full per-descriptor PCIe fetch; the rest ride the same burst and
   pay only their per-SGE fetches. Packets still leave the wire one by one
   (each gets its own egress event at its own finish time, so fabric arrival
   times match back-to-back unbatched posts), but completion delivery is
   coalesced into a single CQE event at the last packet's finish — which is
   when every segment reference is released. [txds] may be a caller-owned
   scratch array (only the first [n] slots are read, and they are
   snapshotted before returning, so the caller can refill it immediately). *)
let post_txd_batch t txds ~n =
  if n = 0 then invalid_arg "Device.post_batch: empty batch";
  if t.in_flight + n > t.model.Model.tx_ring_entries then raise Ring_full;
  t.doorbells <- t.doorbells + 1;
  let last_finish = ref 0 in
  let batch = Array.sub txds 0 n in
  Array.iteri
    (fun i txd ->
      let nsge = txd.d_n in
      if nsge = 0 then invalid_arg "Device.post_batch: empty gather list";
      if nsge > t.model.Model.max_sge then
        raise
          (Too_many_segments { requested = nsge; limit = t.model.Model.max_sge });
      t.in_flight <- t.in_flight + 1;
      let now = Sim.Engine.now t.engine in
      let start = max now t.busy_until in
      let payload_bytes = txd_payload_bytes txd in
      let dma_ns =
        (if i = 0 then t.model.Model.pcie_per_descriptor_ns else 0.0)
        +. (float_of_int nsge *. t.model.Model.pcie_per_sge_ns)
      in
      let wire_ns = Model.wire_time_ns t.model ~bytes:payload_bytes in
      let occupancy = int_of_float (ceil (Float.max dma_ns wire_ns)) in
      let finish = start + occupancy in
      t.busy_until <- finish;
      if finish > !last_finish then last_finish := finish;
      take_holds txd ~site:"Nic.post_batch";
      let payload = gather t txd ~len:payload_bytes in
      Sim.Engine.schedule_at t.engine ~time:finish (fun () ->
          t.tx_packets <- t.tx_packets + 1;
          t.tx_bytes <- t.tx_bytes + payload.w_len;
          t.on_wire payload))
    batch;
  (* One coalesced CQE: a completion fault hits the whole batch at once. *)
  Sim.Engine.schedule_at t.engine ~time:!last_finish (fun () ->
      deliver_txd_batch t batch)

(* --- List-descriptor compatibility API --------------------------------- *)

let txd_of_descriptor t desc =
  let txd = txd_acquire t in
  List.iter (txd_push txd) desc.segments;
  (* The callback owns reference release on this path (the reusable-txd
     path instead sets [d_release] and leaves [d_done] a no-op). *)
  txd.d_done <- desc.on_complete;
  txd

let post t desc = post_txd t (txd_of_descriptor t desc)

let post_batch t descs =
  if descs = [] then invalid_arg "Device.post_batch: empty batch";
  let batch = Array.of_list (List.map (txd_of_descriptor t) descs) in
  post_txd_batch t batch ~n:(Array.length batch)

let in_flight t = t.in_flight

let tx_packets t = t.tx_packets

let tx_bytes t = t.tx_bytes

let doorbells t = t.doorbells
