type descriptor = {
  segments : Mem.Pinned.Buf.t list;
  on_complete : unit -> unit;
}

exception Too_many_segments of { requested : int; limit : int }

exception Ring_full

type completion_fault = now:int -> [ `Lose | `Delay of int ] option

type t = {
  engine : Sim.Engine.t;
  model : Model.t;
  mutable on_wire : string -> unit;
  mutable busy_until : int; (* when the DMA/wire pipeline frees up *)
  mutable in_flight : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable doorbells : int;
  (* Fault injection: a lost CQE leaves its descriptors' ring slots
     occupied and their segment references (and RefSan holds) pinned until
     [reap_lost] recovers them — exactly the hazard the paper's refcount
     discussion worries about. *)
  mutable completion_fault : completion_fault option;
  mutable lost : (int option list * (unit -> unit)) list;
  mutable lost_completions : int;
  mutable delayed_completions : int;
  mutable reaped_completions : int;
}

let create engine ~model =
  {
    engine;
    model;
    on_wire = (fun _ -> ());
    busy_until = 0;
    in_flight = 0;
    tx_packets = 0;
    tx_bytes = 0;
    doorbells = 0;
    completion_fault = None;
    lost = [];
    lost_completions = 0;
    delayed_completions = 0;
    reaped_completions = 0;
  }

let model t = t.model

let set_on_wire t f = t.on_wire <- f

let set_completion_fault t f = t.completion_fault <- f

(* Deliver one descriptor's completion: free the ring slot, release the
   write-protect holds, run the stack's callback. *)
let finish_completion t (holds, on_complete) =
  t.in_flight <- t.in_flight - 1;
  List.iter Mem.Pinned.Buf.release_hold holds;
  on_complete ()

(* Decide the fate of a CQE that is due now. [`Lose] stashes the
   completions on the lost list (ring slots stay occupied); [`Delay d]
   re-schedules delivery [d] ns later. *)
let deliver_completions t completions =
  let fate =
    match t.completion_fault with
    | None -> None
    | Some f -> f ~now:(Sim.Engine.now t.engine)
  in
  match fate with
  | Some `Lose ->
      t.lost_completions <- t.lost_completions + List.length completions;
      t.lost <- List.rev_append completions t.lost
  | Some (`Delay extra) ->
      t.delayed_completions <- t.delayed_completions + List.length completions;
      Sim.Engine.schedule t.engine ~after:extra (fun () ->
          List.iter (finish_completion t) completions)
  | None -> List.iter (finish_completion t) completions

let reap_lost t =
  let lost = t.lost in
  t.lost <- [];
  let n = List.length lost in
  t.reaped_completions <- t.reaped_completions + n;
  List.iter (finish_completion t) lost;
  n

let lost_completions t = t.lost_completions

let delayed_completions t = t.delayed_completions

let reaped_completions t = t.reaped_completions

let gather segments =
  let total =
    List.fold_left (fun acc buf -> acc + Mem.Pinned.Buf.len buf) 0 segments
  in
  let out = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun buf ->
      Mem.Pinned.Buf.blit_to buf ~dst:out ~dst_off:!off;
      off := !off + Mem.Pinned.Buf.len buf)
    segments;
  Bytes.unsafe_to_string out

let post t desc =
  let nsge = List.length desc.segments in
  if nsge = 0 then invalid_arg "Device.post: empty gather list";
  if nsge > t.model.Model.max_sge then
    raise (Too_many_segments { requested = nsge; limit = t.model.Model.max_sge });
  if t.in_flight >= t.model.Model.tx_ring_entries then raise Ring_full;
  t.doorbells <- t.doorbells + 1;
  t.in_flight <- t.in_flight + 1;
  let now = Sim.Engine.now t.engine in
  let start = max now t.busy_until in
  let payload_bytes =
    List.fold_left (fun acc buf -> acc + Mem.Pinned.Buf.len buf) 0 desc.segments
  in
  (* PCIe descriptor + gather fetches overlap wire serialization; the
     pipeline occupancy per packet is whichever is longer. *)
  let dma_ns =
    t.model.Model.pcie_per_descriptor_ns
    +. (float_of_int nsge *. t.model.Model.pcie_per_sge_ns)
  in
  let wire_ns = Model.wire_time_ns t.model ~bytes:payload_bytes in
  let occupancy = int_of_float (ceil (Float.max dma_ns wire_ns)) in
  let finish = start + occupancy in
  t.busy_until <- finish;
  (* Snapshot bytes at post time: the zero-copy contract says the app must
     not mutate in place during sends, and refcounts keep buffers alive, so
     gathering now is equivalent to gathering at DMA time. RefSan holds
     write-protect each segment until the completion fires, turning any
     in-place mutation of posted bytes into a write-after-post diagnostic. *)
  let holds =
    if Sanitizer.Refsan.is_enabled () then
      List.map (fun buf -> Mem.Pinned.Buf.hold ~site:"Nic.post" buf)
        desc.segments
    else []
  in
  let payload = gather desc.segments in
  Sim.Engine.schedule_at t.engine ~time:finish (fun () ->
      t.tx_packets <- t.tx_packets + 1;
      t.tx_bytes <- t.tx_bytes + String.length payload;
      (* Egress happens regardless of the CQE's fate: losing a completion
         does not claw the packet back off the wire. *)
      t.on_wire payload;
      deliver_completions t [ (holds, desc.on_complete) ])

(* Batched post: one doorbell covers every descriptor. The first descriptor
   pays the full per-descriptor PCIe fetch; the rest ride the same burst and
   pay only their per-SGE fetches. Packets still leave the wire one by one
   (each gets its own egress event at its own finish time, so fabric arrival
   times match back-to-back unbatched posts), but completion delivery is
   coalesced into a single CQE event at the last packet's finish — which is
   when every segment reference is released. *)
let post_batch t descs =
  if descs = [] then invalid_arg "Device.post_batch: empty batch";
  let n = List.length descs in
  if t.in_flight + n > t.model.Model.tx_ring_entries then raise Ring_full;
  t.doorbells <- t.doorbells + 1;
  let last_finish = ref 0 in
  let completions =
    List.mapi
      (fun i desc ->
        let nsge = List.length desc.segments in
        if nsge = 0 then invalid_arg "Device.post_batch: empty gather list";
        if nsge > t.model.Model.max_sge then
          raise
            (Too_many_segments { requested = nsge; limit = t.model.Model.max_sge });
        t.in_flight <- t.in_flight + 1;
        let now = Sim.Engine.now t.engine in
        let start = max now t.busy_until in
        let payload_bytes =
          List.fold_left
            (fun acc buf -> acc + Mem.Pinned.Buf.len buf)
            0 desc.segments
        in
        let dma_ns =
          (if i = 0 then t.model.Model.pcie_per_descriptor_ns else 0.0)
          +. (float_of_int nsge *. t.model.Model.pcie_per_sge_ns)
        in
        let wire_ns = Model.wire_time_ns t.model ~bytes:payload_bytes in
        let occupancy = int_of_float (ceil (Float.max dma_ns wire_ns)) in
        let finish = start + occupancy in
        t.busy_until <- finish;
        if finish > !last_finish then last_finish := finish;
        let holds =
          if Sanitizer.Refsan.is_enabled () then
            List.map
              (fun buf -> Mem.Pinned.Buf.hold ~site:"Nic.post_batch" buf)
              desc.segments
          else []
        in
        let payload = gather desc.segments in
        Sim.Engine.schedule_at t.engine ~time:finish (fun () ->
            t.tx_packets <- t.tx_packets + 1;
            t.tx_bytes <- t.tx_bytes + String.length payload;
            t.on_wire payload);
        (holds, desc.on_complete))
      descs
  in
  (* One coalesced CQE: a completion fault hits the whole batch at once. *)
  Sim.Engine.schedule_at t.engine ~time:!last_finish (fun () ->
      deliver_completions t completions)

let in_flight t = t.in_flight

let tx_packets t = t.tx_packets

let tx_bytes t = t.tx_bytes

let doorbells t = t.doorbells
