type segment = { buf : Mem.Pinned.Buf.t }

type descriptor = {
  segments : segment list;
  on_complete : unit -> unit;
}

exception Too_many_segments of { requested : int; limit : int }

exception Ring_full

type t = {
  engine : Sim.Engine.t;
  model : Model.t;
  mutable on_wire : string -> unit;
  mutable busy_until : int; (* when the DMA/wire pipeline frees up *)
  mutable in_flight : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
}

let create engine ~model =
  {
    engine;
    model;
    on_wire = (fun _ -> ());
    busy_until = 0;
    in_flight = 0;
    tx_packets = 0;
    tx_bytes = 0;
  }

let model t = t.model

let set_on_wire t f = t.on_wire <- f

let gather segments =
  let total =
    List.fold_left (fun acc s -> acc + Mem.Pinned.Buf.len s.buf) 0 segments
  in
  let out = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun s ->
      let v = Mem.Pinned.Buf.view s.buf in
      Mem.View.blit v ~dst:out ~dst_off:!off;
      off := !off + v.Mem.View.len)
    segments;
  Bytes.unsafe_to_string out

let post t desc =
  let nsge = List.length desc.segments in
  if nsge = 0 then invalid_arg "Device.post: empty gather list";
  if nsge > t.model.Model.max_sge then
    raise (Too_many_segments { requested = nsge; limit = t.model.Model.max_sge });
  if t.in_flight >= t.model.Model.tx_ring_entries then raise Ring_full;
  t.in_flight <- t.in_flight + 1;
  let now = Sim.Engine.now t.engine in
  let start = max now t.busy_until in
  let payload_bytes =
    List.fold_left (fun acc s -> acc + Mem.Pinned.Buf.len s.buf) 0 desc.segments
  in
  (* PCIe descriptor + gather fetches overlap wire serialization; the
     pipeline occupancy per packet is whichever is longer. *)
  let dma_ns =
    t.model.Model.pcie_per_descriptor_ns
    +. (float_of_int nsge *. t.model.Model.pcie_per_sge_ns)
  in
  let wire_ns = Model.wire_time_ns t.model ~bytes:payload_bytes in
  let occupancy = int_of_float (ceil (Float.max dma_ns wire_ns)) in
  let finish = start + occupancy in
  t.busy_until <- finish;
  (* Snapshot bytes at post time: the zero-copy contract says the app must
     not mutate in place during sends, and refcounts keep buffers alive, so
     gathering now is equivalent to gathering at DMA time. RefSan holds
     write-protect each segment until the completion fires, turning any
     in-place mutation of posted bytes into a write-after-post diagnostic. *)
  let holds =
    if Sanitizer.Refsan.is_enabled () then
      List.map (fun s -> Mem.Pinned.Buf.hold ~site:"Nic.post" s.buf)
        desc.segments
    else []
  in
  let payload = gather desc.segments in
  Sim.Engine.schedule_at t.engine ~time:finish (fun () ->
      t.in_flight <- t.in_flight - 1;
      t.tx_packets <- t.tx_packets + 1;
      t.tx_bytes <- t.tx_bytes + String.length payload;
      List.iter Mem.Pinned.Buf.release_hold holds;
      t.on_wire payload;
      desc.on_complete ())

let in_flight t = t.in_flight

let tx_packets t = t.tx_packets

let tx_bytes t = t.tx_bytes
