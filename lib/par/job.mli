(** A unit of parallel work: a labeled thunk.

    Jobs must be self-contained — build the engine, address space, and RNG
    stream inside [run] (seeded from the job's index, see
    [Sim.Rng.stream]), never captured from the submitting domain. That is
    what makes [--jobs N] byte-identical to serial execution: the merge
    order is the submission order, and nothing else about scheduling can
    leak into the results. *)

type 'a t

val make : ?label:string -> (unit -> 'a) -> 'a t

val label : _ t -> string

(** Execute the job's thunk on the calling domain. *)
val run : 'a t -> 'a

(** [of_fun ~label f x] = [make ~label (fun () -> f x)]. *)
val of_fun : label:string -> ('a -> 'b) -> 'a -> 'b t
