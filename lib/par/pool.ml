(* Work-stealing domain pool.

   Structure: [nworkers] persistent domains, each owning an index queue;
   a batch scatters task indices round-robin across the queues and workers
   steal from their neighbours once their own queue drains, so an uneven
   batch (figure configs vary 100x in cost) still finishes at the speed of
   the slowest *task*, not the slowest *queue*. Workers park on a
   condition variable between batches; the submitting domain never
   executes tasks itself (its domain-local state — RefSan ledger, send
   scratch — stays exactly as serial execution would leave it) and parks
   on [done_cond] until the batch drains.

   Determinism contract: tasks write results into a slot chosen by their
   submission index, and the merge reads slots in index order. Scheduling
   (which worker ran what, in which order) is invisible in the output.

   Nesting: a task that itself calls [map]/[map_list] runs the inner batch
   inline on its worker (the [in_worker] flag below) — the pool never
   deadlocks waiting on itself, and inner work inherits the outer job's
   domain-local state, which is exactly the serial semantics. *)

let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type t = {
  nworkers : int;
  queues : (unit -> unit) Queue.t array;
  qlocks : Mutex.t array;
  m : Mutex.t;
  work_cond : Condition.t;
  done_cond : Condition.t;
  mutable epoch : int; (* bumped per batch; parks are epoch-checked *)
  mutable remaining : int;
  mutable stop : bool;
  mutable exn : (exn * Printexc.raw_backtrace) option;
  mutable domains : unit Domain.t array;
}

let size t = t.nworkers

(* Pop from queue [j]; never blocks. *)
let try_pop t j =
  let l = t.qlocks.(j) in
  Mutex.lock l;
  let task =
    let q = t.queues.(j) in
    if Queue.is_empty q then None else Some (Queue.pop q)
  in
  Mutex.unlock l;
  task

(* Own queue first, then steal round-robin from the neighbours. *)
let find_task t i =
  let rec go k =
    if k = t.nworkers then None
    else
      match try_pop t ((i + k) mod t.nworkers) with
      | Some task -> Some task
      | None -> go (k + 1)
  in
  go 0

let worker t i () =
  Domain.DLS.set in_worker true;
  let seen = ref (-1) in
  let rec loop () =
    match find_task t i with
    | Some task ->
        task ();
        Mutex.lock t.m;
        t.remaining <- t.remaining - 1;
        if t.remaining = 0 then Condition.broadcast t.done_cond;
        Mutex.unlock t.m;
        loop ()
    | None ->
        Mutex.lock t.m;
        if t.stop then Mutex.unlock t.m
        else if t.epoch <> !seen then begin
          (* A batch may have landed between our scan and taking the
             lock; re-scan before parking so the wakeup is never missed. *)
          seen := t.epoch;
          Mutex.unlock t.m;
          loop ()
        end
        else begin
          Condition.wait t.work_cond t.m;
          Mutex.unlock t.m;
          loop ()
        end
  in
  loop ()

let create ~workers =
  if workers < 1 then invalid_arg "Par.Pool.create: workers < 1";
  let t =
    {
      nworkers = workers;
      queues = Array.init workers (fun _ -> Queue.create ());
      qlocks = Array.init workers (fun _ -> Mutex.create ());
      m = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      epoch = 0;
      remaining = 0;
      stop = false;
      exn = None;
      domains = [||];
    }
  in
  t.domains <- Array.init workers (fun i -> Domain.spawn (worker t i));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.m;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(* Run every task and wait for the batch to drain; the first task
   exception (if any) is re-raised here on the submitting domain. *)
let run_batch t (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if n > 0 then begin
    Array.iteri
      (fun k task ->
        let j = k mod t.nworkers in
        Mutex.lock t.qlocks.(j);
        Queue.push task t.queues.(j);
        Mutex.unlock t.qlocks.(j))
      tasks;
    Mutex.lock t.m;
    t.remaining <- t.remaining + n;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_cond;
    while t.remaining > 0 do
      Condition.wait t.done_cond t.m
    done;
    let exn = t.exn in
    t.exn <- None;
    Mutex.unlock t.m;
    match exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* --- Cached pool + default width --------------------------------------- *)

let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let default = Atomic.make 1

let set_default_jobs n =
  if n < 1 then invalid_arg "Par.Pool.set_default_jobs: jobs < 1";
  Atomic.set default n

let default_jobs () = Atomic.get default

(* One process-wide pool, resized on demand; torn down at exit so the
   worker domains never outlive the run. *)
let cached : t option ref = ref None

let cached_lock = Mutex.create ()

let the_pool ~workers =
  Mutex.lock cached_lock;
  let t =
    match !cached with
    | Some t when t.nworkers = workers -> t
    | existing ->
        Option.iter shutdown existing;
        let t = create ~workers in
        cached := Some t;
        t
  in
  Mutex.unlock cached_lock;
  t

let () =
  at_exit (fun () ->
      match !cached with
      | Some t ->
          cached := None;
          shutdown t
      | None -> ())

(* --- Deterministic map -------------------------------------------------- *)

let serial_map f arr = Array.map f arr

let map ?jobs f arr =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker then serial_map f arr
  else begin
    let results = Array.make n None in
    let pool = the_pool ~workers:(min jobs n) in
    let task k () =
      (match f arr.(k) with
      | y -> results.(k) <- Some y
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock pool.m;
          if pool.exn = None then pool.exn <- Some (e, bt);
          Mutex.unlock pool.m);
      (* Fold this job's domain-local RefSan ledger into the process
         totals before the next (unrelated) job reuses the domain, so the
         end-of-run grand total covers every worker's findings. *)
      if Sanitizer.Refsan.is_enabled () then Sanitizer.Refsan.checkpoint ()
    in
    run_batch pool (Array.init n task);
    Array.map
      (function
        | Some y -> y
        | None -> failwith "Par.Pool.map: missing result")
      results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

(* Index-aware variant: jobs that seed per-task RNG streams (e.g. the
   cluster population planner's [Sim.Rng.stream ~index]) need their
   submission index, and threading it through tuples at every call site
   obscures the determinism contract. *)
let mapi_list ?jobs f xs =
  Array.to_list
    (map ?jobs
       (fun (i, x) -> f i x)
       (Array.of_list (List.mapi (fun i x -> (i, x)) xs)))

let run_jobs ?jobs (js : 'a Job.t list) = map_list ?jobs Job.run js
