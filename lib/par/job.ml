(* A unit of parallel work: a labeled thunk. Jobs carry no shared state —
   each one is expected to build its own engine / address space / RNG
   stream from its index, so running them on any worker domain (or inline
   on the submitting domain) produces identical results. *)

type 'a t = { label : string; run : unit -> 'a }

let make ?(label = "job") run = { label; run }

let label t = t.label

let run t = t.run ()

let of_fun ~label f x = { label; run = (fun () -> f x) }
