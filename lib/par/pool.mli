(** Work-stealing domain pool with a deterministic merge.

    [map ~jobs f arr] evaluates [f] over [arr] on up to [jobs] persistent
    worker domains and returns the results in submission order — task
    indices are scattered round-robin across per-worker queues, idle
    workers steal from their neighbours, and each result lands in the slot
    named by its index, so scheduling cannot reorder (or otherwise alter)
    the output. With [jobs = 1], a single-element array, or when called
    from inside a pool task, it degrades to a plain serial [Array.map] on
    the calling domain — byte-identical to never having a pool at all.

    The submitting domain does not execute tasks: its domain-local state
    (RefSan ledger, serializer scratch) is left untouched by a parallel
    run. Workers fold their RefSan ledgers into the process-wide totals
    after every task (see [Sanitizer.Refsan.checkpoint]).

    The first exception raised by a task is re-raised on the submitting
    domain after the batch drains. *)

type t

(** [create ~workers] spawns [workers] persistent domains. Most callers
    want {!map}, which manages a process-wide cached pool. *)
val create : workers:int -> t

val size : t -> int

(** Stop and join every worker. Idempotent only per pool. *)
val shutdown : t -> unit

(** [Domain.recommended_domain_count () - 1], clamped to at least 1 —
    leaves a core for the (parked, but occasionally scheduling) submitter. *)
val recommended_jobs : unit -> int

(** Process-wide default for [?jobs] (initially 1 = serial). *)
val set_default_jobs : int -> unit

val default_jobs : unit -> int

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [mapi_list f xs] — like [map_list], passing each task its submission
    index (e.g. to seed per-task [Sim.Rng.stream ~index] streams). *)
val mapi_list : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

(** Run labeled jobs (see {!Job}); results in submission order. *)
val run_jobs : ?jobs:int -> 'a Job.t list -> 'a list
