type t = {
  zero_copy_threshold : int;
  serialize_and_send : bool;
  demote_on_pressure : bool;
}

let default =
  { zero_copy_threshold = 512; serialize_and_send = true; demote_on_pressure = true }

let all_zero_copy = { default with zero_copy_threshold = 0 }

let all_copy = { default with zero_copy_threshold = max_int }

let with_threshold n = { default with zero_copy_threshold = n }

(* The RefSan toggle rides on the runtime config: [CF_SANITIZE=1] in the
   environment enables it at startup, and harnesses flip it per run. *)
let sanitize () = Sanitizer.Refsan.is_enabled ()

let set_sanitize on = Sanitizer.Refsan.set_enabled on

let pp ppf t =
  let threshold =
    if t.zero_copy_threshold = max_int then "inf"
    else string_of_int t.zero_copy_threshold
  in
  Format.fprintf ppf "{threshold=%s; serialize_and_send=%b%s}" threshold
    t.serialize_and_send
    (if t.demote_on_pressure then "" else "; demote_on_pressure=false")
