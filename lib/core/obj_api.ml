let object_len = Format_.object_len

let num_copy_bytes msg =
  let plan = Format_.measure msg in
  plan.Format_.header_len + plan.Format_.stream_len

let num_zero_copy_entries msg = Format_.zc_count (Format_.measure msg)

let write_object_header ?cpu msg w =
  let plan = Format_.measure msg in
  Format_.write ?cpu plan w msg

let iterate_over_copy_entries ?cpu msg ~scratch ~start ~stop f =
  let plan = Format_.measure msg in
  let copy_len = plan.Format_.header_len + plan.Format_.stream_len in
  let lo = max 0 start and hi = min stop copy_len in
  if lo < hi then begin
    if scratch.Mem.View.len < copy_len then
      invalid_arg "Obj_api.iterate_over_copy_entries: scratch too small";
    let w =
      Wire.Cursor.Writer.create ?cpu (Mem.View.sub scratch ~off:0 ~len:copy_len)
    in
    Format_.write ?cpu plan w msg;
    f (Mem.View.sub scratch ~off:lo ~len:(hi - lo))
  end

let iterate_over_zero_copy_entries msg ~start ~stop f =
  let plan = Format_.measure msg in
  let copy_len = plan.Format_.header_len + plan.Format_.stream_len in
  (* Zero-copy entries occupy [copy_len, total) in wire order. *)
  let pos = ref copy_len in
  Format_.iter_zc plan (fun buf ->
      let len = Mem.Pinned.Buf.len buf in
      let lo = max start !pos and hi = min stop (!pos + len) in
      if lo < hi then
        f (Mem.Pinned.Buf.sub buf ~off:(lo - !pos) ~len:(hi - lo));
      pos := !pos + len)
