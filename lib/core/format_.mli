(** The Cornflakes wire format (§3.3, Figure 4).

    An object is laid out as three regions:

    {v
    +-----------------------------+ 0
    | u32 bitmap word count       |
    | bitmap (present fields)     |
    | 8-byte info slot per        |
    |   present field, in schema  |
    |   order                     |
    +-----------------------------+ header_len
    | copied region ("stream"):   |
    |   list tables, nested       |
    |   headers, copied payloads  |
    +-----------------------------+ header_len + stream_len
    | zero-copy region: payloads  |
    |   appended by the NIC as    |
    |   extra gather entries      |
    +-----------------------------+ total
    v}

    Info slots: scalars hold the value inline (ints are never zero-copied —
    footnote 5); strings/bytes hold [(u32 offset, u32 length)]; nested
    messages hold [(u32 offset, u32 header_length)]; repeated fields hold
    [(u32 table_offset, u32 count)], the table being 8-byte entries of the
    element's slot form. All offsets are relative to the object start, so a
    receiver deserializes from the gathered (contiguous) packet without
    copies. *)

exception Malformed of string

(** The serialization plan: region sizes and the ordered zero-copy entries,
    produced by one traversal; [write] replays the identical traversal.

    The record is reusable: {!measure_into} refills it in place (the gather
    array grows once and is then recycled), so steady-state senders keep one
    plan per endpoint and allocate nothing per message. Only the first
    [zc_count] entries of [zc] are live. *)
type plan = private {
  mutable header_len : int;
  mutable stream_len : int;
  mutable zc : Mem.Pinned.Buf.t array; (* in traversal order *)
  mutable zc_count : int;
  mutable zc_len : int;
  mutable total_len : int;
  mutable stream_pos : int; (* write cursors, valid during [write] *)
  mutable zc_pos : int;
}

(** An empty plan for reuse with {!measure_into}. *)
val create_plan : unit -> plan

(** [measure_into plan msg] re-measures [msg] into [plan], reusing its
    gather array. *)
val measure_into : plan -> Wire.Dyn.t -> unit

(** [measure msg] = [create_plan] + [measure_into] (fresh plan per call). *)
val measure : Wire.Dyn.t -> plan

(** Live zero-copy entry count ([plan.zc_count]). *)
val zc_count : plan -> int

(** Iterate the live zero-copy entries in traversal order, without
    allocating. *)
val iter_zc : plan -> (Mem.Pinned.Buf.t -> unit) -> unit

(** The live zero-copy entries as a fresh list (tests / cold paths). *)
val zc_bufs : plan -> Mem.Pinned.Buf.t list

(** [zc_segments plan ~head ~tail] = [head :: live zc entries @ tail] — the
    segment list handed to the stack. *)
val zc_segments :
  plan ->
  head:Mem.Pinned.Buf.t ->
  tail:Mem.Pinned.Buf.t list ->
  Mem.Pinned.Buf.t list

(** [object_len msg] without keeping the plan. *)
val object_len : Wire.Dyn.t -> int

(** Number of scatter-gather data entries the object needs:
    1 (header + copied region) + number of zero-copy payloads. *)
val num_entries : plan -> int

(** [write ?cpu plan w msg] emits header + copied region
    ([plan.header_len + plan.stream_len] bytes) into [w]; zero-copy bytes
    are not touched. Raises [Invalid_argument] if [w] is too small. *)
val write : ?cpu:Memmodel.Cpu.t -> plan -> Wire.Cursor.Writer.t -> Wire.Dyn.t -> unit

(** {2 Specialized-writer hooks (Codegen.Emit folded serializers)}

    Generated [write_folded] functions drive the same plan/cursor machinery
    as {!write} but fold layout constants (bitmap word, slot offsets) at
    codegen time. They are invoked through {!run} and fall back to
    {!write_msg_generic} whenever presence deviates from the all-fields
    fast path. *)

(** [write_value_at ?cpu w plan v ~slot] writes one field value whose 8-byte
    info slot sits at absolute offset [slot]. Precondition: the slot lies in
    a region already bounds-checked with [Cursor.Writer.span] (generated
    code spans the whole header block up front). *)
val write_value_at :
  ?cpu:Memmodel.Cpu.t ->
  Wire.Cursor.Writer.t ->
  plan ->
  Wire.Dyn.value ->
  slot:int ->
  unit

(** Generic interpreter-shaped body at header position 0 — the fallback arm
    of generated folded writers. Cursors must have been initialized by
    {!run}. *)
val write_msg_generic :
  ?cpu:Memmodel.Cpu.t -> Wire.Cursor.Writer.t -> plan -> Wire.Dyn.t -> unit

(** [run ?cpu plan w msg ~write] initializes the plan's write cursors, runs
    [write], and asserts the region postconditions — the shared harness for
    both the generic writer and generated specialized ones. [write] receives
    [cpu] as a plain labeled option so top-level functions pass through
    without a closure. *)
val run :
  ?cpu:Memmodel.Cpu.t ->
  plan ->
  Wire.Cursor.Writer.t ->
  Wire.Dyn.t ->
  write:
    (cpu:Memmodel.Cpu.t option ->
    plan ->
    Wire.Cursor.Writer.t ->
    Wire.Dyn.t ->
    unit) ->
  unit

(** [deserialize ?cpu schema desc buf] rebuilds a message from a received
    object. Bytes/string fields become [Zero_copy] windows into [buf] (one
    new reference each); nothing larger than the header/tables is read.
    Raises [Malformed] on out-of-bounds offsets or bad bitmaps. *)
val deserialize :
  ?cpu:Memmodel.Cpu.t ->
  Schema.Desc.t ->
  Schema.Desc.message ->
  Mem.Pinned.Buf.t ->
  Wire.Dyn.t
