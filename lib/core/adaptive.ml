type t = {
  alpha : float;
  mutable copy_per_byte : float; (* cycles per byte, EWMA *)
  mutable zc_fixed : float; (* cycles per zero-copy construction, EWMA *)
  mutable threshold : int;
  mutable observations : int;
}

let clamp v = if v < 64 then 64 else if v > 8192 then 8192 else v

let create ?(initial = 512) ?(alpha = 0.05) () =
  (* Seed the estimates so the ratio starts at [initial]. *)
  {
    alpha;
    copy_per_byte = 1.0;
    zc_fixed = float_of_int initial;
    threshold = clamp initial;
    observations = 0;
  }

let threshold t = t.threshold

let estimates t = (t.copy_per_byte, t.zc_fixed)

let observations t = t.observations

let ewma t old v = ((1.0 -. t.alpha) *. old) +. (t.alpha *. v)

let refresh t =
  if t.copy_per_byte > 0.0 then
    t.threshold <- clamp (int_of_float (t.zc_fixed /. t.copy_per_byte))

(* Synthetic-observation hooks: the same EWMA/refresh step [make] performs,
   minus the cycle meter — callers (tests, replayed traces) supply the
   measured cost directly. *)

let observe_copy t ~bytes ~cycles =
  if bytes > 0 then begin
    t.observations <- t.observations + 1;
    t.copy_per_byte <- ewma t t.copy_per_byte (cycles /. float_of_int bytes);
    refresh t
  end

let observe_zc t ~cycles =
  t.observations <- t.observations + 1;
  t.zc_fixed <- ewma t t.zc_fixed cycles;
  refresh t

let make ?cpu t ep (view : Mem.View.t) =
  let config = Config.with_threshold t.threshold in
  match cpu with
  | None -> Cf_ptr.make config ep view
  | Some cpu ->
      let c0 = Memmodel.Cpu.cycles cpu in
      let payload = Cf_ptr.make ~cpu config ep view in
      let cost = Memmodel.Cpu.cycles cpu -. c0 in
      t.observations <- t.observations + 1;
      (match payload with
      | Wire.Payload.Zero_copy _ ->
          (* Add the completion-side share the construction doesn't see. *)
          let p = Memmodel.Cpu.params cpu in
          t.zc_fixed <-
            ewma t t.zc_fixed
              (cost +. p.Memmodel.Params.cost_completion_per_sge)
      | Wire.Payload.Copied _ | Wire.Payload.Literal _ ->
          if view.Mem.View.len > 0 then
            t.copy_per_byte <-
              ewma t t.copy_per_byte (cost /. float_of_int view.Mem.View.len));
      refresh t;
      payload
