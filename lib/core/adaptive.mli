(** Dynamic zero-copy threshold (paper §7, "Static zero-copy threshold").

    The 512-byte threshold is a point estimate for one machine under one
    load; §7 observes it should move with memory-bandwidth pressure. This
    module keeps online estimates of the two quantities whose ratio defines
    the crossover:

    - the per-byte cost of the copy path (EWMA over observed copies), and
    - the fixed metadata cost of the zero-copy path (EWMA over observed
      constructions, plus the completion-side share from the machine
      parameters),

    and sets [threshold = zc_fixed_cost / copy_cost_per_byte]. Construction
    costs are measured from the per-core cycle meter around each [make], so
    the estimate tracks whatever the cache hierarchy is currently doing —
    under higher memory pressure copies get slower per byte and the
    threshold drops; if metadata misses dominate it rises. *)

type t

(** [create ?initial ?alpha ()] — [initial] threshold (default 512),
    EWMA weight [alpha] (default 0.05). *)
val create : ?initial:int -> ?alpha:float -> unit -> t

(** Current threshold in bytes (clamped to [64, 8192]). *)
val threshold : t -> int

(** Drop-in replacement for {!Cf_ptr.make} that uses — and updates — the
    adaptive threshold. Without a [cpu] the estimates stay frozen. *)
val make :
  ?cpu:Memmodel.Cpu.t -> t -> Net.Endpoint.t -> Mem.View.t -> Wire.Payload.t

(** Feed one synthetic copy-path observation ([cycles] spent copying
    [bytes]) through the same EWMA/refresh step [make] performs. No-op when
    [bytes <= 0]. For tests and replayed traces. *)
val observe_copy : t -> bytes:int -> cycles:float -> unit

(** Feed one synthetic zero-copy construction cost (fixed cycles,
    completion share included) through the EWMA/refresh step. *)
val observe_zc : t -> cycles:float -> unit

(** Observed estimates, for inspection: (copy cycles/byte, zc fixed cycles). *)
val estimates : t -> float * float

val observations : t -> int
