(** The hybrid smart-pointer constructor (paper Listing 3, §3.2.2).

    [make] is agnostic to where the argument bytes live. It runs the
    scatter-gather heuristic at construction time — the paper's key design
    point: deciding per field, when the [CFPtr] is built, means each field
    pays {e either} a data cache cost (copy) {e or} a metadata cache cost
    (refcount), never both (§3.2.1).

    - size below threshold → copy into the per-request arena ([Copied]);
    - size at/above threshold → [recover_ptr]; if the bytes lie in a live
      pinned allocation, take a reference ([Zero_copy]);
    - otherwise (non-DMA-safe memory) → copy. Memory transparency: the
      caller never needs to know.

    Resilience: when the arena refuses a copy ([Out_of_memory]) but the
    bytes are DMA-safe, the constructor falls back to zero-copy instead of
    failing the request — the inverse of the usual demotion. Only a
    sub-threshold copy of non-pinned bytes still raises. *)

(** [make ?cpu config ep view] builds a payload from arbitrary bytes. The
    size test is a lookup in a precomputed {!Mem.Arena.Verdict} table over
    the arena's 16 B size classes (cached per domain, keyed by the config's
    threshold) — semantically identical to [len >= threshold]. *)
val make :
  ?cpu:Memmodel.Cpu.t ->
  Config.t ->
  Net.Endpoint.t ->
  Mem.View.t ->
  Wire.Payload.t

(** The two arms of {!make}, exposed for specialized (codegen-folded)
    setters whose schema bounds prove the verdict at compile time:
    [copy_folded] when [max_size < crossover], [zc_folded] when
    [min_size >= crossover]. Each keeps {!make}'s resilience behaviour
    (arena exhaustion falls back to zero-copy; non-DMA-safe bytes fall back
    to copy), so a stale bound degrades gracefully instead of failing. *)

val copy_folded :
  ?cpu:Memmodel.Cpu.t ->
  Config.t ->
  Net.Endpoint.t ->
  Mem.View.t ->
  Wire.Payload.t

val zc_folded :
  ?cpu:Memmodel.Cpu.t ->
  Config.t ->
  Net.Endpoint.t ->
  Mem.View.t ->
  Wire.Payload.t

(** [of_buf ?cpu config buf] builds a payload from an already-referenced
    pinned buffer (e.g. a value freshly read from the store, or a field of a
    deserialized request): no recover_ptr lookup is needed, but the
    threshold still applies — a small pinned field is copied and its
    reference dropped. Ownership of one reference passes to the payload when
    the zero-copy variant is chosen. *)
val of_buf :
  ?cpu:Memmodel.Cpu.t ->
  Config.t ->
  Net.Endpoint.t ->
  Mem.Pinned.Buf.t ->
  Wire.Payload.t

(** Copies refused by an exhausted arena that fell back to zero-copy
    (process-wide counter; harnesses snapshot deltas). *)
val oom_fallbacks : unit -> int

val reset_counters : unit -> unit
