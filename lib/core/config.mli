(** Cornflakes runtime configuration.

    The two knobs the paper evaluates:

    - [zero_copy_threshold]: bytes/string fields at least this large are
      candidates for scatter-gather; smaller fields are copied. 512 B is the
      value the measurement study derives (§5); [0] gives the all-scatter-
      gather configuration and [max_int] the all-copy configuration used in
      Figure 12 / Table 4.
    - [serialize_and_send]: when on, the object header and copied fields
      share the gather entry carrying the packet header (§3.2.3); when off,
      Cornflakes materialises a scatter-gather array and the stack prepends
      a separate header entry (Table 5).

    Plus one resilience knob: [demote_on_pressure] lets the send path
    demote zero-copy fields to arena copies when the endpoint reports
    memory pressure (TX ring backing up, completions pinned) — graceful
    degradation instead of unbounded reference pinning. Healthy runs
    never trigger it. *)

type t = {
  zero_copy_threshold : int;
  serialize_and_send : bool;
  demote_on_pressure : bool;
}

(** Threshold 512, serialize-and-send on. *)
val default : t

(** Threshold 0: scatter-gather every bytes/string field in pinned memory. *)
val all_zero_copy : t

(** Threshold ∞: copy every field. *)
val all_copy : t

val with_threshold : int -> t

(** Whether the RefSan zero-copy safety sanitizer is recording (set by
    [CF_SANITIZE=1] in the environment, {!set_sanitize}, or
    [bench --sanitize]). *)
val sanitize : unit -> bool

val set_sanitize : bool -> unit

val pp : Format.formatter -> t -> unit
