(** [distinct_meta_lines bufs] — how many distinct refcount cache lines the
    buffers' metadata occupies (completion releases pay one miss per line,
    not per buffer). *)
val distinct_meta_lines : Mem.Pinned.Buf.t list -> int

(** Same count over the first [n] entries of an array — allocation-free for
    the hot send path (SGE counts are small, so the O(n²) scan is cheap). *)
val distinct_meta_lines_arr : Mem.Pinned.Buf.t array -> n:int -> int
