exception Malformed of string

(* A reusable serialization plan: region sizes plus a growable array of
   zero-copy gather entries (first [zc_count] slots live). [measure_into]
   refills an existing plan in place, so the steady-state send path reuses
   one plan (and its array) per endpoint instead of building a fresh list
   per message. The write cursors live in the plan too, for the same
   reason. *)
type plan = {
  mutable header_len : int;
  mutable stream_len : int;
  mutable zc : Mem.Pinned.Buf.t array;
  mutable zc_count : int;
  mutable zc_len : int;
  mutable total_len : int;
  mutable stream_pos : int; (* write cursor: copied region *)
  mutable zc_pos : int; (* write cursor: zero-copy region *)
}

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let bitmap_words nfields = (nfields + 31) / 32

let header_block_len (msg : Wire.Dyn.t) =
  let desc = Wire.Dyn.desc msg in
  4
  + (4 * bitmap_words (Array.length desc.Schema.Desc.fields))
  + (8 * Wire.Dyn.present_count msg)

(* --- Measuring ------------------------------------------------------- *)

let create_plan () =
  {
    header_len = 0;
    stream_len = 0;
    zc = [||];
    zc_count = 0;
    zc_len = 0;
    total_len = 0;
    stream_pos = 0;
    zc_pos = 0;
  }

(* Buf.t has no dummy value, so a growing array is seeded with the pushed
   element; stale entries beyond [zc_count] are never read. *)
let push_zc plan buf =
  let cap = Array.length plan.zc in
  if plan.zc_count >= cap then begin
    let arr = Array.make (max 8 (2 * cap)) buf in
    Array.blit plan.zc 0 arr 0 plan.zc_count;
    plan.zc <- arr
  end;
  plan.zc.(plan.zc_count) <- buf;
  plan.zc_count <- plan.zc_count + 1

let rec measure_payload plan (p : Wire.Payload.t) =
  match p with
  | Wire.Payload.Zero_copy buf ->
      plan.zc_len <- plan.zc_len + Mem.Pinned.Buf.len buf;
      push_zc plan buf
  | Wire.Payload.Copied v | Wire.Payload.Literal v ->
      plan.stream_len <- plan.stream_len + v.Mem.View.len

and measure_msg plan (msg : Wire.Dyn.t) =
  (* Direct slot iteration: no per-call closure for [iter_present]. *)
  let values = Wire.Dyn.raw_values msg in
  for i = 0 to Array.length values - 1 do
    match Array.unsafe_get values i with
    | Some v -> measure_value plan v
    | None -> ()
  done

and measure_value plan (v : Wire.Dyn.value) =
  match v with
  | Wire.Dyn.Int _ | Wire.Dyn.Float _ -> ()
  | Wire.Dyn.Payload p -> measure_payload plan p
  | Wire.Dyn.Nested m ->
      plan.stream_len <- plan.stream_len + header_block_len m;
      measure_msg plan m
  | Wire.Dyn.List elems ->
      plan.stream_len <- plan.stream_len + (8 * List.length elems);
      List.iter (measure_value plan) elems

let measure_into plan msg =
  plan.stream_len <- 0;
  plan.zc_count <- 0;
  plan.zc_len <- 0;
  measure_msg plan msg;
  plan.header_len <- header_block_len msg;
  plan.total_len <- plan.header_len + plan.stream_len + plan.zc_len

let measure msg =
  let plan = create_plan () in
  measure_into plan msg;
  plan

let zc_count plan = plan.zc_count

let iter_zc plan f =
  for i = 0 to plan.zc_count - 1 do
    f plan.zc.(i)
  done

let zc_bufs plan = Array.to_list (Array.sub plan.zc 0 plan.zc_count)

(* Prepend [plan]'s zero-copy entries (in order) onto [tail] — the shape the
   stack's segment-list API wants. *)
let zc_segments plan ~head ~tail =
  let rec go i acc = if i < 0 then acc else go (i - 1) (plan.zc.(i) :: acc) in
  head :: go (plan.zc_count - 1) tail

let object_len msg = (measure msg).total_len

let num_entries plan = 1 + plan.zc_count

(* --- Writing ----------------------------------------------------------

   Every header-block and table store goes through the constant-offset
   [Cursor.Writer] fast stores: the enclosing [write_msg] (or the List arm)
   issues one [span] bounds check over the region, after which slot writes
   are straight-line unchecked stores. Charge order is byte-for-byte the
   same as the historical cursor-seeking writer, so simulated figures are
   unchanged. *)

let rec write_msg ?cpu w cur (msg : Wire.Dyn.t) ~hpos =
  let module W = Wire.Cursor.Writer in
  let desc = Wire.Dyn.desc msg in
  let nfields = Array.length desc.Schema.Desc.fields in
  let bw = bitmap_words nfields in
  let values = Wire.Dyn.raw_values msg in
  if bw <= 1 then begin
    (* Folded path (≤32 fields): the bitmap fits one native int — one pass
       builds bitmap + present count, one [span] covers the whole header
       block, and every slot store lands at a computed offset with no
       cursor seeks and no per-store bounds checks. *)
    let bitmap = ref 0 in
    let present = ref 0 in
    for i = 0 to nfields - 1 do
      match Array.unsafe_get values i with
      | Some _ ->
          bitmap := !bitmap lor (1 lsl i);
          incr present
      | None -> ()
    done;
    W.span w ~pos:hpos ~len:(4 + (4 * bw) + (8 * !present));
    W.u32_at w ~pos:hpos bw;
    if bw = 1 then W.u32_at w ~pos:(hpos + 4) !bitmap;
    let slot_base = hpos + 4 + (4 * bw) in
    let k = ref 0 in
    for i = 0 to nfields - 1 do
      match Array.unsafe_get values i with
      | Some (Wire.Dyn.Int value) ->
          W.u64_at w ~pos:(slot_base + (8 * !k)) value;
          incr k
      | Some (Wire.Dyn.Float f) ->
          W.u64_at w ~pos:(slot_base + (8 * !k)) (Int64.bits_of_float f);
          incr k
      | Some v ->
          write_value ?cpu w cur v ~slot:(slot_base + (8 * !k));
          incr k
      | None -> ()
    done
  end
  else begin
    (* Wide messages (>32 fields): multi-word bitmap via a scratch array. *)
    W.span w ~pos:hpos
      ~len:(4 + (4 * bw) + (8 * Wire.Dyn.present_count msg));
    W.u32_at w ~pos:hpos bw;
    let words = Array.make bw 0 in
    for i = 0 to nfields - 1 do
      match Array.unsafe_get values i with
      | Some _ -> words.(i / 32) <- words.(i / 32) lor (1 lsl (i mod 32))
      | None -> ()
    done;
    Array.iteri (fun j word -> W.u32_at w ~pos:(hpos + 4 + (4 * j)) word) words;
    let slot_base = hpos + 4 + (4 * bw) in
    let k = ref 0 in
    for i = 0 to nfields - 1 do
      match Array.unsafe_get values i with
      | Some v ->
          write_value ?cpu w cur v ~slot:(slot_base + (8 * !k));
          incr k
      | None -> ()
    done
  end

(* Precondition: [slot, slot+8) lies inside a region already [span]ed by the
   caller (the header block, or a repeated-field table). *)
and write_value ?cpu w cur (v : Wire.Dyn.value) ~slot =
  let module W = Wire.Cursor.Writer in
  match v with
  | Wire.Dyn.Int value -> W.u64_at w ~pos:slot value
  | Wire.Dyn.Float f -> W.u64_at w ~pos:slot (Int64.bits_of_float f)
  | Wire.Dyn.Payload p -> write_payload ?cpu w cur p ~slot
  | Wire.Dyn.Nested m ->
      let nh = header_block_len m in
      let pos = cur.stream_pos in
      cur.stream_pos <- cur.stream_pos + nh;
      W.u32_at w ~pos:slot pos;
      W.u32_at w ~pos:(slot + 4) nh;
      write_msg ?cpu w cur m ~hpos:pos
  | Wire.Dyn.List elems ->
      let count = List.length elems in
      let table = cur.stream_pos in
      cur.stream_pos <- cur.stream_pos + (8 * count);
      W.u32_at w ~pos:slot table;
      W.u32_at w ~pos:(slot + 4) count;
      W.span w ~pos:table ~len:(8 * count);
      List.iteri
        (fun j elem -> write_value ?cpu w cur elem ~slot:(table + (8 * j)))
        elems

and write_payload ?cpu w cur (p : Wire.Payload.t) ~slot =
  let module W = Wire.Cursor.Writer in
  match p with
  | Wire.Payload.Zero_copy buf ->
      let len = Mem.Pinned.Buf.len buf in
      let pos = cur.zc_pos in
      cur.zc_pos <- cur.zc_pos + len;
      W.u32_at w ~pos:slot pos;
      W.u32_at w ~pos:(slot + 4) len;
      (* Data travels as its own gather entry; nothing written here. *)
      ignore cpu
  | Wire.Payload.Copied v | Wire.Payload.Literal v ->
      let pos = cur.stream_pos in
      cur.stream_pos <- cur.stream_pos + v.Mem.View.len;
      W.seek w pos;
      W.view_bytes w v;
      W.u32_at w ~pos:slot pos;
      W.u32_at w ~pos:(slot + 4) v.Mem.View.len

let write_value_at ?cpu w plan v ~slot = write_value ?cpu w plan v ~slot

let write_msg_generic ?cpu w plan msg = write_msg ?cpu w plan msg ~hpos:0

(* [run] owns the cursor init / postcondition bookkeeping around a writer
   body, so specialized (codegen-folded) writers share the exact contract of
   the generic one. The [write] callback takes [cpu] as a plain labeled
   option so passing a top-level function here allocates nothing. *)
let run ?cpu plan w msg ~write =
  plan.stream_pos <- plan.header_len;
  plan.zc_pos <- plan.header_len + plan.stream_len;
  write ~cpu plan w msg;
  assert (plan.stream_pos = plan.header_len + plan.stream_len);
  assert (plan.zc_pos = plan.total_len)

let generic_entry ~cpu plan w msg = write_msg_generic ?cpu w plan msg

let write ?cpu plan w msg = run ?cpu plan w msg ~write:generic_entry

(* --- Deserializing ---------------------------------------------------- *)

let charge_field_read cpu =
  match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.charge cpu Memmodel.Cpu.Deser
        (Memmodel.Cpu.params cpu).Memmodel.Params.cost_per_call

let max_depth = 32

let rec read_msg ?cpu ?(depth = 0) schema (desc : Schema.Desc.message) buf
    ~hpos =
  if depth > max_depth then malformed "nesting deeper than %d" max_depth;
  let module R = Wire.Cursor.Reader in
  let view = Mem.Pinned.Buf.view buf in
  let total = view.Mem.View.len in
  if hpos < 0 || hpos + 4 > total then malformed "header position out of range";
  let r = R.create ?cpu view in
  R.seek r hpos;
  let bw = R.u32 r in
  let nfields = Array.length desc.Schema.Desc.fields in
  if bw <> bitmap_words nfields then
    malformed "bitmap size %d does not match schema for %s" bw
      desc.Schema.Desc.msg_name;
  if hpos + 4 + (4 * bw) > total then malformed "bitmap out of range";
  let words = Array.init bw (fun _ -> R.u32 r) in
  let present i = words.(i / 32) land (1 lsl (i mod 32)) <> 0 in
  let msg = Wire.Dyn.create desc in
  let slot_base = hpos + 4 + (4 * bw) in
  let k = ref 0 in
  Array.iteri
    (fun i (field : Schema.Desc.field) ->
      if present i then begin
        let slot = slot_base + (8 * !k) in
        incr k;
        if slot + 8 > total then malformed "info slot out of range";
        let v = read_value ?cpu ~depth schema field buf r ~slot ~total in
        Wire.Dyn.set msg field.Schema.Desc.field_name v
      end)
    desc.Schema.Desc.fields;
  msg

and read_value ?cpu ~depth schema (field : Schema.Desc.field) buf r ~slot
    ~total =
  let module R = Wire.Cursor.Reader in
  charge_field_read cpu;
  match field.Schema.Desc.label with
  | Schema.Desc.Repeated ->
      R.seek r slot;
      let table = R.u32 r in
      let count = R.u32 r in
      if count < 0 || table < 0 || table + (8 * count) > total then
        malformed "repeated field table out of range";
      let elems =
        List.init count (fun j ->
            read_element ?cpu ~depth schema field buf r
              ~slot:(table + (8 * j))
              ~total)
      in
      Wire.Dyn.List elems
  | Schema.Desc.Singular ->
      read_element ?cpu ~depth schema field buf r ~slot ~total

and read_element ?cpu ~depth schema (field : Schema.Desc.field) buf r ~slot
    ~total =
  let module R = Wire.Cursor.Reader in
  R.seek r slot;
  match field.Schema.Desc.ty with
  | Schema.Desc.Scalar Schema.Desc.Float64 ->
      Wire.Dyn.Float (Int64.float_of_bits (R.u64 r))
  | Schema.Desc.Scalar _ -> Wire.Dyn.Int (R.u64 r)
  | Schema.Desc.Str | Schema.Desc.Bytes ->
      let off = R.u32 r in
      let len = R.u32 r in
      if off < 0 || len < 0 || off + len > total then
        malformed "payload [%d, %d) out of object of %d bytes" off (off + len)
          total;
      (* Zero-copy deserialization: the field is a window into the receive
         buffer, holding its own reference. *)
      let sub = Mem.Pinned.Buf.sub buf ~off ~len in
      Mem.Pinned.Buf.incr_ref ?cpu sub;
      Wire.Dyn.Payload (Wire.Payload.Zero_copy sub)
  | Schema.Desc.Message name -> (
      let off = R.u32 r in
      let hlen = R.u32 r in
      if off < 0 || hlen < 4 || off + hlen > total then
        malformed "nested header out of range";
      match Schema.Desc.find_message schema name with
      | None -> malformed "unknown nested message %s" name
      | Some nested_desc ->
          let saved = R.pos r in
          let nested =
            read_msg ?cpu ~depth:(depth + 1) schema nested_desc buf ~hpos:off
          in
          R.seek r saved;
          Wire.Dyn.Nested nested)

let deserialize ?cpu schema desc buf = read_msg ?cpu schema desc buf ~hpos:0
