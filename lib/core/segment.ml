let frag_header_len = 16

let max_chunk = Net.Packet.max_payload - frag_header_len - 128

let max_object = 1 lsl 21 (* 2 MB: top class of the reassembly pool *)

let u32_to b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let u32_of (v : Mem.View.t) off =
  let b = v.Mem.View.data and base = v.Mem.View.off + off in
  Char.code (Bytes.get b base)
  lor (Char.code (Bytes.get b (base + 1)) lsl 8)
  lor (Char.code (Bytes.get b (base + 2)) lsl 16)
  lor (Char.code (Bytes.get b (base + 3)) lsl 24)

module Segmenter = struct
  type t = {
    ep : Net.Endpoint.t;
    scratch : Bytes.t; (* header+copied region, materialised once *)
    scratch_addr : int;
    mutable next_msg_id : int;
  }

  let create ep =
    let space = Mem.Registry.space (Net.Endpoint.registry ep) in
    {
      ep;
      scratch = Bytes.create max_chunk;
      scratch_addr = Mem.Addr_space.reserve space ~bytes:max_chunk;
      next_msg_id = 1;
    }

  (* One frame covering object-layout range [start, stop). *)
  let send_frame ?cpu t ~dst ~msg_id ~total ~start ~stop msg ~contiguous_len =
    let copy_lo = min start contiguous_len
    and copy_hi = min stop contiguous_len in
    let copy_len = copy_hi - copy_lo in
    let staging =
      Net.Endpoint.alloc_tx ?cpu t.ep
        ~len:(Net.Packet.header_len + frag_header_len + copy_len)
    in
    (* Fragment header. *)
    let v = Mem.Pinned.Buf.view staging in
    u32_to v.Mem.View.data (v.Mem.View.off + Net.Packet.header_len) msg_id;
    u32_to v.Mem.View.data (v.Mem.View.off + Net.Packet.header_len + 4) start;
    u32_to v.Mem.View.data (v.Mem.View.off + Net.Packet.header_len + 8) total;
    u32_to v.Mem.View.data
      (v.Mem.View.off + Net.Packet.header_len + 12)
      (stop - start);
    (match cpu with
    | None -> ()
    | Some cpu ->
        Memmodel.Cpu.stream cpu Memmodel.Cpu.Tx
          ~addr:(v.Mem.View.addr + Net.Packet.header_len)
          ~len:frag_header_len);
    (* The slice of the header+copied region. *)
    if copy_len > 0 then
      Mem.Pinned.Buf.blit_from ?cpu staging
        ~src:
          (Mem.View.make ~addr:(t.scratch_addr + copy_lo) ~data:t.scratch
             ~off:copy_lo ~len:copy_len)
        ~dst_off:(Net.Packet.header_len + frag_header_len);
    (* Zero-copy slices in range, each with its own reference. *)
    let zc = ref [] in
    Obj_api.iterate_over_zero_copy_entries msg ~start ~stop (fun slice ->
        Mem.Pinned.Buf.incr_ref ?cpu slice;
        zc := slice :: !zc);
    (match cpu with
    | None -> ()
    | Some cpu ->
        let p = Memmodel.Cpu.params cpu in
        Memmodel.Cpu.charge cpu Memmodel.Cpu.Safety
          (float_of_int (Memutil.distinct_meta_lines !zc)
          *. p.Memmodel.Params.cost_completion_per_sge));
    Net.Endpoint.send_inline_header ?cpu t.ep ~dst
      ~segments:(staging :: List.rev !zc)

  let send ?cpu t ~dst msg =
    let plan = Format_.measure msg in
    let total = plan.Format_.total_len in
    if total > max_object then
      invalid_arg
        (Printf.sprintf "Segmenter.send: object of %d bytes exceeds %d" total
           max_object);
    let contiguous_len = plan.Format_.header_len + plan.Format_.stream_len in
    if contiguous_len > max_chunk then
      invalid_arg "Segmenter.send: header+copied region exceeds one frame";
    (* Materialise the contiguous region once. *)
    let w =
      Wire.Cursor.Writer.create ?cpu
        (Mem.View.make ~addr:t.scratch_addr ~data:t.scratch ~off:0
           ~len:contiguous_len)
    in
    Format_.write ?cpu plan w msg;
    let msg_id = t.next_msg_id in
    t.next_msg_id <- t.next_msg_id + 1;
    let rec frames start =
      if start < total then begin
        let stop = min total (start + max_chunk) in
        send_frame ?cpu t ~dst ~msg_id ~total ~start ~stop msg ~contiguous_len;
        frames stop
      end
    in
    frames 0;
    (* The frames hold slice references; drop the message's own. *)
    Format_.iter_zc plan (fun buf -> Mem.Pinned.Buf.decr_ref ?cpu buf)
end

module Reassembler = struct
  type pending_obj = {
    buf : Mem.Pinned.Buf.t;
    total : int;
    mutable received : int;
    mutable chunks : (int * int) list; (* received [start, stop) ranges *)
    mutable last_activity : int;
  }

  type t = {
    pool : Mem.Pinned.Pool.t;
    pending : (int * int, pending_obj) Hashtbl.t; (* (src, msg_id) *)
    mutable now : int; (* advanced by [expire] *)
  }

  let create registry =
    let pool =
      Mem.Pinned.Pool.create
        (Mem.Registry.space registry)
        ~name:"reassembly"
        ~classes:
          [ (16384, 128); (65536, 64); (262144, 32); (1048576, 8); (max_object, 4) ]
    in
    Mem.Registry.register registry pool;
    { pool; pending = Hashtbl.create 32; now = 0 }

  let pending t = Hashtbl.length t.pending

  (* Drop half-built objects whose fragments stopped arriving — without
     this, a single lost fragment would pin a reassembly buffer forever. *)
  let expire t ~now ~timeout_ns =
    t.now <- now;
    let dead =
      Hashtbl.fold
        (fun key e acc ->
          if now - e.last_activity > timeout_ns then (key, e) :: acc else acc)
        t.pending []
    in
    List.iter
      (fun (key, e) ->
        Hashtbl.remove t.pending key;
        Mem.Pinned.Buf.decr_ref e.buf)
      dead;
    List.length dead

  let overlaps chunks ~start ~stop =
    List.exists (fun (a, b) -> start < b && a < stop) chunks

  let on_packet ?cpu t ~src buf ~deliver =
    let v = Mem.Pinned.Buf.view buf in
    if v.Mem.View.len < frag_header_len then Mem.Pinned.Buf.decr_ref ?cpu buf
    else begin
      let msg_id = u32_of v 0 in
      let start = u32_of v 4 in
      let total = u32_of v 8 in
      let chunk_len = u32_of v 12 in
      if
        chunk_len < 0 || start < 0 || total <= 0 || total > max_object
        || start + chunk_len > total
        || frag_header_len + chunk_len > v.Mem.View.len
      then Mem.Pinned.Buf.decr_ref ?cpu buf
      else begin
        let key = (src, msg_id) in
        let entry =
          match Hashtbl.find_opt t.pending key with
          | Some e when e.total = total -> Some e
          | Some _ -> None (* conflicting total: drop *)
          | None -> (
              match Mem.Pinned.Buf.alloc ?cpu t.pool ~len:total with
              | obj ->
                  let e =
                    {
                      buf = obj;
                      total;
                      received = 0;
                      chunks = [];
                      last_activity = t.now;
                    }
                  in
                  Hashtbl.replace t.pending key e;
                  Some e
              | exception Mem.Pinned.Out_of_memory _ -> None)
        in
        (match entry with
        | None -> ()
        | Some e ->
            let stop = start + chunk_len in
            e.last_activity <- t.now;
            if not (overlaps e.chunks ~start ~stop) then begin
              Mem.Pinned.Buf.blit_from ?cpu e.buf
                ~src:(Mem.View.sub v ~off:frag_header_len ~len:chunk_len)
                ~dst_off:start;
              e.chunks <- (start, stop) :: e.chunks;
              e.received <- e.received + chunk_len;
              if e.received = e.total then begin
                Hashtbl.remove t.pending key;
                deliver ~src e.buf
              end
            end);
        Mem.Pinned.Buf.decr_ref ?cpu buf
      end
    end
end
