(* Copies refused by an exhausted arena fall back to zero-copy when the
   bytes are DMA-safe — the inverse of the usual demotion, trading a
   pinned reference for not failing the request. Counted so faulted runs
   can report how often the allocator forced the trade. Domain-local so a
   parallel-harness job's snapshot deltas cover only its own sends. *)
let oom_fallbacks_dls : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let oom_fallbacks_ctr () = Domain.DLS.get oom_fallbacks_dls

let oom_fallbacks () = !(oom_fallbacks_ctr ())

let reset_counters () = oom_fallbacks_ctr () := 0

let copy ?cpu ep view =
  Wire.Payload.Copied (Mem.Arena.copy_in ?cpu (Net.Endpoint.arena ep) view)

let make ?cpu (config : Config.t) ep (view : Mem.View.t) =
  let recover () =
    Mem.Registry.recover_ptr ?cpu
      (Net.Endpoint.registry ep)
      ~addr:view.Mem.View.addr ~len:view.Mem.View.len
  in
  if view.Mem.View.len >= config.zero_copy_threshold then
    match recover () with
    | Some buf -> Wire.Payload.Zero_copy buf
    | None -> copy ?cpu ep view
  else
    match copy ?cpu ep view with
    | p -> p
    | exception (Mem.Pinned.Out_of_memory _ as oom) -> (
        match recover () with
        | Some buf ->
            incr (oom_fallbacks_ctr ());
            Wire.Payload.Zero_copy buf
        | None -> raise oom)

let of_buf ?cpu (config : Config.t) ep buf =
  if Mem.Pinned.Buf.len buf >= config.zero_copy_threshold then
    Wire.Payload.Zero_copy buf
  else
    match copy ?cpu ep (Mem.Pinned.Buf.view buf) with
    | p ->
        Mem.Pinned.Buf.decr_ref ?cpu buf;
        p
    | exception Mem.Pinned.Out_of_memory _ ->
        (* Already-referenced pinned bytes: keep the reference and ship
           zero-copy instead of failing. *)
        incr (oom_fallbacks_ctr ());
        Wire.Payload.Zero_copy buf
