(* Copies refused by an exhausted arena fall back to zero-copy when the
   bytes are DMA-safe — the inverse of the usual demotion, trading a
   pinned reference for not failing the request. Counted so faulted runs
   can report how often the allocator forced the trade. Domain-local so a
   parallel-harness job's snapshot deltas cover only its own sends. *)
let oom_fallbacks_dls : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let oom_fallbacks_ctr () = Domain.DLS.get oom_fallbacks_dls

let oom_fallbacks () = !(oom_fallbacks_ctr ())

let reset_counters () = oom_fallbacks_ctr () := 0

let copy ?cpu ep view =
  Wire.Payload.Copied (Mem.Arena.copy_in ?cpu (Net.Endpoint.arena ep) view)

let recover ?cpu ep (view : Mem.View.t) =
  Mem.Registry.recover_ptr ?cpu
    (Net.Endpoint.registry ep)
    ~addr:view.Mem.View.addr ~len:view.Mem.View.len

(* The two arms of the hybrid heuristic, exposed separately so codegen can
   bind a field with a provable size bound ([max_size]/[min_size] vs the
   crossover) directly to its arm — no size test at all on that path. Both
   keep [make]'s resilience behaviour and take the config for a uniform
   call shape in generated setters. *)

let zc_folded ?cpu (_config : Config.t) ep (view : Mem.View.t) =
  match recover ?cpu ep view with
  | Some buf -> Wire.Payload.Zero_copy buf
  | None -> copy ?cpu ep view

let copy_folded ?cpu (_config : Config.t) ep (view : Mem.View.t) =
  match copy ?cpu ep view with
  | p -> p
  | exception (Mem.Pinned.Out_of_memory _ as oom) -> (
      match recover ?cpu ep view with
      | Some buf ->
          incr (oom_fallbacks_ctr ());
          Wire.Payload.Zero_copy buf
      | None -> raise oom)

(* Unbounded fields dispatch through the arena's size-class verdict table
   instead of a per-field compare. The table depends only on the threshold;
   one domain-local slot caches it (configs in a run share one threshold,
   and the parallel harness gives each domain its own slot — no shared
   mutable global). *)
let verdict_dls : Mem.Arena.Verdict.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      ref (Mem.Arena.Verdict.make ~threshold:Config.default.zero_copy_threshold))

let verdict_for threshold =
  let cache = Domain.DLS.get verdict_dls in
  let v = !cache in
  if Mem.Arena.Verdict.threshold v = threshold then v
  else begin
    let v = Mem.Arena.Verdict.make ~threshold in
    cache := v;
    v
  end

let make ?cpu (config : Config.t) ep (view : Mem.View.t) =
  let v = verdict_for config.zero_copy_threshold in
  if Mem.Arena.Verdict.zc v view.Mem.View.len then zc_folded ?cpu config ep view
  else copy_folded ?cpu config ep view

let of_buf ?cpu (config : Config.t) ep buf =
  let v = verdict_for config.zero_copy_threshold in
  if Mem.Arena.Verdict.zc v (Mem.Pinned.Buf.len buf) then
    Wire.Payload.Zero_copy buf
  else
    match copy ?cpu ep (Mem.Pinned.Buf.view buf) with
    | p ->
        Mem.Pinned.Buf.decr_ref ?cpu buf;
        p
    | exception Mem.Pinned.Out_of_memory _ ->
        (* Already-referenced pinned bytes: keep the reference and ship
           zero-copy instead of failing. *)
        incr (oom_fallbacks_ctr ());
        Wire.Payload.Zero_copy buf
