type t = {
  pool : Mem.Pinned.Pool.t;
  mutable buf : Mem.Pinned.Buf.t;
  mutable cow_count : int;
}

let create ?cpu pool ~len =
  { pool; buf = Mem.Pinned.Buf.alloc ?cpu pool ~len; cow_count = 0 }

let of_buf pool buf = { pool; buf; cow_count = 0 }

let buf t = t.buf

let len t = Mem.Pinned.Buf.len t.buf

let shared t = Mem.Pinned.Buf.refcount t.buf > 1

let cow_count t = t.cow_count

let write ?cpu t ~off s =
  if off < 0 || off + String.length s > Mem.Pinned.Buf.len t.buf then
    invalid_arg "Cow_buf.write: out of bounds";
  if shared t then begin
    (* Someone (typically a pending DMA) still reads the old bytes: clone,
       swap the pointer, and release our reference on the original. *)
    let fresh =
      Mem.Pinned.Buf.alloc ?cpu ~site:"Cow_buf.clone" t.pool
        ~len:(Mem.Pinned.Buf.len t.buf)
    in
    Mem.Pinned.Buf.blit_from ?cpu ~site:"Cow_buf.clone" fresh
      ~src:(Mem.Pinned.Buf.view t.buf) ~dst_off:0;
    Mem.Pinned.Buf.note_cow_clone t.buf;
    Mem.Pinned.Buf.decr_ref ?cpu ~site:"Cow_buf.clone" t.buf;
    t.buf <- fresh;
    t.cow_count <- t.cow_count + 1
  end;
  let v = Mem.Pinned.Buf.view t.buf in
  Bytes.blit_string s 0 v.Mem.View.data (v.Mem.View.off + off) (String.length s);
  (* CoW-mediated writes are race-free by construction: either the buffer was
     private, or we just cloned it. Mark them so RefSan's write-after-post
     detector does not flag the (legitimate) mutation. *)
  Mem.Pinned.Buf.note_write ~site:"Cow_buf.write" ~via_cow:true t.buf ~off
    ~len:(String.length s);
  match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:(v.Mem.View.addr + off)
        ~len:(String.length s)

let release ?cpu t = Mem.Pinned.Buf.decr_ref ?cpu ~site:"Cow_buf.release" t.buf
