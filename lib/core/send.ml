exception Message_too_large of { len : int; max : int }

(* Degradation counters (domain-local, like the scratch plan below): a
   parallel-harness job runs entirely on one domain, so the harness's
   snapshot-delta bookkeeping over one job sees exactly that job's
   demotions — never a concurrent job's. *)
type counters = { mutable demotions : int; mutable demotion_skips : int }

let counters_dls : counters Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { demotions = 0; demotion_skips = 0 })

let counters () = Domain.DLS.get counters_dls

let pressure_demotions () = (counters ()).demotions

let pressure_demotion_skips () = (counters ()).demotion_skips

let reset_counters () =
  let c = counters () in
  c.demotions <- 0;
  c.demotion_skips <- 0

(* Demote the smallest zero-copy payloads to copies until at most [keep]
   remain ([keep = 0] demotes every one). Demotion pays both the metadata
   touch (the refcount was already taken) and the data copy — the
   double-cost case §3.2.1 warns about, which is why it only happens on
   SGE-limit overflow or under memory pressure. With [best_effort] an
   arena-exhausted copy keeps the zero-copy reference instead of raising;
   returns (demoted, kept-for-lack-of-arena). *)
let demote_excess ?cpu ?(site = "Send.demote") ?(best_effort = false) ep msg ~keep =
  let zc_lens =
    Wire.Dyn.fold_payloads msg ~init:[] ~f:(fun acc p ->
        match p with
        | Wire.Payload.Zero_copy buf -> Mem.Pinned.Buf.len buf :: acc
        | Wire.Payload.Copied _ | Wire.Payload.Literal _ -> acc)
  in
  let count = List.length zc_lens in
  let demoted = ref 0 in
  let skipped = ref 0 in
  if count > keep then begin
    let sorted = List.sort (fun a b -> compare b a) zc_lens in
    let cutoff = if keep = 0 then max_int else List.nth sorted (keep - 1) in
    let strictly_larger =
      List.length (List.filter (fun l -> l > cutoff) sorted)
    in
    (* Keep everything strictly larger than the cutoff length, plus the
       first [keep - strictly_larger] payloads of exactly the cutoff length
       in traversal order; demote every other zero-copy payload. *)
    let allow_at_cutoff = ref (keep - strictly_larger) in
    let arena = Net.Endpoint.arena ep in
    Wire.Dyn.map_payloads msg (fun p ->
        match p with
        | Wire.Payload.Copied _ | Wire.Payload.Literal _ -> p
        | Wire.Payload.Zero_copy buf ->
            let len = Mem.Pinned.Buf.len buf in
            let keep_this =
              if len > cutoff then true
              else if len < cutoff then false
              else if !allow_at_cutoff > 0 then begin
                decr allow_at_cutoff;
                true
              end
              else false
            in
            if keep_this then p
            else begin
              match
                Mem.Arena.copy_in ?cpu ~site arena (Mem.Pinned.Buf.view buf)
              with
              | copied ->
                  Mem.Pinned.Buf.decr_ref ?cpu ~site buf;
                  incr demoted;
                  Wire.Payload.Copied copied
              | exception Mem.Pinned.Out_of_memory _ when best_effort ->
                  incr skipped;
                  p
            end)
  end;
  (!demoted, !skipped)

(* One reusable plan per domain: a domain runs one simulation at a time and
   [send_object] never re-enters itself (segmented sends go through
   [Segment], which measures independently), so the measured plan is always
   consumed before the next send starts. Domain-local rather than global so
   parallel harness workers never share it. *)
type scratch = { plan : Format_.plan; writer : Wire.Cursor.Writer.t }

let scratch_dls : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        plan = Format_.create_plan ();
        (* One reusable writer, retargeted ([Writer.reset]) at each send's
           staging window instead of allocated per message. *)
        writer =
          Wire.Cursor.Writer.create
            (Mem.View.make ~addr:0 ~data:Bytes.empty ~off:0 ~len:0);
      })

let scratch () = Domain.DLS.get scratch_dls

(* The full send pipeline, parameterised over the serializer body: the
   generic writer for [send_via], a codegen-folded [write_folded] for
   generated [send]s ([send_planned]). [write] must be a top-level function
   so the hot path stays allocation-free. *)
let send_planned ?cpu (config : Config.t) (tr : Net.Transport.t) ~dst msg
    ~write =
  let ep = tr.Net.Transport.tr_ep in
  let headroom = tr.Net.Transport.tr_headroom in
  let max_len = tr.Net.Transport.tr_max_msg_len in
  let scratch = scratch () in
  let plan = scratch.plan in
  Format_.measure_into plan msg;
  if plan.Format_.total_len > max_len then
    raise (Message_too_large { len = plan.Format_.total_len; max = max_len });
  let limit = (Nic.Device.model (Net.Endpoint.nic ep)).Nic.Model.max_sge in
  let max_zc = limit - if config.serialize_and_send then 1 else 2 in
  if plan.Format_.zc_count > max_zc then begin
    ignore (demote_excess ?cpu ep msg ~keep:max_zc);
    Format_.measure_into plan msg
  end;
  (* Graceful degradation: when completions are backing up (lost/delayed
     CQEs filling the TX ring), stop pinning new references — demote every
     zero-copy payload to an arena copy, best-effort if the arena is
     constrained too. *)
  if
    config.demote_on_pressure && plan.Format_.zc_count > 0
    && Net.Endpoint.under_pressure ep
  then begin
    let demoted, skipped =
      demote_excess ?cpu ~site:"Send.pressure_demote" ~best_effort:true ep msg
        ~keep:0
    in
    let c = counters () in
    c.demotions <- c.demotions + demoted;
    c.demotion_skips <- c.demotion_skips + skipped;
    if demoted > 0 then Format_.measure_into plan msg
  end;
  let contiguous_len = plan.Format_.header_len + plan.Format_.stream_len in
  (* Completion-side reference release: by the time the CQE arrives the
     refcount metadata has typically been evicted again, so the release
     pays a second metadata miss — but buffers whose refcounts share a
     cache line (adjacent slots, e.g. one value's linked list) amortise it.
     Charged here (per distinct metadata line) so per-request service times
     include it; staging entries recycle hot buffers and pay nothing. *)
  (match cpu with
  | None -> ()
  | Some cpu ->
      let p = Memmodel.Cpu.params cpu in
      Memmodel.Cpu.charge cpu Memmodel.Cpu.Safety
        (float_of_int
           (Memutil.distinct_meta_lines_arr plan.Format_.zc
              ~n:plan.Format_.zc_count)
        *. p.Memmodel.Params.cost_completion_per_sge));
  if config.serialize_and_send then begin
    (* One staging buffer: transport headroom (wire headers + framing) +
       object header + copied fields. Zero-copy payloads ride as further
       gather entries. *)
    let staging =
      Net.Endpoint.alloc_tx ?cpu ep ~len:(headroom + contiguous_len)
    in
    let window =
      Mem.Pinned.Buf.sub_view ~site:"Send.staging" staging ~off:headroom
        ~len:contiguous_len
    in
    let w = scratch.writer in
    Wire.Cursor.Writer.reset ?cpu w window;
    Format_.run ?cpu plan w msg ~write;
    tr.Net.Transport.tr_send_inline_zc ?cpu ~dst ~head:staging
      ~zc:plan.Format_.zc ~zc_n:plan.Format_.zc_count
  end
  else begin
    (* Layered path: object buffer, then an explicit scatter-gather array
       handed to the stack, which prepends a header-only entry. *)
    let obj = Net.Endpoint.alloc_tx ?cpu ep ~len:contiguous_len in
    let w = scratch.writer in
    Wire.Cursor.Writer.reset ?cpu w (Mem.Pinned.Buf.view obj);
    Format_.run ?cpu plan w msg ~write;
    let nsge = 1 + plan.Format_.zc_count in
    let arena = Net.Endpoint.arena ep in
    let sga = Mem.Arena.alloc ?cpu ~site:"Send.sga" arena ~len:(16 * nsge) in
    (match cpu with
    | None -> ()
    | Some cpu ->
        let p = Memmodel.Cpu.params cpu in
        (* Materialising the scatter-gather array: a heap vector allocation,
           writing (ptr, len) pairs, and the stack re-reading them while
           posting — the intermediate transformation serialize-and-send
           eliminates (paper section 3.2.3). *)
        Memmodel.Cpu.charge cpu Memmodel.Cpu.Alloc
          p.Memmodel.Params.cost_vec_alloc;
        Memmodel.Cpu.charge cpu Memmodel.Cpu.Tx
          (float_of_int nsge *. 2.0 *. p.Memmodel.Params.cost_per_call);
        Memmodel.Cpu.stream cpu Memmodel.Cpu.Tx ~addr:sga.Mem.View.addr
          ~len:(16 * nsge);
        Memmodel.Cpu.stream cpu Memmodel.Cpu.Tx ~addr:sga.Mem.View.addr
          ~len:(16 * nsge));
    tr.Net.Transport.tr_send_extra_zc ?cpu ~dst ~head:obj ~zc:plan.Format_.zc
      ~zc_n:plan.Format_.zc_count;
    (* The stack has consumed the scatter-gather array; hand the chunk back
       so the next layered send reuses it. *)
    Mem.Arena.recycle ~site:"Send.sga" arena sga
  end
[@@alloc_free]

(* Generic serializer body as a top-level function: passing it below is a
   static value, not a closure allocation. *)
let generic_write ~cpu plan w msg = Format_.write_msg_generic ?cpu w plan msg

let send_via ?cpu config tr ~dst msg =
  send_planned ?cpu config tr ~dst msg ~write:generic_write
[@@alloc_free]

(* Compatibility shim for the UDP-only call sites: [Endpoint.transport] is
   cached per endpoint, so this stays allocation-free. *)
let send_object ?cpu config ep ~dst msg =
  send_via ?cpu config (Net.Endpoint.transport ep) ~dst msg

let deserialize = Format_.deserialize
