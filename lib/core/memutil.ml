(* Count the distinct refcount-metadata cache lines behind a buffer list:
   the unit of completion-side metadata misses. *)
let distinct_meta_lines bufs =
  let lines =
    List.sort_uniq compare
      (List.map (fun b -> Mem.Pinned.Buf.metadata_addr b lsr 6) bufs)
  in
  List.length lines

(* Allocation-free variant over the first [n] entries of a plan's gather
   array. SGE counts are bounded by the NIC model (tens at most), so the
   quadratic scan beats sort_uniq's list churn on the hot path. *)
let distinct_meta_lines_arr bufs ~n =
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    let line = Mem.Pinned.Buf.metadata_addr bufs.(i) lsr 6 in
    let seen = ref false in
    for j = 0 to i - 1 do
      if Mem.Pinned.Buf.metadata_addr bufs.(j) lsr 6 = line then seen := true
    done;
    if not !seen then incr distinct
  done;
  !distinct
