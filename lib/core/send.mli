(** The combined serialize-and-send entry point (paper §3.2.3, Listing 2's
    [send_object]).

    With [config.serialize_and_send] on, the packet header, object header
    and copied fields share one staging buffer/gather entry, and zero-copy
    payloads are posted directly from the message — no intermediate
    scatter-gather array exists. With it off, Cornflakes behaves like a
    serialization library layered over an independent stack: it builds an
    object buffer, materialises a scatter-gather array, and the stack
    prepends its own header entry (one extra gather entry, one extra
    allocation — the Table 5 ablation).

    Ownership: the message's zero-copy references transfer to the stack and
    are released on TX completion; the caller must not release the message's
    payloads after a successful send. If the gather list would exceed the
    NIC's SGE limit, the smallest zero-copy payloads are transparently
    demoted to copies first; and when the endpoint reports memory pressure
    (TX ring half full — completions lost or delayed) every zero-copy
    payload is demoted, best-effort, so faulted runs degrade to the copy
    path instead of pinning unbounded references. *)

exception Message_too_large of { len : int; max : int }

(** Zero-copy payloads demoted because of endpoint memory pressure /
    demotions skipped because the arena was exhausted too (process-wide;
    harnesses snapshot deltas). *)
val pressure_demotions : unit -> int

val pressure_demotion_skips : unit -> int

val reset_counters : unit -> unit

(** [send_via ?cpu config tr ~dst msg] — serialize [msg] and send it over
    any transport: the staging buffer reserves [tr]'s headroom (packet
    header for UDP; packet + TCP headers + record prefix for TCP, so the
    stream fast path is still one gather entry), the size limit is the
    transport's, and the zero-copy array goes down the transport's [_zc]
    fast path. Ownership is identical on both datapaths from the caller's
    side; internally UDP releases references at completion, TCP at
    cumulative ACK. *)
val send_via :
  ?cpu:Memmodel.Cpu.t ->
  Config.t ->
  Net.Transport.t ->
  dst:int ->
  Wire.Dyn.t ->
  unit

(** [send_planned ?cpu config tr ~dst msg ~write] — the same pipeline as
    {!send_via} (measure, size/SGE/pressure checks, staging, post) but with
    the serializer body supplied by the caller: generated modules pass their
    codegen-folded [write_folded] here via {!Format_.run}'s contract. [write]
    must be a top-level function (not a closure) to keep the hot path
    allocation-free. *)
val send_planned :
  ?cpu:Memmodel.Cpu.t ->
  Config.t ->
  Net.Transport.t ->
  dst:int ->
  Wire.Dyn.t ->
  write:
    (cpu:Memmodel.Cpu.t option ->
    Format_.plan ->
    Wire.Cursor.Writer.t ->
    Wire.Dyn.t ->
    unit) ->
  unit

(** [send_object config ep ~dst msg] = [send_via config (Endpoint.transport
    ep)] — the historical UDP entry point (Listing 2); allocation-free, the
    endpoint's transport record is cached. *)
val send_object :
  ?cpu:Memmodel.Cpu.t ->
  Config.t ->
  Net.Endpoint.t ->
  dst:int ->
  Wire.Dyn.t ->
  unit

(** [deserialize ?cpu schema desc buf] — re-export of {!Format_.deserialize}
    for API symmetry with Listing 1. *)
val deserialize :
  ?cpu:Memmodel.Cpu.t ->
  Schema.Desc.t ->
  Schema.Desc.message ->
  Mem.Pinned.Buf.t ->
  Wire.Dyn.t
