type value =
  | Int of int64
  | Float of float
  | Payload of Payload.t
  | Nested of t
  | List of value list

and t = { desc : Schema.Desc.message; mutable values : value option array }

exception Type_error of string

let create desc =
  { desc; values = Array.make (Array.length desc.Schema.Desc.fields) None }

let desc t = t.desc

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let rec check_kind (f : Schema.Desc.field) v =
  match (f.ty, v) with
  | Schema.Desc.Scalar _, Int _ -> ()
  | Schema.Desc.Scalar Schema.Desc.Float64, Float _ -> ()
  | (Schema.Desc.Str | Schema.Desc.Bytes), Payload _ -> ()
  | Schema.Desc.Message name, Nested m ->
      if m.desc.Schema.Desc.msg_name <> name then
        type_error "field %s expects message %s, got %s" f.field_name name
          m.desc.Schema.Desc.msg_name
  | _, List _ ->
      type_error "field %s: nested List values are not allowed" f.field_name
  | _, _ ->
      type_error "field %s: value does not match type %s" f.field_name
        (Schema.Desc.field_type_to_string f.ty)

and check_value (f : Schema.Desc.field) v =
  match (f.label, v) with
  | Schema.Desc.Repeated, List elems -> List.iter (check_kind f) elems
  | Schema.Desc.Repeated, _ ->
      type_error "repeated field %s requires a List value" f.field_name
  | Schema.Desc.Singular, List _ ->
      type_error "singular field %s cannot hold a List" f.field_name
  | Schema.Desc.Singular, _ -> check_kind f v

let index t name = Schema.Desc.field_index t.desc name

let set t name v =
  let i = index t name in
  check_value t.desc.Schema.Desc.fields.(i) v;
  t.values.(i) <- Some v

let get t name = t.values.(index t name)

let clear_field t name = t.values.(index t name) <- None

let append t name v =
  let i = index t name in
  let f = t.desc.Schema.Desc.fields.(i) in
  if f.label <> Schema.Desc.Repeated then
    type_error "append on non-repeated field %s" name;
  check_kind f v;
  match t.values.(i) with
  | None -> t.values.(i) <- Some (List [ v ])
  | Some (List elems) -> t.values.(i) <- Some (List (elems @ [ v ]))
  | Some _ -> type_error "repeated field %s holds a non-List value" name

let set_int t name v = set t name (Int v)

let get_int t name =
  match get t name with
  | Some (Int v) -> Some v
  | Some _ -> type_error "field %s is not an integer" name
  | None -> None

let set_payload t name p = set t name (Payload p)

let get_payload t name =
  match get t name with
  | Some (Payload p) -> Some p
  | Some _ -> type_error "field %s is not a payload" name
  | None -> None

let set_string t space name s = set_payload t name (Payload.of_string space s)

let get_list t name =
  match get t name with
  | Some (List elems) -> elems
  | Some v -> [ v ]
  | None -> []

(* Raw slot access for specialized (codegen-folded) serializers: indexed by
   schema field position, no name lookup, no closure. *)
let raw_values t = t.values

let raw_field t i = Array.unsafe_get t.values i

let iter_present t f =
  Array.iteri
    (fun i v ->
      match v with
      | Some v -> f i t.desc.Schema.Desc.fields.(i) v
      | None -> ())
    t.values

let present_count t =
  Array.fold_left
    (fun acc v -> match v with Some _ -> acc + 1 | None -> acc)
    0 t.values

let rec value_payload_bytes = function
  | Int _ | Float _ -> 0
  | Payload p -> Payload.len p
  | Nested m -> payload_bytes m
  | List elems -> List.fold_left (fun a v -> a + value_payload_bytes v) 0 elems

and payload_bytes t =
  let acc = ref 0 in
  iter_present t (fun _ _ v -> acc := !acc + value_payload_bytes v);
  !acc

let rec release_value ?cpu = function
  | Int _ | Float _ -> ()
  | Payload p -> Payload.release ?cpu p
  | Nested m -> release ?cpu m
  | List elems -> List.iter (release_value ?cpu) elems

and release ?cpu t = iter_present t (fun _ _ v -> release_value ?cpu v)

(* Reusable-message API: a pooled request/response object is [clear]ed (or
   [reset] when it may still own zero-copy references) and rebuilt in place,
   so steady-state request loops do not allocate a Dyn per message.

   [clear] swaps in a fresh slot array instead of [Array.fill]ing the old
   one: a long-lived scratch message's array gets promoted to the major
   heap, after which every slot store pays the full write-barrier path
   (remembered-set insertion for minor values, plus the deletion barrier
   darkening the overwritten slots during marking) — enough to make the
   pooled build loop no faster than fresh allocation. A small fresh minor
   array keeps the rebuild on the barrier fast path; the message object
   itself (identity, desc) is still reused. *)
let clear t =
  t.values <- Array.make (Array.length t.values) None

let reset ?cpu t =
  release ?cpu t;
  clear t

let rec map_payloads_value f = function
  | Int _ | Float _ -> None
  | Payload p ->
      let p' = f p in
      if p' == p then None else Some (Payload p')
  | Nested m ->
      map_payloads m f;
      None
  | List elems ->
      let changed = ref false in
      let elems' =
        List.map
          (fun v ->
            match map_payloads_value f v with
            | Some v' ->
                changed := true;
                v'
            | None -> v)
          elems
      in
      if !changed then Some (List elems') else None

and map_payloads t f =
  Array.iteri
    (fun i v ->
      match v with
      | None -> ()
      | Some v -> (
          match map_payloads_value f v with
          | Some v' -> t.values.(i) <- Some v'
          | None -> ()))
    t.values

let rec fold_payloads_value acc f = function
  | Int _ | Float _ -> acc
  | Payload p -> f acc p
  | Nested m -> fold_payloads m ~init:acc ~f
  | List elems -> List.fold_left (fun acc v -> fold_payloads_value acc f v) acc elems

and fold_payloads t ~init ~f =
  let acc = ref init in
  iter_present t (fun _ _ v -> acc := fold_payloads_value !acc f v);
  !acc

let rec equal_value a b =
  match (a, b) with
  | Int x, Int y -> Int64.equal x y
  | Float x, Float y -> Float.equal x y
  | Payload x, Payload y -> String.equal (Payload.to_string x) (Payload.to_string y)
  | Nested x, Nested y -> equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal_value xs ys
  | _, _ -> false

and equal a b =
  a.desc.Schema.Desc.msg_name = b.desc.Schema.Desc.msg_name
  && Array.length a.values = Array.length b.values
  &&
  let ok = ref true in
  Array.iteri
    (fun i va ->
      match (va, b.values.(i)) with
      | None, None -> ()
      | Some x, Some y -> if not (equal_value x y) then ok := false
      | _, _ -> ok := false)
    a.values;
  !ok

let rec pp_value ppf = function
  | Int v -> Format.fprintf ppf "%Ld" v
  | Float v -> Format.fprintf ppf "%g" v
  | Payload p ->
      let s = Payload.to_string p in
      if String.length s <= 16 then Format.fprintf ppf "%S" s
      else Format.fprintf ppf "<%d bytes>" (String.length s)
  | Nested m -> pp ppf m
  | List elems ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_value)
        elems

and pp ppf t =
  Format.fprintf ppf "@[<hv 2>%s {" t.desc.Schema.Desc.msg_name;
  iter_present t (fun _ f v ->
      Format.fprintf ppf "@ %s = %a;" f.Schema.Desc.field_name pp_value v);
  Format.fprintf ppf "@;<1 -2>}@]"
