(* Refcounted slice into an RX buffer: the receive-side dual of the TX
   [Payload.Zero_copy] reference. A view is a narrowed [Mem.Pinned.Buf]
   handle that owns exactly one reference on the underlying receive buffer,
   so the buffer's slot cannot recycle back into the RX pool while any view
   over it is outstanding — recycle happens at refcount 0, in
   [Pinned.Buf.decr_ref], same as every other pinned buffer.

   Every acquire/release is RefSan-ledgered under its [?site] label, which
   is what makes a leaked view (a handler that parks a slice and forgets it)
   show up at quiesce with the allocation site attached.

   Ownership contract (DESIGN.md §15):
   - within a delivery callback, borrow with [Wire.Reader.payload_view]
     (no reference traffic) — the endpoint's delivery reference keeps the
     buffer live until the handler returns;
   - to retain bytes *past* the callback (parked reassembly slots,
     out-of-order replication ops), take an [Rc_view] and [release] it when
     done — or hand it to the TX path with [to_payload], which transfers
     the reference to the send machinery. *)

type t = Mem.Pinned.Buf.t

let of_buf ?cpu ?(site = "Rc_view.of_buf") buf ~off ~len =
  let v = Mem.Pinned.Buf.sub ~site buf ~off ~len in
  Mem.Pinned.Buf.incr_ref ?cpu ~site v;
  v

(* Adopt an already-counted handle (e.g. a whole RX buffer whose delivery
   reference the caller is transferring into the view). *)
let of_owned buf = buf

let retain ?cpu ?(site = "Rc_view.retain") t = Mem.Pinned.Buf.incr_ref ?cpu ~site t

let release ?cpu ?(site = "Rc_view.release") t = Mem.Pinned.Buf.decr_ref ?cpu ~site t

let len t = Mem.Pinned.Buf.len t

let is_live t = Mem.Pinned.Buf.is_live t

let view t = Mem.Pinned.Buf.view t

(* Hand the slice to the send path as a gather entry. The view's reference
   transfers with it: the stack releases it at NIC completion / cumulative
   ACK, so the caller must NOT also [release]. *)
let to_payload t = Payload.Zero_copy t

(* The underlying narrowed handle, for APIs that speak [Pinned.Buf]
   (store installation, [blit_from] sources). Does not transfer the
   reference. *)
let buf t = t

(* Explicit copy-out, charged as an App-side read — the one deliberate exit
   from the zero-copy discipline (e.g. building a hash key). *)
let to_string ?cpu t =
  let v = Mem.Pinned.Buf.view t in
  (match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:v.Mem.View.addr
        ~len:v.Mem.View.len);
  Mem.View.to_string v
