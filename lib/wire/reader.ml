(* Validate-once, access-in-place deserialization: the receive-side dual of
   the folded writers. One validation pass over a received frame checks the
   bitmap against the schema and bounds-checks every present field's info
   slot, payload extent, repeated table (elements included) and nested
   header — after which every getter is straight-line offset arithmetic
   into the original RX buffer: scalar reads are unchecked little-endian
   loads, payload reads hand back windows ([payload_view] to borrow within
   the delivery callback, [payload_rc] to retain past it). No intermediate
   [Dyn] message is materialized and no field is copied.

   This is the LowParse validator-then-accessor split (and Vollmer's typed
   accessors over packed data): the validator is the only code that can
   reject, the accessors are total over validated frames. The bounds checks
   and the rejection vocabulary mirror [Format_.read_msg] exactly, so a
   frame is accepted here iff the [Dyn] parser accepts it.

   A reader is a pooled scratch object (one per message type per endpoint):
   [validate] refills the slot-offset table in place, so steady-state RX
   deserialization allocates nothing beyond the handle cache. *)

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let max_depth = 32

let bitmap_words nfields = (nfields + 31) / 32

type t = {
  desc : Schema.Desc.message;
  (* Field index -> absolute info-slot offset within the object; -1 when
     the field is absent from the validated frame. *)
  slots : int array;
  mutable words : int array; (* bitmap scratch *)
  mutable buf : Mem.Pinned.Buf.t option;
  mutable data : Bytes.t;
  mutable base : int; (* window start within [data] *)
  mutable addr : int; (* simulated address of the window *)
  mutable total : int; (* object length *)
  mutable depth : int;
  mutable cpu : Memmodel.Cpu.t option;
}

let create (desc : Schema.Desc.message) =
  let n = Array.length desc.Schema.Desc.fields in
  {
    desc;
    slots = Array.make (max 1 n) (-1);
    words = Array.make (max 1 (bitmap_words n)) 0;
    buf = None;
    data = Bytes.empty;
    base = 0;
    addr = 0;
    total = 0;
    depth = 0;
    cpu = None;
  }

let desc t = t.desc

(* --- raw loads (validated offsets only) -------------------------------- *)

let u32_at t off =
  let p = t.base + off in
  Char.code (Bytes.unsafe_get t.data p)
  lor (Char.code (Bytes.unsafe_get t.data (p + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get t.data (p + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get t.data (p + 3)) lsl 24)

(* Same native-int extraction as [Cursor.Reader.u64]: bits 0..62 accumulate
   in a native int, bit 63 comes from byte 7's top bit. *)
let u64_at t off =
  let p = t.base + off in
  let lo = ref 0 in
  for i = 0 to 6 do
    lo := !lo lor (Char.code (Bytes.unsafe_get t.data (p + i)) lsl (8 * i))
  done;
  let b7 = Char.code (Bytes.unsafe_get t.data (p + 7)) in
  let acc = !lo lor ((b7 land 0x7f) lsl 56) in
  if b7 land 0x80 = 0 then Int64.logand (Int64.of_int acc) Int64.max_int
  else Int64.logor (Int64.of_int acc) Int64.min_int

let charge t ~off ~len =
  match t.cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.Deser ~addr:(t.addr + off) ~len

(* One call into the validator per frame — versus [Format_]'s per-field
   parse-call charge, which is exactly the dispatch cost validate-once
   amortizes away. *)
let charge_call t =
  match t.cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.charge cpu Memmodel.Cpu.Deser
        (Memmodel.Cpu.params cpu).Memmodel.Params.cost_per_call

(* --- validation -------------------------------------------------------- *)

(* Bounds-check one present field's contents behind its (already checked)
   info slot. Charges the extra table reads a repeated field costs; the
   slot itself was charged with the header block. *)
let check_field t (field : Schema.Desc.field) ~slot =
  let check_payload ~slot =
    let off = u32_at t slot in
    let len = u32_at t (slot + 4) in
    if off < 0 || len < 0 || off + len > t.total then
      invalid "payload [%d, %d) out of object of %d bytes" off (off + len)
        t.total
  in
  let check_nested ~slot =
    let off = u32_at t slot in
    let hlen = u32_at t (slot + 4) in
    if off < 0 || hlen < 4 || off + hlen > t.total then
      invalid "nested header out of range"
  in
  match field.Schema.Desc.label with
  | Schema.Desc.Repeated -> (
      let table = u32_at t slot in
      let count = u32_at t (slot + 4) in
      if count < 0 || table < 0 || table + (8 * count) > t.total then
        invalid "repeated field table out of range";
      charge t ~off:table ~len:(8 * count);
      match field.Schema.Desc.ty with
      | Schema.Desc.Scalar _ -> ()
      | Schema.Desc.Str | Schema.Desc.Bytes ->
          for j = 0 to count - 1 do
            check_payload ~slot:(table + (8 * j))
          done
      | Schema.Desc.Message _ ->
          for j = 0 to count - 1 do
            check_nested ~slot:(table + (8 * j))
          done)
  | Schema.Desc.Singular -> (
      match field.Schema.Desc.ty with
      | Schema.Desc.Scalar _ -> ()
      | Schema.Desc.Str | Schema.Desc.Bytes -> check_payload ~slot
      | Schema.Desc.Message _ -> check_nested ~slot)

let bind ?cpu t buf =
  (match t.buf with
  | Some b when b == buf -> ()
  | _ -> t.buf <- Some buf);
  t.data <- Mem.Pinned.Buf.backing buf;
  t.base <- Mem.Pinned.Buf.backing_off buf;
  t.addr <- Mem.Pinned.Buf.addr buf;
  t.total <- Mem.Pinned.Buf.len buf;
  t.cpu <- cpu

let validate_at ?cpu t buf ~hpos ~depth =
  if depth > max_depth then invalid "nesting deeper than %d" max_depth;
  bind ?cpu t buf;
  charge_call t;
  t.depth <- depth;
  let fields = t.desc.Schema.Desc.fields in
  let nfields = Array.length fields in
  if hpos < 0 || hpos + 4 > t.total then invalid "header position out of range";
  let bw = u32_at t hpos in
  if bw <> bitmap_words nfields then
    invalid "bitmap size %d does not match schema for %s" bw
      t.desc.Schema.Desc.msg_name;
  if hpos + 4 + (4 * bw) > t.total then invalid "bitmap out of range";
  for j = 0 to bw - 1 do
    t.words.(j) <- u32_at t (hpos + 4 + (4 * j))
  done;
  let slot_base = hpos + 4 + (4 * bw) in
  let k = ref 0 in
  for i = 0 to nfields - 1 do
    if t.words.(i / 32) land (1 lsl (i mod 32)) <> 0 then begin
      let slot = slot_base + (8 * !k) in
      incr k;
      if slot + 8 > t.total then invalid "info slot out of range";
      t.slots.(i) <- slot;
      check_field t (Array.unsafe_get fields i) ~slot
    end
    else t.slots.(i) <- -1
  done;
  (* Validate-once rule: the header block (count word + bitmap + slots) is
     streamed exactly once; repeated tables were charged as they were
     checked. Field accesses charge only the bytes they actually load. *)
  charge t ~off:hpos ~len:(4 + (4 * bw) + (8 * !k))

let validate ?cpu t buf = validate_at ?cpu t buf ~hpos:0 ~depth:0

(* Specialized entry for codegen'd [read_folded]: when the frame carries
   the constant-folded all-present layout (bitmap word count 1, the literal
   [bitmap], header block of [header_len] bytes), the presence scan folds
   into one compare and the slot table fills arithmetically. Returns
   [false] — without rejecting — on any other shape, so the caller falls
   back to the generic [validate] (which also produces the precise
   rejection). Extent checks still run per field: only the presence
   decoding is folded, never the bounds. *)
let validate_folded ?cpu t buf ~bitmap ~header_len =
  bind ?cpu t buf;
  charge_call t;
  t.depth <- 0;
  if t.total < header_len || header_len < 8 then false
  else if u32_at t 0 <> 1 || u32_at t 4 <> bitmap then false
  else begin
    let fields = t.desc.Schema.Desc.fields in
    let nfields = Array.length fields in
    for i = 0 to nfields - 1 do
      let slot = 8 + (8 * i) in
      t.slots.(i) <- slot;
      check_field t (Array.unsafe_get fields i) ~slot
    done;
    charge t ~off:0 ~len:header_len;
    true
  end

(* --- accessors (total over validated frames) --------------------------- *)

let absent t i =
  invalid "field %s of %s absent"
    t.desc.Schema.Desc.fields.(i).Schema.Desc.field_name
    t.desc.Schema.Desc.msg_name

let present t i = Array.unsafe_get t.slots i >= 0

let slot t i =
  let s = Array.unsafe_get t.slots i in
  if s < 0 then absent t i;
  s

let get_u64 t i =
  let s = slot t i in
  charge t ~off:s ~len:8;
  u64_at t s

let get_u64_or t i ~default =
  if present t i then get_u64 t i else default

let get_float t i = Int64.float_of_bits (get_u64 t i)

let payload_off_len t i =
  let s = slot t i in
  charge t ~off:s ~len:8;
  (u32_at t s, u32_at t (s + 4))

let payload_len t i =
  let s = slot t i in
  charge t ~off:(s + 4) ~len:4;
  u32_at t (s + 4)

let the_buf t =
  match t.buf with
  | Some b -> b
  | None -> invalid "reader has no validated frame"

let payload_view t i =
  let off, len = payload_off_len t i in
  Mem.Pinned.Buf.sub_view (the_buf t) ~off ~len

let payload_rc ?(site = "Reader.payload_rc") t i =
  let off, len = payload_off_len t i in
  Rc_view.of_buf ?cpu:t.cpu ~site (the_buf t) ~off ~len

(* Copy-out, charged as an App-side read over the payload bytes — the
   deliberate small-field exit from the zero-copy discipline (hash keys,
   command names). *)
let payload_string t i =
  let off, len = payload_off_len t i in
  (match t.cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:(t.addr + off) ~len);
  Bytes.sub_string t.data (t.base + off) len

(* --- repeated fields --------------------------------------------------- *)

let count t i =
  let s = slot t i in
  charge t ~off:(s + 4) ~len:4;
  u32_at t (s + 4)

let elem_slot t i ~j =
  let s = slot t i in
  charge t ~off:s ~len:8;
  let table = u32_at t s in
  let count = u32_at t (s + 4) in
  if j < 0 || j >= count then
    invalid "element %d out of %d in field %s" j count
      t.desc.Schema.Desc.fields.(i).Schema.Desc.field_name;
  table + (8 * j)

let elem_u64 t i ~j =
  let s = elem_slot t i ~j in
  charge t ~off:s ~len:8;
  u64_at t s

let elem_off_len t i ~j =
  let s = elem_slot t i ~j in
  charge t ~off:s ~len:8;
  (u32_at t s, u32_at t (s + 4))

let elem_view t i ~j =
  let off, len = elem_off_len t i ~j in
  Mem.Pinned.Buf.sub_view (the_buf t) ~off ~len

let elem_rc ?(site = "Reader.elem_rc") t i ~j =
  let off, len = elem_off_len t i ~j in
  Rc_view.of_buf ?cpu:t.cpu ~site (the_buf t) ~off ~len

let elem_string t i ~j =
  let off, len = elem_off_len t i ~j in
  (match t.cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:(t.addr + off) ~len);
  Bytes.sub_string t.data (t.base + off) len

(* --- nested messages --------------------------------------------------- *)

(* Open field [i]'s nested message into [into] (a reader created with the
   nested message's descriptor): validates the nested level once, in place.
   Composition is by-need — a level is validated when opened, with the
   parent's depth carried so recursion is still bounded by [max_depth]. *)
let nested t i ~into =
  let s = slot t i in
  charge t ~off:s ~len:8;
  let off = u32_at t s in
  validate_at ?cpu:t.cpu into (the_buf t) ~hpos:off ~depth:(t.depth + 1)

let nested_elem t i ~j ~into =
  let s = elem_slot t i ~j in
  charge t ~off:s ~len:8;
  let off = u32_at t s in
  validate_at ?cpu:t.cpu into (the_buf t) ~hpos:off ~depth:(t.depth + 1)

(* Drop the cached frame handle (e.g. before quiescing RefSan, so a pooled
   reader does not pin the last delivery's buffer handle in its cache).
   Readers never own a reference; this only clears the convenience cache. *)
let clear t =
  t.buf <- None;
  t.data <- Bytes.empty;
  t.base <- 0;
  t.addr <- 0;
  t.total <- 0;
  t.cpu <- None
