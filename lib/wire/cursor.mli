(** Charged byte cursors.

    Writers/readers over a {!Mem.View.t} window that perform the real byte
    moves and charge the cache model for each access. Serializers use these
    for headers, varints, and field tables; bulk field copies go through
    {!Mem.Pinned.Buf.blit_from} / {!Mem.Arena.copy_in}. *)

module Writer : sig
  type t

  (** [create ?cpu ?cat view] writes into [view] starting at offset 0.
      Charges go to category [cat] (default [Tx]). *)
  val create : ?cpu:Memmodel.Cpu.t -> ?cat:Memmodel.Cpu.category -> Mem.View.t -> t

  (** [reset ?cpu t view] retargets the writer at [view], position 0,
      rebinding the charging cpu and keeping the category — so hot paths
      reuse one writer across messages (and across endpoints). *)
  val reset : ?cpu:Memmodel.Cpu.t -> t -> Mem.View.t -> unit

  val pos : t -> int

  val remaining : t -> int

  (** [seek t pos] repositions (for backpatching offsets). *)
  val seek : t -> int -> unit

  val u8 : t -> int -> unit

  val u16 : t -> int -> unit

  val u32 : t -> int -> unit

  val u64 : t -> int64 -> unit

  (** LEB128, as in Protobuf. Returns nothing; use {!varint_len} to size. *)
  val varint : t -> int64 -> unit

  val string : t -> string -> unit

  (** [view_bytes t src] copies [src]'s bytes at the cursor, charging a
      streaming read of the source and write of the destination. *)
  val view_bytes : t -> Mem.View.t -> unit

  (** {2 Constant-offset fast stores}

      Specialized serializers (Codegen.Emit's folded writers) hoist one
      bounds check over a whole header block with [span], then issue
      straight-line unchecked stores at literal offsets with the [_at]
      calls. The [_at] stores do not move the cursor. Charges are issued
      per store, identically to the cursor-advancing calls, so cache-model
      accounting is unchanged. Callers must [span] first: the [_at] stores
      perform no bounds check of their own. *)

  (** [span t ~pos ~len] checks that [pos, pos+len) fits the window
      (raises [Overflow] otherwise); charges nothing. *)
  val span : t -> pos:int -> len:int -> unit

  (** Store a little-endian u32 at absolute offset [pos]. Unchecked. *)
  val u32_at : t -> pos:int -> int -> unit

  (** Store a little-endian u64 at absolute offset [pos]. Unchecked.
      Same byte extraction as {!u64}. *)
  val u64_at : t -> pos:int -> int64 -> unit
end

module Reader : sig
  type t

  val create : ?cpu:Memmodel.Cpu.t -> ?cat:Memmodel.Cpu.category -> Mem.View.t -> t

  val pos : t -> int

  val remaining : t -> int

  val seek : t -> int -> unit

  val u8 : t -> int

  val u16 : t -> int

  val u32 : t -> int

  val u64 : t -> int64

  val varint : t -> int64

  val string : t -> len:int -> string

  (** [sub t ~len] returns a view of the next [len] bytes (no copy, no
      charge beyond the header touch) and advances. *)
  val sub : t -> len:int -> Mem.View.t
end

(** Encoded size of a LEB128 varint. *)
val varint_len : int64 -> int
