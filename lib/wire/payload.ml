type t =
  | Copied of Mem.View.t
  | Zero_copy of Mem.Pinned.Buf.t
  | Literal of Mem.View.t

let len = function
  | Copied v | Literal v -> v.Mem.View.len
  | Zero_copy b -> Mem.Pinned.Buf.len b

let view = function
  | Copied v | Literal v -> v
  | Zero_copy b -> Mem.Pinned.Buf.view b

let to_string t = Mem.View.to_string (view t)

let of_string space s = Literal (Mem.View.of_string space s)

let release ?cpu = function
  | Copied _ | Literal _ -> ()
  | Zero_copy b -> Mem.Pinned.Buf.decr_ref ?cpu ~site:"Payload.release" b

let is_zero_copy = function Zero_copy _ -> true | Copied _ | Literal _ -> false
