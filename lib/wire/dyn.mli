(** Dynamic messages: descriptor-driven in-memory objects.

    The OCaml analogue of the structs the Cornflakes compiler generates from
    a schema (Listing 1): typed setters/getters keyed by field name, repeated
    fields as lists, nested messages. All serializers (Cornflakes and the
    baselines) operate on [Dyn.t]. *)

type value =
  | Int of int64 (* all scalar ints/bools; width comes from the schema *)
  | Float of float
  | Payload of Payload.t (* bytes/string *)
  | Nested of t
  | List of value list (* repeated field contents, in order *)

and t

exception Type_error of string

val create : Schema.Desc.message -> t

val desc : t -> Schema.Desc.message

(** [set t name v] sets a field; checks the value kind against the schema
    ([Type_error] on mismatch). Repeated fields take a [List]. *)
val set : t -> string -> value -> unit

val get : t -> string -> value option

val clear_field : t -> string -> unit

(** [append t name v] appends an element to a repeated field. *)
val append : t -> string -> value -> unit

(* Conveniences. *)

val set_int : t -> string -> int64 -> unit

val get_int : t -> string -> int64 option

val set_payload : t -> string -> Payload.t -> unit

val get_payload : t -> string -> Payload.t option

val set_string : t -> Mem.Addr_space.t -> string -> string -> unit

val get_list : t -> string -> value list

(** Fields present, in schema (field-number) order. *)
val iter_present : t -> (int -> Schema.Desc.field -> value -> unit) -> unit

(** Raw slot array, indexed by schema field position. For specialized
    serializers (codegen-folded writers) that avoid the per-field closure of
    {!iter_present}; treat as read-only. *)
val raw_values : t -> value option array

(** [raw_field t i] is slot [i] (schema field position), unchecked. *)
val raw_field : t -> int -> value option

val present_count : t -> int

(** Sum of the byte lengths of all payloads, recursively. *)
val payload_bytes : t -> int

(** Release every [Zero_copy] payload reference, recursively. Call when the
    message will no longer be read (e.g. after the response is handed to the
    stack, which holds its own references). *)
val release : ?cpu:Memmodel.Cpu.t -> t -> unit

(** [clear t] blanks every field so the object can be rebuilt in place
    (pooled per endpoint instead of allocated per request). Does NOT release
    payload references — use it when ownership already moved (e.g. the stack
    took the zero-copy refs at send). *)
val clear : t -> unit

(** [reset ?cpu t] = [release] then [clear]: drop any payload references the
    message still owns, then blank it for reuse. *)
val reset : ?cpu:Memmodel.Cpu.t -> t -> unit

(** [map_payloads t f] rewrites every payload in place (depth-first, field
    order) — used to demote zero-copy entries when a message exceeds the
    NIC's gather limit. *)
val map_payloads : t -> (Payload.t -> Payload.t) -> unit

(** Payloads in serialization traversal order (depth-first, field order). *)
val fold_payloads : t -> init:'a -> f:('a -> Payload.t -> 'a) -> 'a

(** Structural equality of contents (payload bytes compared by value);
    for tests. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
