exception Overflow = Invalid_argument

let varint_len v =
  let rec go v n =
    let v = Int64.shift_right_logical v 7 in
    if Int64.equal v 0L then n else go v (n + 1)
  in
  go v 1

module Writer = struct
  type t = {
    mutable view : Mem.View.t;
    mutable cpu : Memmodel.Cpu.t option;
    cat : Memmodel.Cpu.category;
    mutable pos : int;
  }

  let create ?cpu ?(cat = Memmodel.Cpu.Tx) view = { view; cpu; cat; pos = 0 }

  (* Retarget a long-lived writer at a fresh window (same category), so
     per-send paths reuse one writer instead of allocating one per message.
     The charging cpu is rebound too: the scratch writer serves whichever
     endpoint is currently sending. *)
  let reset ?cpu t view =
    t.view <- view;
    t.cpu <- cpu;
    t.pos <- 0

  let pos t = t.pos

  let remaining t = t.view.Mem.View.len - t.pos

  let seek t pos =
    if pos < 0 || pos > t.view.Mem.View.len then
      raise (Overflow "Cursor.Writer.seek");
    t.pos <- pos

  let charge t ~len =
    match t.cpu with
    | None -> ()
    | Some cpu ->
        Memmodel.Cpu.stream cpu t.cat
          ~addr:(t.view.Mem.View.addr + t.pos)
          ~len

  let need t n =
    if t.pos + n > t.view.Mem.View.len then
      raise (Overflow "Cursor.Writer: window overflow")

  (* [byte] is only reached behind a [need] (or [span]) bounds check, so
     the store itself is unchecked — the check is hoisted, not skipped. *)
  let byte t v =
    Bytes.unsafe_set t.view.Mem.View.data
      (t.view.Mem.View.off + t.pos)
      (Char.unsafe_chr (v land 0xff));
    t.pos <- t.pos + 1

  (* --- constant-offset fast stores (specialized serializers) ----------
     [span] hoists one bounds check over a whole region; the [_at] stores
     inside it are straight-line unchecked writes at absolute offsets that
     leave the cursor untouched. Charges are per store, exactly like the
     cursor-advancing calls, so the cache-model accounting (and therefore
     every simulated figure) is unchanged — only the per-byte bounds
     checks and seek ping-pong disappear. *)

  let span t ~pos ~len =
    if pos < 0 || len < 0 || pos + len > t.view.Mem.View.len then
      raise (Overflow "Cursor.Writer: span overflow")

  let charge_at t ~pos ~len =
    match t.cpu with
    | None -> ()
    | Some cpu ->
        Memmodel.Cpu.stream cpu t.cat ~addr:(t.view.Mem.View.addr + pos) ~len

  (* Store a byte at an absolute offset; caller has [span]-checked. *)
  let byte_at t ~pos v =
    Bytes.unsafe_set t.view.Mem.View.data
      (t.view.Mem.View.off + pos)
      (Char.unsafe_chr (v land 0xff))

  let u32_at t ~pos v =
    charge_at t ~pos ~len:4;
    byte_at t ~pos (v land 0xff);
    byte_at t ~pos:(pos + 1) ((v lsr 8) land 0xff);
    byte_at t ~pos:(pos + 2) ((v lsr 16) land 0xff);
    byte_at t ~pos:(pos + 3) ((v lsr 24) land 0xff)

  let u64_at t ~pos v =
    charge_at t ~pos ~len:8;
    (* Same native-int extraction as [u64]: identical wire bytes. *)
    let lo = Int64.to_int v in
    byte_at t ~pos lo;
    byte_at t ~pos:(pos + 1) (lo lsr 8);
    byte_at t ~pos:(pos + 2) (lo lsr 16);
    byte_at t ~pos:(pos + 3) (lo lsr 24);
    byte_at t ~pos:(pos + 4) (lo lsr 32);
    byte_at t ~pos:(pos + 5) (lo lsr 40);
    byte_at t ~pos:(pos + 6) (lo lsr 48);
    byte_at t ~pos:(pos + 7)
      (((lo lsr 56) land 0x7f) lor (if Int64.compare v 0L < 0 then 0x80 else 0))

  let u8 t v =
    need t 1;
    charge t ~len:1;
    byte t v

  let u16 t v =
    need t 2;
    charge t ~len:2;
    byte t (v land 0xff);
    byte t ((v lsr 8) land 0xff)

  let u32 t v =
    need t 4;
    charge t ~len:4;
    byte t (v land 0xff);
    byte t ((v lsr 8) land 0xff);
    byte t ((v lsr 16) land 0xff);
    byte t ((v lsr 24) land 0xff)

  let u64 t v =
    need t 8;
    charge t ~len:8;
    (* Native-int byte extraction: [Int64.to_int] keeps the low 63 bits, so
       only bit 63 needs the sign test — no boxed Int64 intermediates on
       this per-field hot path. *)
    let lo = Int64.to_int v in
    for i = 0 to 6 do
      byte t ((lo lsr (8 * i)) land 0xff)
    done;
    byte t (((lo lsr 56) land 0x7f) lor (if Int64.compare v 0L < 0 then 0x80 else 0))

  let varint t v =
    let n = varint_len v in
    need t n;
    charge t ~len:n;
    let v = ref v in
    let continue = ref true in
    while !continue do
      let low = Int64.to_int (Int64.logand !v 0x7fL) in
      v := Int64.shift_right_logical !v 7;
      if Int64.equal !v 0L then begin
        byte t low;
        continue := false
      end
      else byte t (low lor 0x80)
    done

  let string t s =
    let n = String.length s in
    need t n;
    charge t ~len:n;
    Bytes.blit_string s 0 t.view.Mem.View.data
      (t.view.Mem.View.off + t.pos)
      n;
    t.pos <- t.pos + n

  let view_bytes t src =
    let n = src.Mem.View.len in
    need t n;
    (match t.cpu with
    | None -> ()
    | Some cpu ->
        Memmodel.Cpu.stream cpu t.cat ~addr:src.Mem.View.addr ~len:n);
    charge t ~len:n;
    Mem.View.blit src ~dst:t.view.Mem.View.data
      ~dst_off:(t.view.Mem.View.off + t.pos);
    t.pos <- t.pos + n
end

module Reader = struct
  type t = {
    view : Mem.View.t;
    cpu : Memmodel.Cpu.t option;
    cat : Memmodel.Cpu.category;
    mutable pos : int;
  }

  let create ?cpu ?(cat = Memmodel.Cpu.Deser) view = { view; cpu; cat; pos = 0 }

  let pos t = t.pos

  let remaining t = t.view.Mem.View.len - t.pos

  let seek t pos =
    if pos < 0 || pos > t.view.Mem.View.len then
      raise (Overflow "Cursor.Reader.seek");
    t.pos <- pos

  let charge t ~len =
    match t.cpu with
    | None -> ()
    | Some cpu ->
        Memmodel.Cpu.stream cpu t.cat
          ~addr:(t.view.Mem.View.addr + t.pos)
          ~len

  let need t n =
    if t.pos + n > t.view.Mem.View.len then
      raise (Overflow "Cursor.Reader: window underflow")

  let byte t =
    let c =
      Char.code (Bytes.get t.view.Mem.View.data (t.view.Mem.View.off + t.pos))
    in
    t.pos <- t.pos + 1;
    c

  let u8 t =
    need t 1;
    charge t ~len:1;
    byte t

  let u16 t =
    need t 2;
    charge t ~len:2;
    let a = byte t in
    let b = byte t in
    a lor (b lsl 8)

  let u32 t =
    need t 4;
    charge t ~len:4;
    let a = byte t in
    let b = byte t in
    let c = byte t in
    let d = byte t in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

  let u64 t =
    need t 8;
    charge t ~len:8;
    (* Accumulate bits 0..62 in a native int; only bit 63 needs Int64
       arithmetic, and only when actually set. *)
    let lo = ref 0 in
    for i = 0 to 6 do
      lo := !lo lor (byte t lsl (8 * i))
    done;
    let b7 = byte t in
    (* Bit 62 of the value sits on the native int's sign bit, so
       [Int64.of_int] sign-extends it into bit 63 — mask bit 63 back to
       what byte 7 actually carried. *)
    let acc = !lo lor ((b7 land 0x7f) lsl 56) in
    if b7 land 0x80 = 0 then Int64.logand (Int64.of_int acc) Int64.max_int
    else Int64.logor (Int64.of_int acc) Int64.min_int

  let varint t =
    let v = ref 0L in
    let shift = ref 0 in
    let continue = ref true in
    while !continue do
      need t 1;
      charge t ~len:1;
      let b = byte t in
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (b land 0x7f)) !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then continue := false
      else if !shift > 63 then raise (Overflow "Cursor.Reader: varint too long")
    done;
    !v

  let string t ~len =
    need t len;
    charge t ~len;
    let s =
      Bytes.sub_string t.view.Mem.View.data (t.view.Mem.View.off + t.pos) len
    in
    t.pos <- t.pos + len;
    s

  let sub t ~len =
    need t len;
    let v = Mem.View.sub t.view ~off:t.pos ~len in
    t.pos <- t.pos + len;
    v
end
