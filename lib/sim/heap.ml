type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t e =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let narr = Array.make ncap e in
    Array.blit t.arr 0 narr 0 t.len;
    t.arr <- narr
  end

let push t ~time ~seq payload =
  let e = { time; seq; payload } in
  grow t e;
  t.arr.(t.len) <- e;
  t.len <- t.len + 1;
  (* Sift the new element up until the parent is smaller. *)
  let i = ref (t.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt t.arr.(!i) t.arr.(parent) then begin
      let tmp = t.arr.(parent) in
      t.arr.(parent) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let remove_min t =
  let min = t.arr.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.arr.(0) <- t.arr.(t.len);
    (* Sift the relocated root down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && lt t.arr.(l) t.arr.(!smallest) then smallest := l;
      if r < t.len && lt t.arr.(r) t.arr.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.arr.(!smallest) in
        t.arr.(!smallest) <- t.arr.(!i);
        t.arr.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  min

let pop_min t =
  if t.len = 0 then None
  else begin
    let min = remove_min t in
    Some (min.time, min.seq, min.payload)
  end

(* Allocation-free pop for the event-loop hot path: removes the minimum
   entry and applies [f time payload] (after the heap is restructured, so
   [f] may push). Returns [false] on an empty heap, without calling [f]. *)
let pop_into t f =
  if t.len = 0 then false
  else begin
    let min = remove_min t in
    f min.time min.payload;
    true
  end

let peek_time t = if t.len = 0 then None else Some t.arr.(0).time

let clear t = t.len <- 0
