type t = {
  mutable now : int;
  mutable seq : int;
  heap : (unit -> unit) Heap.t;
  mutable quiesce_hooks : (unit -> unit) list; (* run when the queue drains *)
}

let create () = { now = 0; seq = 0; heap = Heap.create (); quiesce_hooks = [] }

let now t = t.now

let schedule_at t ~time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time t.now);
  t.seq <- t.seq + 1;
  Heap.push t.heap ~time ~seq:t.seq f

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + after) f

let fire t time f =
  t.now <- time;
  f ()

let run t ~until =
  let fire_one = fire t in
  let continue = ref true in
  while !continue do
    match Heap.peek_time t.heap with
    | Some time when time <= until -> ignore (Heap.pop_into t.heap fire_one)
    | Some _ | None -> continue := false
  done;
  if t.now < until then t.now <- until

let run_all t =
  let fire_one = fire t in
  while Heap.pop_into t.heap fire_one do
    ()
  done

let pending t = Heap.length t.heap

let add_quiesce_hook t f = t.quiesce_hooks <- t.quiesce_hooks @ [ f ]

let quiesce t =
  run_all t;
  List.iter (fun f -> f ()) t.quiesce_hooks
