(** Deterministic SplitMix64 pseudo-random number generator.

    Every stochastic component of the simulation (arrival processes, key
    popularity, trace synthesis) draws from an explicitly seeded [Rng.t] so
    experiments are reproducible run to run. *)

type t

val create : seed:int -> t

(** [split t] derives an independent generator; used to give each client /
    workload component its own stream. *)
val split : t -> t

(** [stream ~seed ~index] is the generator for job [index] of a parallel
    run seeded with [seed]: deterministic in [(seed, index)], independent
    of which domain executes the job, and non-colliding across indices.
    Requires [index >= 0]. *)
val stream : seed:int -> index:int -> t

(** [stream_seed ~seed ~index] is [stream]'s initial state as an [int],
    for components that take a seed rather than a generator. *)
val stream_seed : seed:int -> index:int -> int

(** Raw state save/restore: lets a packed table (e.g. a million-connection
    load driver) keep one stream per row as 8 flat bytes and rehydrate
    rows into a single scratch generator without allocating. *)
val state : t -> int64

val set_state : t -> int64 -> unit

(** The SplitMix64 finalizer, exposed for hash-mixing uses (consistent
    hashing scatters FNV digests through it). *)
val mix64 : int64 -> int64

(** [next_int64 t] is a uniform 64-bit value. *)
val next_int64 : t -> int64

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [bool t p] is [true] with probability [p]. *)
val bool : t -> float -> bool
