(** Discrete-event simulation engine.

    Time is an [int] count of nanoseconds since simulation start. Events are
    closures executed at their scheduled instant; events scheduled for the
    same instant run in scheduling order. The whole reproduction — NIC DMA,
    packet flight, CPU service completion, client arrivals — is driven by one
    engine instance, which makes every experiment deterministic. *)

type t

val create : unit -> t

(** [now t] is the current simulated time in nanoseconds. *)
val now : t -> int

(** [schedule t ~after f] runs [f ()] at [now t + after] ns. [after] must be
    non-negative. *)
val schedule : t -> after:int -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f ()] at absolute [time], which must not be
    in the past. *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** [run t ~until] executes events in timestamp order until the queue is
    empty or the next event is after [until]; the clock finishes at [until]
    or at the last event time, whichever is larger. *)
val run : t -> until:int -> unit

(** [run_all t] drains the event queue completely. *)
val run_all : t -> unit

(** [pending t] is the number of queued events. *)
val pending : t -> int

(** [add_quiesce_hook t f] registers [f] to run at {!quiesce}, after the
    event queue has drained — e.g. end-of-run invariant checks such as the
    RefSan leak report. Hooks run in registration order. *)
val add_quiesce_hook : t -> (unit -> unit) -> unit

(** [quiesce t] drains the queue ({!run_all}) and then runs the registered
    quiesce hooks. *)
val quiesce : t -> unit
