(** Array-backed binary min-heap keyed by [(time, seq)].

    The event engine needs a stable priority queue: two events scheduled for
    the same instant must fire in scheduling order, so the key is the pair of
    the event time and a monotonically increasing sequence number. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push heap ~time ~seq payload] inserts an element. *)
val push : 'a t -> time:int -> seq:int -> 'a -> unit

(** [pop_min heap] removes and returns the smallest element as
    [(time, seq, payload)], or [None] when the heap is empty. *)
val pop_min : 'a t -> (int * int * 'a) option

(** [pop_into heap f] removes the minimum element and applies
    [f time payload] — {!pop_min} without the per-event option/tuple, for
    the event-loop hot path. The heap is restructured before [f] runs, so
    [f] may {!push}. Returns [false] on an empty heap ([f] not called). *)
val pop_into : 'a t -> (int -> 'a -> unit) -> bool

(** [peek_time heap] is the time of the minimum element, if any. *)
val peek_time : 'a t -> int option

val clear : 'a t -> unit
