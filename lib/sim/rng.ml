type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

(* Raw state save/restore: a packed connection table keeps millions of
   per-connection SplitMix64 streams as 8 bytes each and rehydrates them
   into one scratch generator, instead of allocating a [t] per stream. *)
let state t = t.state

let set_state t s = t.state <- s

(* Job-splitting streams: the parallel harness gives job [i] the generator
   [stream ~seed ~index:i]. Double-mixing the (seed, index) pair scatters
   the initial states across the whole 2^64 SplitMix orbit, so streams for
   distinct indices under one seed are distinct and (for any prefix a
   simulation can consume) non-overlapping. *)
let stream ~seed ~index =
  if index < 0 then invalid_arg "Rng.stream: negative index";
  let base = mix64 (Int64.of_int seed) in
  let salt = Int64.mul golden_gamma (Int64.of_int (index + 1)) in
  { state = mix64 (Int64.logxor base salt) }

let stream_seed ~seed ~index = Int64.to_int (stream ~seed ~index).state

let float t =
  (* 53 high bits give a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let bool t p = float t < p
