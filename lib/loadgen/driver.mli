(** Client-side load drivers.

    Mirrors the paper's 16-thread DPDK load generator (§6.1.1): open-loop
    Poisson arrivals at a configured offered load for the throughput–latency
    curves, and a closed-loop saturation mode for "highest achieved
    throughput" numbers. Latency histograms record at 1 µs precision;
    completions are matched by a response-id parser or FIFO per client. *)

type result = {
  offered_rps : float;
  achieved_rps : float;
  achieved_gbps : float; (* response payload bits within the window *)
  hist : Stats.Histogram.t; (* RTTs of in-window completions *)
  sent : int;
  completed : int;
  retransmits : int; (* re-sends issued by the reliability layer *)
  abandoned : int; (* requests given up after exhausting retries *)
}

val p99_ns : result -> int

val p50_ns : result -> int

val to_point : result -> Stats.Curve.point

(** [open_loop ...] drives Poisson arrivals of aggregate [rate_rps] from
    [clients] endpoints for [duration_ns]; completions whose request was
    sent after [warmup_ns] and whose response arrived by the end of the run
    count toward the histogram and achieved load.

    [send tr ~dst ~id] issues one request over the client transport;
    [parse_id] extracts the id from a response payload ([None] = FIFO
    matching per client). Connection-oriented transports are connected to
    [server] at setup, so the 3-way handshake overlaps the warmup window
    and is excluded from latency accounting.

    [?reliab] routes every request through a reliability layer: [send] is
    re-invoked with the same id on retransmission, responses are
    acknowledged on arrival (duplicates counted once — the pending table
    is keyed by id), and abandoned requests are dropped from the pending
    table. Requires [parse_id] (raises [Invalid_argument] with FIFO
    matching — a retransmitted request would desynchronise the queue). *)
val open_loop :
  ?reliab:Net.Reliab.t ->
  Sim.Engine.t ->
  clients:Net.Transport.t list ->
  server:int ->
  rate_rps:float ->
  duration_ns:int ->
  warmup_ns:int ->
  rng:Sim.Rng.t ->
  send:(Net.Transport.t -> dst:int -> id:int -> unit) ->
  parse_id:(Mem.Pinned.Buf.t -> int) option ->
  result

(** [open_loop_conns ...] — open loop over a packed connection table
    (see {!Conns}): one aggregate Poisson process at [rate_rps] picks a
    uniformly random connection per arrival (the superposition of
    per-connection Poisson streams, without a timer chain per
    connection), rehydrates that connection's private RNG stream, and
    hands it to [send ~conn crng client ~dst ~id]. Connections multiplex
    round-robin over the physical [clients]. Responses must be id-matched
    ([parse_id] is mandatory): a dispatcher fanning requests across
    shards reorders completions, which would desynchronise FIFO
    matching. *)
val open_loop_conns :
  ?reliab:Net.Reliab.t ->
  Sim.Engine.t ->
  conns:Conns.t ->
  clients:Net.Transport.t list ->
  server:int ->
  rate_rps:float ->
  duration_ns:int ->
  warmup_ns:int ->
  rng:Sim.Rng.t ->
  send:(conn:int -> Sim.Rng.t -> Net.Transport.t -> dst:int -> id:int -> unit) ->
  parse_id:(Mem.Pinned.Buf.t -> int) ->
  result

(** [closed_loop ...] keeps [outstanding] requests in flight per client
    until [duration_ns]; measures saturation throughput. [?reliab] as in
    {!open_loop}; a given-up request re-issues a fresh one so loss cannot
    strangle the loop. *)
val closed_loop :
  ?reliab:Net.Reliab.t ->
  Sim.Engine.t ->
  clients:Net.Transport.t list ->
  server:int ->
  outstanding:int ->
  duration_ns:int ->
  warmup_ns:int ->
  rng:Sim.Rng.t ->
  send:(Net.Transport.t -> dst:int -> id:int -> unit) ->
  parse_id:(Mem.Pinned.Buf.t -> int) option ->
  result
