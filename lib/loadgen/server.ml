type t = {
  tr : Net.Transport.t;
  ep : Net.Endpoint.t;
  cpu : Memmodel.Cpu.t;
  engine : Sim.Engine.t;
  queue : (int * Mem.Pinned.Buf.t) Queue.t;
  queue_limit : int;
  mutable busy : bool;
  mutable handler : src:int -> Mem.Pinned.Buf.t -> unit;
  mutable served : int;
  mutable dropped : int;
  mutable service_ns_total : float;
  mutable busy_ns : int;
  (* Fault injection: extra ns to stall each request (slow consumer). *)
  mutable service_fault : (now:int -> int) option;
  mutable stalled_ns : int;
}

let rec service t =
  match Queue.take_opt t.queue with
  | None -> t.busy <- false
  | Some (src, buf) ->
      t.busy <- true;
      let c0 = Memmodel.Cpu.cycles t.cpu in
      Net.Endpoint.charge_rx ~cpu:t.cpu t.ep ~len:(Mem.Pinned.Buf.len buf);
      Net.Endpoint.begin_hold t.ep;
      (try t.handler ~src buf
       with e ->
         Net.Endpoint.release_hold t.ep ~after:0;
         raise e);
      Mem.Arena.reset (Net.Endpoint.arena t.ep);
      let cycles = Memmodel.Cpu.cycles t.cpu -. c0 in
      let dt =
        int_of_float
          (ceil (Memmodel.Params.cycles_to_ns (Memmodel.Cpu.params t.cpu) cycles))
      in
      (* A slow-consumer fault stretches the whole slot: the response is
         held back and the next request starts later, so rx buffers and
         response references stay pinned for the stall too. *)
      let dt =
        match t.service_fault with
        | None -> dt
        | Some f ->
            let stall = f ~now:(Sim.Engine.now t.engine) in
            t.stalled_ns <- t.stalled_ns + stall;
            dt + stall
      in
      Net.Endpoint.release_hold t.ep ~after:dt;
      t.served <- t.served + 1;
      t.service_ns_total <- t.service_ns_total +. float_of_int dt;
      t.busy_ns <- t.busy_ns + dt;
      Sim.Engine.schedule t.engine ~after:dt (fun () -> service t)

let on_rx t ~src buf =
  if Queue.length t.queue >= t.queue_limit then begin
    t.dropped <- t.dropped + 1;
    Mem.Pinned.Buf.decr_ref ~site:"Server.queue_drop" buf
  end
  else begin
    Queue.add (src, buf) t.queue;
    if not t.busy then service t
  end

let create ?(queue_limit = 4096) tr cpu =
  let ep = Net.Transport.endpoint tr in
  let t =
    {
      tr;
      ep;
      cpu;
      engine = Net.Endpoint.engine ep;
      queue = Queue.create ();
      queue_limit;
      busy = false;
      handler =
        (fun ~src:_ buf -> Mem.Pinned.Buf.decr_ref ~site:"Server.no_handler" buf);
      served = 0;
      dropped = 0;
      service_ns_total = 0.0;
      busy_ns = 0;
      service_fault = None;
      stalled_ns = 0;
    }
  in
  Net.Transport.set_rx tr (fun ~src buf -> on_rx t ~src buf);
  t

let set_handler t f = t.handler <- f

let set_service_fault t f = t.service_fault <- f

let stalled_ns t = t.stalled_ns

let served t = t.served

let dropped t = t.dropped

let mean_service_ns t =
  if t.served = 0 then 0.0 else t.service_ns_total /. float_of_int t.served

let busy_ns t = t.busy_ns

let cpu t = t.cpu

let endpoint t = t.ep

let transport t = t.tr
