(* Packed connection table for open-loop load at 10^5–10^6 concurrent
   clients.

   A million live [Sim.Rng.t] records (plus a closure per connection) is
   exactly the kind of heap the driver must not carry, so each connection
   is 12 bytes of flat state: an 8-byte SplitMix64 stream cursor and a
   4-byte issue counter. Drawing from a connection rehydrates its cursor
   into one shared scratch generator, runs the caller, and writes the
   cursor back — no allocation per request, and the per-connection streams
   are the [Sim.Rng.stream ~seed ~index] job-split family, so two tables
   with the same seed replay identically regardless of how arrivals
   interleave. *)

type t = {
  n : int;
  states : Bytes.t; (* 8 B little-endian SplitMix64 state per connection *)
  issued : Bytes.t; (* 4 B little-endian requests-sent count per connection *)
  mutable touched : int; (* connections that issued at least one request *)
  mutable total_issued : int;
  scratch : Sim.Rng.t;
}

let create ~seed n =
  if n < 1 then invalid_arg "Conns.create: n < 1";
  let states = Bytes.create (8 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le states (8 * i)
      (Sim.Rng.state (Sim.Rng.stream ~seed ~index:i))
  done;
  {
    n;
    states;
    issued = Bytes.make (4 * n) '\000';
    touched = 0;
    total_issued = 0;
    scratch = Sim.Rng.create ~seed:0;
  }

let length t = t.n

(* Run [f] against connection [i]'s private stream. The scratch generator
   is shared: [f] must not re-enter [with_stream]. *)
let with_stream t i f =
  if i < 0 || i >= t.n then invalid_arg "Conns.with_stream: bad index";
  Sim.Rng.set_state t.scratch (Bytes.get_int64_le t.states (8 * i));
  let r = f t.scratch in
  Bytes.set_int64_le t.states (8 * i) (Sim.Rng.state t.scratch);
  let c = Int32.to_int (Bytes.get_int32_le t.issued (4 * i)) in
  if c = 0 then t.touched <- t.touched + 1;
  Bytes.set_int32_le t.issued (4 * i) (Int32.of_int (c + 1));
  t.total_issued <- t.total_issued + 1;
  r

let issued t i = Int32.to_int (Bytes.get_int32_le t.issued (4 * i))

(* Connections that ever sent: the "concurrent clients actually exercised"
   number experiments report next to the table size. *)
let active t = t.touched

let total_issued t = t.total_issued

(* Footprint in bytes — the whole point of packing; reported, not assumed. *)
let footprint_bytes t = Bytes.length t.states + Bytes.length t.issued
