(** Single-core request server harness.

    Models the paper's single-core servers: packets arriving at the endpoint
    enter a bounded FIFO; the core serves one request at a time. A request's
    service time is whatever the cost meter accumulated while its handler
    ran (deserialization, store access, serialization, post). Responses the
    handler produced are released to the NIC only after the service time has
    elapsed (via the endpoint's send hold), and the next request starts
    after that too. The per-request arena is reset between requests. *)

type t

(** [create ?queue_limit tr cpu] — [tr]'s endpoint must have been created
    with this [cpu]. Installs itself as the transport's message handler
    (works for either datapath: one call per datagram over UDP, one per
    reassembled record over TCP). *)
val create : ?queue_limit:int -> Net.Transport.t -> Memmodel.Cpu.t -> t

(** [set_handler t f] — [f ~src buf] owns one reference on [buf]. *)
val set_handler : t -> (src:int -> Mem.Pinned.Buf.t -> unit) -> unit

(** Fault injection: [f ~now] returns extra ns to stall the request being
    served (0 = no stall). The stall delays the response release and the
    next request alike — a forced slow consumer holding buffers longer. *)
val set_service_fault : t -> (now:int -> int) option -> unit

(** Total injected stall time so far. *)
val stalled_ns : t -> int

val served : t -> int

val dropped : t -> int

(** Mean service time (ns) over all served requests. *)
val mean_service_ns : t -> float

(** Busy fraction of wall-clock so far (approximate utilisation). *)
val busy_ns : t -> int

val cpu : t -> Memmodel.Cpu.t

val endpoint : t -> Net.Endpoint.t

(** The transport the server was created over (responses should go back
    through it). *)
val transport : t -> Net.Transport.t
