type result = {
  offered_rps : float;
  achieved_rps : float;
  achieved_gbps : float;
  hist : Stats.Histogram.t;
  sent : int;
  completed : int;
  retransmits : int;
  abandoned : int;
}

let p99_ns r = if Stats.Histogram.count r.hist = 0 then 0 else Stats.Histogram.percentile r.hist 0.99

let p50_ns r = if Stats.Histogram.count r.hist = 0 then 0 else Stats.Histogram.percentile r.hist 0.50

let to_point r =
  {
    Stats.Curve.offered = r.offered_rps;
    achieved = r.achieved_rps;
    p50_ns = p50_ns r;
    p99_ns = p99_ns r;
    mean_ns = Stats.Histogram.mean r.hist;
  }

type ctx = {
  engine : Sim.Engine.t;
  hist : Stats.Histogram.t;
  warmup_abs : int;
  end_abs : int;
  mutable sent : int;
  mutable completed : int;
  mutable resp_bytes : int;
  mutable next_id : int;
  pending : (int, int) Hashtbl.t; (* id -> send time, when parse_id given *)
  reliab : Net.Reliab.t option;
  retries0 : int; (* reliab counter baselines, for per-run deltas *)
  give_ups0 : int;
}

let fresh_id ctx =
  let id = ctx.next_id in
  ctx.next_id <- ctx.next_id + 1;
  id

(* Install the response handler on a client endpoint. [fifo] is this
   client's in-order queue when id parsing is not available. [on_complete]
   lets the closed-loop driver issue a follow-up request. *)
let install_rx ctx client ~parse_id ~fifo ~on_complete =
  Net.Transport.set_rx client (fun ~src:_ buf ->
      let now = Sim.Engine.now ctx.engine in
      let send_ns =
        match parse_id with
        | Some parse -> begin
            match parse buf with
            | id ->
                (* Acknowledge first: a duplicate response (retransmitted
                   request, fabric-duplicated frame) acks as `Duplicate`
                   and finds no pending entry, so it is counted once. *)
                (match ctx.reliab with
                | Some r -> ignore (Net.Reliab.ack r ~id)
                | None -> ());
                let t = Hashtbl.find_opt ctx.pending id in
                (match t with Some _ -> Hashtbl.remove ctx.pending id | None -> ());
                t
            | exception _ -> None
          end
        | None -> Queue.take_opt fifo
      in
      (match send_ns with
      | Some t when t >= ctx.warmup_abs && now <= ctx.end_abs ->
          ctx.completed <- ctx.completed + 1;
          ctx.resp_bytes <- ctx.resp_bytes + Mem.Pinned.Buf.len buf;
          Stats.Histogram.record ctx.hist (now - t)
      | Some _ | None -> ());
      Mem.Pinned.Buf.decr_ref ~site:"Driver.response_done" buf;
      on_complete ())

let issue ?(on_give_up = fun () -> ()) ctx client ~server ~send ~parse_id ~fifo =
  let id = fresh_id ctx in
  let now = Sim.Engine.now ctx.engine in
  (match parse_id with
  | Some _ -> Hashtbl.replace ctx.pending id now
  | None -> Queue.add now fifo);
  ctx.sent <- ctx.sent + 1;
  match ctx.reliab with
  | None -> send client ~dst:server ~id
  | Some r ->
      Net.Reliab.track r ~id
        ~send:(fun () -> send client ~dst:server ~id)
        ~give_up:(fun () ->
          Hashtbl.remove ctx.pending id;
          on_give_up ())

let make_ctx ?reliab engine ~duration_ns ~warmup_ns =
  let now = Sim.Engine.now engine in
  {
    engine;
    hist = Stats.Histogram.create ();
    warmup_abs = now + warmup_ns;
    end_abs = now + duration_ns;
    sent = 0;
    completed = 0;
    resp_bytes = 0;
    next_id = 1;
    pending = Hashtbl.create 4096;
    reliab;
    retries0 = (match reliab with Some r -> Net.Reliab.retries r | None -> 0);
    give_ups0 = (match reliab with Some r -> Net.Reliab.give_ups r | None -> 0);
  }

let finish ctx ~offered_rps =
  Sim.Engine.run_all ctx.engine;
  let window_s = float_of_int (ctx.end_abs - ctx.warmup_abs) /. 1e9 in
  {
    offered_rps;
    achieved_rps = float_of_int ctx.completed /. window_s;
    achieved_gbps = float_of_int (ctx.resp_bytes * 8) /. window_s /. 1e9;
    hist = ctx.hist;
    sent = ctx.sent;
    completed = ctx.completed;
    retransmits =
      (match ctx.reliab with Some r -> Net.Reliab.retries r - ctx.retries0 | None -> 0);
    abandoned =
      (match ctx.reliab with Some r -> Net.Reliab.give_ups r - ctx.give_ups0 | None -> 0);
  }

let check_reliab ~who ~reliab ~parse_id =
  match (reliab, parse_id) with
  | Some _, None ->
      invalid_arg (who ^ ": retries need id-matched completions (parse_id)")
  | _ -> ()

let open_loop ?reliab engine ~clients ~server ~rate_rps ~duration_ns ~warmup_ns
    ~rng ~send ~parse_id =
  if clients = [] then invalid_arg "Driver.open_loop: no clients";
  check_reliab ~who:"Driver.open_loop" ~reliab ~parse_id;
  (* Connection-oriented transports handshake now, during warmup, so
     establishment never lands in a measured latency window (no-op for
     UDP). *)
  List.iter (fun c -> Net.Transport.connect c ~peer:server) clients;
  let ctx = make_ctx ?reliab engine ~duration_ns ~warmup_ns in
  let per_client_mean_ns =
    float_of_int (List.length clients) /. rate_rps *. 1e9
  in
  List.iter
    (fun client ->
      let fifo = Queue.create () in
      let rng = Sim.Rng.split rng in
      install_rx ctx client ~parse_id ~fifo ~on_complete:(fun () -> ());
      let rec arrival () =
        if Sim.Engine.now engine < ctx.end_abs then begin
          issue ctx client ~server ~send ~parse_id ~fifo;
          let gap = Sim.Dist.exponential rng ~mean:per_client_mean_ns in
          Sim.Engine.schedule engine ~after:(max 1 (int_of_float gap)) arrival
        end
      in
      let first = Sim.Dist.exponential rng ~mean:per_client_mean_ns in
      Sim.Engine.schedule engine ~after:(max 1 (int_of_float first)) arrival)
    clients;
  finish ctx ~offered_rps:rate_rps

(* Open loop over a packed connection table (see [Conns]): one aggregate
   Poisson arrival process at [rate_rps] picks a uniformly random
   connection per arrival — the superposition of n independent Poisson
   streams at rate/n each, without n timer chains in the heap. The chosen
   connection's private RNG stream generates the request (key choice, op
   mix), so the sequence each connection emits is a function of the seed
   alone. Connections multiplex over the (few) physical client endpoints
   round-robin.

   Responses must be id-matched: a dispatcher fanning requests across
   shards can reorder completions, so the FIFO fallback of [open_loop]
   would mis-pair latencies. *)
let open_loop_conns ?reliab engine ~conns ~clients ~server ~rate_rps
    ~duration_ns ~warmup_ns ~rng ~send ~parse_id =
  if clients = [] then invalid_arg "Driver.open_loop_conns: no clients";
  let clients_arr = Array.of_list clients in
  let n_clients = Array.length clients_arr in
  List.iter (fun c -> Net.Transport.connect c ~peer:server) clients;
  let ctx = make_ctx ?reliab engine ~duration_ns ~warmup_ns in
  let parse = Some parse_id in
  List.iter
    (fun client ->
      install_rx ctx client ~parse_id:parse ~fifo:(Queue.create ())
        ~on_complete:(fun () -> ()))
    clients;
  let master = Sim.Rng.split rng in
  let mean_gap_ns = 1e9 /. rate_rps in
  let rec arrival () =
    if Sim.Engine.now engine < ctx.end_abs then begin
      let conn = Sim.Rng.int master (Conns.length conns) in
      let client = clients_arr.(conn mod n_clients) in
      let id = fresh_id ctx in
      Hashtbl.replace ctx.pending id (Sim.Engine.now engine);
      ctx.sent <- ctx.sent + 1;
      let do_send () =
        Conns.with_stream conns conn (fun crng ->
            send ~conn crng client ~dst:server ~id)
      in
      (match ctx.reliab with
      | None -> do_send ()
      | Some r ->
          Net.Reliab.track r ~id ~send:do_send ~give_up:(fun () ->
              Hashtbl.remove ctx.pending id));
      let gap = Sim.Dist.exponential master ~mean:mean_gap_ns in
      Sim.Engine.schedule engine ~after:(max 1 (int_of_float gap)) arrival
    end
  in
  Sim.Engine.schedule engine ~after:1 arrival;
  finish ctx ~offered_rps:rate_rps

let closed_loop ?reliab engine ~clients ~server ~outstanding ~duration_ns
    ~warmup_ns ~rng ~send ~parse_id =
  if clients = [] then invalid_arg "Driver.closed_loop: no clients";
  check_reliab ~who:"Driver.closed_loop" ~reliab ~parse_id;
  ignore rng;
  List.iter (fun c -> Net.Transport.connect c ~peer:server) clients;
  let ctx = make_ctx ?reliab engine ~duration_ns ~warmup_ns in
  List.iter
    (fun client ->
      let fifo = Queue.create () in
      let rec next () =
        if Sim.Engine.now engine < ctx.end_abs then
          (* An abandoned request still frees its slot, or a lossy run
             would strangle the closed loop. *)
          issue ctx client ~server ~send ~parse_id ~fifo ~on_give_up:next
      in
      install_rx ctx client ~parse_id ~fifo ~on_complete:next;
      for k = 1 to outstanding do
        Sim.Engine.schedule engine ~after:(k * 211) (fun () ->
            issue ctx client ~server ~send ~parse_id ~fifo ~on_give_up:next)
      done)
    clients;
  finish ctx ~offered_rps:Float.infinity
