(* Figure 10: generality across NICs. A 1024-byte total payload split over
   1..6 scatter-gather entries (the e810 allows 8 gather entries, one of
   which carries the packet header), on Mellanox CX-6 and Intel e810: both
   NICs should show scatter-gather winning exactly while per-entry sizes are
   >= 512 B. *)

let totals = 1024

let entry_counts = [ 1; 2; 4 ] (* per-entry: 1024, 512, 256 *)

let l3 = Memmodel.Params.default.Memmodel.Params.l3.Memmodel.Params.size_bytes

let run_cell (nic_model, entries) =
  (fun entries ->
      let entry_size = totals / entries in
      let n_keys = min 262_144 (max 8_192 (5 * l3 / totals)) in
      let rig = Apps.Rig.create ~nic_model () in
      let workload = Workload.Ycsb.make ~n_keys ~entries ~entry_size () in
      let base =
        Apps.Kv_app.install rig
          ~backend:(Apps.Backend.cornflakes ~config:Cornflakes.Config.all_copy ())
          ~workload
      in
      let measure config =
        let app =
          Apps.Kv_app.switch_backend base (Apps.Backend.cornflakes ~config ())
        in
        (Util.capacity rig (Kv_bench.driver app)).Loadgen.Driver.achieved_rps
      in
      let sg = measure Cornflakes.Config.all_zero_copy in
      let copy = measure Cornflakes.Config.all_copy in
      (entries, sg, copy))
    entries

let run () =
  let t =
    Stats.Table.create
      ~title:
        "Figure 10: 1024 B payload over N entries — SG vs copy across NICs \
         (krps)"
      ~columns:
        [ "NIC"; "entries"; "bytes/entry"; "SG"; "copy"; "SG vs copy" ]
  in
  let nics = [ Nic.Model.mellanox_cx6; Nic.Model.intel_e810 ] in
  let cells =
    Util.par_map
      (fun (nic_model, entries) ->
        (nic_model.Nic.Model.name, run_cell (nic_model, entries)))
      (List.concat_map
         (fun nic -> List.map (fun e -> (nic, e)) entry_counts)
         nics)
  in
  List.iter
    (fun (nic_name, (entries, sg, copy)) ->
      Stats.Table.add_row t
        [
          nic_name;
          string_of_int entries;
          string_of_int (totals / entries);
          Util.krps sg;
          Util.krps copy;
          Util.pct_delta copy sg;
        ])
    cells;
  Stats.Table.print t;
  print_endline
    "  (paper: on both NICs scatter-gather wins for 512 B-or-larger entries)"
