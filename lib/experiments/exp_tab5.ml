(* Table 5: the combined serialize-and-send ablation. With the optimisation
   off, Cornflakes materialises a scatter-gather array and the stack
   prepends a separate header entry. Paper: +7.7% (Google 1-4), +10%
   (Twitter), +17.4% (YCSB 4 x 1024, reported in Gbps). *)

let sas_backends () =
  [
    Apps.Backend.cornflakes ();
    Apps.Backend.cornflakes
      ~config:{ Cornflakes.Config.default with serialize_and_send = false }
      ();
  ]

let names () = List.map (fun b -> b.Apps.Backend.name) (sas_backends ())

let run () =
  let t =
    Stats.Table.create
      ~title:"Table 5: combined serialize-and-send ablation"
      ~columns:[ "workload"; "with"; "without"; "gain"; "paper gain" ]
  in
  let with_name, without_name =
    match names () with [ a; b ] -> (a, b) | _ -> assert false
  in
  let rows =
    Util.par_map
      (fun (label, workload, unit_gbps, paper) ->
        let results = Kv_bench.capacities ~workload (sas_backends ()) in
        let metric name =
          let r = List.assoc name results in
          if unit_gbps then r.Loadgen.Driver.achieved_gbps
          else r.Loadgen.Driver.achieved_rps
        in
        (label, unit_gbps, metric with_name, metric without_name, paper))
      [
        ("Google 1-4 vals", Workload.Google.make ~max_vals:4 (), false, "+7.7%");
        ("Twitter", Workload.Twitter.make (), false, "+10.4%");
        ( "YCSB 4x1024",
          Workload.Ycsb.make ~entries:4 ~entry_size:1024 (),
          true,
          "+17.4%" );
      ]
  in
  List.iter
    (fun (label, unit_gbps, v_with, v_without, paper) ->
      let fmt v =
        if unit_gbps then Util.gbps v ^ " Gbps" else Util.krps v ^ " krps"
      in
      Stats.Table.add_row t
        [ label; fmt v_with; fmt v_without; Util.pct_delta v_without v_with; paper ])
    rows;
  Stats.Table.print t
