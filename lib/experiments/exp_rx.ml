(* RX-path ablation: copy-RX (every delivered frame parsed into a heap
   [Wire.Dyn]) vs zc-RX (validate once with [Wire.Reader], access fields in
   the receive buffer). Two sections:

   - end-to-end: the Twitter kv workload served by the same Cornflakes TX
     stack under both RX disciplines, on UDP and TCP — the zc-RX server
     must not lose to its copy-RX twin on either transport;

   - RX deserialize in isolation: one delivered GET request frame parsed
     repeatedly through both paths, reporting simulated deserialize-side
     ns/op (the [Memmodel.Cpu] meter — deterministic) and real minor-heap
     words/op. The acceptance gate lives here: the in-place reader must cut
     ns/op by >= 25% and minor words/op by >= 50% against the Dyn parse.

   Beyond the printed tables the run writes BENCH_rx.json — simulated
   metrics and deterministic allocation counts only, no wall-clock — which
   CI regenerates at --jobs 1 and --jobs 4 and compares byte-for-byte. *)

type row = {
  transport : string;
  name : string;
  achieved_rps : float;
  achieved_gbps : float;
  p50_ns : int;
  p99_ns : int;
  completed : int;
}

let rows_of ~transport results =
  List.map
    (fun (name, (r : Loadgen.Driver.result)) ->
      {
        transport;
        name;
        achieved_rps = r.Loadgen.Driver.achieved_rps;
        achieved_gbps = r.Loadgen.Driver.achieved_gbps;
        p50_ns = Loadgen.Driver.p50_ns r;
        p99_ns = Loadgen.Driver.p99_ns r;
        completed = r.Loadgen.Driver.completed;
      })
    results

(* Per transport, the zc-RX server (first row) must at least match the
   copy-RX twin: the validate-once path exists to shed work, not add it. *)
let zc_wins_e2e rows =
  match rows with
  | zc :: copy :: _ -> zc.achieved_rps >= copy.achieved_rps
  | _ -> false

(* --- RX deserialize in isolation --------------------------------------- *)

type deser = { ns_per_op : float; words_per_op : float }

let deser_iters = 2000

let keys =
  (* Four 32 B keys: the GetM(4) shape of the paper's Listing 1, with the
     key size the Twitter trace centres on. *)
  List.init 4 (fun i -> Printf.sprintf "twitter:user:%013d:profile-%02d" i i)

(* One GET request frame produced by a real send through the loopback
   fabric, so both parses see exactly the wire bytes a server sees. *)
let make_frame () =
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let ep = Net.Endpoint.create fabric registry ~id:1 in
  let peer = Net.Endpoint.create fabric registry ~id:2 in
  let got = ref None in
  Net.Endpoint.set_rx peer (fun ~src:_ buf -> got := Some buf);
  let m = Wire.Dyn.create Apps.Proto.req in
  Wire.Dyn.set_int m "id" 1L;
  Wire.Dyn.set_int m "op" Apps.Proto.op_get;
  List.iter
    (fun k ->
      Wire.Dyn.append m "keys" (Wire.Dyn.Payload (Wire.Payload.of_string space k)))
    keys;
  Cornflakes.Send.send_object Cornflakes.Config.default ep ~dst:2 m;
  Sim.Engine.run_all engine;
  match !got with
  | Some b -> b
  | None -> failwith "exp_rx: loopback send delivered no frame"

(* [measure cpu op] — simulated ns from the cost meter, minor words from a
   counted loop; both deterministic for a deterministic [op]. *)
let measure cpu op =
  for _ = 1 to 100 do
    op ()
  done;
  let ns0 = Memmodel.Cpu.ns cpu in
  let w0 = Gc.minor_words () in
  for _ = 1 to deser_iters do
    op ()
  done;
  {
    ns_per_op = (Memmodel.Cpu.ns cpu -. ns0) /. float_of_int deser_iters;
    words_per_op = (Gc.minor_words () -. w0) /. float_of_int deser_iters;
  }

(* The GET-path consumption both servers perform per request: read id and
   op, copy each key out for the store lookup (the hybrid exit: small
   fields are hashed, so they are copied either way). *)
let measure_dyn_parse () =
  let frame = make_frame () in
  let cpu = Memmodel.Cpu.create Memmodel.Params.default in
  let sink = ref 0 in
  let op () =
    let d =
      Cornflakes.Send.deserialize ~cpu Apps.Proto.schema Apps.Proto.req frame
    in
    (match Wire.Dyn.get_int d "id" with Some _ -> () | None -> ());
    (match Wire.Dyn.get_int d "op" with Some _ -> () | None -> ());
    List.iter
      (fun v ->
        match v with
        | Wire.Dyn.Payload p ->
            let view = Wire.Payload.view p in
            Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:view.Mem.View.addr
              ~len:view.Mem.View.len;
            sink := !sink + String.length (Mem.View.to_string view)
        | _ -> ())
      (Wire.Dyn.get_list d "keys");
    Wire.Dyn.release ~cpu d
  in
  let r = measure cpu op in
  Mem.Pinned.Buf.decr_ref ~site:"exp_rx.frame" frame;
  r

let measure_inplace_read () =
  let frame = make_frame () in
  let cpu = Memmodel.Cpu.create Memmodel.Params.default in
  let reader = Wire.Reader.create Apps.Proto.req in
  let sink = ref 0 in
  let op () =
    Wire.Reader.validate ~cpu reader frame;
    ignore (Wire.Reader.get_u64 reader Apps.Proto.req_id);
    ignore (Wire.Reader.get_u64 reader Apps.Proto.req_op);
    let n = Wire.Reader.count reader Apps.Proto.req_keys in
    for j = 0 to n - 1 do
      sink :=
        !sink
        + String.length (Wire.Reader.elem_string reader Apps.Proto.req_keys ~j)
    done
  in
  let r = measure cpu op in
  (* Drop the reader's handle cache, then the delivery reference. *)
  Wire.Reader.clear reader;
  Mem.Pinned.Buf.decr_ref ~site:"exp_rx.frame" frame;
  r

let reduction_pct ~base ~now =
  if base > 0.0 then 100.0 *. (1.0 -. (now /. base)) else 0.0

(* --- output ------------------------------------------------------------- *)

let json_file = "BENCH_rx.json"

let write_json ~seed rows ~dyn ~zc ~ns_red ~words_red ~wins =
  let oc = open_out json_file in
  Printf.fprintf oc "{\n  \"schema\": \"cornflakes-bench-rx/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"zc_rx_wins\": %b,\n" wins;
  Printf.fprintf oc "  \"deserialize\": {\n";
  Printf.fprintf oc
    "    \"dyn_ns_per_op\": %.1f, \"zc_ns_per_op\": %.1f, \
     \"ns_reduction_pct\": %.1f,\n"
    dyn.ns_per_op zc.ns_per_op ns_red;
  Printf.fprintf oc
    "    \"dyn_minor_words_per_op\": %.1f, \"zc_minor_words_per_op\": %.1f, \
     \"words_reduction_pct\": %.1f\n"
    dyn.words_per_op zc.words_per_op words_red;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"rows\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"transport\": %S, \"system\": %S, \"achieved_rps\": %.1f, \
         \"achieved_gbps\": %.4f, \"p50_ns\": %d, \"p99_ns\": %d, \
         \"completed\": %d}%s\n"
        r.transport r.name r.achieved_rps r.achieved_gbps r.p50_ns r.p99_ns
        r.completed
        (if i = n - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" json_file

let run () =
  let workload = Workload.Twitter.make () in
  let backends =
    [ Apps.Backend.cornflakes (); Apps.Backend.cornflakes ~zc_rx:false () ]
  in
  let udp = rows_of ~transport:"udp" (Kv_bench.capacities ~workload backends) in
  let tcp =
    rows_of ~transport:"tcp"
      (Kv_bench.capacities ~transport:`Tcp ~workload backends)
  in
  let rows = udp @ tcp in
  let t =
    Stats.Table.create
      ~title:
        "RX ablation: zc-RX (validate-once reader) vs copy-RX (Dyn parse), \
         Twitter kv"
      ~columns:[ "transport"; "system"; "krps"; "Gbps"; "p99 us"; "completed" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.transport;
          r.name;
          Util.krps r.achieved_rps;
          Util.gbps r.achieved_gbps;
          Printf.sprintf "%.1f" (float_of_int r.p99_ns /. 1e3);
          string_of_int r.completed;
        ])
    rows;
  Stats.Table.print t;
  let dyn = measure_dyn_parse () in
  let zc = measure_inplace_read () in
  let ns_red = reduction_pct ~base:dyn.ns_per_op ~now:zc.ns_per_op in
  let words_red = reduction_pct ~base:dyn.words_per_op ~now:zc.words_per_op in
  let d =
    Stats.Table.create
      ~title:
        "RX deserialize in isolation: GetM(4) request frame, simulated \
         ns/op + minor words/op"
      ~columns:[ "path"; "sim ns/op"; "minor words/op" ]
  in
  Stats.Table.add_row d
    [
      "dyn-parse (copy-RX)";
      Printf.sprintf "%.1f" dyn.ns_per_op;
      Printf.sprintf "%.1f" dyn.words_per_op;
    ];
  Stats.Table.add_row d
    [
      "reader (zc-RX)";
      Printf.sprintf "%.1f" zc.ns_per_op;
      Printf.sprintf "%.1f" zc.words_per_op;
    ];
  Stats.Table.print d;
  Printf.printf "RX deserialize: ns/op -%.1f%%, minor words/op -%.1f%%\n"
    ns_red words_red;
  let wins =
    ns_red >= 25.0 && words_red >= 50.0 && zc_wins_e2e udp && zc_wins_e2e tcp
  in
  Printf.printf
    "zc-RX gate (>=25%% ns, >=50%% words, e2e no-loss on both transports): %s\n"
    (if wins then "OK" else "VIOLATED");
  write_json ~seed:(Apps.Rig.default_seed ()) rows ~dyn ~zc ~ns_red ~words_red
    ~wins
