(* Cluster scaling: the sharded KV cluster (lib/cluster) under the
   open-loop million-connection driver.

   One front-end dispatcher consistent-hashes keys across 1..N shared-
   nothing shards and reassembles multi-get fan-outs zero-copy; the
   driver models 10^5–10^6 concurrent client connections as a packed
   table with per-connection SplitMix64 streams and Zipf key popularity.
   The offered load is fixed above the 4-shard aggregate capacity, so
   achieved krps climbs as shards absorb more of the overload — the
   paper's Fig. 13 linear-scaling story at cluster granularity.

   The hot-shard scenario re-runs the widest cluster with the Zipf
   exponent cranked up: popularity mass concentrates on few keys, the
   ring maps the hottest onto one shard, and the per-shard served counts
   expose the imbalance a consistent-hash cluster cannot shed.

   Besides the printed tables the run writes BENCH_cluster.json —
   simulated metrics only — which CI regenerates at --jobs 1 and --jobs 4
   and compares byte-for-byte: each config builds its whole topology
   (engine, fabric, shards, connection table) from [Sim.Rng.stream
   ~index], so pool scheduling is invisible in the artifact. *)

type row = {
  label : string;
  shards : int;
  zipf_s : float;
  offered_rps : float;
  achieved_rps : float;
  achieved_gbps : float;
  p50_ns : int;
  p99_ns : int;
  completed : int;
  active_conns : int;
  zc_forwards : int;
  copy_forwards : int;
  adaptive_obs : int;
  drops : int;
  misses : int;
  exactly_once : bool;
  per_shard_served : int list;
  disp_svc_ns : float; (* dispatcher mean service time *)
  shard_svc_ns : float; (* mean over shards of mean service time *)
  audit : Cluster.Dispatcher.audit;
}

(* Offered load per front-end/shard pair: the routing tier scales with
   the data tier (dispatchers = shards), so offered load grows linearly
   with width while every server stays below saturation — the run is
   loss-free, which the exactly-once audit and RefSan depend on. The
   rate is calibrated against the simulated service costs (roughly 85%
   of a dispatcher's worst-case per-request budget) and asserted by the
   scaling_monotone gate rather than trusted. *)
let rate_per_unit = 450_000.0

let base_zipf = 0.9

let hot_zipf = 1.25

(* The hot-shard scenario keeps the skew extreme but offers less: the
   point is the served-count imbalance and the latency it costs, not a
   saturation collapse that would orphan fan-outs. *)
let hot_rate_per_unit = 180_000.0

let n_keys = 32_768

let run_config ~index ~label ~shards ~zipf_s ~offered ~conns_n =
  let b = Util.budget () in
  let seed = Apps.Rig.default_seed () in
  (* Per-config streams: jobs are independent whatever the pool width. *)
  let topo_seed = Sim.Rng.stream_seed ~seed ~index in
  let topo =
    Cluster.Topology.create ~seed:topo_seed ~shards ~dispatchers:shards
      ~n_keys ~zipf_s ~backend:(Apps.Backend.cornflakes ()) ()
  in
  let conns = Loadgen.Conns.create ~seed:topo_seed conns_n in
  let r =
    Cluster.Topology.drive topo ~conns ~rate_rps:offered
      ~duration_ns:b.Util.point_ns ~warmup_ns:b.Util.warmup_ns
  in
  let ds = Cluster.Topology.dispatcher_list topo in
  let ss = Cluster.Topology.shard_list topo in
  let audit =
    Cluster.Dispatcher.merge_audits (List.map Cluster.Dispatcher.audit ds)
  in
  let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l in
  let drops =
    (* Any loss breaks exactly-once, so count every sink: server queue
       rejections, NIC rx-ring overruns, and fabric-level drops. *)
    sum (fun d -> Loadgen.Server.dropped (Cluster.Dispatcher.server d)) ds
    + sum (fun s -> Loadgen.Server.dropped (Cluster.Shard.server s)) ss
    + sum (fun d -> Net.Endpoint.rx_dropped (Cluster.Dispatcher.endpoint d)) ds
    + sum (fun s -> Net.Endpoint.rx_dropped (Cluster.Shard.endpoint s)) ss
    + sum
        (fun c -> Net.Endpoint.rx_dropped (Net.Transport.endpoint c))
        (Cluster.Topology.clients topo)
    + Net.Fabric.dropped (Cluster.Topology.fabric topo)
  in
  let misses = sum Cluster.Shard.misses ss in
  let adaptive_obs =
    sum
      (fun d ->
        let acc = ref 0 in
        for i = 0 to shards - 1 do
          acc :=
            !acc
            + Cornflakes.Adaptive.observations
                (Cluster.Dispatcher.adaptive d ~shard_idx:i)
        done;
        !acc)
      ds
  in
  let per_shard_served = Cluster.Topology.per_shard_served topo in
  let mean f l =
    List.fold_left (fun acc x -> acc +. f x) 0.0 l
    /. float_of_int (max 1 (List.length l))
  in
  let disp_svc_ns =
    mean (fun d -> Loadgen.Server.mean_service_ns (Cluster.Dispatcher.server d)) ds
  in
  let shard_svc_ns =
    mean (fun s -> Loadgen.Server.mean_service_ns (Cluster.Shard.server s)) ss
  in
  if Sanitizer.Refsan.is_enabled () then begin
    Sim.Engine.quiesce (Cluster.Topology.engine topo);
    Sanitizer.Report.print_scoped ~label:"cluster fan-out" ();
    Sanitizer.Refsan.checkpoint ()
  end;
  {
    label;
    shards;
    zipf_s;
    offered_rps = offered;
    achieved_rps = r.Loadgen.Driver.achieved_rps;
    achieved_gbps = r.Loadgen.Driver.achieved_gbps;
    p50_ns = Loadgen.Driver.p50_ns r;
    p99_ns = Loadgen.Driver.p99_ns r;
    completed = r.Loadgen.Driver.completed;
    active_conns = Loadgen.Conns.active conns;
    zc_forwards = sum Cluster.Dispatcher.zc_forwards ds;
    copy_forwards = sum Cluster.Dispatcher.copy_forwards ds;
    adaptive_obs;
    drops;
    misses;
    exactly_once = Cluster.Dispatcher.exactly_once audit && drops = 0;
    per_shard_served;
    disp_svc_ns;
    shard_svc_ns;
    audit;
  }

(* Aggregate krps must rise with every added shard (the overload shrinks);
   flat-within-noise is a scaling failure, so require a real step. *)
let scaling_monotone rows =
  let rec go = function
    | a :: (b :: _ as rest) ->
        b.achieved_rps > a.achieved_rps *. 1.02 && go rest
    | _ -> true
  in
  go rows

let imbalance row =
  let served = List.map float_of_int row.per_shard_served in
  let n = List.length served in
  if n = 0 then 1.0
  else
    let mean = List.fold_left ( +. ) 0.0 served /. float_of_int n in
    if mean <= 0.0 then 1.0 else List.fold_left max 0.0 served /. mean

let json_file = "BENCH_cluster.json"

let row_json r =
  Printf.sprintf
    "{\"label\": %S, \"shards\": %d, \"zipf_s\": %.2f, \"offered_rps\": \
     %.1f, \"achieved_rps\": %.1f, \"achieved_gbps\": %.4f, \"p50_ns\": %d, \
     \"p99_ns\": %d, \"completed\": %d, \"active_conns\": %d, \
     \"zc_forwards\": %d, \"copy_forwards\": %d, \"adaptive_obs\": %d, \
     \"drops\": %d, \"misses\": %d, \"exactly_once\": %b, \
     \"per_shard_served\": [%s]}"
    r.label r.shards r.zipf_s r.offered_rps r.achieved_rps r.achieved_gbps
    r.p50_ns r.p99_ns r.completed r.active_conns r.zc_forwards
    r.copy_forwards r.adaptive_obs r.drops r.misses r.exactly_once
    (String.concat ", " (List.map string_of_int r.per_shard_served))

let write_json ~seed ~conns_n ~scaling ~hot =
  let oc = open_out json_file in
  Printf.fprintf oc "{\n  \"schema\": \"cornflakes-bench-cluster/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"transport\": %S,\n"
    (Apps.Rig.transport_kind_name (Apps.Rig.default_transport ()));
  Printf.fprintf oc "  \"conns\": %d,\n" conns_n;
  Printf.fprintf oc "  \"n_keys\": %d,\n" n_keys;
  Printf.fprintf oc "  \"scaling_monotone\": %b,\n" (scaling_monotone scaling);
  Printf.fprintf oc "  \"exactly_once\": %b,\n"
    (List.for_all (fun r -> r.exactly_once) (scaling @ [ hot ]));
  Printf.fprintf oc "  \"hot_imbalance\": %.3f,\n" (imbalance hot);
  Printf.fprintf oc "  \"scaling\": [\n";
  let n = List.length scaling in
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    %s%s\n" (row_json r)
        (if i = n - 1 then "" else ","))
    scaling;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"hot\": %s\n}\n" (row_json hot);
  close_out oc;
  Printf.printf "wrote %s\n" json_file

let print_rows ~title rows =
  let t =
    Stats.Table.create ~title
      ~columns:
        [
          "scenario"; "shards"; "offered krps"; "achieved krps"; "p50 us";
          "p99 us"; "conns"; "zc fwd"; "copy fwd"; "imbalance";
        ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.label;
          string_of_int r.shards;
          Util.krps r.offered_rps;
          Util.krps r.achieved_rps;
          Printf.sprintf "%.1f" (float_of_int r.p50_ns /. 1e3);
          Printf.sprintf "%.1f" (float_of_int r.p99_ns /. 1e3);
          string_of_int r.active_conns;
          string_of_int r.zc_forwards;
          string_of_int r.copy_forwards;
          Printf.sprintf "%.2f" (imbalance r);
        ])
    rows;
  Stats.Table.print t

let run () =
  let quick = Util.is_quick () in
  let shard_counts = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let conns_n = if quick then 131_072 else 1_048_576 in
  let hot_shards = List.fold_left max 1 shard_counts in
  let configs =
    List.map
      (fun n ->
        ( Printf.sprintf "scale-%d" n,
          n,
          base_zipf,
          float_of_int n *. rate_per_unit ))
      shard_counts
    @ [
        ( "hot-shard",
          hot_shards,
          hot_zipf,
          float_of_int hot_shards *. hot_rate_per_unit );
      ]
  in
  let rows =
    Util.par_map
      (fun (index, (label, shards, zipf_s, offered)) ->
        run_config ~index ~label ~shards ~zipf_s ~offered ~conns_n)
      (List.mapi (fun i c -> (i, c)) configs)
  in
  let scaling = List.filteri (fun i _ -> i < List.length shard_counts) rows in
  let hot = List.nth rows (List.length shard_counts) in
  print_rows
    ~title:
      (Printf.sprintf
         "Cluster scaling: sharded KV behind a matched dispatcher tier, %d \
          open-loop connections"
         conns_n)
    (scaling @ [ hot ]);
  List.iter
    (fun r ->
      let a = r.audit in
      Printf.printf
        "  %-10s svc ns disp=%.0f shard=%.0f | fanouts %d/%d partials=%d \
         dup=%d orphan=%d misaligned=%d in_flight=%d maxcomp=%d drops=%d \
         misses=%d\n"
        r.label r.disp_svc_ns r.shard_svc_ns a.Cluster.Dispatcher.fanouts_started
        a.Cluster.Dispatcher.fanouts_completed a.Cluster.Dispatcher.partials
        a.Cluster.Dispatcher.dup_partials a.Cluster.Dispatcher.orphan_partials
        a.Cluster.Dispatcher.misaligned a.Cluster.Dispatcher.in_flight
        a.Cluster.Dispatcher.max_completions_per_id r.drops r.misses)
    rows;
  Printf.printf "aggregate krps monotone 1..%d shards: %s\n" hot_shards
    (if scaling_monotone scaling then "OK" else "VIOLATED");
  Printf.printf "exactly-once fan-out semantics: %s\n"
    (if List.for_all (fun r -> r.exactly_once) rows then "OK" else "VIOLATED");
  Printf.printf "hot-shard imbalance (max/mean served at zipf %.2f): %.2f\n"
    hot_zipf (imbalance hot);
  write_json ~seed:(Apps.Rig.default_seed ()) ~conns_n ~scaling ~hot
