(* Figure 12 and Table 4: the hybrid threshold ablation. Figure 12 compares
   hybrid vs only-scatter-gather vs only-copy on the Twitter trace; Table 4
   compares hybrid vs only-scatter-gather on the Google workload. *)

let configs =
  [
    ("hybrid (512B)", Cornflakes.Config.default);
    ("all scatter-gather", Cornflakes.Config.all_zero_copy);
    ("all copy", Cornflakes.Config.all_copy);
  ]

let backends () =
  List.map
    (fun (name, config) ->
      { (Apps.Backend.cornflakes ~config ()) with Apps.Backend.name })
    configs

let run () =
  let workload = Workload.Twitter.make () in
  let curves = Kv_bench.curves ~workload (backends ()) in
  let slo_ns = 50_000 in
  Util.print_curves
    ~title:"Figure 12: hybrid vs all-scatter-gather vs all-copy (Twitter)"
    ~slo_ns curves;
  let find name = List.find (fun c -> Stats.Curve.name c = name) curves in
  let hybrid = Util.tput_at_slo (find "hybrid (512B)") ~slo_ns in
  let zc = Util.tput_at_slo (find "all scatter-gather") ~slo_ns in
  Printf.printf "  headline: hybrid vs all-SG at SLO -> %s (paper: +2.3-3.9%%)\n"
    (Util.pct_delta zc hybrid)

let run_tab4 () =
  let t =
    Stats.Table.create
      ~title:"Table 4: hybrid vs only-scatter-gather, Google workload (krps)"
      ~columns:[ "lists"; "hybrid"; "all-SG"; "gain"; "paper gain" ]
  in
  let rows =
    Util.par_map
      (fun (max_vals, paper) ->
        let workload = Workload.Google.make ~max_vals () in
        let results =
          Kv_bench.capacities ~workload
            [
              Apps.Backend.cornflakes ();
              Apps.Backend.cornflakes ~config:Cornflakes.Config.all_zero_copy ();
            ]
        in
        let hybrid =
          (List.assoc "cornflakes" results).Loadgen.Driver.achieved_rps
        in
        let zc =
          (List.assoc "cornflakes-zc" results).Loadgen.Driver.achieved_rps
        in
        (max_vals, paper, hybrid, zc))
      [ (1, "+1.4%"); (4, "+5%"); (8, "+9%"); (16, "+14.0%") ]
  in
  List.iter
    (fun (max_vals, paper, hybrid, zc) ->
      Stats.Table.add_row t
        [
          Printf.sprintf "1-%d vals" max_vals;
          Util.krps hybrid;
          Util.krps zc;
          Util.pct_delta zc hybrid;
          paper;
        ])
    rows;
  Stats.Table.print t
