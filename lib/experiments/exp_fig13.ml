(* Figure 13: multicore scaling of the scatter-gather microbenchmark.
   N cores, each with its own store shard (2 x 512 B values, aggregate
   working set ~10x L3), sharing the L3 and one 100 Gbps NIC. Copy and raw
   scatter-gather should both scale linearly until the NIC line rate flattens
   the curves, with scatter-gather ~1.5x higher until the plateau. *)

let entry_size = 512

let entries = 2

let l3 = Memmodel.Params.default.Memmodel.Params.l3.Memmodel.Params.size_bytes

let core_counts = [ 1; 2; 4; 8 ]

let run_config ~cores path =
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let shared_l3 = Memmodel.Cache.create Memmodel.Params.default.Memmodel.Params.l3 in
  let shared_nic =
    Nic.Device.create engine ~model:Nic.Model.mellanox_cx6
  in
  let total_keys = 10 * l3 / (entries * entry_size) in
  let keys_per_core = max 2048 (total_keys / cores) in
  let b = Util.budget () in
  let duration = b.Util.cap_ns and warmup = b.Util.warmup_ns in
  let completed = ref 0 and resp_bytes = ref 0 in
  for core = 0 to cores - 1 do
    let cpu = Memmodel.Cpu.create ~shared_l3 Memmodel.Params.default in
    let server_ep =
      Net.Endpoint.create ~cpu ~nic:shared_nic fabric registry ~id:(1 + core)
    in
    let server_tr = Net.Endpoint.transport server_ep in
    let server = Loadgen.Server.create server_tr cpu in
    let rig : Apps.Rig.t =
      {
        Apps.Rig.engine;
        fabric;
        space;
        registry;
        cpu;
        server_ep;
        server_tr;
        server;
        clients = [];
        transport_kind = `Udp;
        rng = Sim.Rng.stream ~seed:42 ~index:core;
      }
    in
    let app =
      Micro.install rig path ~entries ~entry_size ~n_keys:keys_per_core
    in
    let d = Micro.driver app in
    (* Two closed-loop clients per core, wired inline so all cores run
       concurrently on the one engine. *)
    for c = 0 to 1 do
      let client =
        Net.Endpoint.create fabric registry ~id:(100 + (core * 10) + c)
      in
      let client_tr = Net.Endpoint.transport client in
      let issue () = d.Util.send client_tr ~dst:(1 + core) ~id:0 in
      Net.Endpoint.set_rx client (fun ~src:_ buf ->
          let now = Sim.Engine.now engine in
          if now >= warmup && now <= duration then begin
            incr completed;
            resp_bytes := !resp_bytes + Mem.Pinned.Buf.len buf
          end;
          Mem.Pinned.Buf.decr_ref buf;
          if now < duration then issue ());
      for k = 1 to 4 do
        Sim.Engine.schedule engine ~after:(k * 311) issue
      done
    done
  done;
  Sim.Engine.run_all engine;
  let window_s = float_of_int (duration - warmup) /. 1e9 in
  float_of_int (!resp_bytes * 8) /. window_s /. 1e9

let run () =
  let t =
    Stats.Table.create
      ~title:
        "Figure 13: multicore scaling, 2 x 512 B microbenchmark, shared L3 \
         + one 100G NIC (Gbps)"
      ~columns:[ "cores"; "copy"; "raw scatter-gather"; "sg/copy" ]
  in
  let cells =
    Util.par_map
      (fun (cores, path) -> run_config ~cores path)
      (List.concat_map
         (fun cores ->
           [ (cores, Micro.Copy_once); (cores, Micro.Raw_sg) ])
         core_counts)
  in
  List.iteri
    (fun i cores ->
      let copy = List.nth cells (2 * i) in
      let sg = List.nth cells ((2 * i) + 1) in
      Stats.Table.add_row t
        [
          string_of_int cores;
          Util.gbps copy;
          Util.gbps sg;
          Printf.sprintf "%.2f" (sg /. copy);
        ])
    core_counts;
  Stats.Table.print t;
  print_endline
    "  (paper: both scale linearly; SG starts at 16.8 Gbps and plateaus near\n\
    \   73.5 Gbps; copy is ~33% lower until both hit the NIC)"
