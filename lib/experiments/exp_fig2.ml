(* Figure 2: p99 latency vs achieved load for the echo server, comparing
   no-serialization, zero-copy, one-copy, two-copy, and the software
   serialization libraries, on a 2 x 2048 B list message. *)

let modes () =
  [
    Apps.Echo_app.No_serialization;
    Apps.Echo_app.Zero_copy_raw;
    Apps.Echo_app.One_copy;
    Apps.Echo_app.Two_copy;
    Apps.Echo_app.Lib Apps.Backend.protobuf;
    Apps.Echo_app.Lib Apps.Backend.flatbuffers;
    Apps.Echo_app.Lib Apps.Backend.capnproto;
    Apps.Echo_app.Lib (Apps.Backend.cornflakes ());
  ]

let sizes = [ 2048; 2048 ]

let run_mode mode =
  let rig = Apps.Rig.create () in
  let app = Apps.Echo_app.install rig mode in
  let d =
    {
      Util.send =
        (fun ep ~dst ~id -> Apps.Echo_app.send_request app ~sizes ep ~dst ~id);
      parse_id = Apps.Echo_app.parse_id app;
    }
  in
  let cap = Util.capacity rig d in
  let bytes_per_req =
    if cap.Loadgen.Driver.achieved_rps > 0.0 then
      cap.Loadgen.Driver.achieved_gbps *. 1e9 /. 8.0
      /. cap.Loadgen.Driver.achieved_rps
    else 0.0
  in
  let c =
    Util.curve rig d
      ~name:(Apps.Echo_app.mode_name mode)
      ~capacity_rps:cap.Loadgen.Driver.achieved_rps
  in
  (mode, cap, bytes_per_req, c)

let run () =
  let results = Util.par_map run_mode (modes ()) in
  let slo_ns = 50_000 in
  let t =
    Stats.Table.create
      ~title:
        "Figure 2: echo server (2 x 2048 B fields), single core — achieved \
         load vs p99"
      ~columns:
        [ "system"; "max Gbps"; "Gbps @ p99<50us"; "service ns"; "p99 us @ 0.75 cap" ]
  in
  List.iter
    (fun (mode, cap, bytes_per_req, c) ->
      let at_slo = Util.tput_at_slo c ~slo_ns in
      let gbps_at_slo = at_slo *. bytes_per_req *. 8.0 /. 1e9 in
      let p99_mid =
        match Stats.Curve.points c with
        | _ :: _ :: _ :: (p : Stats.Curve.point) :: _ -> p.Stats.Curve.p99_ns
        | p :: _ -> p.Stats.Curve.p99_ns
        | [] -> 0
      in
      let service =
        if cap.Loadgen.Driver.achieved_rps > 0.0 then
          1e9 /. cap.Loadgen.Driver.achieved_rps
        else 0.0
      in
      Stats.Table.add_row t
        [
          Apps.Echo_app.mode_name mode;
          Util.gbps cap.Loadgen.Driver.achieved_gbps;
          Util.gbps gbps_at_slo;
          Printf.sprintf "%.0f" service;
          Printf.sprintf "%.1f" (float_of_int p99_mid /. 1e3);
        ])
    results;
  Stats.Table.print t;
  Util.print_curves ~title:"Figure 2: throughput-latency curves" ~slo_ns
    (List.map (fun (_, _, _, c) -> c) results)
