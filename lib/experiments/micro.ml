type path = Raw_sg | Safe_sg | Copy_once

let path_name = function
  | Raw_sg -> "raw-scatter-gather"
  | Safe_sg -> "scatter-gather"
  | Copy_once -> "copy"

type t = {
  rig : Apps.Rig.t;
  path : path;
  store : Kvstore.Store.t;
  workload : Workload.Spec.t;
  rng : Sim.Rng.t;
}

let handler t ~src buf =
  let cpu = t.rig.Apps.Rig.cpu in
  let tr = t.rig.Apps.Rig.server_tr in
  match Baselines.Manual.parse ~cpu (Mem.Pinned.Buf.view buf) with
  | [ keyv ] ->
      let key = Mem.View.to_string keyv in
      (match Kvstore.Store.get ~cpu t.store ~key with
      | Some value ->
          let views =
            List.map Mem.Pinned.Buf.view (Kvstore.Store.buffers value)
          in
          (match t.path with
          | Raw_sg ->
              Baselines.Manual.send_zero_copy ~cpu ~safety:`Raw tr ~dst:src views
          | Safe_sg ->
              Baselines.Manual.send_zero_copy ~cpu ~safety:`Safe tr ~dst:src
                views
          | Copy_once -> Baselines.Manual.send_one_copy ~cpu tr ~dst:src views)
      | None ->
          (* Echo an empty frame so FIFO matching stays aligned. *)
          Baselines.Manual.send_one_copy ~cpu tr ~dst:src []);
      Mem.Pinned.Buf.decr_ref ~cpu buf
  | _ | (exception Invalid_argument _) -> Mem.Pinned.Buf.decr_ref ~cpu buf

let install_with rig path ~store ~workload =
  let t =
    { rig; path; store; workload; rng = Sim.Rng.split rig.Apps.Rig.rng }
  in
  Loadgen.Server.set_handler rig.Apps.Rig.server (fun ~src buf ->
      handler t ~src buf);
  t

let install rig path ~entries ~entry_size ~n_keys =
  (* The microbenchmark addresses buffers uniformly (paper section 2.4), so
     every access misses once the array exceeds L3. *)
  let workload = Workload.Ycsb.make ~n_keys ~zipf_s:0.001 ~entries ~entry_size () in
  let pool =
    Apps.Rig.data_pool rig ~name:"micro"
      ~classes:workload.Workload.Spec.pool_classes
  in
  let store =
    Kvstore.Store.create rig.Apps.Rig.space ~name:"micro" ~capacity:n_keys
  in
  workload.Workload.Spec.populate store ~pool;
  install_with rig path ~store ~workload

let switch t path = install_with t.rig path ~store:t.store ~workload:t.workload

let driver t =
  let send client ~dst ~id =
    ignore id;
    match t.workload.Workload.Spec.next t.rng with
    | Workload.Spec.Get { keys = [ key ] } ->
        (* Manual framing: a single field holding the key. *)
        let b = Buffer.create 64 in
        let u32 v =
          Buffer.add_char b (Char.chr (v land 0xff));
          Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
          Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
          Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))
        in
        u32 1;
        u32 (String.length key);
        Buffer.add_string b key;
        Net.Transport.send_string client ~dst (Buffer.contents b)
    | _ -> ()
  in
  { Util.send; parse_id = None }
