(* TCP end-to-end comparison: the Twitter kv workload served over the
   Demikernel-style TCP stack, all four serialization systems through the
   shared Transport path. The §6.2.3 claim is that Cornflakes' advantage
   is not a UDP artifact: with buffers held until cumulative ACK instead
   of NIC completion, zero-copy still beats the copying libraries.

   Beyond the printed table the run writes BENCH_tcp.json — simulated
   metrics only, no wall-clock — which CI regenerates at --jobs 1 and
   --jobs 4 and compares byte-for-byte (the TCP stack runs inside the
   per-rig deterministic simulation, so parallelism must not leak in). *)

type row = {
  name : string;
  achieved_rps : float;
  achieved_gbps : float;
  p50_ns : int;
  p99_ns : int;
  completed : int;
}

let rows_of results =
  List.map
    (fun (name, (r : Loadgen.Driver.result)) ->
      {
        name;
        achieved_rps = r.Loadgen.Driver.achieved_rps;
        achieved_gbps = r.Loadgen.Driver.achieved_gbps;
        p50_ns = Loadgen.Driver.p50_ns r;
        p99_ns = Loadgen.Driver.p99_ns r;
        completed = r.Loadgen.Driver.completed;
      })
    results

(* Cornflakes (first row, by construction of Backend.all) must beat every
   copying baseline on max throughput; anything else means the zero-copy
   path stopped paying for itself under ACK-held references. *)
let cornflakes_wins rows =
  match rows with
  | cf :: rest ->
      cf.name = "cornflakes"
      && List.for_all (fun r -> cf.achieved_rps >= r.achieved_rps) rest
  | [] -> false

let json_file = "BENCH_tcp.json"

let write_json ~seed rows =
  let oc = open_out json_file in
  Printf.fprintf oc "{\n  \"schema\": \"cornflakes-bench-tcp/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"transport\": \"tcp\",\n";
  Printf.fprintf oc "  \"cornflakes_wins\": %b,\n" (cornflakes_wins rows);
  Printf.fprintf oc "  \"rows\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"system\": %S, \"achieved_rps\": %.1f, \"achieved_gbps\": \
         %.4f, \"p50_ns\": %d, \"p99_ns\": %d, \"completed\": %d}%s\n"
        r.name r.achieved_rps r.achieved_gbps r.p50_ns r.p99_ns r.completed
        (if i = n - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" json_file

let run () =
  let workload = Workload.Twitter.make () in
  let rows =
    rows_of (Kv_bench.capacities ~transport:`Tcp ~workload Apps.Backend.all)
  in
  let t =
    Stats.Table.create
      ~title:
        "TCP transport: Twitter kv capacity per system (closed loop, \
         buffers held until ACK)"
      ~columns:[ "system"; "krps"; "Gbps"; "p50 us"; "p99 us"; "completed" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.name;
          Util.krps r.achieved_rps;
          Util.gbps r.achieved_gbps;
          Printf.sprintf "%.1f" (float_of_int r.p50_ns /. 1e3);
          Printf.sprintf "%.1f" (float_of_int r.p99_ns /. 1e3);
          string_of_int r.completed;
        ])
    rows;
  Stats.Table.print t;
  Printf.printf "cornflakes >= copying baselines over TCP: %s\n"
    (if cornflakes_wins rows then "OK" else "VIOLATED");
  write_json ~seed:(Apps.Rig.default_seed ()) rows
