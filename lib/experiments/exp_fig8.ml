(* Figure 8: Redis with its handwritten serialization vs Redis with
   Cornflakes, serving the Twitter trace over the same UDP stack. Paper:
   +8.8% throughput at the ~59 us tail SLO. *)

let modes =
  [
    Mini_redis.Server.Native;
    Mini_redis.Server.Cornflakes_backed Cornflakes.Config.default;
  ]

let redis_curve mode ~workload ~list_values =
  let rig = Apps.Rig.create () in
  let srv = Mini_redis.Server.install rig mode ~workload ~list_values in
  let d =
    {
      Util.send = (fun ep ~dst ~id -> Mini_redis.Server.send_next srv ep ~dst ~id);
      parse_id = None;
    }
  in
  let cap = Util.capacity rig d in
  Util.curve rig d
    ~name:(Mini_redis.Server.mode_name mode)
    ~capacity_rps:cap.Loadgen.Driver.achieved_rps

let run () =
  let slo_ns = 59_000 in
  let curves =
    Util.par_map
      (fun mode ->
        redis_curve mode ~workload:(Workload.Twitter.make ()) ~list_values:false)
      modes
  in
  Util.print_curves ~title:"Figure 8: Redis serialization vs Cornflakes (Twitter)"
    ~slo_ns curves;
  let find name = List.find (fun c -> Stats.Curve.name c = name) curves in
  let cf = Util.tput_at_slo (find "redis-cornflakes") ~slo_ns in
  let native = Util.tput_at_slo (find "redis-native") ~slo_ns in
  Printf.printf
    "  headline: redis+cornflakes %s krps vs redis %s krps -> %s (paper: +8.8%%)\n"
    (Util.krps cf) (Util.krps native) (Util.pct_delta native cf)
