(* Figure 5: heatmap of percent difference in maximum throughput between
   all-scatter-gather and all-copy Cornflakes, across total payload size and
   number of entries, on the Zipf YCSB workload. The green line of the paper
   — where scatter-gather starts winning — should track per-entry sizes of
   about 512 B. *)

let totals = [ 512; 1024; 2048; 4096; 8192 ]

let entry_counts = [ 1; 2; 4; 8; 16; 32 ]

let target_ws = 5 * Memmodel.Params.default.Memmodel.Params.l3.Memmodel.Params.size_bytes

let run_cell ~total ~entries =
  if total / entries < 16 then None
  else begin
    let entry_size = total / entries in
    let n_keys = min 262_144 (max 8_192 (target_ws / total)) in
    let rig = Apps.Rig.create () in
    let workload = Workload.Ycsb.make ~n_keys ~entries ~entry_size () in
    let base =
      Apps.Kv_app.install rig
        ~backend:(Apps.Backend.cornflakes ~config:Cornflakes.Config.all_copy ())
        ~workload
    in
    let measure config =
      let app =
        Apps.Kv_app.switch_backend base (Apps.Backend.cornflakes ~config ())
      in
      let d =
        {
          Util.send = (fun ep ~dst ~id -> Apps.Kv_app.send_next app ep ~dst ~id);
          parse_id = Some (fun buf -> Apps.Kv_app.parse_id app buf);
        }
      in
      (Util.capacity rig d).Loadgen.Driver.achieved_rps
    in
    let sg = measure Cornflakes.Config.all_zero_copy in
    let copy = measure Cornflakes.Config.all_copy in
    Some (100.0 *. (sg -. copy) /. copy)
  end

let run () =
  let t =
    Stats.Table.create
      ~title:
        "Figure 5: % max-throughput difference, scatter-gather vs copy \
         (positive = SG wins)"
      ~columns:
        ("entries \\ total B"
        :: List.map string_of_int totals)
  in
  let cells =
    (* Every (entries, total) cell is an isolated job; the flattened list
       keeps all workers busy even though rows vary in cost. *)
    Util.par_map
      (fun (entries, total) -> ((entries, total), run_cell ~total ~entries))
      (List.concat_map
         (fun entries -> List.map (fun total -> (entries, total)) totals)
         entry_counts)
  in
  let crossover = ref [] in
  List.iter
    (fun entries ->
      let row =
        List.map
          (fun total ->
            match List.assoc (entries, total) cells with
            | None -> "-"
            | Some delta ->
                if delta >= 0.0 && not (List.mem_assoc entries !crossover)
                then crossover := (entries, total) :: !crossover;
                Printf.sprintf "%+.1f%%" delta)
          totals
      in
      Stats.Table.add_row t (string_of_int entries :: row))
    entry_counts;
  Stats.Table.print t;
  print_endline "  crossover (first total size where SG wins, per entry count):";
  List.iter
    (fun (entries, total) ->
      Printf.printf "    %2d entries: total %5d B -> %4d B per field\n" entries
        total (total / entries))
    (List.rev !crossover);
  print_endline "  (paper: SG wins once individual fields reach ~512 B)"
