(* Ablations beyond the paper's tables, for the design knobs DESIGN.md
   calls out: the threshold sweep, and the SGE-limit demotion fallback on
   the 8-entry Intel NIC. *)

let thresholds = [ 0; 128; 256; 512; 1024; 4096; max_int ]

let threshold_label t = if t = max_int then "inf (all copy)" else string_of_int t

let run_threshold_sweep () =
  let workload = Workload.Twitter.make () in
  let backends =
    List.map
      (fun threshold ->
        {
          (Apps.Backend.cornflakes
             ~config:(Cornflakes.Config.with_threshold threshold)
             ())
          with
          Apps.Backend.name = threshold_label threshold;
        })
      thresholds
  in
  let results = Kv_bench.capacities ~workload backends in
  let best =
    List.fold_left
      (fun acc (_, (r : Loadgen.Driver.result)) ->
        Float.max acc r.Loadgen.Driver.achieved_rps)
      0.0 results
  in
  let t =
    Stats.Table.create
      ~title:"Ablation: zero-copy threshold sweep on the Twitter trace"
      ~columns:[ "threshold B"; "krps"; "vs best" ]
  in
  List.iter
    (fun (name, (r : Loadgen.Driver.result)) ->
      Stats.Table.add_row t
        [
          name;
          Util.krps r.Loadgen.Driver.achieved_rps;
          Util.pct_delta best r.Loadgen.Driver.achieved_rps;
        ])
    results;
  Stats.Table.print t;
  print_endline
    "  (the empirical optimum should sit at or near the paper's 512 B)"

let run_sge_overflow () =
  (* 12 zero-copy-eligible fields per response: the e810 (8 SGEs) must
     demote four of them to copies; the CX-6 sends all twelve zero-copy. *)
  let workload = Workload.Ycsb.make ~n_keys:16384 ~entries:12 ~entry_size:600 () in
  let t =
    Stats.Table.create
      ~title:
        "Ablation: SGE-limit overflow — 12 x 600 B fields, hybrid Cornflakes"
      ~columns:[ "NIC"; "max SGE"; "krps"; "Gbps" ]
  in
  let rows =
    Util.par_map
      (fun nic_model ->
        let rig = Apps.Rig.create ~nic_model () in
        let app =
          Apps.Kv_app.install rig ~backend:(Apps.Backend.cornflakes ())
            ~workload
        in
        let r = Util.capacity rig (Kv_bench.driver app) in
        (nic_model, r))
      [ Nic.Model.mellanox_cx6; Nic.Model.intel_e810 ]
  in
  List.iter
    (fun ((nic_model : Nic.Model.t), (r : Loadgen.Driver.result)) ->
      Stats.Table.add_row t
        [
          nic_model.Nic.Model.name;
          string_of_int nic_model.Nic.Model.max_sge;
          Util.krps r.Loadgen.Driver.achieved_rps;
          Util.gbps r.Loadgen.Driver.achieved_gbps;
        ])
    rows;
  Stats.Table.print t;
  print_endline
    "  (demotion keeps the e810 correct at a modest throughput cost — the\n\
    \   double cache-miss case of paper section 3.2.1)"

let run_adaptive_threshold () =
  (* Section-7 extension: the dynamic threshold should converge to (and
     perform like) the statically calibrated 512 B on the same workload. *)
  let workload = Workload.Twitter.make () in
  let adaptive = Cornflakes.Adaptive.create ~initial:2048 () in
  let adaptive_backend =
    {
      (Apps.Backend.cornflakes ()) with
      Apps.Backend.name = "adaptive";
      wrap =
        (fun ?cpu tr view ->
          Cornflakes.Adaptive.make ?cpu adaptive (Net.Transport.endpoint tr)
            view);
    }
  in
  let results =
    Kv_bench.capacities ~workload
      [ Apps.Backend.cornflakes (); adaptive_backend ]
  in
  let t =
    Stats.Table.create
      ~title:"Ablation: adaptive threshold (section-7 extension) on Twitter"
      ~columns:[ "config"; "krps"; "threshold B" ]
  in
  List.iter
    (fun (name, (r : Loadgen.Driver.result)) ->
      Stats.Table.add_row t
        [
          name;
          Util.krps r.Loadgen.Driver.achieved_rps;
          (if name = "adaptive" then
             string_of_int (Cornflakes.Adaptive.threshold adaptive)
           else "512 (static)");
        ])
    results;
  Stats.Table.print t;
  Printf.printf
    "  (started at 2048 B; converged to %d B after %d constructions)\n"
    (Cornflakes.Adaptive.threshold adaptive)
    (Cornflakes.Adaptive.observations adaptive)

let run () =
  run_threshold_sweep ();
  run_sge_overflow ();
  run_adaptive_threshold ()
