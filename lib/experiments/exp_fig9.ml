(* Figure 9: echo latency over the Demikernel-style TCP stack — raw packet
   echo vs the four serialization backends. Box statistics
   (p5/p25/p50/p75/p99) at a moderate fixed load, as the paper reports
   latency rather than peak throughput for TCP.

   Everything rides the shared Transport path: the rig is created with
   [~transport:`Tcp], so the same Echo_app handlers and Loadgen drivers
   that produce the UDP figures run here unchanged — serialize-and-send,
   the [_zc] fast paths and doorbell batching all apply to TCP frames, and
   the 3-way handshakes fall inside the warmup window. *)

let sizes = [ 2048; 2048 ]

let modes =
  Apps.Echo_app.No_serialization
  :: List.map (fun b -> Apps.Echo_app.Lib b) Apps.Backend.all

let make_driver app =
  {
    Util.send =
      (fun client ~dst ~id ->
        Apps.Echo_app.send_request app ~sizes client ~dst ~id);
    parse_id = Apps.Echo_app.parse_id app;
  }

(* Each run gets its own rig (own engine/space), matching the
   capacity-then-rated-point protocol of the UDP curves: estimate
   saturation closed-loop, then measure latency open-loop at 85% of it. *)
let run_mode mode =
  let capacity =
    let rig = Apps.Rig.create ~n_clients:4 ~transport:`Tcp () in
    let d = make_driver (Apps.Echo_app.install rig mode) in
    (Util.capacity rig d).Loadgen.Driver.achieved_rps
  in
  let rate = 0.85 *. capacity in
  let rig = Apps.Rig.create ~n_clients:4 ~transport:`Tcp () in
  let d = make_driver (Apps.Echo_app.install rig mode) in
  let b = Util.budget () in
  let r =
    Loadgen.Driver.open_loop rig.Apps.Rig.engine ~clients:rig.Apps.Rig.clients
      ~server:Apps.Rig.server_id ~rate_rps:rate ~duration_ns:b.Util.point_ns
      ~warmup_ns:b.Util.warmup_ns ~rng:rig.Apps.Rig.rng ~send:d.Util.send
      ~parse_id:d.Util.parse_id
  in
  (Apps.Echo_app.mode_name mode, rate, r.Loadgen.Driver.hist)

let run () =
  let t =
    Stats.Table.create
      ~title:
        "Figure 9: echo latency over the TCP stack (2 x 2048 B), 85% of \
         each mode's capacity"
      ~columns:
        [ "system"; "offered krps"; "p5 us"; "p25 us"; "p50 us"; "p75 us"; "p99 us" ]
  in
  let rows =
    (* One job per mode: the capacity estimate and the rated latency run
       share nothing with the other modes. *)
    Util.par_map run_mode modes
  in
  List.iter
    (fun (name, rate, hist) ->
      let q p =
        Printf.sprintf "%.1f"
          (float_of_int (Stats.Histogram.percentile hist p) /. 1e3)
      in
      Stats.Table.add_row t
        [
          name;
          Printf.sprintf "%.0f" (rate /. 1e3);
          q 0.05; q 0.25; q 0.50; q 0.75; q 0.99;
        ])
    rows;
  Stats.Table.print t;
  print_endline
    "  (paper: Cornflakes sits 4.9-10.8 us above raw echo and 18-27.8 us \
     below FlatBuffers at the tail)"
