(* Figure 9: echo latency over the Demikernel-style TCP stack — raw packet
   echo vs Cornflakes vs FlatBuffers. Box statistics (p5/p25/p50/p75/p99)
   at a moderate fixed load, as the paper reports latency rather than peak
   throughput for TCP. *)

type mode = Raw | Cf | Flat

let mode_name = function
  | Raw -> "raw packet echo"
  | Cf -> "cornflakes"
  | Flat -> "flatbuffers"

let sizes = [ 2048; 2048 ]

(* Serialize a message into TCP sources, Cornflakes-style: object header and
   copied fields in one pinned buffer (zero-copy to the wire), zero-copy
   payloads as their own slices. *)
let cf_sources ?cpu pool msg =
  let plan = Cornflakes.Format_.measure msg in
  let contiguous =
    plan.Cornflakes.Format_.header_len + plan.Cornflakes.Format_.stream_len
  in
  let hdr = Mem.Pinned.Buf.alloc ?cpu pool ~len:contiguous in
  let w = Wire.Cursor.Writer.create ?cpu (Mem.Pinned.Buf.view hdr) in
  Cornflakes.Format_.write ?cpu plan w msg;
  Tcp.Zc hdr
  :: List.map (fun b -> Tcp.Zc b) (Cornflakes.Format_.zc_bufs plan)

(* A minimal single-core TCP request server: FIFO queue, service time from
   the cost meter, responses held until the service time elapses. *)
type tcp_server = {
  rig_cpu : Memmodel.Cpu.t;
  ep : Net.Endpoint.t;
  engine : Sim.Engine.t;
  queue : (Tcp.Conn.t * Mem.Pinned.Buf.t) Queue.t;
  mutable busy : bool;
  handle : cpu:Memmodel.Cpu.t -> Tcp.Conn.t -> Mem.Pinned.Buf.t -> unit;
}

let rec service srv =
  match Queue.take_opt srv.queue with
  | None -> srv.busy <- false
  | Some (conn, buf) ->
      srv.busy <- true;
      let c0 = Memmodel.Cpu.cycles srv.rig_cpu in
      Net.Endpoint.charge_rx ~cpu:srv.rig_cpu srv.ep ~len:(Mem.Pinned.Buf.len buf);
      Net.Endpoint.begin_hold srv.ep;
      srv.handle ~cpu:srv.rig_cpu conn buf;
      Mem.Arena.reset (Net.Endpoint.arena srv.ep);
      let dt =
        int_of_float
          (ceil
             (Memmodel.Params.cycles_to_ns
                (Memmodel.Cpu.params srv.rig_cpu)
                (Memmodel.Cpu.cycles srv.rig_cpu -. c0)))
      in
      Net.Endpoint.release_hold srv.ep ~after:dt;
      Sim.Engine.schedule srv.engine ~after:dt (fun () -> service srv)

let enqueue srv conn buf =
  Queue.add (conn, buf) srv.queue;
  if not srv.busy then service srv

let run_mode ?rate_rps mode =
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let cpu = Memmodel.Cpu.create Memmodel.Params.default in
  let server_ep = Net.Endpoint.create ~cpu fabric registry ~id:1 in
  let server_stack = Tcp.Stack.attach server_ep in
  let obj_pool =
    Mem.Pinned.Pool.create space ~name:"tcp-obj"
      ~classes:[ (256, 1024); (1024, 1024); (4096, 1024); (16384, 256) ]
  in
  Mem.Registry.register registry obj_pool;
  let handle ~cpu conn buf =
    match mode with
    | Raw ->
        (* L3 forward: retransmit the record as-is. *)
        Tcp.Conn.send_message ~cpu conn [ Tcp.Zc buf ]
    | Cf ->
        let req =
          Cornflakes.Send.deserialize ~cpu Apps.Proto.schema Apps.Proto.resp buf
        in
        let resp = Wire.Dyn.create Apps.Proto.resp in
        (match Wire.Dyn.get_int req "id" with
        | Some id -> Wire.Dyn.set_int resp "id" id
        | None -> ());
        List.iter
          (fun v ->
            match v with
            | Wire.Dyn.Payload p ->
                let payload =
                  Cornflakes.Cf_ptr.make ~cpu Cornflakes.Config.default
                    server_ep (Wire.Payload.view p)
                in
                Wire.Dyn.append resp "vals" (Wire.Dyn.Payload payload)
            | _ -> ())
          (Wire.Dyn.get_list req "vals");
        Tcp.Conn.send_message ~cpu conn (cf_sources ~cpu obj_pool resp);
        Wire.Dyn.release ~cpu req;
        Mem.Pinned.Buf.decr_ref ~cpu buf
    | Flat ->
        let req = Baselines.Flatbuf.deserialize ~cpu Apps.Proto.schema Apps.Proto.resp buf in
        let resp = Wire.Dyn.create Apps.Proto.resp in
        (match Wire.Dyn.get_int req "id" with
        | Some id -> Wire.Dyn.set_int resp "id" id
        | None -> ());
        List.iter
          (fun v ->
            match v with
            | Wire.Dyn.Payload p ->
                Wire.Dyn.append resp "vals"
                  (Wire.Dyn.Payload (Wire.Payload.Literal (Wire.Payload.view p)))
            | _ -> ())
          (Wire.Dyn.get_list req "vals");
        let built = Baselines.Flatbuf.build ~cpu server_ep resp in
        Tcp.Conn.send_message ~cpu conn [ Tcp.Copy built ];
        Wire.Dyn.release ~cpu req;
        Mem.Pinned.Buf.decr_ref ~cpu buf
  in
  let srv =
    {
      rig_cpu = cpu;
      ep = server_ep;
      engine;
      queue = Queue.create ();
      busy = false;
      handle;
    }
  in
  Tcp.Stack.set_on_message server_stack (fun conn buf -> enqueue srv conn buf);
  (* Clients: closed-loop when no rate is given (capacity estimation),
     open-loop Poisson at [rate_rps] otherwise. *)
  let hist = Stats.Histogram.create () in
  let n_clients = 4 in
  let b = Util.budget () in
  let duration = b.Util.point_ns and warmup = b.Util.warmup_ns in
  let completed = ref 0 in
  let make_request client_space msg_id =
    let msg = Wire.Dyn.create Apps.Proto.resp in
    Wire.Dyn.set_int msg "id" (Int64.of_int msg_id);
    List.iter
      (fun n ->
        Wire.Dyn.append msg "vals"
          (Wire.Dyn.Payload
             (Wire.Payload.of_string client_space (Workload.Spec.filler n))))
      sizes;
    msg
  in
  List.iteri
    (fun i () ->
      let client_ep = Net.Endpoint.create fabric registry ~id:(100 + i) in
      let client_stack = Tcp.Stack.attach client_ep in
      let conn = Tcp.Stack.connect client_stack ~peer:1 in
      let outstanding = Queue.create () in
      let rng = Sim.Rng.create ~seed:(900 + i) in
      let msg_seq = ref 0 in
      let issue () =
        incr msg_seq;
        let msg = make_request space !msg_seq in
        Queue.add (Sim.Engine.now engine) outstanding;
        match mode with
        | Raw ->
            (* Pre-serialized cornflakes bytes, forwarded raw. *)
            let plan = Cornflakes.Format_.measure msg in
            let contiguous =
              plan.Cornflakes.Format_.header_len
              + plan.Cornflakes.Format_.stream_len
            in
            let buf = Mem.Pinned.Buf.alloc obj_pool ~len:contiguous in
            let w = Wire.Cursor.Writer.create (Mem.Pinned.Buf.view buf) in
            Cornflakes.Format_.write plan w msg;
            Tcp.Conn.send_message conn
              (Tcp.Zc buf
              :: List.map
                   (fun b -> Tcp.Zc b)
                   (Cornflakes.Format_.zc_bufs plan))
        | Cf -> Tcp.Conn.send_message conn (cf_sources obj_pool msg)
        | Flat ->
            let built = Baselines.Flatbuf.build client_ep msg in
            Tcp.Conn.send_message conn [ Tcp.Copy built ];
            Mem.Arena.reset (Net.Endpoint.arena client_ep)
      in
      Tcp.Stack.set_on_message client_stack (fun _conn buf ->
          (match Queue.take_opt outstanding with
          | Some t_send ->
              let now = Sim.Engine.now engine in
              if t_send >= warmup && now <= duration then begin
                incr completed;
                Stats.Histogram.record hist (now - t_send)
              end
          | None -> ());
          Mem.Pinned.Buf.decr_ref buf;
          (* Closed loop (capacity estimation): refill immediately. *)
          if rate_rps = None && Sim.Engine.now engine < duration then issue ());
      match rate_rps with
      | None ->
          for k = 1 to 2 do
            Sim.Engine.schedule engine ~after:(1000 + (i * 777) + (k * 311))
              issue
          done
      | Some rate ->
          let mean_gap = float_of_int n_clients /. rate *. 1e9 in
          let rec arrival () =
            if Sim.Engine.now engine < duration then begin
              issue ();
              Sim.Engine.schedule engine
                ~after:
                  (max 1 (int_of_float (Sim.Dist.exponential rng ~mean:mean_gap)))
                arrival
            end
          in
          Sim.Engine.schedule engine ~after:(1000 + (i * 777)) arrival)
    (List.init n_clients (fun _ -> ()));
  Sim.Engine.run_all engine;
  let window_s = float_of_int (duration - warmup) /. 1e9 in
  (mode_name mode, hist, float_of_int !completed /. window_s)

let run () =
  let t =
    Stats.Table.create
      ~title:
        "Figure 9: echo latency over the TCP stack (2 x 2048 B), 85% of \
         each mode's capacity"
      ~columns:
        [ "system"; "offered krps"; "p5 us"; "p25 us"; "p50 us"; "p75 us"; "p99 us" ]
  in
  let rows =
    (* One job per mode: the capacity estimate and the rated latency run
       share nothing with the other modes. *)
    Util.par_map
      (fun mode ->
        let _, _, capacity = run_mode mode in
        let rate = 0.85 *. capacity in
        let name, hist, _ = run_mode ~rate_rps:rate mode in
        (name, rate, hist))
      [ Raw; Cf; Flat ]
  in
  List.iter
    (fun (name, rate, hist) ->
      let q p =
        Printf.sprintf "%.1f"
          (float_of_int (Stats.Histogram.percentile hist p) /. 1e3)
      in
      Stats.Table.add_row t
        [
          name;
          Printf.sprintf "%.0f" (rate /. 1e3);
          q 0.05; q 0.25; q 0.50; q 0.75; q 0.99;
        ])
    rows;
  Stats.Table.print t;
  print_endline
    "  (paper: Cornflakes sits 4.9-10.8 us above raw echo and 18-27.8 us \
     below FlatBuffers at the tail)"
