(* Figure 11: where CPU cycles go per request on the CDN trace, for
   Cornflakes, FlatBuffers and Protobuf. Cornflakes always uses zero-copy
   here (minimum object 1 KB), so its copy share collapses and
   deserialization is cheaper (deferred string validation). *)

let backends () =
  [ Apps.Backend.cornflakes (); Apps.Backend.flatbuffers; Apps.Backend.protobuf ]

let categories = Memmodel.Cpu.all_categories

let run_backend backend =
  let rig = Apps.Rig.create () in
  let workload = Workload.Cdn.make () in
  let app = Apps.Kv_app.install rig ~backend ~workload in
  let d = Kv_bench.driver app in
  (* Warm up, then measure a fixed moderate load with a clean breakdown. *)
  let b = Util.budget () in
  let cap = Util.capacity rig d in
  Memmodel.Cpu.reset_breakdown rig.Apps.Rig.cpu;
  let served_before = Loadgen.Server.served rig.Apps.Rig.server in
  let (_ : Loadgen.Driver.result) =
    Loadgen.Driver.open_loop rig.Apps.Rig.engine ~clients:rig.Apps.Rig.clients
      ~server:Apps.Rig.server_id
      ~rate_rps:(0.6 *. cap.Loadgen.Driver.achieved_rps)
      ~duration_ns:b.Util.point_ns ~warmup_ns:0 ~rng:rig.Apps.Rig.rng
      ~send:d.Util.send ~parse_id:d.Util.parse_id
  in
  let served =
    max 1 (Loadgen.Server.served rig.Apps.Rig.server - served_before)
  in
  let params = Memmodel.Cpu.params rig.Apps.Rig.cpu in
  List.map
    (fun (cat, cycles) ->
      ( cat,
        Memmodel.Params.cycles_to_ns params cycles /. float_of_int served ))
    (Memmodel.Cpu.breakdown rig.Apps.Rig.cpu)

let run () =
  let results =
    Util.par_map (fun b -> (b.Apps.Backend.name, run_backend b)) (backends ())
  in
  let t =
    Stats.Table.create
      ~title:"Figure 11: CPU time per request on the CDN trace (ns/request)"
      ~columns:
        ("system"
        :: List.map Memmodel.Cpu.category_label categories
        @ [ "total" ])
  in
  List.iter
    (fun (name, breakdown) ->
      let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 breakdown in
      Stats.Table.add_row t
        (name
        :: List.map
             (fun cat ->
               Printf.sprintf "%.0f" (List.assoc cat breakdown))
             categories
        @ [ Printf.sprintf "%.0f" total ]))
    results;
  Stats.Table.print t;
  print_endline
    "  (paper: Cornflakes spends almost nothing on copies and less on\n\
    \   deserialization — string validation is deferred until field access)"
