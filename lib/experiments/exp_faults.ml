(* Faultline degradation curve ("bench faults"): the kv store over the
   Twitter workload (§6.1.2 — the put-bearing trace) driven closed-loop
   under increasing fault pressure, with the full resilience stack on:
   client retry/backoff (Net.Reliab), server duplicate suppression
   (Net.Dedup via Kv_app resilience mode), the Reliab-owned TX-ring reaper
   recovering lost completions, and zero-copy demotion under ring
   pressure. One fresh rig per loss point; every stochastic choice derives
   from the bench seed, so the same seed replays byte-identically. *)

type point = {
  loss : float;
  achieved_rps : float;
  goodput_gbps : float;
  p50_ns : int;
  p99_ns : int;
  sent : int;
  completed : int;
  retransmits : int;
  abandoned : int;
  (* fabric *)
  fab_dropped : int;
  drops_to_server : int;
  corrupted : int;
  duplicated : int;
  server_rx_dropped : int;
  (* NIC completions (server device) *)
  cqe_lost : int;
  cqe_delayed : int;
  cqe_reaped : int;
  (* retry layer *)
  tracked : int;
  acked : int;
  timeouts : int;
  give_ups : int;
  (* server dedup *)
  dup_requests : int;
  puts_suppressed : int;
  (* degradation machinery *)
  pressure_demotions : int;
  oom_fallbacks : int;
  (* exactly-once witness: every put id applied exactly once, every
     tracked request either acked or (counted) given up *)
  exactly_once : bool;
}

(* Retry policy for the degradation runs: base RTO well above the healthy
   RTT (~20 us) but short enough that a quick-budget window still fits
   several attempts. *)
let reliab_config =
  {
    Net.Reliab.timeout_ns = 150_000;
    max_retries = 6;
    backoff = 1.6;
    jitter = 0.1;
    reap_period_ns = 400_000;
  }

(* Fault mix scaled by the headline loss rate: drops dominate; corruption,
   duplication and delay ride at a fifth of it; completion loss (the
   nastiest — it pins references) at a tenth, scoped to the server NIC. *)
let plan_for ~seed ~loss =
  let open Faults.Plan in
  let rules =
    if loss <= 0.0 then []
    else
      [
        { fault = Drop; schedule = Probability loss; scope = Anywhere };
        { fault = Corrupt; schedule = Probability (loss /. 5.); scope = Anywhere };
        {
          fault = Duplicate;
          schedule = Probability (loss /. 5.);
          scope = Anywhere;
        };
        {
          fault = Delay { extra_ns = 3_000 };
          schedule = Probability (loss /. 5.);
          scope = Anywhere;
        };
        { fault = Reorder; schedule = Probability (loss /. 10.); scope = Anywhere };
        {
          fault = Completion_loss;
          schedule = Probability (loss /. 10.);
          scope = Endpoint Apps.Rig.server_id;
        };
        {
          fault = Completion_delay { extra_ns = 20_000 };
          schedule = Probability (loss /. 5.);
          scope = Endpoint Apps.Rig.server_id;
        };
      ]
  in
  make ~seed rules

let run_point ~idx ~loss =
  let b = Util.budget () in
  (* Send/Cf_ptr counters are process-wide; snapshot for deltas. *)
  let demote0 = Cornflakes.Send.pressure_demotions () in
  let oom0 = Cornflakes.Cf_ptr.oom_fallbacks () in
  let rig = Apps.Rig.create () in
  let workload = Workload.Twitter.make () in
  let app =
    Apps.Kv_app.install rig ~backend:(Apps.Backend.cornflakes ()) ~workload
  in
  let dedup = Net.Dedup.create () in
  Apps.Kv_app.enable_resilience app ~dedup;
  let plan = plan_for ~seed:(Apps.Rig.default_seed () + idx) ~loss in
  let inj = Faults.Injector.create plan in
  if plan.Faults.Plan.rules <> [] then Apps.Rig.inject_faults rig inj;
  let reliab =
    Net.Reliab.create ~config:reliab_config rig.Apps.Rig.engine
      ~rng:(Sim.Rng.split rig.Apps.Rig.rng)
  in
  Net.Reliab.set_reaper reliab (fun () -> ignore (Apps.Rig.reap_lost rig));
  let d = Kv_bench.driver app in
  let r =
    Loadgen.Driver.closed_loop ~reliab rig.Apps.Rig.engine
      ~clients:rig.Apps.Rig.clients ~server:Apps.Rig.server_id ~outstanding:4
      ~duration_ns:b.Util.fault_point_ns ~warmup_ns:b.Util.warmup_ns
      ~rng:rig.Apps.Rig.rng ~send:d.Util.send ~parse_id:d.Util.parse_id
  in
  (* Driver shutdown: reap any still-lost completions so their pinned
     references release, then drain what that unblocks. *)
  ignore (Apps.Rig.reap_lost rig);
  Sim.Engine.run_all rig.Apps.Rig.engine;
  let fab = rig.Apps.Rig.fabric in
  let server_nic = Net.Endpoint.nic rig.Apps.Rig.server_ep in
  let exactly_once =
    List.for_all (fun (_, n) -> n = 1) (Apps.Kv_app.put_apply_counts app)
    && Net.Reliab.outstanding reliab = 0
    && Net.Reliab.acked reliab + Net.Reliab.give_ups reliab
       = Net.Reliab.tracked reliab
  in
  let point =
    {
      loss;
      achieved_rps = r.Loadgen.Driver.achieved_rps;
      goodput_gbps = r.Loadgen.Driver.achieved_gbps;
      p50_ns = Loadgen.Driver.p50_ns r;
      p99_ns = Loadgen.Driver.p99_ns r;
      sent = r.Loadgen.Driver.sent;
      completed = r.Loadgen.Driver.completed;
      retransmits = r.Loadgen.Driver.retransmits;
      abandoned = r.Loadgen.Driver.abandoned;
      fab_dropped = Net.Fabric.dropped fab;
      drops_to_server = Net.Fabric.dropped_to fab ~dst:Apps.Rig.server_id;
      corrupted = Net.Fabric.corrupted fab;
      duplicated = Net.Fabric.duplicated fab;
      server_rx_dropped = Net.Endpoint.rx_dropped rig.Apps.Rig.server_ep;
      cqe_lost = Nic.Device.lost_completions server_nic;
      cqe_delayed = Nic.Device.delayed_completions server_nic;
      cqe_reaped = Nic.Device.reaped_completions server_nic;
      tracked = Net.Reliab.tracked reliab;
      acked = Net.Reliab.acked reliab;
      timeouts = Net.Reliab.timeouts reliab;
      give_ups = Net.Reliab.give_ups reliab;
      dup_requests = Net.Dedup.duplicates dedup;
      puts_suppressed = Apps.Kv_app.puts_suppressed app;
      pressure_demotions = Cornflakes.Send.pressure_demotions () - demote0;
      oom_fallbacks = Cornflakes.Cf_ptr.oom_fallbacks () - oom0;
      exactly_once;
    }
  in
  if Sanitizer.Refsan.is_enabled () then begin
    Sim.Engine.quiesce rig.Apps.Rig.engine;
    Sanitizer.Refsan.checkpoint ()
  end;
  point

let pct loss = Printf.sprintf "%.2f%%" (100.0 *. loss)

let print_points points =
  let t =
    Stats.Table.create ~title:"Faultline degradation curve (Twitter, closed loop)"
      ~columns:
        [
          "loss";
          "achieved krps";
          "goodput Gbps";
          "p50 us";
          "p99 us";
          "sent";
          "completed";
          "retrans";
          "abandoned";
        ]
  in
  List.iter
    (fun p ->
      Stats.Table.add_row t
        [
          pct p.loss;
          Util.krps p.achieved_rps;
          Util.gbps p.goodput_gbps;
          Printf.sprintf "%.1f" (float_of_int p.p50_ns /. 1e3);
          Printf.sprintf "%.1f" (float_of_int p.p99_ns /. 1e3);
          string_of_int p.sent;
          string_of_int p.completed;
          string_of_int p.retransmits;
          string_of_int p.abandoned;
        ])
    points;
  Stats.Table.print t;
  let c =
    Stats.Table.create ~title:"Resilience counters"
      ~columns:
        [
          "loss";
          "fab drops";
          "to-server";
          "corrupt";
          "dup'd";
          "rx-drop";
          "cqe lost";
          "cqe reaped";
          "timeouts";
          "give-ups";
          "dup reqs";
          "puts supp";
          "zc demote";
          "exactly-once";
        ]
  in
  List.iter
    (fun p ->
      Stats.Table.add_row c
        [
          pct p.loss;
          string_of_int p.fab_dropped;
          string_of_int p.drops_to_server;
          string_of_int p.corrupted;
          string_of_int p.duplicated;
          string_of_int p.server_rx_dropped;
          string_of_int p.cqe_lost;
          string_of_int p.cqe_reaped;
          string_of_int p.timeouts;
          string_of_int p.give_ups;
          string_of_int p.dup_requests;
          string_of_int p.puts_suppressed;
          string_of_int p.pressure_demotions;
          (if p.exactly_once then "yes" else "NO");
        ])
    points;
  Stats.Table.print c

let monotone points =
  let rec go = function
    | a :: (b :: _ as rest) -> a.achieved_rps >= b.achieved_rps && go rest
    | _ -> true
  in
  go points

let json_file = "BENCH_faults.json"

(* Deterministic artifact for the CI byte-identity gate: simulated metrics
   only, no wall-clock anywhere. *)
let write_json ~seed points =
  let oc = open_out json_file in
  Printf.fprintf oc "{\n  \"schema\": \"cornflakes-bench-faults/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"monotone\": %b,\n" (monotone points);
  Printf.fprintf oc "  \"points\": [\n";
  let n = List.length points in
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"loss\": %.4f, \"achieved_rps\": %.1f, \"goodput_gbps\": \
         %.4f, \"p50_ns\": %d, \"p99_ns\": %d, \"sent\": %d, \"completed\": \
         %d, \"retransmits\": %d, \"abandoned\": %d, \"fabric_dropped\": %d, \
         \"drops_to_server\": %d, \"corrupted\": %d, \"duplicated\": %d, \
         \"rx_dropped\": %d, \"cqe_lost\": %d, \"cqe_delayed\": %d, \
         \"cqe_reaped\": %d, \"tracked\": %d, \"acked\": %d, \"timeouts\": \
         %d, \"give_ups\": %d, \"dup_requests\": %d, \"puts_suppressed\": \
         %d, \"pressure_demotions\": %d, \"oom_fallbacks\": %d, \
         \"exactly_once\": %b}%s\n"
        p.loss p.achieved_rps p.goodput_gbps p.p50_ns p.p99_ns p.sent
        p.completed p.retransmits p.abandoned p.fab_dropped p.drops_to_server
        p.corrupted p.duplicated p.server_rx_dropped p.cqe_lost p.cqe_delayed
        p.cqe_reaped p.tracked p.acked p.timeouts p.give_ups p.dup_requests
        p.puts_suppressed p.pressure_demotions p.oom_fallbacks p.exactly_once
        (if i = n - 1 then "" else ","))
    points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" json_file

let run () =
  let b = Util.budget () in
  let points =
    Util.par_map
      (fun (idx, loss) -> run_point ~idx ~loss)
      (List.mapi (fun idx loss -> (idx, loss)) b.Util.fault_loss_rates)
  in
  print_points points;
  Printf.printf "goodput monotone non-increasing with loss: %s\n"
    (if monotone points then "OK" else "VIOLATED");
  Printf.printf "exactly-once under every plan: %s\n"
    (if List.for_all (fun p -> p.exactly_once) points then "OK" else "VIOLATED");
  write_json ~seed:(Apps.Rig.default_seed ()) points

(* --- CLI replay --------------------------------------------------------- *)

(* Short fixed scenario for `cornflakes faults --replay`: run the given
   plan against a rig seeded from the plan seed and summarise every
   counter. Fully deterministic — the CLI runs it twice and checks the
   summaries are identical. *)
let replay_summary ~plan =
  let buf = Buffer.create 512 in
  let rig = Apps.Rig.create ~seed:plan.Faults.Plan.seed () in
  let app =
    Apps.Kv_app.install rig ~backend:(Apps.Backend.cornflakes ())
      ~workload:(Workload.Twitter.make ())
  in
  let dedup = Net.Dedup.create () in
  Apps.Kv_app.enable_resilience app ~dedup;
  let inj = Faults.Injector.create plan in
  Apps.Rig.inject_faults rig inj;
  let reliab =
    Net.Reliab.create ~config:reliab_config rig.Apps.Rig.engine
      ~rng:(Sim.Rng.split rig.Apps.Rig.rng)
  in
  Net.Reliab.set_reaper reliab (fun () -> ignore (Apps.Rig.reap_lost rig));
  let d = Kv_bench.driver app in
  let r =
    Loadgen.Driver.closed_loop ~reliab rig.Apps.Rig.engine
      ~clients:rig.Apps.Rig.clients ~server:Apps.Rig.server_id ~outstanding:2
      ~duration_ns:1_500_000 ~warmup_ns:200_000 ~rng:rig.Apps.Rig.rng
      ~send:d.Util.send ~parse_id:d.Util.parse_id
  in
  ignore (Apps.Rig.reap_lost rig);
  Sim.Engine.run_all rig.Apps.Rig.engine;
  Buffer.add_string buf
    (Printf.sprintf "sent=%d completed=%d retransmits=%d abandoned=%d\n"
       r.Loadgen.Driver.sent r.Loadgen.Driver.completed
       r.Loadgen.Driver.retransmits r.Loadgen.Driver.abandoned);
  let fab = rig.Apps.Rig.fabric in
  Buffer.add_string buf
    (Printf.sprintf
       "fabric: dropped=%d corrupted=%d duplicated=%d delayed=%d reordered=%d\n"
       (Net.Fabric.dropped fab) (Net.Fabric.corrupted fab)
       (Net.Fabric.duplicated fab) (Net.Fabric.delayed fab)
       (Net.Fabric.reordered fab));
  let nic = Net.Endpoint.nic rig.Apps.Rig.server_ep in
  Buffer.add_string buf
    (Printf.sprintf "server nic: cqe lost=%d delayed=%d reaped=%d\n"
       (Nic.Device.lost_completions nic)
       (Nic.Device.delayed_completions nic)
       (Nic.Device.reaped_completions nic));
  Buffer.add_string buf
    (Printf.sprintf
       "reliab: tracked=%d acked=%d retries=%d timeouts=%d give_ups=%d\n"
       (Net.Reliab.tracked reliab) (Net.Reliab.acked reliab)
       (Net.Reliab.retries reliab) (Net.Reliab.timeouts reliab)
       (Net.Reliab.give_ups reliab));
  Buffer.add_string buf
    (Printf.sprintf "dedup: distinct=%d duplicates=%d puts_suppressed=%d\n"
       (Net.Dedup.distinct dedup) (Net.Dedup.duplicates dedup)
       (Apps.Kv_app.puts_suppressed app));
  List.iter
    (fun (rule, seen, fired) ->
      Buffer.add_string buf
        (Printf.sprintf "rule [%s]: seen=%d fired=%d\n" rule seen fired))
    (Faults.Injector.counters inj);
  Buffer.contents buf
