(* RPC codegen ablation: the hand-wired dispatch and call paths the
   generated service layer replaced, measured against the generated
   skeleton/stub over identical work. Two sections:

   - dispatch: one delivered GET request frame served repeatedly by (a) a
     hand-wired server loop — validate, id echo, if-chain on the op word,
     tail-send — and (b) the generated [Kv_service.serve] skeleton —
     validate once, id echo, branchless method-table dispatch, tail-send.
     Both run the same handler body over the same in-place reader.

   - call: a full client->server->client round trip per op through the
     loopback fabric, with (a) a hand-wired client — stamp id and op,
     folded-writer send, parse the response with a hand-held reader —
     and (b) the generated [call_get] stub + [deliver], which add the
     call-state bookkeeping (id allocation, pending-reply table).

   Both report simulated ns/op (the [Memmodel.Cpu] meter — deterministic)
   and real minor-heap words/op. The acceptance gate: the generated path
   must stay within 5% of hand-wired sim ns/op on both sections — the
   schema compiler exists to fold the hand-written protocol away, not to
   tax it. Results land in BENCH_rpc.json (no wall-clock), which CI
   regenerates and gates. *)

module S = Apps.Kv_rpc.Kv_service

type meas = { ns_per_op : float; words_per_op : float }

let iters = 2000

let keys =
  (* The GetM(4) request shape of exp_rx, so dispatch numbers compose
     with the RX-deserialize numbers measured there. *)
  List.init 4 (fun i -> Printf.sprintf "twitter:user:%013d:profile-%02d" i i)

(* One GET request frame produced by a real send through the loopback
   fabric: both dispatch arms serve exactly the wire bytes a server sees. *)
let make_frame () =
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let ep = Net.Endpoint.create fabric registry ~id:1 in
  let peer = Net.Endpoint.create fabric registry ~id:2 in
  let got = ref None in
  Net.Endpoint.set_rx peer (fun ~src:_ buf -> got := Some buf);
  let m = Wire.Dyn.create Apps.Proto.req in
  Wire.Dyn.set_int m "id" 1L;
  Wire.Dyn.set_int m "op" S.id_get;
  List.iter
    (fun k ->
      Wire.Dyn.append m "keys"
        (Wire.Dyn.Payload (Wire.Payload.of_string space k)))
    keys;
  Cornflakes.Send.send_object Cornflakes.Config.default ep ~dst:2 m;
  Sim.Engine.run_all engine;
  match !got with
  | Some b -> b
  | None -> failwith "exp_rpc: loopback send delivered no frame"

let measure cpu op =
  for _ = 1 to 100 do
    op ()
  done;
  let ns0 = Memmodel.Cpu.ns cpu in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    op ()
  done;
  {
    ns_per_op = (Memmodel.Cpu.ns cpu -. ns0) /. float_of_int iters;
    words_per_op = (Gc.minor_words () -. w0) /. float_of_int iters;
  }

(* The handler body both dispatch arms share: consume each key in place
   (the store-lookup read) — identical work, only the dispatch differs. *)
let consume_keys r sink =
  let n = Wire.Reader.count r Apps.Proto.req_keys in
  for j = 0 to n - 1 do
    sink := !sink + String.length (Wire.Reader.elem_string r Apps.Proto.req_keys ~j)
  done

(* --- dispatch ----------------------------------------------------------- *)

(* The pre-codegen server loop this PR deleted from the shard and kv
   servers: validate, clear + id-echo the pooled response, if-chain on
   the op word, tail-send. *)
let measure_hand_dispatch () =
  let frame = make_frame () in
  let cpu = Memmodel.Cpu.create Memmodel.Params.default in
  let reader = Wire.Reader.create Apps.Proto.req in
  let resp = Wire.Dyn.create Apps.Proto.resp in
  let sent = ref 0 and sink = ref 0 in
  let op () =
    Wire.Reader.validate ~cpu reader frame;
    Wire.Dyn.clear resp;
    if Wire.Reader.present reader Apps.Proto.req_id then
      Wire.Dyn.set_int resp "id" (Wire.Reader.get_u64 reader Apps.Proto.req_id);
    let w = Wire.Reader.get_u64_or reader Apps.Proto.req_op ~default:(-1L) in
    if w = S.id_get then consume_keys reader sink
    else if w = S.id_put then ()
    else if w = S.id_get_index then ();
    incr sent
  in
  let r = measure cpu op in
  Wire.Reader.clear reader;
  Mem.Pinned.Buf.decr_ref ~site:"exp_rpc.frame" frame;
  r

let measure_gen_dispatch () =
  let frame = make_frame () in
  let cpu = Memmodel.Cpu.create Memmodel.Params.default in
  let sent = ref 0 and sink = ref 0 in
  let srv = S.server ~send:(fun ~dst:_ _ -> incr sent) () in
  S.on_get srv ~reader:(fun ~src:_ r _resp -> consume_keys r sink);
  let op () = S.serve ~cpu srv ~src:1 frame in
  let r = measure cpu op in
  Mem.Pinned.Buf.decr_ref ~site:"exp_rpc.frame" frame;
  r

(* --- call --------------------------------------------------------------- *)

(* One loopback rig per arm: client endpoint 1, server endpoint 2, one
   shared meter so the measured ns cover both sides of the round trip.
   The server is the generated skeleton in both arms (the dispatch
   section isolates that difference); the arms differ in the client. *)
let make_call_rig () =
  let engine = Sim.Engine.create () in
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let cpu = Memmodel.Cpu.create Memmodel.Params.default in
  let cli = Net.Endpoint.create ~cpu fabric registry ~id:1 in
  let srv_ep = Net.Endpoint.create ~cpu fabric registry ~id:2 in
  let sink = ref 0 in
  let srv =
    S.server
      ~send:(fun ~dst resp ->
        Cornflakes.Send.send_object Cornflakes.Config.default srv_ep ~dst resp)
      ()
  in
  S.on_get srv ~reader:(fun ~src:_ r _resp -> consume_keys r sink);
  Net.Endpoint.set_rx srv_ep (fun ~src buf ->
      S.serve ~cpu srv ~src buf;
      Mem.Pinned.Buf.decr_ref ~cpu ~site:"exp_rpc.srv_done" buf);
  let req = Apps.Kv_rpc.Req.create () in
  List.iter
    (fun k ->
      Apps.Kv_rpc.Req.add_keys_payload req (Wire.Payload.of_string space k))
    keys;
  (engine, space, cpu, cli, srv_ep, req)

let drain engine cli srv_ep =
  Sim.Engine.run_all engine;
  (* NIC completions have fired: mass-reset both egress arenas, the
     steady-state discipline every server in the tree uses. *)
  Mem.Arena.reset (Net.Endpoint.arena cli);
  Mem.Arena.reset (Net.Endpoint.arena srv_ep)

(* The pre-codegen client: stamp id and op by hand, send through the
   folded writer, parse the reply with a hand-held reader. *)
let measure_hand_call () =
  let engine, _space, cpu, cli, srv_ep, req = make_call_rig () in
  let reader = Apps.Kv_rpc.Resp.reader () in
  let replies = ref 0 in
  Net.Endpoint.set_rx cli (fun ~src:_ buf ->
      Apps.Kv_rpc.Resp.read_folded ~cpu reader buf;
      ignore (Wire.Reader.get_u64_or reader S.resp_id ~default:0L);
      incr replies;
      Mem.Pinned.Buf.decr_ref ~cpu ~site:"exp_rpc.cli_done" buf);
  let next = ref 0 in
  let config = Cornflakes.Config.default in
  let tr = Net.Endpoint.transport cli in
  let op () =
    incr next;
    Apps.Kv_rpc.Req.set_id req (Int64.of_int !next);
    Apps.Kv_rpc.Req.set_op req S.id_get;
    Apps.Kv_rpc.Req.send ~cpu config tr ~dst:2 req;
    drain engine cli srv_ep
  in
  let r = measure cpu op in
  if !replies <> iters + 100 then failwith "exp_rpc: hand call lost replies";
  r

let measure_gen_call () =
  let engine, _space, cpu, cli, srv_ep, req = make_call_rig () in
  let c = S.client (Net.Endpoint.transport cli) in
  Net.Endpoint.set_rx cli (fun ~src:_ buf ->
      S.deliver ~cpu c buf;
      Mem.Pinned.Buf.decr_ref ~cpu ~site:"exp_rpc.cli_done" buf);
  let replies = ref 0 in
  let op () =
    ignore
      (S.call_get ~cpu c ~dst:2 req ~on_reply:(fun r ->
           ignore (Wire.Reader.get_u64_or r S.resp_id ~default:0L);
           incr replies));
    drain engine cli srv_ep
  in
  let r = measure cpu op in
  if !replies <> iters + 100 then failwith "exp_rpc: gen call lost replies";
  r

(* --- output ------------------------------------------------------------- *)

let delta_pct ~hand ~gen =
  if hand > 0.0 then 100.0 *. ((gen /. hand) -. 1.0) else 0.0

let json_file = "BENCH_rpc.json"

let write_json ~seed ~d_hand ~d_gen ~c_hand ~c_gen ~ok =
  let section oc name hand gen =
    Printf.fprintf oc "  \"%s\": {\n" name;
    Printf.fprintf oc
      "    \"hand_ns_per_op\": %.1f, \"gen_ns_per_op\": %.1f, \
       \"ns_delta_pct\": %.2f,\n"
      hand.ns_per_op gen.ns_per_op
      (delta_pct ~hand:hand.ns_per_op ~gen:gen.ns_per_op);
    Printf.fprintf oc
      "    \"hand_minor_words_per_op\": %.1f, \"gen_minor_words_per_op\": \
       %.1f\n"
      hand.words_per_op gen.words_per_op;
    Printf.fprintf oc "  }"
  in
  let oc = open_out json_file in
  Printf.fprintf oc "{\n  \"schema\": \"cornflakes-bench-rpc/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"generated_within_5pct\": %b,\n" ok;
  section oc "dispatch" d_hand d_gen;
  Printf.fprintf oc ",\n";
  section oc "call" c_hand c_gen;
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" json_file

let run () =
  let d_hand = measure_hand_dispatch () in
  let d_gen = measure_gen_dispatch () in
  let c_hand = measure_hand_call () in
  let c_gen = measure_gen_call () in
  let t =
    Stats.Table.create
      ~title:
        "RPC codegen ablation: hand-wired vs generated, sim ns/op + minor \
         words/op"
      ~columns:
        [ "section"; "path"; "sim ns/op"; "minor words/op"; "ns delta" ]
  in
  let add section name hand m =
    Stats.Table.add_row t
      [
        section;
        name;
        Printf.sprintf "%.1f" m.ns_per_op;
        Printf.sprintf "%.1f" m.words_per_op;
        (match hand with
        | None -> "-"
        | Some h ->
            Printf.sprintf "%+.2f%%" (delta_pct ~hand:h.ns_per_op ~gen:m.ns_per_op));
      ]
  in
  add "dispatch" "hand-wired if-chain" None d_hand;
  add "dispatch" "generated serve" (Some d_hand) d_gen;
  add "call" "hand-wired client" None c_hand;
  add "call" "generated call_get" (Some c_hand) c_gen;
  Stats.Table.print t;
  let ok =
    d_gen.ns_per_op <= d_hand.ns_per_op *. 1.05
    && c_gen.ns_per_op <= c_hand.ns_per_op *. 1.05
  in
  Printf.printf "rpc codegen gate (generated within 5%% sim ns/op): %s\n"
    (if ok then "OK" else "VIOLATED");
  write_json ~seed:(Apps.Rig.default_seed ()) ~d_hand ~d_gen ~c_hand ~c_gen ~ok
