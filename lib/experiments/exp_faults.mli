(** Faultline degradation curve: kv goodput and tail latency vs injected
    fault rate, with the resilience stack (retry/backoff, dedup, TX-ring
    reaper, zero-copy demotion) enabled. Writes [BENCH_faults.json] — a
    fully deterministic artifact used by CI's byte-identity gate. *)

val run : unit -> unit

(** [replay_summary ~plan] runs a short fixed scenario under [plan] (rig
    seeded from the plan seed) and returns a one-per-line counter summary;
    byte-identical across replays of the same plan. *)
val replay_summary : plan:Faults.Plan.t -> string
