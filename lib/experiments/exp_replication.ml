(* Replication-factor study (the §4 nested-object application as a
   benchmark): throughput of the replicated store on the Twitter trace as
   the number of backups grows. Every put costs the primary one fan-out
   send per backup — zero-copy out of its own store — plus ack processing;
   gets are unaffected, so the slowdown is bounded by the put fraction. *)

let run () =
  let t =
    Stats.Table.create
      ~title:
        "Replication: Twitter trace (8% puts), primary throughput by backup \
         count"
      ~columns:[ "backups"; "krps"; "vs unreplicated"; "committed puts" ]
  in
  let rows =
    Util.par_map
      (fun backups ->
        let rig = Apps.Rig.create () in
        let workload = Workload.Twitter.make ~n_keys:32768 () in
        let cluster = Replication.Replicated_kv.create rig ~backups ~workload in
        let d =
          {
            Util.send =
              (fun ep ~dst ~id ->
                Replication.Replicated_kv.send_next cluster ep ~dst ~id);
            parse_id =
              Some (fun buf -> Replication.Replicated_kv.parse_id cluster buf);
          }
        in
        let r = Util.capacity rig d in
        ( backups,
          r.Loadgen.Driver.achieved_rps,
          Replication.Replicated_kv.committed cluster ))
      [ 0; 1; 2; 3 ]
  in
  (* The "vs unreplicated" column needs the backups=0 row, so the baseline
     is picked out after the (order-preserving) merge. *)
  let base =
    match rows with (0, rps, _) :: _ -> rps | _ -> 0.0
  in
  List.iter
    (fun (backups, rps, committed) ->
      Stats.Table.add_row t
        [
          string_of_int backups;
          Util.krps rps;
          Util.pct_delta base rps;
          string_of_int committed;
        ])
    rows;
  Stats.Table.print t;
  print_endline
    "  (puts replicate as nested Cornflakes objects, values zero-copy out of\n\
    \   the primary's store; paper section 4 validates nested-object support\n\
    \   with exactly this application)"
