(** Shared measurement machinery for the paper-reproduction experiments. *)

(** Run lengths. [quick] shrinks everything for smoke runs. *)
type budget = {
  cap_ns : int; (* closed-loop capacity run *)
  point_ns : int; (* one open-loop load point *)
  warmup_ns : int;
  curve_fractions : float list; (* offered load as fraction of capacity *)
  fault_point_ns : int; (* one faulted closed-loop point (bench faults) *)
  fault_loss_rates : float list; (* degradation-curve loss rates *)
}

val default_budget : budget

val quick_budget : budget

(** Selected by [set_quick]; consulted by every experiment. *)
val budget : unit -> budget

val set_quick : bool -> unit

(** Whether the quick budget is active — for experiments that also scale
    non-time knobs (connection-table width, shard counts) down in CI. *)
val is_quick : unit -> bool

(** [par_map f xs] maps [f] over [xs] on the parallel harness (width =
    [Par.Pool.default_jobs ()], i.e. the --jobs flag), preserving order.
    Each call of [f] must be self-contained (own rig/engine/space). *)
val par_map : ('a -> 'b) -> 'a list -> 'b list

type driver = {
  send : Net.Transport.t -> dst:int -> id:int -> unit;
  parse_id : (Mem.Pinned.Buf.t -> int) option;
}

(** [capacity rig d] — saturation throughput (closed loop). *)
val capacity : Apps.Rig.t -> driver -> Loadgen.Driver.result

(** [curve rig d ~name ~capacity_rps] — open-loop sweep over the budget's
    fractions of [capacity_rps]. *)
val curve :
  Apps.Rig.t -> driver -> name:string -> capacity_rps:float -> Stats.Curve.t

(** [tput_at_slo curves ~slo_ns] rows of (name, krps-at-SLO or max valid). *)
val tput_at_slo : Stats.Curve.t -> slo_ns:int -> float

(** Format helpers. *)
val krps : float -> string

val gbps : float -> string

val pct_delta : float -> float -> string

(** [print_curves title curves] prints the full throughput–latency series
    (one block per system), then a summary at the SLO. *)
val print_curves : title:string -> slo_ns:int -> Stats.Curve.t list -> unit
