(* Table 3: highest throughput for three Redis commands on the YCSB
   workload with 4096-byte total payloads: get (1 x 4096), mget-2
   (2 keys x 2048) and lrange-2 (one list of 2 x 2048). Paper: Cornflakes
   serialization gives +15% to +40.1%. *)

type command_case = {
  label : string;
  paper_gain : string;
  workload : Workload.Spec.t;
  list_values : bool;
}

let cases () =
  [
    {
      label = "get (1x4096)";
      paper_gain = "+15%";
      workload = Workload.Ycsb.make ~entries:1 ~entry_size:4096 ();
      list_values = false;
    };
    {
      label = "mget-2 (2x2048)";
      paper_gain = "+18%";
      workload = Workload.Ycsb.make ~multiget:2 ~entries:1 ~entry_size:2048 ();
      list_values = false;
    };
    {
      label = "lrange-2 (2x2048)";
      paper_gain = "+40.1%";
      workload = Workload.Ycsb.make ~entries:2 ~entry_size:2048 ();
      list_values = true;
    };
  ]

let measure mode case =
  let rig = Apps.Rig.create () in
  let srv =
    Mini_redis.Server.install rig mode ~workload:case.workload
      ~list_values:case.list_values
  in
  let d =
    {
      Util.send = (fun ep ~dst ~id -> Mini_redis.Server.send_next srv ep ~dst ~id);
      parse_id = None;
    }
  in
  (Util.capacity rig d).Loadgen.Driver.achieved_rps

let run () =
  let t =
    Stats.Table.create
      ~title:"Table 3: Redis commands, 4096 B payloads (krps)"
      ~columns:[ "command"; "redis"; "cornflakes"; "gain"; "paper gain" ]
  in
  let modes =
    [
      Mini_redis.Server.Native;
      Mini_redis.Server.Cornflakes_backed Cornflakes.Config.default;
    ]
  in
  let cells =
    (* case x mode flattened: six isolated single-measure jobs. *)
    Util.par_map
      (fun (case, mode) -> measure mode case)
      (List.concat_map
         (fun case -> List.map (fun m -> (case, m)) modes)
         (cases ()))
  in
  List.iteri
    (fun i case ->
      let native = List.nth cells (2 * i) in
      let cf = List.nth cells ((2 * i) + 1) in
      Stats.Table.add_row t
        [
          case.label;
          Util.krps native;
          Util.krps cf;
          Util.pct_delta native cf;
          case.paper_gain;
        ])
    (cases ());
  Stats.Table.print t
