(* Figure 3: highest achieved throughput assembling a 2048 B response from
   1..32 non-contiguous buffers, with a working set ~5x L3: copy vs
   scatter-gather with software overheads vs raw scatter-gather. *)

let total_bytes = 2048

let entry_counts = [ 1; 2; 4; 8; 16; 32 ]

let l3_bytes = Memmodel.Params.default.Memmodel.Params.l3.Memmodel.Params.size_bytes

let run_cell ~entries =
  let entry_size = total_bytes / entries in
  (* Working set about 5x L3. *)
  let n_keys = max 4096 (5 * l3_bytes / total_bytes) in
  let rig = Apps.Rig.create () in
  let base = Micro.install rig Micro.Copy_once ~entries ~entry_size ~n_keys in
  List.map
    (fun path ->
      let app = Micro.switch base path in
      let cap = Util.capacity rig (Micro.driver app) in
      (path, cap.Loadgen.Driver.achieved_gbps))
    [ Micro.Copy_once; Micro.Safe_sg; Micro.Raw_sg ]

let run () =
  let t =
    Stats.Table.create
      ~title:
        "Figure 3: 2048 B response from N non-contiguous buffers (Gbps, \
         working set 5x L3)"
      ~columns:
        [ "buffers"; "bytes/buf"; "copy"; "scatter-gather"; "raw sg"; "sg vs copy" ]
  in
  let rows =
    Util.par_map (fun entries -> (entries, run_cell ~entries)) entry_counts
  in
  List.iter
    (fun (entries, results) ->
      let get p = List.assoc p results in
      let copy = get Micro.Copy_once in
      let sg = get Micro.Safe_sg in
      let raw = get Micro.Raw_sg in
      Stats.Table.add_row t
        [
          string_of_int entries;
          string_of_int (total_bytes / entries);
          Util.gbps copy;
          Util.gbps sg;
          Util.gbps raw;
          Util.pct_delta copy sg;
        ])
    rows;
  Stats.Table.print t;
  print_endline
    "  (paper: raw scatter-gather beats copy even at 64 B buffers, but with\n\
    \   safety/transparency overheads copy wins below ~512 B buffers)"
