(** Helpers shared by the key-value-store experiments: install a workload
    once, then measure each serialization system over the same store. *)

val driver : Apps.Kv_app.t -> Util.driver

(** [capacities ~workload backends] — one rig, one populate; returns
    [(backend_name, result)] per backend, in order. [?transport] selects
    the datapath for the per-backend rigs (ignored when [?rig] is given). *)
val capacities :
  ?rig:Apps.Rig.t ->
  ?transport:Apps.Rig.transport_kind ->
  workload:Workload.Spec.t ->
  Apps.Backend.t list ->
  (string * Loadgen.Driver.result) list

(** [curves ~workload ~slo_ns backends] — capacity then an open-loop sweep
    per backend, over a shared store. *)
val curves :
  ?rig:Apps.Rig.t ->
  ?transport:Apps.Rig.transport_kind ->
  workload:Workload.Spec.t ->
  Apps.Backend.t list ->
  Stats.Curve.t list
