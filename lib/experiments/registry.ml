type entry = {
  id : string;
  title : string;
  run : unit -> unit;
}

let all =
  [
    {
      id = "fig2";
      title = "Echo server: copies dominate serialization cost";
      run = Exp_fig2.run;
    };
    {
      id = "fig3";
      title = "Microbenchmark: copy vs scatter-gather vs raw scatter-gather";
      run = Exp_fig3.run;
    };
    {
      id = "fig5";
      title = "Heatmap: SG vs copy across payload size and entry count";
      run = Exp_fig5.run;
    };
    {
      id = "tab1";
      title = "Google bytes distribution: krps per system";
      run = Exp_tab1.run;
    };
    {
      id = "fig6";
      title = "Google 1-8 vals: throughput vs p99";
      run = Exp_tab1.run_fig6;
    };
    { id = "fig7"; title = "Twitter trace: throughput vs p99"; run = Exp_fig7.run };
    { id = "tab2"; title = "CDN trace: objects per second"; run = Exp_tab2.run };
    {
      id = "fig8";
      title = "Redis: native serialization vs Cornflakes";
      run = Exp_fig8.run;
    };
    { id = "tab3"; title = "Redis commands at 4096 B"; run = Exp_tab3.run };
    { id = "fig9"; title = "TCP echo latency boxes"; run = Exp_fig9.run };
    {
      id = "tcp";
      title = "TCP transport: Twitter kv capacity per system";
      run = Exp_tcp.run;
    };
    {
      id = "rx";
      title = "RX ablation: validate-once zero-copy receive vs Dyn parse";
      run = Exp_rx.run;
    };
    {
      id = "rpc";
      title = "RPC codegen ablation: hand-wired vs generated dispatch and call";
      run = Exp_rpc.run;
    };
    {
      id = "fig10";
      title = "NIC generality: CX-6 vs e810 at 1024 B";
      run = Exp_fig10.run;
    };
    { id = "fig11"; title = "CPU cycle breakdown on CDN"; run = Exp_fig11.run };
    {
      id = "fig12";
      title = "Hybrid vs all-SG vs all-copy (Twitter)";
      run = Exp_fig12.run;
    };
    {
      id = "tab4";
      title = "Hybrid vs all-SG (Google)";
      run = Exp_fig12.run_tab4;
    };
    {
      id = "tab5";
      title = "Serialize-and-send ablation";
      run = Exp_tab5.run;
    };
    { id = "fig13"; title = "Multicore scaling"; run = Exp_fig13.run };
    {
      id = "ablations";
      title = "Extra ablations: threshold sweep, SGE overflow, adaptive";
      run = Exp_ablations.run;
    };
    {
      id = "replication";
      title = "Replicated store: throughput by backup count";
      run = Exp_replication.run;
    };
    {
      id = "cluster";
      title = "Sharded KV cluster: scaling and hot-shard imbalance";
      run = Exp_cluster.run;
    };
    {
      id = "faults";
      title = "Faultline: goodput/p99 degradation under injected faults";
      run = Exp_faults.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
