(* Table 1: throughput (krps) on the Google bytes-size-distribution
   workload, lists of 1 / 1-4 / 1-8 / 1-16 values, for Cornflakes and the
   three libraries. Figure 6 is the throughput-latency curve for the 1-8
   case. *)

let cases = [ 1; 4; 8; 16 ]

let run () =
  let t =
    Stats.Table.create
      ~title:"Table 1: Google bytes distribution — krps per system"
      ~columns:
        ("system" :: List.map (fun m -> Printf.sprintf "1-%d vals" m) cases)
  in
  let results =
    Util.par_map
      (fun max_vals ->
        let workload = Workload.Google.make ~max_vals () in
        Kv_bench.capacities ~workload Apps.Backend.all)
      cases
  in
  List.iter
    (fun backend ->
      let name = backend.Apps.Backend.name in
      let row =
        List.map
          (fun per_case ->
            Util.krps (List.assoc name per_case).Loadgen.Driver.achieved_rps)
          results
      in
      Stats.Table.add_row t (name :: row))
    Apps.Backend.all;
  Stats.Table.print t;
  print_endline
    "  (paper: Cornflakes within ~2% of Protobuf for 1 and 1-4 vals, ahead \
     for 1-8/1-16)"

let run_fig6 () =
  let workload = Workload.Google.make ~max_vals:8 () in
  let curves = Kv_bench.curves ~workload Apps.Backend.all in
  Util.print_curves
    ~title:"Figure 6: Google distribution, 1-8 vals — throughput vs p99"
    ~slo_ns:50_000 curves
