let driver app =
  {
    Util.send = (fun ep ~dst ~id -> Apps.Kv_app.send_next app ep ~dst ~id);
    parse_id = Some (fun buf -> Apps.Kv_app.parse_id app buf);
  }

(* Measure each backend on a freshly populated rig: sharing one rig across
   systems lets the first system pay every cold miss and hands the later
   ones a warm cache — an order bias we must not have. *)
let with_apps ?rig ?transport ~workload backends f =
  let run backend =
    let rig =
      match rig with Some r -> r | None -> Apps.Rig.create ?transport ()
    in
    let app = Apps.Kv_app.install rig ~backend ~workload in
    let result = f backend.Apps.Backend.name rig app in
    if Sanitizer.Refsan.is_enabled () then begin
      (* Drain the event queue and run the RefSan quiesce hook (leak
         report), then fold this run's counts into the bench totals and
         drop the ledger so long multi-experiment runs stay bounded. *)
      Sim.Engine.quiesce rig.Apps.Rig.engine;
      Sanitizer.Refsan.checkpoint ()
    end;
    (backend.Apps.Backend.name, result)
  in
  match rig with
  | Some _ ->
      (* A shared rig means shared caches and a shared event queue: the
         measurement order is part of the experiment, so stay serial. *)
      List.map run backends
  | None -> Util.par_map run backends

let capacities ?rig ?transport ~workload backends =
  with_apps ?rig ?transport ~workload backends (fun _name rig app ->
      Util.capacity rig (driver app))

let curves ?rig ?transport ~workload backends =
  List.map snd
    (with_apps ?rig ?transport ~workload backends (fun name rig app ->
         let d = driver app in
         let cap = Util.capacity rig d in
         Util.curve rig d ~name ~capacity_rps:cap.Loadgen.Driver.achieved_rps))
