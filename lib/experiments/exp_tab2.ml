(* Table 2: CDN image trace — throughput in thousands of full objects per
   second. Requests fetch jumbo-frame-sized sub-objects; an object counts
   when all its segments have been served. Large fields dominate, so
   zero-copy should roughly double the copy-based libraries. *)

let run () =
  (* objects/s = segment requests/s divided by mean segments per object. *)
  let mean_segments =
    let n = Workload.Cdn.n_objects_default in
    let total = ref 0 in
    for rank = 1 to n do
      total := !total + Workload.Cdn.segments_of ~rank
    done;
    float_of_int !total /. float_of_int n
  in
  (* The CDN generator's sequential sub-object walk is a mutable cursor
     inside the workload value, so each backend (= each parallel job) gets
     its own instance: every backend then replays the same walk from the
     start, and the result is independent of job count and backend order. *)
  let results =
    List.concat
      (Util.par_map
         (fun backend ->
           Kv_bench.capacities ~workload:(Workload.Cdn.make ()) [ backend ])
         Apps.Backend.all)
  in
  let t =
    Stats.Table.create
      ~title:"Table 2: CDN image trace — thousands of objects per second"
      ~columns:[ "system"; "kobj/s"; "Gbps"; "vs cornflakes" ]
  in
  let cf_objs =
    (List.assoc "cornflakes" results).Loadgen.Driver.achieved_rps
    /. mean_segments
  in
  List.iter
    (fun (name, (r : Loadgen.Driver.result)) ->
      let objs = r.Loadgen.Driver.achieved_rps /. mean_segments in
      Stats.Table.add_row t
        [
          name;
          Util.krps objs;
          Util.gbps r.Loadgen.Driver.achieved_gbps;
          Util.pct_delta objs cf_objs;
        ])
    results;
  Stats.Table.print t;
  print_endline
    "  (paper: Cornflakes 366.5 kobj/s vs 161-186 for the baselines — \
     97-128% higher)"
