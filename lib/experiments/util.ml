type budget = {
  cap_ns : int;
  point_ns : int;
  warmup_ns : int;
  curve_fractions : float list;
  fault_point_ns : int;
  fault_loss_rates : float list;
}

let default_budget =
  {
    cap_ns = 12_000_000;
    point_ns = 15_000_000;
    warmup_ns = 4_000_000;
    curve_fractions = [ 0.2; 0.4; 0.6; 0.75; 0.85; 0.92; 0.98; 1.04 ];
    fault_point_ns = 10_000_000;
    fault_loss_rates = [ 0.0; 0.001; 0.01; 0.05; 0.1 ];
  }

let quick_budget =
  {
    cap_ns = 4_000_000;
    point_ns = 5_000_000;
    warmup_ns = 1_500_000;
    curve_fractions = [ 0.4; 0.75; 0.95 ];
    fault_point_ns = 2_500_000;
    fault_loss_rates = [ 0.0; 0.01; 0.1 ];
  }

(* Atomic: set once by the harness before any jobs run, read from every
   worker domain. *)
let current = Atomic.make default_budget

let budget () = Atomic.get current

let set_quick q = Atomic.set current (if q then quick_budget else default_budget)

(* Experiments that scale non-time knobs (connection-table width, shard
   counts) off the CI-vs-full distinction rather than durations alone. *)
let is_quick () = Atomic.get current = quick_budget

(* Parallel harness entry point: experiments hand their independent
   per-config jobs here and the pool width set from --jobs (see
   [Par.Pool.set_default_jobs]) decides how many run at once. Each job
   must build its own rig/engine/space; results come back in submission
   order, so rendered tables are byte-identical at any width.

   Sanitized runs stay serial: the per-rig quiesce hooks print leak
   reports as they drain, and interleaving those across domains would
   make --sanitize output (which CI greps) nondeterministic. Sanitize is
   a diagnostic mode; wall-clock is not its point. *)
let par_map f xs =
  if Sanitizer.Refsan.is_enabled () then List.map f xs
  else Par.Pool.map_list f xs

type driver = {
  send : Net.Transport.t -> dst:int -> id:int -> unit;
  parse_id : (Mem.Pinned.Buf.t -> int) option;
}

let capacity rig d =
  let b = budget () in
  Loadgen.Driver.closed_loop rig.Apps.Rig.engine ~clients:rig.Apps.Rig.clients
    ~server:Apps.Rig.server_id ~outstanding:4 ~duration_ns:b.cap_ns
    ~warmup_ns:b.warmup_ns ~rng:rig.Apps.Rig.rng ~send:d.send
    ~parse_id:d.parse_id

let curve rig d ~name ~capacity_rps =
  let b = budget () in
  let c = Stats.Curve.create ~name in
  List.iter
    (fun frac ->
      let rate = capacity_rps *. frac in
      let r =
        Loadgen.Driver.open_loop rig.Apps.Rig.engine
          ~clients:rig.Apps.Rig.clients ~server:Apps.Rig.server_id
          ~rate_rps:rate ~duration_ns:b.point_ns ~warmup_ns:b.warmup_ns
          ~rng:rig.Apps.Rig.rng ~send:d.send ~parse_id:d.parse_id
      in
      Stats.Curve.add c (Loadgen.Driver.to_point r))
    b.curve_fractions;
  c

let tput_at_slo c ~slo_ns =
  match Stats.Curve.throughput_at_slo c ~p99_slo_ns:slo_ns with
  | Some t -> t
  | None -> Stats.Curve.max_achieved c

let krps v = Printf.sprintf "%.1f" (v /. 1e3)

let gbps v = Printf.sprintf "%.2f" v

let pct_delta base v =
  if base <= 0.0 then "n/a"
  else Printf.sprintf "%+.1f%%" (100.0 *. (v -. base) /. base)

let print_curves ~title ~slo_ns curves =
  let t =
    Stats.Table.create ~title
      ~columns:[ "system"; "offered krps"; "achieved krps"; "p50 us"; "p99 us" ]
  in
  List.iter
    (fun c ->
      List.iter
        (fun (p : Stats.Curve.point) ->
          Stats.Table.add_row t
            [
              Stats.Curve.name c;
              krps p.Stats.Curve.offered;
              krps p.Stats.Curve.achieved;
              Printf.sprintf "%.1f" (float_of_int p.Stats.Curve.p50_ns /. 1e3);
              Printf.sprintf "%.1f" (float_of_int p.Stats.Curve.p99_ns /. 1e3);
            ])
        (Stats.Curve.points c))
    curves;
  Stats.Table.print t;
  let s =
    Stats.Table.create
      ~title:(Printf.sprintf "%s — summary @ p99 SLO %.0f us" title
                (float_of_int slo_ns /. 1e3))
      ~columns:[ "system"; "tput@SLO krps"; "max achieved krps" ]
  in
  List.iter
    (fun c ->
      Stats.Table.add_row s
        [
          Stats.Curve.name c;
          krps (tput_at_slo c ~slo_ns);
          krps (Stats.Curve.max_achieved c);
        ])
    curves;
  Stats.Table.print s
