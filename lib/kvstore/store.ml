type value =
  | Single of Mem.Pinned.Buf.t
  | Linked of Mem.Pinned.Buf.t list
  | Vector of Mem.Pinned.Buf.t array

type entry = {
  mutable v : value;
  meta_addr : int; (* simulated address of the entry record *)
}

type t = {
  name : string;
  table : (string, entry) Hashtbl.t;
  bucket_base : int; (* simulated address of the bucket array *)
  nbuckets : int;
  entry_base : int; (* simulated region for entry records *)
  entry_bytes : int;
  mutable next_entry : int;
}

(* One cache line per entry record holds the key and value pointer; linked
   list / vector node descriptors follow in the same region. *)
let entry_record_bytes = 64

let create space ~name ~capacity =
  let nbuckets =
    let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
    pow2 1024
  in
  let entry_bytes = capacity * 2 * entry_record_bytes in
  {
    name;
    table = Hashtbl.create capacity;
    bucket_base = Mem.Addr_space.reserve space ~bytes:(8 * nbuckets);
    nbuckets;
    entry_base = Mem.Addr_space.reserve space ~bytes:entry_bytes;
    entry_bytes;
    next_entry = 0;
  }

let size t = Hashtbl.length t.table

let buffers = function
  | Single b -> [ b ]
  | Linked bs -> bs
  | Vector arr -> Array.to_list arr

let value_len v =
  List.fold_left (fun acc b -> acc + Mem.Pinned.Buf.len b) 0 (buffers v)

(* Store-owned references are legitimate long-lived state, not leaks:
   declare them to RefSan as roots while the entry holds them. *)
let root_value v =
  List.iter (fun b -> Mem.Pinned.Buf.root ~site:"Store.put" b) (buffers v)

let release_value ?cpu v =
  List.iter
    (fun b ->
      Mem.Pinned.Buf.unroot ~site:"Store.release" b;
      Mem.Pinned.Buf.decr_ref ?cpu ~site:"Store.release" b)
    (buffers v)

let bucket_addr t key =
  t.bucket_base + (8 * (Hashtbl.hash key land (t.nbuckets - 1)))

let charge_lookup ?cpu t key entry_addr =
  match cpu with
  | None -> ()
  | Some cpu ->
      let p = Memmodel.Cpu.params cpu in
      Memmodel.Cpu.charge cpu Memmodel.Cpu.App p.Memmodel.Params.cost_hash_op;
      Memmodel.Cpu.latency_access cpu Memmodel.Cpu.App ~addr:(bucket_addr t key);
      Memmodel.Cpu.latency_access cpu Memmodel.Cpu.App ~addr:entry_addr;
      (* Key compare sweeps the key bytes stored in the entry record. *)
      Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:(entry_addr + 16)
        ~len:(min 48 (String.length key))

let alloc_entry_addr t =
  let off = t.next_entry in
  t.next_entry <- (t.next_entry + entry_record_bytes) mod t.entry_bytes;
  t.entry_base + off

let put ?cpu t ~key v =
  root_value v;
  match Hashtbl.find_opt t.table key with
  | Some entry ->
      charge_lookup ?cpu t key entry.meta_addr;
      let old = entry.v in
      entry.v <- v;
      release_value ?cpu old
  | None ->
      let meta_addr = alloc_entry_addr t in
      charge_lookup ?cpu t key meta_addr;
      Hashtbl.replace t.table key { v; meta_addr }

let get ?cpu t ~key =
  match Hashtbl.find_opt t.table key with
  | None ->
      (match cpu with
      | None -> ()
      | Some cpu ->
          let p = Memmodel.Cpu.params cpu in
          Memmodel.Cpu.charge cpu Memmodel.Cpu.App p.Memmodel.Params.cost_hash_op;
          Memmodel.Cpu.latency_access cpu Memmodel.Cpu.App
            ~addr:(bucket_addr t key));
      None
  | Some entry ->
      charge_lookup ?cpu t key entry.meta_addr;
      (* Traversing a multi-buffer value touches its node descriptors,
         packed after the entry record (4 per line). *)
      (match (cpu, entry.v) with
      | Some cpu, (Linked bs) ->
          let n = List.length bs in
          Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:(entry.meta_addr + 64)
            ~len:(16 * n)
      | Some cpu, Vector arr ->
          Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:(entry.meta_addr + 64)
            ~len:(16 * Array.length arr)
      | _, _ -> ());
      Some entry.v

let remove ?cpu t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some entry ->
      charge_lookup ?cpu t key entry.meta_addr;
      release_value ?cpu entry.v;
      Hashtbl.remove t.table key
