type level = L1 | L2 | L3 | Dram

let pp_level ppf = function
  | L1 -> Format.pp_print_string ppf "L1"
  | L2 -> Format.pp_print_string ppf "L2"
  | L3 -> Format.pp_print_string ppf "L3"
  | Dram -> Format.pp_print_string ppf "DRAM"

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  tags : int array; (* sets * ways; -1 = invalid *)
  ages : int array; (* LRU stamp per entry *)
  mutable tick : int;
}

let create (g : Params.cache_geometry) =
  let lines = g.size_bytes / g.line_bytes in
  let sets = max 1 (lines / g.ways) in
  {
    sets;
    ways = g.ways;
    line_bytes = g.line_bytes;
    tags = Array.make (sets * g.ways) (-1);
    ages = Array.make (sets * g.ways) 0;
    tick = 0;
  }

let set_of_line t line = (line land max_int) mod t.sets

let access t ~line =
  t.tick <- t.tick + 1;
  let s = set_of_line t line in
  let base = s * t.ways in
  let hit = ref false in
  let victim = ref base in
  let victim_age = ref max_int in
  (let i = ref 0 in
   while (not !hit) && !i < t.ways do
     let idx = base + !i in
     if t.tags.(idx) = line then begin
       hit := true;
       t.ages.(idx) <- t.tick
     end
     else begin
       if t.ages.(idx) < !victim_age then begin
         victim_age := t.ages.(idx);
         victim := idx
       end;
       incr i
     end
   done);
  if not !hit then begin
    (* Complete the victim scan over the remaining ways. *)
    for i = 0 to t.ways - 1 do
      let idx = base + i in
      if t.tags.(idx) <> line && t.ages.(idx) < !victim_age then begin
        victim_age := t.ages.(idx);
        victim := idx
      end
    done;
    t.tags.(!victim) <- line;
    t.ages.(!victim) <- t.tick
  end;
  !hit

let probe t ~line =
  let s = set_of_line t line in
  let base = s * t.ways in
  let rec scan i = i < t.ways && (t.tags.(base + i) = line || scan (i + 1)) in
  scan 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.tick <- 0

module Hierarchy = struct
  type h = { l1 : t; l2 : t; l3 : t; line_bytes : int }

  let level = create

  let level_access = access

  let create (p : Params.t) =
    {
      l1 = level p.l1;
      l2 = level p.l2;
      l3 = level p.l3;
      line_bytes = p.l1.line_bytes;
    }

  let create_shared (p : Params.t) ~l3 =
    { l1 = level p.l1; l2 = level p.l2; l3; line_bytes = p.l1.line_bytes }

  let shared_l3 h = h.l3

  let line_bytes h = h.line_bytes

  let access_line h ~addr =
    let line = addr / h.line_bytes in
    if access h.l1 ~line then L1
    else if access h.l2 ~line then L2
    else if access h.l3 ~line then L3
    else Dram

  let access h ~addr ~len =
    if len <= 0 then (0, 0, 0, 0)
    else begin
      let first = addr / h.line_bytes in
      let last = (addr + len - 1) / h.line_bytes in
      let l1 = ref 0 and l2 = ref 0 and l3 = ref 0 and dram = ref 0 in
      for line = first to last do
        match access_line h ~addr:(line * h.line_bytes) with
        | L1 -> incr l1
        | L2 -> incr l2
        | L3 -> incr l3
        | Dram -> incr dram
      done;
      (!l1, !l2, !l3, !dram)
    end

  (* DDIO: device DMA installs lines into the LLC without touching the
     private levels and without costing CPU cycles. *)
  let install_l3 h ~addr ~len =
    if len > 0 then begin
      let first = addr / h.line_bytes in
      let last = (addr + len - 1) / h.line_bytes in
      for line = first to last do
        ignore (level_access h.l3 ~line)
      done
    end

  let clear h =
    clear h.l1;
    clear h.l2;
    clear h.l3
end
