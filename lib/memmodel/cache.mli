(** Set-associative cache level with LRU replacement.

    Tags are simulated line addresses (byte address / line size). A
    [Hierarchy.t] composes three levels (inclusive fill) and classifies each
    access by the level it hits, which the cost model prices. *)

type level = L1 | L2 | L3 | Dram

val pp_level : Format.formatter -> level -> unit

type t

val create : Params.cache_geometry -> t

(** [access t ~line] probes (and on miss, fills) the cache for a line
    address. Returns [true] on hit. Fills evict LRU within the set. *)
val access : t -> line:int -> bool

(** [probe t ~line] checks residency without updating LRU or filling. *)
val probe : t -> line:int -> bool

val clear : t -> unit

module Hierarchy : sig
  type h

  (** [create params] builds a private L1/L2 over a private L3. *)
  val create : Params.t -> h

  (** [create_shared params ~l3] builds a private L1/L2 over a shared L3
      (multicore experiments). *)
  val create_shared : Params.t -> l3:t -> h

  val shared_l3 : h -> t

  (** Cache-line size shared by the three levels, for callers that walk a
      byte range line by line themselves. *)
  val line_bytes : h -> int

  (** [access h ~addr ~len] touches every line in [addr, addr+len) and
      returns per-level hit counts as [(l1, l2, l3, dram)]. *)
  val access : h -> addr:int -> len:int -> int * int * int * int

  (** [access_line h ~addr] touches the single line containing [addr] and
      returns the level it hit. *)
  val access_line : h -> addr:int -> level

  (** [install_l3 h ~addr ~len] models DDIO: device DMA deposits the lines
      in the last-level cache (no CPU cost, no L1/L2 effect). *)
  val install_l3 : h -> addr:int -> len:int -> unit

  val clear : h -> unit
end
