type category = Rx | Deser | App | Alloc | Copy | Safety | Tx | Other

let category_index = function
  | Rx -> 0
  | Deser -> 1
  | App -> 2
  | Alloc -> 3
  | Copy -> 4
  | Safety -> 5
  | Tx -> 6
  | Other -> 7

let all_categories = [ Rx; Deser; App; Alloc; Copy; Safety; Tx; Other ]

let category_label = function
  | Rx -> "rx"
  | Deser -> "deserialize"
  | App -> "app/get"
  | Alloc -> "alloc"
  | Copy -> "copy"
  | Safety -> "safety"
  | Tx -> "tx/post"
  | Other -> "other"

type t = {
  params : Params.t;
  hier : Cache.Hierarchy.h;
  (* Cycle accumulators: slots 0-7 per category, slot 8 the running total.
     A bare float array keeps every charge an unboxed store — a mutable
     float field in this (mixed) record would allocate a boxed float per
     assignment, and the meter is charged several times per simulated
     request, so that boxing dominated the allocation profile of every
     metered loop. *)
  acc : float array;
}

let total_index = 8

let create ?shared_l3 (params : Params.t) =
  let hier =
    match shared_l3 with
    | Some l3 -> Cache.Hierarchy.create_shared params ~l3
    | None -> Cache.Hierarchy.create params
  in
  { params; hier; acc = Array.make 9 0.0 }

let params t = t.params

let charge t cat cycles =
  let i = category_index cat in
  t.acc.(i) <- t.acc.(i) +. cycles;
  t.acc.(total_index) <- t.acc.(total_index) +. cycles

let stream t cat ~addr ~len =
  if len > 0 then begin
    let p = t.params in
    let i = category_index cat in
    let lb = Cache.Hierarchy.line_bytes t.hier in
    let first = addr / lb and last = (addr + len - 1) / lb in
    (* Accumulate straight into the unboxed slots: no per-level counters,
       no tuple, no boxed intermediate — this loop runs for every metered
       byte range in the simulation. *)
    for line = first to last do
      let c =
        match Cache.Hierarchy.access_line t.hier ~addr:(line * lb) with
        | Cache.L1 -> p.stream_l1
        | Cache.L2 -> p.stream_l2
        | Cache.L3 -> p.stream_l3
        | Cache.Dram -> p.stream_dram
      in
      t.acc.(i) <- t.acc.(i) +. c;
      t.acc.(total_index) <- t.acc.(total_index) +. c
    done
  end

let latency_access t cat ~addr =
  let p = t.params in
  let cost =
    match Cache.Hierarchy.access_line t.hier ~addr with
    | Cache.L1 -> p.lat_l1
    | Cache.L2 -> p.lat_l2
    | Cache.L3 -> p.lat_l3
    | Cache.Dram -> p.lat_dram
  in
  charge t cat cost

let cycles t = t.acc.(total_index)

let ns t = Params.cycles_to_ns t.params t.acc.(total_index)

let breakdown t =
  List.map (fun c -> (c, t.acc.(category_index c))) all_categories

let reset_breakdown t = Array.fill t.acc 0 total_index 0.0

let install_dma t ~addr ~len = Cache.Hierarchy.install_l3 t.hier ~addr ~len

let clear_caches t = Cache.Hierarchy.clear t.hier
