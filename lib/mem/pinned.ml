exception
  Use_after_free of {
    pool : string;
    slot : int;
    gen : int;
    history : string list; (* RefSan event history, oldest first; [] when off *)
  }

exception Out_of_memory of string

type size_class = {
  size : int; (* power-of-two buffer size *)
  capacity : int;
  data_base : int; (* simulated address of slot 0 *)
  backing : Bytes.t; (* capacity * size real bytes *)
  meta_base : int; (* simulated address of refcount 0 (8 B per slot) *)
  refcounts : int array;
  gens : int array;
  free : int array; (* stack of free slot indices *)
  mutable free_top : int; (* number of entries in [free] *)
}

type pool = {
  name : string;
  uid : int; (* process-unique, for the RefSan ledger *)
  classes : size_class array; (* sorted by size *)
  base : int;
  limit : int;
  freelist_addr : int; (* hot line holding the per-class free-list heads *)
}

module Pool = struct
  type t = pool

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  let create space ~name ~classes =
    if classes = [] then invalid_arg "Pinned.Pool.create: no classes";
    let rec check_sorted = function
      | (a, _) :: ((b, _) :: _ as rest) ->
          if a >= b then invalid_arg "Pinned.Pool.create: classes not increasing";
          check_sorted rest
      | _ -> ()
    in
    check_sorted classes;
    List.iter
      (fun (size, cap) ->
        if not (is_pow2 size) then
          invalid_arg "Pinned.Pool.create: class size must be a power of two";
        if cap <= 0 then invalid_arg "Pinned.Pool.create: capacity must be positive")
      classes;
    let freelist_addr = Addr_space.reserve space ~bytes:64 in
    let base = ref max_int and limit = ref 0 in
    let mk (size, capacity) =
      let data_base = Addr_space.reserve space ~bytes:(size * capacity) in
      let meta_base = Addr_space.reserve space ~bytes:(8 * capacity) in
      if data_base < !base then base := data_base;
      if data_base + (size * capacity) > !limit then
        limit := data_base + (size * capacity);
      let free = Array.init capacity (fun i -> capacity - 1 - i) in
      {
        size;
        capacity;
        data_base;
        backing = Bytes.create (size * capacity);
        meta_base;
        refcounts = Array.make capacity 0;
        gens = Array.make capacity 0;
        free;
        free_top = capacity;
      }
    in
    let classes = Array.of_list (List.map mk classes) in
    {
      name;
      uid = Sanitizer.Refsan.register_pool ();
      classes;
      base = !base;
      limit = !limit;
      freelist_addr;
    }

  let name t = t.name

  let base t = t.base

  let limit t = t.limit

  let contains t ~addr = addr >= t.base && addr < t.limit

  let class_for t ~len =
    let n = Array.length t.classes in
    let rec find i =
      if i >= n then None
      else if t.classes.(i).size >= len then Some i
      else find (i + 1)
    in
    find 0

  let live t =
    Array.fold_left (fun acc c -> acc + (c.capacity - c.free_top)) 0 t.classes

  let available_for t ~len =
    match class_for t ~len with
    | None -> 0
    | Some i -> t.classes.(i).free_top

  (* Which class owns [addr]? Classes have disjoint contiguous data ranges. *)
  let class_of_addr t ~addr =
    let n = Array.length t.classes in
    let rec find i =
      if i >= n then None
      else begin
        let c = t.classes.(i) in
        if addr >= c.data_base && addr < c.data_base + (c.size * c.capacity) then
          Some i
        else find (i + 1)
      end
    in
    find 0
end

type t = {
  pool : pool;
  cls : int;
  slot : int;
  gen : int;
  off : int; (* window start within the slot *)
  len : int; (* window length *)
}

module Buf = struct
  type nonrec t = t

  let sc t = t.pool.classes.(t.cls)

  (* RefSan plumbing: the ledger check costs one boolean read when off. *)

  let san_on () = Sanitizer.Refsan.is_enabled ()

  let san_id t =
    let c = sc t in
    {
      Sanitizer.Refsan.pool_uid = t.pool.uid;
      pool = t.pool.name;
      size = c.size;
      slot = t.slot;
      gen = t.gen;
      base = c.data_base + (t.slot * c.size);
    }

  let check_live ?(site = "Pinned.access") ?(op = `Read) t =
    let c = sc t in
    if c.gens.(t.slot) <> t.gen || c.refcounts.(t.slot) = 0 then begin
      let history =
        if san_on () then begin
          let id = san_id t in
          Sanitizer.Refsan.stale_access ~id ~op ~site;
          Sanitizer.Refsan.history id
        end
        else []
      in
      raise (Use_after_free { pool = t.pool.name; slot = t.slot; gen = t.gen; history })
    end

  let meta_addr t = (sc t).meta_base + (t.slot * 8)

  let addr t = (sc t).data_base + (t.slot * (sc t).size) + t.off

  let metadata_addr t = meta_addr t

  let len t = t.len

  let slot_size t = (sc t).size

  let refcount t =
    let c = sc t in
    if c.gens.(t.slot) <> t.gen then 0 else c.refcounts.(t.slot)

  let is_live t =
    let c = sc t in
    c.gens.(t.slot) = t.gen && c.refcounts.(t.slot) > 0

  let charge_meta ?cpu t =
    match cpu with
    | None -> ()
    | Some cpu ->
        Memmodel.Cpu.latency_access cpu Memmodel.Cpu.Safety ~addr:(meta_addr t);
        Memmodel.Cpu.charge cpu Memmodel.Cpu.Safety
          (Memmodel.Cpu.params cpu).Memmodel.Params.cost_refcount_op

  let alloc ?cpu ?(site = "Pinned.alloc") pool ~len =
    match Pool.class_for pool ~len with
    | None ->
        raise
          (Out_of_memory
             (Printf.sprintf "%s: no class for %d bytes" pool.name len))
    | Some cls ->
        let c = pool.classes.(cls) in
        if c.free_top = 0 then
          raise
            (Out_of_memory
               (Printf.sprintf "%s: class %d exhausted" pool.name c.size));
        c.free_top <- c.free_top - 1;
        let slot = c.free.(c.free_top) in
        c.refcounts.(slot) <- 1;
        let t = { pool; cls; slot; gen = c.gens.(slot); off = 0; len } in
        if san_on () then Sanitizer.Refsan.on_alloc ~id:(san_id t) ~site;
        (match cpu with
        | None -> ()
        | Some cpu ->
            let p = Memmodel.Cpu.params cpu in
            Memmodel.Cpu.charge cpu Memmodel.Cpu.Alloc
              p.Memmodel.Params.cost_slab_alloc;
            (* Free-list head is a hot line; refcount init touches the slot's
               metadata line. *)
            Memmodel.Cpu.latency_access cpu Memmodel.Cpu.Alloc
              ~addr:pool.freelist_addr;
            Memmodel.Cpu.latency_access cpu Memmodel.Cpu.Alloc
              ~addr:(meta_addr t));
        t

  let incr_ref ?cpu ?(site = "Pinned.incr_ref") t =
    check_live ~site ~op:`Ref t;
    charge_meta ?cpu t;
    let c = sc t in
    c.refcounts.(t.slot) <- c.refcounts.(t.slot) + 1;
    if san_on () then
      Sanitizer.Refsan.on_incref ~id:(san_id t) ~refs:c.refcounts.(t.slot) ~site

  let free_slot t =
    let c = sc t in
    c.gens.(t.slot) <- c.gens.(t.slot) + 1;
    c.free.(c.free_top) <- t.slot;
    c.free_top <- c.free_top + 1

  let decr_ref ?cpu ?(site = "Pinned.decr_ref") t =
    check_live ~site ~op:`Release t;
    charge_meta ?cpu t;
    let c = sc t in
    c.refcounts.(t.slot) <- c.refcounts.(t.slot) - 1;
    if san_on () then
      Sanitizer.Refsan.on_decref ~id:(san_id t) ~refs:c.refcounts.(t.slot) ~site;
    if c.refcounts.(t.slot) = 0 then begin
      if san_on () then Sanitizer.Refsan.on_free ~id:(san_id t) ~site;
      free_slot t
    end

  let view t =
    check_live ~site:"Pinned.view" ~op:`Read t;
    let c = sc t in
    View.make ~addr:(addr t) ~data:c.backing
      ~off:((t.slot * c.size) + t.off)
      ~len:t.len

  (* Allocation-free window access for per-send hot paths: the backing bytes
     plus the window's start offset within them, without materialising a
     [View]. Callers must stay within [len t] bytes from [backing_off]. *)
  let backing t =
    check_live ~site:"Pinned.backing" ~op:`Read t;
    (sc t).backing

  let backing_off t = (t.slot * (sc t).size) + t.off

  let sub_view ?(site = "Pinned.sub_view") t ~off ~len =
    check_live ~site ~op:`Read t;
    if off < 0 || len < 0 || t.off + off + len > slot_size t then
      invalid_arg "Pinned.Buf.sub_view: window out of bounds";
    let c = sc t in
    View.make ~addr:(addr t + off) ~data:c.backing
      ~off:((t.slot * c.size) + t.off + off)
      ~len

  (* Copy the window out into [dst] (device DMA gather): a read, so no
     RefSan write event, and no intermediate [View]. *)
  let blit_to ?(site = "Pinned.blit_to") t ~dst ~dst_off =
    check_live ~site ~op:`Read t;
    let c = sc t in
    Bytes.blit c.backing ((t.slot * c.size) + t.off) dst dst_off t.len

  let sub ?(site = "Pinned.sub") t ~off ~len =
    check_live ~site ~op:`Read t;
    if off < 0 || len < 0 || t.off + off + len > slot_size t then
      invalid_arg "Pinned.Buf.sub: window out of bounds";
    let t' = { t with off = t.off + off; len } in
    if san_on () then
      Sanitizer.Refsan.on_sub ~id:(san_id t') ~refs:(refcount t') ~site;
    t'

  (* Record a write that bypassed [fill]/[blit_from] (e.g. direct view
     mutation by a protocol header writer, or [Cow_buf.write]) so the
     write-after-post detector still sees it. *)
  let note_write ?(site = "Pinned.write") ?(via_cow = false) t ~off ~len =
    if san_on () then
      Sanitizer.Refsan.on_write ~id:(san_id t) ~refs:(refcount t)
        ~addr:(addr t + off) ~len ~via_cow ~site

  let note_cow_clone ?(site = "Cow_buf.write") t =
    if san_on () then
      Sanitizer.Refsan.on_cow_clone ~id:(san_id t) ~refs:(refcount t) ~site

  (* Declare (and retract) long-lived ownership — e.g. a KV store holding a
     value buffer across requests. Rooted references are not leaks. *)
  let root ?(site = "root") t =
    if san_on () then
      Sanitizer.Refsan.on_root ~id:(san_id t) ~refs:(refcount t) ~site

  let unroot ?(site = "unroot") t =
    if san_on () then
      Sanitizer.Refsan.on_unroot ~id:(san_id t) ~refs:(refcount t) ~site

  (* Declare the buffer's visible window in flight (NIC ring / rtx queue). *)
  let hold ?(site = "dma") ?skip t =
    if san_on () then begin
      let skip = match skip with Some n -> min n t.len | None -> 0 in
      if t.len - skip <= 0 then None
      else
        Some
          (Sanitizer.Refsan.hold ~id:(san_id t) ~refs:(refcount t)
             ~addr:(addr t + skip) ~len:(t.len - skip) ~site)
    end
    else None

  let release_hold = function
    | None -> ()
    | Some token -> Sanitizer.Refsan.release_hold token

  let fill ?cpu ?(site = "Pinned.fill") t s =
    check_live ~site ~op:`Write t;
    if String.length s > slot_size t - t.off then
      invalid_arg "Pinned.Buf.fill: string too long";
    let c = sc t in
    Bytes.blit_string s 0 c.backing ((t.slot * c.size) + t.off)
      (String.length s);
    if san_on () then
      Sanitizer.Refsan.on_write ~id:(san_id t) ~refs:(refcount t)
        ~addr:(addr t) ~len:(String.length s) ~via_cow:false ~site;
    match cpu with
    | None -> ()
    | Some cpu ->
        Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:(addr t)
          ~len:(String.length s)

  let fill_substring ?cpu ?(site = "Pinned.fill_substring") t s ~src_off ~len =
    check_live ~site ~op:`Write t;
    if src_off < 0 || len < 0 || src_off + len > String.length s then
      invalid_arg "Pinned.Buf.fill_substring: source out of bounds";
    if len > slot_size t - t.off then
      invalid_arg "Pinned.Buf.fill_substring: string too long";
    let c = sc t in
    Bytes.blit_string s src_off c.backing ((t.slot * c.size) + t.off) len;
    if san_on () then
      Sanitizer.Refsan.on_write ~id:(san_id t) ~refs:(refcount t)
        ~addr:(addr t) ~len ~via_cow:false ~site;
    match cpu with
    | None -> ()
    | Some cpu -> Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:(addr t) ~len

  (* [fill_substring] over a caller-owned bytes window (e.g. a pooled NIC
     egress frame whose capacity exceeds the packet): same RefSan write
     event and CPU charge, no intermediate string. *)
  let fill_subbytes ?cpu ?(site = "Pinned.fill_subbytes") t s ~src_off ~len =
    check_live ~site ~op:`Write t;
    if src_off < 0 || len < 0 || src_off + len > Bytes.length s then
      invalid_arg "Pinned.Buf.fill_subbytes: source out of bounds";
    if len > slot_size t - t.off then
      invalid_arg "Pinned.Buf.fill_subbytes: source too long";
    let c = sc t in
    Bytes.blit s src_off c.backing ((t.slot * c.size) + t.off) len;
    if san_on () then
      Sanitizer.Refsan.on_write ~id:(san_id t) ~refs:(refcount t)
        ~addr:(addr t) ~len ~via_cow:false ~site;
    match cpu with
    | None -> ()
    | Some cpu -> Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:(addr t) ~len

  let blit_from ?cpu ?(site = "Pinned.blit_from") t ~src ~dst_off =
    check_live ~site ~op:`Write t;
    if dst_off < 0 || t.off + dst_off + src.View.len > slot_size t then
      invalid_arg "Pinned.Buf.blit_from: out of bounds";
    let c = sc t in
    View.blit src ~dst:c.backing ~dst_off:((t.slot * c.size) + t.off + dst_off);
    if san_on () then
      Sanitizer.Refsan.on_write ~id:(san_id t) ~refs:(refcount t)
        ~addr:(addr t + dst_off) ~len:src.View.len ~via_cow:false ~site;
    match cpu with
    | None -> ()
    | Some cpu ->
        Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:src.View.addr
          ~len:src.View.len;
        Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy
          ~addr:(addr t + dst_off) ~len:src.View.len

  let recover ?cpu ?(site = "Pinned.recover") pool ~addr:a ~len =
    (match cpu with
    | None -> ()
    | Some cpu ->
        Memmodel.Cpu.charge cpu Memmodel.Cpu.Safety
          (Memmodel.Cpu.params cpu).Memmodel.Params.cost_range_lookup);
    match Pool.class_of_addr pool ~addr:a with
    | None -> None
    | Some cls ->
        let c = pool.classes.(cls) in
        let rel = a - c.data_base in
        let slot = rel / c.size in
        let off = rel mod c.size in
        if off + len > c.size then None
        else if c.refcounts.(slot) = 0 then None
        else begin
          let t = { pool; cls; slot; gen = c.gens.(slot); off; len } in
          (* Zero-copy safety: recovering a pointer takes a reference. *)
          charge_meta ?cpu t;
          c.refcounts.(slot) <- c.refcounts.(slot) + 1;
          if san_on () then
            Sanitizer.Refsan.on_incref ~id:(san_id t)
              ~refs:c.refcounts.(slot) ~site;
          Some t
        end
end
