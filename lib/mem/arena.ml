exception Out_of_memory = Pinned.Out_of_memory

(* Size-classed free lists: recycled chunks are parked per power-of-two
   class and handed back out before the bump pointer is advanced, so a
   steady-state request loop reuses the same few cache-hot chunks instead
   of marching through the arena. Every allocation reserves its class size
   (16 B .. 128 KB); larger requests fall back to exact-size bump
   allocations that are not recyclable. *)

let min_class_log = 4 (* 16 B *)

let max_class_log = 17 (* 128 KB *)

let n_classes = max_class_log - min_class_log + 1

(* Constant-time size-class lookup: [class_table.((len - 1) lsr 4)] is the
   class index of [len]. Every power-of-two class boundary is a multiple of
   the 16 B granule, so each table slot covers lengths of exactly one
   class. One load replaces the old linear search — this is on both the
   alloc and recycle hot paths. *)
let class_table =
  Array.init
    (1 lsl (max_class_log - min_class_log))
    (fun i ->
      let len = (i + 1) lsl min_class_log in
      let rec go l = if 1 lsl l >= len then l else go (l + 1) in
      go min_class_log - min_class_log)

(* Class index of [len], or [-1] when [len] exceeds the largest class
   (bump-only). Returns an immediate int so the hot path allocates
   nothing. *)
let class_index len =
  if len <= 1 lsl min_class_log then 0
  else if len > 1 lsl max_class_log then -1
  else Array.unsafe_get class_table ((len - 1) lsr min_class_log)
[@@alloc_free]

let class_size cls = 1 lsl (cls + min_class_log)

(* Per-class stack of recycled chunk offsets; grows by doubling so the
   steady state pushes and pops without allocating. *)
type free_stack = { mutable offs : int array; mutable top : int }

type t = {
  base_addr : int;
  backing : Bytes.t;
  mutable used : int;
  free : free_stack array;
  mutable recycle_hits : int; (* allocations served from a free list *)
  mutable parked : int; (* chunks currently on free lists *)
  (* RefSan: recycling is modeled as free + alloc-with-a-reuse-label, so
     the ledger shows the chunk's lifecycle. Chunks only enter the ledger
     once they have been recycled; plain bump allocations stay untracked
     (exactly the pre-free-list behaviour). *)
  san_uid : int;
  san_gens : (int, int) Hashtbl.t; (* chunk offset -> generation *)
  san_live : (int, Sanitizer.Refsan.buf_id) Hashtbl.t;
  (* Fault injection: a soft capacity below the backing size makes the
     arena behave as if it were that small, without reallocating. *)
  mutable soft_capacity : int option;
  mutable oom_events : int;
}

let create space ~capacity =
  {
    base_addr = Addr_space.reserve space ~bytes:capacity;
    backing = Bytes.create capacity;
    used = 0;
    free = Array.init n_classes (fun _ -> { offs = [||]; top = 0 });
    recycle_hits = 0;
    parked = 0;
    san_uid = Sanitizer.Refsan.register_pool ();
    san_gens = Hashtbl.create 64;
    san_live = Hashtbl.create 64;
    soft_capacity = None;
    oom_events = 0;
  }

let used t = t.used

let capacity t = Bytes.length t.backing

let recycle_hits t = t.recycle_hits

let parked t = t.parked

let set_soft_capacity t cap =
  (match cap with
  | Some c when c < 0 -> invalid_arg "Arena.set_soft_capacity: negative capacity"
  | _ -> ());
  t.soft_capacity <- cap

let soft_capacity t = t.soft_capacity

let effective_capacity t =
  match t.soft_capacity with
  | Some c -> min c (Bytes.length t.backing)
  | None -> Bytes.length t.backing

let oom_events t = t.oom_events

let charge_alloc cpu =
  match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.charge cpu Memmodel.Cpu.Alloc
        (Memmodel.Cpu.params cpu).Memmodel.Params.cost_arena_alloc

let push stack off =
  let cap = Array.length stack.offs in
  if stack.top >= cap then begin
    let arr = Array.make (max 8 (2 * cap)) 0 in
    Array.blit stack.offs 0 arr 0 stack.top;
    stack.offs <- arr
  end;
  stack.offs.(stack.top) <- off;
  stack.top <- stack.top + 1

let san_gen t off =
  match Hashtbl.find_opt t.san_gens off with Some g -> g | None -> 0

let san_id t ~off ~cls =
  {
    Sanitizer.Refsan.pool_uid = t.san_uid;
    pool = "arena";
    size = class_size cls;
    slot = off lsr min_class_log;
    gen = san_gen t off;
    base = t.base_addr + off;
  }

let alloc ?cpu ?(site = "Arena.alloc") t ~len =
  charge_alloc cpu;
  let cls = class_index len in
  if cls >= 0 && t.free.(cls).top > 0 then begin
    (* Recycled chunk: modeled for RefSan as a fresh allocation with a
       reuse label; rooted so a chunk held across the quiesce point is
       not misreported as a leak (the arena owns it until recycle/reset). *)
    let stack = t.free.(cls) in
    stack.top <- stack.top - 1;
    let off = stack.offs.(stack.top) in
    t.recycle_hits <- t.recycle_hits + 1;
    t.parked <- t.parked - 1;
    if Sanitizer.Refsan.is_enabled () then begin
      let id = san_id t ~off ~cls in
      Sanitizer.Refsan.on_alloc ~id ~site:("Arena.reuse:" ^ site);
      Sanitizer.Refsan.on_root ~id ~refs:1 ~site:("Arena.reuse:" ^ site);
      Hashtbl.replace t.san_live off id
    end;
    View.make ~addr:(t.base_addr + off) ~data:t.backing ~off ~len
  end
  else begin
    let chunk = if cls >= 0 then class_size cls else len in
    if t.used + chunk > effective_capacity t then begin
      t.oom_events <- t.oom_events + 1;
      raise (Out_of_memory "arena exhausted")
    end;
    let off = t.used in
    t.used <- t.used + chunk;
    View.make ~addr:(t.base_addr + off) ~data:t.backing ~off ~len
  end

let copy_in ?cpu ?site t src =
  let dst = alloc ?cpu ?site t ~len:src.View.len in
  View.blit src ~dst:t.backing ~dst_off:dst.View.off;
  (match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:src.View.addr
        ~len:src.View.len;
      Memmodel.Cpu.stream cpu Memmodel.Cpu.Copy ~addr:dst.View.addr
        ~len:src.View.len);
  dst

(* Generation bumps only happen while the sanitizer observes: with it off
   the gens table is never read, and keeping the recycle hit path free of
   hashing (and of the [Hashtbl.replace] allocation) is what makes
   free-list reuse cheaper than the bump path it replaces. *)
let san_free t ~off ~cls ~site =
  if Sanitizer.Refsan.is_enabled () then begin
    let id = san_id t ~off ~cls in
    (match Hashtbl.find_opt t.san_live off with
    | Some live ->
        Sanitizer.Refsan.on_unroot ~id:live ~refs:1 ~site;
        Hashtbl.remove t.san_live off
    | None -> ());
    Sanitizer.Refsan.on_free ~id ~site;
    Hashtbl.replace t.san_gens off (san_gen t off + 1)
  end

let recycle ?(site = "Arena.recycle") t (v : View.t) =
  if v.View.data != t.backing then
    invalid_arg "Arena.recycle: view is not from this arena";
  let cls = class_index v.View.len in
  (* Oversized chunks are bump-only; reclaimed at reset. *)
  if cls >= 0 then begin
    san_free t ~off:v.View.off ~cls ~site;
    push t.free.(cls) v.View.off;
    t.parked <- t.parked + 1
  end
[@@alloc_free]

let reset t =
  if Sanitizer.Refsan.is_enabled () then
    Hashtbl.iter
      (fun _off id ->
        Sanitizer.Refsan.on_unroot ~id ~refs:1 ~site:"Arena.reset";
        Sanitizer.Refsan.on_free ~id ~site:"Arena.reset")
      t.san_live;
  (* [Hashtbl.reset] allocates a fresh bucket array; with the sanitizer off
     the table never gains entries, so per-iteration resets (the serve-loop
     hot path) skip it entirely. *)
  if Hashtbl.length t.san_live > 0 then Hashtbl.reset t.san_live;
  t.used <- 0;
  t.parked <- 0;
  Array.iter (fun s -> s.top <- 0) t.free

(* --- Per-size-class copy/zc verdicts ---------------------------------- *)

module Verdict = struct
  (* One byte per 16 B granule bucket, same granule as [class_table]:
     bucket [len lsr 4] covers lengths [16j, 16j+15], so all lengths in a
     bucket share one verdict exactly when the threshold is a multiple of
     the granule. Bucket indexing must be [len lsr 4], not the class
     table's [(len - 1) lsr 4]: the latter folds a class boundary (e.g.
     511 and 512) into one slot and cannot carry a boundary-exact verdict.
     Non-representable thresholds (unaligned, or sentinels like
     [Config.all_copy]'s [max_int]) keep the compare fallback. *)

  let n_buckets = (1 lsl (max_class_log - min_class_log)) + 1

  type t = { table : Bytes.t option; threshold : int }

  let representable threshold =
    threshold >= 0
    && threshold land ((1 lsl min_class_log) - 1) = 0
    && threshold <= 1 lsl max_class_log

  let make ~threshold =
    if representable threshold then begin
      let tbl = Bytes.make n_buckets '\000' in
      for j = threshold lsr min_class_log to n_buckets - 1 do
        Bytes.unsafe_set tbl j '\001'
      done;
      { table = Some tbl; threshold }
    end
    else { table = None; threshold }

  let threshold t = t.threshold

  (* [zc t len]: should a payload of [len] bytes go zero-copy? One load in
     the tabled case; an [lsr] of a (nonsensical) negative length lands
     out of range and falls back to the compare, so the table can never be
     indexed out of bounds. *)
  let zc t len =
    match t.table with
    | None -> len >= t.threshold
    | Some tbl ->
        let b = len lsr min_class_log in
        if b >= n_buckets then len >= t.threshold
        else Bytes.unsafe_get tbl b <> '\000'
  [@@alloc_free]
end
