(** Bump-pointer arena for copied serialization data, with size-classed
    free lists.

    The paper's Copy variant of [CFPtr] stores field bytes in arena-backed
    vectors: "Cornflakes uses efficient arena allocation … that offers fast
    allocation and mass deallocation" (§3.2.2). The arena is reset after each
    request, so its lines stay hot in cache — which is exactly why the second
    copy into the DMA buffer is cheap.

    On top of the bump pointer, chunks handed back via {!recycle} are parked
    on per-size-class free lists (powers of two, 16 B – 128 KB) and reused by
    later allocations of the same class, so a steady-state send loop cycles
    through a few cache-hot chunks instead of consuming fresh arena space.
    Every allocation reserves its full class size; requests above 128 KB are
    exact-size bump allocations that only {!reset} reclaims.

    Under RefSan, recycling is modeled as free + alloc: {!recycle} emits a
    free event and the allocation that reuses the chunk emits an alloc event
    with an ["Arena.reuse:<site>"] label (rooted while live, so arena-owned
    chunks never count as leaks). Plain bump allocations stay untracked. *)

type t

val create : Addr_space.t -> capacity:int -> t

(** Bytes reserved by the bump pointer (class-rounded; recycling does not
    shrink it). *)
val used : t -> int

val capacity : t -> int

(** Allocations served from a free list since creation. *)
val recycle_hits : t -> int

(** Chunks currently parked on free lists. *)
val parked : t -> int

(** Clamp the arena to behave as if its backing were [cap] bytes (fault
    injection for exhaustion testing); [None] restores the real capacity.
    Recycled chunks are unaffected — they reuse already-reserved space.
    Raises [Invalid_argument] on a negative capacity. *)
val set_soft_capacity : t -> int option -> unit

val soft_capacity : t -> int option

(** Allocations refused with [Out_of_memory] since creation. *)
val oom_events : t -> int

(** [copy_in ?cpu ?site t src] copies [src]'s bytes into the arena (charging
    a streaming read of the source and write of the arena) and returns a view
    of the copy. Raises [Out_of_memory] if the arena is full. *)
val copy_in : ?cpu:Memmodel.Cpu.t -> ?site:string -> t -> View.t -> View.t

(** [alloc ?cpu ?site t ~len] reserves arena space (for headers built in
    place), preferring a recycled chunk of the same size class. *)
val alloc : ?cpu:Memmodel.Cpu.t -> ?site:string -> t -> len:int -> View.t

(** [recycle ?site t v] returns a chunk obtained from [alloc]/[copy_in] to
    its size-class free list. The view must come from this arena and must no
    longer be read — a later allocation of the same class may overwrite it.
    Oversized (>128 KB) chunks are ignored; [reset] reclaims them. *)
val recycle : ?site:string -> t -> View.t -> unit

(** Mass-deallocate; O(1) plus free-list bookkeeping. *)
val reset : t -> unit

(** Branchless copy/zero-copy verdicts over the arena's 16 B size-class
    granule.

    [make ~threshold] precomputes, per granule bucket, whether a payload of
    that size should travel zero-copy ([len >= threshold]); [zc] is then one
    table load instead of a per-field compare, and — more importantly — the
    codegen layer uses the same bucketing to fold the verdict away entirely
    for fields with [max_size]/[min_size] bounds. Thresholds that are not
    representable on the granule (unaligned, negative, or sentinels such as
    [Config.all_copy]'s [max_int]) transparently keep the exact compare. *)
module Verdict : sig
  type t

  val make : threshold:int -> t

  val threshold : t -> int

  (** [zc t len] — true iff a [len]-byte payload should go zero-copy.
      Exactly equivalent to [len >= threshold t] for every [len]. *)
  val zc : t -> int -> bool
end
