type t = {
  space : Addr_space.t;
  mutable pools : Pinned.Pool.t list;
  table_addr : int; (* hot line modelling the range table *)
}

let create space =
  { space; pools = []; table_addr = Addr_space.reserve space ~bytes:64 }

let space t = t.space

let register t pool = t.pools <- pool :: t.pools

let pools t = t.pools

let find t ~addr = List.find_opt (fun p -> Pinned.Pool.contains p ~addr) t.pools

let is_pinned t ~addr = Option.is_some (find t ~addr)

let recover_ptr ?cpu t ~addr ~len =
  (match cpu with
  | None -> ()
  | Some cpu ->
      (* Range-table lookup: arithmetic plus one (hot) table line. *)
      Memmodel.Cpu.charge cpu Memmodel.Cpu.Safety
        (Memmodel.Cpu.params cpu).Memmodel.Params.cost_range_lookup;
      Memmodel.Cpu.latency_access cpu Memmodel.Cpu.Safety ~addr:t.table_addr);
  match find t ~addr with
  | None -> None
  | Some pool -> Pinned.Buf.recover ?cpu ~site:"Registry.recover_ptr" pool ~addr ~len
