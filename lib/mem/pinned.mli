(** Pinned (DMA-safe) memory: slab pools of power-of-two buffers with
    reference counts and use-after-free detection.

    Mirrors the paper's "pinned memory allocator as part of the Cornflakes
    networking stack API that allocates power-of-two-sized objects" (§4).
    Each buffer slot has:

    - a data range in the simulated address space (cache-visible),
    - a reference count living in a separate metadata range (so refcount
      updates produce the metadata cache misses the paper measures),
    - a generation counter: any access through a stale handle raises
      [Use_after_free], which is how tests prove the safety property.

    Every mutating entry point takes an optional [?site] label. When the
    RefSan sanitizer is enabled ([CF_SANITIZE=1] or
    [Sanitizer.Refsan.set_enabled true]), each operation is mirrored into a
    shadow ledger tagged with that label, powering leak, double-free,
    use-after-free, and write-after-post diagnostics. With the sanitizer
    off the hooks cost one boolean load. *)

(** Raised on any access through a stale handle (freed slot or reused
    generation). [history] carries the buffer's RefSan event log, oldest
    first, when the sanitizer is enabled; [[]] otherwise. *)
exception
  Use_after_free of {
    pool : string;
    slot : int;
    gen : int;
    history : string list;
  }

exception Out_of_memory of string

module Pool : sig
  type t

  (** [create space ~name ~classes] builds a pool; [classes] lists
      [(buffer_size, capacity)] pairs; sizes must be powers of two and
      strictly increasing. *)
  val create : Addr_space.t -> name:string -> classes:(int * int) list -> t

  val name : t -> string

  (** Address range covered by the pool's data slabs. *)
  val base : t -> int

  val limit : t -> int

  val contains : t -> addr:int -> bool

  (** Number of live (allocated) buffers, across classes. *)
  val live : t -> int

  (** Buffers currently free in the class that serves [len]. *)
  val available_for : t -> len:int -> int
end

module Buf : sig
  type t

  (** [alloc ?cpu ?site pool ~len] takes a buffer from the smallest class
      with size >= [len]; its visible window is [len] bytes; refcount starts
      at 1. Raises [Out_of_memory] when the class is exhausted. *)
  val alloc : ?cpu:Memmodel.Cpu.t -> ?site:string -> Pool.t -> len:int -> t

  val addr : t -> int

  (** Simulated address of the buffer's reference-count metadata (8 bytes;
      eight buffers share a cache line). *)
  val metadata_addr : t -> int

  val len : t -> int

  (** Size of the underlying slot (the power-of-two class size). *)
  val slot_size : t -> int

  val refcount : t -> int

  val is_live : t -> bool

  (** RefSan identity of this handle (pool uid, slot, generation, window). *)
  val san_id : t -> Sanitizer.Refsan.buf_id

  (** [incr_ref ?cpu ?site t] charges a metadata access (the zero-copy
      safety cost) and bumps the count. Raises [Use_after_free] on a stale
      handle. *)
  val incr_ref : ?cpu:Memmodel.Cpu.t -> ?site:string -> t -> unit

  (** [decr_ref ?cpu ?site t] releases one reference; at zero the slot
      returns to the free list and the generation advances. *)
  val decr_ref : ?cpu:Memmodel.Cpu.t -> ?site:string -> t -> unit

  (** [view t] is a read window over the visible bytes.
      Raises [Use_after_free] on a stale handle. *)
  val view : t -> View.t

  (** Allocation-free window access for per-send hot paths: the backing
      bytes plus the window's start offset within them, without
      materialising a [View]. Callers must stay within [len t] bytes from
      [backing_off t]. [backing] raises [Use_after_free] on a stale
      handle. *)
  val backing : t -> Bytes.t

  val backing_off : t -> int

  (** [sub_view t ~off ~len] is [View.sub (view t) ~off ~len] in a single
      allocation. *)
  val sub_view : ?site:string -> t -> off:int -> len:int -> View.t

  (** [blit_to t ~dst ~dst_off] copies the visible window into [dst]
      (device DMA gather) without materialising a [View]. *)
  val blit_to : ?site:string -> t -> dst:Bytes.t -> dst_off:int -> unit

  (** [sub t ~off ~len] narrows the handle (shares the refcount; does not
      bump it). *)
  val sub : ?site:string -> t -> off:int -> len:int -> t

  (** [fill ?cpu ?site t s] writes [s] at the start of the visible window
      (setup/application writes). *)
  val fill : ?cpu:Memmodel.Cpu.t -> ?site:string -> t -> string -> unit

  (** [fill_substring ?cpu ?site t s ~src_off ~len] writes
      [s[src_off, src_off+len)] at the start of the visible window without
      materializing an intermediate substring (hot receive path). *)
  val fill_substring :
    ?cpu:Memmodel.Cpu.t ->
    ?site:string ->
    t ->
    string ->
    src_off:int ->
    len:int ->
    unit

  (** [fill_subbytes ?cpu ?site t b ~src_off ~len] — {!fill_substring} over
      a caller-owned bytes window (e.g. a pooled NIC egress frame): same
      RefSan write event, no intermediate string. *)
  val fill_subbytes :
    ?cpu:Memmodel.Cpu.t ->
    ?site:string ->
    t ->
    Bytes.t ->
    src_off:int ->
    len:int ->
    unit

  (** [blit_from ?cpu ?site t ~src ~dst_off] copies [src]'s visible bytes
      into the buffer, charging a streaming read of [src] and write of the
      target. *)
  val blit_from :
    ?cpu:Memmodel.Cpu.t -> ?site:string -> t -> src:View.t -> dst_off:int -> unit

  (** Report a write that mutated the buffer's bytes without going through
      [fill]/[blit_from] (direct view mutation, e.g. a header writer or
      [Cow_buf]) so the write-after-post detector sees it. [via_cow] marks
      the write as CoW-mediated and therefore race-free. *)
  val note_write : ?site:string -> ?via_cow:bool -> t -> off:int -> len:int -> unit

  (** Record that a CoW clone replaced this buffer for a writer. *)
  val note_cow_clone : ?site:string -> t -> unit

  (** Declare (or retract) long-lived ownership of one reference — e.g. a KV
      store keeping a value buffer across requests. Rooted references are
      not reported as leaks. *)
  val root : ?site:string -> t -> unit

  val unroot : ?site:string -> t -> unit

  (** [hold ?site ?skip t] declares the handle's visible window (minus the
      first [skip] bytes) in flight — posted to a NIC ring or parked for
      retransmission. Returns a token for [release_hold]; [None] when the
      sanitizer is off or the window is empty. *)
  val hold : ?site:string -> ?skip:int -> t -> int option

  val release_hold : int option -> unit

  (** [recover pool ~addr ~len] implements the stack's [recover_ptr]: if
      [addr, addr+len) lies within a live allocation of [pool], bump its
      refcount and return a handle windowed to that slice. *)
  val recover :
    ?cpu:Memmodel.Cpu.t -> ?site:string -> Pool.t -> addr:int -> len:int -> t option
end
