(* Cluster topology: N shards + a front-end dispatcher tier + client
   endpoints, wired over one deterministic engine/fabric. Shards model
   the shared-nothing OCaml 5 domains of a real deployment — each owns
   its CPU, pool, and store, and nothing else reaches them — while the
   simulation itself stays single-threaded per job, so `--jobs`
   parallelism (which fans whole topologies across the Par.Pool) cannot
   perturb results.

   The front end defaults to a single dispatcher; deployments that scale
   the data tier scale the routing tier with it (a lone router core
   serves 1+G messages per request and would cap any cluster), so
   [~dispatchers] widens the tier and each connection is pinned to one
   dispatcher for its lifetime — FIFO per connection, like a real L4
   spray.

   Endpoint id map: shards 1..n, dispatchers 90..97, clients 100+. A
   dispatcher demultiplexes its one rx path by source id: shard sources
   are partial responses, everything else is a client request. *)

type t = {
  engine : Sim.Engine.t;
  fabric : Net.Fabric.t;
  space : Mem.Addr_space.t;
  registry : Mem.Registry.t;
  kind : Apps.Rig.transport_kind;
  backend : Apps.Backend.t;
  ring : Ring.t;
  shards : Shard.t array;
  dispatchers : Dispatcher.t array;
  clients : Net.Transport.t list;
  rng : Sim.Rng.t;
  zipf : Sim.Dist.Zipf.t;
  n_keys : int;
  plan_seed : int;
  req_scratch : Wire.Dyn.t;
  mget_batch : int;
  mget_fraction : float;
  put_fraction : float;
}

let dispatcher_id = 90

let client_base = 100

let stash_classes =
  [ (64, 4096); (128, 4096); (256, 4096); (512, 2048); (1024, 2048);
    (2048, 1024); (4096, 1024) ]

let create ?transport ?seed ?(n_clients = 8) ?(dispatchers = 1)
    ?(vnodes = 128) ?(queue_limit = 1_000_000) ?(zipf_s = 0.99)
    ?(mget_batch = 4) ?(mget_fraction = 0.5) ?(put_fraction = 0.05) ~shards:n
    ~n_keys ~backend () =
  if n < 1 then invalid_arg "Topology.create: shards < 1";
  if dispatchers < 1 || dispatchers > client_base - dispatcher_id then
    invalid_arg "Topology.create: dispatchers out of range";
  let seed = match seed with Some s -> s | None -> Apps.Rig.default_seed () in
  let kind =
    match transport with Some k -> k | None -> Apps.Rig.default_transport ()
  in
  let engine = Sim.Engine.create () in
  if Sanitizer.Refsan.is_enabled () then
    Sim.Engine.add_quiesce_hook engine (fun () ->
        Sanitizer.Report.print_quiesce ());
  let fabric = Net.Fabric.create engine in
  let space = Mem.Addr_space.create () in
  let registry = Mem.Registry.create space in
  let shared_l3 =
    Memmodel.Cache.create Memmodel.Params.default.Memmodel.Params.l3
  in
  let shard_ids = List.init n (fun i -> i + 1) in
  let ring = Ring.create ~vnodes shard_ids in
  let plan_seed = seed lxor 0x5eed in
  (* Population plans in parallel on the worker domains; installation —
     pinned pools, stores — serial on this one. *)
  let plans = Plan.for_shards ~ring ~n_keys ~seed:plan_seed shard_ids in
  let shards =
    Array.of_list
      (List.map2
         (fun sid items ->
           Shard.create ~fabric ~registry ~space ~shared_l3 ~kind ~backend
             ~queue_limit ~index:(sid - 1) ~id:sid
             ~pool_classes:(Plan.pool_classes items)
             ~store_capacity:(List.length items + 64))
         shard_ids plans)
  in
  List.iteri (fun i items -> Plan.install items shards.(i)) plans;
  let dispatchers =
    Array.init dispatchers (fun i ->
        Dispatcher.create ~fabric ~registry ~space ~kind ~backend ~queue_limit
          ~id:(dispatcher_id + i) ~ring ~shard_ids ~stash_classes)
  in
  let clients =
    List.init n_clients (fun i ->
        Apps.Rig.transport_for ~kind
          (Net.Endpoint.create fabric registry ~id:(client_base + i)))
  in
  (* Every client endpoint may carry traffic for any dispatcher (the
     connection table multiplexes over them), so open the full mesh up
     front — on TCP this fixes the handshake order under any seed. *)
  List.iter
    (fun c ->
      Array.iter
        (fun d -> Net.Transport.connect c ~peer:(Dispatcher.id d))
        dispatchers)
    clients;
  {
    engine;
    fabric;
    space;
    registry;
    kind;
    backend;
    ring;
    shards;
    dispatchers;
    clients;
    rng = Sim.Rng.create ~seed;
    zipf = Sim.Dist.Zipf.create ~n:n_keys ~s:zipf_s;
    n_keys;
    plan_seed;
    req_scratch = Wire.Dyn.create Apps.Proto.req;
    mget_batch;
    mget_fraction;
    put_fraction;
  }

(* --- Client side (uncharged, mirrors Kv_app) --------------------------- *)

let append_key t msg rank =
  Wire.Dyn.append msg "keys"
    (Wire.Dyn.Payload (Wire.Payload.of_string t.space (Plan.key_of rank)))

(* Draw one request from a connection's private stream and send it. The op
   mix and Zipf key popularity are functions of that stream alone. *)
let gen_and_send t crng client ~dst ~id =
  let msg = t.req_scratch in
  Wire.Dyn.clear msg;
  Wire.Dyn.set_int msg "id" (Int64.of_int id);
  let u = Sim.Rng.float crng in
  if u < t.put_fraction then begin
    let rank = Sim.Dist.Zipf.sample t.zipf crng in
    Wire.Dyn.set_int msg "op" Apps.Proto.op_put;
    append_key t msg rank;
    Wire.Dyn.append msg "vals"
      (Wire.Dyn.Payload
         (Wire.Payload.of_string t.space
            (Workload.Spec.filler (Plan.size_of ~seed:t.plan_seed rank))))
  end
  else begin
    Wire.Dyn.set_int msg "op" Apps.Proto.op_get;
    let batch =
      if u < t.put_fraction +. t.mget_fraction then t.mget_batch else 1
    in
    for _ = 1 to batch do
      append_key t msg (Sim.Dist.Zipf.sample t.zipf crng)
    done
  end;
  t.backend.Apps.Backend.send client ~dst msg;
  (* Client-side arenas hold per-request copies; recycle them. *)
  Mem.Arena.reset (Net.Transport.arena client)

let parse_id t buf =
  let msg =
    t.backend.Apps.Backend.recv (List.hd t.clients) Apps.Proto.resp buf
  in
  let id =
    match Wire.Dyn.get_int msg "id" with
    | Some id -> Int64.to_int id
    | None -> -1
  in
  Wire.Dyn.release msg;
  List.iter (fun c -> Mem.Arena.reset (Net.Transport.arena c)) t.clients;
  id

let drive t ~conns ~rate_rps ~duration_ns ~warmup_ns =
  let n_disp = Array.length t.dispatchers in
  Loadgen.Driver.open_loop_conns t.engine ~conns ~clients:t.clients
    ~server:dispatcher_id ~rate_rps ~duration_ns ~warmup_ns ~rng:t.rng
    ~send:(fun ~conn crng client ~dst:_ ~id ->
      (* Connection → dispatcher pinning: deterministic, and each client
         keeps a stable front-end like a connection-hashing L4 would. *)
      let dst = Dispatcher.id t.dispatchers.(conn mod n_disp) in
      gen_and_send t crng client ~dst ~id)
    ~parse_id:(fun buf -> parse_id t buf)

let per_shard_served t =
  Array.to_list (Array.map (fun s -> Shard.served s) t.shards)

let shard_list t = Array.to_list t.shards

let engine t = t.engine

let fabric t = t.fabric

let registry t = t.registry

let kind t = t.kind

let ring t = t.ring

let dispatcher t = t.dispatchers.(0)

let dispatcher_list t = Array.to_list t.dispatchers

let clients t = t.clients

let n_keys t = t.n_keys
