(* One shard of the cluster: a shared-nothing ownership domain. Each shard
   has its own CPU (sharing the socket L3 with its siblings), endpoint,
   pinned-buffer pool, and store — the only way in or out is a message
   through [Net.Transport], so the ownership story StatCheck and RefSan
   verify for a single rig holds per shard by construction.

   The request protocol is the kv [Apps.Proto] schema: the dispatcher's
   sub-requests are ordinary Req messages whose id is the fan-out id, and
   partial responses are Resp messages echoing it. Values appended to a
   get response keep positional alignment with the sub-request's keys
   (a miss answers an empty value), which is what lets the dispatcher
   reassemble multi-get responses without re-parsing keys. *)

type t = {
  index : int; (* dense 0..n-1, for per-shard report rows *)
  id : int; (* endpoint id on the fabric *)
  space : Mem.Addr_space.t;
  cpu : Memmodel.Cpu.t;
  ep : Net.Endpoint.t;
  tr : Net.Transport.t;
  server : Loadgen.Server.t;
  backend : Apps.Backend.t;
  store : Kvstore.Store.t;
  pool : Mem.Pinned.Pool.t;
  (* Generated server skeleton: owns the pooled response and the
     branchless method-dispatch table ([Get]/[Put] rows registered at
     create; unregistered methods answer the bare id echo). *)
  rpc : Apps.Kv_rpc.Kv_service.server;
  mutable keys_served : int;
  mutable puts : int;
  mutable misses : int;
  mutable drops : int; (* put values dropped on pool exhaustion *)
}

(* Read a key payload out of a request, charging the byte sweep (the
   handler must hash/compare them) to App. *)
let key_string ?cpu (p : Wire.Payload.t) =
  let v = Wire.Payload.view p in
  (match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:v.Mem.View.addr
        ~len:v.Mem.View.len);
  Mem.View.to_string v

let handle_get t ~cpu req resp =
  List.iter
    (fun v ->
      match v with
      | Wire.Dyn.Payload p -> (
          let key = key_string ~cpu p in
          match Kvstore.Store.get ~cpu t.store ~key with
          | Some value ->
              t.keys_served <- t.keys_served + 1;
              List.iter
                (fun buf ->
                  let payload =
                    t.backend.Apps.Backend.wrap ~cpu t.tr
                      (Mem.Pinned.Buf.view buf)
                  in
                  Wire.Dyn.append resp "vals" (Wire.Dyn.Payload payload))
                (Kvstore.Store.buffers value)
          | None ->
              (* Positional alignment with the sub-request keys must
                 survive a miss: answer an empty value for this slot. *)
              t.misses <- t.misses + 1;
              Wire.Dyn.append resp "vals"
                (Wire.Dyn.Payload (Wire.Payload.of_string t.space "")))
      | _ -> ())
    (Wire.Dyn.get_list req "keys")

let handle_put t ~cpu req =
  match Wire.Dyn.get_list req "keys" with
  | [ Wire.Dyn.Payload kp ] ->
      let key = key_string ~cpu kp in
      let bufs =
        List.filter_map
          (fun v ->
            match v with
            | Wire.Dyn.Payload p -> (
                let src = Wire.Payload.view p in
                match
                  Mem.Pinned.Buf.alloc ~cpu ~site:"Shard.put_value" t.pool
                    ~len:(max 1 src.Mem.View.len)
                with
                | buf ->
                    Mem.Pinned.Buf.blit_from ~cpu ~site:"Shard.put_value" buf
                      ~src ~dst_off:0;
                    Some buf
                | exception Mem.Pinned.Out_of_memory _ ->
                    t.drops <- t.drops + 1;
                    None)
            | _ -> None)
          (Wire.Dyn.get_list req "vals")
      in
      (match bufs with
      | [] -> ()
      | [ one ] ->
          t.puts <- t.puts + 1;
          Kvstore.Store.put ~cpu t.store ~key (Kvstore.Store.Single one)
      | many ->
          t.puts <- t.puts + 1;
          Kvstore.Store.put ~cpu t.store ~key (Kvstore.Store.Linked many))
  | _ -> ()

(* The request parses once (via the backend), then the generated skeleton
   takes over: id echo into the pooled response, branchless dispatch on
   the method word, tail-send. *)
let handler t ~src buf =
  let cpu = t.cpu in
  let req = t.backend.Apps.Backend.recv ~cpu t.tr Apps.Proto.req buf in
  Apps.Kv_rpc.Kv_service.serve_dyn t.rpc ~src req;
  Wire.Dyn.release ~cpu req;
  Mem.Pinned.Buf.decr_ref ~cpu ~site:"Shard.handler_done" buf

let create ~fabric ~registry ~space ~shared_l3 ~kind ~backend ~queue_limit
    ~index ~id ~pool_classes ~store_capacity =
  let cpu = Memmodel.Cpu.create ~shared_l3 Memmodel.Params.default in
  let ep = Net.Endpoint.create ~cpu fabric registry ~id in
  let tr = Apps.Rig.transport_for ~kind ep in
  let server = Loadgen.Server.create ~queue_limit tr cpu in
  let pool =
    Mem.Pinned.Pool.create space
      ~name:(Printf.sprintf "shard-%d" index)
      ~classes:pool_classes
  in
  Mem.Registry.register registry pool;
  let store =
    Kvstore.Store.create space
      ~name:(Printf.sprintf "shard-%d" index)
      ~capacity:store_capacity
  in
  let rpc =
    Apps.Kv_rpc.Kv_service.server
      ~send:(fun ~dst resp -> backend.Apps.Backend.send ~cpu tr ~dst resp)
      ()
  in
  let t =
    {
      index;
      id;
      space;
      cpu;
      ep;
      tr;
      server;
      backend;
      store;
      pool;
      rpc;
      keys_served = 0;
      puts = 0;
      misses = 0;
      drops = 0;
    }
  in
  Apps.Kv_rpc.Kv_service.on_get rpc
    ~dyn:(fun ~src:_ req resp -> handle_get t ~cpu req resp);
  Apps.Kv_rpc.Kv_service.on_put rpc
    ~dyn:(fun ~src:_ req _resp -> handle_put t ~cpu req);
  Loadgen.Server.set_handler server (fun ~src buf -> handler t ~src buf);
  t

let id t = t.id

let index t = t.index

let endpoint t = t.ep

let server t = t.server

let cpu t = t.cpu

let store t = t.store

let pool t = t.pool

let served t = Loadgen.Server.served t.server

let keys_served t = t.keys_served

let puts t = t.puts

let misses t = t.misses

let drops t = t.drops
