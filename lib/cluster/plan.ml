(* Per-shard population plans.

   A plan is pure data — (rank, size) pairs for the keys a shard owns —
   so computing the N plans is embarrassingly parallel and runs on the
   [Par.Pool] worker domains (the ring is immutable; sizes come from
   rank-indexed RNG streams). Installing a plan touches pinned pools and
   the store, which are single-domain structures, so installation stays
   on the submitting domain. This split is the pattern StatCheck's
   domain-race pass polices: closures handed to the pool may capture
   immutable routing state, never a live shard.

   Sizes are a function of (seed, rank) alone — independent of the shard
   count — so clusters of different widths hold byte-identical data and
   the scaling curve compares like with like. *)

type item = { rank : int; size : int }

let key_of rank = Printf.sprintf "cl:%016d" rank

let min_value = 16

(* The cap keeps a worst-case assembled multi-get (mget_batch values plus
   framing) inside the datagram transport's max payload: fan-out must
   work identically over UDP and TCP, so the dispatcher never has to
   segment a response. *)
let max_value = 2048

(* Lognormal value sizes (Twitter-cache-like shape), clipped to the pool
   classes a shard provisions. One draw from a rank-indexed stream. *)
let size_of ~seed rank =
  let rng = Sim.Rng.stream ~seed ~index:rank in
  let s = int_of_float (Sim.Dist.lognormal rng ~mu:5.4 ~sigma:1.1) in
  if s < min_value then min_value else if s > max_value then max_value else s

let for_shard ~ring ~shard ~n_keys ~seed =
  let acc = ref [] in
  for rank = n_keys downto 1 do
    if Ring.owner ring (key_of rank) = shard then
      acc := { rank; size = size_of ~seed rank } :: !acc
  done;
  !acc

(* All shards' plans, fanned across the worker domains. Results come back
   in shard order regardless of pool width; nested under an experiment
   job this degrades to inline execution — the same serial semantics. *)
let for_shards ~ring ~n_keys ~seed shard_ids =
  Par.Pool.map_list (fun shard -> for_shard ~ring ~shard ~n_keys ~seed) shard_ids

(* Pool classes for a shard: what its plan needs, plus headroom in every
   class for put churn (allocate-and-swap briefly doubles a value). *)
let pool_classes items =
  let classes = [ 64; 128; 256; 512; 1024; 2048; 4096 ] in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun { size; _ } ->
      let c = Workload.Spec.class_of size in
      Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    items;
  List.map
    (fun c ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts c) in
      (c, n + (n / 4) + 128))
    classes

let install items shard =
  let pool = Shard.pool shard and store = Shard.store shard in
  List.iter
    (fun { rank; size } ->
      let buf = Mem.Pinned.Buf.alloc ~site:"Cluster.populate" pool ~len:size in
      Mem.Pinned.Buf.fill ~site:"Cluster.populate" buf
        (Workload.Spec.filler size);
      Kvstore.Store.put store ~key:(key_of rank) (Kvstore.Store.Single buf))
    items
