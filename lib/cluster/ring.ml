(* Consistent-hash ring with virtual nodes.

   Each shard projects [vnodes] points onto the 64-bit hash circle; a key
   is owned by the shard whose point is the first at or clockwise of the
   key's hash (wrapping at the top). Because a shard's points depend only
   on its own id, adding or removing a shard leaves every other shard's
   points where they were: the only keys that move are those whose
   successor point changed, i.e. an expected 1/(n+1) fraction on growth —
   the "minimal remapping" property the QCheck suite pins down.

   The structure is immutable after [create]: experiment jobs and the
   parallel population planner capture it freely across domains. *)

type t = {
  vnodes : int;
  shards : int array; (* member shard ids, sorted, for introspection *)
  points : int64 array; (* vnode positions, sorted unsigned *)
  owners : int array; (* owners.(i) = shard id owning points.(i) *)
}

(* FNV-1a over the key bytes, then a SplitMix64 finalizer: FNV alone
   clusters sequential keys ("cl:0000000000000042") in the low bits; the
   mix scatters them across the whole circle. *)
let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let hash_key key =
  let h = ref fnv_offset in
  for i = 0 to String.length key - 1 do
    h :=
      Int64.mul (Int64.logxor !h (Int64.of_int (Char.code key.[i]))) fnv_prime
  done;
  Sim.Rng.mix64 !h

(* A vnode position mixes (shard, replica) so distinct shards never share
   point sequences and one shard's points are spread independently. *)
let vnode_point ~shard ~replica =
  Sim.Rng.mix64
    (Int64.logxor
       (Sim.Rng.mix64 (Int64.of_int (shard + 1)))
       (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (replica + 1))))

let create ?(vnodes = 128) shard_ids =
  if shard_ids = [] then invalid_arg "Ring.create: no shards";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  let shards = Array.of_list (List.sort_uniq compare shard_ids) in
  let n = Array.length shards in
  let entries = Array.make (n * vnodes) (0L, 0) in
  Array.iteri
    (fun i shard ->
      for r = 0 to vnodes - 1 do
        entries.((i * vnodes) + r) <- (vnode_point ~shard ~replica:r, shard)
      done)
    shards;
  (* Unsigned point order; ties (astronomically rare) break on shard id so
     the ring is a pure function of its membership set. *)
  Array.sort
    (fun (p1, s1) (p2, s2) ->
      match Int64.unsigned_compare p1 p2 with 0 -> compare s1 s2 | c -> c)
    entries;
  {
    vnodes;
    shards;
    points = Array.map fst entries;
    owners = Array.map snd entries;
  }

let shards t = Array.to_list t.shards

let vnodes t = t.vnodes

(* First point >= h (unsigned), wrapping to points.(0) past the top. *)
let owner_of_hash t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare t.points.(mid) h < 0 then lo := mid + 1
    else hi := mid
  done;
  t.owners.(if !lo = n then 0 else !lo)

let owner t key = owner_of_hash t (hash_key key)

let add_shard t shard =
  if Array.exists (fun s -> s = shard) t.shards then t
  else create ~vnodes:t.vnodes (shard :: Array.to_list t.shards)

let remove_shard t shard =
  let rest = List.filter (fun s -> s <> shard) (Array.to_list t.shards) in
  if List.length rest = Array.length t.shards then t else create ~vnodes:t.vnodes rest

(* Ownership census over a key universe — the balance diagnostic the
   QCheck properties and the hot-shard report both read. *)
let census t keys =
  let counts = Hashtbl.create (Array.length t.shards) in
  Array.iter (fun s -> Hashtbl.replace counts s 0) t.shards;
  List.iter
    (fun k ->
      let s = owner t k in
      Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    keys;
  Array.to_list (Array.map (fun s -> (s, Hashtbl.find counts s)) t.shards)
