(* Front-end dispatcher: routes client requests across the shard set by
   consistent hash, fans multi-gets out as per-shard sub-requests, and
   reassembles the partial responses into one client response without
   copying payload bytes.

   Ownership contract across the fan-out (what RefSan checks dynamically):

   - A partial response deserializes into refcounted [Zero_copy] windows
     of the dispatcher's rx buffer. Retaining a value into its pending
     slot takes one extra reference, then the parsed message is released
     — net effect, the slot owns exactly one reference and the rx buffer
     stays pinned until assembly.
   - Assembly moves each slot payload into the egress response; the send
     path consumes one reference per zero-copy payload (released on NIC
     completion / cumulative ACK), so handing the slot's reference to the
     stack is a transfer, not a leak.
   - Sub-threshold values are demoted to arena copies at assembly — the
     per-shard [Cornflakes.Adaptive] estimator decides, and both of its
     observation hooks are fed from this path. The slot reference is
     dropped at demotion.

   Pending slots are the only state that lives across handler
   invocations; everything else (arena copies, parsed messages) dies with
   the invocation, which is exactly the [Loadgen.Server] arena-reset
   contract. *)

(* How a method word shapes the fan-out: whether per-key response slots
   are kept for reassembly (gets) and whether request values ride along
   in the sub-requests (puts). The rows are bound from the schema-declared
   [Kv] service method ids once at create; the hot path consults the
   branchless table instead of comparing op constants. Unknown method
   words take the fallback (get-shaped) row, preserving the historical
   default. *)
type strategy = { keep_slots : bool; forward_vals : bool }

type slot = { owner : int; mutable payload : Wire.Payload.t option }

type group = {
  g_shard : int;
  g_slots : int array; (* slot indices, in sub-request key order *)
  mutable g_arrived : bool;
}

type pending = {
  client : int;
  client_id : int64;
  slots : slot array; (* one per requested key, request order *)
  groups : group list;
  mutable awaiting : int;
}

(* Exactly-once audit counters: the cluster experiment asserts the
   invariants at quiesce (started = completed, no duplicates, no orphans,
   every client id answered exactly once, table drained). *)
type audit = {
  fanouts_started : int;
  fanouts_completed : int;
  partials : int;
  dup_partials : int;
  orphan_partials : int;
  misaligned : int;
  in_flight : int;
  max_completions_per_id : int;
}

type t = {
  id : int;
  cpu : Memmodel.Cpu.t;
  ep : Net.Endpoint.t;
  tr : Net.Transport.t;
  server : Loadgen.Server.t;
  backend : Apps.Backend.t;
  ring : Ring.t;
  shard_index : (int, int) Hashtbl.t; (* shard endpoint id -> dense index *)
  adaptives : Cornflakes.Adaptive.t array; (* per shard index *)
  stash : Mem.Pinned.Pool.t; (* for non-refcounted partial payloads *)
  subreq_scratch : Wire.Dyn.t;
  resp_scratch : Wire.Dyn.t;
  (* Pooled in-place readers for the zc-RX path: requests and partial
     responses are validated once and accessed in the receive buffer;
     retained values become [Wire.Rc_view] slices, no [Dyn] in between. *)
  req_reader : Wire.Reader.t;
  partial_reader : Wire.Reader.t;
  strategies : strategy Rpc.Table.t; (* method word -> fan-out shape *)
  pending : (int, pending) Hashtbl.t; (* fan-out id -> pending *)
  mutable next_fanout : int;
  mutable started : int;
  mutable completed : int;
  mutable partials : int;
  mutable dup_partials : int;
  mutable orphan_partials : int;
  mutable misaligned : int;
  mutable zc_forwards : int;
  mutable copy_forwards : int;
  mutable stash_copies : int;
  completions : (int64, int) Hashtbl.t; (* client id -> responses sent *)
}

let fresh_fanout t =
  let id = t.next_fanout in
  t.next_fanout <- id + 1;
  id

(* Retain a payload beyond this handler invocation. Zero-copy windows take
   a reference; arena-backed views (a copying backend's deserialize) are
   stashed into a dispatcher-owned pinned buffer, since the arena resets
   when the handler returns. *)
let retain t ~cpu (p : Wire.Payload.t) =
  match p with
  | Wire.Payload.Zero_copy b ->
      Mem.Pinned.Buf.incr_ref ~cpu ~site:"Dispatcher.retain" b;
      Some p
  | Wire.Payload.Copied v | Wire.Payload.Literal v -> (
      match
        Mem.Pinned.Buf.alloc ~cpu ~site:"Dispatcher.stash" t.stash
          ~len:(max 1 v.Mem.View.len)
      with
      | buf ->
          if v.Mem.View.len > 0 then
            Mem.Pinned.Buf.blit_from ~cpu ~site:"Dispatcher.stash" buf ~src:v
              ~dst_off:0;
          t.stash_copies <- t.stash_copies + 1;
          Some (Wire.Payload.Zero_copy buf)
      | exception Mem.Pinned.Out_of_memory _ -> None)

(* Move a retained slot payload into the egress response: the per-source-
   shard adaptive estimator picks zero-copy (reference handed to the
   stack) or an arena copy (reference dropped here), and both arms feed
   the estimator its observation. *)
let forward t ~shard_idx (p : Wire.Payload.t) =
  let cpu = t.cpu in
  let a = t.adaptives.(shard_idx) in
  match p with
  | Wire.Payload.Zero_copy b ->
      let len = Mem.Pinned.Buf.len b in
      if len >= Cornflakes.Adaptive.threshold a then begin
        (* Keeping the pinned reference costs nothing now; the stack pays
           one completion-side SGE release later — that is the zc fixed
           cost the estimator tracks. *)
        let prm = Memmodel.Cpu.params cpu in
        Cornflakes.Adaptive.observe_zc a
          ~cycles:prm.Memmodel.Params.cost_completion_per_sge;
        t.zc_forwards <- t.zc_forwards + 1;
        p
      end
      else begin
        let c0 = Memmodel.Cpu.cycles cpu in
        let copied =
          Mem.Arena.copy_in ~cpu ~site:"Dispatcher.demote"
            (Net.Transport.arena t.tr) (Mem.Pinned.Buf.view b)
        in
        Mem.Pinned.Buf.decr_ref ~cpu ~site:"Dispatcher.demote" b;
        Cornflakes.Adaptive.observe_copy a ~bytes:len
          ~cycles:(Memmodel.Cpu.cycles cpu -. c0);
        t.copy_forwards <- t.copy_forwards + 1;
        Wire.Payload.Copied copied
      end
  | other -> other

let record_completion t client_id =
  Hashtbl.replace t.completions client_id
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.completions client_id))

(* --- Client request: route, group, fan out ----------------------------- *)

let charge_route t key =
  let cpu = t.cpu in
  let prm = Memmodel.Cpu.params cpu in
  Memmodel.Cpu.charge cpu Memmodel.Cpu.App prm.Memmodel.Params.cost_hash_op;
  ignore key

let handle_request t ~src req =
  let cpu = t.cpu in
  let client_id =
    Option.value ~default:(-1L) (Wire.Dyn.get_int req "id")
  in
  let op = Option.value ~default:Apps.Proto.op_get (Wire.Dyn.get_int req "op") in
  let st = Rpc.Table.dispatch t.strategies (Int64.to_int op) in
  let keys =
    List.filter_map
      (fun v -> match v with Wire.Dyn.Payload p -> Some p | _ -> None)
      (Wire.Dyn.get_list req "keys")
  in
  (* Route every key: hash the bytes (charged), look up the ring owner. *)
  let owners =
    List.map
      (fun p ->
        let key = Shard.key_string ~cpu p in
        charge_route t key;
        Ring.owner t.ring key)
      keys
  in
  let slots =
    Array.of_list (List.map (fun o -> { owner = o; payload = None }) owners)
  in
  (* Group slot indices by owner shard, preserving request order within a
     group (first-appearance group order keeps sub-requests deterministic). *)
  let groups =
    let acc = ref [] in
    Array.iteri
      (fun i s ->
        match List.find_opt (fun (sh, _) -> sh = s.owner) !acc with
        | Some (_, idxs) -> idxs := i :: !idxs
        | None -> acc := !acc @ [ (s.owner, ref [ i ]) ])
      slots;
    List.map
      (fun (sh, idxs) ->
        { g_shard = sh; g_slots = Array.of_list (List.rev !idxs); g_arrived = false })
      !acc
  in
  let groups =
    (* A put has one key; its group carries the values along. *)
    if st.forward_vals && groups = [] then []
    else groups
  in
  let fid = fresh_fanout t in
  let p =
    {
      client = src;
      client_id;
      slots = (if st.keep_slots then slots else [||]);
      groups;
      awaiting = List.length groups;
    }
  in
  if p.awaiting = 0 then begin
    (* Degenerate request (no keys): answer immediately, still exactly
       once. *)
    let resp = t.resp_scratch in
    Wire.Dyn.clear resp;
    Wire.Dyn.set_int resp "id" client_id;
    t.backend.Apps.Backend.send ~cpu t.tr ~dst:src resp;
    t.started <- t.started + 1;
    t.completed <- t.completed + 1;
    record_completion t client_id
  end
  else begin
    Hashtbl.replace t.pending fid p;
    t.started <- t.started + 1;
    let keys_arr = Array.of_list keys in
    let vals = Wire.Dyn.get_list req "vals" in
    List.iter
      (fun g ->
        let sub = t.subreq_scratch in
        Wire.Dyn.clear sub;
        Wire.Dyn.set_int sub "id" (Int64.of_int fid);
        Wire.Dyn.set_int sub "op" op;
        (match Wire.Dyn.get_int req "index" with
        | Some ix -> Wire.Dyn.set_int sub "index" ix
        | None -> ());
        Array.iter
          (fun slot_idx ->
            match retain t ~cpu keys_arr.(slot_idx) with
            | Some p -> Wire.Dyn.append sub "keys" (Wire.Dyn.Payload p)
            | None -> ())
          g.g_slots;
        if st.forward_vals then
          List.iter
            (fun v ->
              match v with
              | Wire.Dyn.Payload p -> (
                  match retain t ~cpu p with
                  | Some p -> Wire.Dyn.append sub "vals" (Wire.Dyn.Payload p)
                  | None -> ())
              | _ -> ())
            vals;
        t.backend.Apps.Backend.send ~cpu t.tr ~dst:g.g_shard sub)
      groups
  end

(* --- Partial response: slot fill, assemble on last arrival -------------- *)

let assemble t fid p =
  let cpu = t.cpu in
  Hashtbl.remove t.pending fid;
  let resp = t.resp_scratch in
  Wire.Dyn.clear resp;
  Wire.Dyn.set_int resp "id" p.client_id;
  Array.iter
    (fun s ->
      match s.payload with
      | Some payload ->
          let shard_idx =
            Option.value ~default:0 (Hashtbl.find_opt t.shard_index s.owner)
          in
          Wire.Dyn.append resp "vals"
            (Wire.Dyn.Payload (forward t ~shard_idx payload));
          s.payload <- None
      | None -> ())
    p.slots;
  t.backend.Apps.Backend.send ~cpu t.tr ~dst:p.client resp;
  t.completed <- t.completed + 1;
  record_completion t p.client_id

let handle_partial t ~src resp_msg =
  let cpu = t.cpu in
  t.partials <- t.partials + 1;
  let fid =
    match Wire.Dyn.get_int resp_msg "id" with
    | Some id -> Int64.to_int id
    | None -> -1
  in
  match Hashtbl.find_opt t.pending fid with
  | None -> t.orphan_partials <- t.orphan_partials + 1
  | Some p -> (
      match List.find_opt (fun g -> g.g_shard = src) p.groups with
      | None -> t.orphan_partials <- t.orphan_partials + 1
      | Some g when g.g_arrived -> t.dup_partials <- t.dup_partials + 1
      | Some g ->
          g.g_arrived <- true;
          let vals =
            List.filter_map
              (fun v ->
                match v with Wire.Dyn.Payload pl -> Some pl | _ -> None)
              (Wire.Dyn.get_list resp_msg "vals")
          in
          let vals_arr = Array.of_list vals in
          if Array.length vals_arr <> Array.length g.g_slots && p.slots <> [||]
          then t.misaligned <- t.misaligned + 1;
          Array.iteri
            (fun pos slot_idx ->
              if pos < Array.length vals_arr && p.slots <> [||] then
                match retain t ~cpu vals_arr.(pos) with
                | Some payload -> p.slots.(slot_idx).payload <- Some payload
                | None -> ())
            g.g_slots;
          p.awaiting <- p.awaiting - 1;
          if p.awaiting = 0 then assemble t fid p)

(* --- In-place fan-out path (zc-RX) ------------------------------------- *)

(* Client request over the validated reader: keys are hashed straight out
   of the receive buffer for routing, and each forwarded key/value becomes
   an [Rc_view] slice whose reference transfers to the sub-request's send
   path — the request bytes are never re-materialized. *)
let handle_request_zc t ~src r =
  let cpu = t.cpu in
  let client_id =
    if Wire.Reader.present r Apps.Proto.req_id then
      Wire.Reader.get_u64 r Apps.Proto.req_id
    else -1L
  in
  let op =
    if Wire.Reader.present r Apps.Proto.req_op then
      Wire.Reader.get_u64 r Apps.Proto.req_op
    else Apps.Proto.op_get
  in
  let st = Rpc.Table.dispatch t.strategies (Int64.to_int op) in
  let nkeys =
    if Wire.Reader.present r Apps.Proto.req_keys then
      Wire.Reader.count r Apps.Proto.req_keys
    else 0
  in
  let owners =
    Array.init nkeys (fun j ->
        let key = Wire.Reader.elem_string r Apps.Proto.req_keys ~j in
        charge_route t key;
        Ring.owner t.ring key)
  in
  let slots = Array.map (fun o -> { owner = o; payload = None }) owners in
  let groups =
    let acc = ref [] in
    Array.iteri
      (fun i s ->
        match List.find_opt (fun (sh, _) -> sh = s.owner) !acc with
        | Some (_, idxs) -> idxs := i :: !idxs
        | None -> acc := !acc @ [ (s.owner, ref [ i ]) ])
      slots;
    List.map
      (fun (sh, idxs) ->
        { g_shard = sh; g_slots = Array.of_list (List.rev !idxs); g_arrived = false })
      !acc
  in
  let fid = fresh_fanout t in
  let p =
    {
      client = src;
      client_id;
      slots = (if st.keep_slots then slots else [||]);
      groups;
      awaiting = List.length groups;
    }
  in
  if p.awaiting = 0 then begin
    let resp = t.resp_scratch in
    Wire.Dyn.clear resp;
    Wire.Dyn.set_int resp "id" client_id;
    t.backend.Apps.Backend.send ~cpu t.tr ~dst:src resp;
    t.started <- t.started + 1;
    t.completed <- t.completed + 1;
    record_completion t client_id
  end
  else begin
    Hashtbl.replace t.pending fid p;
    t.started <- t.started + 1;
    let nvals =
      if st.forward_vals && Wire.Reader.present r Apps.Proto.req_vals then
        Wire.Reader.count r Apps.Proto.req_vals
      else 0
    in
    List.iter
      (fun g ->
        let sub = t.subreq_scratch in
        Wire.Dyn.clear sub;
        Wire.Dyn.set_int sub "id" (Int64.of_int fid);
        Wire.Dyn.set_int sub "op" op;
        if Wire.Reader.present r Apps.Proto.req_index then
          Wire.Dyn.set_int sub "index"
            (Wire.Reader.get_u64 r Apps.Proto.req_index);
        Array.iter
          (fun slot_idx ->
            let rc =
              Wire.Reader.elem_rc ~site:"Dispatcher.retain" r
                Apps.Proto.req_keys ~j:slot_idx
            in
            Wire.Dyn.append sub "keys"
              (Wire.Dyn.Payload (Wire.Rc_view.to_payload rc)))
          g.g_slots;
        for j = 0 to nvals - 1 do
          let rc =
            Wire.Reader.elem_rc ~site:"Dispatcher.retain" r Apps.Proto.req_vals
              ~j
          in
          Wire.Dyn.append sub "vals"
            (Wire.Dyn.Payload (Wire.Rc_view.to_payload rc))
        done;
        t.backend.Apps.Backend.send ~cpu t.tr ~dst:g.g_shard sub)
      groups
  end

(* Partial response over the validated reader: each value retained into its
   pending slot is an [Rc_view] slice of the shard's response frame — the
   slot owns exactly one reference and the RX ring slot stays pinned until
   assembly hands it to the egress send (same ownership automaton as the
   [Dyn] path, minus the parse). *)
let handle_partial_zc t ~src r =
  t.partials <- t.partials + 1;
  let fid =
    if Wire.Reader.present r Apps.Proto.resp_id then
      Int64.to_int (Wire.Reader.get_u64 r Apps.Proto.resp_id)
    else -1
  in
  match Hashtbl.find_opt t.pending fid with
  | None -> t.orphan_partials <- t.orphan_partials + 1
  | Some p -> (
      match List.find_opt (fun g -> g.g_shard = src) p.groups with
      | None -> t.orphan_partials <- t.orphan_partials + 1
      | Some g when g.g_arrived -> t.dup_partials <- t.dup_partials + 1
      | Some g ->
          g.g_arrived <- true;
          let nvals =
            if Wire.Reader.present r Apps.Proto.resp_vals then
              Wire.Reader.count r Apps.Proto.resp_vals
            else 0
          in
          if nvals <> Array.length g.g_slots && p.slots <> [||] then
            t.misaligned <- t.misaligned + 1;
          Array.iteri
            (fun pos slot_idx ->
              if pos < nvals && p.slots <> [||] then begin
                let rc =
                  Wire.Reader.elem_rc ~site:"Dispatcher.retain" r
                    Apps.Proto.resp_vals ~j:pos
                in
                p.slots.(slot_idx).payload <- Some (Wire.Rc_view.to_payload rc)
              end)
            g.g_slots;
          p.awaiting <- p.awaiting - 1;
          if p.awaiting = 0 then assemble t fid p)

let handler t ~src buf =
  let cpu = t.cpu in
  (if t.backend.Apps.Backend.zc_rx then
     if Hashtbl.mem t.shard_index src then begin
       Wire.Reader.validate ~cpu t.partial_reader buf;
       handle_partial_zc t ~src t.partial_reader
     end
     else begin
       Wire.Reader.validate ~cpu t.req_reader buf;
       handle_request_zc t ~src t.req_reader
     end
   else if Hashtbl.mem t.shard_index src then begin
     let resp_msg = t.backend.Apps.Backend.recv ~cpu t.tr Apps.Proto.resp buf in
     handle_partial t ~src resp_msg;
     Wire.Dyn.release ~cpu resp_msg
   end
   else begin
     let req = t.backend.Apps.Backend.recv ~cpu t.tr Apps.Proto.req buf in
     handle_request t ~src req;
     Wire.Dyn.release ~cpu req
   end);
  Mem.Pinned.Buf.decr_ref ~cpu ~site:"Dispatcher.handler_done" buf

let create ~fabric ~registry ~space ~kind ~backend ~queue_limit ~id ~ring
    ~shard_ids ~stash_classes =
  let cpu = Memmodel.Cpu.create Memmodel.Params.default in
  let ep = Net.Endpoint.create ~cpu fabric registry ~id in
  let tr = Apps.Rig.transport_for ~kind ep in
  let server = Loadgen.Server.create ~queue_limit tr cpu in
  let shard_index = Hashtbl.create 16 in
  List.iteri (fun i sid -> Hashtbl.replace shard_index sid i) shard_ids;
  let stash =
    Mem.Pinned.Pool.create space ~name:"dispatcher-stash"
      ~classes:stash_classes
  in
  Mem.Registry.register registry stash;
  let t =
    {
      id;
      cpu;
      ep;
      tr;
      server;
      backend;
      ring;
      shard_index;
      (* Seeded low: forwarding an already-pinned rx window has near-zero
         marginal cost, so the estimator starts zc-happy and the copy arm
         earns its keep from observations. *)
      adaptives =
        Array.init (List.length shard_ids) (fun _ ->
            Cornflakes.Adaptive.create ~initial:64 ());
      stash;
      subreq_scratch = Wire.Dyn.create Apps.Proto.req;
      resp_scratch = Wire.Dyn.create Apps.Proto.resp;
      req_reader = Wire.Reader.create Apps.Proto.req;
      partial_reader = Wire.Reader.create Apps.Proto.resp;
      strategies =
        (let get_shaped = { keep_slots = true; forward_vals = false } in
         let tbl =
           Rpc.Table.create ~n:Apps.Kv_rpc.Kv_service.method_count
             ~fallback:get_shaped
         in
         Rpc.Table.set tbl
           ~id:(Int64.to_int Apps.Kv_rpc.Kv_service.id_get)
           get_shaped;
         Rpc.Table.set tbl
           ~id:(Int64.to_int Apps.Kv_rpc.Kv_service.id_get_index)
           get_shaped;
         Rpc.Table.set tbl
           ~id:(Int64.to_int Apps.Kv_rpc.Kv_service.id_put)
           { keep_slots = false; forward_vals = true };
         tbl);
      pending = Hashtbl.create 4096;
      next_fanout = 1;
      started = 0;
      completed = 0;
      partials = 0;
      dup_partials = 0;
      orphan_partials = 0;
      misaligned = 0;
      zc_forwards = 0;
      copy_forwards = 0;
      stash_copies = 0;
      completions = Hashtbl.create 4096;
    }
  in
  Loadgen.Server.set_handler server (fun ~src buf -> handler t ~src buf);
  (* Open the dispatcher->shard connections up front: establishment is a
     topology-build cost, not a measured-window cost (no-op on UDP). *)
  List.iter (fun sid -> Net.Transport.connect tr ~peer:sid) shard_ids;
  t

let id t = t.id

let server t = t.server

let endpoint t = t.ep

let transport t = t.tr

let cpu t = t.cpu

let ring t = t.ring

let adaptive t ~shard_idx = t.adaptives.(shard_idx)

let zc_forwards t = t.zc_forwards

let copy_forwards t = t.copy_forwards

let stash_copies t = t.stash_copies

let audit t =
  {
    fanouts_started = t.started;
    fanouts_completed = t.completed;
    partials = t.partials;
    dup_partials = t.dup_partials;
    orphan_partials = t.orphan_partials;
    misaligned = t.misaligned;
    in_flight = Hashtbl.length t.pending;
    max_completions_per_id =
      Hashtbl.fold (fun _ n acc -> max n acc) t.completions 0;
  }

let exactly_once a =
  a.fanouts_started = a.fanouts_completed
  && a.dup_partials = 0 && a.orphan_partials = 0 && a.misaligned = 0
  && a.in_flight = 0
  && a.max_completions_per_id <= 1

(* Tier-wide view: sums are exact; [max_completions_per_id] is exact as
   long as each client id reaches one dispatcher (the topology pins
   connections, so it does). *)
let merge_audits audits =
  List.fold_left
    (fun acc a ->
      {
        fanouts_started = acc.fanouts_started + a.fanouts_started;
        fanouts_completed = acc.fanouts_completed + a.fanouts_completed;
        partials = acc.partials + a.partials;
        dup_partials = acc.dup_partials + a.dup_partials;
        orphan_partials = acc.orphan_partials + a.orphan_partials;
        misaligned = acc.misaligned + a.misaligned;
        in_flight = acc.in_flight + a.in_flight;
        max_completions_per_id =
          max acc.max_completions_per_id a.max_completions_per_id;
      })
    {
      fanouts_started = 0;
      fanouts_completed = 0;
      partials = 0;
      dup_partials = 0;
      orphan_partials = 0;
      misaligned = 0;
      in_flight = 0;
      max_completions_per_id = 0;
    }
    audits
