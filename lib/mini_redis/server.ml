type mode = Native | Cornflakes_backed of Cornflakes.Config.t

let mode_name = function
  | Native -> "redis-native"
  | Cornflakes_backed _ -> "redis-cornflakes"

type t = {
  rig : Apps.Rig.t;
  mode : mode;
  store : Kvstore.Store.t;
  pool : Mem.Pinned.Pool.t;
  workload : Workload.Spec.t;
  list_values : bool;
  client_rng : Sim.Rng.t;
}

let store t = t.store

let arg_string ?cpu (v : Resp.value) =
  match v with
  | Resp.Bulk view -> (
      (match cpu with
      | None -> ()
      | Some cpu ->
          Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:view.Mem.View.addr
            ~len:view.Mem.View.len);
      Mem.View.to_string view)
  | _ -> raise (Resp.Protocol_error "expected bulk argument")

(* Case-insensitive command dispatch straight over the decoded view: the
   command name never leaves the receive buffer (no [to_string], no
   [uppercase_ascii] allocation per request). [name] must be uppercase. *)
let cmd_is (v : Resp.value) name =
  match v with
  | Resp.Bulk view ->
      let n = String.length name in
      view.Mem.View.len = n
      && begin
           let ok = ref true in
           for i = 0 to n - 1 do
             let c =
               Char.uppercase_ascii
                 (Bytes.get view.Mem.View.data (view.Mem.View.off + i))
             in
             if c <> String.unsafe_get name i then ok := false
           done;
           !ok
         end
  | _ -> false

let charge_cmd ~cpu (v : Resp.value) =
  match v with
  | Resp.Bulk view ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:view.Mem.View.addr
        ~len:view.Mem.View.len
  | _ -> ()

(* Execute a command against the store; returns the reply as values still
   referencing the store's buffers (no copies yet — the serializer decides
   how the bytes move). *)
let execute t ~cpu req =
  match req with
  | Resp.Array (cmd :: args) -> (
      charge_cmd ~cpu cmd;
      match (cmd, args) with
      | c, [ key ] when cmd_is c "GET" -> (
          match Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key) with
          | Some (Kvstore.Store.Single buf) -> Resp.Bulk (Mem.Pinned.Buf.view buf)
          | Some value -> (
              match Kvstore.Store.buffers value with
              | buf :: _ -> Resp.Bulk (Mem.Pinned.Buf.view buf)
              | [] -> Resp.Null)
          | None -> Resp.Null)
      | c, keys when cmd_is c "MGET" ->
          Resp.Array
            (List.map
               (fun key ->
                 match
                   Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key)
                 with
                 | Some value -> (
                     match Kvstore.Store.buffers value with
                     | buf :: _ -> Resp.Bulk (Mem.Pinned.Buf.view buf)
                     | [] -> Resp.Null)
                 | None -> Resp.Null)
               keys)
      | c, [ key; _start; _stop ] when cmd_is c "LRANGE" -> (
          (* The experiments query whole lists: LRANGE key 0 -1. *)
          match Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key) with
          | Some value ->
              Resp.Array
                (List.map
                   (fun buf -> Resp.Bulk (Mem.Pinned.Buf.view buf))
                   (Kvstore.Store.buffers value))
          | None -> Resp.Array [])
      | c, [ key; payload ] when cmd_is c "SET" -> (
          let key = arg_string ~cpu key in
          match payload with
          | Resp.Bulk src -> (
              match Mem.Pinned.Buf.alloc ~cpu t.pool ~len:src.Mem.View.len with
              | buf ->
                  Mem.Pinned.Buf.blit_from ~cpu buf ~src ~dst_off:0;
                  Kvstore.Store.put ~cpu t.store ~key (Kvstore.Store.Single buf);
                  Resp.Simple "OK"
              | exception Mem.Pinned.Out_of_memory _ ->
                  Resp.Error "OOM command not allowed")
          | _ -> Resp.Error "ERR bad SET payload")
      | c, keys when cmd_is c "DEL" ->
          let removed =
            List.fold_left
              (fun acc key ->
                let key = arg_string ~cpu key in
                match Kvstore.Store.get ~cpu t.store ~key with
                | Some _ ->
                    Kvstore.Store.remove ~cpu t.store ~key;
                    acc + 1
                | None -> acc)
              0 keys
          in
          Resp.Int removed
      | c, keys when cmd_is c "EXISTS" ->
          Resp.Int
            (List.fold_left
               (fun acc key ->
                 match
                   Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key)
                 with
                 | Some _ -> acc + 1
                 | None -> acc)
               0 keys)
      | c, [ key ] when cmd_is c "STRLEN" -> (
          match Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key) with
          | Some v -> Resp.Int (Kvstore.Store.value_len v)
          | None -> Resp.Int 0)
      | c, [] when cmd_is c "PING" -> Resp.Simple "PONG"
      | _, _ ->
          Resp.Error
            ("ERR unknown command '"
            ^ String.uppercase_ascii (arg_string ~cpu cmd)
            ^ "'"))
  | _ -> Resp.Error "ERR protocol: expected command array"

(* Redis's handwritten serialization, over the integrated stack: the reply
   (values included) is composed directly into a DMA-safe output buffer —
   the paper's baseline integration minimises unnecessary copies, so this
   is a single copy of every value byte. *)
let send_native t ~cpu ~dst reply =
  let tr = t.rig.Apps.Rig.server_tr in
  let ep = Net.Transport.endpoint tr in
  let headroom = Net.Transport.headroom tr in
  let len = Resp.encoded_len reply in
  let staging = Net.Endpoint.alloc_tx ~cpu ep ~len:(headroom + len) in
  let window =
    Mem.View.sub (Mem.Pinned.Buf.view staging) ~off:headroom ~len
  in
  let w = Wire.Cursor.Writer.create ~cpu window in
  Resp.encode ~cpu w reply;
  Net.Transport.send_inline ~cpu tr ~dst ~segments:[ staging ]

let send_cornflakes t ~cpu ~dst config reply =
  let tr = t.rig.Apps.Rig.server_tr in
  let ep = Net.Transport.endpoint tr in
  (* Replies become Cornflakes objects; each bulk goes through the hybrid
     CFPtr constructor. *)
  let msg = Wire.Dyn.create Apps.Proto.resp in
  Wire.Dyn.set_int msg "id" 0L;
  let add_bulk view =
    Wire.Dyn.append msg "vals"
      (Wire.Dyn.Payload (Cornflakes.Cf_ptr.make ~cpu config ep view))
  in
  (match reply with
  | Resp.Bulk view -> add_bulk view
  | Resp.Array elems ->
      List.iter
        (fun e -> match e with Resp.Bulk view -> add_bulk view | _ -> ())
        elems
  | Resp.Simple _ | Resp.Error _ | Resp.Int _ | Resp.Null -> ());
  Cornflakes.Send.send_via ~cpu config tr ~dst msg

(* Redis spends considerable time per command outside serialization:
   command-table dispatch, SDS/robj bookkeeping, LRU/expiry accounting.
   Both serializers pay it equally; it is why serialization gains inside
   Redis are smaller than in the lean custom store (Table 3 vs Table 1). *)
let command_overhead_cycles = 2500.0

let handler t ~src buf =
  let cpu = t.rig.Apps.Rig.cpu in
  Memmodel.Cpu.charge cpu Memmodel.Cpu.App command_overhead_cycles;
  match Resp.decode ~cpu (Mem.Pinned.Buf.view buf) with
  | exception Resp.Protocol_error _ -> Mem.Pinned.Buf.decr_ref ~cpu buf
  | req ->
      let reply = execute t ~cpu req in
      (match t.mode with
      | Native -> send_native t ~cpu ~dst:src reply
      | Cornflakes_backed config -> send_cornflakes t ~cpu ~dst:src config reply);
      Mem.Pinned.Buf.decr_ref ~cpu buf

let install rig mode ~workload ~list_values =
  let pool =
    Apps.Rig.data_pool rig
      ~name:("redis-" ^ workload.Workload.Spec.name)
      ~classes:workload.Workload.Spec.pool_classes
  in
  let store =
    Kvstore.Store.create rig.Apps.Rig.space
      ~name:("redis-" ^ workload.Workload.Spec.name)
      ~capacity:workload.Workload.Spec.store_capacity
  in
  workload.Workload.Spec.populate store ~pool;
  let t =
    {
      rig;
      mode;
      store;
      pool;
      workload;
      list_values;
      client_rng = Sim.Rng.split rig.Apps.Rig.rng;
    }
  in
  Loadgen.Server.set_handler rig.Apps.Rig.server (fun ~src buf ->
      handler t ~src buf);
  t

let send_op t op client ~dst ~id =
  ignore id;
  let space = t.rig.Apps.Rig.space in
  let parts =
    match op with
    | Workload.Spec.Get { keys = [ key ] } when t.list_values ->
        [ "LRANGE"; key; "0"; "-1" ]
    | Workload.Spec.Get { keys = [ key ] } -> [ "GET"; key ]
    | Workload.Spec.Get { keys } -> "MGET" :: keys
    | Workload.Spec.Get_index { key; index } ->
        [ "LRANGE"; key; string_of_int index; string_of_int index ]
    | Workload.Spec.Put { key; sizes } ->
        let n = match sizes with [ n ] -> n | _ -> List.fold_left ( + ) 0 sizes in
        [ "SET"; key; Workload.Spec.filler (max 1 n) ]
  in
  Net.Transport.send_string client ~dst
    (Resp.to_string space (Resp.command space parts))

let send_next t client ~dst ~id =
  send_op t (t.workload.Workload.Spec.next t.client_rng) client ~dst ~id
