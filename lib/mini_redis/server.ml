type mode = Native | Cornflakes_backed of Cornflakes.Config.t

let mode_name = function
  | Native -> "redis-native"
  | Cornflakes_backed _ -> "redis-cornflakes"

type t = {
  rig : Apps.Rig.t;
  mode : mode;
  store : Kvstore.Store.t;
  pool : Mem.Pinned.Pool.t;
  workload : Workload.Spec.t;
  list_values : bool;
  client_rng : Sim.Rng.t;
}

let store t = t.store

let arg_string ?cpu (v : Resp.value) =
  match v with
  | Resp.Bulk view -> (
      (match cpu with
      | None -> ()
      | Some cpu ->
          Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:view.Mem.View.addr
            ~len:view.Mem.View.len);
      Mem.View.to_string view)
  | _ -> raise (Resp.Protocol_error "expected bulk argument")

(* Case-insensitive command dispatch straight over the decoded view: the
   command name never leaves the receive buffer (no [to_string], no
   [uppercase_ascii] allocation per request). [name] must be uppercase. *)
let cmd_is (v : Resp.value) name =
  match v with
  | Resp.Bulk view ->
      let n = String.length name in
      view.Mem.View.len = n
      && begin
           let ok = ref true in
           for i = 0 to n - 1 do
             let c =
               Char.uppercase_ascii
                 (Bytes.get view.Mem.View.data (view.Mem.View.off + i))
             in
             if c <> String.unsafe_get name i then ok := false
           done;
           !ok
         end
  | _ -> false

let charge_cmd ~cpu (v : Resp.value) =
  match v with
  | Resp.Bulk view ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.App ~addr:view.Mem.View.addr
        ~len:view.Mem.View.len
  | _ -> ()

(* --- Schema-driven command dispatch ------------------------------------ *)

(* The command set is declared as the [Redis] service in the apps schema
   ([Apps.Kv_rpc]): the candidate list the scanner probes and the dispatch
   rows below are both keyed by the schema's compact method ids, the same
   single source of truth the kv store and the cluster use for their op
   tags. RESP keeps its own wire format — only the dispatch is schema-
   driven. *)
module Rsvc = Apps.Kv_rpc.Redis_service

(* A command that matches no row (or a row given the wrong argument
   shape) answers the redis unknown-command error, as before. *)
let err_unknown ~cpu cmd =
  Resp.Error
    ("ERR unknown command '" ^ String.uppercase_ascii (arg_string ~cpu cmd) ^ "'")

(* Candidate commands in declaration order: uppercase RESP command name,
   schema method id. *)
let commands =
  Array.map
    (fun (m : Schema.Desc.method_) ->
      (String.uppercase_ascii m.Schema.Desc.meth_name, m.Schema.Desc.meth_id))
    Rsvc.svc.Schema.Desc.methods

(* Method word of a decoded command: probe the candidates with the
   allocation-free in-place compare; [-1] (the fallback row) when none
   match. Probe order equals declaration order, so the scan cost per
   command is unchanged from the hand-rolled chain. *)
let command_id cmd =
  let n = Array.length commands in
  let rec scan i =
    if i >= n then -1
    else
      let name, id = commands.(i) in
      if cmd_is cmd name then id else scan (i + 1)
  in
  scan 0

let exec_get t ~cpu cmd args =
  match args with
  | [ key ] -> (
      match Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key) with
      | Some (Kvstore.Store.Single buf) -> Resp.Bulk (Mem.Pinned.Buf.view buf)
      | Some value -> (
          match Kvstore.Store.buffers value with
          | buf :: _ -> Resp.Bulk (Mem.Pinned.Buf.view buf)
          | [] -> Resp.Null)
      | None -> Resp.Null)
  | _ -> err_unknown ~cpu cmd

let exec_mget t ~cpu _cmd keys =
  Resp.Array
    (List.map
       (fun key ->
         match Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key) with
         | Some value -> (
             match Kvstore.Store.buffers value with
             | buf :: _ -> Resp.Bulk (Mem.Pinned.Buf.view buf)
             | [] -> Resp.Null)
         | None -> Resp.Null)
       keys)

let exec_lrange t ~cpu cmd args =
  match args with
  | [ key; _start; _stop ] -> (
      (* The experiments query whole lists: LRANGE key 0 -1. *)
      match Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key) with
      | Some value ->
          Resp.Array
            (List.map
               (fun buf -> Resp.Bulk (Mem.Pinned.Buf.view buf))
               (Kvstore.Store.buffers value))
      | None -> Resp.Array [])
  | _ -> err_unknown ~cpu cmd

let exec_set t ~cpu cmd args =
  match args with
  | [ key; payload ] -> (
      let key = arg_string ~cpu key in
      match payload with
      | Resp.Bulk src -> (
          match Mem.Pinned.Buf.alloc ~cpu t.pool ~len:src.Mem.View.len with
          | buf ->
              Mem.Pinned.Buf.blit_from ~cpu buf ~src ~dst_off:0;
              Kvstore.Store.put ~cpu t.store ~key (Kvstore.Store.Single buf);
              Resp.Simple "OK"
          | exception Mem.Pinned.Out_of_memory _ ->
              Resp.Error "OOM command not allowed")
      | _ -> Resp.Error "ERR bad SET payload")
  | _ -> err_unknown ~cpu cmd

let exec_del t ~cpu _cmd keys =
  let removed =
    List.fold_left
      (fun acc key ->
        let key = arg_string ~cpu key in
        match Kvstore.Store.get ~cpu t.store ~key with
        | Some _ ->
            Kvstore.Store.remove ~cpu t.store ~key;
            acc + 1
        | None -> acc)
      0 keys
  in
  Resp.Int removed

let exec_exists t ~cpu _cmd keys =
  Resp.Int
    (List.fold_left
       (fun acc key ->
         match Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key) with
         | Some _ -> acc + 1
         | None -> acc)
       0 keys)

let exec_strlen t ~cpu cmd args =
  match args with
  | [ key ] -> (
      match Kvstore.Store.get ~cpu t.store ~key:(arg_string ~cpu key) with
      | Some v -> Resp.Int (Kvstore.Store.value_len v)
      | None -> Resp.Int 0)
  | _ -> err_unknown ~cpu cmd

let exec_ping _t ~cpu cmd args =
  match args with [] -> Resp.Simple "PONG" | _ -> err_unknown ~cpu cmd

(* The dispatch table, one row per schema-declared method id. *)
let exec_table =
  let fallback _t ~cpu cmd _args = err_unknown ~cpu cmd in
  let tbl = Rpc.Table.create ~n:Rsvc.method_count ~fallback in
  let set id row = Rpc.Table.set tbl ~id:(Int64.to_int id) row in
  set Rsvc.id_get exec_get;
  set Rsvc.id_mget exec_mget;
  set Rsvc.id_lrange exec_lrange;
  set Rsvc.id_set exec_set;
  set Rsvc.id_del exec_del;
  set Rsvc.id_exists exec_exists;
  set Rsvc.id_strlen exec_strlen;
  set Rsvc.id_ping exec_ping;
  tbl

(* Execute a command against the store; returns the reply as values still
   referencing the store's buffers (no copies yet — the serializer decides
   how the bytes move). *)
let execute t ~cpu req =
  match req with
  | Resp.Array (cmd :: args) ->
      charge_cmd ~cpu cmd;
      (Rpc.Table.dispatch exec_table (command_id cmd)) t ~cpu cmd args
  | _ -> Resp.Error "ERR protocol: expected command array"

(* Redis's handwritten serialization, over the integrated stack: the reply
   (values included) is composed directly into a DMA-safe output buffer —
   the paper's baseline integration minimises unnecessary copies, so this
   is a single copy of every value byte. *)
let send_native t ~cpu ~dst reply =
  let tr = t.rig.Apps.Rig.server_tr in
  let ep = Net.Transport.endpoint tr in
  let headroom = Net.Transport.headroom tr in
  let len = Resp.encoded_len reply in
  let staging = Net.Endpoint.alloc_tx ~cpu ep ~len:(headroom + len) in
  let window =
    Mem.View.sub (Mem.Pinned.Buf.view staging) ~off:headroom ~len
  in
  let w = Wire.Cursor.Writer.create ~cpu window in
  Resp.encode ~cpu w reply;
  Net.Transport.send_inline ~cpu tr ~dst ~segments:[ staging ]

let send_cornflakes t ~cpu ~dst config reply =
  let tr = t.rig.Apps.Rig.server_tr in
  let ep = Net.Transport.endpoint tr in
  (* Replies become Cornflakes objects; each bulk goes through the hybrid
     CFPtr constructor. *)
  let msg = Wire.Dyn.create Apps.Proto.resp in
  Wire.Dyn.set_int msg "id" 0L;
  let add_bulk view =
    Wire.Dyn.append msg "vals"
      (Wire.Dyn.Payload (Cornflakes.Cf_ptr.make ~cpu config ep view))
  in
  (match reply with
  | Resp.Bulk view -> add_bulk view
  | Resp.Array elems ->
      List.iter
        (fun e -> match e with Resp.Bulk view -> add_bulk view | _ -> ())
        elems
  | Resp.Simple _ | Resp.Error _ | Resp.Int _ | Resp.Null -> ());
  Cornflakes.Send.send_via ~cpu config tr ~dst msg

(* Redis spends considerable time per command outside serialization:
   command-table dispatch, SDS/robj bookkeeping, LRU/expiry accounting.
   Both serializers pay it equally; it is why serialization gains inside
   Redis are smaller than in the lean custom store (Table 3 vs Table 1). *)
let command_overhead_cycles = 2500.0

let handler t ~src buf =
  let cpu = t.rig.Apps.Rig.cpu in
  Memmodel.Cpu.charge cpu Memmodel.Cpu.App command_overhead_cycles;
  match Resp.decode ~cpu (Mem.Pinned.Buf.view buf) with
  | exception Resp.Protocol_error _ -> Mem.Pinned.Buf.decr_ref ~cpu buf
  | req ->
      let reply = execute t ~cpu req in
      (match t.mode with
      | Native -> send_native t ~cpu ~dst:src reply
      | Cornflakes_backed config -> send_cornflakes t ~cpu ~dst:src config reply);
      Mem.Pinned.Buf.decr_ref ~cpu buf

let install rig mode ~workload ~list_values =
  let pool =
    Apps.Rig.data_pool rig
      ~name:("redis-" ^ workload.Workload.Spec.name)
      ~classes:workload.Workload.Spec.pool_classes
  in
  let store =
    Kvstore.Store.create rig.Apps.Rig.space
      ~name:("redis-" ^ workload.Workload.Spec.name)
      ~capacity:workload.Workload.Spec.store_capacity
  in
  workload.Workload.Spec.populate store ~pool;
  let t =
    {
      rig;
      mode;
      store;
      pool;
      workload;
      list_values;
      client_rng = Sim.Rng.split rig.Apps.Rig.rng;
    }
  in
  Loadgen.Server.set_handler rig.Apps.Rig.server (fun ~src buf ->
      handler t ~src buf);
  t

let send_op t op client ~dst ~id =
  ignore id;
  let space = t.rig.Apps.Rig.space in
  let parts =
    match op with
    | Workload.Spec.Get { keys = [ key ] } when t.list_values ->
        [ "LRANGE"; key; "0"; "-1" ]
    | Workload.Spec.Get { keys = [ key ] } -> [ "GET"; key ]
    | Workload.Spec.Get { keys } -> "MGET" :: keys
    | Workload.Spec.Get_index { key; index } ->
        [ "LRANGE"; key; string_of_int index; string_of_int index ]
    | Workload.Spec.Put { key; sizes } ->
        let n = match sizes with [ n ] -> n | _ -> List.fold_left ( + ) 0 sizes in
        [ "SET"; key; Workload.Spec.filler (max 1 n) ]
  in
  Net.Transport.send_string client ~dst
    (Resp.to_string space (Resp.command space parts))

let send_next t client ~dst ~id =
  send_op t (t.workload.Workload.Spec.next t.client_rng) client ~dst ~id
