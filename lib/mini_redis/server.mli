(** Mini-Redis: GET / SET / MGET / LRANGE over the pinned-memory store,
    with two reply serializers (§6.2.2):

    - [Native]: Redis's handwritten serialization — the reply (including
      every value's bytes) is composed into a contiguous reply buffer, which
      the stack then copies into DMA-safe staging. Requests and replies are
      RESP2.
    - [Cornflakes]: replies are Cornflakes objects; values ride zero-copy
      when the hybrid threshold says so. Requests remain RESP2 (they are
      tiny), so both modes pay identical request-parsing costs.

    Responses carry no request id (RESP has none), so clients match
    responses FIFO, as Redis pipelining does. The server replies over the
    rig's transport — over a [`Tcp] rig this is RESP served on real TCP
    connections, as Redis runs in production. *)

type mode = Native | Cornflakes_backed of Cornflakes.Config.t

val mode_name : mode -> string

type t

(** [install rig mode ~workload ~list_values] populates the store and
    installs the command handler. [list_values] selects the client command:
    LRANGE for linked-list values, GET/MGET otherwise. *)
val install :
  Apps.Rig.t -> mode -> workload:Workload.Spec.t -> list_values:bool -> t

val store : t -> Kvstore.Store.t

(** Client-side: send the RESP command for a workload op (FIFO matching —
    [id] ignored). *)
val send_op :
  t -> Workload.Spec.op -> Net.Transport.t -> dst:int -> id:int -> unit

val send_next : t -> Net.Transport.t -> dst:int -> id:int -> unit
