(** Rendering of RefSan results: per-buffer leak lines, diagnostic lines,
    and the "[N] leaks, [M] hazards" roll-up. *)

(** ["[site Tcp.rtx_queue]"] — the one way a site is rendered, shared by
    RefSan quiesce reports and StatCheck findings so dynamic and static
    reports for the same code grep to each other. *)
val site_label : string -> string

(** Two lines per leaked buffer: what leaked (with alloc provenance) and the
    sites that took the unbalanced references. *)
val leak_lines : unit -> string list

(** One line per recorded diagnostic (double-free, underflow, use-after-free,
    write-after-post), chronological. *)
val diag_lines : unit -> string list

(** e.g. ["refsan: 0 leaks, 0 hazards (1024 buffers tracked, 0 holds active)"] *)
val summary_line : unit -> string

(** Engine-quiesce hook body: prints the summary plus details when anything
    was found (or when [verbose]). *)
val print_quiesce : ?verbose:bool -> unit -> unit

(** No leaks and no diagnostics recorded. *)
val clean : unit -> bool

(** [print_scoped ~label ()] prints a labelled ledger summary (plus any
    leak/diagnostic detail) unconditionally — for CI to grep a specific
    datapath's cleanliness, e.g. the cluster fan-out. *)
val print_scoped : label:string -> unit -> unit

(** Roll-up over every checkpointed run plus the live ledger, e.g.
    ["refsan: 0 leaks, 0 hazards"]. *)
val grand_total_line : unit -> string
