type kind =
  | Alloc
  | Incref
  | Decref
  | Sub
  | Free
  | Dma_post
  | Dma_complete
  | Cow_clone
  | Write of { via_cow : bool }
  | Root
  | Unroot

type t = { seq : int; kind : kind; site : string }

let kind_to_string = function
  | Alloc -> "alloc"
  | Incref -> "incref"
  | Decref -> "decref"
  | Sub -> "sub"
  | Free -> "free"
  | Dma_post -> "dma-post"
  | Dma_complete -> "dma-complete"
  | Cow_clone -> "cow-clone"
  | Write { via_cow = true } -> "write(cow)"
  | Write { via_cow = false } -> "write"
  | Root -> "root"
  | Unroot -> "unroot"

let to_string e =
  Printf.sprintf "#%d %-12s @ %s" e.seq (kind_to_string e.kind) e.site

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* Does this event take (+1) or release (-1) a reference? *)
let ref_delta = function
  | Alloc | Incref -> 1
  | Decref -> -1
  | _ -> 0
