(* The zero-copy / copy crossover, shared between the calibration probe
   (`cornflakes_cli probe`, paper §3.2.1) and the schema lint. The probe
   owns the size grid; the lint reuses the last committed calibration to
   warn when a schema declares a zero-copy-eligible field whose
   [max_size=N] bound sits below the size where zero-copy actually starts
   winning — such a field pays the scatter-gather bookkeeping without the
   bandwidth payoff. *)

(* Size grid the probe sweeps (bytes). *)
let probe_sizes = [ 128; 256; 384; 512; 768; 1024; 2048 ]

let probe_sizes_quick = [ 256; 512; 1024 ]

(* zc/copy throughput ratio by value size, from a committed `probe` run on
   the simulated UDP datapath (see BENCH notes). Below 1.0 copy wins:
   per-descriptor DMA bookkeeping dominates until the memcpy being avoided
   is big enough to matter. *)
let default_table =
  [
    (128, 0.81);
    (256, 0.90);
    (384, 0.97);
    (512, 1.04);
    (768, 1.13);
    (1024, 1.25);
    (2048, 1.47);
  ]

(* Smallest probed size where zero-copy at least breaks even. *)
let crossover_bytes ?(table = default_table) () =
  match
    List.filter (fun (_, ratio) -> ratio >= 1.0) table
    |> List.map fst |> List.sort compare
  with
  | least :: _ -> least
  | [] -> ( match List.rev (List.sort compare (List.map fst table)) with
            | biggest :: _ -> biggest
            | [] -> 512)
