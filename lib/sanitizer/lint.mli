(** Static schema lint: schema mistakes caught before codegen, plus a
    per-field zero-copy-eligibility report.

    Checks: duplicate message names, duplicate field names, duplicate and
    out-of-range field numbers (including the reserved 19000-19999 band),
    unresolved nested-message types, bitmap-slot waste from sparse field
    numbering, and — per field — whether the scatter-gather path can ever
    apply (variable-length [bytes]/[string] at or above the configured
    threshold) or the field is statically copy-only. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type finding = {
  severity : severity;
  message_name : string;
  field_name : string option;
  text : string;
}

(** [check ?threshold ?crossover ?strict desc] lints a (possibly invalid)
    descriptor. [threshold] is the zero-copy threshold in bytes (default
    512, the paper's crossover). [crossover] is the measured zc/copy
    break-even size (default: {!Crossover.crossover_bytes}); a
    zero-copy-eligible field whose [max_size=N] bound sits below it draws a
    warning — or an error under [strict]. Findings appear in schema order,
    eligibility lines last within each message. *)
val check :
  ?threshold:int -> ?crossover:int -> ?strict:bool -> Schema.Desc.t ->
  finding list

val errors : finding list -> finding list

val to_string : finding -> string
