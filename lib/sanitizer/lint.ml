(* Static schema lint: catches schema mistakes before codegen and reports,
   per field, whether the zero-copy path can ever apply to it. Works on a
   raw (unvalidated) descriptor so that broken schemas — the ones worth
   linting — can be analysed instead of rejected at parse time. *)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type finding = {
  severity : severity;
  message_name : string;
  field_name : string option;
  text : string;
}

(* proto3 limits: field numbers are 1..2^29-1, with 19000-19999 reserved
   for the wire-format implementation. *)
let max_field_number = 536_870_911

let reserved_lo, reserved_hi = (19_000, 19_999)

let finding severity message_name ?field_name fmt =
  Printf.ksprintf (fun text -> { severity; message_name; field_name; text }) fmt

(* Every slot of the presence bitmap is allocated up to the largest field
   number, so sparse numbering buys dead header bytes on every message. *)
let bitmap_waste_findings (m : Schema.Desc.message) =
  let numbers =
    Array.to_list (Array.map (fun f -> f.Schema.Desc.number) m.Schema.Desc.fields)
  in
  match List.filter (fun n -> n > 0) numbers with
  | [] -> []
  | positive ->
      let span = List.fold_left max 0 positive in
      let used = List.length (List.sort_uniq compare positive) in
      let words = (span + 31) / 32 in
      let slots = 32 * words in
      if span > 32 && span > 2 * used then
        [
          finding Warning m.Schema.Desc.msg_name
            "sparse field numbering: max number %d over %d field%s wastes %d \
             of %d bitmap slots (%d word%s per header); renumber densely \
             from 1"
            span used
            (if used = 1 then "" else "s")
            (slots - used) slots words
            (if words = 1 then "" else "s");
        ]
      else []

let number_findings (m : Schema.Desc.message) =
  let seen = Hashtbl.create 16 in
  let fs = Array.to_list (Array.map Fun.id m.Schema.Desc.fields) in
  List.concat_map
    (fun (f : Schema.Desc.field) ->
      let dup =
        match Hashtbl.find_opt seen f.Schema.Desc.number with
        | Some first ->
            [
              finding Error m.Schema.Desc.msg_name
                ~field_name:f.Schema.Desc.field_name
                "duplicate field number %d (also used by field %s)"
                f.Schema.Desc.number first;
            ]
        | None ->
            Hashtbl.replace seen f.Schema.Desc.number f.Schema.Desc.field_name;
            []
      in
      let range =
        if f.Schema.Desc.number <= 0 then
          [
            finding Error m.Schema.Desc.msg_name
              ~field_name:f.Schema.Desc.field_name
              "field number %d out of range (must be >= 1)"
              f.Schema.Desc.number;
          ]
        else if f.Schema.Desc.number > max_field_number then
          [
            finding Error m.Schema.Desc.msg_name
              ~field_name:f.Schema.Desc.field_name
              "field number %d out of range (max %d)" f.Schema.Desc.number
              max_field_number;
          ]
        else if
          f.Schema.Desc.number >= reserved_lo
          && f.Schema.Desc.number <= reserved_hi
        then
          [
            finding Warning m.Schema.Desc.msg_name
              ~field_name:f.Schema.Desc.field_name
              "field number %d lies in the reserved range %d-%d"
              f.Schema.Desc.number reserved_lo reserved_hi;
          ]
        else []
      in
      dup @ range)
    fs

let name_findings (m : Schema.Desc.message) =
  let seen = Hashtbl.create 16 in
  Array.to_list m.Schema.Desc.fields
  |> List.filter_map (fun (f : Schema.Desc.field) ->
         if Hashtbl.mem seen f.Schema.Desc.field_name then
           Some
             (finding Error m.Schema.Desc.msg_name
                ~field_name:f.Schema.Desc.field_name "duplicate field name")
         else begin
           Hashtbl.replace seen f.Schema.Desc.field_name ();
           None
         end)

let resolution_findings (t : Schema.Desc.t) (m : Schema.Desc.message) =
  Array.to_list m.Schema.Desc.fields
  |> List.filter_map (fun (f : Schema.Desc.field) ->
         match f.Schema.Desc.ty with
         | Schema.Desc.Message target
           when Schema.Desc.find_message t target = None ->
             Some
               (finding Error m.Schema.Desc.msg_name
                  ~field_name:f.Schema.Desc.field_name
                  "unresolved message type %s" target)
         | _ -> None)

(* Per-field zero-copy eligibility: only variable-length bytes/string
   payloads can ride the scatter-gather path, and only when the payload is
   at least the configured threshold and lives in pinned memory. Scalars are
   fixed 8-byte header entries — statically ineligible. *)
let eligibility_findings ~threshold (m : Schema.Desc.message) =
  Array.to_list m.Schema.Desc.fields
  |> List.map (fun (f : Schema.Desc.field) ->
         let name = f.Schema.Desc.field_name in
         match f.Schema.Desc.ty with
         | Schema.Desc.Bytes | Schema.Desc.Str ->
             finding Info m.Schema.Desc.msg_name ~field_name:name
               "zero-copy eligible: %s payloads >= %d B in pinned memory go \
                scatter-gather; smaller ones are copied"
               (Schema.Desc.field_type_to_string f.Schema.Desc.ty)
               threshold
         | Schema.Desc.Scalar s ->
             finding Info m.Schema.Desc.msg_name ~field_name:name
               "zero-copy ineligible: fixed-size %s (8 B < %d B threshold) is \
                always copied into the header"
               (Schema.Desc.scalar_to_string s) threshold
         | Schema.Desc.Message target ->
             finding Info m.Schema.Desc.msg_name ~field_name:name
               "zero-copy ineligible at this level: nested %s header is \
                serialized inline (its own bytes fields are checked \
                separately)"
               target)

(* A bytes/string field whose declared [max_size=N] bound never reaches the
   measured zc/copy crossover will take the scatter-gather path (it is
   eligible) yet always lose to a plain copy. Warning by default; [strict]
   promotes to an error for CI gating of new schemas. *)
let crossover_findings ~crossover ~strict (m : Schema.Desc.message) =
  Array.to_list m.Schema.Desc.fields
  |> List.filter_map (fun (f : Schema.Desc.field) ->
         match (f.Schema.Desc.ty, f.Schema.Desc.max_size) with
         | (Schema.Desc.Bytes | Schema.Desc.Str), Some bound
           when bound < crossover ->
             Some
               (finding
                  (if strict then Error else Warning)
                  m.Schema.Desc.msg_name ~field_name:f.Schema.Desc.field_name
                  "zero-copy-eligible field bounded at %d B, below the \
                   measured zc/copy crossover (%d B): every payload will pay \
                   scatter-gather bookkeeping and still lose to copy; drop \
                   the field below the threshold or raise max_size"
                  bound crossover)
         | _ -> None)

let check ?(threshold = 512) ?crossover ?(strict = false) (t : Schema.Desc.t) =
  let crossover =
    match crossover with
    | Some c -> c
    | None -> Crossover.crossover_bytes ()
  in
  let dup_messages =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (m : Schema.Desc.message) ->
        if Hashtbl.mem seen m.Schema.Desc.msg_name then
          Some (finding Error m.Schema.Desc.msg_name "duplicate message name")
        else begin
          Hashtbl.replace seen m.Schema.Desc.msg_name ();
          None
        end)
      t.Schema.Desc.messages
  in
  dup_messages
  @ List.concat_map
      (fun m ->
        number_findings m @ name_findings m @ resolution_findings t m
        @ bitmap_waste_findings m
        @ crossover_findings ~crossover ~strict m
        @ eligibility_findings ~threshold m)
      t.Schema.Desc.messages

let errors fs = List.filter (fun f -> f.severity = Error) fs

let to_string f =
  let where =
    match f.field_name with
    | Some field -> Printf.sprintf "%s.%s" f.message_name field
    | None -> f.message_name
  in
  Printf.sprintf "%-7s %-24s %s" (severity_to_string f.severity) where f.text
