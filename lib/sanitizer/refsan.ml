(* RefSan: a shadow ledger over the pinned-memory refcount machinery.

   Every lifecycle event of a pinned buffer — alloc, incref, decref, sub,
   free, DMA post/completion, copy-on-write clone, write — is mirrored here,
   tagged with a caller-supplied site label. The ledger never influences the
   run; it only observes and diagnoses:

   - leaks: buffers still referenced at quiesce whose outstanding references
     are neither declared roots (e.g. KV-store values) nor active in-flight
     holds (NIC ring / TCP retransmission queue);
   - double-free: release of a handle whose buffer the ledger saw freed,
     reported with alloc and free provenance;
   - refcount underflow: release of a reference the ledger never saw taken;
   - use-after-free: any access through a stale handle, with the buffer's
     full event history attached;
   - write-after-post: mutation of bytes covered by an in-flight hold that
     did not go through [Cow_buf.write].

   The ledger is domain-local (each parallel-harness worker observes only
   the simulations it runs; [checkpoint] folds findings into process-wide
   totals) and costs one atomic load per instrumented operation when
   disabled. *)

type buf_id = {
  pool_uid : int;
  pool : string;
  size : int;
  slot : int;
  gen : int;
  base : int; (* simulated address of the slot's first data byte *)
}

let describe id =
  Printf.sprintf "%s/%dB slot %d gen %d" id.pool id.size id.slot id.gen

type diag_kind =
  | Leak
  | Double_free
  | Underflow
  | Use_after_free
  | Write_hazard
  | Stuck_hold

let diag_kind_to_string = function
  | Leak -> "leak"
  | Double_free -> "double-free"
  | Underflow -> "refcount-underflow"
  | Use_after_free -> "use-after-free"
  | Write_hazard -> "write-after-post"
  | Stuck_hold -> "stuck-hold"

type diag = {
  d_kind : diag_kind;
  d_site : string; (* the offending site label *)
  d_buffer : string; (* [describe] of the buffer involved *)
  d_message : string;
}

type record = {
  r_id : buf_id;
  mutable r_refs : int; (* shadow reference count *)
  mutable r_rooted : int; (* refs declared long-lived *)
  mutable r_holds : int; (* active in-flight holds on this buffer *)
  mutable r_freed : bool;
  mutable r_alloc_site : string;
  mutable r_free_site : string option;
  mutable r_events : Event.t list; (* newest first, capped *)
  mutable r_nevents : int;
}

type hold = {
  h_key : int * int * int * int;
  h_pool : int;
  h_addr : int;
  h_len : int;
  h_site : string;
}

(* --- State ------------------------------------------------------------- *)

(* The ledger is domain-local: every worker of the parallel experiment
   harness gets its own independent instance (a job runs entirely on one
   domain, so its rig's whole lifecycle lands in one ledger), and nothing
   here is shared mutable state across jobs. The only cross-domain pieces
   are the enabled switch, the pool-uid counter (uids must stay process-
   unique so adopted ids never collide), and the cross-run accumulators —
   all atomics. *)

let env_enabled =
  match Sys.getenv_opt "CF_SANITIZE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let enabled = Atomic.make env_enabled

let is_enabled () = Atomic.get enabled

let set_enabled b = Atomic.set enabled b

let next_pool_uid = Atomic.make 0

let register_pool () = 1 + Atomic.fetch_and_add next_pool_uid 1

type state = {
  mutable seq : int;
  records : (int * int * int * int, record) Hashtbl.t;
  (* Freed records are kept for provenance (double-free / UAF reports) but
     bounded: the oldest are evicted once the graveyard exceeds its cap. *)
  graveyard : (int * int * int * int) Queue.t;
  holds : (int, hold) Hashtbl.t;
  holds_by_pool : (int, (int, hold) Hashtbl.t) Hashtbl.t;
  mutable next_token : int;
  mutable diags_rev : diag list;
  mutable n_diags : int;
  (* Hold tokens already reported as stuck, so repeated quiesces don't
     duplicate the diagnostic. *)
  flagged_stuck : (int, unit) Hashtbl.t;
}

let graveyard_cap = 8192

let diags_cap = 10_000

let fresh_state () =
  {
    seq = 0;
    records = Hashtbl.create 4096;
    graveyard = Queue.create ();
    holds = Hashtbl.create 256;
    holds_by_pool = Hashtbl.create 16;
    next_token = 0;
    diags_rev = [];
    n_diags = 0;
    flagged_stuck = Hashtbl.create 64;
  }

let dls : state Domain.DLS.key = Domain.DLS.new_key fresh_state

let st () = Domain.DLS.get dls

let reset () =
  let s = st () in
  Hashtbl.reset s.records;
  Queue.clear s.graveyard;
  Hashtbl.reset s.holds;
  Hashtbl.reset s.holds_by_pool;
  Hashtbl.reset s.flagged_stuck;
  s.diags_rev <- [];
  s.n_diags <- 0;
  s.seq <- 0

(* --- Internals ---------------------------------------------------------- *)

(* Slot/generation counters are per size class within a pool, so the class
   size must participate in the key or 64B slot 0 and 512B slot 0 of the
   same pool would share one record. *)
let key_of id = (id.pool_uid, id.size, id.slot, id.gen)

let max_events = 24

let push_event r kind site =
  let s = st () in
  s.seq <- s.seq + 1;
  r.r_events <- { Event.seq = s.seq; kind; site } :: r.r_events;
  r.r_nevents <- r.r_nevents + 1;
  if r.r_nevents > max_events then begin
    (* Keep the newest two-thirds; the alloc/free provenance survives in
       [r_alloc_site]/[r_free_site]. *)
    let keep = (2 * max_events) / 3 in
    r.r_events <- List.filteri (fun i _ -> i < keep) r.r_events;
    r.r_nevents <- keep
  end

let diag d_kind ~id ~site fmt =
  Printf.ksprintf
    (fun msg ->
      let s = st () in
      if s.n_diags < diags_cap then begin
        s.n_diags <- s.n_diags + 1;
        s.diags_rev <-
          {
            d_kind;
            d_site = site;
            d_buffer = (match id with Some id -> describe id | None -> "?");
            d_message = msg;
          }
          :: s.diags_rev
      end)
    fmt

let fresh_record id ~alloc_site ~refs =
  let r =
    {
      r_id = id;
      r_refs = refs;
      r_rooted = 0;
      r_holds = 0;
      r_freed = false;
      r_alloc_site = alloc_site;
      r_free_site = None;
      r_events = [];
      r_nevents = 0;
    }
  in
  Hashtbl.replace (st ()).records (key_of id) r;
  r

(* A buffer first seen mid-life (the sanitizer was enabled after it was
   allocated): adopt it with the caller-reported real refcount so later
   bookkeeping stays balanced. *)
let find_or_adopt id ~refs =
  match Hashtbl.find_opt (st ()).records (key_of id) with
  | Some r -> r
  | None -> fresh_record id ~alloc_site:"<untracked>" ~refs

let history id =
  match Hashtbl.find_opt (st ()).records (key_of id) with
  | None -> []
  | Some r ->
      let tail =
        match r.r_free_site with
        | Some s when not (List.exists (fun (e : Event.t) -> e.Event.kind = Event.Free) r.r_events) ->
            [ Printf.sprintf "(free was at %s)" s ]
        | _ -> []
      in
      (Printf.sprintf "(alloc was at %s)" r.r_alloc_site
      :: List.rev_map Event.to_string r.r_events)
      @ tail

(* --- Lifecycle hooks (called from Mem.Pinned & friends) ----------------- *)

let on_alloc ~id ~site =
  let r = fresh_record id ~alloc_site:site ~refs:1 in
  push_event r Event.Alloc site

let on_incref ~id ~refs ~site =
  match Hashtbl.find_opt (st ()).records (key_of id) with
  | Some r ->
      r.r_refs <- r.r_refs + 1;
      push_event r Event.Incref site
  | None ->
      (* Adopted mid-life: [refs] is the real post-incref count. *)
      let r = fresh_record id ~alloc_site:"<untracked>" ~refs in
      push_event r Event.Incref site

let on_decref ~id ~refs ~site =
  match Hashtbl.find_opt (st ()).records (key_of id) with
  | None ->
      let r = find_or_adopt id ~refs in
      push_event r Event.Decref site;
      diag Underflow ~id:(Some id) ~site
        "refcount underflow: %s released at %s a reference the ledger never \
         saw taken"
        (describe id) site
  | Some r ->
      r.r_refs <- r.r_refs - 1;
      push_event r Event.Decref site;
      if r.r_refs < 0 then begin
        diag Underflow ~id:(Some id) ~site
          "refcount underflow: %s dropped below zero references at %s (alloc \
           was at %s)"
          (describe id) site r.r_alloc_site
      end

let on_free ~id ~site =
  let r = find_or_adopt id ~refs:0 in
  r.r_freed <- true;
  r.r_refs <- 0;
  r.r_free_site <- Some site;
  push_event r Event.Free site;
  let s = st () in
  Queue.push (key_of id) s.graveyard;
  if Queue.length s.graveyard > graveyard_cap then begin
    let old = Queue.pop s.graveyard in
    match Hashtbl.find_opt s.records old with
    | Some r when r.r_freed -> Hashtbl.remove s.records old
    | _ -> ()
  end

let on_sub ~id ~refs ~site =
  let r = find_or_adopt id ~refs in
  push_event r Event.Sub site

let on_cow_clone ~id ~refs ~site =
  let r = find_or_adopt id ~refs in
  push_event r Event.Cow_clone site

let on_root ~id ~refs ~site =
  let r = find_or_adopt id ~refs in
  r.r_rooted <- r.r_rooted + 1;
  push_event r Event.Root site

let on_unroot ~id ~refs ~site =
  let r = find_or_adopt id ~refs in
  if r.r_rooted > 0 then r.r_rooted <- r.r_rooted - 1;
  push_event r Event.Unroot site

(* Classify an access through a stale handle. [op = `Release] on a buffer
   the ledger saw freed is a double-free; everything else is use-after-free. *)
let stale_access ~id ~op ~site =
  let r = Hashtbl.find_opt (st ()).records (key_of id) in
  let freed = match r with Some r -> r.r_freed | None -> false in
  let provenance =
    match r with
    | Some r ->
        Printf.sprintf " (alloc was at %s; freed at %s)" r.r_alloc_site
          (match r.r_free_site with Some s -> s | None -> "?")
    | None -> ""
  in
  match op with
  | `Release when freed ->
      diag Double_free ~id:(Some id) ~site "double free of %s at %s%s"
        (describe id) site provenance
  | `Release ->
      diag Double_free ~id:(Some id) ~site
        "release of stale handle %s at %s%s" (describe id) site provenance
  | `Read | `Write | `Ref ->
      diag Use_after_free ~id:(Some id) ~site "use after free of %s at %s%s"
        (describe id) site provenance

(* --- In-flight holds and the write-after-post detector ------------------ *)

let hold ~id ~refs ~addr ~len ~site =
  let s = st () in
  let r = find_or_adopt id ~refs in
  r.r_holds <- r.r_holds + 1;
  push_event r Event.Dma_post site;
  s.next_token <- s.next_token + 1;
  let token = s.next_token in
  let h = { h_key = key_of id; h_pool = id.pool_uid; h_addr = addr; h_len = len; h_site = site } in
  Hashtbl.replace s.holds token h;
  let sub =
    match Hashtbl.find_opt s.holds_by_pool id.pool_uid with
    | Some sub -> sub
    | None ->
        let sub = Hashtbl.create 64 in
        Hashtbl.replace s.holds_by_pool id.pool_uid sub;
        sub
  in
  Hashtbl.replace sub token h;
  token

let release_hold token =
  let s = st () in
  match Hashtbl.find_opt s.holds token with
  | None -> ()
  | Some h ->
      Hashtbl.remove s.holds token;
      (match Hashtbl.find_opt s.holds_by_pool h.h_pool with
      | Some sub -> Hashtbl.remove sub token
      | None -> ());
      (match Hashtbl.find_opt s.records h.h_key with
      | Some r ->
          if r.r_holds > 0 then r.r_holds <- r.r_holds - 1;
          push_event r Event.Dma_complete h.h_site
      | None -> ())

let on_write ~id ~refs ~addr ~len ~via_cow ~site =
  let r = find_or_adopt id ~refs in
  push_event r (Event.Write { via_cow }) site;
  if not via_cow then
    match Hashtbl.find_opt (st ()).holds_by_pool id.pool_uid with
    | None -> ()
    | Some sub ->
        Hashtbl.iter
          (fun _token h ->
            if addr < h.h_addr + h.h_len && h.h_addr < addr + len then
              diag Write_hazard ~id:(Some id) ~site
                "write-after-post: %s mutated [%d,%d) at %s while bytes \
                 [%d,%d) are in flight (posted at %s); route the write \
                 through Cow_buf.write"
                (describe id) addr (addr + len) site h.h_addr
                (h.h_addr + h.h_len) h.h_site)
          sub

(* --- Reports ------------------------------------------------------------ *)

type leak = {
  l_id : buf_id;
  l_refs : int; (* unexcused outstanding references *)
  l_alloc_site : string;
  l_ref_sites : (string * int) list; (* where refs were taken, with counts *)
}

let leaks () =
  Hashtbl.fold
    (fun _key r acc ->
      if r.r_freed then acc
      else begin
        let outstanding = r.r_refs - r.r_rooted - r.r_holds in
        if outstanding <= 0 then acc
        else begin
          let sites = Hashtbl.create 8 in
          List.iter
            (fun (e : Event.t) ->
              if Event.ref_delta e.Event.kind > 0 then
                Hashtbl.replace sites e.Event.site
                  (1 + Option.value ~default:0 (Hashtbl.find_opt sites e.Event.site)))
            r.r_events;
          if Hashtbl.length sites = 0 then Hashtbl.replace sites r.r_alloc_site 1;
          {
            l_id = r.r_id;
            l_refs = outstanding;
            l_alloc_site = r.r_alloc_site;
            l_ref_sites =
              List.sort compare (Hashtbl.fold (fun s n acc -> (s, n) :: acc) sites []);
          }
          :: acc
        end
      end)
    (st ()).records []

let diagnostics () = List.rev (st ()).diags_rev

let count_diags kind =
  List.fold_left
    (fun acc d -> if d.d_kind = kind then acc + 1 else acc)
    0 (diagnostics ())

let hazard_count () = count_diags Write_hazard + count_diags Stuck_hold

(* A hold still active when the engine quiesces means a DMA post whose
   completion never arrived: the buffer's reference is pinned forever
   unless a reaper or retry layer recovers it. Leak detection deliberately
   excuses held refs (in-flight is not leaked), so without this check a
   lost completion would be invisible. Called from the quiesce report. *)
let flag_stuck_holds () =
  let s = st () in
  let fresh = ref 0 in
  Hashtbl.iter
    (fun token h ->
      if not (Hashtbl.mem s.flagged_stuck token) then begin
        Hashtbl.replace s.flagged_stuck token ();
        incr fresh;
        let id = Option.map (fun r -> r.r_id) (Hashtbl.find_opt s.records h.h_key) in
        let buf = match id with Some id -> describe id | None -> Printf.sprintf "pool %d" h.h_pool in
        diag Stuck_hold ~id ~site:h.h_site
          "stuck hold: %s still in flight at quiesce (posted at %s) — a lost \
           completion pinned its reference; reap the TX ring or let the retry \
           layer recover it"
          buf h.h_site
      end)
    s.holds;
  !fresh

let tracked_buffers () = Hashtbl.length (st ()).records

let active_holds () = Hashtbl.length (st ()).holds

(* --- Cross-run accumulation ---------------------------------------------

   Long harnesses (the bench binary) reset the ledger between experiments to
   bound its memory; [checkpoint] folds the current results into running
   totals first so the end-of-run roll-up still covers everything. The
   totals are atomics because parallel workers checkpoint their own
   domain-local ledgers into the same process-wide roll-up (the grand-total
   line the CI gate greps covers every domain's findings). *)

let acc_leaks = Atomic.make 0

let acc_hazards = Atomic.make 0

let acc_other = Atomic.make 0

let checkpoint () =
  ignore (Atomic.fetch_and_add acc_leaks (List.length (leaks ())));
  ignore (Atomic.fetch_and_add acc_hazards (hazard_count ()));
  ignore (Atomic.fetch_and_add acc_other ((st ()).n_diags - hazard_count ()));
  reset ()

let total_leaks () = Atomic.get acc_leaks + List.length (leaks ())

let total_hazards () = Atomic.get acc_hazards + hazard_count ()

let total_other_diags () =
  Atomic.get acc_other + ((st ()).n_diags - hazard_count ())
