(** RefSan: shadow ledger + detectors for zero-copy memory safety.

    Mirrors every pinned-buffer lifecycle event (alloc, incref, decref, sub,
    free, DMA post/completion, CoW clone, write), each tagged with a
    caller-supplied site label, and diagnoses:

    - reference leaks at quiesce ({!leaks}),
    - double-free and refcount underflow with alloc/free provenance,
    - use-after-free with full event history ({!history}),
    - the write-after-post race: mutating bytes covered by an in-flight
      scatter-gather hold without going through [Cow_buf.write].

    Enabled by [CF_SANITIZE=1] in the environment or {!set_enabled}. All
    hooks are no-ops unless the caller checks {!is_enabled} first (the
    instrumentation sites in [Mem.Pinned] etc. do). Ledger state is
    domain-local: each worker domain of the parallel experiment harness
    observes exactly the simulations it runs, and {!checkpoint} folds each
    domain's findings into the process-wide totals. Only the enabled
    switch, pool-uid counter, and totals are shared (atomics). *)

(** Stable identity of one allocation (the generation makes slot reuse
    distinguishable). [pool_uid] comes from {!register_pool}. *)
type buf_id = {
  pool_uid : int;
  pool : string;
  size : int;
  slot : int;
  gen : int;
  base : int;
}

val describe : buf_id -> string

type diag_kind =
  | Leak
  | Double_free
  | Underflow
  | Use_after_free
  | Write_hazard
  | Stuck_hold
      (** a DMA-post hold still active at quiesce: the completion was lost
          and nothing reaped it, so the buffer reference is pinned forever *)

val diag_kind_to_string : diag_kind -> string

type diag = {
  d_kind : diag_kind;
  d_site : string;
  d_buffer : string;
  d_message : string;
}

(** {1 Switch} *)

val is_enabled : unit -> bool

val set_enabled : bool -> unit

(** Drop all ledger state (records, holds, diagnostics). Does not change the
    enabled flag. *)
val reset : unit -> unit

(** Allocate a process-unique pool id (called by [Mem.Pinned.Pool.create]). *)
val register_pool : unit -> int

(** {1 Lifecycle hooks}

    [refs] is the buffer's real reference count after the operation; it is
    used to adopt buffers first seen mid-life (sanitizer enabled late). *)

val on_alloc : id:buf_id -> site:string -> unit

val on_incref : id:buf_id -> refs:int -> site:string -> unit

val on_decref : id:buf_id -> refs:int -> site:string -> unit

val on_free : id:buf_id -> site:string -> unit

val on_sub : id:buf_id -> refs:int -> site:string -> unit

val on_cow_clone : id:buf_id -> refs:int -> site:string -> unit

val on_root : id:buf_id -> refs:int -> site:string -> unit

val on_unroot : id:buf_id -> refs:int -> site:string -> unit

(** Record a write of [len] bytes at simulated address [addr] and check it
    against active in-flight holds of the same pool; a non-CoW overlap is a
    write-after-post hazard. *)
val on_write :
  id:buf_id -> refs:int -> addr:int -> len:int -> via_cow:bool -> site:string -> unit

(** Record and classify an access through a stale handle (double-free when
    [op] is [`Release] on a freed buffer, use-after-free otherwise). *)
val stale_access :
  id:buf_id -> op:[ `Read | `Write | `Ref | `Release ] -> site:string -> unit

(** Event history of a buffer, oldest first, human-readable. *)
val history : buf_id -> string list

(** {1 In-flight holds} *)

(** [hold ~id ~refs ~addr ~len ~site] declares [addr, addr+len) in flight
    (posted to a NIC ring, or parked in a TCP retransmission queue) and
    returns a token for {!release_hold}. While active, the range is
    write-protected and the hold excuses one outstanding reference at leak
    check. *)
val hold : id:buf_id -> refs:int -> addr:int -> len:int -> site:string -> int

val release_hold : int -> unit

(** {1 Reports} *)

type leak = {
  l_id : buf_id;
  l_refs : int;
  l_alloc_site : string;
  l_ref_sites : (string * int) list;
}

(** Buffers still referenced now, excluding declared roots and active
    holds — call at engine quiesce. *)
val leaks : unit -> leak list

val diagnostics : unit -> diag list

val count_diags : diag_kind -> int

(** Write-after-post plus stuck-hold diagnostics. *)
val hazard_count : unit -> int

(** Report every still-active hold as a {!Stuck_hold} diagnostic (once per
    hold token across repeated calls); returns how many were newly
    flagged. Leak detection excuses held references — in-flight is not
    leaked — so this is how a lost completion surfaces in the ledger.
    Called by [Report.print_quiesce]. *)
val flag_stuck_holds : unit -> int

val tracked_buffers : unit -> int

val active_holds : unit -> int

(** {1 Cross-run accumulation}

    Harnesses that {!reset} the ledger between experiments (to bound its
    memory) call {!checkpoint} first; the totals below then cover every run
    since startup, including the live ledger. *)

(** Fold the current leak/diagnostic counts into the running totals, then
    {!reset} the ledger. *)
val checkpoint : unit -> unit

val total_leaks : unit -> int

val total_hazards : unit -> int

val total_other_diags : unit -> int
