(* Human-readable rendering of the RefSan ledger: leak reports at engine
   quiesce and the roll-up summary line the bench harness prints. *)

(* Shared site-label rendering. StatCheck findings and RefSan quiesce
   reports print sites identically — "[site Tcp.rtx_queue]" — so a dynamic
   hazard greps straight to its static counterpart and vice versa. *)
let site_label site = "[site " ^ site ^ "]"

let leak_lines () =
  List.concat_map
    (fun (l : Refsan.leak) ->
      let sites =
        String.concat ", "
          (List.map
             (fun (s, n) ->
               let s = site_label s in
               if n = 1 then s else Printf.sprintf "%s (x%d)" s n)
             l.Refsan.l_ref_sites)
      in
      [
        Printf.sprintf "leak: %s holds %d unexcused ref%s (alloc %s)"
          (Refsan.describe l.Refsan.l_id)
          l.Refsan.l_refs
          (if l.Refsan.l_refs = 1 then "" else "s")
          (site_label l.Refsan.l_alloc_site);
        Printf.sprintf "      refs taken at: %s" sites;
      ])
    (Refsan.leaks ())

let diag_lines () =
  List.map
    (fun (d : Refsan.diag) ->
      Printf.sprintf "%s %s: %s"
        (Refsan.diag_kind_to_string d.Refsan.d_kind)
        (site_label d.Refsan.d_site)
        d.Refsan.d_message)
    (Refsan.diagnostics ())

let summary_line () =
  let n_leaks = List.length (Refsan.leaks ()) in
  let n_hazards = Refsan.hazard_count () in
  let extra =
    let parts =
      List.filter_map
        (fun (kind, label) ->
          let n = Refsan.count_diags kind in
          if n = 0 then None else Some (Printf.sprintf "%d %s" n label))
        [
          (Refsan.Double_free, "double-frees");
          (Refsan.Underflow, "underflows");
          (Refsan.Use_after_free, "use-after-frees");
        ]
    in
    if parts = [] then "" else ", " ^ String.concat ", " parts
  in
  Printf.sprintf "refsan: %d leak%s, %d hazard%s%s (%d buffers tracked, %d holds active)"
    n_leaks
    (if n_leaks = 1 then "" else "s")
    n_hazards
    (if n_hazards = 1 then "" else "s")
    extra (Refsan.tracked_buffers ()) (Refsan.active_holds ())

(* Engine-quiesce hook body: dump leaks (and any other diagnostics) when
   present; stay quiet on a clean ledger unless [verbose]. Quiesce is also
   the point where a still-active hold means a completion was lost and
   never recovered, so flag those first. *)
let print_quiesce ?(verbose = false) () =
  ignore (Refsan.flag_stuck_holds ());
  let leaks = leak_lines () in
  let diags = diag_lines () in
  if leaks <> [] || diags <> [] || verbose then begin
    print_endline ("  " ^ summary_line ());
    List.iter (fun l -> print_endline ("    " ^ l)) diags;
    List.iter (fun l -> print_endline ("    " ^ l)) leaks
  end

let clean () = Refsan.leaks () = [] && Refsan.diagnostics () = []

(* Labelled summary for a specific datapath a harness wants greppable in
   CI — e.g. "cluster fan-out refsan: 0 leaks, 0 hazards ..." asserts the
   cross-shard scatter-gather path specifically, not just the end-of-bench
   roll-up. Always prints (a clean line is the assertion). *)
let print_scoped ~label () =
  ignore (Refsan.flag_stuck_holds ());
  print_endline ("  " ^ label ^ " " ^ summary_line ());
  List.iter (fun l -> print_endline ("    " ^ l)) (diag_lines ());
  List.iter (fun l -> print_endline ("    " ^ l)) (leak_lines ())

(* End-of-bench roll-up across every checkpointed run plus the live ledger. *)
let grand_total_line () =
  let leaks = Refsan.total_leaks () and hazards = Refsan.total_hazards () in
  let other = Refsan.total_other_diags () in
  Printf.sprintf "refsan: %d leak%s, %d hazard%s%s" leaks
    (if leaks = 1 then "" else "s")
    hazards
    (if hazards = 1 then "" else "s")
    (if other = 0 then ""
     else Printf.sprintf ", %d other diagnostic%s" other
            (if other = 1 then "" else "s"))
