(** Ledger events: one per pinned-buffer lifecycle transition, tagged with
    the caller-supplied site label that performed it. *)

type kind =
  | Alloc
  | Incref
  | Decref
  | Sub
  | Free
  | Dma_post  (** buffer entered an in-flight window (NIC ring / rtx queue) *)
  | Dma_complete
  | Cow_clone
  | Write of { via_cow : bool }
  | Root  (** declared long-lived (e.g. stored in a KV table) *)
  | Unroot

type t = { seq : int; kind : kind; site : string }

val kind_to_string : kind -> string

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** +1 for events that take a reference, -1 for events that release one,
    0 otherwise. *)
val ref_delta : kind -> int
