(** Tokenizer for the schema language. *)

type token =
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Equals
  | Semi
  | Eof

exception Lex_error of { pos : int; message : string }

val token_to_string : token -> string

(** [tokenize src] produces the token stream (comments and whitespace
    skipped). Raises [Lex_error]. *)
val tokenize : string -> token list
