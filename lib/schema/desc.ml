type scalar = Bool | Int32 | Int64 | UInt32 | UInt64 | Float64

type field_type =
  | Scalar of scalar
  | Str
  | Bytes
  | Message of string

type label = Singular | Repeated

type field = {
  field_name : string;
  number : int;
  label : label;
  ty : field_type;
  max_size : int option;
      (** declared payload-size bound from a [[max_size=N]] field option;
          drives the zero-copy crossover lint *)
  min_size : int option;
      (** declared payload-size lower bound ([[min_size=N]] field option);
          lets codegen prove a field always crosses the zero-copy
          threshold and fold its dispatch away *)
}

type message = { msg_name : string; fields : field array }

type t = { messages : message list }

let scalar_to_string = function
  | Bool -> "bool"
  | Int32 -> "int32"
  | Int64 -> "int64"
  | UInt32 -> "uint32"
  | UInt64 -> "uint64"
  | Float64 -> "double"

let field_type_to_string = function
  | Scalar s -> scalar_to_string s
  | Str -> "string"
  | Bytes -> "bytes"
  | Message m -> m

let find_message t name =
  List.find_opt (fun m -> m.msg_name = name) t.messages

let message t name =
  match find_message t name with
  | Some m -> m
  | None -> raise Not_found

let field_index msg name =
  let n = Array.length msg.fields in
  let rec go i =
    if i >= n then raise Not_found
    else if msg.fields.(i).field_name = name then i
    else go (i + 1)
  in
  go 0

let field msg name = msg.fields.(field_index msg name)

let validate t =
  let module SS = Set.Make (String) in
  let module IS = Set.Make (Int) in
  let names = ref SS.empty in
  let check_message m =
    if SS.mem m.msg_name !names then
      Error (Printf.sprintf "duplicate message %s" m.msg_name)
    else begin
      names := SS.add m.msg_name !names;
      let fnames = ref SS.empty and fnums = ref IS.empty in
      let check_field acc f =
        match acc with
        | Error _ as e -> e
        | Ok () ->
            if SS.mem f.field_name !fnames then
              Error
                (Printf.sprintf "duplicate field %s.%s" m.msg_name f.field_name)
            else if IS.mem f.number !fnums then
              Error
                (Printf.sprintf "duplicate field number %d in %s" f.number
                   m.msg_name)
            else if f.number <= 0 then
              Error
                (Printf.sprintf "non-positive field number in %s.%s" m.msg_name
                   f.field_name)
            else begin
              fnames := SS.add f.field_name !fnames;
              fnums := IS.add f.number !fnums;
              match (f.max_size, f.min_size) with
              | Some n, _ when n < 0 ->
                  Error
                    (Printf.sprintf "negative max_size in %s.%s" m.msg_name
                       f.field_name)
              | _, Some n when n < 0 ->
                  Error
                    (Printf.sprintf "negative min_size in %s.%s" m.msg_name
                       f.field_name)
              | Some mx, Some mn when mn > mx ->
                  Error
                    (Printf.sprintf "min_size %d exceeds max_size %d in %s.%s"
                       mn mx m.msg_name f.field_name)
              | _ -> (
                  match f.ty with
                  | Message target when find_message t target = None ->
                      Error
                        (Printf.sprintf "unresolved message type %s in %s.%s"
                           target m.msg_name f.field_name)
                  | _ -> Ok ())
            end
      in
      Array.fold_left check_field (Ok ()) m.fields
    end
  in
  let check_sorted m =
    let ok = ref (Ok ()) in
    Array.iteri
      (fun i f ->
        if i > 0 && m.fields.(i - 1).number >= f.number then
          ok :=
            Error (Printf.sprintf "fields of %s not sorted by number" m.msg_name))
      m.fields;
    !ok
  in
  List.fold_left
    (fun acc m ->
      match acc with
      | Error _ as e -> e
      | Ok () -> ( match check_message m with Ok () -> check_sorted m | e -> e))
    (Ok ()) t.messages
