type scalar = Bool | Int32 | Int64 | UInt32 | UInt64 | Float64

type field_type =
  | Scalar of scalar
  | Str
  | Bytes
  | Message of string

type label = Singular | Repeated

type field = {
  field_name : string;
  number : int;
  label : label;
  ty : field_type;
  max_size : int option;
      (** declared payload-size bound from a [[max_size=N]] field option;
          drives the zero-copy crossover lint *)
  min_size : int option;
      (** declared payload-size lower bound ([[min_size=N]] field option);
          lets codegen prove a field always crosses the zero-copy
          threshold and fold its dispatch away *)
}

type message = { msg_name : string; fields : field array }

type method_ = {
  meth_name : string;
  meth_id : int;
      (** compact method-id word carried in the request envelope's [op]
          field; the generated dispatch table is indexed by it *)
  req_type : string; (* request message name *)
  resp_type : string; (* response message name *)
  stream : bool; (* [stream]: the response is a chunk sequence *)
  deadline_ms : int option; (* [deadline_ms=N]: per-method deadline *)
}

type service = { svc_name : string; methods : method_ array }

type t = { messages : message list; services : service list }

let scalar_to_string = function
  | Bool -> "bool"
  | Int32 -> "int32"
  | Int64 -> "int64"
  | UInt32 -> "uint32"
  | UInt64 -> "uint64"
  | Float64 -> "double"

let field_type_to_string = function
  | Scalar s -> scalar_to_string s
  | Str -> "string"
  | Bytes -> "bytes"
  | Message m -> m

let find_message t name =
  List.find_opt (fun m -> m.msg_name = name) t.messages

let message t name =
  match find_message t name with
  | Some m -> m
  | None -> raise Not_found

let field_index msg name =
  let n = Array.length msg.fields in
  let rec go i =
    if i >= n then raise Not_found
    else if msg.fields.(i).field_name = name then i
    else go (i + 1)
  in
  go 0

let field msg name = msg.fields.(field_index msg name)

let find_service t name =
  List.find_opt (fun s -> s.svc_name = name) t.services

let service t name =
  match find_service t name with Some s -> s | None -> raise Not_found

let method_index svc name =
  let n = Array.length svc.methods in
  let rec go i =
    if i >= n then raise Not_found
    else if svc.methods.(i).meth_name = name then i
    else go (i + 1)
  in
  go 0

let method_ svc name = svc.methods.(method_index svc name)

(* Dispatch tables are indexed by the method-id word; they must cover
   [0 .. max_method_id]. Ids are validated dense-ish (unique, >= 0), so
   this is [Array.length methods - 1] unless ids were declared sparse. *)
let max_method_id svc =
  Array.fold_left (fun acc m -> max acc m.meth_id) (-1) svc.methods

(* The service envelope contract (v1): every method of a service shares
   one request and one response message type; the request envelope carries
   the method-id word in a singular scalar field named "op" and the
   request id in "id"; the response envelope echoes "id"; a service with
   streamed methods additionally threads the chunk seq word through the
   response's "seq" field. Per-method payload variation rides optional
   fields of the shared envelope — the same shape the kv protocol already
   uses — which is what lets the server validate every incoming frame
   with one pooled reader before it knows the method. *)
let envelope_scalar msg name =
  match Array.find_opt (fun f -> f.field_name = name) msg.fields with
  | Some { label = Singular; ty = Scalar (UInt32 | UInt64 | Int32 | Int64); _ }
    ->
      Ok ()
  | Some _ ->
      Error
        (Printf.sprintf "field %s.%s must be a singular integer scalar"
           msg.msg_name name)
  | None ->
      Error (Printf.sprintf "message %s lacks required field %S" msg.msg_name name)

let validate t =
  let module SS = Set.Make (String) in
  let module IS = Set.Make (Int) in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let names = ref SS.empty in
  let check_message m =
    if SS.mem m.msg_name !names then
      Error (Printf.sprintf "duplicate message %s" m.msg_name)
    else begin
      names := SS.add m.msg_name !names;
      let fnames = ref SS.empty and fnums = ref IS.empty in
      let check_field acc f =
        match acc with
        | Error _ as e -> e
        | Ok () ->
            if SS.mem f.field_name !fnames then
              Error
                (Printf.sprintf "duplicate field %s.%s" m.msg_name f.field_name)
            else if IS.mem f.number !fnums then
              Error
                (Printf.sprintf "duplicate field number %d in %s" f.number
                   m.msg_name)
            else if f.number <= 0 then
              Error
                (Printf.sprintf "non-positive field number in %s.%s" m.msg_name
                   f.field_name)
            else begin
              fnames := SS.add f.field_name !fnames;
              fnums := IS.add f.number !fnums;
              match (f.max_size, f.min_size) with
              | Some n, _ when n < 0 ->
                  Error
                    (Printf.sprintf "negative max_size in %s.%s" m.msg_name
                       f.field_name)
              | _, Some n when n < 0 ->
                  Error
                    (Printf.sprintf "negative min_size in %s.%s" m.msg_name
                       f.field_name)
              | Some mx, Some mn when mn > mx ->
                  Error
                    (Printf.sprintf "min_size %d exceeds max_size %d in %s.%s"
                       mn mx m.msg_name f.field_name)
              | _ -> (
                  match f.ty with
                  | Message target when find_message t target = None ->
                      Error
                        (Printf.sprintf "unresolved message type %s in %s.%s"
                           target m.msg_name f.field_name)
                  | _ -> Ok ())
            end
      in
      Array.fold_left check_field (Ok ()) m.fields
    end
  in
  let check_sorted m =
    let ok = ref (Ok ()) in
    Array.iteri
      (fun i f ->
        if i > 0 && m.fields.(i - 1).number >= f.number then
          ok :=
            Error (Printf.sprintf "fields of %s not sorted by number" m.msg_name))
      m.fields;
    !ok
  in
  let check_service s =
    if Array.length s.methods = 0 then
      Error (Printf.sprintf "service %s has no methods" s.svc_name)
    else begin
      let mnames = ref SS.empty and mids = ref IS.empty in
      let req0 = s.methods.(0).req_type and resp0 = s.methods.(0).resp_type in
      let check_method acc m =
        let* () = acc in
        if SS.mem m.meth_name !mnames then
          Error
            (Printf.sprintf "duplicate method %s.%s" s.svc_name m.meth_name)
        else if IS.mem m.meth_id !mids then
          Error
            (Printf.sprintf "duplicate method id %d in service %s" m.meth_id
               s.svc_name)
        else if m.meth_id < 0 then
          Error
            (Printf.sprintf "negative method id in %s.%s" s.svc_name
               m.meth_name)
        else begin
          mnames := SS.add m.meth_name !mnames;
          mids := IS.add m.meth_id !mids;
          let* () =
            match m.deadline_ms with
            | Some d when d <= 0 ->
                Error
                  (Printf.sprintf "non-positive deadline_ms in %s.%s"
                     s.svc_name m.meth_name)
            | _ -> Ok ()
          in
          (* v1 envelope rule: one request/response envelope per service,
             so the skeleton validates frames before knowing the method. *)
          let* () =
            if m.req_type <> req0 || m.resp_type <> resp0 then
              Error
                (Printf.sprintf
                   "service %s: method %s uses (%s, %s) but the service \
                    envelope is (%s, %s) — all methods of a service share \
                    one request/response envelope"
                   s.svc_name m.meth_name m.req_type m.resp_type req0 resp0)
            else Ok ()
          in
          match (find_message t m.req_type, find_message t m.resp_type) with
          | None, _ ->
              Error
                (Printf.sprintf "unresolved request type %s in %s.%s"
                   m.req_type s.svc_name m.meth_name)
          | _, None ->
              Error
                (Printf.sprintf "unresolved response type %s in %s.%s"
                   m.resp_type s.svc_name m.meth_name)
          | Some req, Some resp ->
              let* () = envelope_scalar req "op" in
              let* () = envelope_scalar req "id" in
              let* () = envelope_scalar resp "id" in
              if m.stream then envelope_scalar resp "seq" else Ok ()
        end
      in
      Array.fold_left check_method (Ok ()) s.methods
    end
  in
  let* () =
    List.fold_left
      (fun acc m ->
        match acc with
        | Error _ as e -> e
        | Ok () -> (
            match check_message m with Ok () -> check_sorted m | e -> e))
      (Ok ()) t.messages
  in
  let snames = ref SS.empty in
  List.fold_left
    (fun acc s ->
      match acc with
      | Error _ as e -> e
      | Ok () ->
          if SS.mem s.svc_name !snames then
            Error (Printf.sprintf "duplicate service %s" s.svc_name)
          else begin
            snames := SS.add s.svc_name !snames;
            check_service s
          end)
    (Ok ()) t.services
