type token =
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Equals
  | Semi
  | Eof

exception Lex_error of { pos : int; message : string }

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit i -> Printf.sprintf "integer %d" i
  | Str_lit s -> Printf.sprintf "string %S" s
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Equals -> "'='"
  | Semi -> "';'"
  | Eof -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let i = ref 0 in
  let fail message = raise (Lex_error { pos = !i; message }) in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i + 1 < n do
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail "unterminated comment"
    end
    else if c = '{' then (emit Lbrace; incr i)
    else if c = '}' then (emit Rbrace; incr i)
    else if c = '[' then (emit Lbracket; incr i)
    else if c = ']' then (emit Rbracket; incr i)
    else if c = '(' then (emit Lparen; incr i)
    else if c = ')' then (emit Rparen; incr i)
    else if c = '=' then (emit Equals; incr i)
    else if c = ';' then (emit Semi; incr i)
    else if c = '"' then begin
      let start = !i + 1 in
      incr i;
      while !i < n && src.[!i] <> '"' do
        incr i
      done;
      if !i >= n then fail "unterminated string literal";
      emit (Str_lit (String.sub src start (!i - start)));
      incr i
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      emit (Int_lit (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (Ident (String.sub src start (!i - start)))
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev (Eof :: !tokens)
