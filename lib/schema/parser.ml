exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let peek st = match st.tokens with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
            (Lexer.token_to_string got)))

let expect_ident st =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | got ->
      raise
        (Parse_error
           (Printf.sprintf "expected an identifier but found %s"
              (Lexer.token_to_string got)))

let expect_int st =
  match peek st with
  | Lexer.Int_lit i ->
      advance st;
      i
  | got ->
      raise
        (Parse_error
           (Printf.sprintf "expected an integer but found %s"
              (Lexer.token_to_string got)))

let field_type_of_name = function
  | "bool" -> Desc.Scalar Desc.Bool
  | "int32" -> Desc.Scalar Desc.Int32
  | "int64" -> Desc.Scalar Desc.Int64
  | "uint32" -> Desc.Scalar Desc.UInt32
  | "uint64" -> Desc.Scalar Desc.UInt64
  | "double" -> Desc.Scalar Desc.Float64
  | "string" -> Desc.Str
  | "bytes" -> Desc.Bytes
  | other -> Desc.Message other

let parse_field st =
  let label =
    match peek st with
    | Lexer.Ident "repeated" ->
        advance st;
        Desc.Repeated
    | _ -> Desc.Singular
  in
  let ty = field_type_of_name (expect_ident st) in
  let field_name = expect_ident st in
  expect st Lexer.Equals;
  let number = expect_int st in
  (* proto-style field options: [max_size = N] and [min_size = N]. *)
  let max_size = ref None in
  let min_size = ref None in
  if peek st = Lexer.Lbracket then begin
    advance st;
    let rec options () =
      (match expect_ident st with
      | "max_size" ->
          expect st Lexer.Equals;
          max_size := Some (expect_int st)
      | "min_size" ->
          expect st Lexer.Equals;
          min_size := Some (expect_int st)
      | other ->
          raise
            (Parse_error
               (Printf.sprintf
                  "unknown field option %S (supported: max_size, min_size)"
                  other)));
      if peek st <> Lexer.Rbracket then options ()
    in
    options ();
    expect st Lexer.Rbracket
  end;
  expect st Lexer.Semi;
  { Desc.field_name; number; label; ty; max_size = !max_size;
    min_size = !min_size }

let parse_message st =
  expect st (Lexer.Ident "message");
  let msg_name = expect_ident st in
  expect st Lexer.Lbrace;
  let fields = ref [] in
  while peek st <> Lexer.Rbrace do
    fields := parse_field st :: !fields
  done;
  expect st Lexer.Rbrace;
  let fields =
    List.sort (fun a b -> compare a.Desc.number b.Desc.number) (List.rev !fields)
  in
  { Desc.msg_name; fields = Array.of_list fields }

(* One method declaration:
     rpc Name (ReqType) returns (RespType) [stream deadline_ms=N];
   The method id defaults to the declaration index; an explicit
   [rpc Name (Req) returns (Resp) = 4;] pins it. Options ride a
   space-separated proto-style bracket list after the returns clause (and
   after the explicit id when one is given). *)
let parse_method st ~default_id =
  expect st (Lexer.Ident "rpc");
  let meth_name = expect_ident st in
  expect st Lexer.Lparen;
  let req_type = expect_ident st in
  expect st Lexer.Rparen;
  expect st (Lexer.Ident "returns");
  expect st Lexer.Lparen;
  let resp_type = expect_ident st in
  expect st Lexer.Rparen;
  let meth_id =
    if peek st = Lexer.Equals then begin
      advance st;
      expect_int st
    end
    else default_id
  in
  let stream = ref false in
  let deadline_ms = ref None in
  if peek st = Lexer.Lbracket then begin
    advance st;
    let rec options () =
      (match expect_ident st with
      | "stream" -> stream := true
      | "deadline_ms" ->
          expect st Lexer.Equals;
          deadline_ms := Some (expect_int st)
      | other ->
          raise
            (Parse_error
               (Printf.sprintf
                  "unknown method option %S (supported: stream, deadline_ms)"
                  other)));
      if peek st <> Lexer.Rbracket then options ()
    in
    options ();
    expect st Lexer.Rbracket
  end;
  expect st Lexer.Semi;
  {
    Desc.meth_name;
    meth_id;
    req_type;
    resp_type;
    stream = !stream;
    deadline_ms = !deadline_ms;
  }

let parse_service st =
  expect st (Lexer.Ident "service");
  let svc_name = expect_ident st in
  expect st Lexer.Lbrace;
  let methods = ref [] in
  while peek st <> Lexer.Rbrace do
    methods := parse_method st ~default_id:(List.length !methods) :: !methods
  done;
  expect st Lexer.Rbrace;
  { Desc.svc_name; methods = Array.of_list (List.rev !methods) }

let parse_syntax st =
  match peek st with
  | Lexer.Ident "syntax" ->
      advance st;
      expect st Lexer.Equals;
      (match peek st with
      | Lexer.Str_lit s ->
          advance st;
          if s <> "proto3" && s <> "proto2" then
            raise (Parse_error (Printf.sprintf "unsupported syntax %S" s))
      | got ->
          raise
            (Parse_error
               (Printf.sprintf "expected a string after syntax = but found %s"
                  (Lexer.token_to_string got))));
      expect st Lexer.Semi
  | _ -> ()

let parse_raw src =
  let st = { tokens = Lexer.tokenize src } in
  parse_syntax st;
  let messages = ref [] in
  let services = ref [] in
  while peek st <> Lexer.Eof do
    match peek st with
    | Lexer.Ident "service" -> services := parse_service st :: !services
    | _ -> messages := parse_message st :: !messages
  done;
  { Desc.messages = List.rev !messages; services = List.rev !services }

let parse src =
  let t = parse_raw src in
  match Desc.validate t with
  | Ok () -> t
  | Error e -> raise (Parse_error e)
