(** Message descriptors — the compiled form of a schema file.

    Cornflakes reuses Protobuf's schema language (§3): a schema is a set of
    messages; each message has numbered fields that are scalars, strings,
    bytes, or (possibly repeated) nested messages. *)

type scalar = Bool | Int32 | Int64 | UInt32 | UInt64 | Float64

type field_type =
  | Scalar of scalar
  | Str
  | Bytes
  | Message of string (* referenced message, resolved via the schema *)

type label = Singular | Repeated

type field = {
  field_name : string;
  number : int; (* wire tag, unique within the message *)
  label : label;
  ty : field_type;
  max_size : int option;
      (* declared payload-size bound ([max_size=N] field option); informs
         the zero-copy crossover lint, never enforced on the wire *)
  min_size : int option;
      (* declared payload-size lower bound ([min_size=N] field option);
         lets codegen prove the zero-copy verdict and fold dispatch away *)
}

type message = {
  msg_name : string;
  fields : field array; (* sorted by [number] *)
}

type t = { messages : message list }

val scalar_to_string : scalar -> string

val field_type_to_string : field_type -> string

(** [message t name] finds a message by name. Raises [Not_found]. *)
val message : t -> string -> message

val find_message : t -> string -> message option

(** [field msg name] finds a field by name. Raises [Not_found]. *)
val field : message -> string -> field

(** [field_index msg name] is the index into [msg.fields].
    Raises [Not_found]. *)
val field_index : message -> string -> int

(** [validate t] checks field-number uniqueness, name uniqueness, size-bound
    sanity ([0 <= min_size <= max_size]), and that every [Message] reference
    resolves. Returns an error description on failure. *)
val validate : t -> (unit, string) result
