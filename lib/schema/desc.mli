(** Message descriptors — the compiled form of a schema file.

    Cornflakes reuses Protobuf's schema language (§3): a schema is a set of
    messages; each message has numbered fields that are scalars, strings,
    bytes, or (possibly repeated) nested messages. *)

type scalar = Bool | Int32 | Int64 | UInt32 | UInt64 | Float64

type field_type =
  | Scalar of scalar
  | Str
  | Bytes
  | Message of string (* referenced message, resolved via the schema *)

type label = Singular | Repeated

type field = {
  field_name : string;
  number : int; (* wire tag, unique within the message *)
  label : label;
  ty : field_type;
  max_size : int option;
      (* declared payload-size bound ([max_size=N] field option); informs
         the zero-copy crossover lint, never enforced on the wire *)
  min_size : int option;
      (* declared payload-size lower bound ([min_size=N] field option);
         lets codegen prove the zero-copy verdict and fold dispatch away *)
}

type message = {
  msg_name : string;
  fields : field array; (* sorted by [number] *)
}

(** One RPC method of a [service] declaration. The generated dispatch
    table is indexed by [meth_id] (the compact method-id word the request
    envelope carries in its [op] field). *)
type method_ = {
  meth_name : string;
  meth_id : int;
  req_type : string;
  resp_type : string;
  stream : bool; (* [stream]: the response is a chunk sequence *)
  deadline_ms : int option; (* [deadline_ms=N]: per-method deadline *)
}

type service = { svc_name : string; methods : method_ array }

type t = { messages : message list; services : service list }

val scalar_to_string : scalar -> string

val field_type_to_string : field_type -> string

(** [message t name] finds a message by name. Raises [Not_found]. *)
val message : t -> string -> message

val find_message : t -> string -> message option

(** [field msg name] finds a field by name. Raises [Not_found]. *)
val field : message -> string -> field

(** [field_index msg name] is the index into [msg.fields].
    Raises [Not_found]. *)
val field_index : message -> string -> int

(** [service t name] finds a service by name. Raises [Not_found]. *)
val service : t -> string -> service

val find_service : t -> string -> service option

(** [method_ svc name] finds a method by name. Raises [Not_found]. *)
val method_ : service -> string -> method_

(** [method_index svc name] is the index into [svc.methods].
    Raises [Not_found]. *)
val method_index : service -> string -> int

(** Largest declared method id; dispatch tables cover [0 .. max]. *)
val max_method_id : service -> int

(** [validate t] checks field-number uniqueness, name uniqueness, size-bound
    sanity ([0 <= min_size <= max_size]), that every [Message] reference
    resolves, and the service contract: unique non-negative method ids, one
    request/response envelope per service, and the envelope fields the
    generated stubs dispatch on ([op]/[id] in the request, [id] — plus
    [seq] for streamed methods — in the response). Returns an error
    description on failure. *)
val validate : t -> (unit, string) result
