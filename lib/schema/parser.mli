(** Parser for the schema language.

    Grammar (proto3-flavoured, the subset Cornflakes supports — base integer
    types, strings, bytes, nested messages, and repeated fields, §4):

    {v
    schema  ::= [syntax] message*
    syntax  ::= "syntax" "=" STRING ";"
    message ::= "message" IDENT "{" field* "}"
    field   ::= ["repeated"] type IDENT "=" INT ";"
    type    ::= "bool" | "int32" | "int64" | "uint32" | "uint64"
              | "double" | "string" | "bytes" | IDENT
    v} *)

exception Parse_error of string

(** [parse src] lexes and parses a schema, sorts fields by number, and
    validates the result. Raises [Parse_error] (or [Lexer.Lex_error]). *)
val parse : string -> Desc.t

(** [parse_raw src] parses without running [Desc.validate]: lint passes want
    to see duplicate field numbers and friends rather than have parsing
    reject them. Raises [Parse_error]/[Lexer.Lex_error] on syntax errors
    only. *)
val parse_raw : string -> Desc.t
