(** Runtime engine for a {!Plan.t}.

    The injector is consulted at each decision point (a packet entering
    the fabric, a NIC completion firing, a server service slot, an arena
    window) and answers deterministically: each rule owns a private
    [Sim.Rng] stream split from the plan seed, and rules are evaluated in
    plan order with the first firing rule winning. Replaying the same
    plan against the same workload seed reproduces every fault at the
    same simulated instant. *)

type t

type fabric_fault = [ `Drop | `Corrupt | `Duplicate | `Delay of int | `Reorder ]

val create : Plan.t -> t

val plan : t -> Plan.t

(** Consulted by [Net.Fabric] for every packet that survived the
    baseline loss rate; [dst] is the destination endpoint id. *)
val fabric_decision : t -> now:int -> dst:int -> fabric_fault option

(** Consulted by [Nic.Device] when a (possibly coalesced) completion is
    about to be delivered; [ep] is the endpoint owning the device. *)
val completion_decision : t -> now:int -> ep:int -> [ `Lose | `Delay of int ] option

(** Extra service time (ns) to stall the next request on a server
    endpoint; 0 when no slow-consumer rule fires. *)
val service_stall : t -> now:int -> ep:int -> int

(** The plan's [Arena_exhaust] windows, for the harness to schedule
    against endpoint arenas: [(scope, soft_capacity, from_ns, until_ns)]. *)
val arena_windows : t -> (Plan.scope * int * int * int) list

(** Per-rule [(rule text, events seen, faults fired)] counters, in plan
    order. *)
val counters : t -> (string * int * int) list

(** Total faults fired across all rules. *)
val fired : t -> int
