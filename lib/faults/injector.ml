type fabric_fault = [ `Drop | `Corrupt | `Duplicate | `Delay of int | `Reorder ]

type rule_state = {
  rule : Plan.rule;
  rng : Sim.Rng.t;
  mutable seen : int;  (* matching events offered to this rule *)
  mutable fired : int;
}

type t = { plan : Plan.t; rules : rule_state array }

let create (plan : Plan.t) =
  let root = Sim.Rng.create ~seed:plan.Plan.seed in
  let rules =
    Array.of_list
      (List.map (fun rule -> { rule; rng = Sim.Rng.split root; seen = 0; fired = 0 }) plan.Plan.rules)
  in
  { plan; rules }

let plan t = t.plan

let scope_matches scope ~ep =
  match scope with Plan.Anywhere -> true | Plan.Endpoint e -> e = ep

(* A rule's schedule is evaluated against its private event counter and
   rng stream. The rng draw happens even when a window is closed so a
   rule consumes state at the same rate regardless of simulated time —
   keeps replays stable if windows are edited. *)
let schedule_fires st ~now =
  st.seen <- st.seen + 1;
  match st.rule.Plan.schedule with
  | Plan.Probability p -> Sim.Rng.bool st.rng p
  | Plan.Window { from_ns; until_ns; p } ->
      let hit = Sim.Rng.bool st.rng p in
      hit && now >= from_ns && now < until_ns
  | Plan.Every_nth n -> st.seen mod n = 0
  | Plan.One_shot { at_event } -> st.seen = at_event

(* Evaluate rules in plan order; the first rule that fires wins and later
   rules do not observe the event. *)
let decide t ~now ~ep ~classify =
  let n = Array.length t.rules in
  let rec go i =
    if i >= n then None
    else
      let st = t.rules.(i) in
      match classify st.rule.Plan.fault with
      | Some outcome when scope_matches st.rule.Plan.scope ~ep ->
          if schedule_fires st ~now then begin
            st.fired <- st.fired + 1;
            Some outcome
          end
          else go (i + 1)
      | _ -> go (i + 1)
  in
  go 0

let fabric_decision t ~now ~dst =
  decide t ~now ~ep:dst ~classify:(function
    | Plan.Drop -> Some `Drop
    | Plan.Corrupt -> Some `Corrupt
    | Plan.Duplicate -> Some `Duplicate
    | Plan.Delay { extra_ns } -> Some (`Delay extra_ns)
    | Plan.Reorder -> Some `Reorder
    | _ -> None)

let completion_decision t ~now ~ep =
  decide t ~now ~ep ~classify:(function
    | Plan.Completion_loss -> Some `Lose
    | Plan.Completion_delay { extra_ns } -> Some (`Delay extra_ns)
    | _ -> None)

let service_stall t ~now ~ep =
  match
    decide t ~now ~ep ~classify:(function
      | Plan.Slow_consumer { stall_ns } -> Some stall_ns
      | _ -> None)
  with
  | Some stall -> stall
  | None -> 0

let arena_windows t =
  Array.to_list t.rules
  |> List.filter_map (fun st ->
         match (st.rule.Plan.fault, st.rule.Plan.schedule) with
         | Plan.Arena_exhaust { soft_capacity }, Plan.Window { from_ns; until_ns; _ } ->
             Some (st.rule.Plan.scope, soft_capacity, from_ns, until_ns)
         | _ -> None)

let counters t =
  Array.to_list t.rules
  |> List.map (fun st -> (Plan.rule_to_string st.rule, st.seen, st.fired))

let fired t = Array.fold_left (fun acc st -> acc + st.fired) 0 t.rules
