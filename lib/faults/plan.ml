type fault =
  | Drop
  | Corrupt
  | Duplicate
  | Delay of { extra_ns : int }
  | Reorder
  | Completion_loss
  | Completion_delay of { extra_ns : int }
  | Arena_exhaust of { soft_capacity : int }
  | Slow_consumer of { stall_ns : int }

type schedule =
  | Probability of float
  | Window of { from_ns : int; until_ns : int; p : float }
  | Every_nth of int
  | One_shot of { at_event : int }

type scope = Anywhere | Endpoint of int

type rule = { fault : fault; schedule : schedule; scope : scope }

type t = { seed : int; rules : rule list }

exception Parse_error of string

let validate_rule i r =
  let fail fmt =
    Format.kasprintf (fun m -> invalid_arg (Printf.sprintf "Faults.Plan.make: rule %d: %s" i m)) fmt
  in
  let check_p p = if not (p >= 0.0 && p <= 1.0) then fail "probability %g outside [0,1]" p in
  (match r.schedule with
  | Probability p -> check_p p
  | Window { from_ns; until_ns; p } ->
      check_p p;
      if from_ns < 0 then fail "window start %d < 0" from_ns;
      if until_ns <= from_ns then fail "window [%d,%d) is empty" from_ns until_ns
  | Every_nth n -> if n < 1 then fail "every-nth period %d < 1" n
  | One_shot { at_event } -> if at_event < 1 then fail "one-shot event index %d < 1" at_event);
  (match r.fault with
  | Delay { extra_ns } | Completion_delay { extra_ns } ->
      if extra_ns < 0 then fail "delay %dns < 0" extra_ns
  | Slow_consumer { stall_ns } -> if stall_ns < 0 then fail "stall %dns < 0" stall_ns
  | Arena_exhaust { soft_capacity } ->
      if soft_capacity < 0 then fail "soft capacity %d < 0" soft_capacity;
      (match r.schedule with
      | Window _ -> ()
      | _ -> fail "arena-exhaust needs a time window (from=/until=)")
  | Drop | Corrupt | Duplicate | Reorder | Completion_loss -> ())

let make ~seed rules =
  List.iteri validate_rule rules;
  { seed; rules }

let fault_name = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Duplicate -> "duplicate"
  | Delay _ -> "delay"
  | Reorder -> "reorder"
  | Completion_loss -> "completion-loss"
  | Completion_delay _ -> "completion-delay"
  | Arena_exhaust _ -> "arena-exhaust"
  | Slow_consumer _ -> "slow-consumer"

let rule_to_string r =
  let b = Buffer.create 48 in
  Buffer.add_string b (fault_name r.fault);
  (match r.fault with
  | Delay { extra_ns } | Completion_delay { extra_ns } ->
      Buffer.add_string b (Printf.sprintf " extra=%d" extra_ns)
  | Arena_exhaust { soft_capacity } -> Buffer.add_string b (Printf.sprintf " soft=%d" soft_capacity)
  | Slow_consumer { stall_ns } -> Buffer.add_string b (Printf.sprintf " stall=%d" stall_ns)
  | Drop | Corrupt | Duplicate | Reorder | Completion_loss -> ());
  (match r.schedule with
  | Probability p -> Buffer.add_string b (Printf.sprintf " p=%g" p)
  | Window { from_ns; until_ns; p } ->
      if p <> 1.0 then Buffer.add_string b (Printf.sprintf " p=%g" p);
      Buffer.add_string b (Printf.sprintf " from=%d until=%d" from_ns until_ns)
  | Every_nth n -> Buffer.add_string b (Printf.sprintf " every=%d" n)
  | One_shot { at_event } -> Buffer.add_string b (Printf.sprintf " one-shot=%d" at_event));
  (match r.scope with
  | Anywhere -> ()
  | Endpoint e -> Buffer.add_string b (Printf.sprintf " ep=%d" e));
  Buffer.contents b

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "seed %d\n" t.seed);
  List.iter (fun r -> Buffer.add_string b (rule_to_string r ^ "\n")) t.rules;
  Buffer.contents b

(* --- parsing ------------------------------------------------------------ *)

let parse_kv lineno tok =
  match String.index_opt tok '=' with
  | None -> raise (Parse_error (Printf.sprintf "line %d: expected key=value, got %S" lineno tok))
  | Some i ->
      (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))

let int_arg lineno k v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> raise (Parse_error (Printf.sprintf "line %d: %s=%S is not an integer" lineno k v))

let float_arg lineno k v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> raise (Parse_error (Printf.sprintf "line %d: %s=%S is not a number" lineno k v))

let parse_rule lineno name kvs =
  let find k = List.assoc_opt k kvs in
  let require k =
    match find k with
    | Some v -> v
    | None ->
        raise (Parse_error (Printf.sprintf "line %d: %s needs %s=" lineno name k))
  in
  let fault =
    match name with
    | "drop" -> Drop
    | "corrupt" -> Corrupt
    | "duplicate" -> Duplicate
    | "delay" -> Delay { extra_ns = int_arg lineno "extra" (require "extra") }
    | "reorder" -> Reorder
    | "completion-loss" -> Completion_loss
    | "completion-delay" ->
        Completion_delay { extra_ns = int_arg lineno "extra" (require "extra") }
    | "arena-exhaust" -> Arena_exhaust { soft_capacity = int_arg lineno "soft" (require "soft") }
    | "slow-consumer" -> Slow_consumer { stall_ns = int_arg lineno "stall" (require "stall") }
    | _ -> raise (Parse_error (Printf.sprintf "line %d: unknown fault %S" lineno name))
  in
  let p = Option.map (float_arg lineno "p") (find "p") in
  let from_ns = Option.map (int_arg lineno "from") (find "from") in
  let until_ns = Option.map (int_arg lineno "until") (find "until") in
  let schedule =
    match (find "every", find "one-shot", p, from_ns, until_ns) with
    | Some v, None, None, None, None -> Every_nth (int_arg lineno "every" v)
    | None, Some v, None, None, None -> One_shot { at_event = int_arg lineno "one-shot" v }
    | None, None, p, (Some _ as f), u | None, None, p, f, (Some _ as u) ->
        Window
          {
            from_ns = Option.value f ~default:0;
            until_ns = Option.value u ~default:max_int;
            p = Option.value p ~default:1.0;
          }
    | None, None, Some p, None, None -> Probability p
    | None, None, None, None, None ->
        raise
          (Parse_error
             (Printf.sprintf "line %d: %s needs a schedule (p=, every=, one-shot=, or from=/until=)"
                lineno name))
    | _ ->
        raise
          (Parse_error
             (Printf.sprintf "line %d: conflicting schedule keys (pick p/window, every=, or one-shot=)"
                lineno))
  in
  let scope = match find "ep" with Some v -> Endpoint (int_arg lineno "ep" v) | None -> Anywhere in
  let known = [ "p"; "from"; "until"; "every"; "one-shot"; "ep"; "extra"; "soft"; "stall" ] in
  List.iter
    (fun (k, _) ->
      if not (List.mem k known) then
        raise (Parse_error (Printf.sprintf "line %d: unknown key %S" lineno k)))
    kvs;
  { fault; schedule; scope }

let parse text =
  let seed = ref 0 in
  let rules = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = match String.index_opt line '#' with Some j -> String.sub line 0 j | None -> line in
      let toks =
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      match toks with
      | [] -> ()
      | [ "seed"; v ] -> seed := int_arg lineno "seed" v
      | "seed" :: _ -> raise (Parse_error (Printf.sprintf "line %d: seed takes one integer" lineno))
      | name :: args ->
          let kvs = List.map (parse_kv lineno) args in
          rules := parse_rule lineno name kvs :: !rules)
    lines;
  try make ~seed:!seed (List.rev !rules)
  with Invalid_argument m -> raise (Parse_error m)

(* --- builtin plans ------------------------------------------------------ *)

let builtin_texts =
  [
    ( "demo",
      "seed 42\n\
       drop p=0.02\n\
       corrupt p=0.005\n\
       duplicate p=0.01\n\
       reorder p=0.01\n\
       delay extra=4000 p=0.01\n\
       completion-loss p=0.002 ep=1\n\
       completion-delay extra=50000 p=0.005 ep=1\n\
       slow-consumer stall=2000 every=64 ep=1\n" );
    ("loss-1pct", "seed 42\ndrop p=0.01\ncompletion-loss p=0.001 ep=1\n");
    ( "stress",
      "seed 42\n\
       drop p=0.08\n\
       duplicate p=0.04\n\
       reorder p=0.04\n\
       completion-loss p=0.01 ep=1\n\
       slow-consumer stall=5000 every=16 ep=1\n" );
  ]

let builtin_names = List.map fst builtin_texts

let builtin ?seed name =
  match List.assoc_opt name builtin_texts with
  | None -> None
  | Some text ->
      let plan = parse text in
      Some (match seed with None -> plan | Some seed -> { plan with seed })
