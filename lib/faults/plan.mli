(** Faultline plans: a small declarative DSL for deterministic fault
    injection.

    A plan is a seed plus an ordered list of rules. Each rule names a
    fault (what goes wrong), an activation schedule (when it fires), and a
    scope (where it applies). Every stochastic choice a plan makes is
    drawn from [Sim.Rng] streams derived from the plan seed, so the same
    plan replayed against the same experiment seed produces byte-identical
    runs — faulted executions are as reproducible as clean ones.

    Faults by layer:
    - fabric: {!Drop}, {!Corrupt} (wire corruption, caught and dropped by
      the receiving NIC's FCS check), {!Duplicate}, {!Delay}, {!Reorder};
    - NIC: {!Completion_loss} (the CQE never arrives; descriptor
      references stay pinned until a reaper recovers them),
      {!Completion_delay};
    - memory: {!Arena_exhaust} (clamp an endpoint arena to a soft
      capacity for a time window), {!Slow_consumer} (inflate server
      service time, holding buffers longer). *)

type fault =
  | Drop
  | Corrupt
  | Duplicate
  | Delay of { extra_ns : int }
  | Reorder
  | Completion_loss
  | Completion_delay of { extra_ns : int }
  | Arena_exhaust of { soft_capacity : int }
  | Slow_consumer of { stall_ns : int }

type schedule =
  | Probability of float  (** fire on each matching event with probability p *)
  | Window of { from_ns : int; until_ns : int; p : float }
      (** like [Probability], but only inside [from_ns, until_ns) *)
  | Every_nth of int  (** fire on every nth matching event (1-based) *)
  | One_shot of { at_event : int }  (** fire once, on the nth matching event *)

type scope =
  | Anywhere
  | Endpoint of int
      (** fabric faults: destination endpoint; NIC/mem faults: the
          endpoint owning the device/arena *)

type rule = { fault : fault; schedule : schedule; scope : scope }

type t = { seed : int; rules : rule list }

exception Parse_error of string

(** [make ~seed rules] validates and builds a plan. Raises
    [Invalid_argument] on probabilities outside [0,1], non-positive
    periods/counts, negative delays, inverted windows, or an
    [Arena_exhaust] rule without a [Window] schedule. *)
val make : seed:int -> rule list -> t

(** Canonical one-line rendering of a rule, e.g.
    ["drop p=0.01 ep=1"] — parseable back by {!parse}. *)
val rule_to_string : rule -> string

(** Multi-line rendering of the whole plan ([seed N] first); the output
    round-trips through {!parse}. *)
val to_string : t -> string

(** Parse the textual form: one rule per line, [#] comments, an optional
    [seed N] line. Raises {!Parse_error} with a line-tagged message. *)
val parse : string -> t

(** Named example plans shipped with the CLI ([demo], [loss-1pct],
    [stress]); [?seed] overrides the template's seed. *)
val builtin : ?seed:int -> string -> t option

val builtin_names : string list
