(* First-class transport handle; see transport.mli. The record itself is
   defined in Endpoint (mutually recursive with the endpoint type, so the
   UDP implementation can be cached per endpoint); this module re-exports
   it under the natural name and provides the call-side API. *)

type t = Endpoint.transport = {
  tr_name : string;
  tr_ep : Endpoint.t;
  tr_headroom : int;
  tr_max_msg_len : int;
  tr_connect : peer:int -> unit;
  tr_send_inline :
    ?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit;
  tr_send_extra :
    ?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit;
  tr_send_inline_zc :
    ?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit;
  tr_send_extra_zc :
    ?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit;
  tr_send_string : dst:int -> string -> unit;
  tr_set_rx : (src:int -> Mem.Pinned.Buf.t -> unit) -> unit;
}

let udp = Endpoint.transport

let make ~name ~ep ~headroom ~max_msg_len ~connect ~send_inline ~send_extra
    ~send_inline_zc ~send_extra_zc ~send_string ~set_rx =
  {
    tr_name = name;
    tr_ep = ep;
    tr_headroom = headroom;
    tr_max_msg_len = max_msg_len;
    tr_connect = connect;
    tr_send_inline = send_inline;
    tr_send_extra = send_extra;
    tr_send_inline_zc = send_inline_zc;
    tr_send_extra_zc = send_extra_zc;
    tr_send_string = send_string;
    tr_set_rx = set_rx;
  }

let name t = t.tr_name

let endpoint t = t.tr_ep

let arena t = Endpoint.arena t.tr_ep

let headroom t = t.tr_headroom

let max_msg_len t = t.tr_max_msg_len

let connect t ~peer = t.tr_connect ~peer

let send_inline ?cpu t ~dst ~segments = t.tr_send_inline ?cpu ~dst ~segments

let send_extra ?cpu t ~dst ~segments = t.tr_send_extra ?cpu ~dst ~segments

let send_inline_zc ?cpu t ~dst ~head ~zc ~zc_n =
  t.tr_send_inline_zc ?cpu ~dst ~head ~zc ~zc_n
[@@alloc_free]

let send_extra_zc ?cpu t ~dst ~head ~zc ~zc_n =
  t.tr_send_extra_zc ?cpu ~dst ~head ~zc ~zc_n
[@@alloc_free]

let send_string t ~dst s = t.tr_send_string ~dst s

let set_rx t f = t.tr_set_rx f
