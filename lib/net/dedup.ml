type t = {
  capacity : int;
  seen : (int * int, int) Hashtbl.t; (* (src, id) -> arrivals *)
  order : (int * int) Queue.t; (* insertion order, for FIFO eviction *)
  mutable distinct : int;
  mutable duplicates : int;
  mutable evicted : int;
}

let create ?(capacity = 1 lsl 16) () =
  if capacity < 1 then invalid_arg "Dedup.create: capacity must be >= 1";
  {
    capacity;
    seen = Hashtbl.create 1024;
    order = Queue.create ();
    distinct = 0;
    duplicates = 0;
    evicted = 0;
  }

let witness t ~src ~id =
  let key = (src, id) in
  match Hashtbl.find_opt t.seen key with
  | Some n ->
      Hashtbl.replace t.seen key (n + 1);
      t.duplicates <- t.duplicates + 1;
      `Duplicate
  | None ->
      Hashtbl.replace t.seen key 1;
      Queue.add key t.order;
      t.distinct <- t.distinct + 1;
      if Queue.length t.order > t.capacity then begin
        let oldest = Queue.pop t.order in
        Hashtbl.remove t.seen oldest;
        t.evicted <- t.evicted + 1
      end;
      `New

let seen_count t ~src ~id =
  Option.value (Hashtbl.find_opt t.seen (src, id)) ~default:0

let distinct t = t.distinct

let duplicates t = t.duplicates

let evicted t = t.evicted
