type config = {
  nic_model : Nic.Model.t;
  tx_class_capacity : int;
  rx_capacity : int;
  arena_capacity : int;
  tx_batch : int;
  tx_batch_timeout_ns : int;
}

let default_config =
  {
    nic_model = Nic.Model.mellanox_cx6;
    tx_class_capacity = 2048;
    rx_capacity = 4096;
    arena_capacity = 1 lsl 20;
    tx_batch = 0;
    tx_batch_timeout_ns = 500;
  }

(* Consulted when [config.tx_batch = 0]; the bench harness flips it to turn
   doorbell coalescing on fleet-wide without threading a config through
   every rig constructor. *)
let default_tx_batch = Atomic.make 1

let set_default_tx_batch n = Atomic.set default_tx_batch (max 1 n)

type t = {
  id : int;
  fabric : Fabric.t;
  registry : Mem.Registry.t;
  cpu : Memmodel.Cpu.t option;
  nic : Nic.Device.t;
  config : config;
  tx_pool : Mem.Pinned.Pool.t;
  rx_pool : Mem.Pinned.Pool.t;
  rxq : Nic.Device.rxq; (* receive ring over [rx_pool] on [nic] *)
  arena : Mem.Arena.t;
  mutable rx_handler : src:int -> Mem.Pinned.Buf.t -> unit;
  mutable held : Nic.Device.txd list option; (* queued posts, reversed *)
  (* Coalesced posts parked for the next doorbell: a reusable scratch array
     (first [pending_n] slots live) — no per-batch list is built. *)
  mutable pending_txds : Nic.Device.txd array;
  mutable pending_n : int;
  mutable flush_scheduled : bool;
  (* Lazily built, cached UDP transport record (see [Transport]): hot send
     paths reach the datagram surfaces through the shared abstraction
     without allocating a record of closures per message. *)
  mutable udp_transport : transport option;
}

and transport = {
  tr_name : string;
  tr_ep : t;
  (* Scratch bytes the caller must leave at the front of the first gather
     segment of [tr_send_inline] / [tr_send_inline_zc]: the transport
     writes its headers (and any framing) there, so object header + copied
     fields + wire headers share one gather entry. *)
  tr_headroom : int;
  (* Largest message the transport can carry ([Packet.max_payload] for
     datagrams; the reassembly cap for stream transports). *)
  tr_max_msg_len : int;
  tr_connect : peer:int -> unit;
  tr_send_inline :
    ?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit;
  tr_send_extra :
    ?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit;
  tr_send_inline_zc :
    ?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit;
  tr_send_extra_zc :
    ?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit;
  tr_send_string : dst:int -> string -> unit;
  tr_set_rx : (src:int -> Mem.Pinned.Buf.t -> unit) -> unit;
}

let tx_batch t = if t.config.tx_batch > 0 then t.config.tx_batch else Atomic.get default_tx_batch

let engine t = Fabric.engine t.fabric

let handle_wire t frame =
  let bytes = Nic.Device.wire_bytes frame in
  let frame_len = Nic.Device.wire_len frame in
  let src, _dst = Packet.parse_header_bytes bytes ~len:frame_len in
  let payload_len = frame_len - Packet.header_len in
  if payload_len > 0 then
    (* The frame is the sender device's pooled snapshot, valid only for
       this call — the device DMAs it into a posted receive buffer now,
       before the fabric releases it. The handler receives the delivery
       reference; the ring slot recycles when the refcount hits zero
       (i.e. after the handler and every retained view release). Drops
       (ring overrun) are counted inside the queue. *)
    match
      Nic.Device.rx_deliver t.rxq bytes ~off:Packet.header_len
        ~len:payload_len
    with
    | Some buf -> t.rx_handler ~src buf
    | None -> ()

let create ?cpu ?nic ?(config = default_config) fabric registry ~id =
  let space = Mem.Registry.space registry in
  let tx_pool =
    Mem.Pinned.Pool.create space
      ~name:(Printf.sprintf "ep%d-tx" id)
      ~classes:
        (List.map
           (fun size -> (size, config.tx_class_capacity))
           [ 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384 ])
  in
  let rx_pool =
    Mem.Pinned.Pool.create space
      ~name:(Printf.sprintf "ep%d-rx" id)
      ~classes:[ (16384, config.rx_capacity) ]
  in
  Mem.Registry.register registry tx_pool;
  Mem.Registry.register registry rx_pool;
  let nic =
    match nic with
    | Some nic -> nic
    | None -> Nic.Device.create (Fabric.engine fabric) ~model:config.nic_model
  in
  let t =
    {
      id;
      fabric;
      registry;
      cpu;
      nic;
      config;
      tx_pool;
      rx_pool;
      rxq = Nic.Device.attach_rx ?cpu nic rx_pool;
      arena = Mem.Arena.create space ~capacity:config.arena_capacity;
      rx_handler =
        (fun ~src:_ buf ->
          Mem.Pinned.Buf.decr_ref ~site:"Endpoint.rx_default_drop" buf);
      held = None;
      pending_txds = [||];
      pending_n = 0;
      flush_scheduled = false;
      udp_transport = None;
    }
  in
  Nic.Device.set_on_wire nic (fun frame -> Fabric.inject fabric frame);
  Fabric.attach fabric ~id ~rx:(fun frame -> handle_wire t frame);
  t

let id t = t.id

let registry t = t.registry

let cpu t = t.cpu

let nic t = t.nic

let arena t = t.arena

(* Memory-pressure signal for zero-copy demotion: the TX ring filling up
   means completions are late (lost, delayed, or the wire is backed up),
   so zero-copy payload references would be pinned for a long time. A
   half-full ring never happens in a healthy run (steady-state occupancy
   is a handful of descriptors), so the signal is quiet unless something
   is actually wrong. *)
let under_pressure t =
  2 * Nic.Device.in_flight t.nic >= (Nic.Device.model t.nic).Nic.Model.tx_ring_entries

let alloc_tx ?cpu ?(site = "Endpoint.alloc_tx") t ~len =
  Mem.Pinned.Buf.alloc ?cpu ~site t.tx_pool ~len

let charge_post ?cpu t ~nsge =
  match cpu with
  | None -> ()
  | Some cpu ->
      let p = Memmodel.Cpu.params cpu in
      (* Ring-entry writes, doorbell, and the completion-side processing
         (descriptor reap + reference releases) pre-charged per packet.
         With doorbell coalescing the MMIO write is shared by the whole
         batch, so each send is charged its amortized share. *)
      Memmodel.Cpu.charge cpu Memmodel.Cpu.Tx
        ((float_of_int nsge *. p.Memmodel.Params.cost_sg_post)
        +. (p.Memmodel.Params.cost_doorbell /. float_of_int (tx_batch t))
        +. p.Memmodel.Params.cost_tx_packet)

(* One long-lived release closure shared by every descriptor: the stack's
   reference on each segment is dropped when the NIC completion fires;
   charged at post time. *)
let release_seg buf = Mem.Pinned.Buf.decr_ref ~site:"Nic.complete" buf

let acquire_txd t =
  let txd = Nic.Device.txd_acquire t.nic in
  Nic.Device.txd_set_release txd release_seg;
  txd

let pending_park t txd =
  let cap = Array.length t.pending_txds in
  if t.pending_n >= cap then begin
    let arr = Array.make (max 8 (2 * cap)) txd in
    Array.blit t.pending_txds 0 arr 0 t.pending_n;
    t.pending_txds <- arr
  end;
  t.pending_txds.(t.pending_n) <- txd;
  t.pending_n <- t.pending_n + 1

let flush_tx t =
  if t.pending_n > 0 then begin
    let n = t.pending_n in
    t.pending_n <- 0;
    Nic.Device.post_txd_batch t.nic t.pending_txds ~n
  end

(* Route one descriptor to the NIC: straight through when unbatched (the
   pre-coalescing behavior, event-for-event), else park it until the batch
   fills or the flush timer fires — so a lone send on an idle endpoint still
   leaves within [tx_batch_timeout_ns]. *)
let submit t txd =
  if tx_batch t <= 1 then Nic.Device.post_txd t.nic txd
  else begin
    pending_park t txd;
    if t.pending_n >= tx_batch t then flush_tx t
    else if not t.flush_scheduled then begin
      t.flush_scheduled <- true;
      Sim.Engine.schedule (engine t) ~after:t.config.tx_batch_timeout_ns
        (fun () ->
          t.flush_scheduled <- false;
          flush_tx t)
    end
  end

let post t txd =
  match t.held with
  | Some queued -> t.held <- Some (txd :: queued)
  | None -> submit t txd

let write_header ?cpu t ~dst buf =
  Packet.write_header
    (Mem.Pinned.Buf.backing buf)
    ~off:(Mem.Pinned.Buf.backing_off buf)
    ~src:t.id ~dst;
  Mem.Pinned.Buf.note_write ~site:"Endpoint.write_header" buf ~off:0
    ~len:Packet.header_len;
  match cpu with
  | None -> ()
  | Some cpu ->
      Memmodel.Cpu.stream cpu Memmodel.Cpu.Tx
        ~addr:(Mem.Pinned.Buf.addr buf)
        ~len:Packet.header_len

let send_inline_header ?cpu t ~dst ~segments =
  match segments with
  | [] -> invalid_arg "Endpoint.send_inline_header: no segments"
  | first :: _ ->
      if Mem.Pinned.Buf.len first < Packet.header_len then
        invalid_arg "Endpoint.send_inline_header: no header headroom";
      write_header ?cpu t ~dst first;
      charge_post ?cpu t ~nsge:(List.length segments);
      let txd = acquire_txd t in
      List.iter (Nic.Device.txd_push txd) segments;
      post t txd

let send_extra_header ?cpu t ~dst ~segments =
  let hdr =
    Mem.Pinned.Buf.alloc ?cpu ~site:"Endpoint.send_extra_header" t.tx_pool
      ~len:Packet.header_len
  in
  write_header ?cpu t ~dst hdr;
  charge_post ?cpu t ~nsge:(1 + List.length segments);
  let txd = acquire_txd t in
  Nic.Device.txd_push txd hdr;
  List.iter (Nic.Device.txd_push txd) segments;
  post t txd

(* Array-based serializer fast paths: gather entries come straight from the
   measured plan's zero-copy array (first [zc_n] slots of [zc]), filling a
   reusable NIC descriptor in place — no per-send segment list. *)
let send_inline_zc ?cpu t ~dst ~head ~zc ~zc_n =
  if Mem.Pinned.Buf.len head < Packet.header_len then
    invalid_arg "Endpoint.send_inline_zc: no header headroom";
  write_header ?cpu t ~dst head;
  charge_post ?cpu t ~nsge:(1 + zc_n);
  let txd = acquire_txd t in
  Nic.Device.txd_push txd head;
  for i = 0 to zc_n - 1 do
    Nic.Device.txd_push txd zc.(i)
  done;
  post t txd
[@@alloc_free]

let send_extra_zc ?cpu t ~dst ~head ~zc ~zc_n =
  let hdr =
    Mem.Pinned.Buf.alloc ?cpu ~site:"Endpoint.send_extra_header" t.tx_pool
      ~len:Packet.header_len
  in
  write_header ?cpu t ~dst hdr;
  charge_post ?cpu t ~nsge:(2 + zc_n);
  let txd = acquire_txd t in
  Nic.Device.txd_push txd hdr;
  Nic.Device.txd_push txd head;
  for i = 0 to zc_n - 1 do
    Nic.Device.txd_push txd zc.(i)
  done;
  post t txd
[@@alloc_free]

let send_string t ~dst s =
  let buf =
    Mem.Pinned.Buf.alloc ~site:"Endpoint.send_string" t.tx_pool
      ~len:(Packet.header_len + String.length s)
  in
  let v = Mem.Pinned.Buf.view buf in
  Bytes.blit_string s 0 v.Mem.View.data
    (v.Mem.View.off + Packet.header_len)
    (String.length s);
  Mem.Pinned.Buf.note_write ~site:"Endpoint.send_string" buf
    ~off:Packet.header_len ~len:(String.length s);
  send_inline_header t ~dst ~segments:[ buf ]

let set_rx t f = t.rx_handler <- f

let begin_hold t =
  if t.held <> None then invalid_arg "Endpoint.begin_hold: already holding";
  t.held <- Some []

let release_hold t ~after =
  match t.held with
  | None -> invalid_arg "Endpoint.release_hold: not holding"
  | Some queued ->
      t.held <- None;
      let batches = List.rev queued in
      if batches <> [] then
        Sim.Engine.schedule (engine t) ~after (fun () ->
            List.iter (fun txd -> submit t txd) batches)

let charge_rx ?cpu _t ~len =
  match cpu with
  | None -> ()
  | Some cpu ->
      let p = Memmodel.Cpu.params cpu in
      Memmodel.Cpu.charge cpu Memmodel.Cpu.Rx p.Memmodel.Params.cost_rx_packet;
      ignore len

(* The UDP endpoint *is* a transport: datagram per message, buffers released
   at NIC completion, no connection state. Built once per endpoint and
   cached so per-send transport dispatch never allocates. *)
(* Closures stored in the record keep ?cpu in final position (the record
   field types fix the shape); warning 16 is spurious here. *)
let[@warning "-16"] transport t =
  match t.udp_transport with
  | Some tr -> tr
  | None ->
      let tr =
        {
          tr_name = "udp";
          tr_ep = t;
          tr_headroom = Packet.header_len;
          tr_max_msg_len = Packet.max_payload;
          tr_connect = (fun ~peer -> ignore peer);
          tr_send_inline =
            (fun ?cpu ~dst ~segments -> send_inline_header ?cpu t ~dst ~segments);
          tr_send_extra =
            (fun ?cpu ~dst ~segments -> send_extra_header ?cpu t ~dst ~segments);
          tr_send_inline_zc =
            (fun ?cpu ~dst ~head ~zc ~zc_n ->
              send_inline_zc ?cpu t ~dst ~head ~zc ~zc_n);
          tr_send_extra_zc =
            (fun ?cpu ~dst ~head ~zc ~zc_n ->
              send_extra_zc ?cpu t ~dst ~head ~zc ~zc_n);
          tr_send_string = (fun ~dst s -> send_string t ~dst s);
          tr_set_rx = (fun f -> set_rx t f);
        }
      in
      t.udp_transport <- Some tr;
      tr

let rx_packets t = Nic.Device.rxq_packets t.rxq

let rx_dropped t = Nic.Device.rxq_dropped t.rxq

let rx_bytes t = Nic.Device.rxq_bytes t.rxq

(* Deliveries the application still pins (held buffers or [Wire.Rc_view]s):
   RX ring slots that cannot serve new frames until released. *)
let rx_outstanding t = Nic.Device.rx_outstanding t.rxq

let tx_packets t = Nic.Device.tx_packets t.nic

let tx_bytes t = Nic.Device.tx_bytes t.nic

let doorbells t = Nic.Device.doorbells t.nic
