(** Raw packet framing for the kernel-bypass UDP datapath.

    A fixed 42-byte Ethernet/IPv4/UDP header precedes every payload; endpoint
    ids stand in for MAC/IP/port tuples. The stack writes this header into
    the first scatter-gather entry of every send (§3.2.3). *)

(** Header field offsets — the layout in one place, shared by the writer and
    both parser entry points. *)
module Off : sig
  val header_len : int

  val ethertype : int

  val ip_version : int

  val src : int

  val dst : int
end

(** Alias for {!Off.header_len}. *)
val header_len : int

(** Jumbo frame payload budget (paper assumes ~9000-byte frames). *)
val max_payload : int

(** [write_header buf ~off ~src ~dst] writes the 42-byte header. *)
val write_header : Bytes.t -> off:int -> src:int -> dst:int -> unit

(** [parse_header s] reads [(src, dst)] from a wire packet — a zero-copy
    wrapper over {!parse_header_bytes}. Raises [Invalid_argument] if [s] is
    shorter than a header. *)
val parse_header : string -> int * int

(** [parse_header_bytes b ~len] — the single header parser: [len] is the
    frame length within [b] (whose capacity may be larger). *)
val parse_header_bytes : Bytes.t -> len:int -> int * int
