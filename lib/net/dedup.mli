(** Server-side duplicate suppression.

    Retransmissions and fabric-duplicated frames both deliver the same
    request (same source, same request id) more than once; a server that
    applies non-idempotent operations must suppress the replays. The
    window is a bounded FIFO of [(src, id)] keys — oldest keys are
    evicted once [capacity] distinct keys are tracked, bounding memory
    for arbitrarily long runs (an evicted key's late duplicate would be
    re-applied; size the window above the retry horizon). *)

type t

val create : ?capacity:int -> unit -> t

(** [witness t ~src ~id] records an arrival and classifies it: [`New] the
    first time a key is seen (within the window), [`Duplicate] after. *)
val witness : t -> src:int -> id:int -> [ `New | `Duplicate ]

(** Times a given key has been witnessed (0 if unseen or evicted). *)
val seen_count : t -> src:int -> id:int -> int

(** Distinct keys witnessed / duplicate arrivals suppressed / keys
    evicted by the window bound. *)
val distinct : t -> int

val duplicates : t -> int

val evicted : t -> int
