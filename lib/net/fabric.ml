type t = {
  engine : Sim.Engine.t;
  one_way_delay_ns : int;
  mutable loss_rate : float;
  rng : Sim.Rng.t;
  endpoints : (int, Nic.Device.wire -> unit) Hashtbl.t;
  mutable delivered : int;
  mutable dropped : int;
  dropped_by_dst : (int, int) Hashtbl.t;
  mutable injector : Faults.Injector.t option;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable reordered : int;
}

let check_loss_rate r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Fabric: loss rate %g outside [0,1]" r)

let create ?(one_way_delay_ns = 850) ?(loss_rate = 0.0) engine =
  check_loss_rate loss_rate;
  {
    engine;
    one_way_delay_ns;
    loss_rate;
    rng = Sim.Rng.create ~seed:0x5eed_fab;
    endpoints = Hashtbl.create 64;
    delivered = 0;
    dropped = 0;
    dropped_by_dst = Hashtbl.create 16;
    injector = None;
    corrupted = 0;
    duplicated = 0;
    delayed = 0;
    reordered = 0;
  }

let engine t = t.engine

let one_way_delay_ns t = t.one_way_delay_ns

let attach t ~id ~rx =
  if Hashtbl.mem t.endpoints id then
    invalid_arg (Printf.sprintf "Fabric.attach: duplicate endpoint %d" id);
  Hashtbl.replace t.endpoints id rx

let set_loss_rate t r =
  check_loss_rate r;
  t.loss_rate <- r

let set_injector t inj = t.injector <- inj

let injector t = t.injector

let drop t ~dst =
  t.dropped <- t.dropped + 1;
  let prev = Option.value (Hashtbl.find_opt t.dropped_by_dst dst) ~default:0 in
  Hashtbl.replace t.dropped_by_dst dst (prev + 1)

(* Each scheduled delivery owns one reference on the frame: the receiving
   NIC copies it into a posted rx buffer synchronously in [rx], so the
   frame goes back to the sender's pool as soon as its last delivery (or
   drop) is accounted. *)
let deliver t ~after rx w =
  Sim.Engine.schedule t.engine ~after (fun () ->
      t.delivered <- t.delivered + 1;
      rx w;
      Nic.Device.wire_release w)

let inject t w =
  let _src, dst =
    Packet.parse_header_bytes (Nic.Device.wire_bytes w)
      ~len:(Nic.Device.wire_len w)
  in
  let lost = t.loss_rate > 0.0 && Sim.Rng.bool t.rng t.loss_rate in
  if lost then begin
    drop t ~dst;
    Nic.Device.wire_release w
  end
  else
    match Hashtbl.find_opt t.endpoints dst with
    | None ->
        drop t ~dst;
        Nic.Device.wire_release w
    | Some rx -> (
        let fault =
          match t.injector with
          | None -> None
          | Some inj ->
              Faults.Injector.fabric_decision inj ~now:(Sim.Engine.now t.engine) ~dst
        in
        match fault with
        | Some `Drop ->
            drop t ~dst;
            Nic.Device.wire_release w
        | Some `Corrupt ->
            (* Wire corruption: the receiving NIC's FCS check catches the
               mangled frame and discards it before the host sees it, so a
               corrupt packet is a (separately counted) drop. *)
            t.corrupted <- t.corrupted + 1;
            drop t ~dst;
            Nic.Device.wire_release w
        | Some `Duplicate ->
            t.duplicated <- t.duplicated + 1;
            Nic.Device.wire_retain w;
            deliver t ~after:t.one_way_delay_ns rx w;
            deliver t ~after:(2 * t.one_way_delay_ns) rx w
        | Some (`Delay extra) ->
            t.delayed <- t.delayed + 1;
            deliver t ~after:(t.one_way_delay_ns + extra) rx w
        | Some `Reorder ->
            (* Hold the packet for two extra one-way delays so anything
               sent in that window overtakes it. *)
            t.reordered <- t.reordered + 1;
            deliver t ~after:(3 * t.one_way_delay_ns) rx w
        | None -> deliver t ~after:t.one_way_delay_ns rx w)

let delivered t = t.delivered

let dropped t = t.dropped

let dropped_to t ~dst =
  Option.value (Hashtbl.find_opt t.dropped_by_dst dst) ~default:0

let drops_by_dst t =
  Hashtbl.fold (fun dst n acc -> (dst, n) :: acc) t.dropped_by_dst []
  |> List.sort compare

let corrupted t = t.corrupted

let duplicated t = t.duplicated

let delayed t = t.delayed

let reordered t = t.reordered
