(** Kernel-bypass UDP endpoint: the networking half of the co-design.

    Owns a NIC, pinned staging pools, and a receive path that delivers
    packets as refcounted buffers ([Listing 2] of the paper: [alloc],
    [recv_packet] as the rx handler, [recover_ptr] via the registry). Two
    pairs of send entry points encode the paper's §6.5.2 comparison:

    - [send_inline_header] / [send_inline_zc]: serialize-and-send. The
      caller built the first segment with [Packet.header_len] bytes of
      headroom; the stack writes the packet header there, so object header
      + copied fields + packet header share one gather entry.
    - [send_extra_header] / [send_extra_zc]: the conventional path. The
      stack allocates a separate header-only entry and prepends it, costing
      one more gather entry and one more allocation.

    The [_header] variants take the gather list as an OCaml list; the [_zc]
    variants (PR 4's serializer fast paths) take [head] plus the measured
    plan's zero-copy {e array} and fill the NIC's reusable transmit
    descriptor in place — no per-send segment list is ever built, which is
    what keeps the serialize-and-send hot path allocation-free.

    TX doorbell coalescing: every send path routes descriptors through the
    same batching layer. [config.tx_batch] descriptors share one doorbell
    (a partial batch flushes after [tx_batch_timeout_ns], or explicitly via
    [flush_tx]); [tx_batch = 1] rings per send, and the default [tx_batch =
    0] means "follow [set_default_tx_batch]'s process-wide setting", itself
    1 unless a harness raises it.

    Ownership: the stack takes over the caller's reference on every segment
    and releases it when the NIC completion fires — the use-after-free
    guarantee. Completion-side refcount work is pre-charged at post time so
    per-request service times include it. *)

type t

(** First-class transport handle: the socket-like surface the serializers
    and load harness talk to, so the copy/zero-copy decision lives behind
    one API regardless of datapath (mirrors how [Apps.Backend.t] abstracts
    serializers). Implemented by this module for UDP (see [transport]) and
    by [Tcp.transport] for the retransmitting stream path. The ownership
    contract differs per implementation — UDP releases segment references
    at NIC completion; TCP holds its own reference per segment until the
    cumulative ACK covers it — but callers see one rule: the transport
    takes over the caller's reference on every segment passed to a send. *)
type transport = {
  tr_name : string;
  tr_ep : t;  (** underlying endpoint (arena, NIC counters, pressure) *)
  tr_headroom : int;
      (** scratch bytes the caller must leave at the front of the first
          gather segment of [tr_send_inline] / [tr_send_inline_zc]; the
          transport writes its headers (and any framing) there *)
  tr_max_msg_len : int;
      (** largest message the transport can carry ([Packet.max_payload]
          for datagrams; the reassembly cap for stream transports) *)
  tr_connect : peer:int -> unit;
      (** establish a path to [peer] (no-op for UDP; 3-way handshake for
          TCP — drive the engine afterwards, e.g. during warmup) *)
  tr_send_inline :
    ?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit;
  tr_send_extra :
    ?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit;
  tr_send_inline_zc :
    ?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit;
  tr_send_extra_zc :
    ?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit;
  tr_send_string : dst:int -> string -> unit;
  tr_set_rx : (src:int -> Mem.Pinned.Buf.t -> unit) -> unit;
      (** register the message upcall: one refcounted buffer per delivered
          message (datagram payload, or one reassembled record for stream
          transports), header/framing stripped; the handler owns the
          reference *)
}

(** The endpoint's UDP transport view. Cached on the endpoint (one record
    per endpoint, allocated on first use), so hot send paths that go
    through the transport stay allocation-free. *)
val transport : t -> transport

type config = {
  nic_model : Nic.Model.t;
  tx_class_capacity : int; (* staging buffers per power-of-two class *)
  rx_capacity : int; (* jumbo receive buffers *)
  arena_capacity : int;
  tx_batch : int;
      (* TX doorbell coalescing: descriptors per doorbell. 1 = ring per
         send (the classic behavior); 0 = follow [set_default_tx_batch]'s
         process-wide default (itself 1 unless changed). *)
  tx_batch_timeout_ns : int;
      (* flush-on-idle: a partial batch leaves after this long *)
}

val default_config : config

(** Process-wide default batch size used by endpoints whose config says
    [tx_batch = 0]; clamped to >= 1. Set before driving traffic. *)
val set_default_tx_batch : int -> unit

(** [create ?cpu ?nic ?config fabric registry ~id] — pass [nic] to share one
    NIC device between several endpoints (multicore experiments: cores share
    the port's line rate and DMA pipeline). *)
val create :
  ?cpu:Memmodel.Cpu.t ->
  ?nic:Nic.Device.t ->
  ?config:config ->
  Fabric.t ->
  Mem.Registry.t ->
  id:int ->
  t

val id : t -> int

val engine : t -> Sim.Engine.t

val registry : t -> Mem.Registry.t

val cpu : t -> Memmodel.Cpu.t option

val nic : t -> Nic.Device.t

(** Per-request arena for copied serialization data; the request harness
    resets it between requests. *)
val arena : t -> Mem.Arena.t

(** True when the TX ring is at least half full — completions are not
    keeping up (lost/delayed CQEs, wire backlog), so zero-copy payload
    references would stay pinned for a long time. The send path uses this
    to demote zero-copy fields to arena copies; healthy runs never
    trigger it. *)
val under_pressure : t -> bool

(** [alloc_tx ?cpu ?site t ~len] takes a staging buffer from the TX pool.
    [site] labels the allocation in RefSan reports. *)
val alloc_tx :
  ?cpu:Memmodel.Cpu.t -> ?site:string -> t -> len:int -> Mem.Pinned.Buf.t

(** [send_inline_header ?cpu t ~dst ~segments] — see module doc. The first
    segment's initial [Packet.header_len] bytes are overwritten. *)
val send_inline_header :
  ?cpu:Memmodel.Cpu.t -> t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit

(** [send_extra_header ?cpu t ~dst ~segments] — see module doc. *)
val send_extra_header :
  ?cpu:Memmodel.Cpu.t -> t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit

(** Array-based serializer fast paths: [send_inline_zc] /
    [send_extra_zc] behave exactly like their [_header] counterparts on
    [head :: zc.(0) .. zc.(zc_n - 1)], but fill the NIC's reusable
    descriptor straight from the plan's zero-copy array — no per-send
    segment list is built. Slots of [zc] at index [>= zc_n] are ignored. *)
val send_inline_zc :
  ?cpu:Memmodel.Cpu.t ->
  t ->
  dst:int ->
  head:Mem.Pinned.Buf.t ->
  zc:Mem.Pinned.Buf.t array ->
  zc_n:int ->
  unit

val send_extra_zc :
  ?cpu:Memmodel.Cpu.t ->
  t ->
  dst:int ->
  head:Mem.Pinned.Buf.t ->
  zc:Mem.Pinned.Buf.t array ->
  zc_n:int ->
  unit

(** [send_string t ~dst s] — uncharged convenience for load generators:
    copies [s] into a staging buffer and sends it. *)
val send_string : t -> dst:int -> string -> unit

(** [set_rx t f] registers the receive upcall. [f ~src buf] receives the
    payload (header stripped) as a refcounted buffer with one reference that
    the handler must eventually release. *)
val set_rx : t -> (src:int -> Mem.Pinned.Buf.t -> unit) -> unit

(** Send holds. The request harness executes a handler at simulated time T
    to *measure* its service time dt, but the responses it produced must not
    reach the NIC before T+dt. [begin_hold] buffers descriptor posts;
    [release_hold ~after] replays them [after] ns later (order preserved).
    CPU costs are charged at call time either way. *)
val begin_hold : t -> unit

val release_hold : t -> after:int -> unit

(** Software receive-path cost (parse + steering), charged by the request
    harness when it dequeues a packet. *)
val charge_rx : ?cpu:Memmodel.Cpu.t -> t -> len:int -> unit

(** Post any coalesced TX descriptors waiting for a full batch now, without
    waiting for the flush timer. No-op when nothing is pending. *)
val flush_tx : t -> unit

val rx_packets : t -> int

(** Frames dropped because no receive buffer was available (host overload). *)
val rx_dropped : t -> int

val rx_bytes : t -> int

(** Deliveries the application still pins (held buffers or retained
    [Wire.Rc_view]s): RX ring slots that cannot serve new frames until
    their refcount hits zero. *)
val rx_outstanding : t -> int

val tx_packets : t -> int

val tx_bytes : t -> int

(** Doorbell rings on this endpoint's NIC (shared-NIC setups count all
    endpoints on the device). *)
val doorbells : t -> int
