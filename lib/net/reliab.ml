type config = {
  timeout_ns : int;
  max_retries : int;
  backoff : float;
  jitter : float;
  reap_period_ns : int;
}

let default_config =
  { timeout_ns = 100_000; max_retries = 4; backoff = 2.0; jitter = 0.1; reap_period_ns = 250_000 }

type entry = {
  e_send : unit -> unit;
  e_give_up : unit -> unit;
  e_deadline : int option; (* absolute engine time; no send at/after it *)
  mutable attempts : int; (* sends so far, including the first *)
  mutable resolved : bool;
}

type t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  config : config;
  pending : (int, entry) Hashtbl.t;
  mutable reaper : (unit -> unit) option;
  mutable reaper_armed : bool;
  mutable tracked : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable give_ups : int;
  mutable abandoned : int;
  mutable acked : int;
  mutable dup_acks : int;
}

let check_config c =
  if c.timeout_ns <= 0 then invalid_arg "Reliab: timeout_ns must be positive";
  if c.max_retries < 0 then invalid_arg "Reliab: max_retries must be >= 0";
  if c.backoff < 1.0 then invalid_arg "Reliab: backoff must be >= 1";
  if not (c.jitter >= 0.0 && c.jitter <= 1.0) then invalid_arg "Reliab: jitter outside [0,1]";
  if c.reap_period_ns <= 0 then invalid_arg "Reliab: reap_period_ns must be positive"

let create ?(config = default_config) engine ~rng =
  check_config config;
  {
    engine;
    rng;
    config;
    pending = Hashtbl.create 256;
    reaper = None;
    reaper_armed = false;
    tracked = 0;
    retries = 0;
    timeouts = 0;
    give_ups = 0;
    abandoned = 0;
    acked = 0;
    dup_acks = 0;
  }

let outstanding t = Hashtbl.length t.pending

(* The reaper self-reschedules only while requests are outstanding, so an
   idle layer never keeps the engine's event loop alive. *)
let rec arm_reaper t =
  if (not t.reaper_armed) && t.reaper <> None && outstanding t > 0 then begin
    t.reaper_armed <- true;
    Sim.Engine.schedule t.engine ~after:t.config.reap_period_ns (fun () ->
        t.reaper_armed <- false;
        (match t.reaper with Some f -> f () | None -> ());
        arm_reaper t)
  end

let set_reaper t f =
  t.reaper <- Some f;
  arm_reaper t

let timeout_for t e =
  let base = float_of_int t.config.timeout_ns *. (t.config.backoff ** float_of_int (e.attempts - 1)) in
  let jitter = 1.0 +. (t.config.jitter *. ((2.0 *. Sim.Rng.float t.rng) -. 1.0)) in
  max 1 (int_of_float (base *. jitter))

(* Abandon at the deadline: the request resolves exactly when its budget
   expires, not one retransmission timeout later. *)
let abandon t ~id e =
  e.resolved <- true;
  Hashtbl.remove t.pending id;
  t.give_ups <- t.give_ups + 1;
  t.abandoned <- t.abandoned + 1;
  e.e_give_up ()

let rec arm t ~id e =
  let timeout = timeout_for t e in
  (* A per-request deadline clamps the retry budget: a retransmission
     whose timer would fire at or past the deadline is never scheduled —
     the request instead reports [Abandoned] deterministically at the
     deadline itself. *)
  match e.e_deadline with
  | Some d when Sim.Engine.now t.engine + timeout >= d ->
      Sim.Engine.schedule t.engine
        ~after:(max 1 (d - Sim.Engine.now t.engine))
        (fun () -> if not e.resolved then abandon t ~id e)
  | _ ->
      Sim.Engine.schedule t.engine ~after:timeout (fun () ->
          if not e.resolved then begin
            t.timeouts <- t.timeouts + 1;
            if e.attempts > t.config.max_retries then begin
              e.resolved <- true;
              Hashtbl.remove t.pending id;
              t.give_ups <- t.give_ups + 1;
              e.e_give_up ()
            end
            else begin
              t.retries <- t.retries + 1;
              e.attempts <- e.attempts + 1;
              e.e_send ();
              arm t ~id e
            end
          end)

let track ?deadline_ns t ~id ~send ~give_up =
  if Hashtbl.mem t.pending id then
    invalid_arg (Printf.sprintf "Reliab.track: id %d already tracked" id);
  (match deadline_ns with
  | Some d when d <= 0 -> invalid_arg "Reliab.track: deadline_ns must be positive"
  | _ -> ());
  let e =
    {
      e_send = send;
      e_give_up = give_up;
      e_deadline =
        Option.map (fun d -> Sim.Engine.now t.engine + d) deadline_ns;
      attempts = 1;
      resolved = false;
    }
  in
  Hashtbl.replace t.pending id e;
  t.tracked <- t.tracked + 1;
  send ();
  arm t ~id e;
  arm_reaper t

let ack t ~id =
  match Hashtbl.find_opt t.pending id with
  | Some e when not e.resolved ->
      e.resolved <- true;
      Hashtbl.remove t.pending id;
      t.acked <- t.acked + 1;
      `Acked
  | _ ->
      t.dup_acks <- t.dup_acks + 1;
      `Duplicate

let tracked t = t.tracked

let retries t = t.retries

let timeouts t = t.timeouts

let give_ups t = t.give_ups

let abandoned t = t.abandoned

let acked t = t.acked

let dup_acks t = t.dup_acks
