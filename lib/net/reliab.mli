(** Client-side reliability: per-request timeout + retry with exponential
    backoff and deterministic jitter.

    Datagram endpoints ({!Endpoint}) give no delivery guarantee, and
    Faultline can drop packets and completions at will; this layer makes a
    request loop survive that. Each tracked request re-arms a retransmit
    timer; on expiry it re-sends (same request id, so the server's
    duplicate suppression and the client's response matching both keep
    working) with the timeout growing by [backoff] per attempt, plus a
    jitter drawn from a [Sim.Rng] stream — deterministic per seed.

    The layer also owns the TX-ring reaper: while requests are
    outstanding it periodically invokes a caller-supplied reap callback
    (typically [Nic.Device.reap_lost] on every NIC) so descriptors whose
    CQE was lost get their references released. The reaper re-arms only
    while work is outstanding, so a quiescing engine still terminates. *)

type config = {
  timeout_ns : int;  (** base retransmission timeout *)
  max_retries : int;  (** re-sends after the initial attempt *)
  backoff : float;  (** timeout multiplier per attempt (>= 1.0) *)
  jitter : float;  (** +/- fraction of each timeout (in [0,1]) *)
  reap_period_ns : int;  (** reap callback period while outstanding *)
}

val default_config : config

type t

(** [create ?config engine ~rng]. The rng should be split from the
    experiment seed so retry jitter replays deterministically. Raises
    [Invalid_argument] on a non-positive timeout/period, negative
    retries, backoff < 1, or jitter outside [0,1]. *)
val create : ?config:config -> Sim.Engine.t -> rng:Sim.Rng.t -> t

(** [track ?deadline_ns t ~id ~send ~give_up] sends a request (calling
    [send] once, now) and arms its retransmit timer. [send] is re-invoked
    on each retry; [give_up] runs once if [max_retries] re-sends all time
    out. A [deadline_ns] (relative to now) clamps the retry budget: no
    retransmission whose timer would fire at or past the deadline is
    scheduled — instead the request resolves at the deadline itself,
    running [give_up] and counting as {!abandoned} (deterministic: the
    abandon time is the deadline, independent of jitter draws). Raises
    [Invalid_argument] if [id] is already tracked or the deadline is not
    positive. *)
val track :
  ?deadline_ns:int ->
  t ->
  id:int ->
  send:(unit -> unit) ->
  give_up:(unit -> unit) ->
  unit

(** Acknowledge a response. [`Acked] completes the request and disarms
    its timer; [`Duplicate] means the id was unknown — already acked,
    given up, or never tracked. *)
val ack : t -> id:int -> [ `Acked | `Duplicate ]

(** Install the reap callback (see module doc). *)
val set_reaper : t -> (unit -> unit) -> unit

(** Requests currently awaiting a response. *)
val outstanding : t -> int

(** Counters: requests tracked, retransmissions sent, timer expiries,
    requests abandoned after exhausting retries, first acks, and
    duplicate/late acks. *)
val tracked : t -> int

val retries : t -> int

val timeouts : t -> int

val give_ups : t -> int

(** Of the {!give_ups}, how many resolved at a deadline (always [<=]
    [give_ups]; a deadline abandon also counts as a give-up so existing
    accounting — e.g. the load driver's abandoned column — is unchanged). *)
val abandoned : t -> int

val acked : t -> int

val dup_acks : t -> int
