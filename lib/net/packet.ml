let header_len = 42

let max_payload = 9000

let src_off = 26 (* IPv4 source address slot *)

let dst_off = 30 (* IPv4 destination address slot *)

let set_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let write_header buf ~off ~src ~dst =
  if off + header_len > Bytes.length buf then
    invalid_arg "Packet.write_header: buffer too small";
  Bytes.fill buf off header_len '\000';
  (* Ethertype 0x0800, IPv4 version/IHL, UDP stubs — enough to look like a
     frame in hexdumps; ids carry the routing information. *)
  Bytes.set buf (off + 12) '\x08';
  Bytes.set buf (off + 14) '\x45';
  set_u32 buf (off + src_off) src;
  set_u32 buf (off + dst_off) dst

let parse_header s =
  if String.length s < header_len then
    invalid_arg "Packet.parse_header: truncated";
  (get_u32 s src_off, get_u32 s dst_off)

let get_u32_bytes b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* [len] is the frame length, not the buffer capacity: pooled egress frames
   ride in rounded-up buffers. *)
let parse_header_bytes b ~len =
  if len < header_len then invalid_arg "Packet.parse_header: truncated";
  (get_u32_bytes b src_off, get_u32_bytes b dst_off)
