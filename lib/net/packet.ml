(* Header field offsets, shared by the writer and both parser entry points
   so the layout is stated exactly once. *)
module Off = struct
  let header_len = 42

  let ethertype = 12 (* 0x0800 = IPv4 *)

  let ip_version = 14 (* version/IHL byte *)

  let src = 26 (* IPv4 source address slot *)

  let dst = 30 (* IPv4 destination address slot *)
end

let header_len = Off.header_len

let max_payload = 9000

let set_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let write_header buf ~off ~src ~dst =
  if off + header_len > Bytes.length buf then
    invalid_arg "Packet.write_header: buffer too small";
  Bytes.fill buf off header_len '\000';
  (* Ethertype 0x0800, IPv4 version/IHL, UDP stubs — enough to look like a
     frame in hexdumps; ids carry the routing information. *)
  Bytes.set buf (off + Off.ethertype) '\x08';
  Bytes.set buf (off + Off.ip_version) '\x45';
  set_u32 buf (off + Off.src) src;
  set_u32 buf (off + Off.dst) dst

(* The single parser: [len] is the frame length, not the buffer capacity —
   pooled egress frames ride in rounded-up buffers. *)
let parse_header_bytes b ~len =
  if len < header_len then invalid_arg "Packet.parse_header: truncated";
  (get_u32 b Off.src, get_u32 b Off.dst)

(* [Bytes.unsafe_of_string] is sound here because the parser only reads. *)
let parse_header s =
  parse_header_bytes (Bytes.unsafe_of_string s) ~len:(String.length s)
