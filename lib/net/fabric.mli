(** Network fabric connecting endpoints.

    Models the 100 Gbps switch (or back-to-back cable) between the load
    generators and the server: a constant one-way delay, in-order delivery,
    optional random loss for TCP tests, and an optional Faultline injector
    for deterministic drop / corrupt / duplicate / delay / reorder faults. *)

type t

(** Raises [Invalid_argument] if [loss_rate] is outside [0,1]. *)
val create : ?one_way_delay_ns:int -> ?loss_rate:float -> Sim.Engine.t -> t

val engine : t -> Sim.Engine.t

val one_way_delay_ns : t -> int

(** [attach t ~id ~rx] registers endpoint [id]; [rx frame] is called when a
    wire packet addressed to [id] arrives. The frame is only valid for the
    duration of the call (the fabric releases it to the sender's pool right
    after [rx] returns), so receivers must copy out synchronously. *)
val attach : t -> id:int -> rx:(Nic.Device.wire -> unit) -> unit

(** [inject t frame] routes a wire packet to its destination endpoint after
    the one-way delay (subject to loss and injected faults). Unknown
    destinations are dropped. Takes ownership of the frame's reference:
    the fabric releases it after the last delivery (or on drop). *)
val inject : t -> Nic.Device.wire -> unit

(** [set_loss_rate t r] changes the drop probability (failure injection).
    Raises [Invalid_argument] outside [0,1]. *)
val set_loss_rate : t -> float -> unit

(** Attach (or clear) a Faultline injector; consulted for every packet
    that survives the baseline loss rate. *)
val set_injector : t -> Faults.Injector.t option -> unit

val injector : t -> Faults.Injector.t option

val delivered : t -> int

(** Total packets dropped (baseline loss + injected drops + corrupt
    frames + unknown destinations). *)
val dropped : t -> int

(** Drops charged to one destination endpoint. *)
val dropped_to : t -> dst:int -> int

(** All per-destination drop counts, sorted by endpoint id. *)
val drops_by_dst : t -> (int * int) list

(** Frames discarded by the receiving NIC's FCS check (injected
    [Corrupt] faults); also counted in {!dropped}. *)
val corrupted : t -> int

val duplicated : t -> int

val delayed : t -> int

val reordered : t -> int
