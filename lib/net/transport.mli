(** First-class transport abstraction over the two datapaths.

    A [Transport.t] is the socket-like handle serializers, apps, and the
    load harness talk to — the same role [Apps.Backend.t] plays for
    serialization formats. Both implementations expose the full gather
    surface, so serialize-and-send, the [_zc] array fast paths, and TX
    doorbell batching apply to either datapath:

    - [udp ep] — datagram path over [Endpoint]; segment references are
      released at NIC completion.
    - [Tcp.transport] — retransmitting stream path; the connection keeps
      its own reference per segment until the cumulative ACK covers it, so
      retransmits never read freed memory.

    Callers see one ownership rule either way: every send {e takes over}
    the caller's reference on each segment. [connect] is a no-op for UDP
    and the 3-way handshake for TCP (issue it while the engine still has
    warmup to run). The receive upcall delivers one refcounted buffer per
    message — a datagram payload, or one reassembled length-prefixed
    record for the stream path — with wire framing stripped. *)

type t = Endpoint.transport = {
  tr_name : string;
  tr_ep : Endpoint.t;
  tr_headroom : int;
  tr_max_msg_len : int;
  tr_connect : peer:int -> unit;
  tr_send_inline :
    ?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit;
  tr_send_extra :
    ?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit;
  tr_send_inline_zc :
    ?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit;
  tr_send_extra_zc :
    ?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit;
  tr_send_string : dst:int -> string -> unit;
  tr_set_rx : (src:int -> Mem.Pinned.Buf.t -> unit) -> unit;
}

(** [udp ep] — the endpoint's cached UDP transport (same record on every
    call, so routing hot paths through it allocates nothing). *)
val udp : Endpoint.t -> t

(** Constructor for new transport implementations (TCP lives in [Tcp] to
    keep dependencies acyclic; tests can build in-process fakes). *)
val make :
  name:string ->
  ep:Endpoint.t ->
  headroom:int ->
  max_msg_len:int ->
  connect:(peer:int -> unit) ->
  send_inline:
    (?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit) ->
  send_extra:
    (?cpu:Memmodel.Cpu.t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit) ->
  send_inline_zc:
    (?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit) ->
  send_extra_zc:
    (?cpu:Memmodel.Cpu.t ->
    dst:int ->
    head:Mem.Pinned.Buf.t ->
    zc:Mem.Pinned.Buf.t array ->
    zc_n:int ->
    unit) ->
  send_string:(dst:int -> string -> unit) ->
  set_rx:((src:int -> Mem.Pinned.Buf.t -> unit) -> unit) ->
  t

val name : t -> string

(** Underlying endpoint: arena, NIC/ring counters, pressure signal. *)
val endpoint : t -> Endpoint.t

(** [arena t] = [Endpoint.arena (endpoint t)]. *)
val arena : t -> Mem.Arena.t

(** Scratch bytes to leave at the front of the first inline gather
    segment; the transport writes its headers/framing there. *)
val headroom : t -> int

val max_msg_len : t -> int

val connect : t -> peer:int -> unit

val send_inline :
  ?cpu:Memmodel.Cpu.t -> t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit

val send_extra :
  ?cpu:Memmodel.Cpu.t -> t -> dst:int -> segments:Mem.Pinned.Buf.t list -> unit

val send_inline_zc :
  ?cpu:Memmodel.Cpu.t ->
  t ->
  dst:int ->
  head:Mem.Pinned.Buf.t ->
  zc:Mem.Pinned.Buf.t array ->
  zc_n:int ->
  unit

val send_extra_zc :
  ?cpu:Memmodel.Cpu.t ->
  t ->
  dst:int ->
  head:Mem.Pinned.Buf.t ->
  zc:Mem.Pinned.Buf.t array ->
  zc_n:int ->
  unit

val send_string : t -> dst:int -> string -> unit

val set_rx : t -> (src:int -> Mem.Pinned.Buf.t -> unit) -> unit
