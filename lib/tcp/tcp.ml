let header_len = 16

let mss = 8900 (* stream bytes per frame; fits a jumbo with headers *)

let initial_rto_ns = 200_000

(* The floor stays well above queueing-tail RTTs (tens of microseconds
   under load): an RTO below the latency tail causes spurious
   retransmission storms. Fast loss recovery below the floor comes from
   fast retransmit, not the timer. *)
let min_rto_ns = 100_000

let max_rto_ns = 5_000_000

let dupack_threshold = 3

let max_retries = 10

let flag_syn = 1

let flag_ack = 2

let flag_data = 4

type state = Syn_sent | Established | Closed

type frame = {
  f_seq : int;
  f_len : int;
  f_segments : Mem.Pinned.Buf.t list; (* one connection-owned ref each *)
  mutable sent_at : int;
  mutable retries : int;
  (* RefSan holds covering the payload while the frame sits in the
     retransmission queue: the NIC may re-read these bytes until the ACK. *)
  mutable f_holds : int option list;
}

type conn = {
  stack : stack;
  peer : int;
  mutable state : state;
  mutable snd_nxt : int;
  mutable snd_una : int;
  mutable inflight : frame list; (* ascending seq *)
  mutable rcv_nxt : int;
  ooo : (int, string) Hashtbl.t; (* out-of-order payloads by seq *)
  assembly : Buffer.t; (* in-order bytes not yet framed into messages *)
  mutable pending : Wire.Payload.t list list;
      (* messages queued pre-establishment; [Zero_copy] payloads keep their
         pinned references until the handshake completes and they frame *)
  mutable retransmissions : int;
  mutable timer_armed : bool;
  (* RTT estimation (RFC 6298 style) and fast retransmit. *)
  mutable srtt_ns : float;
  mutable rttvar_ns : float;
  mutable rto_ns : int;
  mutable dup_acks : int;
  mutable last_ack : int;
}

and stack = {
  ep : Net.Endpoint.t;
  engine : Sim.Engine.t;
  conns : (int, conn) Hashtbl.t;
  pool : Mem.Pinned.Pool.t; (* reassembled-message delivery buffers *)
  mutable on_message : conn -> Mem.Pinned.Buf.t -> unit;
  mutable tcp_transport : Net.Transport.t option; (* cached handle *)
}

(* --- Frame emission ---------------------------------------------------- *)

let write_tcp_header buf ~off ~flags ~seq ~ack ~len =
  let v = Mem.Pinned.Buf.view buf in
  let b = v.Mem.View.data and base = v.Mem.View.off + off in
  Bytes.set b base (Char.chr flags);
  Bytes.set b (base + 1) '\000';
  Bytes.set b (base + 2) '\000';
  Bytes.set b (base + 3) '\000';
  let u32 o x =
    Bytes.set b (base + o) (Char.chr (x land 0xff));
    Bytes.set b (base + o + 1) (Char.chr ((x lsr 8) land 0xff));
    Bytes.set b (base + o + 2) (Char.chr ((x lsr 16) land 0xff));
    Bytes.set b (base + o + 3) (Char.chr ((x lsr 24) land 0xff))
  in
  u32 4 seq;
  u32 8 ack;
  u32 12 len;
  Mem.Pinned.Buf.note_write ~site:"Tcp.write_header" buf ~off ~len:header_len

(* Retransmission-queue holds exempt the header prefix of the first
   segment: the stack legitimately rewrites the packet and TCP headers on
   every (re)transmission, and only payload bytes must stay frozen. *)
let rtx_header_skip = Net.Packet.header_len + header_len

let take_frame_holds frame =
  if Sanitizer.Refsan.is_enabled () && frame.f_holds = [] then
    frame.f_holds <-
      List.mapi
        (fun i seg ->
          Mem.Pinned.Buf.hold ~site:"Tcp.rtx_queue"
            ~skip:(if i = 0 then rtx_header_skip else 0)
            seg)
        frame.f_segments

let release_frame_holds frame =
  List.iter Mem.Pinned.Buf.release_hold frame.f_holds;
  frame.f_holds <- []

let read_u32 (v : Mem.View.t) off =
  let b = v.Mem.View.data and base = v.Mem.View.off + off in
  Char.code (Bytes.get b base)
  lor (Char.code (Bytes.get b (base + 1)) lsl 8)
  lor (Char.code (Bytes.get b (base + 2)) lsl 16)
  lor (Char.code (Bytes.get b (base + 3)) lsl 24)

(* Post a frame's segments (header write + NIC post). The NIC's completion
   releases one reference per segment, so take one first: the connection
   keeps its own until the ACK. *)
let post_frame ?cpu conn frame ~flags =
  (match frame.f_segments with
  | first :: _ ->
      write_tcp_header first ~off:Net.Packet.header_len ~flags ~seq:frame.f_seq
        ~ack:conn.rcv_nxt ~len:frame.f_len
  | [] -> assert false);
  List.iter
    (fun seg -> Mem.Pinned.Buf.incr_ref ?cpu ~site:"Tcp.post_frame" seg)
    frame.f_segments;
  frame.sent_at <- Sim.Engine.now conn.stack.engine;
  Net.Endpoint.send_inline_header ?cpu conn.stack.ep ~dst:conn.peer
    ~segments:frame.f_segments

(* First transmission of a transport fast-path frame: same ownership moves
   as [post_frame], but the descriptor is filled straight from the
   serializer's zero-copy array ([Endpoint.send_inline_zc]) instead of a
   rebuilt segment list. Retransmissions go through [post_frame] using the
   frame's own segment list — the caller's array is only valid now. *)
let post_frame_zc ?cpu conn frame ~flags ~head ~zc ~zc_n =
  write_tcp_header head ~off:Net.Packet.header_len ~flags ~seq:frame.f_seq
    ~ack:conn.rcv_nxt ~len:frame.f_len;
  List.iter
    (fun seg -> Mem.Pinned.Buf.incr_ref ?cpu ~site:"Tcp.post_frame" seg)
    frame.f_segments;
  frame.sent_at <- Sim.Engine.now conn.stack.engine;
  Net.Endpoint.send_inline_zc ?cpu conn.stack.ep ~dst:conn.peer ~head ~zc ~zc_n

let send_control conn ~flags ~seq =
  let staging =
    Net.Endpoint.alloc_tx ~site:"Tcp.send_control" conn.stack.ep
      ~len:(Net.Packet.header_len + header_len)
  in
  write_tcp_header staging ~off:Net.Packet.header_len ~flags ~seq
    ~ack:conn.rcv_nxt ~len:0;
  Net.Endpoint.send_inline_header conn.stack.ep ~dst:conn.peer
    ~segments:[ staging ]

(* --- Retransmission ---------------------------------------------------- *)

let rec arm_timer conn =
  if not conn.timer_armed then begin
    conn.timer_armed <- true;
    Sim.Engine.schedule conn.stack.engine ~after:conn.rto_ns (fun () ->
        conn.timer_armed <- false;
        check_rto conn)
  end

and check_rto conn =
  match (conn.state, conn.inflight) with
  | Closed, _ | _, [] -> ()
  | _, oldest :: _ ->
      let now = Sim.Engine.now conn.stack.engine in
      if now - oldest.sent_at >= conn.rto_ns then begin
        if oldest.retries >= max_retries then begin
          conn.state <- Closed;
          List.iter
            (fun f ->
              release_frame_holds f;
              List.iter
                (fun seg -> Mem.Pinned.Buf.decr_ref ~site:"Tcp.abort" seg)
                f.f_segments)
            conn.inflight;
          conn.inflight <- []
        end
        else begin
          oldest.retries <- oldest.retries + 1;
          conn.retransmissions <- conn.retransmissions + 1;
          (* Exponential backoff on timeout-driven retransmission. *)
          conn.rto_ns <- min max_rto_ns (conn.rto_ns * 2);
          post_frame conn oldest ~flags:(flag_data lor flag_ack);
          arm_timer conn
        end
      end
      else arm_timer conn

(* --- Sending ------------------------------------------------------------ *)

(* Split the record's logical byte runs into MSS-sized frames, preserving
   byte order on the wire: copied runs go into staging buffers, zero-copy
   runs become their own gather entries (sliced at frame boundaries). *)
type run = R_copy of Mem.View.t | R_zc of Mem.Pinned.Buf.t

let run_len = function
  | R_copy v -> v.Mem.View.len
  | R_zc b -> Mem.Pinned.Buf.len b

let split_run run at =
  match run with
  | R_copy v ->
      ( R_copy (Mem.View.sub v ~off:0 ~len:at),
        R_copy (Mem.View.sub v ~off:at ~len:(v.Mem.View.len - at)) )
  | R_zc b ->
      ( R_zc (Mem.Pinned.Buf.sub b ~off:0 ~len:at),
        R_zc (Mem.Pinned.Buf.sub b ~off:at ~len:(Mem.Pinned.Buf.len b - at)) )

let frames_of_runs ?cpu conn runs =
  (* Greedily pack runs into frames of at most [mss] stream bytes. *)
  let frames = ref [] in
  let pending = ref runs in
  while !pending <> [] do
    let budget = ref mss in
    let frame_runs = ref [] in
    while !pending <> [] && !budget > 0 do
      match !pending with
      | [] -> ()
      | run :: rest ->
          let len = run_len run in
          if len <= !budget then begin
            frame_runs := run :: !frame_runs;
            budget := !budget - len;
            pending := rest
          end
          else begin
            let head, tail = split_run run !budget in
            frame_runs := head :: !frame_runs;
            budget := 0;
            pending := tail :: rest
          end
    done;
    frames := List.rev !frame_runs :: !frames
  done;
  let frames = List.rev !frames in
  List.map
    (fun frame_runs ->
      let f_len = List.fold_left (fun a r -> a + run_len r) 0 frame_runs in
      (* Coalesce leading copies (plus headers) into the first staging
         buffer; each later copy run gets its own staging entry so the wire
         byte order matches the stream. *)
      let rec build segments current_copies rest =
        match rest with
        | R_copy v :: tl -> build segments (v :: current_copies) tl
        | R_zc b :: tl ->
            let segments = flush segments current_copies ~first:(segments = []) in
            (* The connection owns one reference per zero-copy slice. *)
            Mem.Pinned.Buf.incr_ref ?cpu ~site:"Tcp.frame_ref" b;
            build (b :: segments) [] tl
        | [] -> flush segments current_copies ~first:(segments = [])
      and flush segments copies ~first =
        let copies = List.rev copies in
        let data_len = List.fold_left (fun a v -> a + v.Mem.View.len) 0 copies in
        if (not first) && data_len = 0 then segments
        else begin
          let headroom =
            if first then Net.Packet.header_len + header_len else 0
          in
          let staging =
            Net.Endpoint.alloc_tx ?cpu ~site:"Tcp.staging" conn.stack.ep
              ~len:(headroom + data_len)
          in
          let off = ref headroom in
          List.iter
            (fun v ->
              Mem.Pinned.Buf.blit_from ?cpu ~site:"Tcp.staging" staging ~src:v
                ~dst_off:!off;
              off := !off + v.Mem.View.len)
            copies;
          staging :: segments
        end
      in
      let segments = List.rev (build [] [] frame_runs) in
      let f =
        {
          f_seq = conn.snd_nxt;
          f_len;
          f_segments = segments;
          sent_at = 0;
          retries = 0;
          f_holds = [];
        }
      in
      conn.snd_nxt <- conn.snd_nxt + f_len;
      f)
    frames

let transmit_message ?cpu conn payloads =
  let total = List.fold_left (fun acc p -> acc + Wire.Payload.len p) 0 payloads in
  (* Record framing: 4-byte length prefix. *)
  let prefix = Bytes.create 4 in
  Bytes.set prefix 0 (Char.chr (total land 0xff));
  Bytes.set prefix 1 (Char.chr ((total lsr 8) land 0xff));
  Bytes.set prefix 2 (Char.chr ((total lsr 16) land 0xff));
  Bytes.set prefix 3 (Char.chr ((total lsr 24) land 0xff));
  let space = Mem.Registry.space (Net.Endpoint.registry conn.stack.ep) in
  let prefix_view =
    Mem.View.make
      ~addr:(Mem.Addr_space.reserve space ~bytes:4)
      ~data:prefix ~off:0 ~len:4
  in
  let runs =
    R_copy prefix_view
    :: List.map
         (function
           | Wire.Payload.Copied v | Wire.Payload.Literal v -> R_copy v
           | Wire.Payload.Zero_copy b -> R_zc b)
         payloads
  in
  let frames = frames_of_runs ?cpu conn runs in
  (* The frames hold their own references on every zero-copy slice, so the
     ownership passed in by the caller can be dropped now. *)
  List.iter (fun p -> Wire.Payload.release ?cpu p) payloads;
  conn.inflight <- conn.inflight @ frames;
  List.iter take_frame_holds frames;
  List.iter (fun f -> post_frame ?cpu conn f ~flags:(flag_data lor flag_ack)) frames;
  arm_timer conn

(* --- Receiving ----------------------------------------------------------- *)

let deliver conn buf = conn.stack.on_message conn buf

(* Extract complete length-prefixed records from the assembly buffer. *)
let rec drain_assembly conn =
  let a = conn.assembly in
  if Buffer.length a >= 4 then begin
    let s = Buffer.contents a in
    let len =
      Char.code s.[0]
      lor (Char.code s.[1] lsl 8)
      lor (Char.code s.[2] lsl 16)
      lor (Char.code s.[3] lsl 24)
    in
    if Buffer.length a >= 4 + len then begin
      let record = String.sub s 4 len in
      Buffer.clear a;
      Buffer.add_substring a s (4 + len) (String.length s - 4 - len);
      let buf =
        Mem.Pinned.Buf.alloc ~site:"Tcp.reassemble" conn.stack.pool
          ~len:(max 1 len)
      in
      Mem.Pinned.Buf.fill ~site:"Tcp.reassemble" buf record;
      let buf =
        if len = Mem.Pinned.Buf.len buf then buf
        else Mem.Pinned.Buf.sub buf ~off:0 ~len
      in
      deliver conn buf;
      drain_assembly conn
    end
  end

let rec accept_in_order conn =
  match Hashtbl.find_opt conn.ooo conn.rcv_nxt with
  | None -> ()
  | Some payload ->
      Hashtbl.remove conn.ooo conn.rcv_nxt;
      conn.rcv_nxt <- conn.rcv_nxt + String.length payload;
      Buffer.add_string conn.assembly payload;
      drain_assembly conn;
      accept_in_order conn

let handle_data conn buf ~seq ~payload_off ~payload_len =
  if payload_len = 0 then Mem.Pinned.Buf.decr_ref ~site:"Tcp.rx" buf
  else if seq = conn.rcv_nxt then begin
    conn.rcv_nxt <- conn.rcv_nxt + payload_len;
    (* Fast path: the frame holds exactly one whole record and the stream
       is at a record boundary — deliver a window into the receive buffer,
       zero-copy. *)
    let at_boundary =
      Buffer.length conn.assembly = 0 && Hashtbl.length conn.ooo = 0
    in
    let record_len =
      if payload_len >= 4 then read_u32 (Mem.Pinned.Buf.view buf) payload_off
      else -1
    in
    if at_boundary && record_len >= 0 && 4 + record_len = payload_len then begin
      let msg = Mem.Pinned.Buf.sub buf ~off:(payload_off + 4) ~len:record_len in
      deliver conn msg
    end
    else begin
      let v =
        Mem.View.sub (Mem.Pinned.Buf.view buf) ~off:payload_off ~len:payload_len
      in
      Buffer.add_string conn.assembly (Mem.View.to_string v);
      Mem.Pinned.Buf.decr_ref ~site:"Tcp.rx" buf;
      drain_assembly conn
    end;
    accept_in_order conn;
    send_control conn ~flags:flag_ack ~seq:conn.snd_nxt
  end
  else begin
    (* Out of order (or duplicate): stash the bytes if new, re-ACK. *)
    if seq > conn.rcv_nxt && not (Hashtbl.mem conn.ooo seq) then begin
      let v =
        Mem.View.sub (Mem.Pinned.Buf.view buf) ~off:payload_off ~len:payload_len
      in
      Hashtbl.replace conn.ooo seq (Mem.View.to_string v)
    end;
    Mem.Pinned.Buf.decr_ref ~site:"Tcp.rx" buf;
    send_control conn ~flags:flag_ack ~seq:conn.snd_nxt
  end

(* RFC 6298-style smoothed RTT; samples only from frames that were never
   retransmitted (Karn's algorithm). *)
let sample_rtt conn frame =
  if frame.retries = 0 then begin
    let rtt = float_of_int (Sim.Engine.now conn.stack.engine - frame.sent_at) in
    if conn.srtt_ns = 0.0 then begin
      conn.srtt_ns <- rtt;
      conn.rttvar_ns <- rtt /. 2.0
    end
    else begin
      conn.rttvar_ns <-
        (0.75 *. conn.rttvar_ns) +. (0.25 *. Float.abs (conn.srtt_ns -. rtt));
      conn.srtt_ns <- (0.875 *. conn.srtt_ns) +. (0.125 *. rtt)
    end;
    conn.rto_ns <-
      max min_rto_ns
        (min max_rto_ns
           (int_of_float (conn.srtt_ns +. (4.0 *. conn.rttvar_ns))))
  end

let handle_ack conn ~ack ~pure =
  if ack > conn.snd_una then begin
    conn.dup_acks <- 0;
    conn.last_ack <- ack;
    conn.snd_una <- ack;
    let acked, remaining =
      List.partition (fun f -> f.f_seq + f.f_len <= ack) conn.inflight
    in
    conn.inflight <- remaining;
    List.iter
      (fun f ->
        sample_rtt conn f;
        release_frame_holds f;
        List.iter
          (fun seg -> Mem.Pinned.Buf.decr_ref ~site:"Tcp.acked" seg)
          f.f_segments)
      acked;
    if remaining <> [] then arm_timer conn
  end
  else if pure && ack = conn.snd_una && conn.inflight <> [] then begin
    (* Duplicate cumulative ACK — counted only on payload-free segments,
       as in real TCP (a data frame repeating the cumulative ACK is normal
       pipelining, not a loss signal). After three, fast-retransmit the
       first unacknowledged frame without waiting for the RTO. *)
    conn.dup_acks <- conn.dup_acks + 1;
    if conn.dup_acks >= dupack_threshold then begin
      conn.dup_acks <- 0;
      match conn.inflight with
      | oldest :: _ when oldest.retries < max_retries ->
          oldest.retries <- oldest.retries + 1;
          conn.retransmissions <- conn.retransmissions + 1;
          post_frame conn oldest ~flags:(flag_data lor flag_ack)
      | _ -> ()
    end
  end

let flush_pending conn =
  let pending = List.rev conn.pending in
  conn.pending <- [];
  List.iter (fun sources -> transmit_message conn sources) pending

let isn_for id = 1000 + (id * 101)

let new_conn stack ~peer ~state ~isn =
  {
    stack;
    peer;
    state;
    snd_nxt = isn;
    snd_una = isn;
    inflight = [];
    rcv_nxt = 0;
    ooo = Hashtbl.create 8;
    assembly = Buffer.create 256;
    pending = [];
    retransmissions = 0;
    timer_armed = false;
    srtt_ns = 0.0;
    rttvar_ns = 0.0;
    rto_ns = initial_rto_ns;
    dup_acks = 0;
    last_ack = 0;
  }

let handle_frame stack ~src buf =
  let v = Mem.Pinned.Buf.view buf in
  if v.Mem.View.len < header_len then Mem.Pinned.Buf.decr_ref ~site:"Tcp.rx" buf
  else begin
    let flags = Char.code (Bytes.get v.Mem.View.data v.Mem.View.off) in
    let seq = read_u32 v 4 in
    let ack = read_u32 v 8 in
    let payload_len = read_u32 v 12 in
    if flags land flag_syn <> 0 && flags land flag_ack = 0 then begin
      (* Passive open. *)
      let conn =
        match Hashtbl.find_opt stack.conns src with
        | Some c -> c
        | None ->
            let isn = isn_for (Net.Endpoint.id stack.ep) in
            let c = new_conn stack ~peer:src ~state:Established ~isn in
            (* The SYN-ACK consumes one sequence number. *)
            c.snd_nxt <- isn + 1;
            c.snd_una <- isn + 1;
            Hashtbl.replace stack.conns src c;
            c
      in
      conn.state <- Established;
      conn.rcv_nxt <- seq + 1;
      send_control conn ~flags:(flag_syn lor flag_ack) ~seq:(conn.snd_nxt - 1);
      Mem.Pinned.Buf.decr_ref ~site:"Tcp.rx" buf
    end
    else
      match Hashtbl.find_opt stack.conns src with
      | None -> Mem.Pinned.Buf.decr_ref ~site:"Tcp.rx" buf
      | Some conn ->
          if flags land flag_syn <> 0 && flags land flag_ack <> 0 then begin
            (* SYN-ACK completes the active open. *)
            if conn.state = Syn_sent then begin
              conn.state <- Established;
              conn.rcv_nxt <- seq + 1;
              handle_ack conn ~ack ~pure:false;
              send_control conn ~flags:flag_ack ~seq:conn.snd_nxt;
              flush_pending conn
            end;
            Mem.Pinned.Buf.decr_ref ~site:"Tcp.rx" buf
          end
          else begin
            if flags land flag_ack <> 0 then
              handle_ack conn ~ack
                ~pure:(flags land flag_data = 0 || payload_len = 0);
            if flags land flag_data <> 0 && payload_len > 0 then begin
              if header_len + payload_len > v.Mem.View.len then
                Mem.Pinned.Buf.decr_ref ~site:"Tcp.rx" buf
              else
                handle_data conn buf ~seq ~payload_off:header_len ~payload_len
            end
            else Mem.Pinned.Buf.decr_ref ~site:"Tcp.rx" buf
          end
  end

let send_message ?cpu conn payloads =
  match conn.state with
  | Closed -> invalid_arg "Tcp.Conn.send_message: connection closed"
  | Syn_sent -> conn.pending <- payloads :: conn.pending
  | Established -> transmit_message ?cpu conn payloads

let stack_connect stack ~peer =
  match Hashtbl.find_opt stack.conns peer with
  | Some c -> c
  | None ->
      let isn = isn_for (Net.Endpoint.id stack.ep) in
      let conn = new_conn stack ~peer ~state:Syn_sent ~isn in
      (* SYN consumes one sequence number. *)
      conn.snd_nxt <- isn + 1;
      conn.snd_una <- isn + 1;
      Hashtbl.replace stack.conns peer conn;
      send_control conn ~flags:flag_syn ~seq:isn;
      conn

(* The transport's per-destination connection: open on first use; a
   connection torn down by retry exhaustion is reopened (the ISN function
   is deterministic, so a reconnect replays identically under a seed). *)
let conn_for stack ~peer =
  match Hashtbl.find_opt stack.conns peer with
  | Some c when c.state <> Closed -> c
  | Some _ ->
      Hashtbl.remove stack.conns peer;
      stack_connect stack ~peer
  | None -> stack_connect stack ~peer

module Conn = struct
  type t = conn

  let peer t = t.peer

  let is_established t = t.state = Established

  let send_message = send_message

  let unacked_bytes t = t.snd_nxt - t.snd_una

  let retransmissions t = t.retransmissions

  let rto_ns t = t.rto_ns

  let srtt_ns t = t.srtt_ns
end

module Stack = struct
  type t = stack

  let attach ep =
    let registry = Net.Endpoint.registry ep in
    let pool =
      Mem.Pinned.Pool.create
        (Mem.Registry.space registry)
        ~name:(Printf.sprintf "tcp%d-asm" (Net.Endpoint.id ep))
        (* Reassembled messages up to 256 KB; larger records would need a
           streaming delivery API. *)
        ~classes:[ (16384, 512); (65536, 64); (262144, 16) ]
    in
    Mem.Registry.register registry pool;
    let stack =
      {
        ep;
        engine = Net.Endpoint.engine ep;
        conns = Hashtbl.create 16;
        pool;
        on_message =
          (fun _ buf -> Mem.Pinned.Buf.decr_ref ~site:"Tcp.drop_message" buf);
        tcp_transport = None;
      }
    in
    Net.Endpoint.set_rx ep (fun ~src buf -> handle_frame stack ~src buf);
    stack

  let connect t ~peer = stack_connect t ~peer

  let set_on_message t f = t.on_message <- f

  let conn t ~peer = Hashtbl.find_opt t.conns peer

  let endpoint t = t.ep
end

(* --- Transport view ------------------------------------------------------ *)

let record_prefix_len = 4

(* Headroom the caller leaves in the first inline segment: packet header +
   TCP header + the record's length prefix, so the single-frame fast path
   sends object header, copied fields, and all wire framing as one gather
   entry (serialize-and-send, stream edition). *)
let transport_headroom = Net.Packet.header_len + header_len + record_prefix_len

(* Largest reassembly-pool class (see [Stack.attach]). *)
let max_msg_len = 262144

let write_record_prefix buf ~off ~record_len =
  let v = Mem.Pinned.Buf.view buf in
  let b = v.Mem.View.data and base = v.Mem.View.off + off in
  Bytes.set b base (Char.chr (record_len land 0xff));
  Bytes.set b (base + 1) (Char.chr ((record_len lsr 8) land 0xff));
  Bytes.set b (base + 2) (Char.chr ((record_len lsr 16) land 0xff));
  Bytes.set b (base + 3) (Char.chr ((record_len lsr 24) land 0xff));
  Mem.Pinned.Buf.note_write ~site:"Tcp.record_prefix" buf ~off
    ~len:record_prefix_len

(* Single-frame fast path: the whole record (plus its prefix) fits one MSS
   and the connection is up. The frame takes over the caller's reference on
   every segment — exactly the ownership a [send_message] round trip would
   end with, minus the intermediate incr/decr pair. The record prefix is
   written before retransmission holds are taken; only the packet + TCP
   header prefix stays exempt ([rtx_header_skip]) for later rewrites. *)
let fast_path_send conn ~segments ~payload_len ~post =
  let f =
    {
      f_seq = conn.snd_nxt;
      f_len = payload_len;
      f_segments = segments;
      sent_at = 0;
      retries = 0;
      f_holds = [];
    }
  in
  conn.snd_nxt <- conn.snd_nxt + payload_len;
  conn.inflight <- conn.inflight @ [ f ];
  take_frame_holds f;
  post f;
  arm_timer conn

(* Slow path: hand the segments to [send_message] as zero-copy payloads.
   The first inline segment's headroom is scratch, not record bytes —
   narrow past it ([Buf.sub] shares the refcount, so the caller's reference
   rides along and [Payload.release] returns it after framing). *)
let payloads_of_inline ?cpu segments =
  match segments with
  | [] -> []
  | first :: rest ->
      let flen = Mem.Pinned.Buf.len first in
      let head_payloads =
        if flen > transport_headroom then
          [
            Wire.Payload.Zero_copy
              (Mem.Pinned.Buf.sub ~site:"Tcp.trim_headroom" first
                 ~off:transport_headroom
                 ~len:(flen - transport_headroom));
          ]
        else begin
          Mem.Pinned.Buf.decr_ref ?cpu ~site:"Tcp.trim_headroom" first;
          []
        end
      in
      head_payloads @ List.map (fun b -> Wire.Payload.Zero_copy b) rest

let check_msg_len total =
  let record_len = total - transport_headroom in
  if record_len < 0 then
    invalid_arg "Tcp.transport: first segment shorter than the headroom";
  if record_len > max_msg_len then
    invalid_arg
      (Printf.sprintf "Tcp.transport: %d-byte record exceeds max_msg_len %d"
         record_len max_msg_len);
  record_len

let transport_send_inline ?cpu stack ~dst ~segments =
  match segments with
  | [] -> invalid_arg "Tcp.transport: empty gather list"
  | first :: _ ->
      let conn = conn_for stack ~peer:dst in
      let total =
        List.fold_left (fun a s -> a + Mem.Pinned.Buf.len s) 0 segments
      in
      let record_len = check_msg_len total in
      let payload_len = record_prefix_len + record_len in
      if
        conn.state = Established
        && payload_len <= mss
        && Mem.Pinned.Buf.len first >= transport_headroom
      then begin
        write_record_prefix first
          ~off:(Net.Packet.header_len + header_len)
          ~record_len;
        fast_path_send conn ~segments ~payload_len ~post:(fun f ->
            post_frame ?cpu conn f ~flags:(flag_data lor flag_ack))
      end
      else send_message ?cpu conn (payloads_of_inline ?cpu segments)

let transport_send_inline_zc ?cpu stack ~dst ~head ~zc ~zc_n =
  let conn = conn_for stack ~peer:dst in
  let total = ref (Mem.Pinned.Buf.len head) in
  for i = 0 to zc_n - 1 do
    total := !total + Mem.Pinned.Buf.len zc.(i)
  done;
  let record_len = check_msg_len !total in
  let payload_len = record_prefix_len + record_len in
  if
    conn.state = Established
    && payload_len <= mss
    && Mem.Pinned.Buf.len head >= transport_headroom
  then begin
    write_record_prefix head
      ~off:(Net.Packet.header_len + header_len)
      ~record_len;
    let segments = head :: Array.to_list (Array.sub zc 0 zc_n) in
    fast_path_send conn ~segments ~payload_len ~post:(fun f ->
        post_frame_zc ?cpu conn f ~flags:(flag_data lor flag_ack) ~head ~zc
          ~zc_n)
  end
  else
    send_message ?cpu conn
      (payloads_of_inline ?cpu (head :: Array.to_list (Array.sub zc 0 zc_n)))

(* The conventional paths carry no transport headroom: every byte of every
   segment is record payload, and [send_message] stages the framing. *)
let transport_send_extra ?cpu stack ~dst ~segments =
  let conn = conn_for stack ~peer:dst in
  send_message ?cpu conn (List.map (fun b -> Wire.Payload.Zero_copy b) segments)

let transport_send_extra_zc ?cpu stack ~dst ~head ~zc ~zc_n =
  let conn = conn_for stack ~peer:dst in
  send_message ?cpu conn
    (Wire.Payload.Zero_copy head
    :: List.init zc_n (fun i -> Wire.Payload.Zero_copy zc.(i)))

let transport_send_string stack ~dst s =
  let conn = conn_for stack ~peer:dst in
  let space = Mem.Registry.space (Net.Endpoint.registry stack.ep) in
  send_message conn [ Wire.Payload.of_string space s ]

let[@warning "-16"] transport stack =
  match stack.tcp_transport with
  | Some tr -> tr
  | None ->
      let tr =
        Net.Transport.make ~name:"tcp" ~ep:stack.ep
          ~headroom:transport_headroom ~max_msg_len
          ~connect:(fun ~peer -> ignore (conn_for stack ~peer))
          ~send_inline:(fun ?cpu ~dst ~segments ->
            transport_send_inline ?cpu stack ~dst ~segments)
          ~send_extra:(fun ?cpu ~dst ~segments ->
            transport_send_extra ?cpu stack ~dst ~segments)
          ~send_inline_zc:(fun ?cpu ~dst ~head ~zc ~zc_n ->
            transport_send_inline_zc ?cpu stack ~dst ~head ~zc ~zc_n)
          ~send_extra_zc:(fun ?cpu ~dst ~head ~zc ~zc_n ->
            transport_send_extra_zc ?cpu stack ~dst ~head ~zc ~zc_n)
          ~send_string:(fun ~dst s -> transport_send_string stack ~dst s)
          ~set_rx:(fun f ->
            stack.on_message <- (fun conn buf -> f ~src:conn.peer buf))
      in
      stack.tcp_transport <- Some tr;
      tr
