(** Simplified Demikernel-style TCP over the kernel-bypass endpoint (§6.2.3).

    What matters for the paper's Figure 9 and for zero-copy safety:

    - {b Byte stream with record framing}: [Conn.send_message] writes a
      [u32 length]-prefixed record; the receiver delivers complete messages.
      A message that arrives in order within one frame is delivered as a
      zero-copy window into the receive buffer; otherwise it is reassembled.
    - {b Zero-copy transmission holds references until ACK}: unlike UDP,
      where buffers are released at DMA completion, TCP must be able to
      retransmit, so every in-flight frame keeps its own reference on each
      gather segment until the cumulative ACK covers it.
    - {b Retransmission}: adaptive RTO from a smoothed RTT estimate
      (RFC 6298 style, Karn's rule, exponential backoff), fast retransmit
      on three duplicate ACKs, cumulative ACKs, out-of-order reassembly.
      A three-way handshake establishes sequence numbers.

    Message data is described with the shared {!Wire.Payload.t} gather
    representation ([Copied]/[Literal] runs are staged into frame buffers;
    [Zero_copy] buffers ride as their own gather entries, reference
    consumed). [transport] exposes a stack as a {!Net.Transport.t}, so
    serialize-and-send, the [_zc] array fast paths, and TX doorbell
    batching all apply to TCP frames; its single-frame fast path sends
    packet header + TCP header + record prefix + object bytes as one
    gather entry and falls back to [Conn.send_message] segmentation for
    records above the MSS or connections still in the handshake.

    One [Stack.t] owns an endpoint's receive path and demultiplexes
    connections by peer id. ACK processing and reassembly are protocol
    work outside any request's service window and are not CPU-charged;
    serialization costs on the send path are charged as usual. *)

module Conn : sig
  type t

  val peer : t -> int

  val is_established : t -> bool

  (** [send_message ?cpu t payloads] frames the concatenated payloads as
      one record and transmits it (segmenting at the MSS if needed). Takes
      ownership of one reference on each [Zero_copy] payload; [Copied] and
      [Literal] views are staged immediately. Messages sent during the
      handshake are queued and flushed on establishment; raises
      [Invalid_argument] on a closed connection. *)
  val send_message : ?cpu:Memmodel.Cpu.t -> t -> Wire.Payload.t list -> unit

  (** Bytes sent but not yet acknowledged. *)
  val unacked_bytes : t -> int

  val retransmissions : t -> int

  (** Current retransmission timeout (adapts to measured RTT, RFC 6298
      style, with exponential backoff on loss). *)
  val rto_ns : t -> int

  (** Smoothed RTT estimate in ns (0 until the first sample). *)
  val srtt_ns : t -> float
end

module Stack : sig
  type t

  (** [attach ep] takes over [ep]'s receive path. *)
  val attach : Net.Endpoint.t -> t

  (** [connect t ~peer] initiates a handshake; the connection becomes
      established once the SYN-ACK returns. Idempotent per peer. *)
  val connect : t -> peer:int -> Conn.t

  (** Handler for complete received messages. The buffer carries one
      reference owned by the handler. *)
  val set_on_message : t -> (Conn.t -> Mem.Pinned.Buf.t -> unit) -> unit

  val conn : t -> peer:int -> Conn.t option

  val endpoint : t -> Net.Endpoint.t
end

(** [transport stack] — the stack as a {!Net.Transport.t} (cached; one
    record per stack). Destination ids map to connections, opened on first
    use — call {!Net.Transport.connect} during warmup to keep the 3-way
    handshake out of measured windows. A connection that died of retry
    exhaustion is transparently reopened on the next send. Ownership seen
    by callers is identical to UDP (each send takes over the caller's
    segment references); internally the references live until cumulative
    ACK, not DMA completion. *)
val transport : Stack.t -> Net.Transport.t

(** Protocol constants, exposed for tests. *)
val header_len : int

val mss : int

val initial_rto_ns : int

(** Bytes of the [u32] record-length prefix ([transport]'s framing). *)
val record_prefix_len : int

(** Headroom [transport] requires in the first inline gather segment:
    packet header + TCP header + record prefix. *)
val transport_headroom : int

(** Largest record [transport] will carry (the reassembly cap). *)
val max_msg_len : int
