exception Decode_error of string

let name = "capnproto"

let segment_bytes = 2048

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* --- Building --------------------------------------------------------- *)

type seg = {
  id : int;
  view : Mem.View.t;
  w : Wire.Cursor.Writer.t;
  mutable used : int;
  capacity : int;
}

type builder = {
  cpu : Memmodel.Cpu.t option;
  ep : Net.Endpoint.t;
  mutable segs_rev : seg list;
  mutable nsegs : int;
}

let new_seg b ~capacity =
  let view = Mem.Arena.alloc ?cpu:b.cpu (Net.Endpoint.arena b.ep) ~len:capacity in
  let seg =
    {
      id = b.nsegs;
      view;
      w = Wire.Cursor.Writer.create ?cpu:b.cpu view;
      used = 0;
      capacity;
    }
  in
  b.nsegs <- b.nsegs + 1;
  b.segs_rev <- seg :: b.segs_rev;
  seg

let alloc b n =
  if n > segment_bytes then begin
    (* Oversized blobs get a dedicated segment. *)
    let seg = new_seg b ~capacity:n in
    seg.used <- n;
    (seg, 0)
  end
  else begin
    let seg =
      match b.segs_rev with
      | seg :: _ when seg.used + n <= seg.capacity -> seg
      | _ -> new_seg b ~capacity:segment_bytes
    in
    let off = seg.used in
    seg.used <- seg.used + n;
    (seg, off)
  end

let write_slot seg ~pos (a, bb, c) =
  let module W = Wire.Cursor.Writer in
  W.seek seg.w pos;
  W.u32 seg.w a;
  W.u32 seg.w bb;
  W.u32 seg.w c

let write_scalar_slot seg ~pos v =
  let module W = Wire.Cursor.Writer in
  W.seek seg.w pos;
  W.u64 seg.w v;
  W.u32 seg.w 0

let rec build_value b (v : Wire.Dyn.value) seg ~pos =
  match v with
  | Wire.Dyn.Int i -> write_scalar_slot seg ~pos i
  | Wire.Dyn.Float f -> write_scalar_slot seg ~pos (Int64.bits_of_float f)
  | Wire.Dyn.Payload p ->
      let src = Wire.Payload.view p in
      let dseg, doff = alloc b src.Mem.View.len in
      Wire.Cursor.Writer.seek dseg.w doff;
      Wire.Cursor.Writer.view_bytes dseg.w src;
      write_slot seg ~pos (dseg.id, doff, src.Mem.View.len);
      (* view_bytes moved the writer; slots rewritten via seek are safe. *)
      ()
  | Wire.Dyn.Nested m ->
      let nseg, noff = build_msg b m in
      write_slot seg ~pos (nseg.id, noff, 0)
  | Wire.Dyn.List elems ->
      let count = List.length elems in
      let vseg, voff = alloc b (12 * count) in
      List.iteri
        (fun j elem -> build_value b elem vseg ~pos:(voff + (12 * j)))
        elems;
      write_slot seg ~pos (vseg.id, voff, count)

and build_msg b msg =
  let desc = Wire.Dyn.desc msg in
  if Array.length desc.Schema.Desc.fields > 32 then
    invalid_arg "Capnp: messages are limited to 32 fields";
  let present = Wire.Dyn.present_count msg in
  let seg, off = alloc b (4 + (12 * present)) in
  let bitmap = ref 0 in
  Wire.Dyn.iter_present msg (fun i _ _ -> bitmap := !bitmap lor (1 lsl i));
  Wire.Cursor.Writer.seek seg.w off;
  Wire.Cursor.Writer.u32 seg.w !bitmap;
  let k = ref 0 in
  Wire.Dyn.iter_present msg (fun _ _ v ->
      let pos = off + 4 + (12 * !k) in
      incr k;
      build_value b v seg ~pos);
  (seg, off)

let build_segments ?cpu ep msg =
  let b = { cpu; ep; segs_rev = []; nsegs = 0 } in
  let seg0, off0 = build_msg b msg in
  if seg0.id <> 0 || off0 <> 0 then fail "root struct must open segment 0";
  List.rev b.segs_rev

let build ?cpu ep msg =
  List.map
    (fun seg -> Mem.View.sub seg.view ~off:0 ~len:seg.used)
    (build_segments ?cpu ep msg)

let framing_len segs = 4 + (4 * List.length segs)

let serialize_and_send ?cpu tr ~dst msg =
  let ep = Net.Transport.endpoint tr in
  let headroom = Net.Transport.headroom tr in
  let segs = build ?cpu ep msg in
  let body =
    framing_len segs
    + List.fold_left (fun acc s -> acc + s.Mem.View.len) 0 segs
  in
  if body > Net.Transport.max_msg_len tr then
    invalid_arg "Capnp.serialize_and_send: message exceeds frame";
  let staging = Net.Endpoint.alloc_tx ?cpu ep ~len:(headroom + body) in
  let window =
    Mem.View.sub (Mem.Pinned.Buf.view staging) ~off:headroom ~len:body
  in
  let w = Wire.Cursor.Writer.create ?cpu window in
  Wire.Cursor.Writer.u32 w (List.length segs);
  List.iter (fun s -> Wire.Cursor.Writer.u32 w s.Mem.View.len) segs;
  (* Second copy: each segment moves into the DMA-safe staging buffer. *)
  List.iter (fun s -> Wire.Cursor.Writer.view_bytes w s) segs;
  Net.Transport.send_inline ?cpu tr ~dst ~segments:[ staging ]

(* --- Reading ----------------------------------------------------------- *)

type frame = { bases : int array; lens : int array; total : int }

let parse_frame ?cpu view =
  let module R = Wire.Cursor.Reader in
  let r = R.create ?cpu view in
  if view.Mem.View.len < 4 then fail "missing segment table";
  let nsegs = R.u32 r in
  if nsegs <= 0 || nsegs > 4096 then fail "implausible segment count %d" nsegs;
  if view.Mem.View.len < 4 + (4 * nsegs) then fail "truncated segment table";
  let lens = Array.init nsegs (fun _ -> R.u32 r) in
  let bases = Array.make nsegs 0 in
  let running = ref (4 + (4 * nsegs)) in
  Array.iteri
    (fun i l ->
      bases.(i) <- !running;
      running := !running + l)
    lens;
  if !running > view.Mem.View.len then fail "segments exceed buffer";
  { bases; lens; total = view.Mem.View.len }

let resolve frame ~seg ~off ~len =
  if seg < 0 || seg >= Array.length frame.bases then fail "bad segment %d" seg;
  if off < 0 || len < 0 || off + len > frame.lens.(seg) then
    fail "range [%d, %d) outside segment %d" off (off + len) seg;
  frame.bases.(seg) + off

let max_depth = 32

let rec read_msg ?cpu ?(depth = 0) schema (desc : Schema.Desc.message) buf
    frame ~seg ~off =
  if depth > max_depth then fail "nesting deeper than %d" max_depth;
  let module R = Wire.Cursor.Reader in
  let pos = resolve frame ~seg ~off ~len:4 in
  let view = Mem.Pinned.Buf.view buf in
  let r = R.create ?cpu view in
  R.seek r pos;
  let bitmap = R.u32 r in
  let msg = Wire.Dyn.create desc in
  let k = ref 0 in
  Array.iteri
    (fun i (field : Schema.Desc.field) ->
      if bitmap land (1 lsl i) <> 0 then begin
        let slot_off = off + 4 + (12 * !k) in
        incr k;
        let slot = resolve frame ~seg ~off:slot_off ~len:12 in
        let v = read_value ?cpu ~depth schema field buf frame r ~slot in
        Wire.Dyn.set msg field.Schema.Desc.field_name v
      end)
    desc.Schema.Desc.fields;
  msg

and read_value ?cpu ~depth schema (field : Schema.Desc.field) buf frame r
    ~slot =
  match field.Schema.Desc.label with
  | Schema.Desc.Repeated ->
      let module R = Wire.Cursor.Reader in
      R.seek r slot;
      let vseg = R.u32 r in
      let voff = R.u32 r in
      let count = R.u32 r in
      if count > 100_000 then fail "implausible vector length %d" count;
      ignore (resolve frame ~seg:vseg ~off:voff ~len:(12 * count));
      let elems =
        List.init count (fun j ->
            let slot =
              resolve frame ~seg:vseg ~off:(voff + (12 * j)) ~len:12
            in
            read_element ?cpu ~depth schema field buf frame r ~slot)
      in
      Wire.Dyn.List elems
  | Schema.Desc.Singular ->
      read_element ?cpu ~depth schema field buf frame r ~slot

and read_element ?cpu ~depth schema (field : Schema.Desc.field) buf frame r
    ~slot =
  let module R = Wire.Cursor.Reader in
  R.seek r slot;
  match field.Schema.Desc.ty with
  | Schema.Desc.Scalar Schema.Desc.Float64 ->
      Wire.Dyn.Float (Int64.float_of_bits (R.u64 r))
  | Schema.Desc.Scalar _ -> Wire.Dyn.Int (R.u64 r)
  | Schema.Desc.Str | Schema.Desc.Bytes ->
      let dseg = R.u32 r in
      let doff = R.u32 r in
      let len = R.u32 r in
      let pos = resolve frame ~seg:dseg ~off:doff ~len in
      let sub = Mem.Pinned.Buf.sub buf ~off:pos ~len in
      Mem.Pinned.Buf.incr_ref ?cpu sub;
      Wire.Dyn.Payload (Wire.Payload.Zero_copy sub)
  | Schema.Desc.Message mname -> (
      let nseg = R.u32 r in
      let noff = R.u32 r in
      let _zero = R.u32 r in
      match Schema.Desc.find_message schema mname with
      | None -> fail "unknown message %s" mname
      | Some nested_desc ->
          let saved = R.pos r in
          let nested =
            read_msg ?cpu ~depth:(depth + 1) schema nested_desc buf frame
              ~seg:nseg ~off:noff
          in
          R.seek r saved;
          Wire.Dyn.Nested nested)

let deserialize ?cpu schema desc buf =
  let view = Mem.Pinned.Buf.view buf in
  let frame = parse_frame ?cpu view in
  read_msg ?cpu schema desc buf frame ~seg:0 ~off:0
