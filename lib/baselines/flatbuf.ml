exception Decode_error of string

let name = "flatbuffers"

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* --- Sizing ----------------------------------------------------------- *)

let rec table_len msg = 4 + (8 * Wire.Dyn.present_count msg)

and value_extra (v : Wire.Dyn.value) =
  match v with
  | Wire.Dyn.Int _ | Wire.Dyn.Float _ -> 0
  | Wire.Dyn.Payload p -> Wire.Payload.len p
  | Wire.Dyn.Nested m -> total_msg m
  | Wire.Dyn.List elems ->
      (8 * List.length elems)
      + List.fold_left (fun acc e -> acc + value_extra e) 0 elems

and total_msg msg =
  let extra = ref 0 in
  Wire.Dyn.iter_present msg (fun _ _ v -> extra := !extra + value_extra v);
  table_len msg + !extra

let total_buffer msg = 4 + total_msg msg

(* --- Building (back-to-front) ----------------------------------------- *)

type slot =
  | S_inline of int64
  | S_ref of int * int (* target position, length *)
  | S_vec of int * int (* vector position, element count *)

type builder = {
  w : Wire.Cursor.Writer.t;
  scratch : Mem.View.t;
  mutable head : int;
}

let push_payload b (p : Wire.Payload.t) =
  let v = Wire.Payload.view p in
  b.head <- b.head - v.Mem.View.len;
  Wire.Cursor.Writer.seek b.w b.head;
  Wire.Cursor.Writer.view_bytes b.w v;
  b.head

let write_slot b ~pos slot =
  let module W = Wire.Cursor.Writer in
  W.seek b.w pos;
  match slot with
  | S_inline v -> W.u64 b.w v
  | S_ref (target, len) ->
      W.u32 b.w (target - pos);
      W.u32 b.w len
  | S_vec (target, count) ->
      W.u32 b.w (target - pos);
      W.u32 b.w count

let rec build_value b (v : Wire.Dyn.value) =
  match v with
  | Wire.Dyn.Int i -> S_inline i
  | Wire.Dyn.Float f -> S_inline (Int64.bits_of_float f)
  | Wire.Dyn.Payload p ->
      let pos = push_payload b p in
      S_ref (pos, Wire.Payload.len p)
  | Wire.Dyn.Nested m ->
      let pos = build_msg b m in
      S_ref (pos, 0)
  | Wire.Dyn.List elems ->
      let slots = List.map (build_value b) elems in
      let count = List.length elems in
      b.head <- b.head - (8 * count);
      let vec = b.head in
      List.iteri (fun j slot -> write_slot b ~pos:(vec + (8 * j)) slot) slots;
      S_vec (vec, count)

and build_msg b msg =
  if Array.length (Wire.Dyn.desc msg).Schema.Desc.fields > 32 then
    invalid_arg "Flatbuf: messages are limited to 32 fields";
  (* Children first: back-to-front building places them at higher
     positions, so relative offsets from the table are positive. *)
  let slots = ref [] in
  Wire.Dyn.iter_present msg (fun i _ v -> slots := (i, build_value b v) :: !slots);
  let slots = List.rev !slots in
  b.head <- b.head - table_len msg;
  let table = b.head in
  let module W = Wire.Cursor.Writer in
  W.seek b.w table;
  let bitmap =
    List.fold_left (fun acc (i, _) -> acc lor (1 lsl i)) 0 slots
  in
  W.u32 b.w bitmap;
  List.iteri
    (fun k (_, slot) -> write_slot b ~pos:(table + 4 + (8 * k)) slot)
    slots;
  table

let build ?cpu ep msg =
  let size = total_buffer msg in
  let scratch = Mem.Arena.alloc ?cpu (Net.Endpoint.arena ep) ~len:size in
  let w = Wire.Cursor.Writer.create ?cpu scratch in
  let b = { w; scratch; head = size } in
  let root = build_msg b msg in
  b.head <- b.head - 4;
  Wire.Cursor.Writer.seek b.w b.head;
  Wire.Cursor.Writer.u32 b.w (root - b.head);
  assert (b.head = 0);
  b.scratch

let serialize_and_send ?cpu tr ~dst msg =
  let ep = Net.Transport.endpoint tr in
  let headroom = Net.Transport.headroom tr in
  let finished = build ?cpu ep msg in
  if finished.Mem.View.len > Net.Transport.max_msg_len tr then
    invalid_arg "Flatbuf.serialize_and_send: message exceeds frame";
  let staging =
    Net.Endpoint.alloc_tx ?cpu ep ~len:(headroom + finished.Mem.View.len)
  in
  (* Second copy: the contiguous builder output moves into DMA-safe
     staging; the source is cache-hot from the build. *)
  Mem.Pinned.Buf.blit_from ?cpu staging ~src:finished ~dst_off:headroom;
  Net.Transport.send_inline ?cpu tr ~dst ~segments:[ staging ]

(* --- Reading (zero-copy) ---------------------------------------------- *)

let max_depth = 32

let rec read_msg ?cpu ?(depth = 0) schema (desc : Schema.Desc.message) buf
    ~pos =
  if depth > max_depth then fail "nesting deeper than %d" max_depth;
  let module R = Wire.Cursor.Reader in
  let view = Mem.Pinned.Buf.view buf in
  let total = view.Mem.View.len in
  if pos < 0 || pos + 4 > total then fail "table position out of range";
  let r = R.create ?cpu view in
  R.seek r pos;
  let bitmap = R.u32 r in
  let msg = Wire.Dyn.create desc in
  let k = ref 0 in
  Array.iteri
    (fun i (field : Schema.Desc.field) ->
      if bitmap land (1 lsl i) <> 0 then begin
        let slot = pos + 4 + (8 * !k) in
        incr k;
        if slot + 8 > total then fail "slot out of range";
        let v = read_value ?cpu ~depth schema field buf r ~slot ~total in
        Wire.Dyn.set msg field.Schema.Desc.field_name v
      end)
    desc.Schema.Desc.fields;
  msg

and read_value ?cpu ~depth schema (field : Schema.Desc.field) buf r ~slot
    ~total =
  match field.Schema.Desc.label with
  | Schema.Desc.Repeated ->
      let module R = Wire.Cursor.Reader in
      R.seek r slot;
      let rel = R.u32 r in
      let count = R.u32 r in
      let vec = slot + rel in
      if vec < 0 || vec + (8 * count) > total then fail "vector out of range";
      let elems =
        List.init count (fun j ->
            read_element ?cpu ~depth schema field buf r
              ~slot:(vec + (8 * j))
              ~total)
      in
      Wire.Dyn.List elems
  | Schema.Desc.Singular ->
      read_element ?cpu ~depth schema field buf r ~slot ~total

and read_element ?cpu ~depth schema (field : Schema.Desc.field) buf r ~slot
    ~total =
  let module R = Wire.Cursor.Reader in
  R.seek r slot;
  match field.Schema.Desc.ty with
  | Schema.Desc.Scalar Schema.Desc.Float64 ->
      Wire.Dyn.Float (Int64.float_of_bits (R.u64 r))
  | Schema.Desc.Scalar _ -> Wire.Dyn.Int (R.u64 r)
  | Schema.Desc.Str | Schema.Desc.Bytes ->
      let rel = R.u32 r in
      let len = R.u32 r in
      let target = slot + rel in
      if target < 0 || len < 0 || target + len > total then
        fail "payload out of range";
      let sub = Mem.Pinned.Buf.sub buf ~off:target ~len in
      Mem.Pinned.Buf.incr_ref ?cpu sub;
      Wire.Dyn.Payload (Wire.Payload.Zero_copy sub)
  | Schema.Desc.Message mname -> (
      let rel = R.u32 r in
      let _zero = R.u32 r in
      match Schema.Desc.find_message schema mname with
      | None -> fail "unknown message %s" mname
      | Some nested_desc ->
          let saved = R.pos r in
          let nested =
            read_msg ?cpu ~depth:(depth + 1) schema nested_desc buf
              ~pos:(slot + rel)
          in
          R.seek r saved;
          Wire.Dyn.Nested nested)

let deserialize ?cpu schema desc buf =
  let module R = Wire.Cursor.Reader in
  let view = Mem.Pinned.Buf.view buf in
  if view.Mem.View.len < 4 then fail "buffer too small";
  let r = R.create ?cpu view in
  let root = R.u32 r in
  read_msg ?cpu schema desc buf ~pos:root
